/**
 * @file
 * Fuzz target for the "APTR" binary proxy-trace reader: arbitrary
 * bytes must produce either chunks or a Status error — never a throw,
 * a crash, unbounded allocation, or an unbounded loop.
 */

#include "fuzz/fuzz_driver.hh"

#include <sstream>
#include <string>

#include "trace/stream_reader.hh"

void
apolloFuzzOne(const uint8_t *data, size_t size)
{
    std::istringstream is(
        std::string(reinterpret_cast<const char *>(data), size));
    apollo::ProxyTraceReader reader(is);
    apollo::ProxyChunk chunk;
    uint64_t rows = 0;
    for (int iter = 0; iter < 4096; ++iter) {
        apollo::StatusOr<size_t> got = reader.next(1024, chunk);
        if (!got.ok() || *got == 0)
            break;
        rows += *got;
        if (rows > (uint64_t{1} << 22))
            break; // the input cannot legitimately be this long
    }
}
