/**
 * @file
 * Fuzz target for both VCD ingestion paths — the batch tryParseVcd()
 * and the incremental VcdChunkReader — on arbitrary bytes: Status
 * errors only, no throw/crash/hang/unbounded allocation.
 */

#include "fuzz/fuzz_driver.hh"

#include <sstream>
#include <string>

#include "trace/stream_reader.hh"
#include "trace/vcd.hh"

void
apolloFuzzOne(const uint8_t *data, size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data), size);

    {
        std::istringstream is(text);
        apollo::StatusOr<apollo::VcdTrace> parsed =
            apollo::tryParseVcd(is);
        (void)parsed;
    }

    std::istringstream is(text);
    apollo::VcdChunkReader reader(is);
    apollo::ProxyChunk chunk;
    uint64_t rows = 0;
    for (int iter = 0; iter < 4096; ++iter) {
        apollo::StatusOr<size_t> got = reader.next(512, chunk);
        if (!got.ok() || *got == 0)
            break;
        rows += *got;
        if (rows > (uint64_t{1} << 22))
            break;
    }
}
