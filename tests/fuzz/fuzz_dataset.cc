/**
 * @file
 * Fuzz target for the "APDS" dataset loader: arbitrary bytes must
 * yield a Dataset or a Status error — never a throw, crash, or
 * unbounded allocation.
 */

#include "fuzz/fuzz_driver.hh"

#include <sstream>
#include <string>

#include "trace/dataset_io.hh"

void
apolloFuzzOne(const uint8_t *data, size_t size)
{
    std::istringstream is(
        std::string(reinterpret_cast<const char *>(data), size));
    apollo::StatusOr<apollo::Dataset> loaded =
        apollo::tryLoadDataset(is);
    (void)loaded;
}
