/**
 * @file
 * Fuzz target for the packed column-major trace decode that feeds the
 * bit-parallel streaming kernels. Beyond the never-crash/never-throw
 * contract of every parser target, each chunk the reader serves must
 * honor the packed zero-tail rule (bits at positions >= rows in a
 * column's last word are zero; see apollo::maskTailWords): the
 * popcount kernels consume the served words without re-masking, so a
 * forged tail word that survives decoding would turn into phantom
 * toggle counts downstream. The target feeds every served column
 * through the dispatched popcount kernel and treats a tail leak or an
 * impossible count as a bug, not just a parse disagreement.
 */

#include "fuzz/fuzz_driver.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "trace/stream_reader.hh"
#include "util/popcnt_kernels.hh"

void
apolloFuzzOne(const uint8_t *data, size_t size)
{
    std::istringstream is(
        std::string(reinterpret_cast<const char *>(data), size));
    apollo::ProxyTraceReader reader(is);
    apollo::ProxyChunk chunk;
    const apollo::popkernels::Kernels &k = apollo::popkernels::kernels();
    uint64_t rows_total = 0;
    for (int iter = 0; iter < 4096; ++iter) {
        // 777 is not a multiple of 64: served chunks exercise the
        // partial-word re-slicing path of the reader.
        apollo::StatusOr<size_t> got = reader.next(777, chunk);
        if (!got.ok() || *got == 0)
            break;
        const size_t rows = *got;
        const apollo::BitColumnMatrix &bits = chunk.bits;
        for (size_t c = 0; c < bits.cols(); ++c) {
            if (rows & 63) {
                const uint64_t tail =
                    bits.colWords(c)[bits.wordsPerCol() - 1] >>
                    (rows & 63);
                if (tail != 0) {
                    std::fprintf(stderr,
                                 "FUZZ-BUG: decoded chunk leaks tail "
                                 "bits (rows=%zu col=%zu)\n",
                                 rows, c);
                    std::abort();
                }
            }
            const uint64_t pop =
                k.countWords(bits.colWords(c), bits.wordsPerCol());
            if (pop > rows) {
                std::fprintf(stderr,
                             "FUZZ-BUG: column popcount %llu exceeds "
                             "row count %zu\n",
                             static_cast<unsigned long long>(pop),
                             rows);
                std::abort();
            }
        }
        rows_total += rows;
        if (rows_total > (uint64_t{1} << 22))
            break; // the input cannot legitimately be this long
    }
}
