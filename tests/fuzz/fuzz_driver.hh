/**
 * @file
 * Shared fallback fuzz driver (docs/INTERNALS.md §8). Each fuzz target
 * defines apolloFuzzOne(data, size) and gets two entry points:
 *
 *  - LLVMFuzzerTestOneInput, so the same object links against
 *    libFuzzer when the toolchain has one (-DAPOLLO_LIBFUZZER=ON adds
 *    -fsanitize=fuzzer and drops the fallback main);
 *  - a fallback main() that replays every corpus file given on the
 *    command line and then runs a deterministic seeded random-mutation
 *    loop — byte flips, truncations, splices, boundary-value integer
 *    overwrites — against the corpus inputs.
 *
 * Environment knobs (fallback driver):
 *   APOLLO_FUZZ_ITERS    mutation iterations (default 1000)
 *   APOLLO_FUZZ_SECONDS  wall-clock budget; overrides ITERS when set
 *   APOLLO_FUZZ_SEED     base seed (default 0x41505431)
 *
 * The target must never crash, hang, or throw on arbitrary bytes:
 * parsers report malformed input as Status values. The driver itself
 * treats any escaping exception as a bug and aborts with the
 * offending input's seed.
 */

#ifndef APOLLO_TESTS_FUZZ_FUZZ_DRIVER_HH
#define APOLLO_TESTS_FUZZ_FUZZ_DRIVER_HH

#include <cstddef>
#include <cstdint>

/** Defined by each fuzz target. Must tolerate arbitrary bytes. */
void apolloFuzzOne(const uint8_t *data, size_t size);

namespace apollo::fuzz {

/** Fallback driver entry (corpus replay + seeded mutation loop). */
int driverMain(int argc, char **argv);

} // namespace apollo::fuzz

#endif // APOLLO_TESTS_FUZZ_FUZZ_DRIVER_HH
