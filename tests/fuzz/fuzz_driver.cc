#include "fuzz/fuzz_driver.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    apolloFuzzOne(data, size);
    return 0;
}

namespace apollo::fuzz {

namespace {

using Bytes = std::vector<uint8_t>;

std::vector<Bytes>
loadCorpus(int argc, char **argv)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (int i = 1; i < argc; ++i) {
        std::error_code ec;
        const fs::path p(argv[i]);
        if (fs::is_directory(p, ec)) {
            for (const auto &entry : fs::directory_iterator(p, ec))
                if (entry.is_regular_file())
                    files.push_back(entry.path());
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end()); // deterministic replay order

    std::vector<Bytes> corpus;
    for (const fs::path &f : files) {
        std::ifstream is(f, std::ios::binary);
        if (!is)
            continue;
        Bytes bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
        corpus.push_back(std::move(bytes));
    }
    return corpus;
}

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    return std::strtoull(v, nullptr, 0);
}

/** One random structural mutation of @p bytes. */
void
mutate(Xoshiro256StarStar &rng, Bytes &bytes)
{
    static constexpr uint64_t kBoundary[] = {
        0,          1,          0x7f,       0xff,
        0x7fffffff, 0xffffffff, 0x100000000ULL,
        0x7fffffffffffffffULL,  0xffffffffffffffffULL};
    switch (rng.nextBounded(6)) {
      case 0: // flip a byte
        if (!bytes.empty())
            bytes[rng.nextBounded(bytes.size())] ^=
                static_cast<uint8_t>(1 + rng.nextBounded(255));
        break;
      case 1: // truncate
        if (!bytes.empty())
            bytes.resize(rng.nextBounded(bytes.size()));
        break;
      case 2: { // insert random bytes
        const size_t count = 1 + rng.nextBounded(16);
        const size_t at = bytes.empty() ? 0
                                        : rng.nextBounded(bytes.size());
        Bytes blob(count);
        for (uint8_t &b : blob)
            b = static_cast<uint8_t>(rng.nextBounded(256));
        bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(at),
                     blob.begin(), blob.end());
        break;
      }
      case 3: { // duplicate a slice (splice)
        if (bytes.empty())
            break;
        const size_t from = rng.nextBounded(bytes.size());
        const size_t len =
            std::min<size_t>(1 + rng.nextBounded(64),
                             bytes.size() - from);
        Bytes slice(bytes.begin() + static_cast<ptrdiff_t>(from),
                    bytes.begin() + static_cast<ptrdiff_t>(from + len));
        const size_t at = rng.nextBounded(bytes.size());
        bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(at),
                     slice.begin(), slice.end());
        break;
      }
      case 4: { // overwrite 4 bytes with a boundary value
        if (bytes.size() < 4)
            break;
        const uint64_t v = kBoundary[rng.nextBounded(std::size(kBoundary))];
        const uint32_t v32 = static_cast<uint32_t>(v);
        std::memcpy(&bytes[rng.nextBounded(bytes.size() - 3)], &v32, 4);
        break;
      }
      default: { // overwrite 8 bytes with a boundary value
        if (bytes.size() < 8)
            break;
        const uint64_t v = kBoundary[rng.nextBounded(std::size(kBoundary))];
        std::memcpy(&bytes[rng.nextBounded(bytes.size() - 7)], &v, 8);
        break;
      }
    }
    if (bytes.size() > (1u << 20)) // keep inputs bounded
        bytes.resize(1u << 20);
}

uint64_t g_current_seed = 0;

void
runOne(const Bytes &bytes)
{
    try {
        apolloFuzzOne(bytes.data(), bytes.size());
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "FUZZ-BUG: target threw %s (input %zu bytes, "
                     "seed 0x%llx)\n",
                     e.what(), bytes.size(),
                     static_cast<unsigned long long>(g_current_seed));
        std::abort();
    } catch (...) {
        std::fprintf(stderr,
                     "FUZZ-BUG: target threw non-exception (seed "
                     "0x%llx)\n",
                     static_cast<unsigned long long>(g_current_seed));
        std::abort();
    }
}

} // namespace

int
driverMain(int argc, char **argv)
{
    const std::vector<Bytes> corpus = loadCorpus(argc, argv);
    for (const Bytes &input : corpus)
        runOne(input);
    std::printf("fuzz: replayed %zu corpus inputs\n", corpus.size());

    const uint64_t seed = envU64("APOLLO_FUZZ_SEED", 0x41505431);
    const uint64_t iters = envU64("APOLLO_FUZZ_ITERS", 1000);
    const uint64_t seconds = envU64("APOLLO_FUZZ_SECONDS", 0);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(seconds);

    Xoshiro256StarStar rng(hashMix(seed));
    uint64_t ran = 0;
    for (uint64_t i = 0;; ++i) {
        if (seconds > 0) {
            if (std::chrono::steady_clock::now() >= deadline)
                break;
        } else if (i >= iters) {
            break;
        }
        g_current_seed = seed + i;
        Bytes input;
        if (!corpus.empty() && rng.nextDouble() < 0.8)
            input = corpus[rng.nextBounded(corpus.size())];
        else {
            input.resize(rng.nextBounded(4096));
            for (uint8_t &b : input)
                b = static_cast<uint8_t>(rng.nextBounded(256));
        }
        const size_t rounds = 1 + rng.nextBounded(8);
        for (size_t r = 0; r < rounds; ++r)
            mutate(rng, input);
        runOne(input);
        ran++;
    }
    std::printf("fuzz: %llu mutated inputs, no crashes\n",
                static_cast<unsigned long long>(ran));
    return 0;
}

} // namespace apollo::fuzz

#ifndef APOLLO_LIBFUZZER
int
main(int argc, char **argv)
{
    return apollo::fuzz::driverMain(argc, argv);
}
#endif
