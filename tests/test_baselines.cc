/**
 * @file
 * Unit tests for the baseline implementations (core/baselines.cc):
 * Lasso [53], Simmani [40] (per-cycle and windowed), PCA and the
 * PRIMAL-class net wrappers — exercised directly rather than only
 * through the Fig. 10/11 benches.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/baselines.hh"
#include "gen/ga_generator.hh"
#include "ml/metrics.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"

namespace apollo {
namespace {

/** Shared small train/test pair. */
struct BaselineFixtureData
{
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    Dataset train;
    Dataset test;
    std::vector<uint32_t> flipflops;

    BaselineFixtureData()
    {
        DatasetBuilder tb(netlist);
        Xoshiro256StarStar rng(0xba5e);
        for (int i = 0; i < 20; ++i)
            tb.addProgram(
                Program::makeLoop("t" + std::to_string(i),
                                  GaGenerator::randomBody(rng, 6, 24),
                                  4000, rng()),
                300);
        train = tb.build();

        DatasetBuilder eb(netlist);
        for (int i = 0; i < 5; ++i)
            eb.addProgram(
                Program::makeLoop("e" + std::to_string(i),
                                  GaGenerator::randomBody(rng, 6, 24),
                                  4000, rng()),
                400);
        test = eb.build();

        for (size_t c = 0; c < netlist.signalCount(); ++c)
            if (netlist.signal(c).kind == SignalKind::FlipFlop)
                flipflops.push_back(static_cast<uint32_t>(c));
    }
};

const BaselineFixtureData &
fixture()
{
    static BaselineFixtureData data;
    return data;
}

TEST(LassoBaseline, HitsTargetQAndPredictsReasonably)
{
    const auto &fx = fixture();
    const BaselineResult res =
        trainLassoBaseline(fx.train, fx.test, 30);
    EXPECT_EQ(res.monitoredSignals, 30u);
    EXPECT_EQ(res.proxyIds.size(), 30u);
    EXPECT_EQ(res.testPred.size(), fx.test.cycles());
    EXPECT_GT(r2Score(fx.test.y, res.testPred), 0.6);
    EXPECT_GT(res.sumAbsWeights, 0.0);
}

TEST(LassoBaseline, UnderpredictsHighPowerCycles)
{
    // The over-shrunk Lasso model's hallmark: it systematically
    // underestimates the top of the power range (the Fig. 13 bias).
    const auto &fx = fixture();
    const BaselineResult res =
        trainLassoBaseline(fx.train, fx.test, 30);

    // Mean prediction over the top-decile truth cycles.
    std::vector<size_t> order(fx.test.cycles());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return fx.test.y[a] > fx.test.y[b];
    });
    const size_t top = fx.test.cycles() / 10;
    double truth_top = 0.0;
    double pred_top = 0.0;
    for (size_t k = 0; k < top; ++k) {
        truth_top += fx.test.y[order[k]];
        pred_top += res.testPred[order[k]];
    }
    EXPECT_LT(pred_top, truth_top)
        << "Lasso should shrink the high-power predictions";
}

TEST(SimmaniBaseline, RepresentativesAreDistinctSignals)
{
    const auto &fx = fixture();
    SimmaniConfig cfg;
    cfg.clusters = 24;
    const BaselineResult res =
        trainSimmaniBaseline(fx.train, fx.test, cfg);
    EXPECT_LE(res.proxyIds.size(), 24u);
    EXPECT_GE(res.proxyIds.size(), 12u);
    std::set<uint32_t> unique(res.proxyIds.begin(), res.proxyIds.end());
    EXPECT_EQ(unique.size(), res.proxyIds.size());
    EXPECT_GT(r2Score(fx.test.y, res.testPred), 0.5);
}

TEST(SimmaniBaseline, MoreClustersHelp)
{
    const auto &fx = fixture();
    SimmaniConfig small;
    small.clusters = 8;
    SimmaniConfig large;
    large.clusters = 64;
    const auto res_small =
        trainSimmaniBaseline(fx.train, fx.test, small);
    const auto res_large =
        trainSimmaniBaseline(fx.train, fx.test, large);
    EXPECT_LT(nrmse(fx.test.y, res_large.testPred),
              nrmse(fx.test.y, res_small.testPred));
}

TEST(SimmaniBaseline, WindowedPredictionsAlignWithWindowLabels)
{
    const auto &fx = fixture();
    const uint32_t window = 16;
    SimmaniConfig cfg;
    cfg.clusters = 24;
    const BaselineResult res =
        trainSimmaniWindowed(fx.train, fx.test, window, cfg);
    const CountDataset agg = aggregateIntervals(fx.test, window);
    ASSERT_EQ(res.testPred.size(), agg.intervals());
    EXPECT_GT(r2Score(agg.y, res.testPred), 0.6);
}

TEST(PcaBaseline, UsesAllSignalsAndIsAccurate)
{
    const auto &fx = fixture();
    const BaselineResult res = trainPcaBaseline(fx.train, fx.test, 16);
    EXPECT_EQ(res.monitoredSignals, fx.train.signals());
    EXPECT_GT(r2Score(fx.test.y, res.testPred), 0.85);
}

TEST(PcaBaseline, MoreComponentsHelp)
{
    const auto &fx = fixture();
    const auto res4 = trainPcaBaseline(fx.train, fx.test, 4);
    const auto res32 = trainPcaBaseline(fx.train, fx.test, 32);
    EXPECT_LT(nrmse(fx.test.y, res32.testPred),
              nrmse(fx.test.y, res4.testPred));
}

TEST(PrimalBaseline, UsesFlipflopsOnlyAndLearns)
{
    const auto &fx = fixture();
    const BaselineResult res = trainPrimalNetBaseline(
        fx.train, fx.test, fx.flipflops, /*epochs=*/6);
    EXPECT_EQ(res.monitoredSignals, fx.flipflops.size());
    EXPECT_GT(r2Score(fx.test.y, res.testPred), 0.7);
    EXPECT_GT(res.trainSeconds, 0.0);
}

} // namespace
} // namespace apollo
