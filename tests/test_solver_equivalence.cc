/**
 * @file
 * Equivalence and determinism suite for the layered solver fast path
 * (docs/INTERNALS.md §6). The screened + anchored-cache + vectorized
 * solver must reproduce the reference per-bit scalar solver exactly in
 * selected support and within 1e-5 in weights, across penalties
 * (Lasso/MCP), feature views (Bit/Count/Dense), and warm/cold starts;
 * the parallel gradient passes must be run-to-run deterministic; and
 * the packed-bit kernels must agree with the per-bit scalar reference
 * (bit-identically, for axpy).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/proxy_selector.hh"
#include "gen/ga_generator.hh"
#include "ml/coordinate_descent.hh"
#include "ml/feature_view.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"
#include "util/bitvec.hh"
#include "util/bitvec_kernels.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace apollo {
namespace {

/**
 * Synthetic binary design shared by the equivalence tests: mixed
 * column densities (including one empty and one all-ones column), a
 * row count that is not a multiple of 64, and labels from a planted
 * sparse linear model plus noise.
 */
struct EquivFixtureData
{
    static constexpr size_t kRows = 400;
    static constexpr size_t kCols = 220;

    BitColumnMatrix bits{kRows, kCols};
    CountColumnMatrix counts{kRows, kCols};
    DenseColumnMatrix dense{kRows, kCols};
    std::vector<float> y;

    EquivFixtureData()
    {
        Xoshiro256StarStar rng(0x5eedbeef);
        for (size_t j = 0; j < kCols; ++j) {
            double density = 0.02 + 0.9 * (j % 17) / 17.0;
            if (j == 5)
                density = 0.0; // dead column: excluded from live_
            if (j == 6)
                density = 1.1; // all-ones column
            for (size_t i = 0; i < kRows; ++i) {
                const bool bit = rng.nextDouble() < density;
                if (bit) {
                    bits.setBit(i, j);
                    counts.set(i, j, 1);
                    dense.set(i, j, 1.0f);
                }
            }
        }
        y.resize(kRows);
        for (size_t i = 0; i < kRows; ++i) {
            double v = 0.4 + 0.05 * rng.nextGaussian();
            for (size_t j = 10; j < kCols; j += 13)
                v += 0.03 * (1.0 + j * 0.01) *
                     (bits.get(i, j % kCols) ? 1.0 : 0.0);
            y[i] = static_cast<float>(v);
        }
    }
};

const EquivFixtureData &
equivFixture()
{
    static EquivFixtureData data;
    return data;
}

CdConfig
makeConfig(PenaltyKind kind, double lambda)
{
    CdConfig cfg;
    cfg.penalty.kind = kind;
    cfg.penalty.lambda = lambda;
    cfg.penalty.gamma = 10.0;
    // Converge both solvers far below the 1e-5 comparison tolerance so
    // path differences (sweep order, screening) cannot show up as
    // spurious weight deltas.
    cfg.tol = 1e-7;
    cfg.maxSweeps = 3000;
    return cfg;
}

/** Reference fit: per-bit scalar view, no screening, no parallelism. */
CdResult
referenceFit(const CdConfig &cfg, const CdResult *warm = nullptr)
{
    const auto &fx = equivFixture();
    ScalarBitFeatureView oracle(fx.bits);
    CdConfig ref_cfg = cfg;
    ref_cfg.screen = false;
    CdSolver solver(oracle, fx.y,
                    CdSolver::Options{.parallel = false, .pool = nullptr});
    return solver.fit(ref_cfg, warm);
}

void
expectEquivalent(const CdResult &got, const CdResult &want)
{
    ASSERT_EQ(got.w.size(), want.w.size());
    EXPECT_EQ(got.support(), want.support());
    for (size_t j = 0; j < got.w.size(); ++j)
        EXPECT_NEAR(got.w[j], want.w[j], 1e-5) << "weight " << j;
    EXPECT_NEAR(got.intercept, want.intercept, 1e-5);
}

class SolverEquivalence : public ::testing::TestWithParam<PenaltyKind>
{
  protected:
    double
    lambdaFor(double frac) const
    {
        const auto &fx = equivFixture();
        ScalarBitFeatureView oracle(fx.bits);
        CdSolver solver(
            oracle, fx.y,
            CdSolver::Options{.parallel = false, .pool = nullptr});
        return frac * solver.lambdaMax();
    }

    /** Cold fit then a warm-started continuation fit, as the lambda
     *  path drivers run them, on the optimized (screened) path. */
    template <typename View>
    void
    checkView(const View &view)
    {
        const auto &fx = equivFixture();
        const PenaltyKind kind = GetParam();
        const double lam1 = lambdaFor(0.4);
        const double lam2 = lambdaFor(0.25);

        CdSolver solver(view, fx.y);
        const CdConfig cold_cfg = makeConfig(kind, lam1);
        const CdResult cold = solver.fit(cold_cfg);
        expectEquivalent(cold, referenceFit(cold_cfg));

        CdConfig warm_cfg = makeConfig(kind, lam2);
        warm_cfg.screenLambdaRef = lam1;
        const CdResult warm = solver.fit(warm_cfg, &cold);
        const CdResult ref_cold = referenceFit(cold_cfg);
        expectEquivalent(warm, referenceFit(warm_cfg, &ref_cold));
    }
};

TEST_P(SolverEquivalence, BitViewMatchesScalarOracle)
{
    checkView(BitFeatureView(equivFixture().bits));
}

TEST_P(SolverEquivalence, CountViewMatchesScalarOracle)
{
    checkView(CountFeatureView(equivFixture().counts, 1.0f));
}

TEST_P(SolverEquivalence, DenseViewMatchesScalarOracle)
{
    checkView(DenseFeatureView(equivFixture().dense));
}

INSTANTIATE_TEST_SUITE_P(Penalties, SolverEquivalence,
                         ::testing::Values(PenaltyKind::Lasso,
                                           PenaltyKind::Mcp),
                         [](const auto &info) {
                             return info.param == PenaltyKind::Lasso
                                        ? "Lasso"
                                        : "Mcp";
                         });

TEST(SolverDeterminism, RepeatedParallelFitsAreByteIdentical)
{
    const auto &fx = equivFixture();
    BitFeatureView view(fx.bits);
    ThreadPool pool(4);
    const CdConfig cfg = makeConfig(PenaltyKind::Mcp, 0.01);

    auto run = [&] {
        CdSolver solver(
            view, fx.y,
            CdSolver::Options{.parallel = true, .pool = &pool});
        return solver.fit(cfg);
    };
    const CdResult a = run();
    const CdResult b = run();
    ASSERT_EQ(a.w.size(), b.w.size());
    EXPECT_EQ(0, std::memcmp(a.w.data(), b.w.data(),
                             a.w.size() * sizeof(float)));
    EXPECT_EQ(a.intercept, b.intercept);
    EXPECT_EQ(a.sweeps, b.sweeps);
    EXPECT_EQ(a.kktDots, b.kktDots);
}

TEST(SolverScreening, TinyDesignSelectionUnchangedByScreening)
{
    // End-to-end exactness on real toggle data: proxy selection on the
    // tiny design must pick identical proxies with the screened fast
    // path and with the reference full-sweep path.
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder tb(netlist);
    Xoshiro256StarStar rng(0xc0de);
    for (int i = 0; i < 6; ++i) {
        auto body = GaGenerator::randomBody(rng, 6, 20);
        tb.addProgram(
            Program::makeLoop("t" + std::to_string(i), body, 2000, rng()),
            256);
    }
    const Dataset train = tb.build();
    BitFeatureView view(train.X);

    ProxySelectorConfig cfg;
    cfg.targetQ = 24;
    ProxySelectorConfig ref_cfg = cfg;
    ref_cfg.screen = false;
    ref_cfg.parallel = false;
    const ProxySelection fast = selectProxies(view, train.y, cfg);
    const ProxySelection ref = selectProxies(view, train.y, ref_cfg);
    EXPECT_EQ(fast.proxyIds, ref.proxyIds);
}

/** Random packed words + dense vector for the kernel-agreement tests. */
struct KernelCase
{
    size_t nrows;
    double density;
};

class BitKernelAgreement : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(BitKernelAgreement, DotAndAxpyMatchScalarReference)
{
    const auto [nrows, density] = GetParam();
    BitColumnMatrix m(nrows, 3);
    Xoshiro256StarStar rng(0xfeed + nrows);
    std::vector<float> v(nrows);
    for (size_t i = 0; i < nrows; ++i) {
        v[i] = static_cast<float>(rng.nextGaussian());
        if (rng.nextDouble() < density)
            m.setBit(i, 1);
    }
    for (size_t i = 0; i < nrows; ++i)
        m.setBit(i, 2); // all-ones column; column 0 stays empty

    double norm_v2 = 0.0;
    for (float x : v)
        norm_v2 += static_cast<double>(x) * x;
    const double norm_v = std::sqrt(norm_v2);

    for (size_t col = 0; col < 3; ++col) {
        const double ref = m.dotColumnScalar(col, v.data());
        const double xnorm =
            std::sqrt(static_cast<double>(m.colPopcount(col)));
        const double tol = 1e-9 * (std::abs(ref) + xnorm * norm_v) +
                           1e-12;
        // Exact kernels: double accumulation, any lane split.
        EXPECT_NEAR(bitkernels::dotWordsPortable(m.colWords(col),
                                                 m.wordsPerCol(), nrows,
                                                 v.data()),
                    ref, tol);
        EXPECT_NEAR(m.dotColumn(col, v.data()), ref, tol);
        // Fast kernel: float accumulation within the documented bound.
        EXPECT_NEAR(bitkernels::dotWordsFast(m.colWords(col),
                                             m.wordsPerCol(), nrows,
                                             v.data()),
                    ref, bitkernels::kDotFastRelErr * xnorm * norm_v +
                             1e-12);

        // axpy: every implementation must be bit-identical (exactly
        // one float add per set bit).
        std::vector<float> a = v;
        std::vector<float> b = v;
        m.axpyColumnScalar(col, 0.37f, a.data());
        m.axpyColumn(col, 0.37f, b.data());
        EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                 nrows * sizeof(float)));
        std::vector<float> c = v;
        bitkernels::axpyWordsPortable(m.colWords(col), m.wordsPerCol(),
                                      nrows, 0.37f, c.data());
        EXPECT_EQ(0, std::memcmp(a.data(), c.data(),
                                 nrows * sizeof(float)));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitKernelAgreement,
    ::testing::Values(KernelCase{64, 0.1},   // exactly one word
                      KernelCase{130, 0.5},  // partial tail word
                      KernelCase{1000, 0.03},// sparse: ctz path
                      KernelCase{1000, 0.7}),// dense: vector path
    [](const auto &info) {
        return "n" + std::to_string(info.param.nrows) + "_d" +
               std::to_string(static_cast<int>(info.param.density * 100));
    });

} // namespace
} // namespace apollo
