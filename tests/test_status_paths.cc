/**
 * @file
 * Exhaustive error-path coverage for the Status/StatusOr surfaces of
 * the trace parsers (ISSUE satellite 3): every field boundary of the
 * APTR format truncated in turn, mid-token VCD EOF, forged headers,
 * and arity mismatches — each asserting the *code*, not just failure,
 * so the ParseError/IoError/InvalidArgument contract documented in
 * trace/stream_reader.hh stays pinned.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/dataset_io.hh"
#include "trace/stream_reader.hh"
#include "trace/vcd.hh"

namespace apollo {
namespace {

/** Drain a chunk reader until end-of-trace or the first error. */
Status
drain(ProxyChunkReader &reader, size_t chunk_rows = 64)
{
    ProxyChunk chunk;
    for (int guard = 0; guard < 1 << 16; ++guard) {
        StatusOr<size_t> got = reader.next(chunk_rows, chunk);
        if (!got.ok())
            return got.status();
        if (*got == 0)
            return Status::okStatus();
    }
    ADD_FAILURE() << "reader never terminated";
    return Status::okStatus();
}

std::string
validAptrBytes(size_t rows = 10, size_t cols = 2)
{
    BitColumnMatrix Xq(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        Xq.setBit(r, r % cols);
    std::ostringstream os;
    ProxyTraceWriter writer(os, cols);
    EXPECT_TRUE(writer.append(Xq).ok());
    EXPECT_TRUE(writer.finish().ok());
    return os.str();
}

void
patchU32(std::string &bytes, size_t offset, uint32_t v)
{
    ASSERT_LE(offset + 4, bytes.size());
    bytes.replace(offset, 4,
                  std::string(reinterpret_cast<const char *>(&v), 4));
}

void
patchU64(std::string &bytes, size_t offset, uint64_t v)
{
    ASSERT_LE(offset + 8, bytes.size());
    bytes.replace(offset, 8,
                  std::string(reinterpret_cast<const char *>(&v), 8));
}

// --- APTR: truncation at every field boundary ------------------------

TEST(AptrStatus, EveryPrefixTruncationHasTheDocumentedCode)
{
    const std::string bytes = validAptrBytes();
    // Layout: magic[4] version[4] q[4] cycles[8] | rows[4] data[16] |
    // terminator[4] — 44 bytes total for 10 x 2.
    ASSERT_EQ(bytes.size(), 44u);
    for (size_t len = 0; len < bytes.size(); ++len) {
        std::istringstream is(bytes.substr(0, len));
        ProxyTraceReader reader(is);
        const Status s = drain(reader);
        ASSERT_FALSE(s.ok()) << "prefix of " << len << " bytes parsed";
        // Inside the magic the stream is indistinguishable from a
        // non-APTR file (ParseError); past it, every cut is a
        // premature end of a well-identified stream (IoError).
        const StatusCode want =
            len < 4 ? StatusCode::ParseError : StatusCode::IoError;
        EXPECT_EQ(s.code(), want)
            << "prefix len " << len << ": " << s.toString();
    }
    std::istringstream whole(bytes);
    ProxyTraceReader reader(whole);
    EXPECT_TRUE(drain(reader).ok());
}

TEST(AptrStatus, BadMagicIsParseError)
{
    std::string bytes = validAptrBytes();
    bytes[0] = 'X';
    std::istringstream is(bytes);
    ProxyTraceReader reader(is);
    EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
}

TEST(AptrStatus, BadVersionIsParseError)
{
    std::string bytes = validAptrBytes();
    patchU32(bytes, 4, 999);
    std::istringstream is(bytes);
    ProxyTraceReader reader(is);
    EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
}

TEST(AptrStatus, ZeroOrHugeProxyCountIsParseError)
{
    for (uint32_t q : {uint32_t{0}, (uint32_t{1} << 24) + 1}) {
        std::string bytes = validAptrBytes();
        patchU32(bytes, 8, q);
        std::istringstream is(bytes);
        ProxyTraceReader reader(is);
        EXPECT_EQ(drain(reader).code(), StatusCode::ParseError)
            << "q = " << q;
    }
}

TEST(AptrStatus, CycleCountMismatchIsParseError)
{
    std::string bytes = validAptrBytes();
    patchU64(bytes, 12, 99); // header claims 99, blocks hold 10
    std::istringstream is(bytes);
    ProxyTraceReader reader(is);
    EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
}

TEST(AptrStatus, BlockOverrunningHeaderIsParseError)
{
    std::string bytes = validAptrBytes();
    patchU64(bytes, 12, 4); // header claims 4, first block holds 10
    std::istringstream is(bytes);
    ProxyTraceReader reader(is);
    EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
}

TEST(AptrStatus, ZeroChunkRequestIsInvalidArgument)
{
    const std::string bytes = validAptrBytes();
    std::istringstream is(bytes);
    ProxyTraceReader reader(is);
    ProxyChunk chunk;
    StatusOr<size_t> got = reader.next(0, chunk);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::InvalidArgument);
}

TEST(AptrStatus, WriterArityMismatchIsInvalidArgument)
{
    std::ostringstream os;
    ProxyTraceWriter writer(os, 3);
    BitColumnMatrix wrong(8, 2);
    EXPECT_EQ(writer.append(wrong).code(),
              StatusCode::InvalidArgument);
    BitColumnMatrix right(8, 3);
    EXPECT_TRUE(writer.append(right).ok());
    EXPECT_TRUE(writer.finish().ok());
    EXPECT_EQ(writer.append(right).code(),
              StatusCode::InvalidArgument);
}

// --- VCD: mid-token EOF and malformed bodies -------------------------

const char kVcdHeader[] = "$timescale 1ns $end\n"
                          "$var wire 1 ! sig_a $end\n"
                          "$var wire 1 \" sig_b $end\n"
                          "$enddefinitions $end\n";

TEST(VcdStatus, TruncatedVarDeclarationIsIoError)
{
    // EOF mid-way through the $var field list: the parser knows what
    // it was reading, so this is a premature end, not bad grammar.
    for (const char *frag : {"$var", "$var wire", "$var wire 1",
                             "$var wire 1 !"}) {
        {
            std::istringstream is(frag);
            StatusOr<VcdTrace> got = tryParseVcd(is);
            ASSERT_FALSE(got.ok());
            EXPECT_EQ(got.status().code(), StatusCode::IoError)
                << frag;
        }
        {
            std::istringstream is(frag);
            VcdChunkReader reader(is);
            EXPECT_EQ(drain(reader).code(), StatusCode::IoError)
                << frag;
        }
    }
}

TEST(VcdStatus, NoVarDeclarationsIsParseError)
{
    for (const char *body :
         {"", "$timescale 1ns $end\n$enddefinitions $end\n#0\n"}) {
        {
            std::istringstream is(body);
            StatusOr<VcdTrace> got = tryParseVcd(is);
            ASSERT_FALSE(got.ok());
            EXPECT_EQ(got.status().code(), StatusCode::ParseError);
        }
        {
            std::istringstream is(body);
            VcdChunkReader reader(is);
            EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
        }
    }
}

TEST(VcdStatus, UnknownIdIsParseError)
{
    const std::string body = std::string(kVcdHeader) + "#0\n1z\n#1\n";
    {
        std::istringstream is(body);
        StatusOr<VcdTrace> got = tryParseVcd(is);
        ASSERT_FALSE(got.ok());
        EXPECT_EQ(got.status().code(), StatusCode::ParseError);
    }
    {
        std::istringstream is(body);
        VcdChunkReader reader(is);
        EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
    }
}

TEST(VcdStatus, BadTimestampIsParseError)
{
    const std::string body = std::string(kVcdHeader) + "#zzz\n1!\n";
    {
        std::istringstream is(body);
        StatusOr<VcdTrace> got = tryParseVcd(is);
        ASSERT_FALSE(got.ok());
        EXPECT_EQ(got.status().code(), StatusCode::ParseError);
    }
    {
        std::istringstream is(body);
        VcdChunkReader reader(is);
        EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
    }
}

TEST(VcdStatus, NonMonotonicTimestampIsParseErrorWhenStreaming)
{
    const std::string body =
        std::string(kVcdHeader) + "#5\n1!\n#2\n0!\n";
    std::istringstream is(body);
    VcdChunkReader reader(is);
    EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
}

TEST(VcdStatus, DuplicateIdIsParseErrorWhenStreaming)
{
    const std::string body = "$var wire 1 ! sig_a $end\n"
                             "$var wire 1 ! sig_b $end\n"
                             "$enddefinitions $end\n#0\n";
    std::istringstream is(body);
    VcdChunkReader reader(is);
    EXPECT_EQ(drain(reader).code(), StatusCode::ParseError);
}

TEST(VcdStatus, MidTokenBodyEofIsCleanEndOfTrace)
{
    // The body grammar is whitespace-delimited, so a cut mid-token
    // yields a shorter final token and the trace simply ends at the
    // last complete timestamp — defined, non-erroring behavior.
    const std::string body =
        std::string(kVcdHeader) + "#0\n1!\n#4\n0!\n#8";
    std::istringstream is(body);
    VcdChunkReader reader(is);
    EXPECT_TRUE(drain(reader).ok());
}

// --- Dataset loader --------------------------------------------------

std::string
validDatasetBytes()
{
    Dataset ds;
    ds.X.reset(4, 1);
    ds.X.setBit(1, 0);
    ds.X.setBit(3, 0);
    ds.y = {0.5f, 1.5f, 2.5f, 3.5f};
    ds.segments = {{"seg", 0, 4}};
    std::ostringstream os;
    saveDataset(os, ds);
    return os.str();
}

TEST(DatasetStatus, EveryPrefixTruncationHasTheDocumentedCode)
{
    const std::string bytes = validDatasetBytes();
    // magic[4] version[4] rows[8] cols[8] col words[8] y[16]
    // n_segments[8] name_len[8] name[3] begin[8] end[8] — 83 bytes.
    ASSERT_EQ(bytes.size(), 83u);
    for (size_t len = 0; len < bytes.size(); ++len) {
        std::istringstream is(bytes.substr(0, len));
        StatusOr<Dataset> got = tryLoadDataset(is);
        ASSERT_FALSE(got.ok()) << "prefix of " << len << " bytes";
        const StatusCode want =
            len < 4 ? StatusCode::ParseError : StatusCode::IoError;
        EXPECT_EQ(got.status().code(), want)
            << "prefix len " << len << ": "
            << got.status().toString();
    }
    std::istringstream whole(bytes);
    StatusOr<Dataset> got = tryLoadDataset(whole);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got->X.rows(), 4u);
    EXPECT_EQ(got->segments.size(), 1u);
}

TEST(DatasetStatus, ForgedFieldsAreParseErrors)
{
    {
        std::string bytes = validDatasetBytes();
        bytes[2] = 'X'; // magic
        std::istringstream is(bytes);
        EXPECT_EQ(tryLoadDataset(is).status().code(),
                  StatusCode::ParseError);
    }
    {
        std::string bytes = validDatasetBytes();
        patchU32(bytes, 4, 42); // version
        std::istringstream is(bytes);
        EXPECT_EQ(tryLoadDataset(is).status().code(),
                  StatusCode::ParseError);
    }
    {
        std::string bytes = validDatasetBytes();
        patchU64(bytes, 8, 0); // rows = 0
        std::istringstream is(bytes);
        EXPECT_EQ(tryLoadDataset(is).status().code(),
                  StatusCode::ParseError);
    }
    {
        std::string bytes = validDatasetBytes();
        patchU64(bytes, 48, 1000); // n_segments > rows
        std::istringstream is(bytes);
        EXPECT_EQ(tryLoadDataset(is).status().code(),
                  StatusCode::ParseError);
    }
    {
        std::string bytes = validDatasetBytes();
        patchU64(bytes, 56, 1 << 20); // name_len
        std::istringstream is(bytes);
        EXPECT_EQ(tryLoadDataset(is).status().code(),
                  StatusCode::ParseError);
    }
    {
        std::string bytes = validDatasetBytes();
        patchU64(bytes, 75, 99); // segment end > rows
        std::istringstream is(bytes);
        EXPECT_EQ(tryLoadDataset(is).status().code(),
                  StatusCode::ParseError);
    }
}

} // namespace
} // namespace apollo
