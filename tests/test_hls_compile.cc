/**
 * @file
 * End-to-end check of the HLS emitter: the generated OPM C++ source is
 * compiled with the host compiler and executed against a pseudo-random
 * toggle pattern; its outputs must match the bit-true OpmSimulator
 * *exactly* (same integers), proving the emitted hardware template and
 * the simulator implement the same micro-architecture.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/apollo_trainer.hh"
#include "gen/ga_generator.hh"
#include "opm/hls_emitter.hh"
#include "opm/opm_simulator.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"
#include "util/rng.hh"

namespace apollo {
namespace {

TEST(HlsCompile, EmittedSourceCompilesAndMatchesSimulator)
{
    // Train a small model.
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(nl);
    Xoshiro256StarStar rng(0x415);
    for (int i = 0; i < 10; ++i)
        builder.addProgram(
            Program::makeLoop("p" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 20), 3000,
                              rng()),
            200);
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 24;
    const ApolloModel model =
        trainApollo(builder.build(), cfg, "tiny").model;
    const QuantizedModel qm = quantizeModel(model, 10);
    const uint32_t window = 8;

    // Reference: the bit-true simulator over a pseudo-random pattern.
    const size_t cycles = 64;
    BitColumnMatrix pattern(cycles, qm.proxyCount());
    for (size_t i = 0; i < cycles; ++i)
        for (size_t q = 0; q < qm.proxyCount(); ++q)
            if (hashToUnitFloat(hashMix(i * 131 + q)) < 0.3f)
                pattern.setBit(i, q);
    OpmSimulator sim(qm, window);
    std::vector<int64_t> reference;
    {
        const size_t words = (qm.proxyCount() + 63) / 64;
        std::vector<uint64_t> row(words);
        for (size_t i = 0; i < cycles; ++i) {
            std::fill(row.begin(), row.end(), 0);
            for (size_t q = 0; q < qm.proxyCount(); ++q)
                if (pattern.get(i, q))
                    row[q >> 6] |= 1ULL << (q & 63);
            const auto out = sim.step(row.data());
            if (out.valid)
                reference.push_back(out.raw);
        }
    }
    ASSERT_EQ(reference.size(), cycles / window);

    // Emit the OPM source plus a driver main() replaying the pattern.
    const auto dir = std::filesystem::temp_directory_path() /
                     "apollo_hls_test";
    std::filesystem::create_directories(dir);
    const auto src_path = dir / "opm_main.cc";
    const auto bin_path = dir / "opm_main";
    {
        std::ofstream os(src_path);
        os << emitOpmHlsSource(qm, window, "dut");
        os << "\n#include <cstdio>\n";
        os << "int main() {\n";
        os << "    dut opm;\n";
        os << "    bool toggles[dut::kQ];\n";
        os << "    for (unsigned i = 0; i < " << cycles << "; ++i) {\n";
        os << "        unsigned bits_seed;\n";
        os << "        (void)bits_seed;\n";
        // Re-derive the same pattern from the same hash.
        os << "        for (unsigned q = 0; q < dut::kQ; ++q) {\n";
        os << "            unsigned long long x = 1ull * i * 131 + q;\n";
        os << "            x ^= x >> 33; x *= 0xff51afd7ed558ccdULL;\n";
        os << "            x ^= x >> 33; x *= 0xc4ceb9fe1a85ec53ULL;\n";
        os << "            x ^= x >> 33;\n";
        os << "            toggles[q] = (float)(x >> 40) *\n";
        os << "                (1.0f / 16777216.0f) < 0.3f;\n";
        os << "        }\n";
        os << "        opm.step(toggles);\n";
        os << "        if (opm.out_valid)\n";
        os << "            std::printf(\"%lld\\n\",\n";
        os << "                        (long long)opm.out);\n";
        os << "    }\n";
        os << "    return 0;\n";
        os << "}\n";
    }

    const std::string compile = "c++ -std=c++17 -O1 -o " +
                                bin_path.string() + " " +
                                src_path.string() + " 2>&1";
    const int compile_rc = std::system(compile.c_str());
    ASSERT_EQ(compile_rc, 0) << "emitted OPM source failed to compile";

    // Run and compare outputs.
    const auto out_path = dir / "out.txt";
    const std::string run =
        bin_path.string() + " > " + out_path.string();
    ASSERT_EQ(std::system(run.c_str()), 0);

    std::ifstream results(out_path);
    std::vector<int64_t> produced;
    int64_t value = 0;
    while (results >> value)
        produced.push_back(value);

    ASSERT_EQ(produced.size(), reference.size());
    for (size_t k = 0; k < reference.size(); ++k)
        EXPECT_EQ(produced[k], reference[k]) << "window " << k;

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace apollo
