/**
 * @file
 * Tests for the closed-loop droop-mitigation stack (src/control, §7 /
 * §8.2): the pulsed Throttle interface, the DroopController state
 * machine, the ClosedLoopRunner, and the runDroopLab scenario sweep —
 * including the determinism and analytic-vs-real differential checks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "apollo.hh"

namespace apollo {
namespace {

using control::ClosedLoopConfig;
using control::ClosedLoopResult;
using control::ClosedLoopRunner;
using control::DroopController;
using control::DroopControllerConfig;
using control::DroopLabConfig;
using control::DroopLabReport;
using control::DroopLabRow;
using control::DroopLabWorkload;
using control::PdnScenario;
using control::defaultDroopLabConfig;
using control::TriggerState;

// ---------------------------------------------------------------------
// Throttle: pulsed engage/release and the Scheme3 vec_width clamp.
// ---------------------------------------------------------------------

TEST(ControlThrottle, Scheme3ClampsToVectorWidth)
{
    // Regression: Scheme3 used to grant 1 vector op on even cycles
    // regardless of the machine's vector width, so a scalar-only core
    // (vec_width == 0) was told it could issue a vector op.
    Throttle t(ThrottleMode::Scheme3);
    for (uint64_t cycle = 0; cycle < 8; ++cycle)
        EXPECT_EQ(t.maxVectorIssue(cycle, 0), 0u) << "cycle " << cycle;
    EXPECT_EQ(t.maxVectorIssue(0, 4), 1u);
    EXPECT_EQ(t.maxVectorIssue(1, 4), 0u);
    EXPECT_EQ(t.maxVectorIssue(2, 1), 1u);
}

TEST(ControlThrottle, EngageTightensReleaseRestores)
{
    Throttle t(ThrottleMode::Scheme1); // base: issue capped at 2
    EXPECT_FALSE(t.engaged());
    EXPECT_EQ(t.maxIssue(0, 8), 2u);

    t.engage(ThrottleMode::Proportional, 1);
    EXPECT_TRUE(t.engaged());
    EXPECT_EQ(t.pulsedMode(), ThrottleMode::Proportional);
    // Effective limit is the tighter of base and pulsed.
    EXPECT_EQ(t.maxIssue(0, 8), 1u);

    // Re-engaging replaces the pulsed constraint.
    t.engage(ThrottleMode::Scheme2);
    EXPECT_EQ(t.maxIssue(3, 8), 0u); // duty-cycle blocked cycle
    EXPECT_EQ(t.maxIssue(2, 8), 2u); // base Scheme1 still caps at 2

    t.release();
    EXPECT_FALSE(t.engaged());
    EXPECT_EQ(t.maxIssue(3, 8), 2u);
}

TEST(ControlThrottle, PulsedScheme3LimitsVectorsOnUnthrottledBase)
{
    Throttle t; // base: None
    EXPECT_EQ(t.maxVectorIssue(0, 4), 4u);
    t.engage(ThrottleMode::Scheme3);
    EXPECT_EQ(t.maxVectorIssue(0, 4), 1u);
    EXPECT_EQ(t.maxVectorIssue(1, 4), 0u);
    EXPECT_EQ(t.maxVectorIssue(0, 0), 0u);
    t.release();
    EXPECT_EQ(t.maxVectorIssue(1, 4), 4u);
}

// ---------------------------------------------------------------------
// DroopController state machine.
// ---------------------------------------------------------------------

DroopControllerConfig
controllerConfig(double trigger_delta, uint32_t latency,
                 uint32_t engage_cycles,
                 ThrottleMode policy = ThrottleMode::Scheme1)
{
    DroopControllerConfig cfg;
    cfg.vdd = 1.0; // current == power, keeps the arithmetic readable
    cfg.triggerDelta = trigger_delta;
    cfg.triggerLatency = latency;
    cfg.engageCycles = engage_cycles;
    cfg.policy = policy;
    return cfg;
}

/** Drive the controller over a per-cycle power stream; returns the
 *  decision cycles c where the throttle constrains cycle c + 1. */
std::vector<uint64_t>
engagedDecisionCycles(DroopController &ctl,
                      std::span<const double> power)
{
    Throttle throttle;
    std::vector<uint64_t> engaged;
    for (size_t c = 0; c < power.size(); ++c) {
        ctl.observe(c, power[c]);
        ctl.apply(c, throttle);
        if (throttle.engaged())
            engaged.push_back(c);
    }
    return engaged;
}

TEST(ControlDroopController, TriggerSchedulesWindowAfterLatency)
{
    // Trigger at cycle 2 (delta 2.0 > 0.5), latency 2, engage 3:
    // constrained cycles are [2+1+2, 2+2+3] = [5, 7], so the throttle
    // is engaged after the decisions at cycles 4, 5, 6.
    DroopController ctl(controllerConfig(0.5, 2, 3));
    const std::vector<double> power = {0.0, 0.0, 2.0, 2.0, 2.0,
                                       2.0, 2.0, 2.0, 2.0, 2.0};
    const std::vector<uint64_t> engaged =
        engagedDecisionCycles(ctl, power);
    EXPECT_EQ(engaged, (std::vector<uint64_t>{4, 5, 6}));
    EXPECT_EQ(ctl.triggers(), 1u);
    EXPECT_EQ(ctl.engagedCycles(), 3u);
    EXPECT_EQ(ctl.state(), TriggerState::Idle);
}

TEST(ControlDroopController, RetriggerExtendsTheSingleWindow)
{
    // Triggers at cycles 2 and 4 with latency 0, engage 2: the first
    // window constrains [3, 4]; the retrigger at 4 lands inside it and
    // stretches the release to [5, 6] — one window, decisions [2, 5].
    DroopController ctl(controllerConfig(0.5, 0, 2));
    const std::vector<double> power = {0.0, 0.0, 2.0, 2.0,
                                       4.0, 4.0, 4.0, 4.0};
    const std::vector<uint64_t> engaged =
        engagedDecisionCycles(ctl, power);
    EXPECT_EQ(engaged, (std::vector<uint64_t>{2, 3, 4, 5}));
    EXPECT_EQ(ctl.triggers(), 2u);
    EXPECT_EQ(ctl.engagedCycles(), 4u);
}

TEST(ControlDroopController, NegativeDeltasNeverTrigger)
{
    DroopController ctl(controllerConfig(0.5, 0, 2));
    const std::vector<double> power = {4.0, 3.0, 2.0, 1.0, 0.5, 0.1};
    EXPECT_TRUE(engagedDecisionCycles(ctl, power).empty());
    EXPECT_EQ(ctl.triggers(), 0u);
}

TEST(ControlDroopController, PolicyNoneObservesButNeverEngages)
{
    DroopControllerConfig cfg;
    cfg.vdd = 1.0;
    cfg.policy = ThrottleMode::None;
    ASSERT_TRUE(cfg.validate().ok());
    DroopController ctl(cfg);
    const std::vector<double> power = {0.0, 10.0, 0.0, 10.0};
    EXPECT_TRUE(engagedDecisionCycles(ctl, power).empty());
    EXPECT_EQ(ctl.triggers(), 0u);
    EXPECT_EQ(ctl.engagedCycles(), 0u);
}

TEST(ControlDroopController, ValidateRejectsBadConfigs)
{
    DroopControllerConfig cfg = controllerConfig(0.5, 2, 6);
    EXPECT_TRUE(cfg.validate().ok());

    cfg.vdd = 0.0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.vdd = 1.0;

    cfg.triggerDelta = 0.0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.triggerDelta = -1.0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.triggerDelta = 0.5;

    cfg.engageCycles = 0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.engageCycles = 6;

    cfg.policy = ThrottleMode::Proportional;
    cfg.proportionalLevel = 0;
    EXPECT_FALSE(cfg.validate().ok());

    DroopControllerConfig bad = controllerConfig(0.0, 2, 6);
    EXPECT_THROW(DroopController{bad}, FatalError);
}

// ---------------------------------------------------------------------
// Droop-analysis helpers: percentileCut and the mitigation-parameter
// validation added to simulateWithMitigation.
// ---------------------------------------------------------------------

TEST(DroopPercentile, NearestRankCut)
{
    const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentileCut(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileCut(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentileCut(v, 1.0), 5.0);
    // Index clamps to the last element for q just under 1.
    EXPECT_DOUBLE_EQ(percentileCut(v, 0.999), 4.0);
    const std::vector<double> one = {7.0};
    EXPECT_DOUBLE_EQ(percentileCut(one, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentileCut(one, 1.0), 7.0);
}

TEST(DroopPercentile, RejectsEmptyAndOutOfRange)
{
    const std::vector<double> v = {1.0, 2.0};
    EXPECT_THROW(percentileCut({}, 0.5), FatalError);
    EXPECT_THROW(percentileCut(v, -0.1), FatalError);
    EXPECT_THROW(percentileCut(v, 1.1), FatalError);
}

TEST(DroopMitigation, RejectsDegenerateTriggerAndWindow)
{
    // A non-positive trigger delta used to silently throttle on every
    // cycle (Delta-I of a constant trace is 0 > -x), and a zero-cycle
    // stretch window silently disabled mitigation. Both are now
    // configuration errors.
    const std::vector<float> power(64, 1.0f);
    const PdnParams pdn;
    EXPECT_THROW(simulateWithMitigation(power, power, pdn, 0.7, 0.0,
                                        0.5, 4),
                 FatalError);
    EXPECT_THROW(simulateWithMitigation(power, power, pdn, 0.7, -0.25,
                                        0.5, 4),
                 FatalError);
    EXPECT_THROW(simulateWithMitigation(power, power, pdn, 0.7, 0.1,
                                        0.5, 0),
                 FatalError);
    // The boundary-legal configuration still runs.
    EXPECT_NO_THROW(simulateWithMitigation(power, power, pdn, 0.7,
                                           1e-9, 0.5, 1));
}

// ---------------------------------------------------------------------
// Closed loop + scenario lab on a tiny trained design.
// ---------------------------------------------------------------------

/** One trained tiny model + its 10-bit quantization, shared. */
struct ControlFixtureData
{
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    ApolloModel model;
    QuantizedModel qmodel;

    ControlFixtureData()
    {
        DatasetBuilder tb(netlist);
        Xoshiro256StarStar rng(0xf10);
        for (int i = 0; i < 16; ++i) {
            auto body = GaGenerator::randomBody(rng, 6, 24);
            tb.addProgram(Program::makeLoop("t" + std::to_string(i),
                                            body, 3000, rng()),
                          300);
        }
        ApolloTrainConfig cfg;
        cfg.selection.targetQ = 40;
        model = trainApollo(tb.build(), cfg, "tiny").model;
        qmodel = *tryQuantizeModel(model, 10);
    }
};

const ControlFixtureData &
controlFixture()
{
    static ControlFixtureData data;
    return data;
}

TEST(ControlClosedLoop, OpenLoopRunMatchesReplayAndOracle)
{
    const auto &fx = controlFixture();
    ClosedLoopRunner runner(fx.netlist, fx.qmodel);
    const Program prog = makeLongWorkload("wl", 2000, 42);

    ClosedLoopConfig cfg;
    cfg.controller.policy = ThrottleMode::None;
    cfg.maxCycles = 1200;
    StatusOr<ClosedLoopResult> res = runner.run(prog, cfg);
    ASSERT_TRUE(res.ok()) << res.status().toString();
    EXPECT_EQ(res->triggers, 0u);
    EXPECT_EQ(res->engagedCycles, 0u);
    ASSERT_EQ(res->frames.size(), res->estPower.size());
    ASSERT_EQ(res->frames.size(), res->truthPower.size());

    // An open loop never perturbs the core, so replaying the OPM and
    // the oracle over the collected frames must reproduce the run's
    // estimate and truth traces bit-for-bit.
    const std::vector<float> replay =
        runner.replayEstimate(res->frames, cfg.opmWindow);
    ASSERT_EQ(replay.size(), res->estPower.size());
    for (size_t i = 0; i < replay.size(); ++i)
        ASSERT_EQ(replay[i], res->estPower[i]) << "cycle " << i;
    const std::vector<float> truth = runner.truthPower(res->frames);
    ASSERT_EQ(truth.size(), res->truthPower.size());
    for (size_t i = 0; i < truth.size(); ++i)
        ASSERT_EQ(truth[i], res->truthPower[i]) << "cycle " << i;
}

TEST(ControlClosedLoop, ThrottlingReshapesActivity)
{
    const auto &fx = controlFixture();
    ClosedLoopRunner runner(fx.netlist, fx.qmodel);
    // The lab's steady max-power workload: high IPC, so an issue cap
    // of 1 is guaranteed to bind.
    const DroopLabConfig lab = defaultDroopLabConfig(1200);
    const Program &prog = lab.workloads.back().program;

    ClosedLoopConfig open;
    open.controller.policy = ThrottleMode::None;
    open.maxCycles = 1200;
    StatusOr<ClosedLoopResult> base = runner.run(prog, open);
    ASSERT_TRUE(base.ok());

    // An always-on controller (tiny trigger on a busy trace) must pulse
    // the throttle and change the instruction schedule — the loop is
    // closed, not a post-hoc filter.
    ClosedLoopConfig tight = open;
    tight.controller.policy = ThrottleMode::Proportional;
    tight.controller.proportionalLevel = 1;
    tight.controller.triggerDelta = 1e-9;
    StatusOr<ClosedLoopResult> mit = runner.run(prog, tight);
    ASSERT_TRUE(mit.ok());
    EXPECT_GT(mit->triggers, 0u);
    EXPECT_GT(mit->engagedCycles, 0u);
    EXPECT_LT(mit->stats.ipc(), base->stats.ipc());
}

TEST(DroopLab, ValidateRejectsBadGrids)
{
    const auto &fx = controlFixture();
    DroopLabConfig cfg = defaultDroopLabConfig(400);
    ASSERT_TRUE(cfg.validate().ok());

    DroopLabConfig empty = cfg;
    empty.workloads.clear();
    EXPECT_FALSE(runDroopLab(fx.netlist, fx.model, empty).ok());

    DroopLabConfig bad_window = cfg;
    bad_window.windows = {3};
    EXPECT_FALSE(runDroopLab(fx.netlist, fx.model, bad_window).ok());

    DroopLabConfig none_policy = cfg;
    none_policy.policies = {ThrottleMode::None};
    EXPECT_FALSE(runDroopLab(fx.netlist, fx.model, none_policy).ok());

    DroopLabConfig bad_pct = cfg;
    bad_pct.triggerPercentile = 1.5;
    EXPECT_FALSE(runDroopLab(fx.netlist, fx.model, bad_pct).ok());
}

/** The default lab sweep at 1500 cycles, run once and shared. */
const DroopLabReport &
labReport()
{
    static const DroopLabReport report = [] {
        const auto &fx = controlFixture();
        StatusOr<DroopLabReport> r =
            runDroopLab(fx.netlist, fx.model, defaultDroopLabConfig(1500));
        APOLLO_REQUIRE(r.ok(), "droop lab failed: ",
                       r.status().message());
        return *r;
    }();
    return report;
}

TEST(DroopLab, DefaultGridIsFullyCovered)
{
    const DroopLabReport &rep = labReport();
    // 3 workloads x 2 windows x 2 bit-widths x 3 policies, 1 PDN.
    EXPECT_EQ(rep.gridCells, 36u);
    ASSERT_EQ(rep.rows.size(), 36u);
    for (const DroopLabRow &row : rep.rows) {
        EXPECT_GT(row.triggerDelta, 0.0);
        EXPECT_GE(row.pearsonDeltaI, -1.0);
        EXPECT_LE(row.pearsonDeltaI, 1.0);
        EXPECT_GT(row.baseIpc, 0.0);
        EXPECT_GT(row.ipc, 0.0);
        EXPECT_EQ(row.droopCyclesAvoided,
                  static_cast<int64_t>(row.baseDroopCycles) -
                      static_cast<int64_t>(row.droopCycles));
    }
    // Every (workload, pdn) group carries a Pareto front.
    size_t pareto = 0;
    for (const DroopLabRow &row : rep.rows)
        pareto += row.pareto ? 1 : 0;
    EXPECT_GE(pareto, 3u);

    std::ostringstream os;
    rep.render(os);
    EXPECT_NE(os.str().find("pareto"), std::string::npos);
    EXPECT_NE(rep.toJson().find("apollo.droop_lab.v1"),
              std::string::npos);
}

TEST(DroopLab, SomePolicyDominatesNoMitigation)
{
    // The acceptance bar: at least one OPM-guided cell strictly reduces
    // droop cycles at under 10% IPC loss on the default grid.
    EXPECT_TRUE(labReport().hasDominatingPolicy(0.10));
}

TEST(DroopLab, BitIdenticalAcrossThreadCountsAndReruns)
{
    const auto &fx = controlFixture();
    const DroopLabConfig base = defaultDroopLabConfig(600);

    std::vector<std::string> reports;
    for (uint32_t threads : {1u, 2u, 0u, 2u}) {
        DroopLabConfig cfg = base;
        cfg.threads = threads;
        StatusOr<DroopLabReport> r =
            runDroopLab(fx.netlist, fx.model, cfg);
        ASSERT_TRUE(r.ok()) << r.status().toString();
        reports.push_back(r->toJson());
    }
    for (size_t i = 1; i < reports.size(); ++i)
        EXPECT_EQ(reports[0], reports[i]) << "variant " << i;
}

TEST(DroopLab, AnalyticMitigationAgreesWithClosedLoop)
{
    // Differential check between the two mitigation paths: the analytic
    // simulateWithMitigation current-cap and the real closed loop must
    // agree on the *sign* of droop-cycles-avoided, and both must order
    // the mitigated run at or below the unmitigated baseline.
    const auto &fx = controlFixture();
    const DroopLabConfig lab = defaultDroopLabConfig(1500);
    const DroopLabWorkload &wl = lab.workloads[0]; // burst_idle
    ClosedLoopRunner runner(fx.netlist, fx.qmodel);

    ClosedLoopConfig open;
    open.controller.policy = ThrottleMode::None;
    open.maxCycles = wl.cycles;
    StatusOr<ClosedLoopResult> base = runner.run(wl.program, open);
    ASSERT_TRUE(base.ok());

    // Same calibration and PDN normalization the lab applies.
    const std::vector<double> di =
        deltaI(currentFromPower(base->estPower, lab.vdd));
    std::vector<double> mags(di.size() - 1);
    for (size_t i = 1; i < di.size(); ++i)
        mags[i - 1] = std::abs(di[i]);
    const double trigger =
        percentileCut(mags, lab.triggerPercentile);
    ASSERT_GT(trigger, 0.0);

    double mean_current = 0.0;
    for (float p : base->truthPower)
        mean_current += p / lab.vdd;
    mean_current /= static_cast<double>(base->truthPower.size());
    const PdnScenario &scen = lab.pdns[0];
    PdnParams pdn;
    pdn.vdd = lab.vdd;
    pdn.resonancePeriodCycles = scen.resonancePeriodCycles;
    pdn.damping = scen.damping;
    pdn.rStatic = scen.rStaticVolts / mean_current;
    pdn.dynamicGain = scen.dynamicGainVolts / mean_current;
    const double threshold = lab.vdd * scen.thresholdFrac;

    const DroopSimResult unmit =
        simulateDroop(base->truthPower, pdn, threshold);
    ASSERT_GT(unmit.droopCycles, 0u) << "baseline never droops";

    const DroopSimResult analytic = simulateWithMitigation(
        base->truthPower, base->estPower, pdn, threshold, trigger, 0.5,
        lab.engageCycles);

    ClosedLoopConfig mit = open;
    mit.controller.policy = ThrottleMode::Proportional;
    mit.controller.proportionalLevel = lab.proportionalLevel;
    mit.controller.vdd = lab.vdd;
    mit.controller.triggerDelta = trigger;
    mit.controller.triggerLatency = lab.triggerLatency;
    mit.controller.engageCycles = lab.engageCycles;
    StatusOr<ClosedLoopResult> real = runner.run(wl.program, mit);
    ASSERT_TRUE(real.ok());
    const DroopSimResult real_droop =
        simulateDroop(real->truthPower, pdn, threshold);

    const int64_t avoided_analytic =
        static_cast<int64_t>(unmit.droopCycles) -
        static_cast<int64_t>(analytic.droopCycles);
    const int64_t avoided_real =
        static_cast<int64_t>(unmit.droopCycles) -
        static_cast<int64_t>(real_droop.droopCycles);
    EXPECT_GT(avoided_analytic, 0);
    EXPECT_GT(avoided_real, 0);
    // Ordering: mitigated <= baseline on both paths.
    EXPECT_LE(analytic.droopCycles, unmit.droopCycles);
    EXPECT_LE(real_droop.droopCycles, unmit.droopCycles);
}

} // namespace
} // namespace apollo
