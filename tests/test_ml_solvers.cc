/**
 * @file
 * Tests for the ML solver stack: penalty math (Eqs. 5-7), coordinate
 * descent on synthetic problems with known solutions, lambda paths and
 * target-Q search, metrics, and VIF. Includes parameterized property
 * sweeps over the MCP penalty.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/coordinate_descent.hh"
#include "ml/metrics.hh"
#include "ml/penalty.hh"
#include "ml/solver_path.hh"
#include "util/rng.hh"

namespace apollo {
namespace {

TEST(Penalty, SoftThreshold)
{
    EXPECT_DOUBLE_EQ(softThreshold(3.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(softThreshold(-3.0, 1.0), -2.0);
    EXPECT_DOUBLE_EQ(softThreshold(0.5, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(softThreshold(-0.5, 1.0), 0.0);
}

TEST(Penalty, LassoValueMatchesEq5)
{
    PenaltyConfig cfg;
    cfg.kind = PenaltyKind::Lasso;
    cfg.lambda = 2.0;
    EXPECT_DOUBLE_EQ(penaltyValue(3.0, cfg), 6.0);
    EXPECT_DOUBLE_EQ(penaltyValue(-3.0, cfg), 6.0);
    EXPECT_DOUBLE_EQ(penaltyDerivativeMagnitude(0.5, cfg), 2.0);
    EXPECT_DOUBLE_EQ(penaltyDerivativeMagnitude(100.0, cfg), 2.0);
}

/** Property sweep over the MCP penalty (Eqs. 6-7). */
class McpPenaltyProperty
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(McpPenaltyProperty, ValueAndDerivativeForms)
{
    const auto [lambda, gamma] = GetParam();
    PenaltyConfig cfg;
    cfg.kind = PenaltyKind::Mcp;
    cfg.lambda = lambda;
    cfg.gamma = gamma;

    const double knee = gamma * lambda;
    // Inside the concave region: Eq. (6) first branch.
    for (double w : {0.1 * knee, 0.5 * knee, 0.99 * knee}) {
        EXPECT_NEAR(penaltyValue(w, cfg),
                    lambda * w - w * w / (2.0 * gamma), 1e-12);
        // Eq. (7): derivative magnitude lambda - |w|/gamma.
        EXPECT_NEAR(penaltyDerivativeMagnitude(w, cfg),
                    lambda - w / gamma, 1e-12);
    }
    // Beyond the knee: constant penalty, zero shrinking (Eq. 7).
    for (double w : {1.01 * knee, 2.0 * knee, 50.0 * knee}) {
        EXPECT_NEAR(penaltyValue(w, cfg),
                    0.5 * gamma * lambda * lambda, 1e-12);
        EXPECT_DOUBLE_EQ(penaltyDerivativeMagnitude(w, cfg), 0.0);
    }
    // Continuity at the knee.
    EXPECT_NEAR(penaltyValue(knee - 1e-9, cfg),
                penaltyValue(knee + 1e-9, cfg), 1e-6);
    // Symmetry.
    EXPECT_DOUBLE_EQ(penaltyValue(0.3 * knee, cfg),
                     penaltyValue(-0.3 * knee, cfg));
    // MCP never exceeds Lasso at the same lambda.
    PenaltyConfig lasso = cfg;
    lasso.kind = PenaltyKind::Lasso;
    for (double w = 0.0; w < 3.0 * knee; w += 0.1 * knee + 1e-6)
        EXPECT_LE(penaltyValue(w, cfg), penaltyValue(w, lasso) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    LambdaGammaGrid, McpPenaltyProperty,
    ::testing::Combine(::testing::Values(0.1, 1.0, 3.0),
                       ::testing::Values(2.0, 3.0, 10.0)));

/** Coordinate-update property: the closed form minimizes the scalar
 *  subproblem 0.5*a*w^2 - rho*w + P(|w|). */
class CoordinateUpdateProperty
    : public ::testing::TestWithParam<std::tuple<int, double, double>>
{};

TEST_P(CoordinateUpdateProperty, ClosedFormBeatsGridScan)
{
    const auto [kind_i, rho, a] = GetParam();
    PenaltyConfig cfg;
    cfg.kind = static_cast<PenaltyKind>(kind_i);
    cfg.lambda = 0.5;
    cfg.gamma = 4.0;
    cfg.lambda2 = cfg.kind == PenaltyKind::Ridge ? 0.3 : 0.0;

    const double w_star = coordinateUpdate(rho, a, cfg);
    auto objective = [&](double w) {
        return 0.5 * a * w * w - rho * w + penaltyValue(w, cfg);
    };
    const double f_star = objective(w_star);
    for (double w = -6.0; w <= 6.0; w += 0.001)
        ASSERT_GE(objective(w) + 1e-9, f_star)
            << "grid point " << w << " beats closed form " << w_star;
}

INSTANTIATE_TEST_SUITE_P(
    KindsRhosNorms, CoordinateUpdateProperty,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(PenaltyKind::Ridge),
                          static_cast<int>(PenaltyKind::Lasso),
                          static_cast<int>(PenaltyKind::Mcp)),
        ::testing::Values(-2.0, -0.3, 0.0, 0.3, 2.0),
        ::testing::Values(0.5, 1.0, 2.0)));

TEST(Penalty, NonnegClampsUpdates)
{
    PenaltyConfig cfg;
    cfg.kind = PenaltyKind::Lasso;
    cfg.lambda = 0.1;
    cfg.nonneg = true;
    EXPECT_DOUBLE_EQ(coordinateUpdate(-2.0, 1.0, cfg), 0.0);
    EXPECT_GT(coordinateUpdate(2.0, 1.0, cfg), 0.0);
}

/** Synthetic sparse regression problem over binary features. */
struct SparseProblem
{
    BitColumnMatrix X;
    std::vector<float> y;
    std::vector<float> trueW;
    double intercept = 2.0;
};

SparseProblem
makeProblem(size_t n, size_t m, size_t k, uint64_t seed,
            double noise = 0.05)
{
    SparseProblem prob;
    prob.X.reset(n, m);
    prob.trueW.assign(m, 0.0f);
    Xoshiro256StarStar rng(seed);
    for (size_t c = 0; c < m; ++c) {
        const double rate = 0.05 + 0.3 * rng.nextDouble();
        for (size_t r = 0; r < n; ++r)
            if (rng.nextDouble() < rate)
                prob.X.setBit(r, c);
    }
    for (size_t j = 0; j < k; ++j)
        prob.trueW[j * (m / k)] =
            static_cast<float>(1.0 + 2.0 * rng.nextDouble());
    prob.y.resize(n);
    for (size_t r = 0; r < n; ++r) {
        double acc = prob.intercept;
        for (size_t c = 0; c < m; ++c)
            if (prob.trueW[c] != 0.0f && prob.X.get(r, c))
                acc += prob.trueW[c];
        prob.y[r] =
            static_cast<float>(acc + noise * rng.nextGaussian());
    }
    return prob;
}

TEST(CdSolver, OlsRecoversPlantedModel)
{
    const SparseProblem prob = makeProblem(2000, 30, 5, 11);
    BitFeatureView view(prob.X);
    CdSolver solver(view, prob.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Ridge;
    cfg.penalty.lambda2 = 1e-6;
    cfg.maxSweeps = 500;
    cfg.tol = 1e-7;
    const CdResult fit = solver.fit(cfg);
    EXPECT_TRUE(fit.converged);
    EXPECT_NEAR(fit.intercept, prob.intercept, 0.1);
    for (size_t c = 0; c < 30; ++c)
        EXPECT_NEAR(fit.w[c], prob.trueW[c], 0.08) << "weight " << c;
}

TEST(CdSolver, LassoFindsPlantedSupport)
{
    const SparseProblem prob = makeProblem(3000, 120, 6, 17);
    BitFeatureView view(prob.X);
    CdSolver solver(view, prob.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Lasso;
    const CdResult fit = solveForTargetQ(solver, cfg, 6);
    const auto support = fit.support();
    ASSERT_EQ(support.size(), 6u);
    for (uint32_t j : support)
        EXPECT_GT(prob.trueW[j], 0.0f)
            << "selected a spurious feature " << j;
}

TEST(CdSolver, McpWeightsLessBiasedThanLasso)
{
    // At the same support size, MCP's surviving weights should be
    // closer to the planted values than Lasso's over-shrunk ones
    // (the Fig. 13 effect).
    const SparseProblem prob = makeProblem(3000, 120, 6, 23, 0.02);
    BitFeatureView view(prob.X);
    CdSolver solver(view, prob.y);

    CdConfig lasso;
    lasso.penalty.kind = PenaltyKind::Lasso;
    const CdResult lasso_fit = solveForTargetQ(solver, lasso, 6);

    CdConfig mcp;
    mcp.penalty.kind = PenaltyKind::Mcp;
    mcp.penalty.gamma = 10.0;
    const CdResult mcp_fit = solveForTargetQ(solver, mcp, 6);

    double lasso_sum = 0.0;
    double mcp_sum = 0.0;
    double true_sum = 0.0;
    for (size_t c = 0; c < 120; ++c) {
        lasso_sum += std::abs(lasso_fit.w[c]);
        mcp_sum += std::abs(mcp_fit.w[c]);
        true_sum += std::abs(prob.trueW[c]);
    }
    EXPECT_GT(mcp_sum, lasso_sum)
        << "MCP must leave large weights unshrunk";
    EXPECT_NEAR(mcp_sum, true_sum, 0.15 * true_sum);
}

TEST(CdSolver, LambdaMaxYieldsEmptyModel)
{
    const SparseProblem prob = makeProblem(1500, 60, 4, 31);
    BitFeatureView view(prob.X);
    CdSolver solver(view, prob.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Lasso;
    cfg.penalty.lambda = solver.lambdaMax() * 1.0001;
    const CdResult fit = solver.fit(cfg);
    EXPECT_EQ(fit.nonzeros(), 0u);

    cfg.penalty.lambda = solver.lambdaMax() * 0.8;
    const CdResult fit2 = solver.fit(cfg);
    EXPECT_GT(fit2.nonzeros(), 0u);
}

TEST(CdSolver, WarmStartConvergesFaster)
{
    const SparseProblem prob = makeProblem(3000, 150, 8, 37);
    BitFeatureView view(prob.X);
    CdSolver solver(view, prob.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Lasso;
    cfg.penalty.lambda = solver.lambdaMax() * 0.1;

    const CdResult cold = solver.fit(cfg);
    const CdResult warm = solver.fit(cfg, &cold);
    EXPECT_LE(warm.sweeps, cold.sweeps);
    EXPECT_NEAR(warm.trainMse, cold.trainMse, 1e-6 + 0.01 * cold.trainMse);
}

TEST(SolverPath, MonotoneSupportGrowth)
{
    const SparseProblem prob = makeProblem(2000, 100, 8, 41);
    BitFeatureView view(prob.X);
    CdSolver solver(view, prob.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Mcp;
    PathConfig pc;
    pc.stopAtNonzeros = 50;
    const auto path = runLambdaPath(solver, cfg, pc);
    ASSERT_GT(path.size(), 3u);
    // Support should (weakly) grow as lambda decreases, modulo small
    // local non-monotonicity from the non-convex penalty; check the
    // trend via endpoints.
    EXPECT_LT(path.front().nonzeros, path.back().nonzeros);
    for (size_t i = 1; i < path.size(); ++i)
        EXPECT_LT(path[i].lambda, path[i - 1].lambda);
}

TEST(SolverPath, MultiTargetMatchesSingleTarget)
{
    const SparseProblem prob = makeProblem(2500, 150, 10, 43);
    BitFeatureView view(prob.X);
    CdSolver solver(view, prob.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Mcp;

    const std::vector<size_t> targets = {5, 12, 25};
    const auto multi = solveForTargetsQ(solver, cfg, targets);
    ASSERT_EQ(multi.size(), 3u);
    for (size_t i = 0; i < targets.size(); ++i)
        EXPECT_EQ(multi[i].nonzeros(), targets[i]) << "target " << i;
}

TEST(Metrics, PerfectAndMeanPredictors)
{
    std::vector<float> y = {1, 2, 3, 4, 5};
    std::vector<float> perfect = y;
    EXPECT_DOUBLE_EQ(r2Score(y, perfect), 1.0);
    EXPECT_DOUBLE_EQ(nrmse(y, perfect), 0.0);
    EXPECT_DOUBLE_EQ(nmae(y, perfect), 0.0);

    std::vector<float> mean_pred(5, 3.0f);
    EXPECT_NEAR(r2Score(y, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, NrmseMatchesHandComputation)
{
    std::vector<float> y = {2, 2, 2, 2};
    std::vector<float> p = {1, 3, 1, 3};
    // RMSE = 1, mean = 2 -> NRMSE = 0.5. NMAE = 4/8 = 0.5.
    EXPECT_DOUBLE_EQ(nrmse(y, p), 0.5);
    EXPECT_DOUBLE_EQ(nmae(y, p), 0.5);
}

TEST(Metrics, PearsonSignsAndScale)
{
    std::vector<float> a = {1, 2, 3, 4};
    std::vector<float> b = {2, 4, 6, 8};
    std::vector<float> c = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Metrics, VifDetectsCorrelatedColumns)
{
    // Build two near-duplicate columns + independents.
    const size_t n = 2000;
    BitColumnMatrix corr(n, 4);
    BitColumnMatrix indep(n, 4);
    Xoshiro256StarStar rng(3);
    for (size_t r = 0; r < n; ++r) {
        const bool base = rng.nextDouble() < 0.3;
        if (base) {
            corr.setBit(r, 0);
            if (rng.nextDouble() < 0.95)
                corr.setBit(r, 1); // near-duplicate of col 0
        }
        for (size_t c = 2; c < 4; ++c)
            if (rng.nextDouble() < 0.3)
                corr.setBit(r, c);
        for (size_t c = 0; c < 4; ++c)
            if (rng.nextDouble() < 0.3)
                indep.setBit(r, c);
    }
    const double vif_corr = averageVif(corr);
    const double vif_indep = averageVif(indep);
    EXPECT_GT(vif_corr, 2.0 * vif_indep);
    EXPECT_LT(vif_indep, 1.5);
}

} // namespace
} // namespace apollo
