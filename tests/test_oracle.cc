/**
 * @file
 * The differential-oracle suite (docs/INTERNALS.md §8): every
 * registered production path runs >= 200 deterministic seeded cases
 * against its src/ref oracle. Failures print one-line replay seeds;
 * re-run a single case with APOLLO_ORACLE_SEED=0x... .
 */

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "harness/differential.hh"

namespace apollo::harness {
namespace {

constexpr size_t kCasesPerPath = 220;

/**
 * Pins the exact oracle coverage. A new production inference, solver,
 * or quantization fast path MUST add a src/ref oracle and register it
 * in tests/harness/oracles.cc — extend this list in the same change.
 */
TEST(OracleRegistry, CoversEveryProductionPath)
{
    const std::vector<std::string> expected = {
        "infer.batch_proxies",   "infer.batch_full",
        "infer.windows_eq9",     "infer.stream_percycle",
        "infer.stream_windows",  "opm.quantize",
        "opm.quantize_roundtrip", "opm.simulate",
        "opm.stream_quantized",  "stream.bitparallel_vs_scalar",
        "solver.cd_bits",        "solver.cd_counts",
        "solver.cd_dense",       "solver.target_q",
        "solver.shard_prefilter",
        "gen.toggle_columns",    "gen.fitness_power",
        "gen.ga_pipeline",       "control.droop_trigger",
    };
    std::vector<std::string> actual;
    for (const OracleEntry &e : oracleRegistry())
        actual.push_back(e.path);
    std::vector<std::string> es = expected, as = actual;
    std::sort(es.begin(), es.end());
    std::sort(as.begin(), as.end());
    EXPECT_EQ(es, as) << "oracle registry and pinned path list differ";
    for (const OracleEntry &e : oracleRegistry())
        EXPECT_TRUE(static_cast<bool>(e.runOne))
            << e.path << " has no runner";
}

TEST(OracleRegistry, BaseSeedsAreDistinct)
{
    std::vector<uint64_t> seeds;
    for (const OracleEntry &e : oracleRegistry())
        seeds.push_back(oracleBaseSeed(e.path));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

class DifferentialOracle
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(DifferentialOracle, MatchesReference)
{
    const OracleEntry *entry = findOracle(GetParam());
    ASSERT_NE(entry, nullptr);
    runOracle(*entry, kCasesPerPath);
}

std::vector<std::string>
allPaths()
{
    std::vector<std::string> paths;
    for (const OracleEntry &e : oracleRegistry())
        paths.push_back(e.path);
    return paths;
}

INSTANTIATE_TEST_SUITE_P(
    AllPaths, DifferentialOracle, ::testing::ValuesIn(allPaths()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &ch : name)
            if (ch == '.')
                ch = '_';
        return name;
    });

} // namespace
} // namespace apollo::harness
