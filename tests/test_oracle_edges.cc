/**
 * @file
 * Edge-case pins riding on the differential-oracle layer (docs/
 * INTERNALS.md §8): degenerate shapes the generated sweeps cross only
 * occasionally are pinned here explicitly — Q=0 selection, tau=1
 * window/per-cycle agreement, minimum-width quantization, empty and
 * single-cycle traces — plus regression pins for the real divergences
 * the oracle layer uncovered, each tagged with the production path
 * that exposed it.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "apollo.hh"
#include "trace/dataset_io.hh"
#include "ref/reference_kernels.hh"
#include "trace/stream_reader.hh"
#include "trace/vcd.hh"
#include "util/logging.hh"

namespace apollo {
namespace {

ApolloModel
smallModel()
{
    ApolloModel m;
    m.proxyIds = {0, 1, 2};
    m.weights = {0.5f, -1.25f, 2.0f};
    m.intercept = 0.75;
    return m;
}

BitColumnMatrix
checkerboard(size_t rows, size_t cols)
{
    BitColumnMatrix X(rows, cols);
    for (size_t c = 0; c < cols; ++c)
        for (size_t r = 0; r < rows; ++r)
            if ((r + c) % 2 == 0)
                X.setBit(r, c);
    return X;
}

// --- Q = 0 selection -------------------------------------------------

TEST(OracleEdges, TargetQZeroIsRejected)
{
    BitColumnMatrix X = checkerboard(16, 4);
    std::vector<float> y(16, 0.0f);
    for (size_t i = 0; i < 16; ++i)
        y[i] = static_cast<float>(i % 3);
    BitFeatureView view(X);
    CdSolver solver(view, y, CdSolver::Options{.parallel = false});
    CdConfig base;
    base.penalty.kind = PenaltyKind::Lasso;
    EXPECT_THROW(solveForTargetQ(solver, base, 0), FatalError);
}

TEST(OracleEdges, EmptyModelInference)
{
    ApolloModel m;
    m.intercept = 1.5;
    BitColumnMatrix Xq(6, 0);
    const std::vector<float> out = m.predictProxies(Xq);
    ASSERT_EQ(out.size(), 6u);
    for (float v : out)
        EXPECT_EQ(v, 1.5f);
    EXPECT_EQ(out, ref::predictProxies(m, Xq));

    // A zero-proxy OPM is a meaningless piece of hardware: rejected at
    // construction rather than silently emitting the intercept.
    const QuantizedModel qm = quantizeModel(m, 8);
    EXPECT_TRUE(qm.qweights.empty());
    EXPECT_THROW(OpmSimulator(qm, 4), FatalError);
}

// --- tau = 1 windows vs per-cycle ------------------------------------

TEST(OracleEdges, WindowT1MatchesPerCycleExactlyWithZeroIntercept)
{
    ApolloModel m = smallModel();
    m.intercept = 0.0;
    const BitColumnMatrix Xq = checkerboard(33, 3);
    const std::vector<SegmentInfo> segs = {{"all", 0, 33}};
    const MultiCycleModel mc{m, 1};
    // With b = 0 the Eq. (9) window path computes float(double(s_i))
    // for each cycle's float sum s_i, which is s_i exactly.
    EXPECT_EQ(mc.predictWindowsProxies(Xq, 1, segs).value(),
              m.predictProxies(Xq));
}

TEST(OracleEdges, WindowT1TracksPerCycleWithIntercept)
{
    const ApolloModel m = smallModel();
    const BitColumnMatrix Xq = checkerboard(33, 3);
    const std::vector<SegmentInfo> segs = {{"all", 0, 33}};
    const MultiCycleModel mc{m, 1};
    const std::vector<float> windows =
        mc.predictWindowsProxies(Xq, 1, segs).value();
    const std::vector<float> cycles = m.predictProxies(Xq);
    ASSERT_EQ(windows.size(), cycles.size());
    // Different intercept-addition order: agreement to float rounding,
    // not bit-exact (the oracle layer compares each path against its
    // own reference instead).
    for (size_t i = 0; i < windows.size(); ++i)
        EXPECT_NEAR(windows[i], cycles[i],
                    1e-5 * (1.0 + std::abs(cycles[i])));
}

// --- minimum-width quantization --------------------------------------

TEST(OracleEdges, B1QuantizationIsRejected)
{
    const ApolloModel m = smallModel();
    EXPECT_THROW(quantizeModel(m, 1), FatalError);
    EXPECT_THROW(quantizeModel(m, 0), FatalError);
    EXPECT_THROW(quantizeModel(m, 25), FatalError);
}

TEST(OracleEdges, B2QuantizationSaturatesToSignBits)
{
    ApolloModel m;
    m.proxyIds = {0, 1, 2, 3, 4};
    m.weights = {1.0f, -1.0f, 0.25f, -0.25f, 0.6f};
    m.intercept = 0.0;
    const QuantizedModel qm = quantizeModel(m, 2);
    // B = 2: qmax = 1, scale = max|w|; every weight lands in
    // {-1, 0, +1}.
    EXPECT_EQ(qm.scale, 1.0);
    const std::vector<int32_t> expected = {1, -1, 0, 0, 1};
    EXPECT_EQ(qm.qweights, expected);
    const QuantizedModel want = ref::quantizeModel(m, 2);
    EXPECT_EQ(qm.qweights, want.qweights);
    EXPECT_EQ(qm.qintercept, want.qintercept);
}

// --- empty / single-cycle traces -------------------------------------

TEST(OracleEdges, EmptyTraceStreamsZeroSamples)
{
    const ApolloModel m = smallModel();
    BitColumnMatrix empty(0, 3);
    MatrixChunkReader reader(empty);
    VectorSink sink;
    const StreamingInference engine(m);
    auto stats = engine.run(reader, sink);
    ASSERT_TRUE(stats.ok()) << stats.status().toString();
    EXPECT_EQ(stats->cycles, 0u);
    EXPECT_EQ(stats->outputs, 0u);
    EXPECT_TRUE(sink.values().empty());
    EXPECT_TRUE(ref::predictProxies(m, empty).empty());
}

TEST(OracleEdges, SingleCycleTrace)
{
    const ApolloModel m = smallModel();
    BitColumnMatrix Xq(1, 3);
    Xq.setBit(0, 0);
    Xq.setBit(0, 2);
    const std::vector<float> out = m.predictProxies(Xq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], static_cast<float>(0.75) + 0.5f + 2.0f);

    const std::vector<SegmentInfo> segs = {{"one", 0, 1}};
    const MultiCycleModel mc{m, 1};
    EXPECT_EQ(mc.predictWindowsProxies(Xq, 1, segs).value(),
              ref::predictWindowsProxies(m, Xq, 1, segs));
}

TEST(OracleEdges, ConstantLabelsLambdaPathIsRejected)
{
    BitColumnMatrix X = checkerboard(12, 3);
    const std::vector<float> y(12, 2.5f);
    BitFeatureView view(X);
    CdSolver solver(view, y, CdSolver::Options{.parallel = false});
    CdConfig base;
    base.penalty.kind = PenaltyKind::Lasso;
    EXPECT_THROW(runLambdaPath(solver, base, PathConfig{}), FatalError);
}

// --- regression pins for divergences found by the oracle layer -------

/**
 * Found by the opm.simulate oracle ("big-intercept" shape): the §6
 * width formula B + ceil(log Q) + 1 ignores the quantized intercept,
 * so a model whose |intercept| dwarfs max|w| produced cycle sums
 * outside the declared width and stepSum panicked. The width now
 * covers the exact worst-case bounds including qintercept.
 */
TEST(OracleRegression, OpmWidthCoversLargeIntercept)
{
    ApolloModel m;
    m.proxyIds = {0, 1};
    m.weights = {0.01f, -0.02f};
    m.intercept = 500.0;
    const QuantizedModel qm = quantizeModel(m, 8);
    OpmSimulator sim(qm, 4);

    const ref::CycleSumBounds bounds = ref::opmCycleSumBounds(qm);
    const int64_t limit = int64_t{1} << sim.cycleSumBits();
    EXPECT_GT(bounds.maxSum, int64_t{1} << (qm.bits + 2))
        << "intercept no longer dominates; pick a bigger one";
    EXPECT_LT(bounds.maxSum, limit);
    EXPECT_GT(bounds.minSum, -limit);

    const BitColumnMatrix Xq = checkerboard(8, 2);
    EXPECT_EQ(sim.simulate(Xq), ref::opmSimulate(qm, Xq, 4));
}

/**
 * Found by fuzz_vcd: a forged "#18446744073709551615" timestamp sized
 * the reconstructed toggle matrix before any plausibility check, so
 * both VCD readers attempted a multi-exabyte allocation. Implausible
 * timestamps are now a ParseError before allocation.
 */
TEST(OracleRegression, VcdHugeTimestampIsParseErrorNotAllocation)
{
    const std::string header = "$var wire 1 ! sig_a $end\n"
                               "$enddefinitions $end\n";
    {
        std::istringstream is(header +
                              "#0\n1!\n#18446744073709551615\n0!\n");
        StatusOr<VcdTrace> got = tryParseVcd(is);
        ASSERT_FALSE(got.ok());
        EXPECT_EQ(got.status().code(), StatusCode::ParseError);
    }
    {
        std::istringstream is(header +
                              "#0\n1!\n#18446744073709551615\n0!\n");
        VcdChunkReader reader(is);
        ProxyChunk chunk;
        uint64_t rows = 0;
        for (;;) {
            StatusOr<size_t> got = reader.next(1024, chunk);
            if (!got.ok()) {
                EXPECT_EQ(got.status().code(), StatusCode::ParseError);
                break;
            }
            ASSERT_NE(*got, 0u) << "reader accepted an implausible "
                                   "timestamp";
            rows += *got;
            ASSERT_LT(rows, (uint64_t{1} << 22))
                << "reader is synthesizing unbounded empty rows";
        }
    }
}

/**
 * Found by fuzz_aptr: a forged block header declaring 2^32 - 1 rows
 * was passed straight to BitColumnMatrix::reset before any check
 * against the trace header's cycle count. The reader now validates
 * the declared block size before allocating.
 */
TEST(OracleRegression, AptrForgedBlockRowsIsParseErrorNotAllocation)
{
    BitColumnMatrix Xq(16, 2);
    Xq.setBit(3, 1);
    std::ostringstream os;
    ProxyTraceWriter writer(os, 2);
    ASSERT_TRUE(writer.append(Xq).ok());
    ASSERT_TRUE(writer.finish().ok());
    std::string bytes = os.str();
    const uint32_t forged = 0xffffffffu;
    bytes.replace(20, 4,
                  std::string(reinterpret_cast<const char *>(&forged),
                              4));

    std::istringstream is(bytes);
    ProxyTraceReader reader(is);
    ProxyChunk chunk;
    StatusOr<size_t> got = reader.next(64, chunk);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::ParseError);
}

/**
 * Found by fuzz_dataset: rows and cols each below 2^32 passed the
 * dimension check but their product sized a forged multi-gigabyte
 * matrix. The loader now bounds the product before allocating.
 */
TEST(OracleRegression, DatasetForgedDimensionProductIsParseError)
{
    Dataset ds;
    ds.X.reset(4, 2);
    ds.y.assign(4, 1.0f);
    std::ostringstream os;
    saveDataset(os, ds);
    std::string bytes = os.str();
    const uint64_t rows = (uint64_t{1} << 27);
    const uint64_t cols = (uint64_t{1} << 23);
    bytes.replace(8, 8,
                  std::string(reinterpret_cast<const char *>(&rows), 8));
    bytes.replace(16, 8,
                  std::string(reinterpret_cast<const char *>(&cols), 8));

    std::istringstream is(bytes);
    StatusOr<Dataset> got = tryLoadDataset(is);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::ParseError);
}

} // namespace
} // namespace apollo
