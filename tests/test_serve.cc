/**
 * @file
 * Serving-layer tests: the model registry's shared-weight entries, the
 * multi-session determinism contract (K concurrent sessions
 * bit-identical to K sequential one-stream runs at any worker count),
 * backpressure, cancellation (including the partial-window slot-reuse
 * regression), the v1 wire codec, and the serve loop's record/replay
 * round trip.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "apollo.hh"

namespace apollo {
namespace {

using serve::ModelInfo;
using serve::ModelRegistry;
using serve::ServeConfig;
using serve::SessionId;
using serve::SessionManager;
using serve::SessionOptions;
using serve::SessionSummary;

BitColumnMatrix
randomMatrix(size_t rows, size_t cols, uint64_t seed,
             uint32_t density_pct = 30)
{
    Xoshiro256StarStar rng(seed);
    BitColumnMatrix m(rows, cols);
    for (size_t c = 0; c < cols; ++c)
        for (size_t r = 0; r < rows; ++r)
            if (rng() % 100 < density_pct)
                m.setBit(r, c);
    return m;
}

ApolloModel
randomModel(size_t q, uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    ApolloModel model;
    model.intercept = 0.37;
    for (size_t i = 0; i < q; ++i) {
        model.proxyIds.push_back(static_cast<uint32_t>(i));
        const double u =
            static_cast<double>(rng() % 2000) / 1000.0 - 1.0;
        model.weights.push_back(
            i % 7 == 3 ? 0.0f : static_cast<float>(u));
    }
    return model;
}

/** Reference: the one-stream engine over the whole trace. */
std::vector<float>
sequentialReference(const StreamingInference &engine,
                    const BitColumnMatrix &Xq,
                    const StreamConfig &config)
{
    MatrixChunkReader reader(Xq);
    VectorSink sink;
    StatusOr<StreamStats> stats = engine.run(reader, sink, config);
    EXPECT_TRUE(stats.ok()) << stats.status().toString();
    return sink.takeValues();
}

/** Split @p Xq into @p chunk_rows-row slices (zero-tail preserved). */
std::vector<BitColumnMatrix>
chunked(const BitColumnMatrix &Xq, size_t chunk_rows)
{
    std::vector<BitColumnMatrix> out;
    for (size_t first = 0; first < Xq.rows(); first += chunk_rows)
        out.push_back(Xq.sliceRows(
            first, std::min(chunk_rows, Xq.rows() - first)));
    return out;
}

// ---------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------

TEST(ServeRegistry, RegistersAndLists)
{
    ModelRegistry reg;
    ASSERT_TRUE(reg.addFloat("f32", randomModel(12, 0x11)).ok());
    ASSERT_TRUE(reg.addQuantized("opm", quantizeModel(randomModel(12, 0x22), 8), 32)
                    .ok());
    StatusOr<ModelInfo> variant =
        reg.addQuantizedVariant("f32_q10", "f32", 10, 64);
    ASSERT_TRUE(variant.ok()) << variant.status().toString();
    EXPECT_TRUE(variant->quantized);
    EXPECT_EQ(variant->bits, 10u);
    EXPECT_EQ(variant->windowT, 64u);

    const std::vector<ModelInfo> models = reg.list();
    ASSERT_EQ(models.size(), 3u);
    EXPECT_EQ(models[0].name, "f32");
    EXPECT_EQ(models[1].name, "f32_q10");
    EXPECT_EQ(models[2].name, "opm");
    EXPECT_FALSE(models[0].quantized);

    // The variant shares the base entry's float weights (no copy).
    EXPECT_EQ(reg.find("f32")->model.get(),
              reg.find("f32_q10")->model.get());
}

TEST(ServeRegistry, RejectsBadRegistrations)
{
    ModelRegistry reg;
    ASSERT_TRUE(reg.addFloat("m", randomModel(8, 0x31)).ok());
    // Duplicate name.
    EXPECT_EQ(reg.addFloat("m", randomModel(8, 0x32)).code(),
              StatusCode::InvalidArgument);
    // Unknown base.
    EXPECT_EQ(reg.addQuantizedVariant("v", "nope", 8, 32)
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    // Non-power-of-two window.
    EXPECT_EQ(reg.addQuantizedVariant("v", "m", 8, 33)
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    // Empty model.
    EXPECT_EQ(reg.addFloat("e", ApolloModel{}).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

// ---------------------------------------------------------------------
// Multi-session determinism: concurrent == sequential, bit for bit
// ---------------------------------------------------------------------

struct SessionPlan
{
    std::string model;
    uint32_t windowT = 0;
    BitColumnMatrix trace;
    std::vector<float> expected;
};

/**
 * Run @p plans as concurrent sessions on a @p threads-worker manager,
 * submitting chunks round-robin, and require every session's sink to
 * match its sequential reference exactly.
 */
void
runDeterminismCase(const std::shared_ptr<ModelRegistry> &reg,
                   std::vector<SessionPlan> plans, size_t threads,
                   size_t chunk_rows)
{
    SessionManager manager(
        std::static_pointer_cast<const ModelRegistry>(reg),
        ServeConfig().withThreads(threads).withMaxQueuedChunks(2));
    EXPECT_EQ(manager.threadCount(), threads);

    std::vector<VectorSink> sinks(plans.size());
    std::vector<SessionId> ids(plans.size());
    std::vector<std::vector<BitColumnMatrix>> chunks(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
        StatusOr<SessionId> id = manager.createSession(
            SessionOptions{plans[i].model, plans[i].windowT},
            &sinks[i]);
        ASSERT_TRUE(id.ok()) << id.status().toString();
        ids[i] = *id;
        chunks[i] = chunked(plans[i].trace, chunk_rows);
    }

    // Round-robin submission: all sessions in flight at once.
    bool more = true;
    for (size_t c = 0; more; ++c) {
        more = false;
        for (size_t i = 0; i < plans.size(); ++i) {
            if (c >= chunks[i].size())
                continue;
            more = true;
            Status st =
                manager.submitChunk(ids[i], std::move(chunks[i][c]));
            ASSERT_TRUE(st.ok()) << st.toString();
        }
    }

    for (size_t i = 0; i < plans.size(); ++i) {
        StatusOr<SessionSummary> summary = manager.closeSession(ids[i]);
        ASSERT_TRUE(summary.ok()) << summary.status().toString();
        EXPECT_EQ(summary->cycles, plans[i].trace.rows());
        EXPECT_FALSE(summary->cancelled);
        const std::vector<float> &got = sinks[i].values();
        ASSERT_EQ(got.size(), plans[i].expected.size())
            << "session " << i;
        for (size_t k = 0; k < got.size(); ++k)
            ASSERT_EQ(got[k], plans[i].expected[k])
                << "session " << i << " sample " << k;
        EXPECT_EQ(summary->outputs, got.size());
    }
}

TEST(ServeDeterminism, ConcurrentSessionsMatchSequentialRuns)
{
    const size_t q = 24;
    const ApolloModel fmodel = randomModel(q, 0x41);
    const QuantizedModel qmodel = quantizeModel(fmodel, 9);

    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", fmodel).ok());
    ASSERT_TRUE(reg->addQuantized("opm", qmodel, 32).ok());

    const StreamingInference fengine(fmodel);
    const StreamingInference qengine(qmodel, 32);

    // Eight sessions across the three output modes, distinct traces
    // with non-64-aligned lengths (windows straddle chunk borders).
    std::vector<SessionPlan> plans;
    for (size_t i = 0; i < 8; ++i) {
        SessionPlan plan;
        const size_t rows = 700 + 37 * i;
        plan.trace = randomMatrix(rows, q, 0x1000 + i);
        switch (i % 3) {
        case 0: // per-cycle float
            plan.model = "f";
            plan.expected = sequentialReference(fengine, plan.trace,
                                                StreamConfig());
            break;
        case 1: // Eq. (9) windowed float
            plan.model = "f";
            plan.windowT = 16;
            plan.expected = sequentialReference(
                fengine, plan.trace, StreamConfig().withWindowT(16));
            break;
        default: // quantized OPM
            plan.model = "opm";
            plan.expected = sequentialReference(qengine, plan.trace,
                                                StreamConfig());
            break;
        }
        plans.push_back(std::move(plan));
    }

    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        std::vector<SessionPlan> copy;
        for (const SessionPlan &p : plans) {
            SessionPlan c;
            c.model = p.model;
            c.windowT = p.windowT;
            c.trace = p.trace;
            c.expected = p.expected;
            copy.push_back(std::move(c));
        }
        runDeterminismCase(reg, std::move(copy), threads, 193);
    }
}

TEST(ServeDeterminism, BitParallelSessionsMatchScalarBaseline)
{
    // Quantized sessions pick up the bit-parallel 64-cycle kernel
    // transparently (T >= StreamPipeline::kBitParallelMinT). Eight
    // concurrent sessions at every worker count must stay byte-
    // identical to the per-cycle batch OpmSimulator — a baseline that
    // shares no code with the popcount kernels. Proxy count (150) and
    // chunk rows (193) are deliberately not multiples of 64, so every
    // chunk boundary carries a partial packed word and a mid-window
    // phase.
    const size_t q = 150;
    const ApolloModel fmodel = randomModel(q, 0x61);
    const QuantizedModel qmodel = quantizeModel(fmodel, 10);

    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addQuantized("opm16", qmodel, 16).ok());
    ASSERT_TRUE(reg->addQuantized("opm32", qmodel, 32).ok());

    std::vector<SessionPlan> plans;
    for (size_t i = 0; i < 8; ++i) {
        SessionPlan plan;
        const size_t rows = 650 + 53 * i;
        plan.trace = randomMatrix(rows, q, 0x2000 + i);
        const uint32_t T = i % 2 ? 32 : 16;
        plan.model = i % 2 ? "opm32" : "opm16";
        OpmSimulator sim(qmodel, T);
        plan.expected = sim.simulate(plan.trace);
        plans.push_back(std::move(plan));
    }

    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        std::vector<SessionPlan> copy;
        for (const SessionPlan &p : plans) {
            SessionPlan c;
            c.model = p.model;
            c.windowT = p.windowT;
            c.trace = p.trace;
            c.expected = p.expected;
            copy.push_back(std::move(c));
        }
        runDeterminismCase(reg, std::move(copy), threads, 193);
    }
}

TEST(ServeSessions, ValidatesCreationAndHandles)
{
    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", randomModel(8, 0x51)).ok());
    ASSERT_TRUE(
        reg->addQuantized("opm", quantizeModel(randomModel(8, 0x52), 8), 32)
            .ok());
    SessionManager manager(
        std::static_pointer_cast<const ModelRegistry>(reg),
        ServeConfig().withThreads(1).withMaxSessions(2));

    VectorSink sink;
    // Unknown model / bad windows / missing sink.
    EXPECT_EQ(manager.createSession(SessionOptions{"nope", 0}, &sink)
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(manager.createSession(SessionOptions{"f", 3}, &sink)
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(manager.createSession(SessionOptions{"opm", 16}, &sink)
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(manager.createSession(SessionOptions{"f", 0}, nullptr)
                  .status()
                  .code(),
              StatusCode::InvalidArgument);

    // Slot exhaustion at maxSessions.
    VectorSink s1, s2, s3;
    StatusOr<SessionId> a =
        manager.createSession(SessionOptions{"f", 0}, &s1);
    StatusOr<SessionId> b =
        manager.createSession(SessionOptions{"opm", 32}, &s2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(manager.createSession(SessionOptions{"f", 0}, &s3)
                  .status()
                  .code(),
              StatusCode::OutOfRange);

    // Wrong arity is rejected per chunk.
    EXPECT_EQ(manager.submitChunk(*a, randomMatrix(64, 5, 0x53)).code(),
              StatusCode::InvalidArgument);

    // A closed session's id goes stale; its slot is reusable.
    ASSERT_TRUE(manager.closeSession(*a).ok());
    EXPECT_EQ(manager.submitChunk(*a, randomMatrix(64, 8, 0x54)).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(manager.closeSession(*a).status().code(),
              StatusCode::InvalidArgument);
    StatusOr<SessionId> c =
        manager.createSession(SessionOptions{"f", 0}, &s3);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(c->value, a->value);
    ASSERT_TRUE(manager.closeSession(*c).ok());
    ASSERT_TRUE(manager.closeSession(*b).ok());

    const serve::ServeStats stats = manager.stats();
    EXPECT_EQ(stats.sessionsCreated, 3u);
    EXPECT_EQ(stats.sessionsClosed, 3u);
    EXPECT_EQ(stats.activeSessions, 0u);
    EXPECT_EQ(manager.listModels().size(), 2u);
}

// ---------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------

/** A sink whose first consume() blocks until released. */
class GateSink : public PowerSink
{
  public:
    Status
    consume(uint64_t, std::span<const float> values) override
    {
        std::unique_lock<std::mutex> lock(mu_);
        consumed_ += values.size();
        cv_.wait(lock, [&] { return open_; });
        return Status::okStatus();
    }

    void
    open()
    {
        std::lock_guard<std::mutex> lock(mu_);
        open_ = true;
        cv_.notify_all();
    }

    uint64_t
    consumed()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return consumed_;
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool open_ = false;
    uint64_t consumed_ = 0;
};

TEST(ServeBackpressure, SubmitBlocksOnFullQueueAndRecovers)
{
    const size_t q = 8;
    const ApolloModel model = randomModel(q, 0x61);
    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", model).ok());
    SessionManager manager(
        std::static_pointer_cast<const ModelRegistry>(reg),
        ServeConfig().withThreads(1).withMaxQueuedChunks(1));

    GateSink sink;
    StatusOr<SessionId> id =
        manager.createSession(SessionOptions{"f", 0}, &sink);
    ASSERT_TRUE(id.ok());

    const BitColumnMatrix chunk = randomMatrix(64, q, 0x62);
    // Chunk 1 is dequeued by the worker and parks inside consume().
    ASSERT_TRUE(manager.submitChunk(*id, chunk).ok());
    // Wait until the worker actually holds chunk 1.
    while (sink.consumed() == 0)
        std::this_thread::yield();
    // Chunk 2 fills the queue (cap 1).
    ASSERT_TRUE(manager.submitChunk(*id, chunk).ok());

    // Chunk 3 must block: queue full, worker blocked in the sink.
    std::atomic<bool> submitted{false};
    std::thread producer([&] {
        Status st = manager.submitChunk(*id, chunk);
        EXPECT_TRUE(st.ok()) << st.toString();
        submitted = true;
    });
    while (manager.stats().backpressureStalls == 0)
        std::this_thread::yield();
    EXPECT_FALSE(submitted.load());

    sink.open();
    producer.join();
    StatusOr<SessionSummary> summary = manager.closeSession(*id);
    ASSERT_TRUE(summary.ok()) << summary.status().toString();
    EXPECT_EQ(summary->cycles, 3u * 64u);
    EXPECT_EQ(sink.consumed(), 3u * 64u);
    EXPECT_GE(manager.stats().backpressureStalls, 1u);
}

TEST(ServeBackpressure, LateWakerCannotReachClosedOrReusedSlot)
{
    // Regression: a producer parked in submitChunk's backpressure
    // wait must re-validate the session after every wake. Cancel +
    // close (and even re-tenanting of the slot) can all happen while
    // it sleeps; a late waker that trusted its pre-sleep checks would
    // enqueue into a freed slot (null pipeline) or inject its chunk
    // into the slot's next tenant.
    const size_t q = 8;
    const ApolloModel model = randomModel(q, 0xD1);
    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", model).ok());
    SessionManager manager(
        std::static_pointer_cast<const ModelRegistry>(reg),
        ServeConfig().withThreads(1).withMaxSessions(1).withMaxQueuedChunks(
            1));

    const BitColumnMatrix chunk = randomMatrix(64, q, 0xD2);
    const BitColumnMatrix trace = randomMatrix(256, q, 0xD3);
    const StreamingInference engine(model);
    const std::vector<float> expected =
        sequentialReference(engine, trace, StreamConfig());

    for (int iter = 0; iter < 32; ++iter) {
        GateSink gate;
        StatusOr<SessionId> id =
            manager.createSession(SessionOptions{"f", 0}, &gate);
        ASSERT_TRUE(id.ok()) << id.status().toString();
        // Chunk 1 parks in the gated sink, chunk 2 fills the queue.
        ASSERT_TRUE(manager.submitChunk(*id, chunk).ok());
        while (gate.consumed() == 0)
            std::this_thread::yield();
        ASSERT_TRUE(manager.submitChunk(*id, chunk).ok());

        const uint64_t stalls = manager.stats().backpressureStalls;
        std::thread producer([&, id, iter] {
            Status st = manager.submitChunk(*id, chunk);
            // The session is cancelled, closed, and its slot reused
            // underneath the blocked producer: the only acceptable
            // outcomes are Cancelled or a stale-id rejection.
            EXPECT_FALSE(st.ok()) << "iteration " << iter;
            EXPECT_TRUE(st.code() == StatusCode::Cancelled ||
                        st.code() == StatusCode::InvalidArgument)
                << st.toString();
        });
        while (manager.stats().backpressureStalls == stalls)
            std::this_thread::yield();

        ASSERT_TRUE(manager.cancelSession(*id).ok());
        gate.open();
        StatusOr<SessionSummary> closed = manager.closeSession(*id);
        ASSERT_TRUE(closed.ok()) << closed.status().toString();

        // Next tenant of the (sole) slot: its output must stay
        // bit-identical to the sequential reference — a chunk injected
        // by the old producer would skew it.
        VectorSink sink;
        StatusOr<SessionId> tenant =
            manager.createSession(SessionOptions{"f", 0}, &sink);
        ASSERT_TRUE(tenant.ok()) << tenant.status().toString();
        for (BitColumnMatrix &piece : chunked(trace, 64))
            ASSERT_TRUE(
                manager.submitChunk(*tenant, std::move(piece)).ok());
        StatusOr<SessionSummary> summary =
            manager.closeSession(*tenant);
        ASSERT_TRUE(summary.ok()) << summary.status().toString();
        producer.join();
        ASSERT_EQ(sink.values().size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i)
            ASSERT_EQ(sink.values()[i], expected[i])
                << "iteration " << iter << " sample " << i;
    }
}

// ---------------------------------------------------------------------
// Cancellation + the partial-window slot-reuse regression
// ---------------------------------------------------------------------

TEST(ServeCancel, PipelineEmitResetsPartialWindowOnCancel)
{
    // Engine-level regression: a sink cancel mid-window must not leave
    // accumulator residue in the pipeline.
    const size_t q = 6;
    const ApolloModel model = randomModel(q, 0x71);
    StreamPipeline pipe(model, 4);

    const BitColumnMatrix first = randomMatrix(6, q, 0x72); // 1.5 windows
    ChunkSums sums;
    pipe.computeSums(first, first.rows(), sums);
    CallbackSink cancelling([](uint64_t, std::span<const float>) {
        return Status::cancelled("stop");
    });
    EXPECT_EQ(pipe.emit(sums, cancelling).code(), StatusCode::Cancelled);

    // The next full window must depend only on its own cycles.
    const BitColumnMatrix second = randomMatrix(4, q, 0x73);
    pipe.computeSums(second, second.rows(), sums);
    VectorSink clean;
    ASSERT_TRUE(pipe.emit(sums, clean).ok());

    StreamPipeline fresh(model, 4);
    ChunkSums fresh_sums;
    fresh.computeSums(second, second.rows(), fresh_sums);
    VectorSink reference;
    ASSERT_TRUE(fresh.emit(fresh_sums, reference).ok());
    ASSERT_EQ(clean.values().size(), 1u);
    ASSERT_EQ(reference.values().size(), 1u);
    EXPECT_EQ(clean.values()[0], reference.values()[0]);
}

TEST(ServeCancel, CancelledSlotReusesClean)
{
    const size_t q = 16;
    const ApolloModel model = randomModel(q, 0x81);
    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", model).ok());
    // One slot: the second session necessarily reuses the first's.
    SessionManager manager(
        std::static_pointer_cast<const ModelRegistry>(reg),
        ServeConfig().withThreads(2).withMaxSessions(1));

    // Session 1: sink cancels after the first delivery, mid-window.
    std::atomic<uint64_t> seen{0};
    CallbackSink cancelling(
        [&](uint64_t, std::span<const float> values) {
            seen += values.size();
            return Status::cancelled("enough");
        });
    StatusOr<SessionId> first =
        manager.createSession(SessionOptions{"f", 16}, &cancelling);
    ASSERT_TRUE(first.ok());
    const BitColumnMatrix noise = randomMatrix(200, q, 0x82);
    // 200 cycles = 12.5 windows: cancel leaves a half-full window.
    Status st = manager.submitChunk(*first, noise);
    ASSERT_TRUE(st.ok() || st.code() == StatusCode::Cancelled)
        << st.toString();
    // Once cancelled, further submits report Cancelled.
    for (;;) {
        Status more = manager.submitChunk(*first, noise);
        if (more.code() == StatusCode::Cancelled)
            break;
        ASSERT_TRUE(more.ok()) << more.toString();
    }
    StatusOr<SessionSummary> closed = manager.closeSession(*first);
    ASSERT_TRUE(closed.ok()) << closed.status().toString();
    EXPECT_TRUE(closed->cancelled);
    EXPECT_GT(seen.load(), 0u);

    // Session 2 reuses the slot; its windows must be bit-identical to
    // a sequential run — any leaked accumulator state would skew the
    // first window.
    const BitColumnMatrix trace = randomMatrix(512, q, 0x83);
    const StreamingInference engine(model);
    const std::vector<float> expected = sequentialReference(
        engine, trace, StreamConfig().withWindowT(16));

    VectorSink sink;
    StatusOr<SessionId> second =
        manager.createSession(SessionOptions{"f", 16}, &sink);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    for (BitColumnMatrix &chunk : chunked(trace, 72))
        ASSERT_TRUE(
            manager.submitChunk(*second, std::move(chunk)).ok());
    StatusOr<SessionSummary> summary = manager.closeSession(*second);
    ASSERT_TRUE(summary.ok());
    EXPECT_FALSE(summary->cancelled);
    ASSERT_EQ(sink.values().size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(sink.values()[i], expected[i]) << "window " << i;

    EXPECT_EQ(manager.stats().sessionsCancelled, 1u);
}

TEST(ServeCancel, ExplicitCancelDropsQueuedWork)
{
    const size_t q = 8;
    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", randomModel(q, 0x91)).ok());
    SessionManager manager(
        std::static_pointer_cast<const ModelRegistry>(reg),
        ServeConfig().withThreads(1).withMaxQueuedChunks(4));

    GateSink sink;
    StatusOr<SessionId> id =
        manager.createSession(SessionOptions{"f", 0}, &sink);
    ASSERT_TRUE(id.ok());
    const BitColumnMatrix chunk = randomMatrix(64, q, 0x92);
    ASSERT_TRUE(manager.submitChunk(*id, chunk).ok());
    while (sink.consumed() == 0)
        std::this_thread::yield();
    // Two more sit in the queue behind the gated one.
    ASSERT_TRUE(manager.submitChunk(*id, chunk).ok());
    ASSERT_TRUE(manager.submitChunk(*id, chunk).ok());

    ASSERT_TRUE(manager.cancelSession(*id).ok());
    EXPECT_EQ(manager.submitChunk(*id, chunk).code(),
              StatusCode::Cancelled);
    sink.open();
    StatusOr<SessionSummary> summary = manager.closeSession(*id);
    ASSERT_TRUE(summary.ok()) << summary.status().toString();
    EXPECT_TRUE(summary->cancelled);
    // Only the in-flight chunk was processed; the queued two dropped.
    EXPECT_EQ(summary->cycles, 64u);
}

TEST(ServeCancel, FlowReportsCancelledStreams)
{
    // Satellite regression: runEmulatorFlowStreaming surfaces a sink
    // cancel in the report instead of losing it, and a cancelled run
    // leaves no state behind that could skew a later run.
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    ApolloModel model;
    for (uint32_t i = 0; i < 12; ++i) {
        model.proxyIds.push_back(i * 3);
        model.weights.push_back(0.05f * static_cast<float>(i % 5));
    }
    model.intercept = 0.2;
    Xoshiro256StarStar rng(7);
    const Program prog =
        Program::makeLoop("p", GaGenerator::randomBody(rng, 6, 26),
                          200, 7);

    Flows flows(netlist);
    VectorSink full;
    const FlowReport complete =
        flows.emulatorStreaming(prog, 400, model, full,
                                StreamConfig().withChunkCycles(64));
    EXPECT_FALSE(complete.cancelled);

    size_t budget = full.values().size() / 2;
    std::vector<float> partial;
    CallbackSink limited([&](uint64_t,
                             std::span<const float> values) {
        for (float v : values) {
            if (partial.size() >= budget)
                return Status::cancelled("budget reached");
            partial.push_back(v);
        }
        return Status::okStatus();
    });
    Flows flows2(netlist);
    const FlowReport cancelled =
        flows2.emulatorStreaming(prog, 400, model, limited,
                                 StreamConfig().withChunkCycles(64));
    EXPECT_TRUE(cancelled.cancelled);
    ASSERT_LE(partial.size(), full.values().size());
    for (size_t i = 0; i < partial.size(); ++i)
        ASSERT_EQ(partial[i], full.values()[i]) << "sample " << i;

    // The same Flows object runs clean again after a cancel.
    VectorSink again;
    const FlowReport rerun =
        flows2.emulatorStreaming(prog, 400, model, again,
                                 StreamConfig().withChunkCycles(64));
    EXPECT_FALSE(rerun.cancelled);
    ASSERT_EQ(again.values().size(), full.values().size());
    for (size_t i = 0; i < full.values().size(); ++i)
        ASSERT_EQ(again.values()[i], full.values()[i]);
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

TEST(ServeWire, RequestsRoundTrip)
{
    serve::WireRequest create;
    create.op = serve::RequestOp::CreateSession;
    create.session = "sess-1";
    create.model = "opm_q8";
    create.windowT = 64;
    StatusOr<serve::WireRequest> back =
        serve::parseRequestLine(serve::encodeRequest(create));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back->op, serve::RequestOp::CreateSession);
    EXPECT_EQ(back->session, "sess-1");
    EXPECT_EQ(back->model, "opm_q8");
    EXPECT_EQ(back->windowT, 64u);

    serve::WireRequest submit;
    submit.op = serve::RequestOp::SubmitChunk;
    submit.session = "sess-1";
    submit.bits = randomMatrix(129, 7, 0xA1); // odd tail
    back = serve::parseRequestLine(serve::encodeRequest(submit));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    ASSERT_EQ(back->bits.rows(), 129u);
    ASSERT_EQ(back->bits.cols(), 7u);
    for (size_t c = 0; c < 7; ++c)
        for (size_t r = 0; r < 129; ++r)
            ASSERT_EQ(back->bits.get(r, c), submit.bits.get(r, c));

    for (serve::RequestOp op : {serve::RequestOp::CloseSession,
                                serve::RequestOp::CancelSession}) {
        serve::WireRequest simple;
        simple.op = op;
        simple.session = "x";
        back = serve::parseRequestLine(serve::encodeRequest(simple));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(back->op, op);
    }
    serve::WireRequest list;
    list.op = serve::RequestOp::ListModels;
    back = serve::parseRequestLine(serve::encodeRequest(list));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->op, serve::RequestOp::ListModels);
}

TEST(ServeWire, RejectsMalformedRequests)
{
    using serve::parseRequestLine;
    // Malformed JSON -> ParseError.
    EXPECT_EQ(parseRequestLine("not json").status().code(),
              StatusCode::ParseError);
    EXPECT_EQ(parseRequestLine("{\"a\":1").status().code(),
              StatusCode::ParseError);
    EXPECT_EQ(
        parseRequestLine("{\"a\":1,\"a\":2}").status().code(),
        StatusCode::ParseError);
    EXPECT_EQ(parseRequestLine("{\"a\":[1]}").status().code(),
              StatusCode::ParseError);
    // Schema violations -> InvalidArgument.
    EXPECT_EQ(parseRequestLine("{\"op\":\"list_models\"}")
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(parseRequestLine(
                  "{\"schema_version\":2,\"op\":\"list_models\"}")
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(parseRequestLine(
                  "{\"schema_version\":1,\"op\":\"frobnicate\"}")
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(
        parseRequestLine("{\"schema_version\":1,\"op\":"
                         "\"close_session\",\"session\":\"a b\"}")
            .status()
            .code(),
        StatusCode::InvalidArgument);
    EXPECT_EQ(
        parseRequestLine("{\"schema_version\":1,\"op\":"
                         "\"list_models\",\"bogus\":1}")
            .status()
            .code(),
        StatusCode::InvalidArgument);

    // Payload length/tail violations -> ParseError.
    EXPECT_EQ(
        parseRequestLine(
            "{\"schema_version\":1,\"op\":\"submit_chunk\","
            "\"session\":\"s\",\"cycles\":64,\"proxies\":1,"
            "\"bits\":\"00\"}")
            .status()
            .code(),
        StatusCode::ParseError);
    // 1 row x 1 proxy with a bit set past row 0.
    EXPECT_EQ(
        parseRequestLine(
            "{\"schema_version\":1,\"op\":\"submit_chunk\","
            "\"session\":\"s\",\"cycles\":1,\"proxies\":1,"
            "\"bits\":\"0000000000000003\"}")
            .status()
            .code(),
        StatusCode::ParseError);
    // Maximal declared dims (2^32 cycles x 2^20 proxies would be a
    // petabyte-scale matrix) with a tiny payload: must be rejected by
    // the length check BEFORE any allocation sized from the dims.
    EXPECT_EQ(
        parseRequestLine(
            "{\"schema_version\":1,\"op\":\"submit_chunk\","
            "\"session\":\"s\",\"cycles\":4294967296,"
            "\"proxies\":1048576,\"bits\":\"00\"}")
            .status()
            .code(),
        StatusCode::ParseError);
}

TEST(ServeWire, BitsHexRoundTrip)
{
    for (size_t rows : {size_t{1}, size_t{63}, size_t{64}, size_t{200}}) {
        const BitColumnMatrix m = randomMatrix(rows, 5, 0xB0 + rows);
        StatusOr<BitColumnMatrix> back =
            serve::decodeBitsHex(serve::encodeBitsHex(m), rows, 5);
        ASSERT_TRUE(back.ok()) << back.status().toString();
        for (size_t c = 0; c < 5; ++c)
            for (size_t r = 0; r < rows; ++r)
                ASSERT_EQ(back->get(r, c), m.get(r, c));
    }
    // Dims whose expected payload size overflows 64 bits must be
    // rejected cleanly, not wrap around into a bogus small size.
    EXPECT_EQ(serve::decodeBitsHex("00", size_t{1} << 40,
                                   size_t{1} << 40)
                  .status()
                  .code(),
              StatusCode::ParseError);
}

// ---------------------------------------------------------------------
// Serve loop: wire end-to-end + record/replay
// ---------------------------------------------------------------------

/** Extract the power samples of one session from a response stream. */
std::vector<float>
powerSamplesFor(const std::string &responses,
                const std::string &session)
{
    std::vector<float> out;
    std::istringstream is(responses);
    std::string line;
    const std::string tag = "\"session\":\"" + session + "\"";
    while (std::getline(is, line)) {
        if (line.find("\"event\":\"power\"") == std::string::npos ||
            line.find(tag) == std::string::npos)
            continue;
        const size_t open = line.find("\"values\":[");
        EXPECT_NE(open, std::string::npos) << line;
        if (open == std::string::npos)
            continue;
        size_t i = open + 10;
        while (i < line.size() && line[i] != ']') {
            char *end = nullptr;
            out.push_back(std::strtof(line.c_str() + i, &end));
            i = static_cast<size_t>(end - line.c_str());
            if (i < line.size() && line[i] == ',')
                i++;
        }
    }
    return out;
}

TEST(ServeLoop, DrivesSessionsAndRecordsReplayableFiles)
{
    const size_t q = 20;
    const ApolloModel fmodel = randomModel(q, 0xC1);
    const QuantizedModel qmodel = quantizeModel(fmodel, 8);
    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", fmodel).ok());
    ASSERT_TRUE(reg->addQuantized("opm", qmodel, 32).ok());

    const BitColumnMatrix trace_a = randomMatrix(500, q, 0xC2);
    const BitColumnMatrix trace_b = randomMatrix(450, q, 0xC3);

    // Interleaved two-session request stream, plus a list_models call
    // and a request-level error (unknown model) that must not stop
    // the loop. Session "b" is left open to exercise EOF auto-close.
    std::ostringstream req;
    {
        serve::WireRequest r;
        r.op = serve::RequestOp::ListModels;
        req << serve::encodeRequest(r);
    }
    req << "{\"schema_version\":1,\"op\":\"create_session\","
           "\"session\":\"bad\",\"model\":\"nope\"}\n";
    for (const auto &[name, model, window] :
         {std::tuple<std::string, std::string, uint32_t>{"a", "opm", 0},
          {"b", "f", 16}}) {
        serve::WireRequest r;
        r.op = serve::RequestOp::CreateSession;
        r.session = name;
        r.model = model;
        r.windowT = window;
        req << serve::encodeRequest(r);
    }
    std::vector<BitColumnMatrix> chunks_a = chunked(trace_a, 97);
    std::vector<BitColumnMatrix> chunks_b = chunked(trace_b, 131);
    for (size_t c = 0; c < std::max(chunks_a.size(), chunks_b.size());
         ++c) {
        for (const auto &[name, chunks] :
             {std::pair<std::string, std::vector<BitColumnMatrix> *>{
                  "a", &chunks_a},
              {"b", &chunks_b}}) {
            if (c >= chunks->size())
                continue;
            serve::WireRequest r;
            r.op = serve::RequestOp::SubmitChunk;
            r.session = name;
            r.bits = (*chunks)[c];
            req << serve::encodeRequest(r);
        }
    }
    {
        serve::WireRequest r;
        r.op = serve::RequestOp::CloseSession;
        r.session = "a";
        req << serve::encodeRequest(r);
    }

    const std::filesystem::path record_dir =
        std::filesystem::temp_directory_path() /
        "apollo_serve_test_rec";
    std::filesystem::remove_all(record_dir);

    serve::ServeLoopOptions options;
    options.config.threads = 2;
    options.recordDir = record_dir.string();
    std::istringstream in(req.str());
    std::ostringstream out;
    StatusOr<serve::ServeLoopReport> report = serve::runServeLoop(
        std::static_pointer_cast<const ModelRegistry>(reg), in, out,
        options);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_EQ(report->sessionsCreated, 2u);
    EXPECT_EQ(report->errors, 1u); // the unknown-model create
    EXPECT_EQ(report->autoClosed, 1u); // session "b" at EOF
    const std::string live = out.str();
    EXPECT_NE(live.find("\"event\":\"models\""), std::string::npos);
    EXPECT_NE(live.find("\"code\":\"invalid_argument\""),
              std::string::npos);

    // Live outputs match the one-stream engine exactly.
    std::vector<float> live_a, live_b;
    {
        SCOPED_TRACE("live");
        powerSamplesFor(live, "a").swap(live_a);
        powerSamplesFor(live, "b").swap(live_b);
    }
    const StreamingInference qengine(qmodel, 32);
    const StreamingInference fengine(fmodel);
    const std::vector<float> want_a =
        sequentialReference(qengine, trace_a, StreamConfig());
    const std::vector<float> want_b = sequentialReference(
        fengine, trace_b, StreamConfig().withWindowT(16));
    ASSERT_EQ(live_a.size(), want_a.size());
    ASSERT_EQ(live_b.size(), want_b.size());
    for (size_t i = 0; i < want_a.size(); ++i)
        ASSERT_EQ(live_a[i], want_a[i]) << "a[" << i << "]";
    for (size_t i = 0; i < want_b.size(); ++i)
        ASSERT_EQ(live_b[i], want_b[i]) << "b[" << i << "]";

    // Each record file replays standalone to bit-identical samples —
    // including auto-closed "b", whose record must carry the implied
    // close.
    for (const std::string name : {std::string("a"), std::string("b")}) {
        std::ifstream rec(record_dir / (name + ".ndjson"));
        ASSERT_TRUE(rec.is_open()) << name;
        std::ostringstream replay_out;
        StatusOr<serve::ServeLoopReport> replay =
            serve::runServeLoop(
                std::static_pointer_cast<const ModelRegistry>(reg),
                rec, replay_out, {});
        ASSERT_TRUE(replay.ok()) << replay.status().toString();
        EXPECT_EQ(replay->errors, 0u);
        EXPECT_EQ(replay->autoClosed, 0u) << name;
        std::vector<float> replayed;
        powerSamplesFor(replay_out.str(), name).swap(replayed);
        const std::vector<float> &want = name == "a" ? want_a : want_b;
        ASSERT_EQ(replayed.size(), want.size()) << name;
        for (size_t i = 0; i < want.size(); ++i)
            ASSERT_EQ(replayed[i], want[i])
                << name << "[" << i << "]";
    }
    std::filesystem::remove_all(record_dir);
}

TEST(ServeLoop, RecordOpenFailureStillDrainsOpenSessions)
{
    // Regression: the record-file-open error path used to return out
    // of runServeLoop while other sessions were still open, tearing
    // down the sinks and output mutex before the manager's workers
    // stopped using them. The error must funnel through the shared
    // EOF drain: every live session closed, then IoError returned.
    const size_t q = 8;
    const ApolloModel model = randomModel(q, 0xE1);
    auto reg = std::make_shared<ModelRegistry>();
    ASSERT_TRUE(reg->addFloat("f", model).ok());

    const std::filesystem::path record_dir =
        std::filesystem::temp_directory_path() /
        "apollo_serve_test_badrec";
    std::filesystem::remove_all(record_dir);
    // A directory squatting on session "b"'s record path makes its
    // ofstream open fail while "a" has chunks in flight.
    std::filesystem::create_directories(record_dir / "b.ndjson");

    const BitColumnMatrix trace = randomMatrix(320, q, 0xE2);
    std::ostringstream req;
    {
        serve::WireRequest r;
        r.op = serve::RequestOp::CreateSession;
        r.session = "a";
        r.model = "f";
        req << serve::encodeRequest(r);
    }
    for (const BitColumnMatrix &piece : chunked(trace, 64)) {
        serve::WireRequest r;
        r.op = serve::RequestOp::SubmitChunk;
        r.session = "a";
        r.bits = piece;
        req << serve::encodeRequest(r);
    }
    {
        serve::WireRequest r;
        r.op = serve::RequestOp::CreateSession;
        r.session = "b";
        r.model = "f";
        req << serve::encodeRequest(r);
    }

    serve::ServeLoopOptions options;
    options.config.threads = 2;
    options.recordDir = record_dir.string();
    std::istringstream in(req.str());
    std::ostringstream out;
    StatusOr<serve::ServeLoopReport> report = serve::runServeLoop(
        std::static_pointer_cast<const ModelRegistry>(reg), in, out,
        options);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::IoError);

    // Session "a" was still drained and closed: its record file got
    // the implied close and replays standalone to the exact samples.
    const StreamingInference engine(model);
    const std::vector<float> want =
        sequentialReference(engine, trace, StreamConfig());
    std::ifstream rec(record_dir / "a.ndjson");
    ASSERT_TRUE(rec.is_open());
    std::ostringstream replay_out;
    StatusOr<serve::ServeLoopReport> replay = serve::runServeLoop(
        std::static_pointer_cast<const ModelRegistry>(reg), rec,
        replay_out, {});
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    std::vector<float> replayed;
    powerSamplesFor(replay_out.str(), "a").swap(replayed);
    ASSERT_EQ(replayed.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(replayed[i], want[i]) << "a[" << i << "]";
    std::filesystem::remove_all(record_dir);
}

} // namespace
} // namespace apollo
