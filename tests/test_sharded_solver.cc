/**
 * @file
 * Out-of-core sharded selection suite (docs/INTERNALS.md §13):
 *  - APSH shard store format hardening (write-side dim validation,
 *    exact-size mapping checks, forged headers/tails rejected);
 *  - shard-merge determinism — support and weights bit-identical
 *    across shard counts and thread counts vs the unsharded solver,
 *    because the sharded path serves the identical packed words
 *    through the identical kernels;
 *  - seeded-solver equivalence (SolverSeed vs the solver's own
 *    bootstrap passes);
 *  - blocked CountFeatureView moment caching;
 *  - streaming APDS dataset writer (byte-identical to the one-shot
 *    path, decode-mirror bounds enforced on the write side).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/proxy_selector.hh"
#include "gen/synthetic_toggles.hh"
#include "ml/coordinate_descent.hh"
#include "ml/sharded_view.hh"
#include "ml/solver_path.hh"
#include "ref/reference_shard.hh"
#include "trace/dataset_io.hh"
#include "trace/shard_store.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace apollo {
namespace {

std::string
tempBase(const char *name)
{
    const auto dir =
        std::filesystem::temp_directory_path() / "apollo_shard_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
}

void
removeShardFiles(const std::string &base, uint32_t shards)
{
    for (uint32_t k = 0; k < shards; ++k)
        std::filesystem::remove(shardPath(base, k));
}

/** Random matrix with mixed densities, odd row tail, a dead column
 *  and an all-ones column. */
BitColumnMatrix
makeMixedMatrix(size_t rows, size_t cols, uint64_t seed)
{
    BitColumnMatrix X(rows, cols);
    Xoshiro256StarStar rng(seed);
    for (size_t j = 0; j < cols; ++j) {
        double density = 0.02 + 0.9 * (j % 17) / 17.0;
        if (j == 3)
            density = 0.0;
        if (j == 4)
            density = 1.1;
        for (size_t i = 0; i < rows; ++i)
            if (rng.nextDouble() < density)
                X.setBit(i, j);
    }
    return X;
}

// ---------------------------------------------------------------------------
// Shard store format

TEST(ShardStoreFormat, BlockedRoundTripMatchesSource)
{
    const size_t n = 301; // odd tail word
    const size_t m = 77;
    const BitColumnMatrix X = makeMixedMatrix(n, m, 0x51a2d);
    const std::string base = tempBase("roundtrip");
    ASSERT_TRUE(saveShardedMatrix(base, X, 4, 13).ok());

    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    ASSERT_TRUE(set.ok()) << set.status().toString();
    EXPECT_EQ(set->rows(), n);
    EXPECT_EQ(set->cols(), m);
    EXPECT_EQ(set->shardCount(), 4u);
    EXPECT_EQ(set->wordsPerCol(), X.wordsPerCol());
    EXPECT_EQ(set->bytesMapped(),
              4 * 48 + m * X.wordsPerCol() * sizeof(uint64_t));
    EXPECT_TRUE(set->validateTails().ok());
    for (size_t j = 0; j < m; ++j) {
        EXPECT_EQ(set->shardFirst(set->shardOf(j)) <= j, true);
        EXPECT_EQ(0, std::memcmp(set->colWords(j), X.colWords(j),
                                 X.wordsPerCol() * sizeof(uint64_t)))
            << "column " << j;
    }
    for (size_t i = 0; i < n; i += 7)
        for (size_t j = 0; j < m; j += 5)
            EXPECT_EQ(set->get(i, j), X.get(i, j));
    removeShardFiles(base, 4);
}

TEST(ShardStoreFormat, PartitionIsContiguousAndBalanced)
{
    // 10 columns over 4 shards: sizes 3,3,2,2 starting at 0,3,6,8.
    EXPECT_EQ(shardFirstCol(10, 4, 0), 0u);
    EXPECT_EQ(shardFirstCol(10, 4, 1), 3u);
    EXPECT_EQ(shardFirstCol(10, 4, 2), 6u);
    EXPECT_EQ(shardFirstCol(10, 4, 3), 8u);
    EXPECT_EQ(shardFirstCol(10, 4, 4), 10u);
}

TEST(ShardStoreFormat, WriterRejectsImplausibleDims)
{
    const std::string base = tempBase("dims");
    EXPECT_FALSE(ShardSetWriter::open(base, 0, 8, 1).ok());
    EXPECT_FALSE(ShardSetWriter::open(base, 1ULL << 28, 8, 1).ok());
    EXPECT_FALSE(ShardSetWriter::open(base, 8, 0, 1).ok());
    EXPECT_FALSE(ShardSetWriter::open(base, 8, 1ULL << 24, 1).ok());
    EXPECT_FALSE(ShardSetWriter::open(base, 8, 8, 0).ok());
    EXPECT_FALSE(ShardSetWriter::open(base, 8, 8, 9).ok()); // > cols
    EXPECT_TRUE(ShardSetWriter::open(base, 8, 8, 8).ok());
}

TEST(ShardStoreFormat, WriterRejectsDirtyTailAndOverAppend)
{
    const std::string base = tempBase("dirty");
    BitColumnMatrix block(65, 2); // one tail bit position used
    block.setBit(0, 0);
    block.colWordsMutable(1)[1] |= 1ULL << 33; // bit 97 >= rows
    StatusOr<ShardSetWriter> w = ShardSetWriter::open(base, 65, 4, 2);
    ASSERT_TRUE(w.ok());
    Status st = w->append(block);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);

    // Appending more columns than declared is refused up front.
    BitColumnMatrix clean(65, 5);
    EXPECT_FALSE(w->append(clean).ok());
    // Finishing before all columns arrive is refused.
    EXPECT_FALSE(w->finish().ok());
    removeShardFiles(base, 2);
}

TEST(ShardStoreFormat, OpenRejectsTruncatedAndForgedFiles)
{
    const size_t n = 64;
    const size_t m = 8;
    const BitColumnMatrix X = makeMixedMatrix(n, m, 0xfeed);
    const std::string base = tempBase("forged");
    ASSERT_TRUE(saveShardedMatrix(base, X, 2).ok());

    // Truncation: size no longer matches the header-implied size.
    std::filesystem::resize_file(shardPath(base, 1), 48 + 8);
    EXPECT_FALSE(MappedShardSet::open(base).ok());

    // Forged column count: the size check catches the mismatch before
    // anything is mapped.
    ASSERT_TRUE(saveShardedMatrix(base, X, 2).ok());
    {
        std::fstream f(shardPath(base, 0),
                       std::ios::in | std::ios::out | std::ios::binary);
        uint64_t huge = 1ULL << 23;
        f.seekp(40);
        f.write(reinterpret_cast<const char *>(&huge), 8);
    }
    EXPECT_FALSE(MappedShardSet::open(base).ok());

    // Forged huge dims: rejected by the bounds, not by allocation.
    ASSERT_TRUE(saveShardedMatrix(base, X, 2).ok());
    {
        std::fstream f(shardPath(base, 0),
                       std::ios::in | std::ios::out | std::ios::binary);
        uint64_t huge_rows = 1ULL << 60;
        f.seekp(8);
        f.write(reinterpret_cast<const char *>(&huge_rows), 8);
    }
    EXPECT_FALSE(MappedShardSet::open(base).ok());

    // Duplicate shard file list.
    ASSERT_TRUE(saveShardedMatrix(base, X, 2).ok());
    EXPECT_FALSE(MappedShardSet::openFiles(
                     {shardPath(base, 0), shardPath(base, 0)})
                     .ok());
    removeShardFiles(base, 2);
}

TEST(ShardStoreFormat, ScreenRejectsForgedTailOnDisk)
{
    const size_t n = 65; // one tail word with 63 forgeable bits
    const size_t m = 6;
    const BitColumnMatrix X = makeMixedMatrix(n, m, 0xbead);
    const std::string base = tempBase("tail");
    ASSERT_TRUE(saveShardedMatrix(base, X, 2).ok());
    {
        // Flip a bit past `rows` in column 0's last word, on disk
        // (2 words per column; the payload starts at byte 48).
        std::fstream f(shardPath(base, 0),
                       std::ios::in | std::ios::out | std::ios::binary);
        const std::streamoff off = 48 + 8;
        f.seekg(off);
        uint64_t word = 0;
        f.read(reinterpret_cast<char *>(&word), 8);
        word |= 1ULL << 40; // row 104 >= 65
        f.seekp(off);
        f.write(reinterpret_cast<const char *>(&word), 8);
    }
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    ASSERT_TRUE(set.ok()); // header and size are fine
    EXPECT_FALSE(set->validateTails().ok());
    EXPECT_FALSE(set->columnTailClean(0));

    ShardedFeatureView view(*set);
    std::vector<float> y(n, 1.0f);
    y[0] = 2.0f;
    EXPECT_FALSE(view.screen(y).ok());
    removeShardFiles(base, 2);
}

// ---------------------------------------------------------------------------
// Sharded solve determinism

/** Fixture: synthetic counter-seeded design at a deliberately awkward
 *  shape (odd rows, many columns) with planted labels. */
struct ShardFixture
{
    static constexpr size_t kRows = 777;
    static constexpr size_t kCols = 3000;
    static constexpr uint64_t kSeed = 0xab01d0;
    BitColumnMatrix X;
    std::vector<float> y;

    ShardFixture()
        : X(makeSyntheticToggleBlock(kRows, 0, kCols, kSeed)),
          y(makeSyntheticLabels(kRows, kCols, kCols / 80 + 8, kSeed,
                                0x5eed))
    {}
};

const ShardFixture &
shardFixture()
{
    static ShardFixture fx;
    return fx;
}

TEST(ShardedSolverDeterminism, GeneratorIsBlockSizeIndependent)
{
    const auto &fx = shardFixture();
    // Regenerating any block must reproduce the same bytes the
    // one-shot call produced.
    const BitColumnMatrix blk =
        makeSyntheticToggleBlock(ShardFixture::kRows, 100, 57,
                                 ShardFixture::kSeed);
    for (size_t c = 0; c < 57; ++c)
        EXPECT_EQ(0, std::memcmp(blk.colWords(c),
                                 fx.X.colWords(100 + c),
                                 fx.X.wordsPerCol() * sizeof(uint64_t)));
}

TEST(ShardedSolverDeterminism, StreamedShardsMatchInMemoryMatrix)
{
    const auto &fx = shardFixture();
    const std::string base = tempBase("streamgen");
    // Stream-generate with an awkward block size; compare bytes
    // against the resident matrix sharded directly.
    ASSERT_TRUE(writeSyntheticShards(base, ShardFixture::kRows,
                                     ShardFixture::kCols, 3,
                                     ShardFixture::kSeed, 251)
                    .ok());
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    ASSERT_TRUE(set.ok()) << set.status().toString();
    for (size_t j = 0; j < ShardFixture::kCols; j += 97)
        EXPECT_EQ(0, std::memcmp(set->colWords(j), fx.X.colWords(j),
                                 fx.X.wordsPerCol() * sizeof(uint64_t)));
    removeShardFiles(base, 3);
}

/** Solve on the in-RAM matrix with the production fast path. */
CdResult
unshardedSolve(const ShardFixture &fx, size_t q, bool parallel,
               ThreadPool *pool, TargetQDiagnostics *diag = nullptr)
{
    BitFeatureView view(fx.X);
    CdConfig cd;
    cd.penalty.kind = PenaltyKind::Mcp;
    cd.penalty.gamma = 10.0;
    cd.maxSweeps = 250;
    CdSolver solver(view, fx.y,
                    {.parallel = parallel, .pool = pool});
    return solveForTargetQ(solver, cd, q, diag);
}

/** Solve through shard files, a seeded solver, and a given pool. */
CdResult
shardedSolve(const ShardFixture &fx, uint32_t shards, size_t q,
             bool parallel, ThreadPool *pool,
             TargetQDiagnostics *diag = nullptr)
{
    const std::string base = tempBase("solve");
    EXPECT_TRUE(saveShardedMatrix(base, fx.X, shards).ok());
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    EXPECT_TRUE(set.ok()) << set.status().toString();

    ShardedFeatureView view(*set, {.parallel = parallel, .pool = pool});
    EXPECT_TRUE(view.screen(fx.y).ok());
    SolverSeed seed;
    seed.gradY = view.stats().gradY;
    seed.lambdaMax = view.stats().lambdaMax;
    CdSolver solver(view, fx.y, {.parallel = parallel, .pool = pool},
                    std::move(seed));
    CdConfig cd;
    cd.penalty.kind = PenaltyKind::Mcp;
    cd.penalty.gamma = 10.0;
    cd.maxSweeps = 250;
    CdResult res = solveForTargetQ(solver, cd, q, diag);
    removeShardFiles(base, shards);
    return res;
}

void
expectBitIdentical(const CdResult &got, const CdResult &want)
{
    ASSERT_EQ(got.w.size(), want.w.size());
    EXPECT_EQ(0, std::memcmp(got.w.data(), want.w.data(),
                             want.w.size() * sizeof(float)));
    EXPECT_EQ(got.intercept, want.intercept);
    EXPECT_EQ(got.support(), want.support());
    EXPECT_EQ(got.sweeps, want.sweeps);
}

TEST(ShardedSolverDeterminism, BitIdenticalAcrossShardAndThreadCounts)
{
    const auto &fx = shardFixture();
    const size_t q = 24;
    const CdResult want = unshardedSolve(fx, q, false, nullptr);
    ASSERT_GT(want.nonzeros(), 0u);

    ThreadPool pool1(1);
    ThreadPool pool8(8);
    for (uint32_t shards : {1u, 4u, 16u}) {
        SCOPED_TRACE(testing::Message() << "shards=" << shards);
        expectBitIdentical(shardedSolve(fx, shards, q, false, nullptr),
                           want);
        expectBitIdentical(shardedSolve(fx, shards, q, true, &pool1),
                           want);
        expectBitIdentical(shardedSolve(fx, shards, q, true, &pool8),
                           want);
    }
    // The unsharded parallel path agrees with its own serial run too
    // (so the grid above really covers both axes).
    ThreadPool pool3(3);
    expectBitIdentical(unshardedSolve(fx, q, true, &pool3), want);
}

TEST(ShardedSolverDeterminism, SeedMatchesSolverOwnPasses)
{
    const auto &fx = shardFixture();
    const std::string base = tempBase("seedcheck");
    ASSERT_TRUE(saveShardedMatrix(base, fx.X, 4).ok());
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    ASSERT_TRUE(set.ok());

    ShardedFeatureView view(*set, {.parallel = false, .pool = nullptr});
    ASSERT_TRUE(view.screen(fx.y).ok());

    // The screen's lambdaMax must equal the unsharded solver's own
    // cached pass exactly (same kernel, same floats).
    BitFeatureView bit_view(fx.X);
    CdSolver plain(bit_view, fx.y, {.parallel = false});
    EXPECT_EQ(view.stats().lambdaMax, plain.lambdaMax());

    // And the per-column stats must match BitFeatureView's kernels.
    // gradY is taken at the centered cold residual — the labels after
    // the solver's first intercept update (float subtraction of the
    // narrowed double mean), which is what the seeded gradient cache
    // must reproduce bit for bit.
    double mu = 0.0;
    for (float v : fx.y)
        mu += v;
    mu /= static_cast<double>(fx.y.size());
    const auto muf = static_cast<float>(mu);
    std::vector<float> yc(fx.y.size());
    for (size_t i = 0; i < fx.y.size(); ++i)
        yc[i] = fx.y[i] - muf;
    for (size_t j = 0; j < ShardFixture::kCols; j += 131) {
        EXPECT_EQ(static_cast<double>(view.stats().popcount[j]),
                  bit_view.sumSquares(j));
        EXPECT_EQ(view.stats().gradY[j], bit_view.dot(j, yc.data()));
    }
    removeShardFiles(base, 4);
}

TEST(ShardedSolverDeterminism, PrefilterStatsMatchNaiveReference)
{
    const auto &fx = shardFixture();
    const std::string base = tempBase("refcheck");
    ASSERT_TRUE(saveShardedMatrix(base, fx.X, 4).ok());
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    ASSERT_TRUE(set.ok());
    ShardedFeatureView view(*set);
    ASSERT_TRUE(view.screen(fx.y).ok());

    BitFeatureView bit_view(fx.X);
    const ref::RefScreenStats want = ref::screenStats(bit_view, fx.y);
    double ynorm = 0.0;
    for (float v : fx.y)
        ynorm += static_cast<double>(v) * v;
    ynorm = std::sqrt(ynorm);
    for (size_t j = 0; j < ShardFixture::kCols; ++j) {
        ASSERT_EQ(view.stats().popcount[j], want.popcount[j]);
        const double xnorm =
            std::sqrt(static_cast<double>(want.popcount[j]));
        ASSERT_NEAR(view.stats().gradY[j], want.gradY[j],
                    1e-9 * (1.0 + xnorm * ynorm))
            << "column " << j;
    }
    EXPECT_NEAR(view.stats().lambdaMax, want.lambdaMax,
                1e-9 * (1.0 + want.lambdaMax));
    removeShardFiles(base, 4);
}

// ---------------------------------------------------------------------------
// Sharded selection driver

TEST(ShardedSelectProxies, MatchesUnshardedSelection)
{
    const auto &fx = shardFixture();
    ProxySelectorConfig config;
    config.targetQ = 24;

    BitFeatureView view(fx.X);
    const ProxySelection want = selectProxies(view, fx.y, config);

    const std::string base = tempBase("select");
    ASSERT_TRUE(saveShardedMatrix(base, fx.X, 8).ok());
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    ASSERT_TRUE(set.ok());
    ShardSelectionStats stats;
    StatusOr<ProxySelection> got =
        selectProxiesSharded(*set, fx.y, config, &stats);
    ASSERT_TRUE(got.ok()) << got.status().toString();

    EXPECT_EQ(got->proxyIds, want.proxyIds);
    expectBitIdentical(got->sparseModel, want.sparseModel);
    EXPECT_EQ(got->diagnostics.lambda, want.diagnostics.lambda);
    EXPECT_EQ(got->diagnostics.peakStrongSize,
              want.diagnostics.peakStrongSize);

    EXPECT_EQ(stats.shardCount, 8u);
    EXPECT_EQ(stats.colsScanned, ShardFixture::kCols);
    EXPECT_EQ(stats.screenAdmitted + stats.screenDropped,
              stats.colsScanned);
    EXPECT_GT(stats.screenDropped, 0u); // the prefilter must bite
    EXPECT_EQ(stats.bytesMapped,
              8 * 48 + ShardFixture::kCols * fx.X.wordsPerCol() *
                           sizeof(uint64_t));
    EXPECT_GE(stats.peakStrongSize, want.sparseModel.nonzeros());
    removeShardFiles(base, 8);
}

TEST(ShardedSelectProxies, RejectsLabelMismatchAndBadPenalty)
{
    const auto &fx = shardFixture();
    const std::string base = tempBase("selectbad");
    ASSERT_TRUE(saveShardedMatrix(base, fx.X, 2).ok());
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    ASSERT_TRUE(set.ok());

    ProxySelectorConfig config;
    std::vector<float> short_y(10, 1.0f);
    EXPECT_FALSE(selectProxiesSharded(*set, short_y, config).ok());

    config.kind = PenaltyKind::Ridge;
    EXPECT_FALSE(selectProxiesSharded(*set, fx.y, config).ok());
    removeShardFiles(base, 2);
}

// ---------------------------------------------------------------------------
// CountFeatureView blocked moments

TEST(ShardCountViewMoments, BlockedPassMatchesNaiveAcrossRowBlocks)
{
    // Rows straddle the 1<<14 row-strip boundary; values exercise the
    // full uint8 range so the integer sums are nontrivial.
    const size_t n = (1u << 14) + 77;
    const size_t m = 5;
    CountColumnMatrix counts(n, m);
    Xoshiro256StarStar rng(0xc0117);
    for (size_t j = 0; j < m; ++j)
        for (size_t i = 0; i < n; ++i)
            counts.set(i, j, static_cast<uint8_t>(rng() & 0xff));
    const float scale = 1.0f / 8.0f;
    CountFeatureView view(counts, scale);
    for (size_t j = 0; j < m; ++j) {
        uint64_t s = 0;
        uint64_t sq = 0;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t v = counts.get(i, j);
            s += v;
            sq += v * v;
        }
        EXPECT_EQ(view.sum(j),
                  static_cast<double>(scale) * static_cast<double>(s));
        EXPECT_EQ(view.sumSquares(j),
                  static_cast<double>(scale) * scale *
                      static_cast<double>(sq));
    }
}

TEST(ShardCountViewMoments, BlockedPassMatchesNaiveAcrossColumnBlocks)
{
    // Columns straddle the 4096-column outer block boundary.
    const size_t n = 96;
    const size_t m = 4096 + 33;
    CountColumnMatrix counts(n, m);
    Xoshiro256StarStar rng(0xc0118);
    for (size_t j = 0; j < m; ++j)
        for (size_t i = 0; i < n; ++i)
            counts.set(i, j, static_cast<uint8_t>(rng() & 0x7));
    CountFeatureView view(counts, 1.0f);
    for (size_t j : {size_t{0}, size_t{4095}, size_t{4096}, m - 1}) {
        uint64_t s = 0;
        uint64_t sq = 0;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t v = counts.get(i, j);
            s += v;
            sq += v * v;
        }
        EXPECT_EQ(view.sum(j), static_cast<double>(s));
        EXPECT_EQ(view.sumSquares(j), static_cast<double>(sq));
    }
}

// ---------------------------------------------------------------------------
// Streaming APDS writer

Dataset
makeSmallDataset(size_t rows, size_t cols)
{
    Dataset ds;
    ds.X = makeMixedMatrix(rows, cols, 0xd5);
    ds.y.resize(rows);
    for (size_t i = 0; i < rows; ++i)
        ds.y[i] = static_cast<float>(0.1 * static_cast<double>(i));
    ds.segments.push_back({"warm", 0, rows / 2});
    ds.segments.push_back({"hot", rows / 2, rows});
    return ds;
}

TEST(ShardDatasetStreamWriter, BlockedStreamIsByteIdenticalToOneShot)
{
    const Dataset ds = makeSmallDataset(131, 29);

    std::ostringstream legacy;
    ASSERT_TRUE(trySaveDataset(legacy, ds).ok());

    std::ostringstream streamed;
    StatusOr<DatasetStreamWriter> w =
        DatasetStreamWriter::open(streamed, 131, 29);
    ASSERT_TRUE(w.ok());
    // Awkward block granularity: 7 columns at a time via the raw span
    // API (the path writeSyntheticShards-style generators use).
    for (size_t c0 = 0; c0 < 29; c0 += 7) {
        const size_t run = std::min<size_t>(7, 29 - c0);
        ASSERT_TRUE(w->appendColumnsRaw(ds.X.colWords(c0), run).ok());
    }
    ASSERT_TRUE(w->writeLabels(ds.y).ok());
    ASSERT_TRUE(w->finish(ds.segments).ok());

    EXPECT_EQ(streamed.str(), legacy.str());

    std::istringstream is(streamed.str());
    StatusOr<Dataset> loaded = tryLoadDataset(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded->y, ds.y);
    EXPECT_EQ(loaded->segments.size(), 2u);
}

TEST(ShardDatasetStreamWriter, RejectsForgedDimsAndProtocolMisuse)
{
    std::ostringstream os;
    // Decode-mirror bounds, enforced before any bytes are emitted.
    EXPECT_FALSE(DatasetStreamWriter::open(os, 0, 4).ok());
    EXPECT_FALSE(DatasetStreamWriter::open(os, 4, 0).ok());
    EXPECT_FALSE(DatasetStreamWriter::open(os, 1ULL << 28, 4).ok());
    EXPECT_FALSE(DatasetStreamWriter::open(os, 4, 1ULL << 24).ok());
    // Individually plausible dims whose product is forged-huge.
    EXPECT_FALSE(
        DatasetStreamWriter::open(os, (1ULL << 27) - 1, (1ULL << 23) - 1)
            .ok());
    EXPECT_EQ(os.str().size(), 0u); // nothing written on rejection

    StatusOr<DatasetStreamWriter> w = DatasetStreamWriter::open(os, 65, 3);
    ASSERT_TRUE(w.ok());
    BitColumnMatrix wrong_rows(64, 1);
    EXPECT_FALSE(w->appendColumns(wrong_rows).ok());
    BitColumnMatrix block(65, 2);
    ASSERT_TRUE(w->appendColumns(block).ok());
    BitColumnMatrix over(65, 2);
    EXPECT_FALSE(w->appendColumns(over).ok()); // 4 > declared 3

    std::vector<float> y(65, 0.0f);
    EXPECT_FALSE(w->writeLabels(y).ok()); // columns incomplete
    BitColumnMatrix last(65, 1);
    ASSERT_TRUE(w->appendColumns(last).ok());
    std::vector<float> y_short(64, 0.0f);
    EXPECT_FALSE(w->writeLabels(y_short).ok());
    ASSERT_TRUE(w->writeLabels(y).ok());
    EXPECT_FALSE(w->appendColumns(last).ok()); // columns after labels

    SegmentInfo bad{"bad", 60, 70}; // end > rows
    EXPECT_FALSE(w->finish(std::span<const SegmentInfo>(&bad, 1)).ok());
}

} // namespace
} // namespace apollo
