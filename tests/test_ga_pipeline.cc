/**
 * @file
 * Regression tests for the parallel, cached, single-pass GA
 * training-data pipeline (docs/INTERNALS.md §9): configuration
 * validation, the batch hash-kernel contract, thread-count and
 * flag invariance of the GA trajectory, deterministic cache counters,
 * and byte-identity of the single-pass dataset export against full
 * re-simulation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apollo.hh"

#include "util/hash_kernels.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace apollo {
namespace {

/** A small design + short warm-up shared by the pipeline tests. */
DesignConfig
pipelineDesign()
{
    DesignConfig cfg;
    cfg.name = "ga-pipeline";
    cfg.seed = 0x5151;
    cfg.ffPerClockGate = 16;
    cfg.units = {
        {UnitId::Fetch, 60, 1, 8, 1.0f},
        {UnitId::IntAlu, 80, 0, 8, 1.2f},
        {UnitId::VecExec, 70, 2, 8, 1.5f},
        {UnitId::LoadStore, 60, 1, 8, 1.0f},
    };
    return cfg;
}

CoreParams
fastCore()
{
    CoreParams params = CoreParams::defaults();
    params.warmupCycles = 32;
    return params;
}

GaConfig
pipelineConfig()
{
    GaConfig cfg;
    cfg.populationSize = 8;
    cfg.generations = 3;
    cfg.elites = 2;
    cfg.bodyMinLen = 4;
    cfg.bodyMaxLen = 12;
    cfg.fitnessCycles = 80;
    cfg.fitnessSignalStride = 2;
    cfg.seed = 0x77;
    return cfg;
}

/** Full observable GA trajectory for bitwise comparison. */
struct Trajectory
{
    std::vector<double> fitness;
    std::vector<uint64_t> dataSeeds;
    std::vector<size_t> bodyLens;
    std::vector<size_t> selectedIds;

    static Trajectory
    of(const GaGenerator &ga)
    {
        Trajectory t;
        for (const GaIndividual &ind : ga.all()) {
            t.fitness.push_back(ind.avgPower);
            t.dataSeeds.push_back(ind.dataSeed);
            t.bodyLens.push_back(ind.body.size());
        }
        for (const GaIndividual &ind : ga.selectTrainingSet(10))
            t.selectedIds.push_back(ind.id);
        return t;
    }

    bool
    operator==(const Trajectory &o) const
    {
        return fitness == o.fitness && dataSeeds == o.dataSeeds &&
               bodyLens == o.bodyLens && selectedIds == o.selectedIds;
    }
};

TEST(GaConfigValidate, RejectsStrideZero)
{
    GaConfig cfg;
    cfg.fitnessSignalStride = 0;
    const Status st = cfg.validate();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
}

TEST(GaConfigValidate, RejectsDegenerateShapes)
{
    EXPECT_TRUE(GaConfig{}.validate().ok());

    GaConfig pop;
    pop.populationSize = 0;
    EXPECT_EQ(pop.validate().code(), StatusCode::InvalidArgument);

    GaConfig elites;
    elites.elites = elites.populationSize;
    EXPECT_EQ(elites.validate().code(), StatusCode::InvalidArgument);

    GaConfig cycles;
    cycles.fitnessCycles = 0;
    EXPECT_EQ(cycles.validate().code(), StatusCode::InvalidArgument);

    GaConfig body;
    body.bodyMinLen = 10;
    body.bodyMaxLen = 6;
    EXPECT_EQ(body.validate().code(), StatusCode::InvalidArgument);
}

TEST(GaConfigValidate, ConstructorEnforcesValidation)
{
    const Netlist netlist = DesignBuilder::build(pipelineDesign());
    DatasetBuilder builder(netlist, fastCore());
    GaConfig cfg = pipelineConfig();
    cfg.fitnessSignalStride = 0;
    EXPECT_THROW(GaGenerator(builder, cfg), FatalError);
}

TEST(HashKernels, BatchDrawsMatchScalarFormula)
{
    // The dispatched batch kernel is contractually bit-identical to
    // hashToUnitFloat(hashCombine(seed, cycle)) — on every dispatch
    // path, including AVX-512 when the host enables it.
    std::vector<float> out(200);
    for (const uint64_t seed : {0ULL, 0x6a6aULL, ~0ULL, 0x12345ULL}) {
        for (const size_t n : {size_t{0}, size_t{1}, size_t{7},
                               size_t{8}, size_t{9}, size_t{63},
                               size_t{64}, size_t{65}, size_t{130}}) {
            const uint64_t cycle0 = seed * 977 + 5;
            hashkernels::unitDraws(seed, cycle0, n, out.data());
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(out[i],
                          hashToUnitFloat(hashCombine(seed, cycle0 + i)))
                    << "seed=" << seed << " n=" << n << " i=" << i;
        }
    }

    // Gather variant over arbitrary (non-contiguous) cycle numbers.
    std::vector<uint64_t> cycles;
    Xoshiro256StarStar rng(42);
    for (size_t i = 0; i < 150; ++i)
        cycles.push_back(rng());
    hashkernels::unitDrawsAt(0xfeedULL, cycles.data(), cycles.size(),
                             out.data());
    for (size_t i = 0; i < cycles.size(); ++i)
        ASSERT_EQ(out[i],
                  hashToUnitFloat(hashCombine(0xfeedULL, cycles[i])));
}

TEST(GaPipeline, TrajectoryInvariantAcrossThreadCounts)
{
    const Netlist netlist = DesignBuilder::build(pipelineDesign());
    DatasetBuilder builder(netlist, fastCore());

    std::vector<Trajectory> runs;
    for (const uint32_t threads : {1u, 2u, 4u, 0u}) {
        GaConfig cfg = pipelineConfig();
        cfg.threads = threads;
        GaGenerator ga(builder, cfg);
        ga.run();
        runs.push_back(Trajectory::of(ga));
    }
    for (size_t i = 1; i < runs.size(); ++i)
        EXPECT_TRUE(runs[0] == runs[i]) << "thread variant " << i;

    // Repeated run on the same generator: identical again.
    GaConfig cfg = pipelineConfig();
    cfg.threads = 2;
    GaGenerator ga(builder, cfg);
    ga.run();
    const Trajectory first = Trajectory::of(ga);
    ga.run();
    EXPECT_TRUE(first == Trajectory::of(ga)) << "re-run drifted";
    EXPECT_TRUE(first == runs[0]);
}

TEST(GaPipeline, CacheAndVectorizationPreserveTrajectory)
{
    const Netlist netlist = DesignBuilder::build(pipelineDesign());
    DatasetBuilder builder(netlist, fastCore());

    GaConfig fast = pipelineConfig();
    fast.threads = 2;
    GaGenerator ga_fast(builder, fast);
    ga_fast.run();

    GaConfig naive = pipelineConfig();
    naive.threads = 1;
    naive.cacheFitness = false;
    naive.captureFrames = false;
    naive.vectorizedFitness = false;
    GaGenerator ga_naive(builder, naive);
    ga_naive.run();

    EXPECT_TRUE(Trajectory::of(ga_fast) == Trajectory::of(ga_naive))
        << "cached/vectorized/parallel trajectory diverged from the "
           "serial uncached scalar one";
    EXPECT_EQ(ga_naive.stats().cacheHits, 0u);
    EXPECT_GT(ga_fast.stats().cacheHits, 0u);
    EXPECT_LT(ga_fast.stats().evaluations,
              ga_naive.stats().evaluations);
}

TEST(GaPipeline, CacheCountersAreDeterministicAndEliteDriven)
{
    const Netlist netlist = DesignBuilder::build(pipelineDesign());
    DatasetBuilder builder(netlist, fastCore());
    const GaConfig cfg = pipelineConfig();

    GaGenerator ga(builder, cfg);
    ga.run();
    const GaRunStats first = ga.stats();

    // Elites repeat verbatim in the next generation: at least
    // elites * (generations - 1) hits.
    EXPECT_GE(first.cacheHits,
              static_cast<uint64_t>(cfg.elites) *
                  (cfg.generations - 1));
    EXPECT_EQ(first.evaluations, first.cacheMisses);
    EXPECT_EQ(first.cacheHits + first.cacheMisses,
              static_cast<uint64_t>(cfg.populationSize) *
                  cfg.generations);
    EXPECT_GT(first.simulatedCycles, 0u);
    EXPECT_GT(first.hitRate(), 0.0);

    GaConfig threaded = cfg;
    threaded.threads = 3;
    GaGenerator ga2(builder, threaded);
    ga2.run();
    EXPECT_EQ(first.cacheHits, ga2.stats().cacheHits);
    EXPECT_EQ(first.cacheMisses, ga2.stats().cacheMisses);
    EXPECT_EQ(first.simulatedCycles, ga2.stats().simulatedCycles);
}

TEST(DatasetBuilderAddFrames, AppendsNamedSegments)
{
    const Netlist netlist = DesignBuilder::build(pipelineDesign());
    DatasetBuilder builder(netlist, fastCore());

    std::vector<ActivityFrame> frames(5);
    for (size_t i = 0; i < frames.size(); ++i)
        frames[i].cycle = 100 + i;
    builder.addFrames("a", frames);
    builder.addFrames("b", std::span<const ActivityFrame>(frames)
                               .subspan(0, 3));

    ASSERT_EQ(builder.segments().size(), 2u);
    EXPECT_EQ(builder.segments()[0].name, "a");
    EXPECT_EQ(builder.segments()[0].begin, 0u);
    EXPECT_EQ(builder.segments()[0].end, 5u);
    EXPECT_EQ(builder.segments()[1].name, "b");
    EXPECT_EQ(builder.segments()[1].begin, 5u);
    EXPECT_EQ(builder.segments()[1].end, 8u);
    EXPECT_EQ(builder.frames().size(), 8u);
    EXPECT_THROW(
        builder.addFrames("empty", std::span<const ActivityFrame>{}),
        FatalError);
}

TEST(GenerateTrainingSet, SinglePassExportMatchesResimulation)
{
    const Netlist netlist = DesignBuilder::build(pipelineDesign());

    TrainingGenOptions options;
    options.ga = pipelineConfig();
    options.ga.fitnessCycles = 120;
    options.benchmarks = 12;
    options.cyclesEach = 100;

    auto single_pass =
        generateTrainingSet(netlist, options, fastCore());
    ASSERT_TRUE(single_pass.ok()) << single_pass.status().toString();
    EXPECT_EQ(single_pass->exportSimulatedCycles, 0u)
        << "every selected individual should be served from the "
           "fitness capture";

    TrainingGenOptions resim = options;
    resim.reuseCapturedFrames = false;
    auto two_pass = generateTrainingSet(netlist, resim, fastCore());
    ASSERT_TRUE(two_pass.ok()) << two_pass.status().toString();
    EXPECT_GT(two_pass->exportSimulatedCycles, 0u);

    std::ostringstream a, b;
    saveDataset(a, single_pass->dataset);
    saveDataset(b, two_pass->dataset);
    EXPECT_EQ(a.str(), b.str())
        << "single-pass dataset differs from re-simulated export";

    EXPECT_GT(single_pass->powerRangeRatio, 1.0);
    EXPECT_GT(single_pass->bestPower, 0.0);
    EXPECT_EQ(single_pass->gaStats.evaluations,
              single_pass->gaStats.cacheMisses);
}

TEST(GenerateTrainingSet, PropagatesInvalidConfig)
{
    const Netlist netlist = DesignBuilder::build(pipelineDesign());
    TrainingGenOptions options;
    options.ga.fitnessSignalStride = 0;
    const auto result = generateTrainingSet(netlist, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);

    TrainingGenOptions none;
    none.benchmarks = 0;
    EXPECT_EQ(generateTrainingSet(netlist, none).status().code(),
              StatusCode::InvalidArgument);
}

} // namespace
} // namespace apollo
