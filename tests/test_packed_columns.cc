/**
 * @file
 * Property tests for the packed column-major 64-cycle toggle layout
 * that the bit-parallel streaming kernels consume (docs/INTERNALS.md
 * §12): pack -> unpack roundtrips, the zero-tail masking rule at
 * word-boundary trace lengths, cross-chunk partial-word carry
 * equivalence against single-chunk runs, popcount-kernel agreement
 * across implementations, and rejection of forged tail bits in the
 * APTR trace decoder.
 */

#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "apollo.hh"

#include "activity/toggle_columns.hh"
#include "util/popcnt_kernels.hh"

namespace apollo {
namespace {

BitColumnMatrix
randomMatrix(size_t rows, size_t cols, uint64_t seed,
             uint32_t density_pct = 30)
{
    Xoshiro256StarStar rng(seed);
    BitColumnMatrix m(rows, cols);
    for (size_t c = 0; c < cols; ++c)
        for (size_t r = 0; r < rows; ++r)
            if (rng() % 100 < density_pct)
                m.setBit(r, c);
    return m;
}

ApolloModel
randomModel(size_t q, uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    ApolloModel model;
    model.intercept = 0.41;
    for (size_t i = 0; i < q; ++i) {
        model.proxyIds.push_back(static_cast<uint32_t>(i));
        const double u =
            static_cast<double>(rng() % 2000) / 1000.0 - 1.0;
        model.weights.push_back(
            i % 6 == 2 ? 0.0f : static_cast<float>(u));
    }
    return model;
}

std::vector<ActivityFrame>
randomFrames(size_t n, uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    std::vector<ActivityFrame> frames(n);
    for (size_t i = 0; i < n; ++i) {
        ActivityFrame &f = frames[i];
        f.cycle = i;
        for (size_t u = 0; u < numUnits; ++u) {
            f.activity[u] = static_cast<float>(rng() % 1000) / 1000.0f;
            f.clockEnabled[u] = rng() % 100 < 85;
            f.dataToggle[u] = static_cast<float>(rng() % 1000) / 1000.0f;
        }
    }
    return frames;
}

/** Every signal id of the tiny design, in order. */
std::vector<uint32_t>
allSignals(const Netlist &netlist)
{
    std::vector<uint32_t> ids(netlist.signalCount());
    for (uint32_t s = 0; s < netlist.signalCount(); ++s)
        ids[s] = s;
    return ids;
}

// Word-boundary trace lengths the packed layout must handle: the
// empty trace, a single cycle, one bit below/at/above a word, and a
// multi-word length with a partial tail.
constexpr size_t kEdgeLengths[] = {0, 1, 63, 64, 65, 200};

TEST(StreamInferPackedColumns, FillMatrixMatchesPerCycleToggles)
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    const ActivityEngine engine(netlist);
    const std::vector<uint32_t> ids = allSignals(netlist);

    for (const size_t n : kEdgeLengths) {
        const std::vector<ActivityFrame> frames =
            randomFrames(n, 0x9a0 + n);
        ToggleColumnGenerator gen(engine);
        gen.bind(frames);
        BitColumnMatrix packed;
        gen.fillMatrix(ids, packed);
        ASSERT_EQ(packed.rows(), n);
        ASSERT_EQ(packed.cols(), ids.size());
        for (size_t k = 0; k < ids.size(); ++k)
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(packed.get(i, k),
                          engine.toggles(ids[k], frames, i, 0))
                    << "n=" << n << " sig=" << ids[k] << " cycle=" << i;
    }
}

TEST(StreamInferPackedColumns, FillMatrixMatchesNaiveGenerator)
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    const ActivityEngine engine(netlist);
    const std::vector<uint32_t> ids = allSignals(netlist);
    const std::vector<ActivityFrame> frames = randomFrames(321, 0xb5);

    ToggleColumnGenerator fast(engine);
    fast.bind(frames);
    BitColumnMatrix packed;
    fast.fillMatrix(ids, packed);

    ToggleColumnGenerator naive(engine);
    naive.naive = true;
    naive.bind(frames);
    BitColumnMatrix expect;
    naive.fillMatrix(ids, expect);

    ASSERT_EQ(packed.rows(), expect.rows());
    ASSERT_EQ(packed.wordsPerCol(), expect.wordsPerCol());
    for (size_t k = 0; k < ids.size(); ++k)
        for (size_t w = 0; w < packed.wordsPerCol(); ++w)
            ASSERT_EQ(packed.colWords(k)[w], expect.colWords(k)[w])
                << "sig=" << ids[k] << " word=" << w;
}

TEST(StreamInferPackedColumns, TailBitsAreZeroAtWordBoundaries)
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    const ActivityEngine engine(netlist);
    const std::vector<uint32_t> ids = allSignals(netlist);

    for (const size_t n : kEdgeLengths) {
        const std::vector<ActivityFrame> frames =
            randomFrames(n, 0xc70 + n);
        ToggleColumnGenerator gen(engine);
        gen.bind(frames);
        BitColumnMatrix packed;
        gen.fillMatrix(ids, packed);
        ASSERT_EQ(packed.wordsPerCol(), (n + 63) / 64) << "n=" << n;
        if (n == 0 || (n & 63) == 0)
            continue;
        for (size_t k = 0; k < ids.size(); ++k) {
            const uint64_t tail =
                packed.colWords(k)[packed.wordsPerCol() - 1] >> (n & 63);
            ASSERT_EQ(tail, 0u) << "n=" << n << " sig=" << ids[k];
        }
    }
}

TEST(StreamInferPackedColumns, MaskTailWordsEnforcesTheRule)
{
    for (const size_t n : kEdgeLengths) {
        const size_t words = (n + 63) / 64;
        std::vector<uint64_t> col(words, ~uint64_t{0});
        maskTailWords(col.data(), words, n);
        for (size_t i = 0; i < words * 64; ++i) {
            const bool set = (col[i >> 6] >> (i & 63)) & 1;
            ASSERT_EQ(set, i < n) << "n=" << n << " bit=" << i;
        }
    }
}

TEST(StreamInferPackedColumns, CrossChunkCarryMatchesSingleChunk)
{
    // Chunk sizes that are not multiples of 64 force the stream engine
    // to carry partial packed words (and a mid-window phase) across
    // chunk boundaries; every schedule must equal the single-chunk run
    // and the batch OPM simulator bit for bit.
    const size_t n = 777, q = 33;
    const uint32_t T = 16;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0xd1);
    const QuantizedModel qm = quantizeModel(randomModel(q, 0xd2), 10);
    OpmSimulator sim(qm, T);
    const std::vector<float> batch = sim.simulate(Xq);

    const StreamingInference engine(qm, T);
    std::vector<float> single;
    {
        MatrixChunkReader reader(Xq);
        VectorSink sink;
        ASSERT_TRUE(engine
                        .run(reader, sink,
                             StreamConfig().withChunkCycles(n))
                        .ok());
        single = sink.takeValues();
    }
    ASSERT_EQ(single, batch);

    for (const size_t chunk :
         {size_t{1}, size_t{3}, size_t{63}, size_t{65}, size_t{97}}) {
        MatrixChunkReader reader(Xq);
        VectorSink sink;
        ASSERT_TRUE(engine
                        .run(reader, sink,
                             StreamConfig().withChunkCycles(chunk))
                        .ok());
        ASSERT_EQ(sink.values(), single) << "chunk=" << chunk;
    }
}

TEST(StreamInferPackedColumns, AptrRoundTripAtOddBlockSizes)
{
    // Writer blocks and reader chunks on different, non-64-multiple
    // granularities: the reassembled matrix must be bit-identical,
    // and every served chunk must honor the zero-tail rule.
    const size_t n = 517, q = 9;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0xe3);

    std::ostringstream os;
    ProxyTraceWriter writer(os, q);
    static constexpr size_t kBlocks[] = {1, 63, 65, 97, 200, 91};
    size_t at = 0;
    for (size_t b = 0; at < n; b++) {
        const size_t len =
            std::min(kBlocks[b % std::size(kBlocks)], n - at);
        ASSERT_TRUE(writer.append(Xq.sliceRows(at, len)).ok());
        at += len;
    }
    ASSERT_TRUE(writer.finish().ok());

    std::istringstream is(os.str());
    ProxyTraceReader reader(is);
    ProxyChunk chunk;
    BitColumnMatrix rebuilt(n, q);
    size_t rows = 0;
    for (;;) {
        StatusOr<size_t> got = reader.next(59, chunk);
        ASSERT_TRUE(got.ok()) << got.status().toString();
        if (*got == 0)
            break;
        if (*got & 63)
            for (size_t c = 0; c < q; ++c)
                ASSERT_EQ(chunk.bits.colWords(
                              c)[chunk.bits.wordsPerCol() - 1] >>
                              (*got & 63),
                          0u)
                    << "served chunk leaks tail bits";
        for (size_t c = 0; c < q; ++c)
            for (size_t r = 0; r < *got; ++r)
                if (chunk.bits.get(r, c))
                    rebuilt.setBit(rows + r, c);
        rows += *got;
    }
    ASSERT_EQ(rows, n);
    for (size_t c = 0; c < q; ++c)
        for (size_t r = 0; r < n; ++r)
            ASSERT_EQ(rebuilt.get(r, c), Xq.get(r, c));
}

TEST(StreamInferPackedColumns, RejectsForgedTailBits)
{
    // A block declaring 100 rows but setting a bit at row >= 100 in a
    // column's last word violates the zero-tail contract the popcount
    // kernels rely on; the decoder must reject it, not mask it.
    const size_t n = 100, q = 3;
    std::ostringstream os;
    ProxyTraceWriter writer(os, q);
    ASSERT_TRUE(writer.append(randomMatrix(n, q, 0xf4)).ok());
    ASSERT_TRUE(writer.finish().ok());
    std::string bytes = os.str();

    // Header is 20 bytes (magic + version + q + cycles); the block is
    // u32 rows then q columns of 2 words each. Set bit 63 of column
    // 0's last word = row 127, past the declared 100 rows.
    const size_t tail_byte = 20 + 4 + 8 + 7;
    ASSERT_LT(tail_byte, bytes.size());
    bytes[tail_byte] = static_cast<char>(
        static_cast<unsigned char>(bytes[tail_byte]) | 0x80u);

    std::istringstream is(bytes);
    ProxyTraceReader reader(is);
    ProxyChunk chunk;
    Status err = Status::okStatus();
    for (;;) {
        StatusOr<size_t> got = reader.next(64, chunk);
        if (!got.ok()) {
            err = got.status();
            break;
        }
        ASSERT_NE(*got, 0u) << "forged tail bits parsed to EOF";
    }
    EXPECT_EQ(err.code(), StatusCode::ParseError);
}

TEST(StreamInferPackedKernels, ImplsAgreeWithPortablePopcount)
{
    Xoshiro256StarStar rng(0xabc);
    std::vector<uint64_t> words(300);
    for (uint64_t &w : words)
        w = rng();
    const size_t nbits_full = words.size() * 64;

    static constexpr popkernels::Impl kImpls[] = {
        popkernels::Impl::Scalar, popkernels::Impl::Avx2,
        popkernels::Impl::Avx512};
    for (const popkernels::Impl impl : kImpls) {
        if (!popkernels::implAvailable(impl))
            continue;
        const popkernels::Kernels &k = popkernels::implKernels(impl);
        SCOPED_TRACE(popkernels::implName(impl));

        uint64_t want = 0;
        for (uint64_t w : words)
            want += std::popcount(w);
        EXPECT_EQ(k.countWords(words.data(), words.size()), want);

        for (const auto &[b, e] : {std::pair<size_t, size_t>{0, 0},
                                   {0, 1},
                                   {5, 5},
                                   {0, 64},
                                   {1, 63},
                                   {63, 65},
                                   {64, 128},
                                   {100, nbits_full - 3},
                                   {0, nbits_full}}) {
            uint64_t range = 0;
            for (size_t i = b; i < e; ++i)
                range += (words[i >> 6] >> (i & 63)) & 1;
            EXPECT_EQ(k.countRange(words.data(), b, e), range)
                << "begin=" << b << " end=" << e;
        }

        // accumWindowSums against a per-bit walk, at tail lengths and
        // phases around the word size. The buffer is tail-masked per
        // nbits to honor the kernel's zero-tail requirement.
        for (const size_t nbits : {size_t{1}, size_t{63}, size_t{64},
                                   size_t{65}, size_t{1000}}) {
            std::vector<uint64_t> bits(
                words.begin(), words.begin() + (nbits + 63) / 64);
            maskTailWords(bits.data(), bits.size(), nbits);
            for (const uint32_t T : {1u, 4u, 32u, 64u, 128u}) {
                for (const uint32_t phase0 : {0u, 1u, T - 1}) {
                    if (phase0 >= T)
                        continue;
                    const int64_t weight = -12345;
                    const size_t nseg =
                        popkernels::windowSegments(nbits, T, phase0);
                    std::vector<int64_t> got(nseg, 7);
                    std::vector<int64_t> want_sums(nseg, 7);
                    k.accumWindowSums(bits.data(), nbits, T, phase0,
                                      weight, got.data());
                    size_t s = 0;
                    uint32_t phase = phase0;
                    for (size_t i = 0; i < nbits; ++i) {
                        if ((bits[i >> 6] >> (i & 63)) & 1)
                            want_sums[s] += weight;
                        if (++phase == T) {
                            phase = 0;
                            s++;
                        }
                    }
                    EXPECT_EQ(got, want_sums)
                        << "nbits=" << nbits << " T=" << T
                        << " phase0=" << phase0;
                }
            }
        }
    }
}

} // namespace
} // namespace apollo
