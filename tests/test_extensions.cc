/**
 * @file
 * Tests for the extension modules: dataset binary serialization, the
 * higher-abstraction power model (§9 future work), and affine model
 * recalibration (§6 re-training hook).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/abstract_model.hh"
#include "core/counter_model.hh"
#include "core/apollo_trainer.hh"
#include "gen/ga_generator.hh"
#include "ml/metrics.hh"
#include "rtl/design_builder.hh"
#include "trace/dataset_io.hh"
#include "trace/toggle_trace.hh"

namespace apollo {
namespace {

Dataset
makeDataset(int programs, uint64_t seed, uint64_t cycles = 300)
{
    static const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(nl);
    Xoshiro256StarStar rng(seed);
    for (int i = 0; i < programs; ++i)
        builder.addProgram(
            Program::makeLoop("p" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 24), 4000,
                              rng()),
            cycles);
    return builder.build();
}

TEST(DatasetIo, StreamRoundTripIsExact)
{
    const Dataset ds = makeDataset(3, 11);
    std::stringstream ss;
    saveDataset(ss, ds);
    const Dataset loaded = loadDataset(ss);

    ASSERT_EQ(loaded.cycles(), ds.cycles());
    ASSERT_EQ(loaded.signals(), ds.signals());
    ASSERT_EQ(loaded.segments.size(), ds.segments.size());
    for (size_t s = 0; s < ds.segments.size(); ++s) {
        EXPECT_EQ(loaded.segments[s].name, ds.segments[s].name);
        EXPECT_EQ(loaded.segments[s].begin, ds.segments[s].begin);
        EXPECT_EQ(loaded.segments[s].end, ds.segments[s].end);
    }
    for (size_t i = 0; i < ds.cycles(); ++i)
        ASSERT_EQ(loaded.y[i], ds.y[i]);
    for (size_t c = 0; c < ds.signals(); c += 53)
        for (size_t i = 0; i < ds.cycles(); i += 17)
            ASSERT_EQ(loaded.X.get(i, c), ds.X.get(i, c));
}

TEST(DatasetIo, FileRoundTrip)
{
    const Dataset ds = makeDataset(2, 13);
    const std::string path = "test_dataset_io.apds";
    saveDatasetFile(path, ds);
    const Dataset loaded = loadDatasetFile(path);
    EXPECT_EQ(loaded.cycles(), ds.cycles());
    EXPECT_EQ(loaded.meanLabel(), ds.meanLabel());
    std::filesystem::remove(path);
}

TEST(DatasetIo, RejectsGarbage)
{
    std::stringstream ss;
    ss << "not a dataset";
    EXPECT_THROW(loadDataset(ss), FatalError);

    // Corrupt magic with valid length.
    std::stringstream ss2;
    const Dataset ds = makeDataset(1, 17);
    saveDataset(ss2, ds);
    std::string bytes = ss2.str();
    bytes[0] = 'X';
    std::stringstream ss3(bytes);
    EXPECT_THROW(loadDataset(ss3), FatalError);

    // Truncation.
    std::stringstream ss4(bytes.substr(0, bytes.size() / 2));
    bytes[0] = 'A';
    EXPECT_THROW(loadDataset(ss4), FatalError);
}

TEST(AbstractModel, FeatureLayoutAndNames)
{
    ActivityFrame frame;
    frame.set(UnitId::VecExec, 0.5f, true, 0.25f);
    float features[AbstractPowerModel::featureCount];
    AbstractPowerModel::featuresOf(frame, features);
    const size_t base = static_cast<size_t>(UnitId::VecExec) *
                        AbstractPowerModel::featuresPerUnit;
    EXPECT_FLOAT_EQ(features[base + 0], 0.5f);
    EXPECT_FLOAT_EQ(features[base + 1], 1.0f);
    EXPECT_FLOAT_EQ(features[base + 2], 0.25f);
    EXPECT_EQ(AbstractPowerModel::featureName(base), "VecExec.activity");
    EXPECT_EQ(AbstractPowerModel::featureName(base + 1),
              "VecExec.clk_en");
}

TEST(AbstractModel, TracksPowerWithoutRtlSimulation)
{
    // Train on frames + oracle labels; must explain most of the power
    // variance despite never seeing a toggle bit.
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(nl);
    Xoshiro256StarStar rng(0xab5);
    for (int i = 0; i < 12; ++i)
        builder.addProgram(
            Program::makeLoop("t" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 24), 4000,
                              rng()),
            300);
    const Dataset train = builder.build();
    const AbstractPowerModel model =
        trainAbstractModel(builder.frames(), train.y);

    // Held-out program.
    DatasetBuilder eval(nl);
    eval.addProgram(Program::makeLoop(
                        "unseen", GaGenerator::randomBody(rng, 8, 20),
                        4000, 999),
                    600);
    const Dataset test = eval.build();
    const auto pred = model.predict(eval.frames());
    EXPECT_GT(r2Score(test.y, pred), 0.85);

    // Inference must not require netlist-sized state: the model is a
    // fixed-size vector.
    EXPECT_EQ(model.weights.size(), AbstractPowerModel::featureCount);
}

TEST(Calibration, RecoversAffineDistortion)
{
    std::vector<float> truth;
    std::vector<float> pred;
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 500; ++i) {
        const float t = static_cast<float>(1.0 + rng.nextDouble());
        truth.push_back(t);
        pred.push_back(0.5f * t - 0.2f); // distorted estimate
    }
    const Calibration cal = fitCalibration(truth, pred);
    EXPECT_NEAR(cal.scale, 2.0, 1e-3);
    EXPECT_NEAR(cal.offset, 0.4, 1e-3);
}

TEST(Calibration, AppliedModelMatchesCalibratedPredictions)
{
    const Dataset train = makeDataset(10, 77);
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 20;
    const ApolloModel model = trainApollo(train, cfg, "tiny").model;

    // Pretend silicon reads 1.07x the sign-off power plus an offset.
    const auto pred = model.predictFull(train.X);
    std::vector<float> silicon(pred.size());
    for (size_t i = 0; i < pred.size(); ++i)
        silicon[i] = 1.07f * train.y[i] + 0.05f;

    const Calibration cal = fitCalibration(silicon, pred);
    const ApolloModel recal = applyCalibration(model, cal);
    const auto recal_pred = recal.predictFull(train.X);
    for (size_t i = 0; i < pred.size(); i += 97) {
        EXPECT_NEAR(recal_pred[i],
                    cal.scale * pred[i] + cal.offset,
                    1e-3 + 1e-3 * std::abs(recal_pred[i]));
    }
    // Calibrated model fits the "silicon" readings better.
    EXPECT_LT(nrmse(silicon, recal_pred), nrmse(silicon, pred));
}

TEST(Calibration, IdentityWhenAlreadyAligned)
{
    std::vector<float> truth = {1.f, 2.f, 3.f, 4.f, 5.f};
    const Calibration cal = fitCalibration(truth, truth);
    EXPECT_NEAR(cal.scale, 1.0, 1e-9);
    EXPECT_NEAR(cal.offset, 0.0, 1e-9);
}

TEST(CounterModel, TraceShapeAndEpochAveraging)
{
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(nl);
    builder.addProgram(
        Program::makeLoop("p", {asm_helpers::vfma(0, 1, 2),
                                asm_helpers::add(3, 4, 5)},
                          4000, 5),
        640);
    const Dataset ds = builder.build();
    const CounterTrace trace =
        collectCounters(builder.frames(), ds.y, ds.segments, 64);
    EXPECT_EQ(trace.epochs, 10u);
    EXPECT_EQ(trace.counts.size(), 10u * numCounterEvents);
    // Epoch label equals the mean of the covered cycles.
    double label = 0.0;
    for (size_t i = 0; i < 64; ++i)
        label += ds.y[i];
    EXPECT_NEAR(trace.epochPower[0], label / 64, 1e-4);
}

TEST(CounterModel, CoarseEpochsFitFinEpochsDegrade)
{
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(nl);
    Xoshiro256StarStar rng(0xce);
    for (int i = 0; i < 12; ++i)
        builder.addProgram(
            Program::makeLoop("t" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 24), 4000,
                              rng()),
            512);
    const Dataset train = builder.build();

    auto nrmse_at = [&](uint32_t epoch) {
        const CounterTrace trace = collectCounters(
            builder.frames(), train.y, train.segments, epoch);
        const CounterPowerModel model = trainCounterModel(trace);
        const auto pred = model.predict(trace);
        return nrmse(trace.epochPower, pred);
    };
    const double coarse = nrmse_at(256);
    const double fine = nrmse_at(1);
    EXPECT_LT(coarse, 0.12) << "counters should work at OS epochs";
    EXPECT_GT(fine, 1.5 * coarse)
        << "per-cycle counter error must blow up (the paper's "
           "motivation for proxies)";
}

} // namespace
} // namespace apollo
