/**
 * @file
 * Unit tests for src/util: RNG determinism, packed bit containers,
 * thread pool, table rendering, running stats.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/bitvec.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace apollo {
namespace {

TEST(Rng, HashMixIsDeterministic)
{
    EXPECT_EQ(hashMix(12345), hashMix(12345));
    EXPECT_NE(hashMix(12345), hashMix(12346));
}

TEST(Rng, HashToUnitFloatInRange)
{
    for (uint64_t i = 0; i < 1000; ++i) {
        const float u = hashToUnitFloat(hashMix(i));
        EXPECT_GE(u, 0.0f);
        EXPECT_LT(u, 1.0f);
    }
}

TEST(Rng, XoshiroSequencesRepeatPerSeed)
{
    Xoshiro256StarStar a(42);
    Xoshiro256StarStar b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, NextBoundedStaysInBounds)
{
    Xoshiro256StarStar rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Xoshiro256StarStar rng(11);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.nextGaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(BitVector, SetGetPopcount)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(64, false);
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitColumnMatrix, RoundTripAndColumnOps)
{
    BitColumnMatrix m(100, 5);
    m.setBit(3, 2);
    m.setBit(64, 2);
    m.setBit(99, 4);
    EXPECT_TRUE(m.get(3, 2));
    EXPECT_TRUE(m.get(64, 2));
    EXPECT_FALSE(m.get(4, 2));
    EXPECT_EQ(m.colPopcount(2), 2u);
    EXPECT_EQ(m.colPopcount(0), 0u);

    std::vector<size_t> rows;
    m.forEachSetBit(2, [&](size_t r) { rows.push_back(r); });
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], 3u);
    EXPECT_EQ(rows[1], 64u);
}

TEST(BitColumnMatrix, DotAndAxpyAgree)
{
    BitColumnMatrix m(64, 1);
    m.setBit(1, 0);
    m.setBit(10, 0);
    std::vector<float> dense(64, 0.0f);
    dense[1] = 2.0f;
    dense[10] = 3.0f;
    EXPECT_DOUBLE_EQ(m.dotColumn(0, dense.data()), 5.0);

    m.axpyColumn(0, 1.5f, dense.data());
    EXPECT_FLOAT_EQ(dense[1], 3.5f);
    EXPECT_FLOAT_EQ(dense[10], 4.5f);
    EXPECT_FLOAT_EQ(dense[0], 0.0f);
}

TEST(BitColumnMatrix, SelectColumnsCopiesExactBits)
{
    BitColumnMatrix m(70, 3);
    m.setBit(5, 0);
    m.setBit(69, 2);
    const BitColumnMatrix sel = m.selectColumns({2, 0});
    EXPECT_EQ(sel.cols(), 2u);
    EXPECT_TRUE(sel.get(69, 0));
    EXPECT_TRUE(sel.get(5, 1));
    EXPECT_FALSE(sel.get(5, 0));
}

TEST(CountColumnMatrix, DotAxpySumSquares)
{
    CountColumnMatrix m(4, 2);
    m.set(0, 1, 3);
    m.set(2, 1, 2);
    std::vector<float> v = {1.f, 1.f, 2.f, 1.f};
    EXPECT_DOUBLE_EQ(m.dotColumn(1, v.data()), 3.0 + 4.0);
    EXPECT_DOUBLE_EQ(m.colSumSquares(1), 9.0 + 4.0);
    m.axpyColumn(1, 0.5f, v.data());
    EXPECT_FLOAT_EQ(v[0], 2.5f);
    EXPECT_FLOAT_EQ(v[2], 3.0f);
}

TEST(ThreadPool, CoversAllIndicesExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(1000, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i]++;
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions)
{
    EXPECT_THROW(parallelFor(100,
                             [&](size_t b, size_t) {
                                 if (b == 0)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, HandlesZeroAndOneElement)
{
    int calls = 0;
    parallelFor(0, [&](size_t, size_t) { calls++; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&](size_t b, size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1u);
    });
}

TEST(Table, RendersAlignedRowsAndCsv)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", TablePrinter::num(1.5, 2)});
    t.addRow({"b", TablePrinter::percent(0.123, 1)});
    std::ostringstream os;
    t.render(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("12.3%"), std::string::npos);

    std::ostringstream csv;
    t.renderCsv(csv);
    EXPECT_NE(csv.str().find("alpha,1.50"), std::string::npos);
}

TEST(Table, RejectsBadRowArity)
{
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Logging, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(fatal("bad input ", 3), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_THROW(APOLLO_REQUIRE(false, "nope"), FatalError);
    EXPECT_THROW(APOLLO_ASSERT(false, "bug"), PanicError);
}

TEST(RunningStats, MeanVarMinMax)
{
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

} // namespace
} // namespace apollo
