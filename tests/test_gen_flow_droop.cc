/**
 * @file
 * Tests for the GA micro-benchmark generator (§4.1), the design-time
 * flows (Fig. 7), the long-workload generator, and the droop
 * application (§8.2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apollo.hh"

namespace apollo {
namespace {

/** One small GA run shared across the GA tests. */
struct GaFixtureData
{
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder{netlist};
    GaGenerator ga;

    GaFixtureData()
        : ga(builder,
             [] {
                 GaConfig cfg;
                 cfg.populationSize = 16;
                 cfg.generations = 6;
                 cfg.fitnessCycles = 300;
                 return cfg;
             }())
    {
        ga.run();
    }
};

const GaFixtureData &
gaFixture()
{
    static GaFixtureData data;
    return data;
}

TEST(GaGenerator, EvaluatesWholePopulationEachGeneration)
{
    const auto &fx = gaFixture();
    EXPECT_EQ(fx.ga.all().size(), 16u * 6u);
    for (const GaIndividual &ind : fx.ga.all()) {
        EXPECT_GE(ind.body.size(), 6u);
        EXPECT_LE(ind.body.size(), 26u);
        EXPECT_GT(ind.avgPower, 0.0);
    }
}

TEST(GaGenerator, PowerImprovesAcrossGenerations)
{
    // The generation-max envelope should rise (Fig. 3(b)).
    const auto &fx = gaFixture();
    double first_max = 0.0;
    double last_max = 0.0;
    for (const GaIndividual &ind : fx.ga.all()) {
        if (ind.generation == 0)
            first_max = std::max(first_max, ind.avgPower);
        if (ind.generation == 5)
            last_max = std::max(last_max, ind.avgPower);
    }
    EXPECT_GT(last_max, first_max);
    EXPECT_EQ(fx.ga.best().avgPower,
              [&] {
                  double best = 0.0;
                  for (const auto &ind : fx.ga.all())
                      best = std::max(best, ind.avgPower);
                  return best;
              }());
}

TEST(GaGenerator, WidePowerRange)
{
    // Fig. 3(b): >5x ratio between max and min individuals (we accept
    // >3x on the tiny test design; the bench measures the real config).
    const auto &fx = gaFixture();
    EXPECT_GT(fx.ga.powerRangeRatio(), 3.0);
}

TEST(GaGenerator, TrainingSetCoversThePowerRange)
{
    const auto &fx = gaFixture();
    const auto selected = fx.ga.selectTrainingSet(24);
    ASSERT_EQ(selected.size(), 24u);

    double lo_all = 1e30;
    double hi_all = 0.0;
    for (const auto &ind : fx.ga.all()) {
        lo_all = std::min(lo_all, ind.avgPower);
        hi_all = std::max(hi_all, ind.avgPower);
    }
    double lo_sel = 1e30;
    double hi_sel = 0.0;
    for (const auto &ind : selected) {
        lo_sel = std::min(lo_sel, ind.avgPower);
        hi_sel = std::max(hi_sel, ind.avgPower);
    }
    // The uniform selection must span most of the observed range.
    EXPECT_LT(lo_sel, lo_all + 0.2 * (hi_all - lo_all));
    EXPECT_GT(hi_sel, hi_all - 0.2 * (hi_all - lo_all));
}

TEST(GaGenerator, BodiesProduceValidLoopPrograms)
{
    const auto &fx = gaFixture();
    const Program prog =
        GaGenerator::toProgram(fx.ga.best(), "virus", 100);
    EXPECT_EQ(prog.at(0).op, Opcode::MovI);
    EXPECT_EQ(prog.at(prog.size() - 1).op, Opcode::Bnez);
    // Runs to completion on the functional executor.
    FunctionalExecutor exec(prog);
    MicroOp op;
    size_t ops = 0;
    while (exec.next(op)) {
        ops++;
        ASSERT_LT(ops, 1000000u);
    }
    EXPECT_GT(ops, 100u);
}

/** Flow fixture: a tiny trained model. */
struct FlowFixtureData
{
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    ApolloModel model;

    FlowFixtureData()
    {
        DatasetBuilder tb(netlist);
        Xoshiro256StarStar rng(0xf10);
        for (int i = 0; i < 16; ++i) {
            auto body = GaGenerator::randomBody(rng, 6, 24);
            tb.addProgram(Program::makeLoop("t" + std::to_string(i),
                                            body, 3000, rng()),
                          300);
        }
        ApolloTrainConfig cfg;
        cfg.selection.targetQ = 40;
        model = trainApollo(tb.build(), cfg, "tiny").model;
    }
};

const FlowFixtureData &
flowFixture()
{
    static FlowFixtureData data;
    return data;
}

TEST(Flows, EmulatorMatchesApolloFlowExactly)
{
    // Proxy-only tracing must reproduce the full-trace model inference
    // bit-for-bit (same toggles, same linear model).
    const auto &fx = flowFixture();
    DesignTimeFlows flows(fx.netlist);
    const Program prog = makeLongWorkload("wl", 4000, 99);

    FlowReport apollo_flow =
        flows.runApolloFlow(prog, 3000, fx.model);
    FlowReport emulator_flow =
        flows.runEmulatorFlow(prog, 3000, fx.model);
    ASSERT_EQ(apollo_flow.power.size(), emulator_flow.power.size());
    for (size_t i = 0; i < apollo_flow.power.size(); ++i)
        ASSERT_FLOAT_EQ(apollo_flow.power[i], emulator_flow.power[i]);

    // Storage: proxy trace is ~M/Q smaller.
    EXPECT_LT(emulator_flow.traceBytes * 10, apollo_flow.traceBytes);
}

TEST(Flows, EmulatorTracksCommercialFlow)
{
    const auto &fx = flowFixture();
    DesignTimeFlows flows(fx.netlist);
    const Program prog = makeLongWorkload("wl2", 4000, 5);

    FlowReport commercial = flows.runCommercialFlow(prog, 3000);
    FlowReport emulator = flows.runEmulatorFlow(prog, 3000, fx.model);
    ASSERT_EQ(commercial.power.size(), emulator.power.size());
    EXPECT_GT(r2Score(commercial.power, emulator.power), 0.85);
}

TEST(Flows, LongWorkloadHasPhases)
{
    const auto &fx = flowFixture();
    DesignTimeFlows flows(fx.netlist);
    const Program prog = makeLongWorkload("phases", 12000, 7);
    FlowReport rep = flows.runCommercialFlow(prog, 10000);
    ASSERT_GT(rep.power.size(), 4000u);

    // Phase-rich: the windowed power range must be wide.
    const size_t window = 500;
    double lo = 1e30;
    double hi = 0.0;
    for (size_t w = 0; w + window <= rep.power.size(); w += window) {
        double acc = 0.0;
        for (size_t i = 0; i < window; ++i)
            acc += rep.power[w + i];
        acc /= window;
        lo = std::min(lo, acc);
        hi = std::max(hi, acc);
    }
    EXPECT_GT(hi, 1.5 * lo);
}

TEST(Droop, CurrentAndDeltaI)
{
    std::vector<float> power = {1.f, 2.f, 4.f, 3.f};
    const auto current = currentFromPower(power, 0.5);
    EXPECT_DOUBLE_EQ(current[2], 8.0);
    const auto di = deltaI(current);
    EXPECT_DOUBLE_EQ(di[0], 0.0);
    EXPECT_DOUBLE_EQ(di[2], 4.0);
    EXPECT_DOUBLE_EQ(di[3], -2.0);
}

TEST(Droop, PerfectEstimateGivesPerfectCorrelation)
{
    const auto &fx = flowFixture();
    DesignTimeFlows flows(fx.netlist);
    const Program prog = makeLongWorkload("d", 6000, 21);
    FlowReport rep = flows.runCommercialFlow(prog, 5000);

    const DidtAnalysis self =
        analyzeDidt(rep.power, rep.power, 0.75);
    EXPECT_NEAR(self.pearsonDeltaI, 1.0, 1e-9);
    EXPECT_EQ(self.quadPosNeg, 0u);
    EXPECT_EQ(self.quadNegPos, 0u);
    EXPECT_NEAR(self.deepDroopRecall, 1.0, 1e-9);
}

TEST(Droop, RejectsOutOfRangePercentile)
{
    // Regression: deep_percentile was used unvalidated to index the
    // sorted |dI/dt| array, so 1.5 computed cut = 1.5 * (n-1) — a
    // heap-buffer-overflow read visible under ASan before the fix.
    std::vector<float> power = {1.f, 2.f, 4.f, 3.f, 2.f, 5.f,
                                1.f, 3.f, 2.f, 4.f, 3.f, 2.f};
    EXPECT_THROW(analyzeDidt(power, power, 0.75, 1.5), FatalError);
    EXPECT_THROW(analyzeDidt(power, power, 0.75, -0.25), FatalError);
    // Inclusive endpoints are valid and must clamp safely.
    EXPECT_NO_THROW(analyzeDidt(power, power, 0.75, 0.0));
    EXPECT_NO_THROW(analyzeDidt(power, power, 0.75, 1.0));
}

TEST(Droop, RejectsDegenerateShortTraces)
{
    // Regression: n == 3 produced two-sample delta series whose
    // Pearson correlation is always degenerate (division by a zero
    // variance); the analysis now requires at least 4 samples.
    std::vector<float> three = {1.f, 2.f, 3.f};
    EXPECT_THROW(analyzeDidt(three, three, 0.75), FatalError);
    std::vector<float> four = {1.f, 2.f, 3.f, 1.f};
    EXPECT_NO_THROW(analyzeDidt(four, four, 0.75));
    // Arity mismatch is still rejected.
    EXPECT_THROW(analyzeDidt(four, three, 0.75), FatalError);
    // vdd must stay positive (pre-existing contract).
    EXPECT_THROW(analyzeDidt(four, four, 0.0), FatalError);
}

TEST(Droop, OpmEstimateCorrelatesWithTruth)
{
    const auto &fx = flowFixture();
    DesignTimeFlows flows(fx.netlist);
    const Program prog = makeLongWorkload("d2", 6000, 22);
    FlowReport truth = flows.runCommercialFlow(prog, 5000);
    FlowReport est = flows.runEmulatorFlow(prog, 5000, fx.model);

    const DidtAnalysis res = analyzeDidt(truth.power, est.power, 0.75);
    EXPECT_GT(res.pearsonDeltaI, 0.7);
    EXPECT_GT(res.deepEventPearson, 0.7);
    EXPECT_GT(res.deepDroopRecall, 0.5);
    // Agreeing quadrants dominate.
    EXPECT_GT(res.quadPosPos + res.quadNegNeg,
              2 * (res.quadPosNeg + res.quadNegPos));
}

TEST(Droop, MitigationReducesDroop)
{
    const auto &fx = flowFixture();
    DesignTimeFlows flows(fx.netlist);
    const Program prog = makeLongWorkload("d3", 6000, 23);
    FlowReport truth = flows.runCommercialFlow(prog, 5000);
    FlowReport est = flows.runEmulatorFlow(prog, 5000, fx.model);

    PdnParams pdn;
    const double threshold = pdn.vdd * 0.97;
    const DroopSimResult base =
        simulateDroop(truth.power, pdn, threshold);

    // Trigger on estimated delta-I above its 97th percentile.
    std::vector<double> di =
        deltaI(currentFromPower(est.power, pdn.vdd));
    std::vector<double> mags;
    for (double d : di)
        mags.push_back(std::abs(d));
    std::sort(mags.begin(), mags.end());
    const double trigger = mags[static_cast<size_t>(0.97 *
                                                    (mags.size() - 1))];

    const DroopSimResult mitigated = simulateWithMitigation(
        truth.power, est.power, pdn, threshold, trigger, 0.5, 4);
    EXPECT_GT(mitigated.throttledCycles, 0u);
    EXPECT_GE(mitigated.minVoltage, base.minVoltage)
        << "proactive throttling must not deepen the worst droop";
}

} // namespace
} // namespace apollo
