/**
 * @file
 * Streaming pipeline tests: chunked readers (matrix slices, APTR
 * files, VCD), the streaming inference engine's bit-identity with the
 * batch paths (per-cycle float, Eq. (9) windows, quantized OPM), sink
 * behaviors, Status error paths of the data loaders, and the public
 * Inference/Trainer facade.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "apollo.hh"

namespace apollo {
namespace {

BitColumnMatrix
randomMatrix(size_t rows, size_t cols, uint64_t seed,
             uint32_t density_pct = 30)
{
    Xoshiro256StarStar rng(seed);
    BitColumnMatrix m(rows, cols);
    for (size_t c = 0; c < cols; ++c)
        for (size_t r = 0; r < rows; ++r)
            if (rng() % 100 < density_pct)
                m.setBit(r, c);
    return m;
}

ApolloModel
randomModel(size_t q, uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    ApolloModel model;
    model.intercept = 0.37;
    for (size_t i = 0; i < q; ++i) {
        model.proxyIds.push_back(static_cast<uint32_t>(i));
        // Mixed-sign weights with some exact zeros (pruned proxies).
        const double u =
            static_cast<double>(rng() % 2000) / 1000.0 - 1.0;
        model.weights.push_back(
            i % 7 == 3 ? 0.0f : static_cast<float>(u));
    }
    return model;
}

std::vector<float>
streamToVector(const StreamingInference &engine,
               const BitColumnMatrix &Xq, const StreamConfig &config)
{
    MatrixChunkReader reader(Xq);
    VectorSink sink;
    StatusOr<StreamStats> stats = engine.run(reader, sink, config);
    EXPECT_TRUE(stats.ok()) << stats.status().toString();
    return sink.takeValues();
}

TEST(SliceRows, MatchesPerBitCopy)
{
    const BitColumnMatrix m = randomMatrix(517, 9, 0x51);
    for (const auto &[first, n] :
         {std::pair<size_t, size_t>{0, 517}, {0, 64}, {1, 64},
          {63, 130}, {64, 64}, {100, 1}, {511, 6}, {517, 0}}) {
        const BitColumnMatrix s = m.sliceRows(first, n);
        ASSERT_EQ(s.rows(), n);
        ASSERT_EQ(s.cols(), m.cols());
        for (size_t c = 0; c < m.cols(); ++c) {
            for (size_t r = 0; r < n; ++r)
                ASSERT_EQ(s.get(r, c), m.get(first + r, c))
                    << "first=" << first << " r=" << r << " c=" << c;
            // Zero-tail contract for the packed kernels.
            if (n > 0 && (n & 63) != 0) {
                const uint64_t *w = s.colWords(c);
                ASSERT_EQ(w[s.wordsPerCol() - 1] >> (n & 63), 0u);
            }
        }
    }
}

TEST(StreamInfer, PerCycleBitIdenticalAcrossChunkSizes)
{
    const size_t n = 1000, q = 70;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0xA1);
    const ApolloModel model = randomModel(q, 0xB2);
    const std::vector<float> batch = model.predictProxies(Xq);

    const StreamingInference engine(model);
    for (const size_t chunk : {size_t{1}, size_t{3}, size_t{64},
                               size_t{127}, size_t{1000}, n + 57}) {
        const std::vector<float> streamed = streamToVector(
            engine, Xq, StreamConfig().withChunkCycles(chunk));
        ASSERT_EQ(streamed.size(), batch.size());
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(streamed[i], batch[i])
                << "chunk=" << chunk << " i=" << i;
    }
}

TEST(StreamInfer, WindowedBitIdenticalForPaperTaus)
{
    const size_t n = 1536, q = 48;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0xC3);
    const ApolloModel model = randomModel(q, 0xD4);
    const MultiCycleModel mc{model, 1};
    const StreamingInference engine(model);

    for (const uint32_t T : {2u, 8u, 128u}) {
        const SegmentInfo whole{"", 0, n};
        const std::vector<float> batch =
            mc.predictWindowsProxies(
                  Xq, T, std::span<const SegmentInfo>(&whole, 1))
                .value();
        // 127 is coprime with every T, so windows straddle chunks.
        const std::vector<float> streamed = streamToVector(
            engine, Xq,
            StreamConfig().withChunkCycles(127).withWindowT(T));
        ASSERT_EQ(streamed.size(), batch.size()) << "T=" << T;
        for (size_t i = 0; i < batch.size(); ++i)
            ASSERT_EQ(streamed[i], batch[i]) << "T=" << T;
    }
}

TEST(StreamInfer, QuantizedBitIdenticalToOpmSimulator)
{
    const size_t n = 900, q = 55;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0xE5);
    const QuantizedModel qm = quantizeModel(randomModel(q, 0xF6), 10);

    for (const uint32_t T : {1u, 4u, 32u}) {
        OpmSimulator sim(qm, T);
        const std::vector<float> batch = sim.simulate(Xq);
        const StreamingInference engine(qm, T);
        for (const size_t chunk : {size_t{1}, size_t{77}, size_t{1000}}) {
            const std::vector<float> streamed = streamToVector(
                engine, Xq, StreamConfig().withChunkCycles(chunk));
            ASSERT_EQ(streamed.size(), batch.size());
            for (size_t i = 0; i < batch.size(); ++i)
                ASSERT_EQ(streamed[i], batch[i])
                    << "T=" << T << " chunk=" << chunk;
        }
    }
}

TEST(StreamInfer, DeterministicAcrossChunksInFlight)
{
    const size_t n = 2048, q = 33;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0x17);
    const StreamingInference engine(randomModel(q, 0x28));

    const std::vector<float> one = streamToVector(
        engine, Xq,
        StreamConfig().withChunkCycles(100).withChunksInFlight(1));
    for (const size_t k : {size_t{2}, size_t{5}, size_t{16}}) {
        const std::vector<float> many = streamToVector(
            engine, Xq,
            StreamConfig().withChunkCycles(100).withChunksInFlight(k));
        ASSERT_EQ(many, one) << "chunksInFlight=" << k;
    }
}

TEST(StreamInfer, StatsAccounting)
{
    const size_t n = 500, q = 20;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0x39);
    const StreamingInference engine(randomModel(q, 0x4A));

    MatrixChunkReader reader(Xq);
    VectorSink sink;
    StatusOr<StreamStats> stats = engine.run(
        reader, sink, StreamConfig().withChunkCycles(128));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->cycles, n);
    EXPECT_EQ(stats->outputs, n);
    EXPECT_EQ(stats->chunks, (n + 127) / 128);
    EXPECT_GT(stats->peakBufferBytes, 0u);
    EXPECT_FALSE(stats->cancelled);
}

TEST(StreamInfer, ConfigAndArityErrors)
{
    const BitColumnMatrix Xq = randomMatrix(64, 8, 0x5B);
    const StreamingInference engine(randomModel(8, 0x6C));
    MatrixChunkReader reader(Xq);
    VectorSink sink;

    StatusOr<StreamStats> bad_chunk =
        engine.run(reader, sink, StreamConfig().withChunkCycles(0));
    ASSERT_FALSE(bad_chunk.ok());
    EXPECT_EQ(bad_chunk.status().code(), StatusCode::InvalidArgument);

    StatusOr<StreamStats> bad_T =
        engine.run(reader, sink, StreamConfig().withWindowT(3));
    ASSERT_FALSE(bad_T.ok());
    EXPECT_EQ(bad_T.status().code(), StatusCode::InvalidArgument);

    const StreamingInference other(randomModel(9, 0x7D));
    MatrixChunkReader reader2(Xq);
    StatusOr<StreamStats> arity = other.run(reader2, sink, {});
    ASSERT_FALSE(arity.ok());
    EXPECT_EQ(arity.status().code(), StatusCode::InvalidArgument);
}

TEST(StreamSinks, CallbackCancelStopsGracefully)
{
    const size_t n = 4096, q = 10;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0x8E);
    const StreamingInference engine(randomModel(q, 0x9F));

    size_t seen = 0;
    CallbackSink sink([&](uint64_t, std::span<const float> values) {
        seen += values.size();
        if (seen >= 512)
            return Status::cancelled("enough");
        return Status::okStatus();
    });
    MatrixChunkReader reader(Xq);
    StatusOr<StreamStats> stats =
        engine.run(reader, sink, StreamConfig().withChunkCycles(256));
    ASSERT_TRUE(stats.ok()) << stats.status().toString();
    EXPECT_TRUE(stats->cancelled);
    EXPECT_LT(stats->cycles, n);
    EXPECT_GE(seen, 512u);
}

TEST(StreamSinks, RingBufferKeepsLatest)
{
    const size_t n = 700, q = 12;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0xAB);
    const ApolloModel model = randomModel(q, 0xBC);
    const std::vector<float> batch = model.predictProxies(Xq);

    RingBufferSink sink(100);
    MatrixChunkReader reader(Xq);
    StatusOr<StreamStats> stats = StreamingInference(model).run(
        reader, sink, StreamConfig().withChunkCycles(64));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(sink.totalSeen(), n);
    EXPECT_EQ(sink.firstIndex(), n - 100);
    const std::vector<float> kept = sink.latest();
    ASSERT_EQ(kept.size(), 100u);
    for (size_t i = 0; i < kept.size(); ++i)
        EXPECT_EQ(kept[i], batch[n - 100 + i]);
}

TEST(StreamSinks, CsvWritesIndexedRows)
{
    const BitColumnMatrix Xq = randomMatrix(10, 5, 0xCD);
    std::ostringstream os;
    CsvPowerSink sink(os);
    MatrixChunkReader reader(Xq);
    StatusOr<StreamStats> stats = StreamingInference(
        randomModel(5, 0xDE)).run(reader, sink,
                                  StreamConfig().withChunkCycles(4));
    ASSERT_TRUE(stats.ok());
    std::istringstream lines(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "index,power");
    size_t count = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.find(std::to_string(count) + ","), 0u);
        count++;
    }
    EXPECT_EQ(count, 10u);
}

TEST(ProxyTraceFormat, RoundTripAndStreamedInference)
{
    const size_t n = 1234, q = 31;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0xEF);
    const std::string path = "stream_roundtrip.aptr";
    ASSERT_TRUE(saveProxyTraceFile(path, Xq, 200).ok());

    ProxyTraceFileReader reader(path);
    ProxyChunk chunk;
    BitColumnMatrix rebuilt(n, q);
    size_t rows = 0;
    for (;;) {
        StatusOr<size_t> got = reader.next(97, chunk);
        ASSERT_TRUE(got.ok()) << got.status().toString();
        if (*got == 0)
            break;
        ASSERT_EQ(chunk.firstCycle, rows);
        for (size_t c = 0; c < q; ++c)
            for (size_t r = 0; r < *got; ++r)
                if (chunk.bits.get(r, c))
                    rebuilt.setBit(rows + r, c);
        rows += *got;
    }
    ASSERT_EQ(rows, n);
    ASSERT_EQ(reader.totalCycles(), n);
    for (size_t c = 0; c < q; ++c)
        for (size_t r = 0; r < n; ++r)
            ASSERT_EQ(rebuilt.get(r, c), Xq.get(r, c));

    // Inference straight off the file matches the in-memory batch.
    const ApolloModel model = randomModel(q, 0xF0);
    ProxyTraceFileReader reader2(path);
    VectorSink sink;
    StatusOr<StreamStats> stats = StreamingInference(model).run(
        reader2, sink, StreamConfig().withChunkCycles(333));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(sink.values(), model.predictProxies(Xq));
    std::remove(path.c_str());
}

TEST(ProxyTraceFormat, RejectsMalformedInput)
{
    ProxyChunk chunk;

    std::istringstream bad_magic("NOPE....");
    ProxyTraceReader r1(bad_magic);
    StatusOr<size_t> got = r1.next(10, chunk);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::ParseError);

    // Valid header+block, then cut the stream mid-block.
    std::ostringstream os;
    {
        ProxyTraceWriter writer(os, 3);
        ASSERT_TRUE(writer.append(randomMatrix(100, 3, 0x11)).ok());
        ASSERT_TRUE(writer.finish().ok());
    }
    const std::string full = os.str();
    std::istringstream truncated(full.substr(0, full.size() / 2));
    ProxyTraceReader r2(truncated);
    Status err = Status::okStatus();
    for (;;) {
        StatusOr<size_t> step = r2.next(64, chunk);
        if (!step.ok()) {
            err = step.status();
            break;
        }
        ASSERT_NE(*step, 0u) << "truncated stream parsed to EOF";
    }
    EXPECT_EQ(err.code(), StatusCode::IoError);

    // Writer rejects arity mismatches.
    std::ostringstream os2;
    ProxyTraceWriter writer(os2, 4);
    EXPECT_EQ(writer.append(randomMatrix(8, 5, 0x22)).code(),
              StatusCode::InvalidArgument);
}

TEST(VcdStreaming, MatchesBatchParser)
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    std::vector<uint32_t> signals;
    for (uint32_t s = 0; s < 17; ++s)
        signals.push_back(s * 3);

    const size_t cycles = 400;
    Xoshiro256StarStar rng(0x33);
    std::ostringstream os;
    VcdWriter writer(os, netlist, signals);
    writer.writeHeader();
    for (size_t i = 0; i < cycles; ++i) {
        BitVector toggled(signals.size());
        for (size_t k = 0; k < signals.size(); ++k)
            if (rng() % 100 < 25)
                toggled.set(k, true);
        writer.writeCycle(toggled);
    }
    writer.finish();
    const std::string vcd = os.str();

    std::istringstream batch_is(vcd);
    const VcdTrace batch = parseVcd(batch_is);

    std::istringstream stream_is(vcd);
    VcdChunkReader reader(stream_is);
    ProxyChunk chunk;
    size_t rows = 0;
    BitColumnMatrix rebuilt;
    for (;;) {
        StatusOr<size_t> got = reader.next(59, chunk);
        ASSERT_TRUE(got.ok()) << got.status().toString();
        if (*got == 0)
            break;
        if (rebuilt.rows() == 0)
            rebuilt.reset(cycles, reader.proxyCount());
        ASSERT_EQ(chunk.firstCycle, rows);
        for (size_t c = 0; c < chunk.proxies(); ++c)
            for (size_t r = 0; r < *got; ++r)
                if (chunk.bits.get(r, c))
                    rebuilt.setBit(rows + r, c);
        rows += *got;
    }
    ASSERT_EQ(reader.names(), batch.names);
    ASSERT_EQ(rows, batch.toggles.rows());
    for (size_t c = 0; c < batch.toggles.cols(); ++c)
        for (size_t r = 0; r < batch.toggles.rows(); ++r)
            ASSERT_EQ(rebuilt.get(r, c), batch.toggles.get(r, c))
                << "r=" << r << " c=" << c;
}

TEST(VcdStreaming, RejectsMalformedInput)
{
    ProxyChunk chunk;

    std::istringstream no_vars("$enddefinitions $end\n#0\n");
    VcdChunkReader r1(no_vars);
    StatusOr<size_t> got = r1.next(10, chunk);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::ParseError);

    const std::string header = "$var wire 1 ! sig_a $end\n"
                               "$enddefinitions $end\n";
    std::istringstream unknown_id(header + "#0\n1\" \n#5\n");
    VcdChunkReader r2(unknown_id);
    got = r2.next(10, chunk);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::ParseError);

    std::istringstream backwards(header + "#4\n1!\n#2\n0!\n");
    VcdChunkReader r3(backwards);
    got = r3.next(10, chunk);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::ParseError);
}

TEST(LoaderStatus, DatasetTryVariants)
{
    StatusOr<Dataset> missing = tryLoadDatasetFile("no/such/file.apds");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::IoError);

    std::istringstream junk("not a dataset at all");
    StatusOr<Dataset> parse = tryLoadDataset(junk);
    ASSERT_FALSE(parse.ok());
    EXPECT_EQ(parse.status().code(), StatusCode::ParseError);

    // The throwing wrappers stay FatalError-compatible.
    std::istringstream junk2("not a dataset at all");
    EXPECT_THROW(loadDataset(junk2), FatalError);

    // Round-trip through the try* path.
    Dataset ds;
    ds.X = randomMatrix(96, 6, 0x44);
    ds.y.assign(96, 1.5f);
    ds.segments.push_back({"seg", 0, 96});
    std::stringstream buf;
    ASSERT_TRUE(trySaveDataset(buf, ds).ok());
    StatusOr<Dataset> back = tryLoadDataset(buf);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back->cycles(), 96u);
    EXPECT_EQ(back->segments.size(), 1u);

    std::istringstream vcd_junk("no vars here");
    StatusOr<VcdTrace> vcd = tryParseVcd(vcd_junk);
    ASSERT_FALSE(vcd.ok());
    EXPECT_EQ(vcd.status().code(), StatusCode::ParseError);
}

TEST(PublicApi, InferenceFacadeMatchesSubstrate)
{
    const size_t n = 600, q = 24;
    const BitColumnMatrix Xq = randomMatrix(n, q, 0x55);
    const ApolloModel model = randomModel(q, 0x66);

    const Inference inf(model);
    EXPECT_FALSE(inf.quantized());
    EXPECT_EQ(inf.predict(Xq), model.predictProxies(Xq));

    const SegmentInfo whole{"", 0, n};
    const MultiCycleModel mc{model, 1};
    EXPECT_EQ(inf.predictWindows(Xq, 8),
              mc.predictWindowsProxies(
                    Xq, 8, std::span<const SegmentInfo>(&whole, 1))
                  .value());

    MatrixChunkReader reader(Xq);
    VectorSink sink;
    StatusOr<StreamStats> stats = inf.stream(reader, sink);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(sink.values(), model.predictProxies(Xq));

    const QuantizedModel qm = quantizeModel(model, 10);
    const Inference opm(qm, 4);
    EXPECT_TRUE(opm.quantized());
    OpmSimulator sim(qm, 4);
    EXPECT_EQ(opm.predict(Xq), sim.simulate(Xq));
}

TEST(PublicApi, TrainOptionsValidateEagerly)
{
    EXPECT_THROW(TrainOptions().targetQ(0), FatalError);
    EXPECT_THROW(TrainOptions().gamma(1.0), FatalError);
    EXPECT_THROW(TrainOptions().relaxRidge(-1.0), FatalError);

    const TrainOptions opts = TrainOptions()
                                  .targetQ(40)
                                  .gamma(6.0)
                                  .nonneg(true)
                                  .relaxRidge(1e-2)
                                  .selectionCycleCap(5000)
                                  .screen(false)
                                  .parallel(false);
    EXPECT_EQ(opts.config().selection.targetQ, 40u);
    EXPECT_EQ(opts.config().selection.gamma, 6.0);
    EXPECT_TRUE(opts.config().selection.nonneg);
    EXPECT_TRUE(opts.config().relaxNonneg);
    EXPECT_EQ(opts.config().relaxRidge, 1e-2);
    EXPECT_EQ(opts.config().selectionCycleCap, 5000u);
    EXPECT_FALSE(opts.config().selection.screen);
    EXPECT_FALSE(opts.config().selection.parallel);
}

TEST(EmulatorFlow, StreamingBackboneMatchesBatchTrace)
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    ApolloModel model;
    Xoshiro256StarStar rng(0x77);
    for (uint32_t s = 0; s < netlist.signalCount(); s += 5) {
        model.proxyIds.push_back(s);
        model.weights.push_back(
            static_cast<float>(rng() % 1000) / 1000.0f);
    }
    model.intercept = 0.25;

    const Program prog = makeLongWorkload("flowcheck", 3000);
    DesignTimeFlows flows(netlist);
    const FlowReport streamed = flows.runEmulatorFlow(prog, 2500, model);

    // Reference: materialize the proxy trace, batch-predict.
    DatasetBuilder builder(netlist);
    builder.addProgram(prog, 2500);
    const BitColumnMatrix proxies = DatasetBuilder::traceProxies(
        builder.engine(), builder.frames(), model.proxyIds,
        builder.segmentBeginTable());
    EXPECT_EQ(streamed.power, model.predictProxies(proxies));
    EXPECT_EQ(streamed.cycles, builder.frames().size());

    // Sink-based variant: report carries no power, sink gets it all.
    VectorSink sink;
    const FlowReport sunk = flows.runEmulatorFlowStreaming(
        prog, 2500, model, sink, StreamConfig().withChunkCycles(512));
    EXPECT_TRUE(sunk.power.empty());
    EXPECT_EQ(sink.values(), streamed.power);
}

} // namespace
} // namespace apollo
