/**
 * @file
 * Parameterized property sweeps across modules: cache geometries,
 * quantization bit widths, OPM window sizes, and end-to-end
 * determinism invariants the flows rely on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/apollo_trainer.hh"
#include "gen/ga_generator.hh"
#include "ml/metrics.hh"
#include "opm/opm_simulator.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"
#include "uarch/cache.hh"

namespace apollo {
namespace {

//
// Cache geometry properties.
//

class CacheGeometryProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{};

TEST_P(CacheGeometryProperty, FillThenHitAndCapacity)
{
    const auto [size_kb, ways] = GetParam();
    CacheParams params{size_kb * 1024, ways, 64, 2, 4, 60};
    CacheModel cache(params);

    const uint32_t lines = size_kb * 1024 / 64;
    // Fill the whole capacity sequentially.
    uint64_t now = 0;
    for (uint32_t l = 0; l < lines; ++l) {
        const auto res = cache.access(static_cast<uint64_t>(l) * 64,
                                      false, now);
        now = res.readyCycle + 1;
    }
    // Everything fits: a second pass must be all hits.
    const uint64_t misses_after_fill = cache.misses();
    for (uint32_t l = 0; l < lines; ++l) {
        const auto res = cache.access(static_cast<uint64_t>(l) * 64,
                                      false, now);
        EXPECT_TRUE(res.hit) << "line " << l;
        now = res.readyCycle + 1;
    }
    EXPECT_EQ(cache.misses(), misses_after_fill);

    // Touch twice the capacity: sequential sweep + LRU leaves the
    // second pass with misses again (thrash property).
    for (uint32_t l = 0; l < 2 * lines; ++l) {
        const auto res = cache.access(static_cast<uint64_t>(l) * 64,
                                      false, now);
        now = res.readyCycle + 1;
    }
    const uint64_t before = cache.misses();
    for (uint32_t l = 0; l < lines; ++l) {
        const auto res = cache.access(static_cast<uint64_t>(l) * 64,
                                      false, now);
        now = res.readyCycle + 1;
    }
    EXPECT_GT(cache.misses(), before);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryProperty,
    ::testing::Combine(::testing::Values(4u, 16u, 64u),
                       ::testing::Values(1u, 2u, 8u)));

//
// Quantization properties over bit widths.
//

struct QuantFixtureData
{
    ApolloModel model;
    BitColumnMatrix proxies;
    std::vector<float> labels;

    QuantFixtureData()
    {
        const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
        DatasetBuilder builder(nl);
        Xoshiro256StarStar rng(0x9a7);
        for (int i = 0; i < 14; ++i)
            builder.addProgram(
                Program::makeLoop("p" + std::to_string(i),
                                  GaGenerator::randomBody(rng, 6, 22),
                                  4000, rng()),
                250);
        const Dataset train = builder.build();
        ApolloTrainConfig cfg;
        cfg.selection.targetQ = 30;
        model = trainApollo(train, cfg, "tiny").model;
        proxies = train.X.selectColumns(model.proxyIds);
        labels = train.y;
    }
};

const QuantFixtureData &
quantFixture()
{
    static QuantFixtureData data;
    return data;
}

class QuantizationProperty : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(QuantizationProperty, WeightsBoundedAndHalfStepAccurate)
{
    const uint32_t bits = GetParam();
    const auto &fx = quantFixture();
    const QuantizedModel qm = quantizeModel(fx.model, bits);
    const auto limit = (1 << (bits - 1)) - 1;
    for (size_t q = 0; q < qm.qweights.size(); ++q) {
        EXPECT_LE(std::abs(qm.qweights[q]), limit);
        EXPECT_NEAR(qm.qweights[q] * qm.scale, fx.model.weights[q],
                    0.51 * qm.scale);
    }
}

TEST_P(QuantizationProperty, BitTrueOpmMatchesDequantizedModel)
{
    const uint32_t bits = GetParam();
    const auto &fx = quantFixture();
    const QuantizedModel qm = quantizeModel(fx.model, bits);
    OpmSimulator opm(qm, 1);
    const auto hw = opm.simulate(fx.proxies);
    const auto sw = qm.toFloatModel().predictProxies(fx.proxies);
    ASSERT_EQ(hw.size(), sw.size());
    for (size_t i = 0; i < hw.size(); i += 7)
        ASSERT_NEAR(hw[i], sw[i], 1e-3 + 1e-4 * std::abs(sw[i]));
}

INSTANTIATE_TEST_SUITE_P(BitWidths, QuantizationProperty,
                         ::testing::Values(4u, 6u, 8u, 10u, 12u, 16u));

//
// OPM window-size properties.
//

class OpmWindowProperty : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(OpmWindowProperty, WindowMeanWithinOneLsbOfCycleMean)
{
    const uint32_t window = GetParam();
    const auto &fx = quantFixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);

    OpmSimulator per_cycle(qm, 1);
    const auto cycles = per_cycle.simulate(fx.proxies);
    OpmSimulator windowed(qm, window);
    const auto windows = windowed.simulate(fx.proxies);

    ASSERT_EQ(windows.size(), cycles.size() / window);
    for (size_t w = 0; w < windows.size(); ++w) {
        double acc = 0.0;
        for (uint32_t t = 0; t < window; ++t)
            acc += cycles[w * window + t];
        // Truncating division drops at most one LSB (scale units).
        EXPECT_LE(windows[w], acc / window + 1e-6);
        EXPECT_GE(windows[w], acc / window - qm.scale * 1.01);
    }
}

TEST_P(OpmWindowProperty, AccumulatorWidthCoversWorstCase)
{
    const uint32_t window = GetParam();
    const auto &fx = quantFixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);
    OpmSimulator opm(qm, window);
    BitColumnMatrix all_ones(window * 2, qm.proxyCount());
    for (size_t i = 0; i < all_ones.rows(); ++i)
        for (size_t q = 0; q < qm.proxyCount(); ++q)
            all_ones.setBit(i, q);
    EXPECT_NO_THROW(opm.simulate(all_ones));
}

INSTANTIATE_TEST_SUITE_P(Windows, OpmWindowProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u,
                                           64u, 128u));

//
// End-to-end determinism: two independent pipeline runs produce
// bit-identical datasets and identical trained models.
//

TEST(Determinism, DatasetsAndModelsAreBitReproducible)
{
    auto build_once = [] {
        const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
        DatasetBuilder builder(nl);
        Xoshiro256StarStar rng(0xdede);
        for (int i = 0; i < 8; ++i)
            builder.addProgram(
                Program::makeLoop("p" + std::to_string(i),
                                  GaGenerator::randomBody(rng, 6, 20),
                                  3000, rng()),
                200);
        const Dataset ds = builder.build();
        ApolloTrainConfig cfg;
        cfg.selection.targetQ = 15;
        const ApolloModel model = trainApollo(ds, cfg, "d").model;
        return std::make_pair(ds.y, model);
    };
    const auto [y1, m1] = build_once();
    const auto [y2, m2] = build_once();
    ASSERT_EQ(y1.size(), y2.size());
    for (size_t i = 0; i < y1.size(); ++i)
        ASSERT_EQ(y1[i], y2[i]) << "label divergence at " << i;
    ASSERT_EQ(m1.proxyIds, m2.proxyIds);
    for (size_t q = 0; q < m1.weights.size(); ++q)
        ASSERT_EQ(m1.weights[q], m2.weights[q]);
    ASSERT_EQ(m1.intercept, m2.intercept);
}

//
// Non-negativity constraint property across penalty families.
//

class NonnegProperty : public ::testing::TestWithParam<int>
{};

TEST_P(NonnegProperty, ConstrainedFitsHaveNoNegativeWeights)
{
    const auto kind = static_cast<PenaltyKind>(GetParam());
    const size_t n = 1200;
    const size_t m = 40;
    BitColumnMatrix X(n, m);
    std::vector<float> y(n, 0.5f);
    Xoshiro256StarStar rng(0x22);
    for (size_t c = 0; c < m; ++c)
        for (size_t r = 0; r < n; ++r)
            if (rng.nextDouble() < 0.2) {
                X.setBit(r, c);
                // Mix of positive and (spurious) negative influence.
                y[r] += (c % 5 == 0) ? -0.2f : 0.4f;
            }

    BitFeatureView view(X);
    CdSolver solver(view, y);
    CdConfig cfg;
    cfg.penalty.kind = kind;
    cfg.penalty.lambda = kind == PenaltyKind::Ridge
                             ? 0.0
                             : solver.lambdaMax() * 0.05;
    cfg.penalty.lambda2 = kind == PenaltyKind::Ridge ? 1e-3 : 0.0;
    cfg.penalty.nonneg = true;
    const CdResult fit = solver.fit(cfg);
    for (float w : fit.w)
        EXPECT_GE(w, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, NonnegProperty,
    ::testing::Values(static_cast<int>(PenaltyKind::Ridge),
                      static_cast<int>(PenaltyKind::Lasso),
                      static_cast<int>(PenaltyKind::Mcp)));

//
// GA operators respect configuration bounds across configs.
//

class GaBoundsProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{};

TEST_P(GaBoundsProperty, EvolvedBodiesStayWithinLengthBounds)
{
    const auto [min_len, max_len] = GetParam();
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(nl);
    GaConfig cfg;
    cfg.populationSize = 10;
    cfg.generations = 4;
    cfg.bodyMinLen = min_len;
    cfg.bodyMaxLen = max_len;
    cfg.fitnessCycles = 150;
    cfg.fitnessSignalStride = 8;
    GaGenerator ga(builder, cfg);
    ga.run();
    for (const GaIndividual &ind : ga.all()) {
        EXPECT_GE(ind.body.size(), min_len);
        EXPECT_LE(ind.body.size(), max_len);
        // Reserved registers are never clobbered by generated code
        // (x30 base, x31 counter).
        for (const Instruction &inst : ind.body) {
            if (inst.execClass() == ExecClass::Alu ||
                inst.execClass() == ExecClass::MulDiv) {
                EXPECT_NE(inst.rd, 30);
                EXPECT_NE(inst.rd, 31);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, GaBoundsProperty,
    ::testing::Values(std::tuple{4u, 10u}, std::tuple{6u, 26u},
                      std::tuple{12u, 16u}));

//
// OPM handles signed (unconstrained-relaxation) weights.
//

TEST(OpmSigned, NegativeWeightsRoundTripThroughTheSimulator)
{
    ApolloModel model;
    model.proxyIds = {0, 1, 2, 3};
    model.weights = {0.5f, -0.3f, 0.8f, -0.05f};
    model.intercept = 1.0;
    const QuantizedModel qm = quantizeModel(model, 10);
    EXPECT_LT(qm.qweights[1], 0);

    BitColumnMatrix bits(16, 4);
    Xoshiro256StarStar rng(0x5e);
    for (size_t i = 0; i < 16; ++i)
        for (size_t q = 0; q < 4; ++q)
            if (rng.nextDouble() < 0.5)
                bits.setBit(i, q);
    OpmSimulator opm(qm, 1);
    const auto hw = opm.simulate(bits);
    const auto sw = qm.toFloatModel().predictProxies(bits);
    for (size_t i = 0; i < hw.size(); ++i)
        EXPECT_NEAR(hw[i], sw[i], 1e-4);
}

} // namespace
} // namespace apollo
