/**
 * @file
 * End-to-end integration tests: the full APOLLO pipeline (GA training
 * data -> dataset -> MCP selection -> relaxation -> OPM quantization ->
 * bit-true OPM) on the tiny design, plus cross-module consistency
 * checks the paper's flows rely on.
 */

#include <gtest/gtest.h>

#include "core/apollo_trainer.hh"
#include "core/baselines.hh"
#include "core/multi_cycle.hh"
#include "gen/ga_generator.hh"
#include "gen/test_suite.hh"
#include "ml/metrics.hh"
#include "opm/opm_hardware.hh"
#include "opm/opm_simulator.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"

namespace apollo {
namespace {

/** The full tiny-design pipeline, built once for the suite. */
struct PipelineData
{
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    Dataset train;
    Dataset test;
    ApolloTrainResult apollo;

    PipelineData()
    {
        // GA training data (small budget).
        DatasetBuilder fitness(netlist);
        GaConfig ga_cfg;
        ga_cfg.populationSize = 14;
        ga_cfg.generations = 6;
        ga_cfg.fitnessCycles = 250;
        GaGenerator ga(fitness, ga_cfg);
        ga.run();

        DatasetBuilder tb(netlist);
        int idx = 0;
        for (const GaIndividual &ind : ga.selectTrainingSet(32)) {
            tb.addProgram(GaGenerator::toProgram(
                              ind, "ga" + std::to_string(idx++), 4000),
                          300);
        }
        train = tb.build();

        // Designer test suite at Table-4 budgets.
        DatasetBuilder eb(netlist);
        for (const TestBenchmark &bench : designerTestSuite())
            eb.addProgram(bench.program, bench.cycles, bench.throttle);
        test = eb.build();

        ApolloTrainConfig cfg;
        cfg.selection.targetQ = 40;
        apollo = trainApollo(train, cfg, netlist.name());
    }
};

const PipelineData &
pipeline()
{
    static PipelineData data;
    return data;
}

TEST(Integration, ApolloReachesPaperClassAccuracy)
{
    const auto &px = pipeline();
    const auto pred = px.apollo.model.predictFull(px.test.X);
    const double r2 = r2Score(px.test.y, pred);
    const double e = nrmse(px.test.y, pred);
    EXPECT_GT(r2, 0.93) << "paper: R2 > 0.94 on both designs";
    EXPECT_LT(e, 0.15);
    // Unbiased on average (§7.3: 0.6% mean gap on N1).
    EXPECT_NEAR(mean(pred), px.test.meanLabel(),
                0.03 * px.test.meanLabel());
}

TEST(Integration, ApolloBeatsLassoAtSameQ)
{
    const auto &px = pipeline();
    const BaselineResult lasso =
        trainLassoBaseline(px.train, px.test, 40);
    const auto apollo_pred = px.apollo.model.predictFull(px.test.X);
    EXPECT_LT(nrmse(px.test.y, apollo_pred),
              nrmse(px.test.y, lasso.testPred))
        << "Fig. 10: APOLLO < Lasso NRMSE at equal Q";
}

TEST(Integration, PerBenchmarkNmaeBounded)
{
    // Fig. 9(b): NMAE below ~10% for every designer benchmark.
    const auto &px = pipeline();
    const auto pred = px.apollo.model.predictFull(px.test.X);
    for (const SegmentInfo &seg : px.test.segments) {
        std::vector<float> y(px.test.y.begin() + seg.begin,
                             px.test.y.begin() + seg.end);
        std::vector<float> p(pred.begin() + seg.begin,
                             pred.begin() + seg.end);
        EXPECT_LT(nmae(y, p), 0.15) << seg.name;
    }
}

TEST(Integration, QuantizedOpmEndToEnd)
{
    const auto &px = pipeline();
    const QuantizedModel qm = quantizeModel(px.apollo.model, 10);
    const BitColumnMatrix proxies =
        px.test.X.selectColumns(px.apollo.model.proxyIds);
    OpmSimulator opm(qm, 1);
    const auto hw = opm.simulate(proxies);
    EXPECT_GT(r2Score(px.test.y, hw), 0.92);

    const OpmHardwareReport rep =
        analyzeOpmHardware(px.netlist, qm, 32, 0.15);
    EXPECT_GT(rep.areaOverhead, 0.0);
    // The tiny design's nominal core is small, so the bound is loose;
    // the N1-scale bench checks the paper's 0.2%/0.9% numbers.
    EXPECT_LT(rep.areaOverhead, 0.2);
}

TEST(Integration, MultiCycleWindowErrorsShrinkWithT)
{
    // Averaging windows smooths per-cycle error: NRMSE at T=32 must be
    // below the per-cycle NRMSE.
    const auto &px = pipeline();
    const auto pred = px.apollo.model.predictFull(px.test.X);
    const double e1 = nrmse(px.test.y, pred);

    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 40;
    const MultiCycleModel mc =
        trainMultiCycle(px.train, 8, cfg, px.netlist.name());
    const auto labels =
        windowAverageLabels(px.test.y, 32, px.test.segments).value();
    const auto wpred =
        mc.predictWindowsFull(px.test.X, 32, px.test.segments).value();
    EXPECT_LT(nrmse(labels, wpred), e1);
}

TEST(Integration, ThrottledBenchmarksDrawLessPowerThanVirus)
{
    // Table 4 sanity: the three throttled runs of the maxpwr body must
    // average below the unthrottled maxpwr_cpu benchmark.
    const auto &px = pipeline();
    auto segment_mean = [&](const std::string &name) {
        for (const SegmentInfo &seg : px.test.segments) {
            if (seg.name == name) {
                double acc = 0.0;
                for (size_t i = seg.begin; i < seg.end; ++i)
                    acc += px.test.y[i];
                return acc / seg.cycles();
            }
        }
        ADD_FAILURE() << "segment not found: " << name;
        return 0.0;
    };
    const double virus = segment_mean("maxpwr_cpu");
    EXPECT_LT(segment_mean("throttling_1"), virus);
    EXPECT_LT(segment_mean("throttling_2"), virus);
    EXPECT_LT(segment_mean("throttling_3"), virus);
}

TEST(Integration, ProxyDistributionTouchesMultipleUnits)
{
    // Fig. 15(a): proxies spread over the power-relevant units and
    // include gated clocks.
    const auto &px = pipeline();
    size_t gclk = 0;
    std::set<UnitId> units;
    for (uint32_t id : px.apollo.model.proxyIds) {
        const Signal &sig = px.netlist.signal(id);
        units.insert(sig.unit);
        if (sig.kind == SignalKind::GatedClock)
            gclk++;
    }
    EXPECT_GE(units.size(), 5u);
    EXPECT_GE(gclk, 2u) << "gated clocks are major power contributors";
}

} // namespace
} // namespace apollo
