/**
 * @file
 * Observability subsystem tests (docs/INTERNALS.md §10): registry
 * semantics (exact concurrent counting, histogram bucket edges,
 * deterministic snapshots), trace-span JSON structure, the runtime
 * enable gate, and an end-to-end check that one tiny-design pipeline
 * run populates the documented `apollo.<subsystem>.*` metric names
 * across every instrumented subsystem.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apollo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/thread_pool.hh"

namespace apollo {
namespace {

/**
 * Minimal structural JSON validation: braces/brackets balance outside
 * string literals and every string closes. Enough to catch truncated
 * or mis-quoted output without a JSON library dependency.
 */
bool
balancedJson(const std::string &s)
{
    std::vector<char> stack;
    bool in_str = false;
    bool esc = false;
    for (char ch : s) {
        if (in_str) {
            if (esc)
                esc = false;
            else if (ch == '\\')
                esc = true;
            else if (ch == '"')
                in_str = false;
            continue;
        }
        if (ch == '"') {
            in_str = true;
        } else if (ch == '{' || ch == '[') {
            stack.push_back(ch);
        } else if (ch == '}') {
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
        } else if (ch == ']') {
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
        }
    }
    return !in_str && stack.empty();
}

size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        n++;
    return n;
}

TEST(MetricRegistry, ConcurrentCounterIncrementsSumExactly)
{
    obs::Counter &c = obs::MetricRegistry::instance().counter(
        "apollo.test.concurrent");
    c.reset();
    constexpr size_t kAdds = 200000;
    parallelFor(kAdds, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            c.add(1);
    });
    EXPECT_EQ(c.value(), kAdds);

    // A second round on the same reference (reset must not invalidate).
    c.reset();
    parallelFor(kAdds, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            c.add(2);
    });
    EXPECT_EQ(c.value(), 2 * kAdds);
}

TEST(MetricRegistry, HistogramBucketBoundaries)
{
    const std::vector<double> bounds = {1.0, 2.0, 5.0};
    obs::Histogram &h = obs::MetricRegistry::instance().histogram(
        "apollo.test.hist_bounds", bounds);
    h.reset();

    // Bucket i counts v <= bounds[i]; boundary values land in the
    // lower bucket, anything past the last bound overflows.
    h.observe(0.5);
    h.observe(1.0);
    h.observe(1.5);
    h.observe(2.0);
    h.observe(3.0);
    h.observe(5.0);
    h.observe(7.0);

    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.bucketCount(0), 2u); // 0.5, 1.0
    EXPECT_EQ(h.bucketCount(1), 2u); // 1.5, 2.0
    EXPECT_EQ(h.bucketCount(2), 2u); // 3.0, 5.0
    EXPECT_EQ(h.bucketCount(3), 1u); // 7.0 (overflow)
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 5.0 + 7.0);
}

TEST(MetricRegistry, SnapshotIsDeterministicWithSortedKeys)
{
    obs::MetricRegistry &reg = obs::MetricRegistry::instance();
    // Register intentionally out of lexicographic order.
    reg.counter("apollo.test.zzz").add(3);
    reg.counter("apollo.test.aaa").add(1);
    reg.gauge("apollo.test.gauge").set(0.25);

    const std::string snap1 = reg.snapshotJson();
    const std::string snap2 = reg.snapshotJson();
    EXPECT_EQ(snap1, snap2) << "snapshot must be deterministic";
    EXPECT_TRUE(balancedJson(snap1)) << snap1;

    const size_t pos_aaa = snap1.find("apollo.test.aaa");
    const size_t pos_zzz = snap1.find("apollo.test.zzz");
    ASSERT_NE(pos_aaa, std::string::npos);
    ASSERT_NE(pos_zzz, std::string::npos);
    EXPECT_LT(pos_aaa, pos_zzz) << "keys must be sorted";
    EXPECT_NE(snap1.find("\"counters\""), std::string::npos);
    EXPECT_NE(snap1.find("\"gauges\""), std::string::npos);
    EXPECT_NE(snap1.find("\"histograms\""), std::string::npos);
}

TEST(MetricRegistry, ScopedTimerObservesSeconds)
{
    obs::Histogram &h = obs::MetricRegistry::instance().histogram(
        "apollo.test.timer_seconds", obs::latencyBounds());
    h.reset();
    {
        obs::ScopedTimer timer(&h);
    }
    {
        obs::ScopedTimer inert(nullptr); // disabled path must be a no-op
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.sum(), 0.0);
}

#if APOLLO_OBS
TEST(MetricRegistry, RuntimeDisableGatesTheMacros)
{
    obs::MetricRegistry &reg = obs::MetricRegistry::instance();
    const bool was_enabled = reg.enabled();
    obs::Counter &c = reg.counter("apollo.test.gated");
    c.reset();

    reg.setEnabled(false);
    APOLLO_COUNT("apollo.test.gated", 5);
    EXPECT_EQ(c.value(), 0u) << "disabled registry must drop updates";

    reg.setEnabled(true);
    APOLLO_COUNT("apollo.test.gated", 5);
    EXPECT_EQ(c.value(), 5u);

    reg.setEnabled(was_enabled);
}
#endif

TEST(TraceCollector, SpansProduceLoadableChromeTraceJson)
{
    obs::TraceCollector &tc = obs::TraceCollector::instance();
    const bool was_enabled = tc.enabled();
    tc.clear();
    tc.setEnabled(true);

    const size_t before = tc.eventCount();
    {
        obs::TraceSpan outer("test.outer");
        obs::TraceSpan inner("test.inner", "unit");
    }
    // Spans from worker threads land in per-thread buffers.
    parallelFor(4, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            obs::TraceSpan span("test.worker");
    });
    EXPECT_EQ(tc.eventCount(), before + 6);

    const std::string json = tc.flushJson();
    tc.setEnabled(was_enabled);

    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"unit\""), std::string::npos);
    // Every event is a complete-span record with the Chrome schema
    // fields; flushJson drained all six.
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"X\""), 6u);
    EXPECT_EQ(countOccurrences(json, "\"ts\": "), 6u);
    EXPECT_EQ(countOccurrences(json, "\"dur\": "), 6u);
    EXPECT_EQ(countOccurrences(json, "\"pid\": "), 6u);
    EXPECT_EQ(countOccurrences(json, "\"tid\": "), 6u);
    EXPECT_EQ(tc.eventCount(), 0u) << "flush drains the buffers";
}

TEST(TraceCollector, DisabledSpansRecordNothing)
{
    obs::TraceCollector &tc = obs::TraceCollector::instance();
    const bool was_enabled = tc.enabled();
    tc.setEnabled(false);
    tc.clear();
    {
        obs::TraceSpan span("test.disabled");
    }
    EXPECT_EQ(tc.eventCount(), 0u);
    tc.setEnabled(was_enabled);
}

#if APOLLO_OBS
/**
 * One in-process pipeline pass over every instrumented subsystem:
 * GA training-data generation (ga + activity), model training
 * (solver), the emulator flow (stream + flow), and OPM quantization +
 * simulation (opm). Verifies the documented metric names show up in
 * counterValues() and in the snapshot, and that the recorded stage
 * spans form valid trace JSON.
 */
TEST(ObsEndToEnd, PipelineRunPopulatesAllSubsystemMetrics)
{
    obs::MetricRegistry &reg = obs::MetricRegistry::instance();
    const bool was_enabled = reg.enabled();
    reg.setEnabled(true);

    obs::TraceCollector &tc = obs::TraceCollector::instance();
    const bool trace_was_enabled = tc.enabled();
    tc.clear();
    tc.setEnabled(true);

    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());

    // GA + activity: training-set generation.
    TrainingGenOptions opts;
    opts.ga.populationSize = 10;
    opts.ga.generations = 3;
    opts.ga.fitnessCycles = 200;
    opts.benchmarks = 8;
    opts.cyclesEach = 200;
    StatusOr<TrainingGenReport> report =
        generateTrainingSet(netlist, opts);
    ASSERT_TRUE(report.ok()) << report.status().toString();

    // Solver: MCP selection + relaxation.
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 24;
    const ApolloTrainResult trained =
        trainApollo(report->dataset, cfg, netlist.name());

    // Stream + flow: the emulator flow runs the streaming engine.
    DesignTimeFlows flows(netlist);
    const Program workload = makeLongWorkload("obs_e2e", 4000, 7);
    const FlowReport flow_rep =
        flows.runEmulatorFlow(workload, 2000, trained.model);
    EXPECT_GT(flow_rep.cycles, 0u);

    // OPM: quantization + bit-true simulation.
    const QuantizedModel qm = quantizeModel(trained.model, 10);
    OpmSimulator sim(qm, 1);
    const BitColumnMatrix proxies =
        report->dataset.X.selectColumns(trained.model.proxyIds);
    const auto hw = sim.simulate(proxies);
    EXPECT_EQ(hw.size(), report->dataset.cycles());

    const auto counters = reg.counterValues();
    for (const char *name :
         {"apollo.solver.fits", "apollo.solver.path_points",
          "apollo.ga.generations", "apollo.ga.evaluations",
          "apollo.stream.runs", "apollo.stream.chunks",
          "apollo.stream.cycles", "apollo.activity.programs",
          "apollo.activity.cycles", "apollo.activity.datasets_built",
          "apollo.opm.quantizations", "apollo.opm.simulations",
          "apollo.opm.windows", "apollo.flow.runs"}) {
        const auto it = counters.find(name);
        ASSERT_NE(it, counters.end()) << "missing counter: " << name;
        EXPECT_GT(it->second, 0u) << name;
    }

    const std::string snapshot = reg.snapshotJson();
    EXPECT_TRUE(balancedJson(snapshot));
    for (const char *prefix :
         {"apollo.solver.", "apollo.ga.", "apollo.stream.",
          "apollo.activity.", "apollo.opm.", "apollo.flow."})
        EXPECT_NE(snapshot.find(prefix), std::string::npos)
            << "snapshot lacks subsystem " << prefix;

    const std::string trace_json = tc.flushJson();
    tc.setEnabled(trace_was_enabled);
    reg.setEnabled(was_enabled);

    EXPECT_TRUE(balancedJson(trace_json));
    for (const char *span :
         {"flow.ga_run", "ga.generation", "trace.build",
          "flow.simulate", "stream.run"})
        EXPECT_NE(trace_json.find(span), std::string::npos)
            << "trace lacks span " << span;
}
#endif // APOLLO_OBS

} // namespace
} // namespace apollo
