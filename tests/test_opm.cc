/**
 * @file
 * Tests for the runtime OPM: quantization, the bit-true simulator
 * (against float inference, width guarantees, window averaging), the
 * structural hardware cost model, the HLS emitter, and the Table-3
 * baseline comparison.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/apollo_trainer.hh"
#include "gen/ga_generator.hh"
#include "ml/metrics.hh"
#include "opm/baseline_opms.hh"
#include "opm/hls_emitter.hh"
#include "opm/opm_hardware.hh"
#include "opm/opm_simulator.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"

namespace apollo {
namespace {

/** A trained tiny model + proxy-only test matrix, built once. */
struct OpmFixtureData
{
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    ApolloModel model;
    BitColumnMatrix testProxies;
    std::vector<float> testLabels;

    OpmFixtureData()
    {
        DatasetBuilder tb(netlist);
        Xoshiro256StarStar rng(0x0b1);
        for (int i = 0; i < 20; ++i) {
            auto body = GaGenerator::randomBody(rng, 6, 24);
            tb.addProgram(Program::makeLoop("t" + std::to_string(i),
                                            body, 3000, rng()),
                          300);
        }
        const Dataset train = tb.build();
        ApolloTrainConfig cfg;
        cfg.selection.targetQ = 40;
        model = trainApollo(train, cfg, "tiny").model;

        DatasetBuilder eb(netlist);
        for (int i = 0; i < 4; ++i) {
            auto body = GaGenerator::randomBody(rng, 6, 24);
            eb.addProgram(Program::makeLoop("e" + std::to_string(i),
                                            body, 3000, rng()),
                          400);
        }
        const Dataset test = eb.build();
        testProxies = test.X.selectColumns(model.proxyIds);
        testLabels = test.y;
    }
};

const OpmFixtureData &
fixture()
{
    static OpmFixtureData data;
    return data;
}

TEST(Quantize, RoundTripErrorBounded)
{
    const auto &fx = fixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);
    EXPECT_EQ(qm.bits, 10u);
    ASSERT_EQ(qm.qweights.size(), fx.model.weights.size());
    const double step = qm.scale;
    for (size_t q = 0; q < qm.qweights.size(); ++q) {
        EXPECT_LE(std::abs(qm.qweights[q]), (1 << 9) - 1);
        EXPECT_NEAR(qm.qweights[q] * qm.scale, fx.model.weights[q],
                    0.51 * step);
    }
}

TEST(Quantize, BitWidthBoundaries)
{
    const auto &fx = fixture();
    // The supported range is bits in [2, 24]; both edges must work and
    // both neighbours must be rejected as data errors.
    for (uint32_t bits : {2u, 10u, 24u}) {
        const StatusOr<QuantizedModel> qm =
            tryQuantizeModel(fx.model, bits);
        ASSERT_TRUE(qm.ok()) << qm.status().toString();
        EXPECT_EQ(qm->bits, bits);
        const int64_t limit = (1LL << (bits - 1)) - 1;
        for (int32_t qw : qm->qweights)
            EXPECT_LE(std::abs(static_cast<int64_t>(qw)), limit);
    }
    EXPECT_EQ(tryQuantizeModel(fx.model, 1).status().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(tryQuantizeModel(fx.model, 25).status().code(),
              StatusCode::InvalidArgument);
    // The throwing wrapper keeps the old programming-error contract.
    EXPECT_THROW(quantizeModel(fx.model, 1), FatalError);
}

TEST(Quantize, OversizedInterceptOverflowsCycleSumBudget)
{
    // Regression: a model whose intercept dwarfs its weights used to
    // llround() an out-of-range double (UB) and then overflow the OPM
    // accumulator width check later, in the OpmSimulator constructor.
    // The width is now checked against kOpmMaxCycleSumBits during
    // quantization, before any narrowing.
    ApolloModel model;
    model.proxyIds = {0, 1};
    model.weights = {1e-6f, -1e-6f};
    model.intercept = 1e6;
    const StatusOr<QuantizedModel> qm = tryQuantizeModel(model, 10);
    ASSERT_FALSE(qm.ok());
    EXPECT_EQ(qm.status().code(), StatusCode::OutOfRange);
    EXPECT_NE(qm.status().message().find("cycle-sum budget"),
              std::string::npos);
    EXPECT_THROW(quantizeModel(model, 10), FatalError);

    // A proportionate intercept on the same weights is fine.
    model.intercept = 1e-5;
    EXPECT_TRUE(tryQuantizeModel(model, 10).ok());
}

TEST(Quantize, MoreBitsMeansLessError)
{
    const auto &fx = fixture();
    auto weight_rmse = [&](uint32_t bits) {
        const QuantizedModel qm = quantizeModel(fx.model, bits);
        double sse = 0.0;
        for (size_t q = 0; q < qm.qweights.size(); ++q) {
            const double e =
                qm.qweights[q] * qm.scale - fx.model.weights[q];
            sse += e * e;
        }
        return std::sqrt(sse);
    };
    EXPECT_LT(weight_rmse(12), weight_rmse(8));
    EXPECT_LT(weight_rmse(8), weight_rmse(4));
}

TEST(OpmSimulator, MatchesQuantizedFloatModelPerCycle)
{
    const auto &fx = fixture();
    const QuantizedModel qm = quantizeModel(fx.model, 12);
    OpmSimulator opm(qm, 1); // T = 1: per-cycle output
    const std::vector<float> hw = opm.simulate(fx.testProxies);
    const ApolloModel dequant = qm.toFloatModel();
    const std::vector<float> sw =
        dequant.predictProxies(fx.testProxies);
    ASSERT_EQ(hw.size(), sw.size());
    for (size_t i = 0; i < hw.size(); ++i)
        ASSERT_NEAR(hw[i], sw[i], 1e-3 + 1e-4 * std::abs(sw[i]))
            << "cycle " << i;
}

TEST(OpmSimulator, WindowAverageEqualsMeanOfCycleSums)
{
    const auto &fx = fixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);
    const uint32_t T = 8;
    OpmSimulator opm(qm, T);
    const std::vector<float> windows = opm.simulate(fx.testProxies);

    OpmSimulator percycle(qm, 1);
    const std::vector<float> cycles = percycle.simulate(fx.testProxies);
    ASSERT_EQ(windows.size(), cycles.size() / T);
    for (size_t w = 0; w < windows.size(); ++w) {
        double acc = 0.0;
        for (uint32_t t = 0; t < T; ++t)
            acc += cycles[w * T + t];
        // The hardware divide drops low bits: allow one LSB * scale.
        EXPECT_NEAR(windows[w], acc / T, qm.scale * 1.01);
    }
}

TEST(OpmSimulator, RejectsNonPowerOfTwoWindow)
{
    const auto &fx = fixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);
    EXPECT_THROW(OpmSimulator(qm, 3), FatalError);
    EXPECT_THROW(OpmSimulator(qm, 12), FatalError);
    EXPECT_NO_THROW(OpmSimulator(qm, 16));
}

TEST(OpmSimulator, DeclaredWidthsNeverOverflow)
{
    // Worst case: every proxy toggles every cycle.
    const auto &fx = fixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);
    const uint32_t T = 64;
    OpmSimulator opm(qm, T);
    BitColumnMatrix all_ones(2 * T, qm.proxyCount());
    for (size_t i = 0; i < all_ones.rows(); ++i)
        for (size_t q = 0; q < qm.proxyCount(); ++q)
            all_ones.setBit(i, q);
    EXPECT_NO_THROW(opm.simulate(all_ones));
    EXPECT_GE(opm.accumulatorBits(),
              opm.cycleSumBits() + 6u); // +log2(64)
}

TEST(OpmSimulator, TenBitQuantizationAccuracyLossIsSmall)
{
    // §7.5: B ~ 10 keeps the NRMSE increase under ~0.1% absolute on
    // our substrate (vs the float model at the same proxies).
    const auto &fx = fixture();
    const std::vector<float> sw =
        fx.model.predictProxies(fx.testProxies);
    const double nrmse_float = nrmse(fx.testLabels, sw);

    const QuantizedModel qm = quantizeModel(fx.model, 10);
    OpmSimulator opm(qm, 1);
    const std::vector<float> hw = opm.simulate(fx.testProxies);
    const double nrmse_q = nrmse(fx.testLabels, hw);
    EXPECT_LT(nrmse_q - nrmse_float, 0.004);

    const QuantizedModel qm4 = quantizeModel(fx.model, 4);
    OpmSimulator opm4(qm4, 1);
    const double nrmse_q4 =
        nrmse(fx.testLabels, opm4.simulate(fx.testProxies));
    EXPECT_GT(nrmse_q4, nrmse_q) << "4-bit must be visibly worse";
}

TEST(OpmHardware, AreaGrowsWithQandB)
{
    const auto &fx = fixture();
    auto area = [&](uint32_t bits, size_t q_count) {
        ApolloModel sub = fx.model;
        sub.proxyIds.resize(q_count);
        sub.weights.resize(q_count);
        const QuantizedModel qm = quantizeModel(sub, bits);
        return analyzeOpmHardware(fx.netlist, qm, 1, 0.15).totalGE;
    };
    EXPECT_GT(area(10, 40), area(10, 20));
    EXPECT_GT(area(12, 40), area(8, 40));
}

TEST(OpmHardware, OverheadComponentsSane)
{
    const auto &fx = fixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);
    const OpmHardwareReport rep =
        analyzeOpmHardware(fx.netlist, qm, 32, 0.15);
    EXPECT_GT(rep.interfaceGE, 0.0);
    EXPECT_GT(rep.computeGE, rep.interfaceGE); // adder tree dominates
    EXPECT_GT(rep.accumGE, 0.0);
    EXPECT_NEAR(rep.totalGE,
                rep.interfaceGE + rep.computeGE + rep.accumGE +
                    rep.routingGE,
                1e-9);
    EXPECT_NEAR(rep.totalPowerOverhead,
                rep.logicPowerOverhead + rep.routingPowerOverhead,
                1e-12);
    EXPECT_EQ(rep.counters, 1u);
    EXPECT_EQ(rep.multipliers, 0u);
    EXPECT_EQ(rep.latencyCycles, 2u);
}

TEST(OpmHardware, GatedClockProxiesAreCheaper)
{
    // A gated-clock proxy needs only an enable latch, not an XOR
    // detector.
    const auto &fx = fixture();
    const UnitRange &vec = fx.netlist.unitRange(UnitId::VecExec);
    uint32_t gclk = vec.first;
    while (fx.netlist.signal(gclk).kind != SignalKind::GatedClock)
        gclk++;
    uint32_t ff = vec.first;
    while (fx.netlist.signal(ff).kind != SignalKind::FlipFlop)
        ff++;

    ApolloModel one;
    one.weights = {1.0f};
    one.proxyIds = {gclk};
    const double a_gclk = analyzeOpmHardware(
        fx.netlist, quantizeModel(one, 10), 1, 0.15).interfaceGE;
    one.proxyIds = {ff};
    const double a_ff = analyzeOpmHardware(
        fx.netlist, quantizeModel(one, 10), 1, 0.15).interfaceGE;
    EXPECT_LT(a_gclk, a_ff);
}

TEST(HlsEmitter, EmitsCompilableLookingSource)
{
    const auto &fx = fixture();
    const QuantizedModel qm = quantizeModel(fx.model, 10);
    const std::string src = emitOpmHlsSource(qm, 16, "test_opm");
    EXPECT_NE(src.find("struct test_opm"), std::string::npos);
    EXPECT_NE(src.find("kQ = 40"), std::string::npos);
    EXPECT_NE(src.find("kB = 10"), std::string::npos);
    EXPECT_NE(src.find("kT = 16"), std::string::npos);
    EXPECT_NE(src.find("kShift = 4"), std::string::npos);
    EXPECT_NE(src.find("kWeights[kQ]"), std::string::npos);
    EXPECT_NE(src.find("accumulator >> kShift"), std::string::npos);
    // One weight literal per proxy.
    EXPECT_NE(src.find(std::to_string(qm.qweights[0])),
              std::string::npos);
}

TEST(BaselineOpms, TableThreeShape)
{
    const auto rows = opmCostComparison(20000, 159, 10, 32);
    ASSERT_EQ(rows.size(), 6u);
    // APOLLO rows: 1 counter, 0 multipliers.
    EXPECT_EQ(rows[4].method.substr(0, 6), "APOLLO");
    EXPECT_EQ(rows[4].counterUnits, 1u);
    EXPECT_EQ(rows[4].multiplierUnits, 0u);
    EXPECT_EQ(rows[5].counterUnits, 1u);
    // Counter-per-proxy OPMs: Q of each.
    EXPECT_EQ(rows[2].counterUnits, 159u);
    EXPECT_EQ(rows[2].multiplierUnits, 159u);
    // Simmani: ~Q^2 multipliers; Yang: ~M.
    EXPECT_EQ(rows[1].multiplierUnits, 159ull * 159ull);
    EXPECT_EQ(rows[0].multiplierUnits, 20000u);
    // APOLLO's arithmetic area must be the smallest.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_LT(rows[4].arithmeticGE, rows[i].arithmeticGE);
}

} // namespace
} // namespace apollo
