/**
 * @file
 * Unit tests for the ISA: opcode classification, disassembly, program
 * construction, and the functional executor's architectural semantics.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "uarch/core.hh"

namespace apollo {
namespace {

using namespace asm_helpers;

TEST(Isa, ExecClassMapping)
{
    EXPECT_EQ(add(0, 1, 2).execClass(), ExecClass::Alu);
    EXPECT_EQ(mul(0, 1, 2).execClass(), ExecClass::MulDiv);
    EXPECT_EQ(div(0, 1, 2).execClass(), ExecClass::MulDiv);
    EXPECT_EQ(ldr(0, 1, 0).execClass(), ExecClass::Mem);
    EXPECT_EQ(vstr(0, 1, 0).execClass(), ExecClass::Mem);
    EXPECT_EQ(vfma(0, 1, 2).execClass(), ExecClass::Vector);
    EXPECT_EQ(bnez(1, -4).execClass(), ExecClass::Branch);
    EXPECT_EQ(nop().execClass(), ExecClass::None);
}

TEST(Isa, VectorFlag)
{
    EXPECT_TRUE(vadd(0, 1, 2).isVector());
    EXPECT_TRUE(vldr(0, 1, 0).isVector());
    EXPECT_FALSE(ldr(0, 1, 0).isVector());
    EXPECT_FALSE(add(0, 1, 2).isVector());
}

TEST(Isa, Disassembly)
{
    EXPECT_EQ(add(3, 1, 2).toString(), "add x3, x1, x2");
    EXPECT_EQ(vfma(3, 1, 2).toString(), "vfma v3, v1, v2");
    EXPECT_EQ(ldr(4, 30, 16).toString(), "ldr x4, [x30, #16]");
    EXPECT_EQ(bnez(31, -5).toString(), "bnez x31, -5");
    EXPECT_EQ(movi(7, 42).toString(), "movi x7, #42");
    EXPECT_EQ(nop().toString(), "nop");
}

TEST(Program, MakeLoopShape)
{
    const std::vector<Instruction> body = {add(0, 1, 2), eor(3, 0, 1)};
    const Program prog = Program::makeLoop("p", body, 10, 77);
    ASSERT_EQ(prog.size(), body.size() + 3);
    EXPECT_EQ(prog.at(0).op, Opcode::MovI);
    EXPECT_EQ(prog.at(0).imm, 10);
    EXPECT_EQ(prog.at(prog.size() - 1).op, Opcode::Bnez);
    // The backward branch must land on the first body instruction.
    const auto &br = prog.at(prog.size() - 1);
    EXPECT_EQ(static_cast<int>(prog.size() - 1) + br.imm, 1);
    EXPECT_EQ(prog.dataSeed(), 77u);
}

TEST(FunctionalExecutor, LoopTripCountIsExact)
{
    const std::vector<Instruction> body = {add(0, 1, 2)};
    const Program prog = Program::makeLoop("p", body, 5);
    FunctionalExecutor exec(prog);
    MicroOp op;
    size_t branches_taken = 0;
    size_t total = 0;
    while (exec.next(op)) {
        total++;
        if (op.inst.isBranch() && op.taken)
            branches_taken++;
        ASSERT_LT(total, 200u) << "runaway program";
    }
    // movi + 5 * (body + subi + bnez).
    EXPECT_EQ(total, 1 + 5 * 3);
    EXPECT_EQ(branches_taken, 4u);
}

TEST(FunctionalExecutor, AluSemantics)
{
    // movi x1, 6; movi x2, 3; add x0 = 9; sub x3 = 3; mul x4 = 18;
    // div x5 = 2.
    std::vector<Instruction> instrs = {
        movi(1, 6), movi(2, 3), add(0, 1, 2), sub(3, 1, 2),
        mul(4, 1, 2), div(5, 1, 2),
        // Make results observable through memory round-trips:
        str(0, 30, 0), str(4, 30, 8), str(5, 30, 16),
        ldr(10, 30, 0), ldr(11, 30, 8), ldr(12, 30, 16),
        str(10, 30, 24),
    };
    Program prog("semantics", std::move(instrs));
    FunctionalExecutor exec(prog);
    MicroOp op;
    std::vector<MicroOp> trace;
    while (exec.next(op))
        trace.push_back(op);

    // The three stores wrote 9, 18, 2; the loads observe them.
    // Verify via the store data captured in the trace (Str result =
    // stored value).
    ASSERT_GE(trace.size(), 13u);
    EXPECT_EQ(trace[6].inst.op, Opcode::Str);
    EXPECT_EQ(trace[6].addr, (1ULL << 20) + 0);
    // Store value appears via the load round-trip at trace[12].
    EXPECT_EQ(trace[12].inst.op, Opcode::Str);
}

TEST(FunctionalExecutor, StoreLoadRoundTrip)
{
    std::vector<Instruction> instrs = {
        movi(1, 12345),
        str(1, 30, 40),
        ldr(2, 30, 40),
        str(2, 30, 48), // stores what was loaded
    };
    Program prog("roundtrip", std::move(instrs));
    FunctionalExecutor exec(prog);
    MicroOp op;
    MicroOp last;
    while (exec.next(op))
        last = op;
    // If the load returned the stored value, both stores carry 12345 and
    // the executor was consistent; we can't read registers directly, but
    // a mismatch would show as a different data toggle vs a fresh value.
    EXPECT_EQ(last.inst.op, Opcode::Str);
    EXPECT_EQ(last.addr, (1ULL << 20) + 48);
}

TEST(FunctionalExecutor, UntakenBranchFallsThrough)
{
    std::vector<Instruction> instrs = {
        movi(1, 0),
        bnez(1, 3), // not taken: x1 == 0
        addi(2, 2, 1),
        nop(),
    };
    Program prog("ut", std::move(instrs));
    FunctionalExecutor exec(prog);
    MicroOp op;
    std::vector<MicroOp> trace;
    while (exec.next(op))
        trace.push_back(op);
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_FALSE(trace[1].taken);
    EXPECT_EQ(trace[2].inst.op, Opcode::AddI);
}

TEST(FunctionalExecutor, DataSeedChangesDataToggles)
{
    const std::vector<Instruction> body = {mul(0, 1, 2), eor(3, 0, 4)};
    const Program a = Program::makeLoop("a", body, 8, 111);
    const Program b = Program::makeLoop("b", body, 8, 222);
    FunctionalExecutor ea(a);
    FunctionalExecutor eb(b);
    MicroOp oa;
    MicroOp ob;
    float sum_a = 0.f;
    float sum_b = 0.f;
    while (ea.next(oa) && eb.next(ob)) {
        sum_a += oa.dataToggle;
        sum_b += ob.dataToggle;
    }
    EXPECT_NE(sum_a, sum_b);
}

TEST(FunctionalExecutor, VectorOpsProduceToggles)
{
    const std::vector<Instruction> body = {vfma(0, 1, 2), vmul(3, 0, 1)};
    const Program prog = Program::makeLoop("v", body, 4);
    FunctionalExecutor exec(prog);
    MicroOp op;
    float toggles = 0.f;
    while (exec.next(op))
        if (op.inst.isVector())
            toggles += op.dataToggle;
    EXPECT_GT(toggles, 0.f);
}

} // namespace
} // namespace apollo
