/**
 * @file
 * Tests for the APOLLO core library: proxy selection, trainer
 * (selection + relaxation), model serialization, and the multi-cycle
 * APOLLO_tau model including the Eq. (9) rearrangement equivalence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/apollo_trainer.hh"
#include "core/multi_cycle.hh"
#include "gen/ga_generator.hh"
#include "ml/metrics.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"

namespace apollo {
namespace {

using namespace asm_helpers;

/** Shared tiny-design train/test datasets (built once). */
struct CoreFixtureData
{
    Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    Dataset train;
    Dataset test;

    CoreFixtureData()
    {
        DatasetBuilder tb(netlist);
        Xoshiro256StarStar rng(0xc0de);
        for (int i = 0; i < 24; ++i) {
            auto body = GaGenerator::randomBody(rng, 6, 24);
            tb.addProgram(Program::makeLoop("t" + std::to_string(i),
                                            body, 3000, rng()),
                          320);
        }
        train = tb.build();

        DatasetBuilder eb(netlist);
        for (int i = 0; i < 6; ++i) {
            auto body = GaGenerator::randomBody(rng, 6, 24);
            eb.addProgram(Program::makeLoop("e" + std::to_string(i),
                                            body, 3000, rng()),
                          512);
        }
        test = eb.build();
    }
};

const CoreFixtureData &
fixture()
{
    static CoreFixtureData data;
    return data;
}

TEST(ProxySelector, HitsTargetQ)
{
    const auto &fx = fixture();
    BitFeatureView view(fx.train.X);
    ProxySelectorConfig cfg;
    cfg.targetQ = 30;
    const ProxySelection sel = selectProxies(view, fx.train.y, cfg);
    EXPECT_EQ(sel.proxyIds.size(), 30u);
    // Proxy ids ascend and are valid columns.
    for (size_t i = 1; i < sel.proxyIds.size(); ++i)
        EXPECT_LT(sel.proxyIds[i - 1], sel.proxyIds[i]);
    EXPECT_LT(sel.proxyIds.back(), fx.train.signals());
}

TEST(ProxySelector, LassoKindSelectsToo)
{
    const auto &fx = fixture();
    BitFeatureView view(fx.train.X);
    ProxySelectorConfig cfg;
    cfg.targetQ = 25;
    cfg.kind = PenaltyKind::Lasso;
    const ProxySelection sel = selectProxies(view, fx.train.y, cfg);
    EXPECT_EQ(sel.proxyIds.size(), 25u);
}

TEST(ApolloTrainer, RelaxationImprovesAccuracy)
{
    // §4.4: the relaxed model must beat the raw (over-penalized)
    // temporary MCP model on held-out data.
    const auto &fx = fixture();
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 40;
    const ApolloTrainResult res = trainApollo(fx.train, cfg, "tiny");
    ASSERT_EQ(res.model.proxyCount(), 40u);

    // Raw sparse-model predictions.
    std::vector<float> raw_pred(fx.test.cycles(),
        static_cast<float>(res.selection.sparseModel.intercept));
    for (size_t j = 0; j < res.selection.sparseModel.w.size(); ++j)
        if (res.selection.sparseModel.w[j] != 0.0f)
            fx.test.X.axpyColumn(j, res.selection.sparseModel.w[j],
                                 raw_pred.data());

    const auto relaxed_pred = res.model.predictFull(fx.test.X);
    const double r2_raw = r2Score(fx.test.y, raw_pred);
    const double r2_relaxed = r2Score(fx.test.y, relaxed_pred);
    EXPECT_GT(r2_relaxed, r2_raw);
    EXPECT_GT(r2_relaxed, 0.9);
}

TEST(ApolloTrainer, AccuracyGrowsWithQ)
{
    const auto &fx = fixture();
    double last_r2 = -1.0;
    for (size_t q : {10, 40, 120}) {
        ApolloTrainConfig cfg;
        cfg.selection.targetQ = q;
        const auto res = trainApollo(fx.train, cfg, "tiny");
        const auto pred = res.model.predictFull(fx.test.X);
        const double r2 = r2Score(fx.test.y, pred);
        EXPECT_GT(r2, last_r2) << "Q=" << q;
        last_r2 = r2;
    }
    EXPECT_GT(last_r2, 0.95);
}

TEST(ApolloTrainer, SelectionSubsampleStillWorks)
{
    const auto &fx = fixture();
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 40;
    cfg.selectionCycleCap = fx.train.cycles() / 3;
    const auto res = trainApollo(fx.train, cfg, "tiny");
    const auto pred = res.model.predictFull(fx.test.X);
    EXPECT_GT(r2Score(fx.test.y, pred), 0.9);
}

TEST(ApolloModel, PredictProxiesMatchesPredictFull)
{
    const auto &fx = fixture();
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 25;
    const auto res = trainApollo(fx.train, cfg, "tiny");

    const BitColumnMatrix proxy_only =
        fx.test.X.selectColumns(res.model.proxyIds);
    const auto a = res.model.predictFull(fx.test.X);
    const auto b = res.model.predictProxies(proxy_only);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_FLOAT_EQ(a[i], b[i]);
}

TEST(ApolloModel, SaveLoadRoundTrip)
{
    const auto &fx = fixture();
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 15;
    const auto res = trainApollo(fx.train, cfg, "tiny-design");

    std::stringstream ss;
    res.model.save(ss);
    const ApolloModel loaded = ApolloModel::load(ss);
    EXPECT_EQ(loaded.designName, "tiny-design");
    EXPECT_EQ(loaded.proxyIds, res.model.proxyIds);
    EXPECT_NEAR(loaded.intercept, res.model.intercept, 1e-9);
    ASSERT_EQ(loaded.weights.size(), res.model.weights.size());
    for (size_t q = 0; q < loaded.weights.size(); ++q)
        EXPECT_FLOAT_EQ(loaded.weights[q], res.model.weights[q]);
}

TEST(RelaxProxySet, WorksOnArbitrarySets)
{
    const auto &fx = fixture();
    std::vector<uint32_t> ids = {5, 100, 321, 700, 1100};
    const auto res = relaxProxySet(fx.train, ids, ApolloTrainConfig{});
    EXPECT_EQ(res.model.proxyIds, ids);
    // Low-Q model: not great, but should beat the mean predictor.
    const auto pred = res.model.predictFull(fx.test.X);
    EXPECT_GT(r2Score(fx.test.y, pred), 0.0);
}

TEST(MultiCycle, Eq9RearrangementIsExact)
{
    // The hardware-friendly inference (per-cycle accumulate, shift at
    // the window end) must equal the textbook form (average the
    // tau-interval predictions) bit-for-float.
    const auto &fx = fixture();
    const uint32_t tau = 4;
    const uint32_t T = 16;
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 20;
    const MultiCycleModel model =
        trainMultiCycle(fx.train, tau, cfg, "tiny");
    ASSERT_EQ(model.tau, tau);

    const auto hw = model.predictWindowsFull(fx.test.X, T,
                                             fx.test.segments)
                        .value();

    // Textbook: average the tau-interval model outputs within each T
    // window, computed via interval aggregation.
    const CountDataset agg = aggregateIntervals(fx.test, tau);
    std::vector<float> textbook;
    const float scale = 1.0f / tau;
    for (const auto &seg : agg.segments) {
        const size_t per_window = T / tau;
        const size_t windows = seg.cycles() / per_window;
        for (size_t w = 0; w < windows; ++w) {
            double acc = 0.0;
            for (size_t k = 0; k < per_window; ++k) {
                const size_t interval = seg.begin + w * per_window + k;
                double p = model.base.intercept;
                for (size_t q = 0; q < model.base.proxyCount(); ++q)
                    p += model.base.weights[q] * scale *
                         agg.X.get(interval, model.base.proxyIds[q]);
                acc += p;
            }
            textbook.push_back(
                static_cast<float>(acc / per_window));
        }
    }

    ASSERT_EQ(hw.size(), textbook.size());
    for (size_t i = 0; i < hw.size(); ++i)
        EXPECT_NEAR(hw[i], textbook[i], 2e-3 + 1e-3 * std::abs(hw[i]))
            << "window " << i;
}

TEST(MultiCycle, WindowLabelsMatchManualAverages)
{
    const auto &fx = fixture();
    const uint32_t T = 8;
    const auto labels = windowAverageLabels(fx.test.y, T,
                                            fx.test.segments)
                            .value();
    // First window of the first segment by hand.
    double acc = 0.0;
    for (uint32_t t = 0; t < T; ++t)
        acc += fx.test.y[fx.test.segments[0].begin + t];
    EXPECT_NEAR(labels[0], acc / T, 1e-5);
}

TEST(MultiCycle, ShortTraceReturnsInvalidArgumentInsteadOfAborting)
{
    // Regression: a trace where every segment is shorter than T used
    // to fall through to an empty-output APOLLO_REQUIRE abort deep in
    // predictWindowsImpl; it is a data error and now surfaces as a
    // Status the caller can handle.
    MultiCycleModel model;
    model.base.intercept = 0.5;
    model.base.proxyIds = {0, 1};
    model.base.weights = {0.25f, 0.125f};

    BitColumnMatrix X;
    X.reset(6, 2);
    X.setBit(0, 0);
    X.setBit(3, 1);
    const std::vector<SegmentInfo> segs = {{"short", 0, 6}};

    const auto pred = model.predictWindowsFull(X, 8, segs);
    ASSERT_FALSE(pred.ok());
    EXPECT_EQ(pred.status().code(), StatusCode::InvalidArgument);

    const std::vector<float> y = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f};
    const auto labels = windowAverageLabels(y, 8, segs);
    ASSERT_FALSE(labels.ok());
    EXPECT_EQ(labels.status().code(), StatusCode::InvalidArgument);

    // T = 0 is invalid as well.
    EXPECT_EQ(model.predictWindowsFull(X, 0, segs).status().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(windowAverageLabels(y, 0, segs).status().code(),
              StatusCode::InvalidArgument);
}

TEST(MultiCycle, MismatchedSegmentsReturnOutOfRange)
{
    // Regression: segment bounds beyond the matrix rows / label length
    // walked straight off the data (reading garbage or crashing under
    // ASan); they now return OutOfRange with the offending segment
    // named in the message.
    MultiCycleModel model;
    model.base.intercept = 0.5;
    model.base.proxyIds = {0};
    model.base.weights = {0.25f};

    BitColumnMatrix X;
    X.reset(6, 1);
    const std::vector<SegmentInfo> beyond = {{"beyond", 0, 10}};
    const auto pred = model.predictWindowsFull(X, 2, beyond);
    ASSERT_FALSE(pred.ok());
    EXPECT_EQ(pred.status().code(), StatusCode::OutOfRange);
    EXPECT_NE(pred.status().message().find("beyond"),
              std::string::npos);

    const std::vector<float> y = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f};
    const auto labels = windowAverageLabels(y, 2, beyond);
    ASSERT_FALSE(labels.ok());
    EXPECT_EQ(labels.status().code(), StatusCode::OutOfRange);

    // Inverted segments are invalid-argument data errors.
    const std::vector<SegmentInfo> inverted = {{"inv", 4, 2}};
    EXPECT_EQ(
        model.predictWindowsFull(X, 2, inverted).status().code(),
        StatusCode::InvalidArgument);

    // A well-formed call on the same model still works.
    const std::vector<SegmentInfo> good = {{"good", 0, 6}};
    const auto ok = model.predictWindowsFull(X, 2, good);
    ASSERT_TRUE(ok.ok()) << ok.status().toString();
    EXPECT_EQ(ok->size(), 3u);
}

TEST(MultiCycle, TauEightBeatsExtremesAtLargeT)
{
    // Fig. 11's central claim: an intermediate tau beats both tau=1
    // (average of per-cycle predictions) and tau=T (averaged inputs)
    // for large windows. We check tau=8 is at least as good as the
    // worse of the two extremes minus tolerance (ordering of the best
    // extreme can wobble at tiny scale).
    const auto &fx = fixture();
    const uint32_t T = 32;
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 24;

    const auto labels = windowAverageLabels(fx.test.y, T,
                                            fx.test.segments)
                            .value();
    auto nrmse_for = [&](uint32_t tau) {
        const MultiCycleModel m =
            trainMultiCycle(fx.train, tau, cfg, "tiny");
        const auto pred =
            m.predictWindowsFull(fx.test.X, T, fx.test.segments)
                .value();
        return nrmse(labels, pred);
    };
    const double e1 = nrmse_for(1);
    const double e8 = nrmse_for(8);
    const double eT = nrmse_for(T);
    // At this tiny scale the ordering between the three is noisy (the
    // tau=8 selection sees 8x fewer samples); the Fig. 11 bench
    // measures the real ordering at N1 scale. Here we only require
    // tau=8 to be competitive and all variants to be accurate.
    EXPECT_LT(e8, 1.35 * std::min(e1, eT));
    EXPECT_LT(e8, 0.1);
    EXPECT_LT(e1, 0.1);
    EXPECT_LT(eT, 0.1);
}

} // namespace
} // namespace apollo
