#include "harness/differential.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace apollo::harness {

const OracleEntry *
findOracle(const std::string &path)
{
    for (const OracleEntry &e : oracleRegistry())
        if (e.path == path)
            return &e;
    return nullptr;
}

uint64_t
oracleBaseSeed(const std::string &path)
{
    uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a
    for (char ch : path) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::optional<uint64_t>
replaySeedOverride()
{
    const char *env = std::getenv("APOLLO_ORACLE_SEED");
    if (env == nullptr || *env == '\0')
        return std::nullopt;
    return std::strtoull(env, nullptr, 0);
}

void
runOracle(const OracleEntry &entry, size_t count)
{
    std::vector<uint64_t> seeds;
    if (auto only = replaySeedOverride()) {
        seeds.push_back(*only);
    } else {
        const uint64_t base = oracleBaseSeed(entry.path);
        seeds.reserve(count);
        for (size_t i = 0; i < count; ++i)
            seeds.push_back(base + i);
    }

    size_t failures = 0;
    for (uint64_t seed : seeds) {
        std::optional<std::string> detail;
        try {
            detail = entry.runOne(seed);
        } catch (const std::exception &e) {
            detail = std::string("unexpected exception: ") + e.what();
        }
        if (!detail)
            continue;
        failures++;
        char replay[128];
        std::snprintf(replay, sizeof(replay),
                      "APOLLO_REPLAY seed=0x%llx path=%s",
                      static_cast<unsigned long long>(seed),
                      entry.path.c_str());
        ADD_FAILURE() << replay << "\n  " << *detail
                      << "\n  rerun just this case with: "
                         "APOLLO_ORACLE_SEED=0x"
                      << std::hex << seed << std::dec
                      << " ./apollo_oracle_tests "
                         "--gtest_filter='*"
                      << entry.path << "*'";
        if (failures >= 5) {
            ADD_FAILURE() << "[oracle] " << entry.path
                          << ": stopping after 5 failures";
            break;
        }
    }
}

BitColumnMatrix
takeRows(const BitColumnMatrix &X, size_t rows)
{
    rows = std::min(rows, X.rows());
    BitColumnMatrix out(rows, X.cols());
    for (size_t c = 0; c < X.cols(); ++c)
        for (size_t r = 0; r < rows; ++r)
            if (X.get(r, c))
                out.setBit(r, c);
    return out;
}

BitColumnMatrix
takeCols(const BitColumnMatrix &X, size_t cols)
{
    cols = std::min(cols, X.cols());
    BitColumnMatrix out(X.rows(), cols);
    for (size_t c = 0; c < cols; ++c)
        for (size_t r = 0; r < X.rows(); ++r)
            if (X.get(r, c))
                out.setBit(r, c);
    return out;
}

} // namespace apollo::harness
