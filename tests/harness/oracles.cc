/**
 * @file
 * The oracle registry: every production inference / solver /
 * quantization path, registered against its src/ref oracle. Paths that
 * are bit-exact by construction (per-cycle float inference, Eq. (9)
 * windows, integer OPM arithmetic, quantization) compare with exact
 * equality; the iterative solver paths are certified with the
 * independent KKT fixed-point residual plus objective agreement
 * against the naive reference fit, with tolerances derived from the
 * solver's own convergence metric (see checkSolver()).
 */

#include "harness/differential.hh"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>

#include "apollo.hh"

#include "activity/toggle_columns.hh"
#include "gen/fitness_eval.hh"
#include "harness/case_gen.hh"
#include "ml/coordinate_descent.hh"
#include "ml/feature_view.hh"
#include "ml/sharded_view.hh"
#include "ml/solver_path.hh"
#include "opm/opm_bitparallel.hh"
#include "opm/opm_simulator.hh"
#include "opm/quantize.hh"
#include "util/popcnt_kernels.hh"
#include "control/droop_controller.hh"
#include "ref/reference_control.hh"
#include "ref/reference_ga.hh"
#include "ref/reference_kernels.hh"
#include "ref/reference_shard.hh"
#include "ref/reference_solver.hh"
#include "trace/shard_store.hh"
#include "trace/stream_reader.hh"
#include "util/logging.hh"

namespace apollo::harness {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

/** Exact float comparison; NaN anywhere is a failure. */
std::optional<std::string>
compareExact(std::span<const float> prod, std::span<const float> want,
             const std::string &shape)
{
    if (prod.size() != want.size())
        return fmt("shape=%s: size mismatch prod=%zu ref=%zu",
                   shape.c_str(), prod.size(), want.size());
    for (size_t i = 0; i < prod.size(); ++i) {
        if (prod[i] != want[i] || std::isnan(prod[i]))
            return fmt("shape=%s: element %zu: prod=%a ref=%a",
                       shape.c_str(), i, static_cast<double>(prod[i]),
                       static_cast<double>(want[i]));
    }
    return std::nullopt;
}

/**
 * Smallest width b with |v| < 2^b for every v in [min_sum, max_sum] —
 * the OPM's declared-width convention (stepSum asserts magnitude
 * strictly below 2^cycleSumBits).
 */
uint32_t
requiredMagnitudeBits(int64_t min_sum, int64_t max_sum)
{
    const uint64_t max_abs = std::max(
        static_cast<uint64_t>(min_sum < 0 ? -min_sum : min_sum),
        static_cast<uint64_t>(max_sum < 0 ? -max_sum : max_sum));
    uint32_t bits = 0;
    while (bits < 63 && (uint64_t{1} << bits) <= max_abs)
        bits++;
    return bits;
}

size_t
fullWindows(const InferCase &c)
{
    size_t windows = 0;
    for (const SegmentInfo &seg : c.segments)
        windows += seg.cycles() / c.T;
    return windows;
}

// ---------------------------------------------------------------------
// Float inference paths (exact comparison).
// ---------------------------------------------------------------------

std::optional<std::string>
runBatchProxies(uint64_t seed)
{
    const InferCase c0 = makeInferCase(seed);
    auto check = [](const InferCase &c) -> std::optional<std::string> {
        const std::vector<float> prod = c.model.predictProxies(c.Xq);
        const std::vector<float> want = ref::predictProxies(c.model, c.Xq);
        return compareExact(prod, want, c.shape);
    };
    std::optional<std::string> detail = check(c0);
    if (!detail)
        return std::nullopt;

    // Greedy minimization; the shrunk case keeps failing by
    // construction, so re-check and report its (smaller) detail.
    const std::function<bool(const InferCase &)> fails =
        [&](const InferCase &c) { return check(c).has_value(); };
    const std::vector<std::function<bool(InferCase &)>> mutators = {
        [](InferCase &c) {
            if (c.Xq.rows() <= 1)
                return false;
            c.Xq = takeRows(c.Xq, c.Xq.rows() / 2);
            return true;
        },
        [](InferCase &c) {
            if (c.Xq.cols() <= 1)
                return false;
            const size_t keep = c.Xq.cols() / 2;
            c.Xq = takeCols(c.Xq, keep);
            c.model.weights.resize(keep);
            c.model.proxyIds.resize(keep);
            return true;
        },
        [](InferCase &c) {
            if (c.model.intercept == 0.0)
                return false;
            c.model.intercept = 0.0;
            return true;
        },
    };
    InferCase s = shrinkCase(c0, fails, mutators);
    return *check(s) +
           fmt(" [shrunk to rows=%zu cols=%zu from rows=%zu cols=%zu]",
               s.Xq.rows(), s.Xq.cols(), c0.Xq.rows(), c0.Xq.cols());
}

std::optional<std::string>
runBatchFull(uint64_t seed)
{
    InferCase c = makeInferCase(seed);
    // Scatter the proxy columns through a wider full-design matrix
    // with active decoy columns between them.
    const size_t q = c.Xq.cols();
    const size_t full_cols = 2 * q + 3;
    BitColumnMatrix X(c.Xq.rows(), full_cols);
    ApolloModel scattered = c.model;
    for (size_t j = 0; j < q; ++j) {
        const size_t col = 2 * j + 1;
        scattered.proxyIds[j] = static_cast<uint32_t>(col);
        for (size_t r = 0; r < c.Xq.rows(); ++r)
            if (c.Xq.get(r, j))
                X.setBit(r, col);
    }
    Xoshiro256StarStar rng(hashMix(seed ^ 0xdecaf));
    for (size_t j = 0; j < full_cols; j += 2)
        for (size_t r = 0; r < X.rows(); ++r)
            if (rng.nextDouble() < 0.3)
                X.setBit(r, j);

    const std::vector<float> prod = scattered.predictFull(X);
    const std::vector<float> want = ref::predictFull(scattered, X);
    if (auto d = compareExact(prod, want, c.shape))
        return d;
    // The scatter must not change the result: proxy-layout equality.
    return compareExact(prod, ref::predictProxies(c.model, c.Xq),
                        c.shape + "+scatter-invariance");
}

std::optional<std::string>
runWindowsEq9(uint64_t seed)
{
    const InferCase c = makeInferCase(seed);
    const MultiCycleModel mc{c.model,
                             1 + static_cast<uint32_t>(seed % 7)};
    if (fullWindows(c) == 0) {
        // Production contract: no full window anywhere is an
        // InvalidArgument Status, not a silent empty result.
        StatusOr<std::vector<float>> empty =
            mc.predictWindowsProxies(c.Xq, c.T, c.segments);
        if (empty.ok())
            return fmt("shape=%s: expected InvalidArgument for zero "
                       "windows",
                       c.shape.c_str());
        if (empty.status().code() != StatusCode::InvalidArgument)
            return fmt("shape=%s: zero windows returned '%s'",
                       c.shape.c_str(),
                       empty.status().toString().c_str());
        return std::nullopt;
    }
    StatusOr<std::vector<float>> got =
        mc.predictWindowsProxies(c.Xq, c.T, c.segments);
    if (!got.ok())
        return fmt("shape=%s: predictWindowsProxies failed: %s",
                   c.shape.c_str(), got.status().toString().c_str());
    const std::vector<float> prod = *got;
    const std::vector<float> want =
        ref::predictWindowsProxies(c.model, c.Xq, c.T, c.segments);
    return compareExact(prod, want, c.shape + fmt("+T=%u", c.T));
}

std::optional<std::string>
runStreamPerCycle(uint64_t seed)
{
    const InferCase c = makeInferCase(seed);
    MatrixChunkReader reader(c.Xq);
    VectorSink sink;
    const StreamingInference engine(c.model);
    const StreamConfig config =
        StreamConfig().withChunkCycles(streamChunkCycles(seed));
    auto stats = engine.run(reader, sink, config);
    if (!stats.ok())
        return fmt("shape=%s: run failed: %s", c.shape.c_str(),
                   stats.status().message().c_str());
    return compareExact(sink.values(), ref::predictProxies(c.model, c.Xq),
                        c.shape + fmt("+chunk=%zu", config.chunkCycles));
}

std::optional<std::string>
runStreamWindows(uint64_t seed)
{
    const InferCase c = makeInferCase(seed);
    MatrixChunkReader reader(c.Xq);
    VectorSink sink;
    const StreamingInference engine(c.model);
    const StreamConfig config = StreamConfig()
                                    .withChunkCycles(streamChunkCycles(seed))
                                    .withWindowT(c.T);
    auto stats = engine.run(reader, sink, config);
    if (!stats.ok())
        return fmt("shape=%s: run failed: %s", c.shape.c_str(),
                   stats.status().message().c_str());
    // The stream has no segment metadata: one segment spanning the
    // whole trace is the defined behavior.
    const SegmentInfo whole{"trace", 0, c.Xq.rows()};
    const std::vector<float> want = ref::predictWindowsProxies(
        c.model, c.Xq, c.T, std::span<const SegmentInfo>(&whole, 1));
    return compareExact(sink.values(), want,
                        c.shape + fmt("+T=%u+chunk=%zu", c.T,
                                      config.chunkCycles));
}

// ---------------------------------------------------------------------
// OPM paths (field-exact / bit-exact integer comparison).
// ---------------------------------------------------------------------

std::optional<std::string>
runQuantize(uint64_t seed)
{
    const QuantCase c = makeQuantCase(seed);
    const QuantizedModel prod = apollo::quantizeModel(c.model, c.bits);
    const QuantizedModel want = ref::quantizeModel(c.model, c.bits);
    if (prod.proxyIds != want.proxyIds)
        return fmt("shape=%s: proxyIds differ", c.shape.c_str());
    if (prod.bits != want.bits)
        return fmt("shape=%s: bits prod=%u ref=%u", c.shape.c_str(),
                   prod.bits, want.bits);
    if (prod.scale != want.scale)
        return fmt("shape=%s: scale prod=%a ref=%a", c.shape.c_str(),
                   prod.scale, want.scale);
    if (prod.qintercept != want.qintercept)
        return fmt("shape=%s: qintercept prod=%lld ref=%lld",
                   c.shape.c_str(),
                   static_cast<long long>(prod.qintercept),
                   static_cast<long long>(want.qintercept));
    for (size_t j = 0; j < want.qweights.size(); ++j)
        if (j >= prod.qweights.size() ||
            prod.qweights[j] != want.qweights[j])
            return fmt("shape=%s: qweights[%zu] prod=%d ref=%d bits=%u",
                       c.shape.c_str(), j,
                       j < prod.qweights.size() ? prod.qweights[j] : 0,
                       want.qweights[j], c.bits);
    if (prod.qweights.size() != want.qweights.size())
        return fmt("shape=%s: qweight count prod=%zu ref=%zu",
                   c.shape.c_str(), prod.qweights.size(),
                   want.qweights.size());
    return std::nullopt;
}

std::optional<std::string>
runOpmSimulate(uint64_t seed)
{
    const QuantCase c = makeQuantCase(seed);
    const QuantizedModel qm = apollo::quantizeModel(c.model, c.bits);
    OpmSimulator sim(qm, c.T);

    // The declared hardware widths must cover the exact worst case,
    // including the once-per-cycle quantized intercept.
    const ref::CycleSumBounds bounds = ref::opmCycleSumBounds(qm);
    const uint32_t need =
        requiredMagnitudeBits(bounds.minSum, bounds.maxSum);
    if (sim.cycleSumBits() < need)
        return fmt("shape=%s: cycleSumBits=%u cannot hold worst-case "
                   "sum range [%lld, %lld] (needs %u bits)",
                   c.shape.c_str(), sim.cycleSumBits(),
                   static_cast<long long>(bounds.minSum),
                   static_cast<long long>(bounds.maxSum), need);

    const std::vector<float> prod = sim.simulate(c.Xq);
    const std::vector<float> want = ref::opmSimulate(qm, c.Xq, c.T);
    return compareExact(prod, want,
                        c.shape + fmt("+B=%u+T=%u", c.bits, c.T));
}

std::optional<std::string>
runStreamQuantized(uint64_t seed)
{
    const QuantCase c = makeQuantCase(seed);
    const QuantizedModel qm = apollo::quantizeModel(c.model, c.bits);
    MatrixChunkReader reader(c.Xq);
    VectorSink sink;
    const StreamingInference engine(qm, c.T);
    const StreamConfig config =
        StreamConfig().withChunkCycles(streamChunkCycles(seed));
    auto stats = engine.run(reader, sink, config);
    if (!stats.ok())
        return fmt("shape=%s: run failed: %s", c.shape.c_str(),
                   stats.status().message().c_str());
    return compareExact(sink.values(), ref::opmSimulate(qm, c.Xq, c.T),
                        c.shape + fmt("+B=%u+T=%u+chunk=%zu", c.bits,
                                      c.T, config.chunkCycles));
}

/** Exact int64 comparison (segment sums). */
std::optional<std::string>
compareExactI64(std::span<const int64_t> prod,
                std::span<const int64_t> want, const std::string &shape)
{
    if (prod.size() != want.size())
        return fmt("shape=%s: segment count prod=%zu ref=%zu",
                   shape.c_str(), prod.size(), want.size());
    for (size_t i = 0; i < prod.size(); ++i)
        if (prod[i] != want[i])
            return fmt("shape=%s: segment %zu: prod=%lld ref=%lld",
                       shape.c_str(), i,
                       static_cast<long long>(prod[i]),
                       static_cast<long long>(want[i]));
    return std::nullopt;
}

/**
 * Scoped APOLLO_POPCNT override; restores the previous value (or
 * unsets) on destruction so an externally set selection survives the
 * oracle run.
 */
class ScopedPopcntEnv
{
  public:
    explicit ScopedPopcntEnv(const char *value)
    {
        const char *prev = std::getenv("APOLLO_POPCNT");
        if (prev)
            saved_ = prev;
        if (value)
            setenv("APOLLO_POPCNT", value, 1);
        else if (prev)
            unsetenv("APOLLO_POPCNT");
    }
    ~ScopedPopcntEnv()
    {
        if (saved_)
            setenv("APOLLO_POPCNT", saved_->c_str(), 1);
        else
            unsetenv("APOLLO_POPCNT");
    }

  private:
    std::optional<std::string> saved_;
};

/**
 * One bit-parallel case, checked at every layer: the raw segment-sum
 * kernels per available implementation and window phase against the
 * naive per-cycle src/ref transcription; the quantized streaming
 * engine (bit-parallel and forced-legacy) against ref::opmSimulate
 * across a varied chunk schedule (windows straddle chunk boundaries
 * whenever the chunk size is not a multiple of T); the float windowed
 * stream against ref::predictWindowsProxies (the refactor must leave
 * the float path bit-identical too); and tau-invariance of Eq. (9)
 * inference for tau in {1, T, T+1}.
 */
std::optional<std::string>
checkBitParallelCase(const BitParallelCase &c, uint64_t seed)
{
    const QuantizedModel qm = apollo::quantizeModel(c.model, c.bits);

    // Raw kernels: every built+runnable impl, phases 0 / 1 / T-1.
    static constexpr popkernels::Impl kImpls[] = {
        popkernels::Impl::Scalar, popkernels::Impl::Avx2,
        popkernels::Impl::Avx512};
    std::vector<int64_t> segs;
    for (const popkernels::Impl impl : kImpls) {
        if (!popkernels::implAvailable(impl))
            continue;
        for (const uint32_t phase0 : {0u, 1u, c.T - 1}) {
            if (phase0 >= c.T)
                continue;
            opmSegmentSums(qm, c.T, phase0, c.Xq, c.Xq.rows(),
                           popkernels::implKernels(impl), segs);
            const std::vector<int64_t> want =
                ref::opmSegmentSums(qm, c.Xq, c.T, phase0);
            if (auto d = compareExactI64(
                    segs, want,
                    c.shape + fmt("+impl=%s+T=%u+phase0=%u",
                                  popkernels::implName(impl), c.T,
                                  phase0)))
                return d;
        }
    }

    // Quantized streaming: bit-parallel (default dispatch) and the
    // forced-legacy per-cycle path, both against the naive reference.
    const std::vector<float> want_q = ref::opmSimulate(qm, c.Xq, c.T);
    const size_t chunk = streamChunkCycles(seed);
    for (const char *mode : {static_cast<const char *>(nullptr), "off"}) {
        const ScopedPopcntEnv env(mode);
        MatrixChunkReader reader(c.Xq);
        VectorSink sink;
        const StreamingInference engine(qm, c.T);
        const StreamConfig config =
            StreamConfig().withChunkCycles(chunk);
        auto stats = engine.run(reader, sink, config);
        const std::string shape =
            c.shape + fmt("+stream[%s]+B=%u+T=%u+chunk=%zu",
                          mode ? mode : "auto", c.bits, c.T, chunk);
        if (!stats.ok())
            return fmt("shape=%s: run failed: %s", shape.c_str(),
                       stats.status().message().c_str());
        if (auto d = compareExact(sink.values(), want_q, shape))
            return d;
    }

    // Float windowed stream: unchanged by the bit-parallel refactor.
    {
        MatrixChunkReader reader(c.Xq);
        VectorSink sink;
        const StreamingInference engine(c.model);
        const StreamConfig config = StreamConfig()
                                        .withChunkCycles(chunk)
                                        .withWindowT(c.T);
        auto stats = engine.run(reader, sink, config);
        if (!stats.ok())
            return fmt("shape=%s: float run failed: %s",
                       c.shape.c_str(),
                       stats.status().message().c_str());
        const SegmentInfo whole{"trace", 0, c.Xq.rows()};
        const std::vector<float> want_f = ref::predictWindowsProxies(
            c.model, c.Xq, c.T,
            std::span<const SegmentInfo>(&whole, 1));
        if (auto d = compareExact(
                sink.values(), want_f,
                c.shape + fmt("+float+T=%u+chunk=%zu", c.T, chunk)))
            return d;
    }

    // Tau-invariance: tau only affects training; Eq. (9) inference for
    // tau in {1, T, T+1} must match the reference windows exactly.
    const SegmentInfo whole{"trace", 0, c.Xq.rows()};
    const bool have_window = c.Xq.rows() / c.T >= 1;
    const std::vector<float> want_w =
        have_window ? ref::predictWindowsProxies(
                          c.model, c.Xq, c.T,
                          std::span<const SegmentInfo>(&whole, 1))
                    : std::vector<float>{};
    for (const uint32_t tau : {1u, c.T, c.T + 1}) {
        const MultiCycleModel mc{c.model, tau};
        StatusOr<std::vector<float>> got = mc.predictWindowsProxies(
            c.Xq, c.T, std::span<const SegmentInfo>(&whole, 1));
        if (!have_window) {
            if (got.ok())
                return fmt("shape=%s: tau=%u: expected InvalidArgument "
                           "for zero windows",
                           c.shape.c_str(), tau);
            continue;
        }
        if (!got.ok())
            return fmt("shape=%s: tau=%u: predictWindowsProxies "
                       "failed: %s",
                       c.shape.c_str(), tau,
                       got.status().toString().c_str());
        if (auto d = compareExact(*got, want_w,
                                  c.shape + fmt("+tau=%u", tau)))
            return d;
    }
    return std::nullopt;
}

std::optional<std::string>
runStreamBitparallel(uint64_t seed)
{
    const BitParallelCase c0 = makeBitParallelCase(seed);
    auto check = [seed](const BitParallelCase &c) {
        return checkBitParallelCase(c, seed);
    };
    std::optional<std::string> detail = check(c0);
    if (!detail)
        return std::nullopt;

    const std::function<bool(const BitParallelCase &)> fails =
        [&](const BitParallelCase &c) { return check(c).has_value(); };
    const std::vector<std::function<bool(BitParallelCase &)>> mutators = {
        [](BitParallelCase &c) {
            if (c.Xq.rows() <= 1)
                return false;
            c.Xq = takeRows(c.Xq, c.Xq.rows() / 2);
            return true;
        },
        [](BitParallelCase &c) {
            if (c.Xq.cols() <= 1)
                return false;
            const size_t keep = c.Xq.cols() / 2;
            c.Xq = takeCols(c.Xq, keep);
            c.model.weights.resize(keep);
            c.model.proxyIds.resize(keep);
            return true;
        },
        [](BitParallelCase &c) {
            if (c.model.intercept == 0.0)
                return false;
            c.model.intercept = 0.0;
            return true;
        },
    };
    BitParallelCase s = shrinkCase(c0, fails, mutators);
    return *check(s) +
           fmt(" [shrunk to rows=%zu cols=%zu from rows=%zu cols=%zu]",
               s.Xq.rows(), s.Xq.cols(), c0.Xq.rows(), c0.Xq.cols());
}

/**
 * Differential check of the documented quantization error bound: the
 * integer OPM simulation must track the toFloatModel() Eq. (9) float
 * inference within one scale unit (the >> log2(T) truncation) plus
 * float rounding of the weight sums.
 */
std::optional<std::string>
runQuantizeRoundtrip(uint64_t seed)
{
    const QuantCase c = makeQuantCase(seed);
    StatusOr<QuantizedModel> quantized =
        tryQuantizeModel(c.model, c.bits);
    if (!quantized.ok())
        return fmt("shape=%s: tryQuantizeModel failed: %s",
                   c.shape.c_str(),
                   quantized.status().toString().c_str());
    const QuantizedModel &qm = *quantized;
    OpmSimulator sim(qm, c.T);
    const std::vector<float> opm = sim.simulate(c.Xq);

    const ApolloModel fm = qm.toFloatModel();
    const MultiCycleModel mc{fm, 1};
    const SegmentInfo whole{"trace", 0, c.Xq.rows()};
    StatusOr<std::vector<float>> windows = mc.predictWindowsProxies(
        c.Xq, c.T, std::span<const SegmentInfo>(&whole, 1));
    if (!windows.ok()) {
        // Fewer than T cycles: both paths must agree on emptiness.
        if (opm.empty())
            return std::nullopt;
        return fmt("shape=%s: float path empty but OPM emitted %zu "
                   "windows",
                   c.shape.c_str(), opm.size());
    }
    if (windows->size() != opm.size())
        return fmt("shape=%s: window count opm=%zu float=%zu",
                   c.shape.c_str(), opm.size(), windows->size());

    double weight_mass = 0.0;
    for (int32_t qw : qm.qweights)
        weight_mass += std::abs(qw) * qm.scale;
    const double tol = qm.scale +
                       1e-4 * (std::abs(fm.intercept) + weight_mass) +
                       1e-9;
    for (size_t i = 0; i < opm.size(); ++i) {
        const double diff = std::abs(static_cast<double>(opm[i]) -
                                     static_cast<double>((*windows)[i]));
        if (diff > tol)
            return fmt("shape=%s: window %zu opm=%a float=%a diff=%.3e "
                       "> tol=%.3e (B=%u T=%u scale=%a)",
                       c.shape.c_str(), i, static_cast<double>(opm[i]),
                       static_cast<double>((*windows)[i]), diff, tol,
                       c.bits, c.T, qm.scale);
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Solver paths (KKT certificate + objective agreement).
// ---------------------------------------------------------------------

/**
 * Certify a production fit against the naive reference. The KKT slack
 * scales with the column count: the production sweep stops when every
 * coordinate delta (scaled by sqrt(a_j)) is below tol_abs =
 * tol * std(y), and each later same-sweep update can move another
 * column's fixed-point residual by at most tol_abs * sqrt(a_k)
 * (Cauchy-Schwarz on <x_j, x_k>/N), so the post-convergence residual
 * is bounded by O(m) * tol_abs.
 */
std::optional<std::string>
checkSolver(const FeatureView &X, std::span<const float> y,
            const CdConfig &cfg, const CdResult &prod,
            const std::string &shape)
{
    const size_t m = X.cols();
    if (prod.w.size() != m)
        return fmt("shape=%s: weight arity %zu != cols %zu",
                   shape.c_str(), prod.w.size(), m);
    for (size_t j = 0; j < m; ++j) {
        if (!std::isfinite(prod.w[j]))
            return fmt("shape=%s: non-finite w[%zu]", shape.c_str(), j);
        if (cfg.penalty.nonneg && prod.w[j] < 0.0f)
            return fmt("shape=%s: nonneg violated: w[%zu]=%a",
                       shape.c_str(), j,
                       static_cast<double>(prod.w[j]));
        if (X.sumSquares(j) <= 0.0 && prod.w[j] != 0.0f)
            return fmt("shape=%s: dead column %zu got weight %a",
                       shape.c_str(), j,
                       static_cast<double>(prod.w[j]));
    }
    if (!std::isfinite(prod.intercept))
        return fmt("shape=%s: non-finite intercept", shape.c_str());
    if (!prod.converged)
        return std::nullopt; // only invariants for capped fits

    const auto n = static_cast<double>(X.rows());
    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= n;
    double var = 0.0;
    for (float v : y)
        var += (v - mu) * (v - mu);
    double y_std = std::sqrt(var / n);
    if (y_std <= 0.0)
        y_std = 1.0;
    const double tol_abs = cfg.tol * y_std;
    const double kkt_slack =
        (4.0 + 2.0 * static_cast<double>(m)) * tol_abs + 1e-12;

    const double kkt = ref::kktViolation(X, y, prod.w, prod.intercept,
                                         cfg.penalty);
    if (kkt > kkt_slack)
        return fmt("shape=%s: KKT violation %.3e > slack %.3e "
                   "(tol_abs=%.3e, m=%zu)",
                   shape.c_str(), kkt, kkt_slack, tol_abs, m);

    const ref::RefFitResult rf = ref::fit(X, y, cfg);
    if (!rf.converged)
        return std::nullopt; // no trustworthy objective target

    std::vector<float> rw(rf.w.begin(), rf.w.end());
    const double obj_prod = ref::objective(X, y, prod.w,
                                           prod.intercept, cfg.penalty);
    const double obj_ref =
        ref::objective(X, y, rw, rf.intercept, cfg.penalty);
    const double obj_scale = 1.0 + std::abs(obj_ref);
    if (cfg.penalty.kind == PenaltyKind::Mcp) {
        // Non-convex: different sweep orders may settle in different
        // coordinate-wise optima; only gross regressions are bugs.
        if (obj_prod > obj_ref + 5e-2 * obj_scale)
            return fmt("shape=%s: MCP objective %.9g far above "
                       "reference %.9g",
                       shape.c_str(), obj_prod, obj_ref);
    } else if (std::abs(obj_prod - obj_ref) > 5e-3 * obj_scale) {
        return fmt("shape=%s: objective prod=%.9g ref=%.9g differ "
                   "beyond tolerance",
                   shape.c_str(), obj_prod, obj_ref);
    }
    return std::nullopt;
}

std::optional<std::string>
runCdBits(uint64_t seed)
{
    const SolverCase sc = makeSolverCase(seed);
    const BitFeatureView X(sc.X);
    CdSolver solver(X, sc.y, CdSolver::Options{.parallel = false});
    const CdResult prod = solver.fit(sc.cfg);
    return checkSolver(X, sc.y, sc.cfg, prod, sc.shape + "+bits");
}

std::optional<std::string>
runCdCounts(uint64_t seed)
{
    const SolverCase sc = makeSolverCase(seed);
    const size_t n = sc.X.rows();
    const size_t m = sc.X.cols();
    // Tau-interval toggle counts in 1..4 wherever the bit case
    // toggled, scaled by 1/tau like the training flow.
    CountColumnMatrix counts(n, m);
    for (size_t j = 0; j < m; ++j)
        for (size_t i = 0; i < n; ++i)
            if (sc.X.get(i, j))
                counts.set(i, j,
                           static_cast<uint8_t>(1 + (i + 3 * j) % 4));
    const CountFeatureView X(counts, 0.25f);
    CdSolver solver(X, sc.y, CdSolver::Options{.parallel = false});
    const CdResult prod = solver.fit(sc.cfg);
    return checkSolver(X, sc.y, sc.cfg, prod, sc.shape + "+counts");
}

std::optional<std::string>
runCdDense(uint64_t seed)
{
    const SolverCase sc = makeSolverCase(seed);
    const size_t n = sc.X.rows();
    const size_t m = sc.X.cols();
    DenseColumnMatrix dense(n, m);
    Xoshiro256StarStar rng(hashMix(seed ^ 0xd15e));
    for (size_t j = 0; j < m; ++j)
        for (size_t i = 0; i < n; ++i)
            if (sc.X.get(i, j))
                dense.set(i, j,
                          static_cast<float>(rng.nextRange(0.1, 1.5)));
    const DenseFeatureView X(dense);
    CdSolver solver(X, sc.y, CdSolver::Options{.parallel = false});
    const CdResult prod = solver.fit(sc.cfg);
    return checkSolver(X, sc.y, sc.cfg, prod, sc.shape + "+dense");
}

std::optional<std::string>
runTargetQ(uint64_t seed)
{
    const TargetQCase tc = makeTargetQCase(seed);
    const BitFeatureView X(tc.X);
    CdSolver solver(X, tc.y, CdSolver::Options{.parallel = false});

    CdConfig base;
    base.penalty.kind = (hashMix(seed ^ 0x51) % 2) == 0
                            ? PenaltyKind::Lasso
                            : PenaltyKind::Mcp;
    base.penalty.nonneg = (hashMix(seed ^ 0x52) % 3) == 0;

    TargetQDiagnostics diag;
    const CdResult res =
        solveForTargetQ(solver, base, tc.targetQ, &diag);
    const std::string shape =
        tc.shape + fmt("+targetQ=%zu", tc.targetQ);

    if (res.nonzeros() > tc.targetQ)
        return fmt("shape=%s: support %zu exceeds target %zu",
                   shape.c_str(), res.nonzeros(), tc.targetQ);
    if (res.nonzeros() == 0)
        return fmt("shape=%s: empty support for informative design",
                   shape.c_str());
    if (!(diag.lambda > 0.0) || !std::isfinite(diag.lambda))
        return fmt("shape=%s: bad search lambda %g", shape.c_str(),
                   diag.lambda);
    for (float w : res.w)
        if (!std::isfinite(w))
            return fmt("shape=%s: non-finite weight", shape.c_str());
    if (base.penalty.nonneg)
        for (float w : res.w)
            if (w < 0.0f)
                return fmt("shape=%s: nonneg violated", shape.c_str());

    if (!diag.trimmed && res.converged) {
        PenaltyConfig at_lambda = base.penalty;
        at_lambda.lambda = diag.lambda;
        const CdConfig cfg_here{.penalty = at_lambda,
                                .tol = base.tol};
        return checkSolver(X, tc.y, cfg_here, res, shape);
    }
    return std::nullopt;
}

/**
 * Out-of-core sharded screen pass (docs/INTERNALS.md §13) against its
 * naive src/ref transcription, at every solver shape class. Checked
 * properties, strongest first:
 *  - the sharded per-column stats are bit-identical to the production
 *    kernels run on the in-RAM matrix (same words, same kernels — the
 *    determinism contract), and within accumulation-order rounding of
 *    the per-bit double reference (popcounts integer-exact);
 *  - the first-path-point strong-rule admission counters transcribe
 *    the solver's own admission arithmetic exactly, and agree with the
 *    naive reference on every column whose decision margin exceeds
 *    the dot-rounding band;
 *  - a seeded first-path-point fit through the mmap-backed view is
 *    bit-identical to the unsharded solver, and its solution carries
 *    an independent naive KKT certificate — in particular every
 *    screened-out (never-swept) column is provably optimal at zero.
 */
std::optional<std::string>
runShardPrefilter(uint64_t seed)
{
    const SolverCase sc = makeSolverCase(seed);
    const size_t n = sc.X.rows();
    const size_t m = sc.X.cols();
    const auto nD = static_cast<double>(n);

    // Shard the case's matrix with seed-varied shard count and write
    // block granularity; clean the files up on every exit path.
    const uint32_t shards = static_cast<uint32_t>(
        1 + hashMix(seed ^ 0x5aad) % std::min<uint64_t>(5, m));
    const size_t block = 1 + hashMix(seed ^ 0xb10c) % 7;
    const auto dir = std::filesystem::temp_directory_path() /
                     fmt("apollo_oracle_shards_%ld",
                         static_cast<long>(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string base =
        (dir / fmt("case_%016llx",
                   static_cast<unsigned long long>(seed)))
            .string();
    struct Cleanup
    {
        std::string base;
        uint32_t shards;
        ~Cleanup()
        {
            for (uint32_t k = 0; k < shards; ++k)
                std::filesystem::remove(shardPath(base, k));
        }
    } cleanup{base, shards};

    const Status saved = saveShardedMatrix(base, sc.X, shards, block);
    if (!saved.ok())
        return fmt("shape=%s: shard write failed: %s", sc.shape.c_str(),
                   saved.toString().c_str());
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    if (!set.ok())
        return fmt("shape=%s: shard open failed: %s", sc.shape.c_str(),
                   set.status().toString().c_str());

    ShardedFeatureView view(*set,
                            {.parallel = false, .pool = nullptr});
    if (const Status st = view.screen(sc.y); !st.ok())
        return fmt("shape=%s: screen failed: %s", sc.shape.c_str(),
                   st.toString().c_str());
    const ShardScreenStats &prod = view.stats();
    const std::string shape =
        sc.shape + fmt("+K=%u+block=%zu", shards, block);

    // Bit-identity vs the production kernels on the resident matrix.
    // gradY is taken at the centered cold residual — the labels after
    // the solver's first intercept update: the double label mean
    // narrowed to float, subtracted in float.
    double label_mu = 0.0;
    for (const float v : sc.y)
        label_mu += v;
    label_mu /= nD;
    const auto label_muf = static_cast<float>(label_mu);
    std::vector<float> yc_cold(n);
    for (size_t i = 0; i < n; ++i)
        yc_cold[i] = sc.y[i] - label_muf;
    const BitFeatureView bits(sc.X);
    for (size_t j = 0; j < m; ++j) {
        if (static_cast<double>(prod.popcount[j]) != bits.sumSquares(j))
            return fmt("shape=%s: popcount[%zu]=%llu != kernel %g",
                       shape.c_str(), j,
                       static_cast<unsigned long long>(prod.popcount[j]),
                       bits.sumSquares(j));
        const double kernel_dot = bits.dot(j, yc_cold.data());
        if (prod.popcount[j] > 0 && prod.gradY[j] != kernel_dot)
            return fmt("shape=%s: gradY[%zu]=%a != kernel dot %a",
                       shape.c_str(), j, prod.gradY[j], kernel_dot);
    }
    CdSolver plain(bits, sc.y,
                   CdSolver::Options{.parallel = false});
    if (prod.lambdaMax != plain.lambdaMax())
        return fmt("shape=%s: lambdaMax %a != solver's own pass %a",
                   shape.c_str(), prod.lambdaMax, plain.lambdaMax());

    // Accumulation-order tolerance vs the naive per-bit reference.
    const ref::RefScreenStats want = ref::screenStats(bits, sc.y);
    double ynorm2 = 0.0;
    for (const float v : sc.y)
        ynorm2 += static_cast<double>(v) * v;
    const double ynorm = std::sqrt(ynorm2);
    for (size_t j = 0; j < m; ++j) {
        if (prod.popcount[j] != want.popcount[j])
            return fmt("shape=%s: popcount[%zu] prod=%llu ref=%llu",
                       shape.c_str(), j,
                       static_cast<unsigned long long>(prod.popcount[j]),
                       static_cast<unsigned long long>(want.popcount[j]));
        const double xnorm =
            std::sqrt(static_cast<double>(want.popcount[j]));
        const double tol = 1e-9 * (1.0 + xnorm * ynorm);
        if (std::abs(prod.gradY[j] - want.gradY[j]) > tol)
            return fmt("shape=%s: gradY[%zu] prod=%a ref=%a (tol %.3e)",
                       shape.c_str(), j, prod.gradY[j], want.gradY[j],
                       tol);
    }
    if (std::abs(prod.lambdaMax - want.lambdaMax) >
        1e-9 * (1.0 + want.lambdaMax + ynorm))
        return fmt("shape=%s: lambdaMax prod=%a ref=%a", shape.c_str(),
                   prod.lambdaMax, want.lambdaMax);

    // Admission accounting: the per-shard counters must transcribe the
    // production rule exactly, and agree with the naive reference on
    // every column whose margin clears the dot-rounding band.
    const double factor = PathConfig{}.lambdaFactor;
    const std::vector<uint64_t> prod_admit =
        prod.admittedAtFirstPoint(factor);
    const std::vector<bool> ref_admit =
        ref::admittedAtFirstPoint(want, n, factor);
    constexpr double kSlack = 1.0 + 1e-8;
    const double thresh_prod =
        (2.0 * factor - 1.0) * prod.lambdaMax * nD;
    const double thresh_ref =
        (2.0 * factor - 1.0) * want.lambdaMax * nD;
    std::vector<uint64_t> recount(shards, 0);
    for (size_t j = 0; j < m; ++j) {
        const bool admitted =
            prod.popcount[j] > 0 &&
            (thresh_prod <= 0.0 ||
             std::abs(prod.gradY[j]) * kSlack >= thresh_prod);
        if (admitted)
            recount[set->shardOf(j)]++;
        const double xnorm =
            std::sqrt(static_cast<double>(want.popcount[j]));
        const double band =
            1e-7 * (1.0 + xnorm * ynorm + thresh_ref);
        const bool borderline =
            std::abs(std::abs(want.gradY[j]) * kSlack - thresh_ref) <=
            band;
        if (!borderline && admitted != ref_admit[j])
            return fmt("shape=%s: admission[%zu] prod=%d ref=%d "
                       "(|gradY|=%a thresh=%a)",
                       shape.c_str(), j, admitted ? 1 : 0,
                       ref_admit[j] ? 1 : 0,
                       std::abs(want.gradY[j]), thresh_ref);
    }
    for (uint32_t k = 0; k < shards; ++k)
        if (prod_admit[k] != recount[k])
            return fmt("shape=%s: shard %u admitted=%llu, per-column "
                       "recount=%llu",
                       shape.c_str(), k,
                       static_cast<unsigned long long>(prod_admit[k]),
                       static_cast<unsigned long long>(recount[k]));

    // First path point: a seeded fit through the mmap-backed view must
    // be bit-identical to the unsharded solver, and the solution must
    // carry an independent naive zero-certificate (every never-swept
    // column is optimal at zero).
    if (prod.lambdaMax <= 0.0)
        return std::nullopt; // constant labels: no path to anchor
    CdConfig cfg = sc.cfg;
    if (cfg.penalty.kind != PenaltyKind::Lasso &&
        cfg.penalty.kind != PenaltyKind::Mcp)
        cfg.penalty.kind = PenaltyKind::Lasso;
    cfg.penalty.lambda = factor * prod.lambdaMax;
    cfg.screen = true;
    cfg.screenLambdaRef = prod.lambdaMax;
    // The seed contract models the centered cold residual an intercept
    // fit screens at (every path driver fits one).
    cfg.fitIntercept = true;

    const CdResult want_fit = plain.fit(cfg);
    SolverSeed seedv;
    seedv.gradY = prod.gradY;
    seedv.lambdaMax = prod.lambdaMax;
    CdSolver sharded(view, sc.y,
                     CdSolver::Options{.parallel = false},
                     std::move(seedv));
    const CdResult got = sharded.fit(cfg);
    if (got.w != want_fit.w || got.intercept != want_fit.intercept)
        return fmt("shape=%s: sharded fit differs from unsharded "
                   "(support %zu vs %zu)",
                   shape.c_str(), got.nonzeros(), want_fit.nonzeros());
    if (got.sweeps != want_fit.sweeps ||
        got.strongSize != want_fit.strongSize)
        return fmt("shape=%s: sharded fit trajectory differs "
                   "(sweeps %u vs %u, strong %u vs %u)",
                   shape.c_str(), got.sweeps, want_fit.sweeps,
                   got.strongSize, want_fit.strongSize);
    return checkSolver(bits, sc.y, cfg, got, shape + "+first-point");
}

// ---------------------------------------------------------------------
// GA training-data generation paths (exact comparison).
// ---------------------------------------------------------------------

/** Exact double comparison; NaN anywhere is a failure. */
std::optional<std::string>
compareExactD(std::span<const double> prod, std::span<const double> want,
              const std::string &shape)
{
    if (prod.size() != want.size())
        return fmt("shape=%s: size mismatch prod=%zu ref=%zu",
                   shape.c_str(), prod.size(), want.size());
    for (size_t i = 0; i < prod.size(); ++i)
        if (prod[i] != want[i] || std::isnan(prod[i]))
            return fmt("shape=%s: element %zu: prod=%a ref=%a",
                       shape.c_str(), i, prod[i], want[i]);
    return std::nullopt;
}

std::optional<std::string>
runToggleColumns(uint64_t seed)
{
    const GaCase c = makeGaCase(seed);
    const ActivityEngine engine(c.netlist);
    ToggleColumnGenerator gen(engine);
    gen.bind(c.frames);
    const size_t n = c.frames.size();
    std::vector<uint64_t> col(gen.wordCount());
    for (uint32_t sig = 0; sig < c.netlist.signalCount(); ++sig) {
        gen.fillColumn(sig, col.data());
        const std::vector<uint8_t> want =
            ref::toggleColumn(engine, c.frames, sig);
        for (size_t i = 0; i < n; ++i) {
            const bool prod = (col[i >> 6] >> (i & 63)) & 1;
            if (prod != static_cast<bool>(want[i]))
                return fmt("shape=%s: sig=%u kind=%d cycle=%zu "
                           "prod=%d ref=%d",
                           c.shape.c_str(), sig,
                           static_cast<int>(c.netlist.signal(sig).kind),
                           i, prod, static_cast<int>(want[i]));
        }
        if (n & 63) {
            const uint64_t tail = col[n >> 6] >> (n & 63);
            if (tail != 0)
                return fmt("shape=%s: sig=%u tail bits set", c.shape.c_str(),
                           sig);
        }
    }
    return std::nullopt;
}

std::optional<std::string>
runFitnessPower(uint64_t seed)
{
    const GaCase c = makeGaCase(seed);
    const ActivityEngine engine(c.netlist);
    const PowerOracle oracle(c.netlist, PowerParams{});
    const std::vector<double> want = ref::fitnessCyclePowers(
        c.netlist, engine, oracle, c.frames, c.stride);
    const double want_avg = ref::fitnessAveragePower(
        c.netlist, engine, oracle, c.frames, c.stride);

    for (const bool vectorized : {true, false}) {
        FitnessOptions options;
        options.signalStride = c.stride;
        options.vectorized = vectorized;
        FitnessEvaluator eval(c.netlist, engine, oracle, options);
        std::vector<double> prod;
        eval.cyclePowers(c.frames, prod);
        const std::string shape =
            c.shape + (vectorized ? "+vec" : "+scalar") +
            fmt("+stride=%u", c.stride);
        if (auto d = compareExactD(prod, want, shape))
            return d;
        const double avg = eval.averagePower(c.frames);
        if (avg != want_avg || std::isnan(avg))
            return fmt("shape=%s: average prod=%a ref=%a",
                       shape.c_str(), avg, want_avg);
    }
    return std::nullopt;
}

std::optional<std::string>
runGaPipeline(uint64_t seed)
{
    const GaRunCase c = makeGaRunCase(seed);
    if (c.expectError) {
        const Status st = c.ga.validate();
        if (st.ok())
            return fmt("shape=%s: expected InvalidArgument, got OK",
                       c.shape.c_str());
        if (st.code() != StatusCode::InvalidArgument)
            return fmt("shape=%s: expected InvalidArgument, got %s",
                       c.shape.c_str(), st.toString().c_str());
        return std::nullopt;
    }

    DatasetBuilder builder(c.netlist, c.coreParams);
    GaGenerator ga(builder, c.ga);
    ga.run();
    const std::vector<GaIndividual> &all = ga.all();
    const GaRunStats &stats = ga.stats();
    const std::string &shape = c.shape;

    if (all.size() !=
        static_cast<size_t>(c.ga.populationSize) * c.ga.generations)
        return fmt("shape=%s: %zu individuals, expected %u*%u",
                   shape.c_str(), all.size(), c.ga.populationSize,
                   c.ga.generations);
    if (stats.evaluations != stats.cacheMisses)
        return fmt("shape=%s: evaluations=%llu != misses=%llu",
                   shape.c_str(),
                   static_cast<unsigned long long>(stats.evaluations),
                   static_cast<unsigned long long>(stats.cacheMisses));
    if (stats.cacheHits + stats.cacheMisses != all.size())
        return fmt("shape=%s: hits+misses=%llu != individuals=%zu",
                   shape.c_str(),
                   static_cast<unsigned long long>(stats.cacheHits +
                                                   stats.cacheMisses),
                   all.size());

    // Certify recorded fitness values — cached or not — against an
    // independent serial re-simulation and the src/ref fitness oracle;
    // captured frames must equal the re-simulated ones exactly.
    const size_t step = std::max<size_t>(1, all.size() / 10);
    for (size_t k = 0; k < all.size(); k += step) {
        const GaIndividual &ind = all[k];
        if (ind.id != k)
            return fmt("shape=%s: all()[%zu].id == %zu", shape.c_str(),
                       k, ind.id);
        const Program prog = GaGenerator::toProgram(
            ind, "ga",
            GaGenerator::fitnessIterations(ind.body.size(),
                                           c.ga.fitnessCycles));
        TimingCore core(builder.coreParams());
        std::vector<ActivityFrame> frames;
        core.run(prog, c.ga.fitnessCycles,
                 [&](const ActivityFrame &f) { frames.push_back(f); });
        const double want = ref::fitnessAveragePower(
            c.netlist, builder.engine(), builder.oracle(), frames,
            c.ga.fitnessSignalStride);
        if (ind.avgPower != want || std::isnan(ind.avgPower))
            return fmt("shape=%s: individual %zu (gen %u): fitness "
                       "prod=%a ref=%a",
                       shape.c_str(), k, ind.generation, ind.avgPower,
                       want);

        const std::span<const ActivityFrame> captured =
            ga.capturedFrames(ind.id);
        if (!c.ga.captureFrames) {
            if (!captured.empty())
                return fmt("shape=%s: frames captured with capture off",
                           shape.c_str());
        } else {
            if (captured.size() != frames.size())
                return fmt("shape=%s: individual %zu: captured %zu "
                           "frames, re-sim %zu",
                           shape.c_str(), k, captured.size(),
                           frames.size());
            for (size_t i = 0; i < frames.size(); ++i) {
                const ActivityFrame &a = captured[i];
                const ActivityFrame &b = frames[i];
                if (a.cycle != b.cycle ||
                    a.activity != b.activity ||
                    a.clockEnabled != b.clockEnabled ||
                    a.dataToggle != b.dataToggle)
                    return fmt("shape=%s: individual %zu: captured "
                               "frame %zu differs from re-sim",
                               shape.c_str(), k, i);
            }
        }
    }

    // Selection edge shapes: zero-count and over-count draws.
    if (!ga.selectTrainingSet(0).empty())
        return fmt("shape=%s: selectTrainingSet(0) not empty",
                   shape.c_str());
    const auto over = ga.selectTrainingSet(all.size() + 7);
    if (over.size() != all.size())
        return fmt("shape=%s: over-count selection %zu != %zu",
                   shape.c_str(), over.size(), all.size());
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Control path (droop trigger/engage state machine).
// ---------------------------------------------------------------------

/**
 * A generated controller case: an OPM output stream with a valid mask
 * (all-valid, every-T, or randomly gapped) plus controller parameters.
 * Power walks randomly with occasional spikes so the differenced
 * current crosses the trigger in both directions; the trigger delta is
 * drawn from the same scale so some cases trigger densely (window
 * merging) and some never.
 */
struct ControlCase
{
    std::vector<float> power;
    std::vector<uint8_t> valid;
    ref::ControlParams params;
    ThrottleMode policy = ThrottleMode::Scheme1;
    uint32_t level = 1;
    std::string shape;
};

ControlCase
makeControlCase(uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    ControlCase c;
    const size_t n = 50 + rng.nextBounded(351);
    c.params.vdd = rng.nextRange(0.6, 0.9);
    c.params.triggerLatency = static_cast<uint32_t>(rng.nextBounded(5));
    c.params.engageCycles =
        1 + static_cast<uint32_t>(rng.nextBounded(8));
    c.params.triggerDelta = rng.nextRange(0.02, 0.8);

    static constexpr ThrottleMode kPolicies[] = {
        ThrottleMode::Scheme1, ThrottleMode::Scheme2,
        ThrottleMode::Scheme3, ThrottleMode::Proportional};
    c.policy = kPolicies[rng.nextBounded(4)];
    c.level = 1 + static_cast<uint32_t>(rng.nextBounded(3));

    const uint64_t valid_shape = rng.nextBounded(3);
    c.valid.assign(n, 1);
    if (valid_shape == 1) {
        const uint32_t T = 1u << (1 + rng.nextBounded(3));
        for (size_t i = 0; i < n; ++i)
            c.valid[i] = ((i + 1) % T == 0) ? 1 : 0;
        c.shape = "everyT" + std::to_string(T);
    } else if (valid_shape == 2) {
        for (size_t i = 0; i < n; ++i)
            c.valid[i] = rng.nextBounded(4) != 0 ? 1 : 0;
        c.shape = "gapped";
    } else {
        c.shape = "all_valid";
    }
    c.shape += "_n" + std::to_string(n);

    double p = rng.nextRange(0.1, 0.6);
    c.power.resize(n);
    for (size_t i = 0; i < n; ++i) {
        p += rng.nextRange(-0.08, 0.08);
        if (rng.nextBounded(12) == 0)
            p += rng.nextRange(0.2, 0.9); // burst onset
        if (rng.nextBounded(12) == 0)
            p -= rng.nextRange(0.2, 0.9); // back to idle
        p = std::clamp(p, 0.05, 1.5);
        c.power[i] = static_cast<float>(p);
    }
    return c;
}

/** Replay one case through DroopController + Throttle vs the naive
 *  reference transcript. */
std::optional<std::string>
checkControlCase(const ControlCase &c)
{
    control::DroopControllerConfig cfg;
    cfg.vdd = c.params.vdd;
    cfg.triggerDelta = c.params.triggerDelta;
    cfg.triggerLatency = c.params.triggerLatency;
    cfg.engageCycles = c.params.engageCycles;
    cfg.policy = c.policy;
    cfg.proportionalLevel = c.level;
    control::DroopController ctl(cfg);
    Throttle throttle;

    const size_t n = c.power.size();
    std::vector<uint8_t> engaged(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (c.valid[i])
            ctl.observe(i, static_cast<double>(c.power[i]));
        ctl.apply(i, throttle);
        engaged[i] = throttle.engaged() ? 1 : 0;
    }

    const ref::ControlTranscript want =
        ref::droopControlTranscript(c.power, c.valid, c.params);
    if (ctl.triggers() != want.triggers)
        return fmt("shape=%s: triggers prod=%llu ref=%llu",
                   c.shape.c_str(),
                   static_cast<unsigned long long>(ctl.triggers()),
                   static_cast<unsigned long long>(want.triggers));
    for (size_t i = 0; i < n; ++i)
        if (engaged[i] != want.engaged[i])
            return fmt("shape=%s: cycle %zu engaged prod=%d ref=%d "
                       "(L=%u E=%u)",
                       c.shape.c_str(), i, engaged[i], want.engaged[i],
                       c.params.triggerLatency, c.params.engageCycles);
    if (ctl.engagedCycles() != want.engagedCycles)
        return fmt("shape=%s: engagedCycles prod=%llu ref=%llu",
                   c.shape.c_str(),
                   static_cast<unsigned long long>(ctl.engagedCycles()),
                   static_cast<unsigned long long>(want.engagedCycles));
    return std::nullopt;
}

std::optional<std::string>
runDroopTrigger(uint64_t seed)
{
    ControlCase c = makeControlCase(seed);
    std::optional<std::string> detail = checkControlCase(c);
    if (!detail)
        return std::nullopt;

    const std::function<bool(const ControlCase &)> stillFails =
        [](const ControlCase &trial) {
            return checkControlCase(trial).has_value();
        };
    const std::vector<std::function<bool(ControlCase &)>> mutators = {
        [](ControlCase &trial) { // halve the stream
            if (trial.power.size() <= 4)
                return false;
            trial.power.resize(trial.power.size() / 2);
            trial.valid.resize(trial.power.size());
            return true;
        },
        [](ControlCase &trial) { // drop the reaction latency
            if (trial.params.triggerLatency == 0)
                return false;
            trial.params.triggerLatency = 0;
            return true;
        },
        [](ControlCase &trial) { // shortest engage window
            if (trial.params.engageCycles == 1)
                return false;
            trial.params.engageCycles = 1;
            return true;
        },
        [](ControlCase &trial) { // simplest policy
            if (trial.policy == ThrottleMode::Scheme1)
                return false;
            trial.policy = ThrottleMode::Scheme1;
            return true;
        },
    };
    c = shrinkCase(std::move(c), stillFails, mutators);
    detail = checkControlCase(c);
    if (!detail)
        return fmt("shape=%s: shrink lost the failure", c.shape.c_str());
    return fmt("%s [shrunk to n=%zu]", detail->c_str(),
               c.power.size());
}

} // namespace

const std::vector<OracleEntry> &
oracleRegistry()
{
    static const std::vector<OracleEntry> registry = {
        {"infer.batch_proxies", runBatchProxies},
        {"infer.batch_full", runBatchFull},
        {"infer.windows_eq9", runWindowsEq9},
        {"infer.stream_percycle", runStreamPerCycle},
        {"infer.stream_windows", runStreamWindows},
        {"opm.quantize", runQuantize},
        {"opm.quantize_roundtrip", runQuantizeRoundtrip},
        {"opm.simulate", runOpmSimulate},
        {"opm.stream_quantized", runStreamQuantized},
        {"stream.bitparallel_vs_scalar", runStreamBitparallel},
        {"solver.cd_bits", runCdBits},
        {"solver.cd_counts", runCdCounts},
        {"solver.cd_dense", runCdDense},
        {"solver.target_q", runTargetQ},
        {"solver.shard_prefilter", runShardPrefilter},
        {"gen.toggle_columns", runToggleColumns},
        {"gen.fitness_power", runFitnessPower},
        {"gen.ga_pipeline", runGaPipeline},
        {"control.droop_trigger", runDroopTrigger},
    };
    return registry;
}

} // namespace apollo::harness
