/**
 * @file
 * Deterministic seeded case generation for the differential-oracle
 * harness (docs/INTERNALS.md §8). Every case is a pure function of one
 * 64-bit seed: the seed picks a shape class (nominal random shapes
 * interleaved with adversarial ones — Q=1, all-zero columns, duplicate
 * columns, constant labels, single-cycle traces, dense/near-empty
 * matrices) and then drives a private Xoshiro stream for the contents.
 * Re-running any failing case therefore needs only its seed, which the
 * differential runner prints as a one-line replay command.
 */

#ifndef APOLLO_TESTS_HARNESS_CASE_GEN_HH
#define APOLLO_TESTS_HARNESS_CASE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/apollo_model.hh"
#include "gen/ga_generator.hh"
#include "ml/coordinate_descent.hh"
#include "rtl/design_builder.hh"
#include "trace/dataset.hh"
#include "uarch/core.hh"
#include "util/bitvec.hh"
#include "util/rng.hh"

namespace apollo::harness {

/** Random rows x cols toggle matrix with the given bit density. */
BitColumnMatrix randomBits(Xoshiro256StarStar &rng, size_t rows,
                           size_t cols, double density);

/**
 * A generated inference case: a model over Q proxies, a proxy-layout
 * trace, a power-of-two window size, and segment metadata covering the
 * trace. Shapes rotate through nominal and adversarial classes.
 */
struct InferCase
{
    ApolloModel model;
    BitColumnMatrix Xq;
    uint32_t T = 1;
    std::vector<SegmentInfo> segments;
    std::string shape; ///< human-readable shape class for diagnostics
};

InferCase makeInferCase(uint64_t seed);

/** A generated quantization case: float model + bit width + trace. */
struct QuantCase
{
    ApolloModel model;
    uint32_t bits = 10;
    uint32_t T = 1;
    BitColumnMatrix Xq;
    std::string shape;
};

QuantCase makeQuantCase(uint64_t seed);

/**
 * A generated solver case: binary design matrix, labels with planted
 * linear structure plus noise, and a full CdConfig (penalty family,
 * lambda as a fraction of the case's own naive lambdaMax, nonneg flag,
 * tolerance). Adversarial classes include all-zero columns, duplicated
 * columns, constant labels, and single-active-column designs.
 */
struct SolverCase
{
    BitColumnMatrix X;
    std::vector<float> y;
    CdConfig cfg;
    std::string shape;
};

SolverCase makeSolverCase(uint64_t seed);

/**
 * A generated target-Q case: informative design + label pair plus a
 * requested support size (>= 1, well below the column count).
 */
struct TargetQCase
{
    BitColumnMatrix X;
    std::vector<float> y;
    size_t targetQ = 1;
    std::string shape;
};

TargetQCase makeTargetQCase(uint64_t seed);

/**
 * A generated bit-parallel streaming case: float model + quantizer bit
 * width + proxy trace + power-of-two window. Shape classes target the
 * packed 64-cycle kernels specifically: proxy counts at and around
 * word multiples (63/64/65/127/128/129, and ~150 like the reference
 * OPM), trace lengths at word boundaries (0/1/63/64/65/...), windows
 * below the bit-parallel threshold (T in {1, 2} — legacy path), the
 * word-aligned fast paths (T in {64, 128, 256}), and the vectorized
 * T = 32 path.
 */
struct BitParallelCase
{
    ApolloModel model;
    uint32_t bits = 10;
    uint32_t T = 4;
    BitColumnMatrix Xq;
    std::string shape;
};

BitParallelCase makeBitParallelCase(uint64_t seed);

/** Chunk-size schedule for streaming cases (varied, includes 1). */
size_t streamChunkCycles(uint64_t seed);

/**
 * A generated toggle/fitness case: a miniature random design plus a
 * synthetic frame segment (arbitrary activities/enables/data — more
 * adversarial than core-produced frames) and a signal-sampling stride.
 * Adversarial classes include gate-threshold activities (~0.999),
 * mostly-disabled units, non-contiguous cycle numbers, single-cycle
 * and word-boundary segment lengths, and stride > signal count.
 */
struct GaCase
{
    Netlist netlist;
    std::vector<ActivityFrame> frames;
    uint32_t stride = 1;
    std::string shape;
};

GaCase makeGaCase(uint64_t seed);

/**
 * A generated GA-run case: a miniature design plus a full GaConfig
 * (small budgets) and core parameters with a short warm-up. Shape
 * classes cover duplicate-heavy populations (zero mutation/crossover,
 * near-full elitism), the minimal population, disabled cache/capture/
 * vectorization, multiple thread counts, stride > signal count, and
 * invalid configurations (expectError set — validate() must reject).
 */
struct GaRunCase
{
    Netlist netlist;
    CoreParams coreParams;
    GaConfig ga;
    bool expectError = false;
    std::string shape;
};

GaRunCase makeGaRunCase(uint64_t seed);

} // namespace apollo::harness

#endif // APOLLO_TESTS_HARNESS_CASE_GEN_HH
