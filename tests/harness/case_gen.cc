#include "harness/case_gen.hh"

#include <algorithm>
#include <cmath>

#include "ml/feature_view.hh"
#include "ref/reference_solver.hh"

namespace apollo::harness {

namespace {

/** Power of two <= bound (>= 1). */
uint32_t
randomPowerOfTwo(Xoshiro256StarStar &rng, uint32_t bound)
{
    uint32_t max_log = 0;
    while ((2u << max_log) <= bound && max_log < 10)
        max_log++;
    return 1u << rng.nextBounded(max_log + 1);
}

/** Split [0, rows) into 1..3 segments (each nonempty). */
std::vector<SegmentInfo>
randomSegments(Xoshiro256StarStar &rng, size_t rows)
{
    std::vector<SegmentInfo> segs;
    if (rows == 0)
        return segs;
    const size_t pieces = 1 + rng.nextBounded(std::min<size_t>(3, rows));
    size_t begin = 0;
    for (size_t p = 0; p < pieces; ++p) {
        const size_t remaining = rows - begin;
        const size_t pieces_left = pieces - p;
        size_t len = remaining / pieces_left;
        if (pieces_left > 1 && len > 1)
            len = 1 + rng.nextBounded(len);
        if (p + 1 == pieces)
            len = remaining;
        segs.push_back({"s" + std::to_string(p), begin, begin + len});
        begin += len;
    }
    return segs;
}

/** Weights with mixed signs, planted zeros, varied magnitudes. */
std::vector<float>
randomWeights(Xoshiro256StarStar &rng, size_t q, bool nonneg = false)
{
    std::vector<float> w(q);
    const double magnitude = rng.nextDouble() < 0.15
                                 ? rng.nextRange(10.0, 1000.0)
                                 : rng.nextRange(0.05, 2.0);
    for (size_t j = 0; j < q; ++j) {
        const double u = rng.nextDouble();
        if (u < 0.2) {
            w[j] = 0.0f; // pruned proxy riding along
        } else {
            double v = rng.nextRange(0.01, magnitude);
            if (!nonneg && rng.nextDouble() < 0.4)
                v = -v;
            w[j] = static_cast<float>(v);
        }
    }
    return w;
}

} // namespace

BitColumnMatrix
randomBits(Xoshiro256StarStar &rng, size_t rows, size_t cols,
           double density)
{
    BitColumnMatrix X(rows, cols);
    for (size_t c = 0; c < cols; ++c)
        for (size_t r = 0; r < rows; ++r)
            if (rng.nextDouble() < density)
                X.setBit(r, c);
    return X;
}

InferCase
makeInferCase(uint64_t seed)
{
    Xoshiro256StarStar rng(hashMix(seed));
    InferCase c;
    const uint64_t shape = hashMix(seed ^ 0x1f3a) % 8;

    size_t rows = 16 + rng.nextBounded(500);
    size_t q = 2 + rng.nextBounded(40);
    double density = rng.nextRange(0.02, 0.6);
    switch (shape) {
      case 0: c.shape = "nominal"; break;
      case 1:
        c.shape = "q1";
        q = 1;
        break;
      case 2:
        c.shape = "single-cycle";
        rows = 1;
        break;
      case 3:
        c.shape = "dense";
        density = 0.97;
        break;
      case 4:
        c.shape = "near-empty";
        density = 0.002;
        break;
      case 5:
        c.shape = "empty-trace";
        rows = 0;
        break;
      case 6:
        c.shape = "big-intercept";
        break;
      default: c.shape = "many-proxies"; q = 48 + rng.nextBounded(80);
    }

    c.Xq = randomBits(rng, rows, q, density);
    c.model.proxyIds.resize(q);
    for (size_t j = 0; j < q; ++j)
        c.model.proxyIds[j] = static_cast<uint32_t>(j);
    c.model.weights = randomWeights(rng, q);
    c.model.intercept = shape == 6 ? rng.nextRange(-500.0, 500.0)
                                   : rng.nextRange(-5.0, 5.0);
    c.model.designName = "gen";

    c.segments = randomSegments(rng, rows);
    // Guarantee at least one full window: T bounded by the largest
    // segment (the window oracles rely on this).
    size_t largest = 0;
    for (const SegmentInfo &seg : c.segments)
        largest = std::max(largest, seg.cycles());
    c.T = largest == 0
              ? 1
              : randomPowerOfTwo(rng, static_cast<uint32_t>(largest));
    return c;
}

QuantCase
makeQuantCase(uint64_t seed)
{
    Xoshiro256StarStar rng(hashMix(seed ^ 0x9e3779b9));
    QuantCase c;
    const uint64_t shape = hashMix(seed ^ 0x2b4c) % 6;

    static constexpr uint32_t kBits[] = {2, 3, 4, 6, 8, 10, 12, 16, 24};
    c.bits = kBits[rng.nextBounded(std::size(kBits))];

    size_t q = 1 + rng.nextBounded(32);
    bool zero_weights = false;
    bool big_intercept = false;
    switch (shape) {
      case 0: c.shape = "nominal"; break;
      case 1:
        c.shape = "all-zero-weights";
        zero_weights = true;
        break;
      case 2:
        c.shape = "q1";
        q = 1;
        break;
      case 3:
        c.shape = "b2-saturation";
        c.bits = 2;
        break;
      case 4:
        c.shape = "big-intercept";
        big_intercept = true;
        break;
      default: c.shape = "wide"; q = 40 + rng.nextBounded(60);
    }

    c.model.proxyIds.resize(q);
    for (size_t j = 0; j < q; ++j)
        c.model.proxyIds[j] = static_cast<uint32_t>(j);
    c.model.weights = zero_weights ? std::vector<float>(q, 0.0f)
                                   : randomWeights(rng, q);
    c.model.intercept = big_intercept ? rng.nextRange(-2000.0, 2000.0)
                                      : rng.nextRange(-5.0, 5.0);
    c.model.designName = "gen";

    const size_t rows = 32 + rng.nextBounded(400);
    c.T = randomPowerOfTwo(rng, static_cast<uint32_t>(rows));
    c.Xq = randomBits(rng, rows, q, rng.nextRange(0.05, 0.7));
    return c;
}

SolverCase
makeSolverCase(uint64_t seed)
{
    Xoshiro256StarStar rng(hashMix(seed ^ 0x50f7));
    SolverCase c;
    const uint64_t shape = hashMix(seed ^ 0x3c5d) % 8;

    size_t n = 16 + rng.nextBounded(300);
    size_t m = 2 + rng.nextBounded(46);
    double density = rng.nextRange(0.03, 0.5);
    bool zero_cols = false;
    bool dup_cols = false;
    bool constant_labels = false;
    switch (shape) {
      case 0: c.shape = "nominal"; break;
      case 1:
        c.shape = "zero-columns";
        zero_cols = true;
        break;
      case 2:
        c.shape = "duplicate-columns";
        dup_cols = true;
        break;
      case 3:
        c.shape = "constant-labels";
        constant_labels = true;
        break;
      case 4:
        c.shape = "single-column";
        m = 1;
        break;
      case 5:
        c.shape = "tiny";
        n = 2 + rng.nextBounded(6);
        m = 1 + rng.nextBounded(4);
        break;
      case 6:
        c.shape = "wide";
        m = 64 + rng.nextBounded(80);
        n = 32 + rng.nextBounded(100);
        break;
      default: c.shape = "dense"; density = 0.8;
    }

    c.X = randomBits(rng, n, m, density);
    if (zero_cols)
        for (size_t j = 0; j < m; j += 3)
            for (size_t i = 0; i < n; ++i)
                c.X.set(i, j, false);
    if (dup_cols && m >= 2)
        for (size_t j = 1; j < m; j += 4)
            for (size_t i = 0; i < n; ++i)
                c.X.set(i, j, c.X.get(i, j - 1));

    // Penalty configuration rotates through every family.
    const uint64_t family = hashMix(seed ^ 0x77aa) % 5;
    c.cfg = CdConfig();
    c.cfg.maxSweeps = 600;
    c.cfg.tol = rng.nextDouble() < 0.25 ? 1e-6 : 1e-4;
    c.cfg.penalty.nonneg = rng.nextDouble() < 0.3;
    switch (family) {
      case 0:
        c.cfg.penalty.kind = PenaltyKind::None;
        c.cfg.penalty.lambda = 0.0;
        break;
      case 1:
        c.cfg.penalty.kind = PenaltyKind::Ridge;
        c.cfg.penalty.lambda2 = rng.nextRange(1e-4, 1.0);
        break;
      case 2:
        c.cfg.penalty.kind = PenaltyKind::Lasso;
        break;
      case 3: // elastic net
        c.cfg.penalty.kind = PenaltyKind::Lasso;
        c.cfg.penalty.lambda2 = rng.nextRange(1e-4, 0.1);
        break;
      default:
        c.cfg.penalty.kind = PenaltyKind::Mcp;
        c.cfg.penalty.gamma = rng.nextDouble() < 0.3
                                  ? rng.nextRange(3.0, 6.0)
                                  : 10.0;
    }

    // Labels: planted sparse linear structure + noise (or constant).
    c.y.assign(n, static_cast<float>(rng.nextRange(-2.0, 2.0)));
    if (!constant_labels) {
        const size_t q_true = 1 + rng.nextBounded(std::max<size_t>(
                                      1, std::min<size_t>(m, 8)));
        for (size_t k = 0; k < q_true; ++k) {
            const size_t j = rng.nextBounded(m);
            double beta = rng.nextRange(0.2, 2.0);
            if (!c.cfg.penalty.nonneg && rng.nextDouble() < 0.3)
                beta = -beta;
            for (size_t i = 0; i < n; ++i)
                if (c.X.get(i, j))
                    c.y[i] += static_cast<float>(beta);
        }
        const double noise = rng.nextRange(0.0, 0.1);
        for (size_t i = 0; i < n; ++i)
            c.y[i] += static_cast<float>(noise * rng.nextGaussian());
    }

    // Lambda relative to this case's own naive lambdaMax, computed
    // after labels exist (L1-family only).
    if (c.cfg.penalty.kind == PenaltyKind::Lasso ||
        c.cfg.penalty.kind == PenaltyKind::Mcp) {
        BitFeatureView view(c.X);
        const double lmax = ref::lambdaMax(view, c.y);
        c.cfg.penalty.lambda =
            lmax > 0.0 ? lmax * rng.nextRange(0.02, 0.8) : 0.0;
    }
    return c;
}

TargetQCase
makeTargetQCase(uint64_t seed)
{
    Xoshiro256StarStar rng(hashMix(seed ^ 0x7a9));
    TargetQCase c;
    c.shape = "nominal";

    const size_t n = 120 + rng.nextBounded(280);
    const size_t m = 20 + rng.nextBounded(40);
    c.X = randomBits(rng, n, m, rng.nextRange(0.05, 0.35));

    c.y.assign(n, 1.0f);
    const size_t q_true = 4 + rng.nextBounded(m / 2);
    for (size_t k = 0; k < q_true; ++k) {
        const size_t j = rng.nextBounded(m);
        const double beta = rng.nextRange(0.2, 2.0);
        for (size_t i = 0; i < n; ++i)
            if (c.X.get(i, j))
                c.y[i] += static_cast<float>(beta);
    }
    for (size_t i = 0; i < n; ++i)
        c.y[i] += static_cast<float>(0.05 * rng.nextGaussian());

    c.targetQ = 1 + rng.nextBounded(m / 3);
    return c;
}

BitParallelCase
makeBitParallelCase(uint64_t seed)
{
    Xoshiro256StarStar rng(hashMix(seed ^ 0xb17a));
    BitParallelCase c;
    const uint64_t shape = hashMix(seed ^ 0xb17b) % 8;

    static constexpr uint32_t kBits[] = {2, 4, 8, 10, 12, 16, 24};
    c.bits = kBits[rng.nextBounded(std::size(kBits))];

    size_t rows = 16 + rng.nextBounded(600);
    size_t q = 2 + rng.nextBounded(90);
    double density = rng.nextRange(0.05, 0.6);
    uint32_t T = 0; // 0: derived from rows below
    switch (shape) {
      case 0: c.shape = "nominal"; break;
      case 1: {
        c.shape = "q-word-edge";
        static constexpr size_t kQ[] = {63, 64, 65, 127, 128, 129};
        q = kQ[rng.nextBounded(std::size(kQ))];
        break;
      }
      case 2: {
        c.shape = "rows-word-edge";
        static constexpr size_t kRows[] = {0,   1,   63,  64,  65,
                                           127, 128, 129, 191, 193};
        rows = kRows[rng.nextBounded(std::size(kRows))];
        // Sometimes T > rows: only a trailing partial segment exists.
        if (rng.nextDouble() < 0.35)
            T = 64;
        break;
      }
      case 3:
        c.shape = "legacy-small-T";
        T = 1 + static_cast<uint32_t>(rng.nextBounded(2));
        break;
      case 4: {
        c.shape = "word-aligned-T";
        static constexpr uint32_t kT[] = {64, 128, 256};
        T = kT[rng.nextBounded(std::size(kT))];
        rows = 3 * T + rng.nextBounded(4 * T);
        break;
      }
      case 5:
        c.shape = "T32";
        T = 32;
        rows = 64 + rng.nextBounded(600);
        break;
      case 6:
        c.shape = "dense";
        density = 0.97;
        break;
      default:
        c.shape = "wide";
        q = 140 + rng.nextBounded(24);
    }

    c.model.proxyIds.resize(q);
    for (size_t j = 0; j < q; ++j)
        c.model.proxyIds[j] = static_cast<uint32_t>(j);
    c.model.weights = randomWeights(rng, q);
    c.model.intercept = rng.nextRange(-5.0, 5.0);
    c.model.designName = "gen";

    c.T = T ? T
            : randomPowerOfTwo(
                  rng, static_cast<uint32_t>(std::max<size_t>(rows, 1)));
    c.Xq = randomBits(rng, rows, q, density);
    return c;
}

size_t
streamChunkCycles(uint64_t seed)
{
    static constexpr size_t kChunks[] = {1,  3,   7,    13,   64,
                                         97, 256, 1000, 4096, 16384};
    return kChunks[hashMix(seed ^ 0xc4) % std::size(kChunks)];
}

namespace {

/** A miniature random design: a handful of units with buses and gated
 *  clocks, small enough for hundreds of cases per test run. */
Netlist
miniDesign(Xoshiro256StarStar &rng)
{
    static constexpr UnitId kUnits[] = {
        UnitId::Fetch,  UnitId::Decode,    UnitId::IntAlu,
        UnitId::VecExec, UnitId::LoadStore, UnitId::DCache,
        UnitId::ClockTree, UnitId::Misc,
    };
    DesignConfig cfg;
    cfg.name = "mini";
    cfg.seed = rng();
    cfg.ffPerClockGate = 8; // gated clocks even at tiny unit sizes
    const size_t n_units = 3 + rng.nextBounded(4);
    for (size_t u = 0; u < n_units; ++u) {
        UnitConfig uc;
        uc.unit = kUnits[(rng.nextBounded(std::size(kUnits)) + u) %
                         std::size(kUnits)];
        uc.signals = 8 + static_cast<uint32_t>(rng.nextBounded(32));
        uc.busCount = static_cast<uint32_t>(rng.nextBounded(3));
        uc.busWidth = 4 + static_cast<uint32_t>(rng.nextBounded(5));
        uc.capScale = static_cast<float>(rng.nextRange(0.5, 2.0));
        cfg.units.push_back(uc);
    }
    return DesignBuilder::build(cfg);
}

ActivityFrame
randomFrame(Xoshiro256StarStar &rng, uint64_t cycle, double enable_p,
            bool extreme_act)
{
    ActivityFrame f{};
    f.cycle = cycle;
    for (size_t u = 0; u < numUnits; ++u) {
        if (extreme_act) {
            static constexpr float kEdge[] = {0.0f,    1.0f, 0.999f,
                                              0.9989f, 0.5f, 0.9991f};
            f.activity[u] = kEdge[rng.nextBounded(std::size(kEdge))];
        } else {
            f.activity[u] = static_cast<float>(rng.nextDouble());
        }
        f.clockEnabled[u] = rng.nextDouble() < enable_p;
        f.dataToggle[u] = static_cast<float>(rng.nextDouble());
    }
    return f;
}

} // namespace

GaCase
makeGaCase(uint64_t seed)
{
    Xoshiro256StarStar rng(hashMix(seed ^ 0x6a1));
    GaCase c;
    const uint64_t shape = hashMix(seed ^ 0x6a2) % 8;

    size_t n = 20 + rng.nextBounded(140);
    double enable_p = 0.85;
    bool extreme_act = false;
    bool contiguous = true;
    c.stride = 1 + static_cast<uint32_t>(rng.nextBounded(4));
    switch (shape) {
      case 0: c.shape = "nominal"; break;
      case 1:
        c.shape = "sparse-enable";
        enable_p = 0.15;
        break;
      case 2:
        c.shape = "act-extremes";
        extreme_act = true;
        break;
      case 3:
        c.shape = "noncontiguous-cycles";
        contiguous = false;
        break;
      case 4:
        c.shape = "single-cycle";
        n = 1;
        break;
      case 5: {
        c.shape = "word-boundary";
        static constexpr size_t kEdges[] = {63, 64, 65, 127, 128};
        n = kEdges[rng.nextBounded(std::size(kEdges))];
        break;
      }
      case 6: c.shape = "stride-large"; break; // stride set below
      default:
        c.shape = "long-run";
        n = 256 + rng.nextBounded(300);
    }

    c.netlist = miniDesign(rng);
    if (shape == 6)
        c.stride = static_cast<uint32_t>(c.netlist.signalCount()) + 3;

    uint64_t cycle = rng.nextBounded(1u << 20);
    c.frames.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        c.frames.push_back(randomFrame(rng, cycle, enable_p,
                                       extreme_act));
        cycle += contiguous ? 1 : 1 + rng.nextBounded(5);
    }
    return c;
}

GaRunCase
makeGaRunCase(uint64_t seed)
{
    Xoshiro256StarStar rng(hashMix(seed ^ 0x6a3));
    GaRunCase c;
    const uint64_t shape = hashMix(seed ^ 0x6a4) % 9;

    c.netlist = miniDesign(rng);
    c.coreParams = CoreParams::defaults();
    c.coreParams.warmupCycles = 16 + rng.nextBounded(48);

    GaConfig &ga = c.ga;
    ga.populationSize = 5 + static_cast<uint32_t>(rng.nextBounded(4));
    ga.generations = 2 + static_cast<uint32_t>(rng.nextBounded(2));
    ga.elites = 1 + static_cast<uint32_t>(
        rng.nextBounded(ga.populationSize / 2));
    ga.bodyMinLen = 4;
    ga.bodyMaxLen = 10;
    ga.fitnessCycles = 40 + rng.nextBounded(50);
    ga.fitnessSignalStride =
        1 + static_cast<uint32_t>(rng.nextBounded(3));
    ga.seed = rng();
    ga.threads = 1 + static_cast<uint32_t>(rng.nextBounded(3));

    switch (shape) {
      case 0: c.shape = "nominal"; break;
      case 1:
        c.shape = "dup-heavy";
        ga.mutationRate = 0.0;
        ga.crossoverRate = 0.0;
        ga.elites = ga.populationSize - 1;
        ga.generations = 3;
        break;
      case 2:
        c.shape = "min-pop";
        ga.populationSize = 4;
        ga.elites = 3;
        ga.tournamentSize = 1;
        break;
      case 3:
        c.shape = "uncached";
        ga.cacheFitness = false;
        break;
      case 4:
        c.shape = "no-capture";
        ga.captureFrames = false;
        break;
      case 5:
        c.shape = "scalar-fitness";
        ga.vectorizedFitness = false;
        break;
      case 6:
        c.shape = "stride-gt-m";
        ga.fitnessSignalStride =
            static_cast<uint32_t>(c.netlist.signalCount()) + 5;
        break;
      case 7: {
        c.shape = "invalid-config";
        c.expectError = true;
        switch (rng.nextBounded(4)) {
          case 0: ga.fitnessSignalStride = 0; break;
          case 1: ga.populationSize = 0; break; // zero population
          case 2: ga.elites = ga.populationSize; break;
          default: ga.fitnessCycles = 0;
        }
        break;
      }
      default:
        c.shape = "global-pool";
        ga.threads = 0;
    }
    return c;
}

} // namespace apollo::harness
