/**
 * @file
 * Differential-oracle runner (docs/INTERNALS.md §8). Each production
 * inference / solver / quantization path registers an OracleEntry that
 * replays one seeded case through both the production code and its
 * src/ref oracle and reports a mismatch as a human-readable detail
 * string. The runner drives a deterministic seed range per path,
 * shrinks failures, and prints a one-line replay command
 * (APOLLO_REPLAY seed=0x... path=...) so any failure reproduces from
 * its seed alone.
 */

#ifndef APOLLO_TESTS_HARNESS_DIFFERENTIAL_HH
#define APOLLO_TESTS_HARNESS_DIFFERENTIAL_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/bitvec.hh"

namespace apollo::harness {

/**
 * One production path under differential test. runOne() builds the
 * case for @p seed, runs production + oracle, and returns std::nullopt
 * on agreement or a mismatch description (already shrunk) on failure.
 */
struct OracleEntry
{
    std::string path;
    std::function<std::optional<std::string>(uint64_t seed)> runOne;
};

/**
 * Every registered production-path oracle. A meta-test pins the exact
 * path list so a new fast path cannot land without registering here.
 */
const std::vector<OracleEntry> &oracleRegistry();

/** Entry by path name (nullptr when absent). */
const OracleEntry *findOracle(const std::string &path);

/** Stable per-path base seed (FNV-1a of the path name). */
uint64_t oracleBaseSeed(const std::string &path);

/**
 * APOLLO_ORACLE_SEED environment override (hex 0x... or decimal):
 * when set, runOracle() replays exactly that one seed per path.
 */
std::optional<uint64_t> replaySeedOverride();

/**
 * Drive @p count consecutive seeds from the path's base seed through
 * the entry (or only the APOLLO_ORACLE_SEED override), reporting each
 * failure through gtest with its replay line.
 */
void runOracle(const OracleEntry &entry, size_t count);

/**
 * Greedy failure minimization: repeatedly apply each mutator to a copy
 * of the case and keep the mutation whenever @p stillFails holds.
 * Mutators return false when they cannot reduce further.
 */
template <typename Case>
Case
shrinkCase(Case c,
           const std::function<bool(const Case &)> &stillFails,
           const std::vector<std::function<bool(Case &)>> &mutators)
{
    bool progress = true;
    int guard = 0;
    while (progress && guard++ < 64) {
        progress = false;
        for (const auto &mutate : mutators) {
            Case trial = c;
            if (!mutate(trial))
                continue;
            if (stillFails(trial)) {
                c = std::move(trial);
                progress = true;
            }
        }
    }
    return c;
}

/** First @p rows rows of @p X (shrinking helper). */
BitColumnMatrix takeRows(const BitColumnMatrix &X, size_t rows);

/** First @p cols columns of @p X (shrinking helper). */
BitColumnMatrix takeCols(const BitColumnMatrix &X, size_t cols);

} // namespace apollo::harness

#endif // APOLLO_TESTS_HARNESS_DIFFERENTIAL_HH
