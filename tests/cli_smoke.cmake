# Drives the CLI through the full pipeline on the tiny design.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
    execute_process(COMMAND ${APOLLO_CLI} ${ARGN}
                    WORKING_DIRECTORY ${WORK_DIR}
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "apollo ${ARGN} failed (${rc}): ${out} ${err}")
    endif()
endfunction()

run_step(gen-data --design tiny --out train.apds --benchmarks 10
         --cycles 200)
run_step(gen-test --design tiny --out test.apds)
run_step(train --data train.apds --q 25 --out model.txt)
run_step(eval --model model.txt --data test.apds)
run_step(opm --model model.txt --design tiny --bits 10 --emit opm.hh)
run_step(trace --model model.txt --design tiny --cycles 5000
         --out trace.csv)

foreach(artifact train.apds test.apds model.txt opm.hh trace.csv)
    if(NOT EXISTS ${WORK_DIR}/${artifact})
        message(FATAL_ERROR "missing artifact: ${artifact}")
    endif()
endforeach()
