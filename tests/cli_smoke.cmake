# Drives the CLI through the full pipeline on the tiny design.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
    execute_process(COMMAND ${APOLLO_CLI} ${ARGN}
                    WORKING_DIRECTORY ${WORK_DIR}
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "apollo ${ARGN} failed (${rc}): ${out} ${err}")
    endif()
endfunction()

run_step(gen-data --design tiny --out train.apds --benchmarks 10
         --cycles 200)
run_step(gen-test --design tiny --out test.apds)
run_step(train --data train.apds --q 25 --out model.txt)
run_step(eval --model model.txt --data test.apds)
run_step(opm --model model.txt --design tiny --bits 10 --emit opm.hh
         --metrics-json opm_metrics.json)
run_step(trace --model model.txt --design tiny --cycles 5000
         --out trace.csv --metrics-json metrics.json
         --trace-out spans.json)
run_step(droop-lab --model model.txt --design tiny --cycles 600
         --out droop_lab.json)

# The serving path: generate a deterministic request stream, serve it
# with per-session recording, then replay one record file — the
# replayed power lines must be byte-identical to the live run's.
run_step(serve-gen --model model.txt --name default --sessions 2
         --chunks 3 --cycles-per-chunk 300 --seed 5
         --out serve_requests.ndjson)
run_step(serve --model model.txt --bits 10 --in serve_requests.ndjson
         --out serve_live.ndjson --record serve_rec --threads 2
         --metrics-json serve_metrics.json)
run_step(serve --model model.txt --replay serve_rec/s0.ndjson
         --out serve_replay.ndjson)

file(READ ${WORK_DIR}/serve_live.ndjson serve_live)
file(READ ${WORK_DIR}/serve_replay.ndjson serve_replay)
string(REGEX MATCHALL "[^\n]*\"session\":\"s0\"[^\n]*\"first_index\"[^\n]*"
       live_s0 "${serve_live}")
string(REGEX MATCHALL "[^\n]*\"session\":\"s0\"[^\n]*\"first_index\"[^\n]*"
       replay_s0 "${serve_replay}")
if(NOT live_s0)
    message(FATAL_ERROR "serve produced no power events for s0")
endif()
if(NOT "${live_s0}" STREQUAL "${replay_s0}")
    message(FATAL_ERROR "serve replay diverged from the live run")
endif()
file(READ ${WORK_DIR}/serve_metrics.json serve_metrics)
if(NOT serve_metrics MATCHES "apollo\\.serve\\.sessions")
    message(FATAL_ERROR "serve metrics snapshot lacks serve counters")
endif()

file(READ ${WORK_DIR}/droop_lab.json droop_lab)
if(NOT droop_lab MATCHES "apollo\\.droop_lab\\.v1")
    message(FATAL_ERROR "droop-lab report lacks its schema marker")
endif()

foreach(artifact train.apds test.apds model.txt opm.hh trace.csv
        droop_lab.json
        opm_metrics.json metrics.json spans.json
        serve_requests.ndjson serve_live.ndjson serve_replay.ndjson
        serve_metrics.json serve_rec/s0.ndjson serve_rec/s1.ndjson)
    if(NOT EXISTS ${WORK_DIR}/${artifact})
        message(FATAL_ERROR "missing artifact: ${artifact}")
    endif()
endforeach()

# The observability artifacts must carry their documented structure
# (real JSON parsing is covered by tests/test_obs.cc; here we check
# the CLI wired the right registries to the right files).
file(READ ${WORK_DIR}/opm_metrics.json opm_metrics)
if(NOT opm_metrics MATCHES "apollo\\.opm\\.quantizations")
    message(FATAL_ERROR "opm metrics snapshot lacks OPM counters")
endif()
file(READ ${WORK_DIR}/metrics.json metrics)
foreach(counter apollo.activity.programs apollo.stream.runs
        apollo.flow.runs)
    string(REPLACE "." "\\." counter_re ${counter})
    if(NOT metrics MATCHES "${counter_re}")
        message(FATAL_ERROR
                "trace metrics snapshot lacks ${counter}")
    endif()
endforeach()
file(READ ${WORK_DIR}/spans.json spans)
if(NOT spans MATCHES "traceEvents" OR NOT spans MATCHES "\"ph\": \"X\"")
    message(FATAL_ERROR "span file is not Chrome trace_event JSON")
endif()
