/**
 * @file
 * Unit tests for the microarchitectural substrate: cache hierarchy,
 * branch predictor, throttling, and the timing core's behaviour
 * (IPC ranges, miss behaviour, clock gating, activity frames).
 */

#include <gtest/gtest.h>

#include "gen/test_suite.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/core.hh"
#include "uarch/throttle.hh"

namespace apollo {
namespace {

using namespace asm_helpers;

TEST(Cache, HitsAfterFill)
{
    CacheParams p{1024, 2, 64, 2, 4, 50};
    CacheModel cache(p);
    const auto miss = cache.access(0x100, false, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_GE(miss.readyCycle, 50u);

    const auto hit = cache.access(0x104, false, miss.readyCycle + 1);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyCycle, miss.readyCycle + 1 + p.latency);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.accesses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2 ways, 64B lines, 2 sets (256B total).
    CacheParams p{256, 2, 64, 1, 4, 10};
    CacheModel cache(p);
    // Three lines mapping to set 0: line addresses 0, 2, 4 (even lines).
    cache.access(0 * 64, false, 0);
    cache.access(2 * 64, false, 100);
    cache.access(4 * 64, false, 200); // evicts line 0 (LRU)
    const auto r = cache.access(0 * 64, false, 300);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(Cache, MissMergingOnSameLine)
{
    CacheParams p{1024, 2, 64, 2, 4, 50};
    CacheModel cache(p);
    const auto first = cache.access(0x200, false, 0);
    const auto merged = cache.access(0x208, false, 1);
    EXPECT_FALSE(merged.hit);
    EXPECT_FALSE(merged.startedMiss);
    EXPECT_EQ(merged.readyCycle, first.readyCycle);
}

TEST(Cache, MshrLimitDelaysExtraMisses)
{
    CacheParams p{4096, 4, 64, 1, 2, 100};
    CacheModel cache(p);
    const auto a = cache.access(0 << 6, false, 0);
    const auto b = cache.access(100 << 6, false, 0);
    const auto c = cache.access(200 << 6, false, 0); // must wait
    EXPECT_GT(c.readyCycle, a.readyCycle);
    EXPECT_GE(c.readyCycle, std::min(a.readyCycle, b.readyCycle) + 100);
}

TEST(Cache, TwoLevelPathAddsLatencies)
{
    CacheParams l2p{8192, 4, 64, 10, 4, 80};
    CacheParams l1p{1024, 2, 64, 2, 4, 0};
    CacheModel l2(l2p);
    CacheModel l1(l1p, &l2);
    const auto r = l1.access(0x4000, false, 0).readyCycle;
    EXPECT_GE(r, 80u + 10u + 2u);
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp(10);
    // Warm up past gshare history churn: always-taken branch at one pc.
    for (int i = 0; i < 50; ++i) {
        bp.predict(100);
        bp.update(100, true);
    }
    EXPECT_TRUE(bp.predict(100));
}

TEST(BranchPredictor, CountsMispredicts)
{
    BranchPredictor bp(10);
    for (int i = 0; i < 100; ++i) {
        bp.predict(7);
        bp.update(7, true);
    }
    const uint64_t before = bp.mispredicts();
    bp.predict(7);
    bp.update(7, false); // surprise
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST(Throttle, Scheme1CapsIssueWidth)
{
    Throttle t(ThrottleMode::Scheme1);
    EXPECT_EQ(t.maxIssue(0, 4), 2u);
    EXPECT_EQ(t.maxIssue(5, 4), 2u);
    EXPECT_EQ(t.maxIssue(0, 1), 1u);
}

TEST(Throttle, Scheme2DutyCycles)
{
    Throttle t(ThrottleMode::Scheme2);
    EXPECT_EQ(t.maxIssue(3, 4), 0u);
    EXPECT_EQ(t.maxIssue(7, 4), 0u);
    EXPECT_EQ(t.maxIssue(0, 4), 4u);
}

TEST(Throttle, Scheme3LimitsVector)
{
    Throttle t(ThrottleMode::Scheme3);
    EXPECT_EQ(t.maxVectorIssue(0, 2), 1u);
    EXPECT_EQ(t.maxVectorIssue(1, 2), 0u);
    Throttle none(ThrottleMode::None);
    EXPECT_EQ(none.maxVectorIssue(1, 2), 2u);
}

TEST(TimingCore, IndependentAluStreamReachesWideIssue)
{
    // Independent single-cycle adds: IPC should approach issue width.
    std::vector<Instruction> body;
    for (int i = 0; i < 12; ++i)
        body.push_back(add(i % 12, (i + 1) % 12, (i + 2) % 12));
    const Program prog = Program::makeLoop("ilp", body, 300);
    TimingCore core;
    const CoreStats stats =
        core.run(prog, 100000, [](const ActivityFrame &) {});
    EXPECT_GT(stats.ipc(), 2.0);
    EXPECT_GT(stats.retiredOps, 3000u);
}

TEST(TimingCore, DependentChainSerializes)
{
    // A strict dependency chain of adds: IPC ~1.
    std::vector<Instruction> body;
    for (int i = 0; i < 12; ++i)
        body.push_back(add(1, 1, 2));
    const Program prog = Program::makeLoop("chain", body, 200);
    TimingCore core;
    const CoreStats stats =
        core.run(prog, 100000, [](const ActivityFrame &) {});
    EXPECT_LT(stats.ipc(), 1.5);
}

TEST(TimingCore, DivLatencyHurtsIpc)
{
    std::vector<Instruction> body;
    for (int i = 0; i < 8; ++i)
        body.push_back(div(1, 1, 2));
    const Program prog = Program::makeLoop("divs", body, 100);
    TimingCore core;
    const CoreStats stats =
        core.run(prog, 100000, [](const ActivityFrame &) {});
    EXPECT_LT(stats.ipc(), 0.3);
}

TEST(TimingCore, CacheMissStreamHasLowIpcAndL2Misses)
{
    std::vector<Instruction> body = {
        ldr(0, 29, 0),
        add(1, 1, 0),
        addi(29, 29, 128 * 1024 + 64),
    };
    const Program prog = Program::makeLoop("misses", body, 400);
    TimingCore core;
    const CoreStats stats =
        core.run(prog, 200000, [](const ActivityFrame &) {});
    EXPECT_GT(stats.l1dMisses, 100u);
    EXPECT_GT(stats.l2Misses, 100u);
    EXPECT_LT(stats.ipc(), 1.0);
}

TEST(TimingCore, ThrottlingReducesThroughput)
{
    const auto body = maxPowerBody();
    const Program prog = Program::makeLoop("virus", body, 400);

    CoreParams p;
    TimingCore full(p);
    const CoreStats s_full =
        full.run(prog, 4000, [](const ActivityFrame &) {});

    p.throttle = ThrottleMode::Scheme1;
    TimingCore capped(p);
    const CoreStats s_capped =
        capped.run(prog, 8000, [](const ActivityFrame &) {});

    EXPECT_LT(s_capped.ipc(), s_full.ipc());
}

TEST(TimingCore, EmitsOneFramePerCycle)
{
    const Program prog =
        Program::makeLoop("f", {add(0, 1, 2), eor(3, 0, 1)}, 800);
    TimingCore core;
    uint64_t frames = 0;
    uint64_t last_cycle = 0;
    const CoreStats stats = core.run(prog, 10000,
        [&](const ActivityFrame &f) {
            EXPECT_EQ(f.cycle, frames);
            last_cycle = f.cycle;
            frames++;
        });
    EXPECT_EQ(frames, stats.cycles);
    EXPECT_EQ(last_cycle + 1, stats.cycles);
}

TEST(TimingCore, ClockGatingKicksInForIdleUnits)
{
    // Pure scalar ALU loop: the vector unit should end up gated for
    // most cycles.
    std::vector<Instruction> body;
    for (int i = 0; i < 8; ++i)
        body.push_back(add(i % 8, (i + 1) % 8, 2));
    const Program prog = Program::makeLoop("scalar", body, 300);
    TimingCore core;
    uint64_t vec_enabled = 0;
    uint64_t alu_enabled = 0;
    uint64_t cycles = 0;
    core.run(prog, 10000, [&](const ActivityFrame &f) {
        cycles++;
        vec_enabled += f.enabled(UnitId::VecExec);
        alu_enabled += f.enabled(UnitId::IntAlu);
    });
    EXPECT_LT(static_cast<double>(vec_enabled), 0.2 * cycles);
    EXPECT_GT(static_cast<double>(alu_enabled), 0.8 * cycles);
}

TEST(TimingCore, MispredictsOccurOnDataDependentBranches)
{
    // Branch on a pseudo-random bit: the predictor can't learn it.
    std::vector<Instruction> body = {
        mul(0, 0, 5),
        addi(0, 0, 13),
        and_(1, 0, 6), // pseudo-random bits
        bnez(1, 2),    // skip the next op half the time
        eor(2, 2, 0),
    };
    const Program prog = Program::makeLoop("randbr", body, 400);
    TimingCore core;
    const CoreStats stats =
        core.run(prog, 100000, [](const ActivityFrame &) {});
    EXPECT_GT(stats.branches, 400u);
    EXPECT_GT(stats.mispredicts, 5u);
}

TEST(TimingCore, RespectsMaxCycleCap)
{
    const Program prog =
        Program::makeLoop("cap", {add(0, 1, 2)}, 1000000);
    TimingCore core;
    const CoreStats stats =
        core.run(prog, 500, [](const ActivityFrame &) {});
    EXPECT_EQ(stats.cycles, 500u);
}

TEST(TestSuite, TableFourShape)
{
    const auto suite = designerTestSuite();
    ASSERT_EQ(suite.size(), 12u);
    EXPECT_EQ(suite[0].program.name(), "dhrystone");
    EXPECT_EQ(suite[0].cycles, 1222u);
    EXPECT_EQ(suite[1].program.name(), "maxpwr_cpu");
    EXPECT_EQ(suite[1].cycles, 600u);
    EXPECT_EQ(suite[9].throttle, ThrottleMode::Scheme1);
    EXPECT_EQ(suite[11].throttle, ThrottleMode::Scheme3);

    // Every benchmark must actually run for its full cycle budget.
    for (const TestBenchmark &tb : suite) {
        TimingCore core;
        const CoreStats stats =
            core.run(tb.program, tb.cycles, [](const ActivityFrame &) {});
        EXPECT_EQ(stats.cycles, tb.cycles) << tb.program.name();
    }
}

} // namespace
} // namespace apollo
