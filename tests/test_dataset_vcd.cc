/**
 * @file
 * Tests for dataset containers (splits, interval aggregation), the
 * dataset builder's label consistency, and VCD round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"
#include "trace/vcd.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace apollo {
namespace {

using namespace asm_helpers;

Dataset
smallDataset(int programs = 5)
{
    static const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(nl);
    for (int i = 0; i < programs; ++i) {
        const auto body = std::vector<Instruction>{
            vfma(0, 1, 2), add(3, 4, 5), ldr(6, 30, 8 * i)};
        builder.addProgram(
            Program::makeLoop("prog" + std::to_string(i), body, 2000,
                              100 + i),
            300);
    }
    return builder.build();
}

TEST(Dataset, SegmentsTileTheCycles)
{
    const Dataset ds = smallDataset();
    ASSERT_EQ(ds.segments.size(), 5u);
    size_t covered = 0;
    for (size_t s = 0; s < ds.segments.size(); ++s) {
        EXPECT_EQ(ds.segments[s].begin, covered);
        covered = ds.segments[s].end;
    }
    EXPECT_EQ(covered, ds.cycles());
    EXPECT_EQ(ds.y.size(), ds.cycles());
}

TEST(Dataset, LabelsArePositiveAndVary)
{
    const Dataset ds = smallDataset();
    float lo = ds.y[0];
    float hi = ds.y[0];
    for (float v : ds.y) {
        EXPECT_GT(v, 0.0f);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi, 1.2f * lo) << "per-cycle power should vary";
}

TEST(Dataset, SelectRowsPreservesContent)
{
    const Dataset ds = smallDataset(2);
    std::vector<uint32_t> rows = {0, 5, 17, 100,
                                  static_cast<uint32_t>(ds.cycles() - 1)};
    const Dataset sub = ds.selectRows(rows);
    EXPECT_EQ(sub.cycles(), rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
        EXPECT_EQ(sub.y[r], ds.y[rows[r]]);
        for (size_t c = 0; c < ds.signals(); c += 131)
            EXPECT_EQ(sub.X.get(r, c), ds.X.get(rows[r], c));
    }
}

TEST(Dataset, SplitBySegmentsIsDisjointAndComplete)
{
    const Dataset ds = smallDataset(6);
    Dataset train;
    Dataset val;
    ds.splitBySegments(0.2, train, val);
    EXPECT_EQ(train.cycles() + val.cycles(), ds.cycles());
    EXPECT_GT(val.cycles(), 0u);
    EXPECT_GT(train.segments.size(), val.segments.size());
    // Each side's segments tile its own cycles.
    size_t covered = 0;
    for (const auto &seg : train.segments) {
        EXPECT_EQ(seg.begin, covered);
        covered = seg.end;
    }
    EXPECT_EQ(covered, train.cycles());
}

TEST(Dataset, AggregateIntervalsCountsAndLabels)
{
    const Dataset ds = smallDataset(2);
    const uint32_t tau = 8;
    const CountDataset agg = aggregateIntervals(ds, tau);
    EXPECT_EQ(agg.tau, tau);

    // Counts must equal the per-cycle sums within each interval, and
    // labels the per-cycle label means.
    size_t checked = 0;
    for (const auto &seg : agg.segments) {
        const auto &src = ds.segments[&seg - agg.segments.data()];
        for (size_t k = seg.begin; k < seg.end; ++k) {
            const size_t local = k - seg.begin;
            for (size_t c = 0; c < ds.signals(); c += 191) {
                uint32_t count = 0;
                for (uint32_t t = 0; t < tau; ++t)
                    count += ds.X.get(src.begin + local * tau + t, c);
                ASSERT_EQ(agg.X.get(k, c), count);
                checked++;
            }
            double label = 0.0;
            for (uint32_t t = 0; t < tau; ++t)
                label += ds.y[src.begin + local * tau + t];
            EXPECT_NEAR(agg.y[k], label / tau, 1e-4);
        }
    }
    EXPECT_GT(checked, 100u);
}

TEST(Dataset, AggregateRejectsBadTau)
{
    const Dataset ds = smallDataset(1);
    EXPECT_THROW(aggregateIntervals(ds, 0), FatalError);
    EXPECT_THROW(aggregateIntervals(ds, 999), FatalError);
}

TEST(Vcd, RoundTripPreservesToggles)
{
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    // Dump a handful of signals over a synthetic toggle pattern.
    std::vector<uint32_t> ids = {0, 7, 42, 100};
    std::ostringstream os;
    VcdWriter writer(os, nl, ids);
    writer.writeHeader();

    BitColumnMatrix pattern(50, ids.size());
    Xoshiro256StarStar rng(5);
    for (size_t i = 0; i < 50; ++i)
        for (size_t k = 0; k < ids.size(); ++k)
            if (rng.nextDouble() < 0.3)
                pattern.setBit(i, k);

    for (size_t i = 0; i < 50; ++i) {
        BitVector row(ids.size());
        for (size_t k = 0; k < ids.size(); ++k)
            if (pattern.get(i, k))
                row.setBit(k);
        writer.writeCycle(row);
    }
    writer.finish();
    EXPECT_EQ(writer.cyclesWritten(), 50u);

    std::istringstream is(os.str());
    const VcdTrace parsed = parseVcd(is);
    ASSERT_EQ(parsed.names.size(), ids.size());
    ASSERT_EQ(parsed.toggles.rows(), 50u);
    for (size_t i = 0; i < 50; ++i)
        for (size_t k = 0; k < ids.size(); ++k)
            ASSERT_EQ(parsed.toggles.get(i, k), pattern.get(i, k))
                << "cycle " << i << " signal " << k;
}

TEST(Vcd, HeaderContainsHierarchyAndVars)
{
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    std::ostringstream os;
    VcdWriter writer(os, nl, {0, 1});
    writer.writeHeader();
    const std::string header = os.str();
    EXPECT_NE(header.find("$timescale"), std::string::npos);
    EXPECT_NE(header.find("$scope module"), std::string::npos);
    EXPECT_NE(header.find("$var wire 1"), std::string::npos);
    EXPECT_NE(header.find("$enddefinitions"), std::string::npos);
}

TEST(Vcd, DatasetColumnsSurviveVcdRoundTrip)
{
    // Integration: dump real dataset toggle columns as VCD, parse them
    // back, and compare bit-for-bit — the interchange path a waveform
    // tool would consume.
    const Dataset ds = smallDataset(1);
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    std::vector<uint32_t> ids = {2, 50, 300, 900};

    std::ostringstream os;
    VcdWriter writer(os, nl, ids);
    writer.writeHeader();
    for (size_t i = 0; i < ds.cycles(); ++i) {
        BitVector row(ids.size());
        for (size_t k = 0; k < ids.size(); ++k)
            if (ds.X.get(i, ids[k]))
                row.setBit(k);
        writer.writeCycle(row);
    }
    writer.finish();

    std::istringstream is(os.str());
    const VcdTrace parsed = parseVcd(is);
    ASSERT_EQ(parsed.toggles.rows(), ds.cycles());
    for (size_t k = 0; k < ids.size(); ++k)
        for (size_t i = 0; i < ds.cycles(); ++i)
            ASSERT_EQ(parsed.toggles.get(i, k), ds.X.get(i, ids[k]))
                << "cycle " << i << " signal " << ids[k];
}

TEST(Vcd, WriterRequiresHeaderFirst)
{
    const Netlist nl = DesignBuilder::build(DesignConfig::tiny());
    std::ostringstream os;
    VcdWriter writer(os, nl, {0});
    BitVector row(1);
    EXPECT_THROW(writer.writeCycle(row), FatalError);
}

} // namespace
} // namespace apollo
