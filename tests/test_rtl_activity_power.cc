/**
 * @file
 * Tests for the RTL netlist generator, the activity engine (toggle
 * semantics + statelessness contract), the power oracle, and the PDN
 * model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "activity/activity_engine.hh"
#include "power/pdn_model.hh"
#include "power/power_oracle.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"
#include "uarch/core.hh"

namespace apollo {
namespace {

using namespace asm_helpers;

Netlist
tinyNetlist()
{
    return DesignBuilder::build(DesignConfig::tiny());
}

TEST(DesignBuilder, BuildsAllUnitsWithExpectedKinds)
{
    const Netlist nl = tinyNetlist();
    EXPECT_GT(nl.signalCount(), 1000u);
    EXPECT_GT(nl.buses().size(), 5u);
    EXPECT_GT(nl.totalCap(), 0.0);

    size_t gclk = 0;
    size_t clken = 0;
    size_t ff = 0;
    size_t bus_bits = 0;
    for (const Signal &sig : nl.signals()) {
        switch (sig.kind) {
          case SignalKind::GatedClock: gclk++; break;
          case SignalKind::ClockEnable: clken++; break;
          case SignalKind::FlipFlop: ff++; break;
          case SignalKind::BusBit: bus_bits++; break;
          default: break;
        }
    }
    EXPECT_GT(gclk, 10u);
    EXPECT_EQ(gclk, clken) << "every gated clock has an enable";
    EXPECT_GT(ff, 200u);
    EXPECT_GT(bus_bits, 100u);

    // Unit ranges tile the id space.
    size_t covered = 0;
    for (size_t u = 0; u < numUnits; ++u)
        covered += nl.unitRange(static_cast<UnitId>(u)).count;
    EXPECT_EQ(covered, nl.signalCount());
}

TEST(DesignBuilder, DeterministicPerSeed)
{
    const Netlist a = DesignBuilder::build(DesignConfig::tiny());
    const Netlist b = DesignBuilder::build(DesignConfig::tiny());
    ASSERT_EQ(a.signalCount(), b.signalCount());
    for (size_t i = 0; i < a.signalCount(); i += 37) {
        EXPECT_EQ(a.signal(i).cap, b.signal(i).cap);
        EXPECT_EQ(a.signal(i).kind, b.signal(i).kind);
    }
}

TEST(DesignBuilder, PresetsScaleAsDocumented)
{
    const Netlist n1 = DesignBuilder::build(DesignConfig::neoverseN1ish());
    const Netlist a77 =
        DesignBuilder::build(DesignConfig::cortexA77ish());
    EXPECT_GT(n1.signalCount(), 20000u);
    EXPECT_LT(n1.signalCount(), 30000u);
    EXPECT_GT(a77.signalCount(), 1.5 * n1.signalCount());
}

TEST(Netlist, SignalNamesAreHierarchical)
{
    const Netlist nl = tinyNetlist();
    const std::string name = nl.signalName(0);
    EXPECT_NE(name.find("u_"), std::string::npos);
    EXPECT_NE(name.find('/'), std::string::npos);
}

std::vector<ActivityFrame>
framesFor(const Netlist &, const Program &prog, uint64_t cycles)
{
    TimingCore core;
    return core.collectFrames(prog, cycles);
}

TEST(ActivityEngine, GatedClockFollowsEnable)
{
    const Netlist nl = tinyNetlist();
    ActivityEngine engine(nl);
    const Program prog =
        Program::makeLoop("p", {add(0, 1, 2), eor(3, 0, 1)}, 800);
    const auto frames = framesFor(nl, prog, 1000);

    // Find a gated clock in the vector unit (idle → gated).
    const UnitRange &vec = nl.unitRange(UnitId::VecExec);
    uint32_t gclk_id = vec.first;
    while (nl.signal(gclk_id).kind != SignalKind::GatedClock)
        gclk_id++;

    for (size_t i = 0; i < frames.size(); i += 13) {
        if (!frames[i].enabled(UnitId::VecExec)) {
            EXPECT_FALSE(engine.toggles(gclk_id, frames, i, 0));
        } else if (frames[i].act(UnitId::VecExec) >= 0.999f) {
            EXPECT_TRUE(engine.toggles(gclk_id, frames, i, 0));
        }
    }
}

TEST(ActivityEngine, ClockEnableTogglesOnGatingEdges)
{
    const Netlist nl = tinyNetlist();
    ActivityEngine engine(nl);
    // One vector op per ~24-cycle serialized-divide iteration: the
    // vector unit gates between vadds, producing enable edges.
    const Program prog = Program::makeLoop(
        "p", {vadd(0, 1, 2), div(1, 1, 2), div(2, 2, 3)}, 200);
    const auto frames = framesFor(nl, prog, 1000);

    const UnitRange &vec = nl.unitRange(UnitId::VecExec);
    uint32_t en_id = vec.first;
    while (nl.signal(en_id).kind != SignalKind::ClockEnable)
        en_id++;

    size_t edge_count = 0;
    for (size_t i = 1; i < frames.size(); ++i) {
        const bool toggled = engine.toggles(en_id, frames, i, 0);
        const bool edge = frames[i].enabled(UnitId::VecExec) !=
                          frames[i - 1].enabled(UnitId::VecExec);
        EXPECT_EQ(toggled, edge);
        edge_count += edge;
    }
    EXPECT_GT(edge_count, 0u) << "expected gating edges in this workload";
}

TEST(ActivityEngine, GatedUnitsDoNotToggleDataSignals)
{
    const Netlist nl = tinyNetlist();
    ActivityEngine engine(nl);
    // Scalar-only loop: vector unit gated most of the time.
    std::vector<Instruction> body;
    for (int i = 0; i < 8; ++i)
        body.push_back(add(i % 8, (i + 1) % 8, 2));
    const auto frames =
        framesFor(nl, Program::makeLoop("s", body, 600), 2000);

    const UnitRange &vec = nl.unitRange(UnitId::VecExec);
    for (size_t i = 0; i < frames.size(); ++i) {
        if (frames[i].enabled(UnitId::VecExec))
            continue;
        for (uint32_t s = vec.first; s < vec.first + vec.count;
             s += 17) {
            if (nl.signal(s).kind == SignalKind::ClockEnable)
                continue;
            EXPECT_FALSE(engine.toggles(s, frames, i, 0))
                << "signal " << s << " toggled while gated";
        }
    }
}

TEST(ActivityEngine, StatelessnessAnySubsetMatchesFullTrace)
{
    // The emulator-flow guarantee: tracing a subset of signals yields
    // exactly the bits of the full trace.
    const Netlist nl = tinyNetlist();
    DatasetBuilder builder(nl);
    builder.addProgram(
        Program::makeLoop("p", {vfma(0, 1, 2), ldr(3, 30, 8)}, 800), 800);
    const Dataset full = builder.build();

    std::vector<uint32_t> subset = {3, 99, 500, 1200,
                                    static_cast<uint32_t>(
                                        nl.signalCount() - 1)};
    const auto begin_of = builder.segmentBeginTable();
    const BitColumnMatrix proxy_bits = DatasetBuilder::traceProxies(
        builder.engine(), builder.frames(), subset, begin_of);

    for (size_t q = 0; q < subset.size(); ++q)
        for (size_t i = 0; i < full.cycles(); ++i)
            ASSERT_EQ(proxy_bits.get(i, q), full.X.get(i, subset[q]))
                << "mismatch at cycle " << i << " signal " << subset[q];
}

TEST(ActivityEngine, ToggleProbabilityClampsAndResponds)
{
    Signal sig;
    sig.baseRate = 0.01f;
    sig.actSensitivity = 0.8f;
    sig.dataSensitivity = 0.5f;
    const float idle = ActivityEngine::toggleProbability(sig, 0.f, 0.f);
    const float busy = ActivityEngine::toggleProbability(sig, 1.f, 1.f);
    const float busy_lowdata =
        ActivityEngine::toggleProbability(sig, 1.f, 0.f);
    EXPECT_NEAR(idle, 0.01f, 1e-6);
    EXPECT_GT(busy, busy_lowdata);
    EXPECT_LE(busy, 0.95f);

    sig.baseRate = 5.0f; // absurd: must clamp
    EXPECT_LE(ActivityEngine::toggleProbability(sig, 1.f, 1.f), 0.95f);
}

TEST(PowerOracle, PowerScalesWithActivity)
{
    const Netlist nl = tinyNetlist();
    DatasetBuilder builder(nl);

    // High-power virus vs near-idle loop.
    builder.addProgram(
        Program::makeLoop("virus",
                          {vfma(0, 1, 2), vfma(3, 4, 5), mul(0, 1, 2),
                           ldr(4, 30, 0), vmul(6, 7, 8)},
                          300),
        600);
    // Low-power benchmark: a serialized divide chain (frontend mostly
    // stalled, exec units gated between divides).
    builder.addProgram(
        Program::makeLoop("lowpwr", {div(1, 1, 2), div(1, 1, 3)}, 300),
        600);
    const Dataset ds = builder.build();

    double virus_power = 0.0;
    double idle_power = 0.0;
    const auto &segs = ds.segments;
    ASSERT_EQ(segs.size(), 2u);
    for (size_t i = segs[0].begin; i < segs[0].end; ++i)
        virus_power += ds.y[i];
    virus_power /= static_cast<double>(segs[0].cycles());
    for (size_t i = segs[1].begin; i < segs[1].end; ++i)
        idle_power += ds.y[i];
    idle_power /= static_cast<double>(segs[1].cycles());

    EXPECT_GT(virus_power, 2.0 * idle_power);
    EXPECT_GT(idle_power, 0.0) << "leakage floor must be positive";
}

TEST(PowerOracle, BreakdownMatchesComponents)
{
    const Netlist nl = tinyNetlist();
    PowerOracle oracle(nl);
    ActivityFrame frame;
    for (size_t u = 0; u < numUnits; ++u) {
        frame.activity[u] = 0.5f;
        frame.clockEnabled[u] = true;
        frame.dataToggle[u] = 0.5f;
    }
    // All signals toggling.
    const size_t words = (nl.signalCount() + 63) / 64;
    std::vector<uint64_t> row(words, ~0ULL);

    const PowerBreakdown bd = oracle.cyclePowerBreakdown(frame, row);
    EXPECT_GT(bd.dynamic, 0.0);
    EXPECT_GT(bd.glitch, 0.0);
    EXPECT_GT(bd.leakage, 0.0);
    EXPECT_NEAR(bd.shortCircuit,
                oracle.params().shortCircuitFactor *
                    (bd.dynamic + bd.glitch),
                1e-9);

    double unit_sum = 0.0;
    for (double u : bd.unitDynamic)
        unit_sum += u;
    EXPECT_NEAR(unit_sum, bd.dynamic, 1e-6 * bd.dynamic);

    // cyclePower (with noise) should be within a few percent of the
    // breakdown total (scaled).
    const double p = oracle.cyclePower(frame, row);
    const double expect =
        bd.total() * oracle.params().outputScale;
    EXPECT_NEAR(p, expect, 0.1 * expect);
}

TEST(PowerOracle, MostlyLinearInToggles)
{
    // The dyn component must dominate: zero toggles => leakage only.
    const Netlist nl = tinyNetlist();
    PowerOracle oracle(nl);
    ActivityFrame frame;
    const size_t words = (nl.signalCount() + 63) / 64;
    std::vector<uint64_t> none(words, 0);
    const double floor = oracle.cyclePower(frame, none);
    EXPECT_NEAR(floor, oracle.leakagePower(),
                0.1 * oracle.leakagePower() + 1e-9);
}

TEST(PdnModel, StepRespondsToCurrentStepAndRingsBack)
{
    PdnParams p;
    PdnModel pdn(p);
    // Flat current: voltage ~ vdd - IR.
    double v = p.vdd;
    for (int i = 0; i < 50; ++i)
        v = pdn.step(10.0);
    EXPECT_NEAR(v, p.vdd - p.rStatic * 10.0, 1e-3);

    // Large current step: droop below static level, then ring.
    double min_v = v;
    double max_v = v;
    for (int i = 0; i < 60; ++i) {
        v = pdn.step(40.0);
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
    }
    EXPECT_LT(min_v, p.vdd - p.rStatic * 40.0 - 1e-4)
        << "expected dynamic droop below the static IR level";
    EXPECT_GT(max_v, p.vdd - p.rStatic * 40.0)
        << "expected overshoot ringing above the static level";
}

TEST(PdnModel, ResetRestoresInitialState)
{
    PdnModel pdn;
    pdn.step(5.0);
    pdn.step(50.0);
    pdn.reset();
    const double v1 = pdn.step(5.0);
    PdnModel fresh;
    const double v2 = fresh.step(5.0);
    EXPECT_DOUBLE_EQ(v1, v2);
}

} // namespace
} // namespace apollo
