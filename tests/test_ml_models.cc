/**
 * @file
 * Tests for K-means signal clustering, randomized PCA, and the PowerNet
 * nonlinear baseline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/kmeans.hh"
#include "ml/metrics.hh"
#include "ml/neural_net.hh"
#include "ml/pca.hh"
#include "util/rng.hh"

namespace apollo {
namespace {

/** Columns drawn from `groups` shared patterns + per-column noise. */
BitColumnMatrix
groupedColumns(size_t n, size_t cols_per_group, size_t groups,
               uint64_t seed, double flip = 0.02)
{
    BitColumnMatrix X(n, cols_per_group * groups);
    Xoshiro256StarStar rng(seed);
    std::vector<std::vector<uint8_t>> base(groups,
                                           std::vector<uint8_t>(n));
    for (size_t g = 0; g < groups; ++g)
        for (size_t r = 0; r < n; ++r)
            base[g][r] = rng.nextDouble() < 0.25 ? 1 : 0;
    for (size_t g = 0; g < groups; ++g) {
        for (size_t k = 0; k < cols_per_group; ++k) {
            const size_t c = g * cols_per_group + k;
            for (size_t r = 0; r < n; ++r) {
                bool v = base[g][r];
                if (rng.nextDouble() < flip)
                    v = !v;
                if (v)
                    X.setBit(r, c);
            }
        }
    }
    return X;
}

TEST(Kmeans, RecoversPlantedGroups)
{
    const size_t groups = 6;
    const size_t per = 20;
    const BitColumnMatrix X = groupedColumns(800, per, groups, 9);
    KmeansConfig cfg;
    cfg.k = groups;
    const KmeansResult res = kmeansSignals(X, cfg);

    // Same-group columns should share a cluster; count the majority
    // agreement per planted group.
    size_t agree = 0;
    for (size_t g = 0; g < groups; ++g) {
        std::vector<size_t> votes(groups, 0);
        for (size_t k = 0; k < per; ++k)
            votes[res.assignment[g * per + k]]++;
        agree += *std::max_element(votes.begin(), votes.end());
    }
    EXPECT_GT(agree, static_cast<size_t>(0.9 * groups * per));
}

TEST(Kmeans, RepresentativesAreDistinctAndValid)
{
    const BitColumnMatrix X = groupedColumns(500, 15, 8, 21);
    KmeansConfig cfg;
    cfg.k = 8;
    const KmeansResult res = kmeansSignals(X, cfg);
    ASSERT_EQ(res.representatives.size(), 8u);
    std::vector<uint32_t> reps = res.representatives;
    std::sort(reps.begin(), reps.end());
    EXPECT_EQ(std::unique(reps.begin(), reps.end()), reps.end());
    for (uint32_t r : res.representatives)
        EXPECT_LT(r, X.cols());
}

TEST(Kmeans, DeterministicPerSeed)
{
    const BitColumnMatrix X = groupedColumns(400, 10, 5, 33);
    KmeansConfig cfg;
    cfg.k = 5;
    const KmeansResult a = kmeansSignals(X, cfg);
    const KmeansResult b = kmeansSignals(X, cfg);
    EXPECT_EQ(a.representatives, b.representatives);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Pca, CapturesLowRankStructure)
{
    // Rank-3-ish binary matrix: projections should reconstruct labels
    // driven by the same latent factors.
    const BitColumnMatrix X = groupedColumns(1200, 30, 3, 55, 0.01);
    const PcaModel pca = fitPca(X, 4);
    EXPECT_EQ(pca.components, 4u);
    EXPECT_EQ(pca.inputDims, X.cols());

    const std::vector<float> z = pca.projectAll(X);
    // Variance of the first component should dominate the fourth.
    double var1 = 0.0;
    double var4 = 0.0;
    double m1 = 0.0;
    double m4 = 0.0;
    const size_t n = X.rows();
    for (size_t i = 0; i < n; ++i) {
        m1 += z[i * 4 + 0];
        m4 += z[i * 4 + 3];
    }
    m1 /= n;
    m4 /= n;
    for (size_t i = 0; i < n; ++i) {
        var1 += (z[i * 4 + 0] - m1) * (z[i * 4 + 0] - m1);
        var4 += (z[i * 4 + 3] - m4) * (z[i * 4 + 3] - m4);
    }
    EXPECT_GT(var1, 3.0 * var4);
}

TEST(Pca, ProjectRowMatchesProjectAll)
{
    const BitColumnMatrix X = groupedColumns(300, 12, 4, 77);
    const PcaModel pca = fitPca(X, 5);
    const std::vector<float> z_all = pca.projectAll(X);

    for (size_t i = 0; i < X.rows(); i += 37) {
        std::vector<uint32_t> active;
        for (size_t c = 0; c < X.cols(); ++c)
            if (X.get(i, c))
                active.push_back(static_cast<uint32_t>(c));
        std::vector<float> z_row(5);
        pca.projectRow(active, z_row.data());
        for (size_t k = 0; k < 5; ++k)
            EXPECT_NEAR(z_row[k], z_all[i * 5 + k], 1e-3)
                << "row " << i << " comp " << k;
    }
}

TEST(PowerNet, LearnsLinearFunction)
{
    // y = sum of a few planted weights: even a nonlinear net must nail
    // this almost exactly.
    const size_t n = 3000;
    const size_t m = 60;
    BitColumnMatrix X(n, m);
    Xoshiro256StarStar rng(7);
    std::vector<float> w(m);
    for (size_t c = 0; c < m; ++c)
        w[c] = static_cast<float>(rng.nextDouble());
    std::vector<float> y(n, 1.0f);
    for (size_t c = 0; c < m; ++c)
        for (size_t r = 0; r < n; ++r)
            if (rng.nextDouble() < 0.25) {
                X.setBit(r, c);
                y[r] += w[c];
            }

    std::vector<uint32_t> ids(m);
    for (size_t c = 0; c < m; ++c)
        ids[c] = static_cast<uint32_t>(c);

    NeuralNetConfig cfg;
    cfg.epochs = 30;
    PowerNet net;
    net.train(X, ids, y, cfg);
    const std::vector<float> pred = net.predict(X);
    EXPECT_GT(r2Score(y, pred), 0.95);
}

TEST(PowerNet, LearnsNonlinearInteraction)
{
    // y depends on an AND of two features — out of reach for a linear
    // model with these two features alone, easy for the net.
    const size_t n = 4000;
    BitColumnMatrix X(n, 2);
    Xoshiro256StarStar rng(13);
    std::vector<float> y(n);
    for (size_t r = 0; r < n; ++r) {
        const bool a = rng.nextDouble() < 0.5;
        const bool b = rng.nextDouble() < 0.5;
        if (a)
            X.setBit(r, 0);
        if (b)
            X.setBit(r, 1);
        y[r] = (a && b) ? 3.0f : 1.0f;
    }
    NeuralNetConfig cfg;
    cfg.epochs = 60;
    cfg.hidden1 = 8;
    cfg.hidden2 = 4;
    PowerNet net;
    net.train(X, std::vector<uint32_t>{0, 1}, y, cfg);
    const std::vector<float> pred = net.predict(X);
    EXPECT_GT(r2Score(y, pred), 0.95);
}

TEST(PowerNet, DeterministicTraining)
{
    const BitColumnMatrix X = groupedColumns(500, 10, 3, 99);
    std::vector<float> y(X.rows());
    for (size_t r = 0; r < X.rows(); ++r)
        y[r] = static_cast<float>(X.get(r, 0) + 2 * X.get(r, 10));
    std::vector<uint32_t> ids(X.cols());
    for (size_t c = 0; c < X.cols(); ++c)
        ids[c] = static_cast<uint32_t>(c);

    NeuralNetConfig cfg;
    cfg.epochs = 3;
    PowerNet a;
    a.train(X, ids, y, cfg);
    PowerNet b;
    b.train(X, ids, y, cfg);
    const auto pa = a.predict(X);
    const auto pb = b.predict(X);
    for (size_t i = 0; i < pa.size(); ++i)
        ASSERT_EQ(pa[i], pb[i]) << "nondeterministic training";
}

} // namespace
} // namespace apollo
