/**
 * @file
 * Runtime droop guard (§8.2): integrate a quantized APOLLO OPM with the
 * RLC power-delivery model and use the OPM's per-cycle delta-I
 * estimate to trigger adaptive clocking *before* the voltage droop
 * develops. Compares worst-case voltage with and without the guard and
 * sweeps the trigger threshold (margin-vs-performance trade-off).
 *
 * Run: ./examples/droop_guard
 */

#include <algorithm>
#include <cstdio>

#include "apollo.hh"

using namespace apollo;

int
main()
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());

    // Train a model (GA-less for brevity).
    DatasetBuilder builder(netlist);
    Xoshiro256StarStar rng(2024);
    for (int i = 0; i < 18; ++i) {
        builder.addProgram(
            Program::makeLoop("t" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 24), 4000,
                              rng()),
            300);
    }
    const Trainer trainer(TrainOptions().targetQ(40));
    const ApolloModel model =
        trainer.train(builder.build(), netlist.name()).model;

    // A bursty workload: compute bursts after idle stretches are what
    // produce the worst Ldi/dt transients.
    Flows flows(netlist);
    const Program workload = makeLongWorkload("bursty", 16000, 0xd00);
    const FlowReport truth = flows.commercial(workload, 12000);
    const FlowReport est =
        flows.emulatorAssisted(workload, 12000, model);

    // The OPM watches its own estimate.
    const DidtAnalysis didt = analyzeDidt(truth.power, est.power, 0.75);
    std::printf("OPM delta-I tracking: Pearson=%.3f, droop-precursor "
                "recall=%.0f%%\n\n",
                didt.pearsonDeltaI, 100.0 * didt.deepDroopRecall);

    // Normalize the PDN gains to this design's current scale so a
    // full-swing current step produces a realistic ~4% droop.
    double mean_current = 0.0;
    for (float pwr : truth.power)
        mean_current += pwr;
    mean_current /= static_cast<double>(truth.power.size()) * 0.75;
    PdnParams pdn;
    pdn.rStatic = 0.01 / mean_current;
    pdn.dynamicGain = 0.05 / mean_current;
    const double droop_threshold = pdn.vdd * 0.965;
    const DroopSimResult base =
        simulateDroop(truth.power, pdn, droop_threshold);
    std::printf("without mitigation: min voltage %.4f V (%.1f mV "
                "droop), %llu cycles under the %.4f V threshold\n",
                base.minVoltage,
                1000.0 * (pdn.vdd - base.minVoltage),
                static_cast<unsigned long long>(base.droopCycles),
                droop_threshold);

    // Sweep the trigger percentile: tighter triggers buy margin at the
    // cost of throttled cycles.
    std::vector<double> di = deltaI(currentFromPower(est.power,
                                                     pdn.vdd));
    std::vector<double> mags;
    for (double d : di)
        mags.push_back(std::abs(d));
    std::sort(mags.begin(), mags.end());

    std::printf("\nOPM-guided adaptive clocking (stretch 0.5x for 6 "
                "cycles after a trigger):\n");
    std::printf("%-12s %-14s %-14s %-12s\n", "trigger pctl",
                "min voltage", "margin gain", "throttled");
    for (double pctl : {0.995, 0.99, 0.97, 0.92}) {
        const double trigger =
            mags[static_cast<size_t>(pctl * (mags.size() - 1))];
        const DroopSimResult guarded = simulateWithMitigation(
            truth.power, est.power, pdn, droop_threshold, trigger, 0.5,
            6);
        std::printf("%-12.3f %-14.4f %+8.1f mV   %5.2f%% of cycles\n",
                    pctl, guarded.minVoltage,
                    1000.0 * (guarded.minVoltage - base.minVoltage),
                    100.0 * guarded.throttledCycles /
                        truth.power.size());
    }
    std::printf("\nthe per-cycle OPM is what makes this possible: "
                "coarse monitors (1000+ cycle resolution) cannot see "
                "Ldi/dt transients that develop in <10 cycles.\n");
    return 0;
}
