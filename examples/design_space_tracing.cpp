/**
 * @file
 * Design-time power introspection at workload scale (§5, §8.1): trace a
 * long multi-phase workload through the *streaming* emulator-assisted
 * flow (proxy bits generated chunk by chunk, per-cycle power delivered
 * to a sink — the full power trace never materializes), dump a VCD of
 * the proxies for waveform tools, and use the model for a relative
 * microarchitecture comparison (§7.3: unbiased predictions make
 * relative comparisons trustworthy) — here, the power cost of the
 * three throttling schemes across the whole workload.
 *
 * Run: ./examples/design_space_tracing
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apollo.hh"

using namespace apollo;

namespace {

/**
 * Online power profiler: consumes the per-cycle stream and keeps only
 * reductions — the running mean, a coarse phase profile, and 64-cycle
 * window means for the sustained-peak percentile. Memory is O(cycles /
 * 64) regardless of how the engine chunks the trace.
 */
class ProfileSink final : public PowerSink
{
  public:
    Status
    consume(uint64_t, std::span<const float> values) override
    {
        for (const float v : values) {
            sum_ += v;
            ++count_;
            winAcc_ += v;
            if (++winFill_ == 64) {
                windows_.push_back(winAcc_ / 64);
                winAcc_ = 0.0;
                winFill_ = 0;
            }
            phaseAcc_ += v;
            if (++phaseFill_ == kPhase) {
                phases_.push_back(phaseAcc_ / kPhase);
                phaseAcc_ = 0.0;
                phaseFill_ = 0;
            }
        }
        return Status::okStatus();
    }

    double
    meanPower() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** 99.5th percentile of 64-cycle window means (sustained peak). */
    double
    peakPower() const
    {
        std::vector<double> sorted = windows_;
        std::sort(sorted.begin(), sorted.end());
        return sorted.empty()
                   ? 0.0
                   : sorted[static_cast<size_t>(
                         0.995 * (sorted.size() - 1))];
    }

    static constexpr size_t kPhase = 2000;
    const std::vector<double> &
    phases() const
    {
        return phases_;
    }

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
    double winAcc_ = 0.0;
    size_t winFill_ = 0;
    std::vector<double> windows_;
    double phaseAcc_ = 0.0;
    size_t phaseFill_ = 0;
    std::vector<double> phases_;
};

} // namespace

int
main()
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());

    // Train once.
    DatasetBuilder builder(netlist);
    Xoshiro256StarStar rng(31337);
    for (int i = 0; i < 18; ++i) {
        builder.addProgram(
            Program::makeLoop("t" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 24), 4000,
                              rng()),
            300);
    }
    const Trainer trainer(TrainOptions().targetQ(40));
    const ApolloModel model =
        trainer.train(builder.build(), netlist.name()).model;

    // Streaming emulator-assisted tracing of a long workload: the sink
    // reduces the power stream online, so peak memory is bounded by
    // the chunk size rather than the workload length.
    Flows flows(netlist);
    const Program workload = makeLongWorkload("workload", 120000, 4);
    ProfileSink profile;
    const FlowReport trace =
        flows.emulatorStreaming(workload, 100000, model, profile);
    std::printf("traced %llu cycles in %.2fs (%.0f kcycles/s); proxy "
                "trace %.2f MB vs %.1f MB for all signals\n",
                static_cast<unsigned long long>(trace.cycles),
                trace.totalSeconds(),
                trace.cycles / trace.totalSeconds() / 1e3,
                trace.traceBytes / 1e6,
                static_cast<double>(netlist.signalCount()) *
                    trace.cycles / 8 / 1e6);

    // Phase profile, reduced online by the sink.
    std::printf("\nwindowed power profile (one row per %zu cycles):\n",
                ProfileSink::kPhase);
    const size_t shown = std::min<size_t>(profile.phases().size(), 20);
    for (size_t w = 0; w < shown; ++w) {
        const double acc = profile.phases()[w];
        std::printf("  %7zu %7.3f %s\n", w * ProfileSink::kPhase, acc,
                    std::string(static_cast<size_t>(acc * 30), '#')
                        .c_str());
    }

    // Dump the first 2000 cycles of proxy activity as VCD (opens in
    // GTKWave etc.).
    {
        DatasetBuilder wl(netlist);
        wl.addProgram(workload, 2000);
        const auto begin_of = wl.segmentBeginTable();
        const BitColumnMatrix bits = DatasetBuilder::traceProxies(
            wl.engine(), wl.frames(), model.proxyIds, begin_of);
        std::ofstream os("proxies.vcd");
        VcdWriter vcd(os, netlist, model.proxyIds);
        vcd.writeHeader();
        for (size_t i = 0; i < bits.rows(); ++i) {
            BitVector row(bits.cols());
            for (size_t q = 0; q < bits.cols(); ++q)
                if (bits.get(i, q))
                    row.setBit(q);
            vcd.writeCycle(row);
        }
        vcd.finish();
        std::printf("\nwrote proxies.vcd (%llu cycles x %zu proxies)\n",
                    static_cast<unsigned long long>(
                        vcd.cyclesWritten()),
                    model.proxyCount());
    }

    // Relative microarchitecture comparison: throttling schemes over
    // the full workload, measured purely with the model. Each variant
    // streams through its own sink; no power vector is ever allocated.
    std::printf("\nthrottling-scheme comparison over the workload "
                "(model-only, no sign-off runs). Throttling caps the "
                "*peak*; dependence-bound phases keep their average:\n");
    const double base_mean = profile.meanPower();
    const double base_peak = profile.peakPower();
    std::printf("  %-10s avg %.3f  peak(p99.5/64cyc) %.3f\n",
                "baseline", base_mean, base_peak);
    for (auto [mode, name] :
         {std::pair{ThrottleMode::Scheme1, "scheme 1"},
          std::pair{ThrottleMode::Scheme2, "scheme 2"},
          std::pair{ThrottleMode::Scheme3, "scheme 3"}}) {
        CoreParams params;
        params.throttle = mode;
        Flows tflows(netlist, params);
        ProfileSink tp;
        tflows.emulatorStreaming(workload, 100000, model, tp);
        std::printf("  %-10s avg %.3f (%5.1f%%)  peak %.3f (%5.1f%%)\n",
                    name, tp.meanPower(),
                    100.0 * tp.meanPower() / base_mean, tp.peakPower(),
                    100.0 * tp.peakPower() / base_peak);
    }
    return 0;
}
