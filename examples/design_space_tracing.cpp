/**
 * @file
 * Design-time power introspection at workload scale (§5, §8.1): trace a
 * long multi-phase workload through the emulator-assisted flow
 * (proxy-only tracing + linear inference), dump a VCD of the proxies
 * for waveform tools, and use the model for a relative
 * microarchitecture comparison (§7.3: unbiased predictions make
 * relative comparisons trustworthy) — here, the power cost of the
 * three throttling schemes across the whole workload.
 *
 * Run: ./examples/design_space_tracing
 */

#include <cstdio>
#include <fstream>

#include "core/apollo_trainer.hh"
#include "flow/flows.hh"
#include "gen/ga_generator.hh"
#include "ml/metrics.hh"
#include "rtl/design_builder.hh"
#include "trace/toggle_trace.hh"
#include "trace/vcd.hh"

using namespace apollo;

int
main()
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());

    // Train once.
    DatasetBuilder builder(netlist);
    Xoshiro256StarStar rng(31337);
    for (int i = 0; i < 18; ++i) {
        builder.addProgram(
            Program::makeLoop("t" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 24), 4000,
                              rng()),
            300);
    }
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 40;
    const ApolloModel model =
        trainApollo(builder.build(), cfg, netlist.name()).model;

    // Emulator-assisted tracing of a long workload.
    DesignTimeFlows flows(netlist);
    const Program workload = makeLongWorkload("workload", 120000, 4);
    const FlowReport trace =
        flows.runEmulatorFlow(workload, 100000, model);
    std::printf("traced %llu cycles in %.2fs (%.0f kcycles/s); proxy "
                "trace %.2f MB vs %.1f MB for all signals\n",
                static_cast<unsigned long long>(trace.cycles),
                trace.totalSeconds(),
                trace.cycles / trace.totalSeconds() / 1e3,
                trace.traceBytes / 1e6,
                static_cast<double>(netlist.signalCount()) *
                    trace.cycles / 8 / 1e6);

    // Phase profile.
    const size_t window = 2000;
    std::printf("\nwindowed power profile (one row per %zu cycles):\n",
                window);
    for (size_t w = 0; w + window <= trace.power.size() && w < 20 * window;
         w += window) {
        double acc = 0.0;
        for (size_t i = 0; i < window; ++i)
            acc += trace.power[w + i];
        acc /= window;
        std::printf("  %7zu %7.3f %s\n", w, acc,
                    std::string(static_cast<size_t>(acc * 30), '#')
                        .c_str());
    }

    // Dump the first 2000 cycles of proxy activity as VCD (opens in
    // GTKWave etc.).
    {
        DatasetBuilder wl(netlist);
        wl.addProgram(workload, 2000);
        const auto begin_of = wl.segmentBeginTable();
        const BitColumnMatrix bits = DatasetBuilder::traceProxies(
            wl.engine(), wl.frames(), model.proxyIds, begin_of);
        std::ofstream os("proxies.vcd");
        VcdWriter vcd(os, netlist, model.proxyIds);
        vcd.writeHeader();
        for (size_t i = 0; i < bits.rows(); ++i) {
            BitVector row(bits.cols());
            for (size_t q = 0; q < bits.cols(); ++q)
                if (bits.get(i, q))
                    row.setBit(q);
            vcd.writeCycle(row);
        }
        vcd.finish();
        std::printf("\nwrote proxies.vcd (%llu cycles x %zu proxies)\n",
                    static_cast<unsigned long long>(
                        vcd.cyclesWritten()),
                    model.proxyCount());
    }

    // Relative microarchitecture comparison: throttling schemes over
    // the full workload, measured purely with the model.
    std::printf("\nthrottling-scheme comparison over the workload "
                "(model-only, no sign-off runs). Throttling caps the "
                "*peak*; dependence-bound phases keep their average:\n");
    auto peak_power = [](const std::vector<float> &power) {
        // 99.5th percentile of 64-cycle windows (sustained peak).
        std::vector<double> windows;
        for (size_t w = 0; w + 64 <= power.size(); w += 64) {
            double acc = 0.0;
            for (size_t i = 0; i < 64; ++i)
                acc += power[w + i];
            windows.push_back(acc / 64);
        }
        std::sort(windows.begin(), windows.end());
        return windows[static_cast<size_t>(0.995 *
                                           (windows.size() - 1))];
    };
    const double base_mean = mean(trace.power);
    const double base_peak = peak_power(trace.power);
    std::printf("  %-10s avg %.3f  peak(p99.5/64cyc) %.3f\n",
                "baseline", base_mean, base_peak);
    for (auto [mode, name] :
         {std::pair{ThrottleMode::Scheme1, "scheme 1"},
          std::pair{ThrottleMode::Scheme2, "scheme 2"},
          std::pair{ThrottleMode::Scheme3, "scheme 3"}}) {
        CoreParams params;
        params.throttle = mode;
        DesignTimeFlows tflows(netlist, params);
        const FlowReport rep =
            tflows.runEmulatorFlow(workload, 100000, model);
        std::printf("  %-10s avg %.3f (%5.1f%%)  peak %.3f (%5.1f%%)\n",
                    name, mean(rep.power),
                    100.0 * mean(rep.power) / base_mean,
                    peak_power(rep.power),
                    100.0 * peak_power(rep.power) / base_peak);
    }
    return 0;
}
