/**
 * @file
 * Power-virus hunting with the GA micro-benchmark generator (§4.1,
 * GeST-style): evolve instruction sequences toward the worst-case
 * power consumer of a design, then inspect what the virus stresses and
 * how much headroom the throttling schemes claw back.
 *
 * This is the design-time workflow a power architect runs to size the
 * power-delivery network and validate max-power mitigation.
 *
 * Run: ./examples/power_virus_hunt
 */

#include <cstdio>

#include "apollo.hh"

using namespace apollo;

int
main()
{
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    DatasetBuilder builder(netlist);

    std::printf("hunting the power virus of '%s' (%zu signals)...\n",
                netlist.name().c_str(), netlist.signalCount());

    GaConfig config;
    config.populationSize = 24;
    config.generations = 10;
    config.fitnessCycles = 400;
    GaGenerator ga(builder, config);
    ga.run();

    // Envelope per generation.
    std::printf("\ngeneration envelope (max avg power):\n");
    for (uint32_t gen = 0; gen < config.generations; ++gen) {
        double best = 0.0;
        for (const GaIndividual &ind : ga.all())
            if (ind.generation == gen)
                best = std::max(best, ind.avgPower);
        std::printf("  gen %2u: %.3f %s\n", gen, best,
                    std::string(static_cast<size_t>(best * 8), '#')
                        .c_str());
    }

    const GaIndividual &virus = ga.best();
    std::printf("\npower virus (avg power %.3f, %.1fx the weakest "
                "individual):\n",
                virus.avgPower,
                ga.powerRangeRatio());
    const Program virus_prog =
        GaGenerator::toProgram(virus, "virus", 2000);
    std::printf("%s\n", virus_prog.toString().c_str());

    // What does it stress? Compare against the handcrafted virus.
    const double handcrafted = builder.averagePower(
        Program::makeLoop("handcrafted", maxPowerBody(), 2000, 7), 400);
    std::printf("handcrafted max-power kernel: %.3f -> the GA %s it "
                "by %.1f%%\n",
                handcrafted,
                virus.avgPower >= handcrafted ? "beats" : "trails",
                100.0 * (virus.avgPower - handcrafted) / handcrafted);

    // Throttling headroom: the N1 TRM-style schemes applied to the
    // evolved virus.
    std::printf("\nthrottling the virus (max-power mitigation):\n");
    for (auto [mode, name] :
         {std::pair{ThrottleMode::None, "no throttle"},
          std::pair{ThrottleMode::Scheme1, "scheme 1 (issue cap 2)"},
          std::pair{ThrottleMode::Scheme2, "scheme 2 (duty cycle)"},
          std::pair{ThrottleMode::Scheme3, "scheme 3 (vector limit)"}}) {
        CoreParams params;
        params.throttle = mode;
        DatasetBuilder throttled(netlist, params);
        const double power =
            throttled.averagePower(virus_prog, 400);
        std::printf("  %-24s avg power %.3f (%.1f%% of unthrottled)\n",
                    name, power, 100.0 * power / virus.avgPower);
    }
    return 0;
}
