/**
 * @file
 * Quickstart: the whole APOLLO pipeline in ~80 lines of API calls.
 *
 *   1. build a synthetic CPU design (netlist + cycle-level core),
 *   2. generate training data by simulating micro-benchmarks and
 *      labeling every cycle with ground-truth power,
 *   3. select Q power proxies with MCP and relax-refit (trainApollo),
 *   4. evaluate per-cycle accuracy on an unseen benchmark,
 *   5. quantize to a 10-bit on-chip power meter and check the
 *      bit-true hardware output.
 *
 * Run: ./examples/quickstart
 */

#include <cstdio>

#include "apollo.hh"

using namespace apollo;

int
main()
{
    // 1. The design: a small out-of-order core netlist (use
    //    neoverseN1ish() for the full-size experiments).
    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    std::printf("design '%s': %zu RTL signals\n",
                netlist.name().c_str(), netlist.signalCount());

    // 2. Training data: random micro-benchmarks, simulated and labeled
    //    with per-cycle ground-truth power (the GA generator in
    //    gen/ga_generator.hh automates diverse generation; random
    //    bodies keep this example fast).
    DatasetBuilder builder(netlist);
    Xoshiro256StarStar rng(42);
    for (int i = 0; i < 20; ++i) {
        const auto body = GaGenerator::randomBody(rng, 6, 24);
        builder.addProgram(
            Program::makeLoop("train" + std::to_string(i), body, 4000,
                              rng()),
            300);
    }
    const Dataset train = builder.build();
    std::printf("training set: %zu cycles x %zu signals (%.1f MB "
                "packed)\n",
                train.cycles(), train.signals(),
                train.X.byteSize() / 1e6);

    // 3. Train APOLLO: MCP proxy selection + ridge relaxation.
    const Trainer trainer(TrainOptions().targetQ(40));
    const ApolloTrainResult result =
        trainer.train(train, netlist.name());
    std::printf("selected Q=%zu proxies (%.2f%% of signals) in %.1fs; "
                "relaxation %.2fs\n",
                result.model.proxyCount(),
                100.0 * result.model.proxyCount() /
                    netlist.signalCount(),
                result.selectSeconds, result.relaxSeconds);

    // 4. Evaluate on an unseen benchmark.
    DatasetBuilder eval(netlist);
    const auto body = GaGenerator::randomBody(rng, 10, 20);
    eval.addProgram(Program::makeLoop("unseen", body, 4000, 777), 800);
    const Dataset test = eval.build();
    const Inference inference(result.model);
    const auto pred = inference.predictFull(test.X);
    std::printf("unseen benchmark: R2=%.4f NRMSE=%.2f%% NMAE=%.2f%%\n",
                r2Score(test.y, pred), 100.0 * nrmse(test.y, pred),
                100.0 * nmae(test.y, pred));

    // 5. The runtime OPM: 10-bit weights, bit-true hardware semantics,
    //    through the same Inference entry point.
    const QuantizedModel qm = quantizeModel(result.model, 10);
    const BitColumnMatrix proxies =
        test.X.selectColumns(result.model.proxyIds);
    const Inference opm(qm, 1);
    const auto hw = opm.predict(proxies);
    std::printf("10-bit OPM (bit-true): R2=%.4f (cycle-sum width %u "
                "bits, latency %u cycles)\n",
                r2Score(test.y, hw),
                OpmSimulator(qm, 1).cycleSumBits(),
                OpmSimulator::latencyCycles);
    return 0;
}
