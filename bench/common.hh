/**
 * @file
 * Shared experiment context for the bench harnesses: the target design,
 * the GA-generated training dataset (§7.1: power-uniform selection from
 * the GA population), the designer test suite dataset (Table 4), and
 * the flip-flop id list for PRIMAL-class baselines.
 *
 * The context is cached on disk (build tree) after the first bench
 * builds it, so every table/figure binary starts from identical data.
 * Set APOLLO_BENCH_FAST=1 for reduced budgets during development.
 */

#ifndef APOLLO_BENCH_COMMON_HH
#define APOLLO_BENCH_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "apollo.hh"

namespace apollo::bench {

/** Which design a bench targets. */
enum class Design
{
    N1ish,
    A77ish,
};

/** The shared experiment inputs. */
struct Context
{
    Netlist netlist;
    Dataset train;
    Dataset test;
    /** Flip-flop signal ids (PRIMAL input space). */
    std::vector<uint32_t> flipflopIds;
    bool fast = false;

    double qOverM(size_t q) const
    {
        return static_cast<double>(q) / netlist.signalCount();
    }
};

/** Build (or load from cache) the context for @p design. */
Context loadContext(Design design);

/**
 * The shared Fig. 3 GA configuration (§4.1 budgets), the single
 * source of truth for every bench and tool that runs the GA.
 * @p full_generations sets the non-fast generation count (Fig. 3
 * plots 12; the training contexts use 10).
 */
GaConfig benchGaConfig(bool fast, uint32_t full_generations = 10);

/** Training-export budgets shared by the context builders. */
struct TrainExportBudget
{
    size_t benchmarks = 0;
    uint64_t cyclesEach = 0;
};
TrainExportBudget benchTrainBudget(Design design, bool fast);

/** True when APOLLO_BENCH_FAST=1. */
bool fastMode();

/** Paper-style header line for a bench. */
void printHeader(const std::string &experiment_id,
                 const std::string &description, const Context &ctx);

/** Train APOLLO at the given Q with the paper's settings. */
ApolloTrainResult trainApolloAtQ(const Context &ctx, size_t q);

/**
 * Current obs counter values (empty when the build has APOLLO_OBS=0 or
 * the registry is runtime-disabled). Snapshot one at the start of the
 * measured region and pass it to obsDeltaJson() when writing results.
 */
std::map<std::string, uint64_t> obsCounters();

/**
 * Render counter deltas since @p before as one JSON object on a single
 * line, e.g. `{"apollo.solver.fits": 12}` — the "obs" section of the
 * BENCH_*.json files. Unchanged counters are omitted.
 */
std::string obsDeltaJson(const std::map<std::string, uint64_t> &before);

} // namespace apollo::bench

#endif // APOLLO_BENCH_COMMON_HH
