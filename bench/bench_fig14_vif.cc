/**
 * @file
 * Reproduces Fig. 14: the average variance inflation factor (VIF) of
 * the selected proxies, per method. MCP shrinks correlated signals at
 * different rates so near-duplicates are not co-selected -> low VIF;
 * Lasso co-selects correlated groups -> high VIF; Simmani's
 * cluster-representative selection is also low-VIF by construction
 * (but unsupervised, hence less accurate — Fig. 10).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

namespace {

/** VIF of a proxy set over (a row subsample of) the training matrix. */
double
proxyVif(const Context &ctx, const std::vector<uint32_t> &ids)
{
    // Subsample rows for tractability; VIF is a correlation statistic.
    const size_t cap = 6000;
    const size_t stride =
        std::max<size_t>(1, ctx.train.cycles() / cap);
    std::vector<uint32_t> rows;
    for (size_t i = 0; i < ctx.train.cycles(); i += stride)
        rows.push_back(static_cast<uint32_t>(i));
    const Dataset sub = ctx.train.selectRows(rows);
    return averageVif(sub.X.selectColumns(ids));
}

} // namespace

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 14",
                "average variance inflation factor of selected proxies",
                ctx);

    const size_t q = ctx.fast ? 60 : 159;
    BitFeatureView view(ctx.train.X);

    ProxySelectorConfig mcp_cfg;
    mcp_cfg.targetQ = q;
    const auto mcp = selectProxies(view, ctx.train.y, mcp_cfg);

    ProxySelectorConfig lasso_cfg;
    lasso_cfg.targetQ = q;
    lasso_cfg.kind = PenaltyKind::Lasso;
    const auto lasso = selectProxies(view, ctx.train.y, lasso_cfg);

    KmeansConfig km;
    km.k = static_cast<uint32_t>(q);
    const KmeansResult clusters = kmeansSignals(ctx.train.X, km);
    std::vector<uint32_t> sim_ids = clusters.representatives;
    std::sort(sim_ids.begin(), sim_ids.end());
    sim_ids.erase(std::unique(sim_ids.begin(), sim_ids.end()),
                  sim_ids.end());

    TablePrinter table({"method", "Q", "average VIF"});
    table.addRow({"APOLLO (MCP)", TablePrinter::integer(
                                      static_cast<long long>(
                                          mcp.proxyIds.size())),
                  TablePrinter::num(proxyVif(ctx, mcp.proxyIds), 2)});
    table.addRow({"Lasso [53]", TablePrinter::integer(
                                    static_cast<long long>(
                                        lasso.proxyIds.size())),
                  TablePrinter::num(proxyVif(ctx, lasso.proxyIds), 2)});
    table.addRow({"Simmani (K-means) [40]",
                  TablePrinter::integer(
                      static_cast<long long>(sim_ids.size())),
                  TablePrinter::num(proxyVif(ctx, sim_ids), 2)});
    table.render(std::cout);
    std::printf("\nexpected shape (paper): APOLLO and Simmani well "
                "below Lasso; Simmani is low-VIF but unsupervised "
                "(weaker accuracy, Fig. 10).\n");
    return 0;
}
