/**
 * @file
 * GA training-data generation perf bench: times the design-time
 * bottleneck — the Fig. 3 GA run plus power-uniform training-set
 * export — with the pipeline's optimization layers toggled one at a
 * time:
 *
 *   baseline       serial, uncached, scalar per-cycle fitness path,
 *                  two-pass export (re-simulates every selected
 *                  individual — the seed pipeline)
 *   +vectorized    batched toggle-column / bit-kernel fitness oracle
 *   +cache         genome-keyed fitness cache (elites and converged
 *                  populations skip re-simulation)
 *   +single-pass   dataset export reuses the frames captured during
 *                  fitness simulation
 *   all            + fitness evaluations fanned over the thread pool
 *
 * Counter-seeded slot RNG makes the GA trajectory independent of every
 * layer, so the bench gates hard on (a) identical per-generation
 * best/worst fitness across all layers, (b) byte-identical exported
 * training datasets (including vs the production generateTrainingSet
 * entry point), and (c) a wall-clock speedup floor over the GA run +
 * training selection (the phase these layers optimize; dataset
 * materialization is dominated by DatasetBuilder::build's full-power
 * labeling, identical across layers, and is reported but not gated).
 * The gated speedup is the best optimized configuration vs baseline:
 * on a multicore host that is the `all` layer; on a single-core host
 * `all` degenerates to `+single-pass` plus pool overhead, and picking
 * the best keeps the gate robust to that noise. Results go to
 * BENCH_ga.json.
 *
 * Usage: bench_perf_ga [--smoke] [--reps=N] [--out=PATH]
 * (--smoke: fast-mode budgets + relaxed timing floor; used by the
 * `perf` ctest label to catch identity/perf regressions.)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

namespace {

struct LayerConfig
{
    const char *name;
    bool vectorized;
    bool cache;
    bool singlePass;
    uint32_t threads; // 0 = hardware concurrency
};

struct LayerResult
{
    std::string name;
    double gaSeconds = 0.0;
    double exportSeconds = 0.0;
    /** Per-generation (best, worst) fitness — the GA trajectory. */
    std::vector<std::pair<double, double>> trajectory;
    GaRunStats stats;
    uint64_t exportSimulatedCycles = 0;
    std::string datasetBytes;
    bool trajectoryMatch = true;
    bool datasetMatch = true;

    double totalSeconds() const { return gaSeconds + exportSeconds; }
};

std::vector<std::pair<double, double>>
trajectoryOf(const GaGenerator &ga, uint32_t generations)
{
    std::vector<std::pair<double, double>> traj(
        generations, {-1e300, 1e300});
    for (const GaIndividual &ind : ga.all()) {
        auto &[best, worst] = traj[ind.generation];
        best = std::max(best, ind.avgPower);
        worst = std::min(worst, ind.avgPower);
    }
    return traj;
}

std::string
serialize(const Dataset &ds)
{
    std::ostringstream os(std::ios::binary);
    saveDataset(os, ds);
    return os.str();
}

/**
 * One full GA + export run with the layer's switches. The export
 * mirrors flow/flows.cc generateTrainingSet exactly (same benchmark
 * names and re-simulation trip counts) so the byte-identity gate
 * compares like with like across layers and vs the production entry.
 */
LayerResult
runLayer(const LayerConfig &layer, const Netlist &netlist,
         const GaConfig &base, const TrainExportBudget &budget,
         int reps)
{
    LayerResult result;
    result.name = layer.name;
    result.gaSeconds = 1e300;
    result.exportSeconds = 1e300;

    GaConfig cfg = base;
    cfg.vectorizedFitness = layer.vectorized;
    cfg.cacheFitness = layer.cache;
    cfg.captureFrames = layer.singlePass;
    cfg.threads = layer.threads;

    for (int rep = 0; rep < reps; ++rep) {
        DatasetBuilder fitness(netlist);

        const auto t0 = std::chrono::steady_clock::now();
        GaGenerator ga(fitness, cfg);
        ga.run();
        const std::vector<GaIndividual> selected =
            ga.selectTrainingSet(budget.benchmarks);
        const auto t1 = std::chrono::steady_clock::now();

        DatasetBuilder train(netlist);
        uint64_t resim_cycles = 0;
        int idx = 0;
        for (const GaIndividual &ind : selected) {
            const std::string name = "ga" + std::to_string(idx++);
            std::span<const ActivityFrame> captured =
                ga.capturedFrames(ind.id);
            if (captured.size() >= budget.cyclesEach) {
                train.addFrames(
                    name, captured.subspan(0, budget.cyclesEach));
            } else {
                const size_t before = train.frames().size();
                train.addProgram(
                    GaGenerator::toProgram(
                        ind, name,
                        GaGenerator::fitnessIterations(
                            ind.body.size(), cfg.fitnessCycles)),
                    budget.cyclesEach);
                resim_cycles += train.frames().size() - before;
            }
        }
        const Dataset ds = train.build();
        const auto t2 = std::chrono::steady_clock::now();

        result.gaSeconds = std::min(
            result.gaSeconds,
            std::chrono::duration<double>(t1 - t0).count());
        result.exportSeconds = std::min(
            result.exportSeconds,
            std::chrono::duration<double>(t2 - t1).count());
        if (rep == 0) {
            result.trajectory = trajectoryOf(ga, cfg.generations);
            result.stats = ga.stats();
            result.exportSimulatedCycles = resim_cycles;
            result.datasetBytes = serialize(ds);
        }
    }
    return result;
}

void
writeJson(const std::string &path, const char *mode,
          const GaConfig &cfg, const TrainExportBudget &budget,
          const std::vector<LayerResult> &runs, double speedup,
          bool production_match, const std::string &obs_json)
{
    std::ofstream os(path);
    os << "{\n";
    os << "  \"bench\": \"ga_training_pipeline\",\n";
    os << "  \"mode\": \"" << mode << "\",\n";
    os << "  \"population\": " << cfg.populationSize
       << ",\n  \"generations\": " << cfg.generations
       << ",\n  \"fitness_cycles\": " << cfg.fitnessCycles
       << ",\n  \"benchmarks\": " << budget.benchmarks
       << ",\n  \"cycles_each\": " << budget.cyclesEach << ",\n";
    os << "  \"configs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const LayerResult &r = runs[i];
        os << "    {\"name\": \"" << r.name
           << "\", \"ga_seconds\": " << r.gaSeconds
           << ", \"export_seconds\": " << r.exportSeconds
           << ", \"seconds\": " << r.totalSeconds()
           << ", \"evaluations\": " << r.stats.evaluations
           << ", \"cache_hits\": " << r.stats.cacheHits
           << ", \"cache_hit_rate\": " << r.stats.hitRate()
           << ", \"fitness_cycles_simulated\": "
           << r.stats.simulatedCycles
           << ", \"export_cycles_resimulated\": "
           << r.exportSimulatedCycles
           << ", \"trajectory_matches_baseline\": "
           << (r.trajectoryMatch ? "true" : "false")
           << ", \"dataset_matches_baseline\": "
           << (r.datasetMatch ? "true" : "false") << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"obs\": " << obs_json << ",\n";
    os << "  \"dataset_matches_production_pipeline\": "
       << (production_match ? "true" : "false") << ",\n";
    os << "  \"speedup_ga_best_vs_baseline\": " << speedup << ",\n";
    os << "  \"speedup_ga_all_vs_baseline\": "
       << (runs.front().gaSeconds / runs.back().gaSeconds) << ",\n";
    os << "  \"speedup_total_all_vs_baseline\": "
       << (runs.front().totalSeconds() / runs.back().totalSeconds())
       << "\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int reps = 1;
    std::string out = "BENCH_ga.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }

    // The Fig. 3 workload: the N1ish design with the shared bench GA
    // budgets. Smoke mode uses the fast-mode budgets so the perf ctest
    // label stays quick.
    const Netlist netlist =
        DesignBuilder::build(DesignConfig::neoverseN1ish());
    const GaConfig base = benchGaConfig(smoke, /*full_generations=*/12);
    TrainExportBudget budget = benchTrainBudget(Design::N1ish, smoke);
    if (smoke) {
        budget.benchmarks = 12;
        budget.cyclesEach = 150;
    }

    std::printf("bench_perf_ga: design=%s pop=%u gens=%u "
                "fitness_cycles=%llu export=%zux%llu reps=%d%s\n",
                netlist.name().c_str(), base.populationSize,
                base.generations,
                static_cast<unsigned long long>(base.fitnessCycles),
                budget.benchmarks,
                static_cast<unsigned long long>(budget.cyclesEach),
                reps, smoke ? " [smoke]" : "");

    const auto obs_before = obsCounters();
    const LayerConfig layers[] = {
        {"baseline", false, false, false, 1},
        {"vectorized", true, false, false, 1},
        {"vectorized+cache", true, true, false, 1},
        {"vectorized+cache+single-pass", true, true, true, 1},
        {"all", true, true, true, 0},
    };

    std::vector<LayerResult> runs;
    for (const LayerConfig &layer : layers) {
        LayerResult r = runLayer(layer, netlist, base, budget, reps);
        if (!runs.empty()) {
            r.trajectoryMatch =
                r.trajectory == runs.front().trajectory;
            r.datasetMatch =
                r.datasetBytes == runs.front().datasetBytes;
        }
        std::printf("  %-29s %8.3fs (ga %7.3fs + export %6.3fs)  "
                    "evals=%-4llu hits=%-4llu resim_cycles=%-6llu%s%s\n",
                    r.name.c_str(), r.totalSeconds(), r.gaSeconds,
                    r.exportSeconds,
                    static_cast<unsigned long long>(
                        r.stats.evaluations),
                    static_cast<unsigned long long>(r.stats.cacheHits),
                    static_cast<unsigned long long>(
                        r.exportSimulatedCycles),
                    r.trajectoryMatch ? "" : "  TRAJECTORY MISMATCH",
                    r.datasetMatch ? "" : "  DATASET MISMATCH");
        runs.push_back(std::move(r));
    }

    // Tie the bench to the production entry point: the fully optimized
    // flow through generateTrainingSet must emit the same bytes.
    TrainingGenOptions opts;
    opts.ga = base;
    opts.benchmarks = budget.benchmarks;
    opts.cyclesEach = budget.cyclesEach;
    const StatusOr<TrainingGenReport> report =
        generateTrainingSet(netlist, opts);
    bool production_match =
        report.ok() &&
        serialize(report->dataset) == runs.front().datasetBytes;
    std::printf("  production generateTrainingSet: %s (resimulated "
                "%llu cycles at export)\n",
                production_match ? "byte-identical" : "MISMATCH",
                report.ok() ? static_cast<unsigned long long>(
                                  report->exportSimulatedCycles)
                            : 0ULL);

    double best_ga = runs.back().gaSeconds;
    for (const LayerResult &r : runs)
        if (&r != &runs.front())
            best_ga = std::min(best_ga, r.gaSeconds);
    const double speedup = runs.front().gaSeconds / best_ga;
    std::printf("GA speedup (best optimized vs baseline): %.2fx  "
                "(all layers: %.2fx, end-to-end with export: %.2fx)\n",
                speedup,
                runs.front().gaSeconds / runs.back().gaSeconds,
                runs.front().totalSeconds() /
                    runs.back().totalSeconds());
    writeJson(out, smoke ? "smoke" : "full", base, budget, runs,
              speedup, production_match, obsDeltaJson(obs_before));
    std::printf("wrote %s\n", out.c_str());

    bool identical = production_match;
    for (const LayerResult &r : runs)
        identical = identical && r.trajectoryMatch && r.datasetMatch;
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: optimized configurations changed the GA "
                     "trajectory or the exported dataset\n");
        return 1;
    }
    // Timing gate: generous in smoke mode (shared CI machines), the
    // paper-trajectory target in full mode.
    const double floor = smoke ? 1.0 : 3.0;
    if (speedup < floor) {
        std::fprintf(stderr, "FAIL: speedup %.2fx below %.1fx floor\n",
                     speedup, floor);
        return 1;
    }
    return 0;
}
