/**
 * @file
 * Reproduces Fig. 15(b) and §7.5: the OPM area-overhead vs accuracy
 * (NRMSE) trade-off explored over the number of proxies Q and the
 * weight bit width B, measured with the bit-true OPM simulator and the
 * structural gate-area model. Paper anchors: accuracy loss is high for
 * B < 9 and negligible for B > 10; with B=10, Q=159 the OPM is 0.2% of
 * the core area, 0.9% of core power (0.5% logic + 0.4% proxy routing),
 * with a 2-cycle latency.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 15(b) / §7.5",
                "OPM area vs accuracy trade-off over (Q, B)", ctx);

    const std::vector<size_t> qs =
        ctx.fast ? std::vector<size_t>{50, 159}
                 : std::vector<size_t>{25, 50, 100, 159, 300};
    const std::vector<uint32_t> bit_widths = {4, 5, 6, 8, 9, 10, 12};

    // One MCP path serves every Q.
    BitFeatureView view(ctx.train.X);
    CdSolver solver(view, ctx.train.y);
    CdConfig cd;
    cd.penalty.kind = PenaltyKind::Mcp;
    cd.penalty.gamma = 10.0;
    const auto solutions = solveForTargetsQ(solver, cd, qs);

    TablePrinter table({"Q", "B", "area overhead", "NRMSE (bit-true)",
                        "float NRMSE", "quant. loss"});

    for (size_t k = 0; k < qs.size(); ++k) {
        const auto apollo = relaxProxySet(ctx.train,
                                          solutions[k].support(),
                                          ApolloTrainConfig{},
                                          ctx.netlist.name());
        const BitColumnMatrix proxies =
            ctx.test.X.selectColumns(apollo.model.proxyIds);
        const auto float_pred = apollo.model.predictProxies(proxies);
        const double float_nrmse = nrmse(ctx.test.y, float_pred);

        double toggle_rate = 0.0;
        for (size_t q = 0; q < proxies.cols(); ++q)
            toggle_rate += static_cast<double>(proxies.colPopcount(q)) /
                           proxies.rows();
        toggle_rate /= proxies.cols();

        for (uint32_t b : bit_widths) {
            const QuantizedModel qm = quantizeModel(apollo.model, b);
            OpmSimulator opm(qm, 1);
            const auto hw_pred = opm.simulate(proxies);
            const double hw_nrmse = nrmse(ctx.test.y, hw_pred);
            const OpmHardwareReport rep = analyzeOpmHardware(
                ctx.netlist, qm, 32, toggle_rate);
            table.addRow(
                {TablePrinter::integer(static_cast<long long>(qs[k])),
                 TablePrinter::integer(b),
                 TablePrinter::percent(rep.areaOverhead, 3),
                 TablePrinter::percent(hw_nrmse),
                 TablePrinter::percent(float_nrmse),
                 TablePrinter::percent(hw_nrmse - float_nrmse, 3)});
        }
    }
    table.render(std::cout);

    // §7.5 headline configuration.
    const size_t headline_idx =
        std::find(qs.begin(), qs.end(), 159) - qs.begin();
    if (headline_idx < qs.size()) {
        const auto apollo = relaxProxySet(ctx.train,
                                          solutions[headline_idx]
                                              .support(),
                                          ApolloTrainConfig{},
                                          ctx.netlist.name());
        const BitColumnMatrix proxies =
            ctx.test.X.selectColumns(apollo.model.proxyIds);
        double toggle_rate = 0.0;
        for (size_t q = 0; q < proxies.cols(); ++q)
            toggle_rate += static_cast<double>(proxies.colPopcount(q)) /
                           proxies.rows();
        toggle_rate /= proxies.cols();
        const QuantizedModel qm = quantizeModel(apollo.model, 10);
        const OpmHardwareReport rep =
            analyzeOpmHardware(ctx.netlist, qm, 32, toggle_rate);
        std::printf("\nheadline OPM (Q=159, B=10, T=32) vs nominal "
                    "%.1fM-gate core:\n",
                    ctx.netlist.nominalCoreGates() / 1e6);
        std::printf("  area: interface %.0f GE + compute %.0f GE + "
                    "accumulate %.0f GE + routing %.0f GE = %.0f GE "
                    "-> %.3f%% of core (paper: 0.2%%, <0.5%%)\n",
                    rep.interfaceGE, rep.computeGE, rep.accumGE,
                    rep.routingGE, rep.totalGE,
                    100.0 * rep.areaOverhead);
        std::printf("  power: logic %.2f%% + proxy routing %.2f%% = "
                    "%.2f%% of core power (paper: 0.5%% + 0.4%% = "
                    "0.9%%)\n",
                    100.0 * rep.logicPowerOverhead,
                    100.0 * rep.routingPowerOverhead,
                    100.0 * rep.totalPowerOverhead);
        std::printf("  latency: %u cycles (paper: 2 cycles)\n",
                    rep.latencyCycles);
    }
    return 0;
}
