/**
 * @file
 * Ablation: training-data generation strategy (§4.1). Train the same
 * Q=159 APOLLO model from four training sets of equal cycle budget:
 *   - GA-diverse (power-uniform selection across generations — the
 *     paper's method),
 *   - random stimuli only (generation-0 individuals),
 *   - virus-heavy (highest-power individuals only),
 *   - realistic-like (a narrow band of mid-power individuals, standing
 *     in for redundant realistic workloads).
 * Expected: GA-diverse wins; narrow-coverage sets misestimate the
 * benchmarks outside their band.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

namespace {

Dataset
datasetFrom(const Netlist &netlist,
            const std::vector<GaIndividual> &individuals,
            uint64_t cycles_each)
{
    DatasetBuilder builder(netlist);
    int idx = 0;
    for (const GaIndividual &ind : individuals)
        builder.addProgram(GaGenerator::toProgram(
                               ind, "b" + std::to_string(idx++), 8000),
                           cycles_each);
    return builder.build();
}

} // namespace

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Ablation: training data",
                "GA-diverse vs random vs virus-only vs narrow-band",
                ctx);

    // Re-run the GA (same budget as the context builder).
    DatasetBuilder fitness(ctx.netlist);
    GaGenerator ga(fitness, benchGaConfig(ctx.fast));
    ga.run();

    const size_t n_benchmarks = ctx.fast ? 16 : 40;
    const uint64_t cycles_each = ctx.fast ? 200 : 500;
    const size_t q = ctx.fast ? 80 : 159;

    std::vector<GaIndividual> sorted = ga.all();
    std::sort(sorted.begin(), sorted.end(),
              [](const GaIndividual &a, const GaIndividual &b) {
                  return a.avgPower < b.avgPower;
              });

    struct Variant
    {
        std::string name;
        std::vector<GaIndividual> set;
    };
    std::vector<Variant> variants;

    variants.push_back(
        {"GA-diverse (power-uniform)",
         ga.selectTrainingSet(n_benchmarks)});
    {
        // Random stimuli: generation-0 individuals only.
        std::vector<GaIndividual> gen0;
        for (const GaIndividual &ind : ga.all())
            if (ind.generation == 0)
                gen0.push_back(ind);
        gen0.resize(std::min(gen0.size(), n_benchmarks));
        variants.push_back({"random stimuli (generation 0)", gen0});
    }
    {
        std::vector<GaIndividual> virus(
            sorted.end() - static_cast<long>(std::min(
                               n_benchmarks, sorted.size())),
            sorted.end());
        variants.push_back({"virus-heavy (top power only)", virus});
    }
    {
        // Narrow mid-band: the middle of the power distribution.
        const size_t mid = sorted.size() / 2;
        const size_t half = std::min(n_benchmarks, sorted.size()) / 2;
        std::vector<GaIndividual> band(
            sorted.begin() + static_cast<long>(mid - half),
            sorted.begin() + static_cast<long>(mid + half));
        variants.push_back({"narrow mid-band (realistic-like)", band});
    }

    TablePrinter table({"training set", "benchmarks", "train cycles",
                        "NRMSE", "R2", "mean bias"});
    for (const Variant &variant : variants) {
        const Dataset train =
            datasetFrom(ctx.netlist, variant.set, cycles_each);
        ApolloTrainConfig cfg;
        cfg.selection.targetQ = q;
        const auto res = trainApollo(train, cfg, ctx.netlist.name());
        const auto pred = res.model.predictFull(ctx.test.X);
        const double bias =
            (mean(pred) - mean(ctx.test.y)) / mean(ctx.test.y);
        table.addRow({variant.name,
                      TablePrinter::integer(static_cast<long long>(
                          variant.set.size())),
                      TablePrinter::integer(
                          static_cast<long long>(train.cycles())),
                      TablePrinter::percent(nrmse(ctx.test.y, pred)),
                      TablePrinter::num(r2Score(ctx.test.y, pred), 4),
                      TablePrinter::percent(bias)});
    }
    table.render(std::cout);
    std::printf("\n(Q=%zu; test = the 12 designer benchmarks)\n", q);
    return 0;
}
