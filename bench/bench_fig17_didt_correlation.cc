/**
 * @file
 * Reproduces Fig. 17 and §8.2: per-cycle OPM output vs ground-truth
 * delta-I. Paper anchor: Pearson 0.946 between the OPM estimate and the
 * sign-off delta-I; deep droop/overshoot corners correlate well while
 * disagreement quadrants hold only small-magnitude samples. Also runs
 * the proactive Ldi/dt mitigation loop on the RLC PDN model (the
 * paper's stated future-work application, §9).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 17 / §8.2",
                "per-cycle delta-I estimation and proactive droop "
                "mitigation",
                ctx);

    const ApolloTrainResult res = trainApolloAtQ(ctx, 159);
    const QuantizedModel qm = quantizeModel(res.model, 10);
    const BitColumnMatrix proxies =
        ctx.test.X.selectColumns(res.model.proxyIds);
    OpmSimulator opm(qm, 1);
    const std::vector<float> est = opm.simulate(proxies);

    const double vdd = 0.75;
    const DidtAnalysis didt = analyzeDidt(ctx.test.y, est, vdd);

    std::printf("Pearson(delta-I truth, delta-I OPM) = %.3f "
                "(paper: 0.946)\n",
                didt.pearsonDeltaI);
    std::printf("deep-event Pearson (|dI| above p95)  = %.3f "
                "(droop/overshoot corners correlate well)\n",
                didt.deepEventPearson);
    std::printf("droop-precursor recall (top-decile positive dI "
                "caught by the OPM's own top decile) = %.1f%%\n\n",
                100.0 * didt.deepDroopRecall);

    const uint64_t total = didt.quadPosPos + didt.quadPosNeg +
                           didt.quadNegPos + didt.quadNegNeg;
    TablePrinter quads({"quadrant (truth sign / est sign)", "samples",
                        "share"});
    auto row = [&](const char *name, uint64_t count) {
        quads.addRow({name,
                      TablePrinter::integer(
                          static_cast<long long>(count)),
                      TablePrinter::percent(
                          static_cast<double>(count) / total)});
    };
    row("+/+ (rising current, predicted rising)", didt.quadPosPos);
    row("-/- (falling current, predicted falling)", didt.quadNegNeg);
    row("+/- (missed rise)", didt.quadPosNeg);
    row("-/+ (false rise)", didt.quadNegPos);
    quads.render(std::cout);

    // --- Proactive mitigation on the PDN model ---
    // Normalize the PDN gains to this design's current scale (the PDN
    // parameters are per-ampere; our power units are arbitrary).
    double mean_current = 0.0;
    for (float pwr : ctx.test.y)
        mean_current += pwr;
    mean_current /= static_cast<double>(ctx.test.y.size()) * vdd;
    PdnParams pdn;
    pdn.vdd = vdd;
    pdn.rStatic = 0.01 / mean_current;
    pdn.dynamicGain = 0.05 / mean_current;
    const double threshold = vdd * 0.955;
    const DroopSimResult base =
        simulateDroop(ctx.test.y, pdn, threshold);

    // Trigger on the OPM's delta estimate at its 97th percentile.
    std::vector<double> di = deltaI(currentFromPower(est, vdd));
    std::vector<double> mags;
    for (double d : di)
        mags.push_back(std::abs(d));
    std::sort(mags.begin(), mags.end());
    const double trigger =
        mags[static_cast<size_t>(0.97 * (mags.size() - 1))];
    const DroopSimResult mitigated = simulateWithMitigation(
        ctx.test.y, est, pdn, threshold, trigger, 0.5, 6);

    std::printf("\nproactive Ldi/dt mitigation (adaptive clocking "
                "driven by the OPM):\n");
    TablePrinter mit2({"configuration", "min voltage", "max overshoot",
                       "droop cycles", "throttled cycles"});
    mit2.addRow({"no mitigation", TablePrinter::num(base.minVoltage, 4),
                 TablePrinter::num(base.maxOvershoot, 4),
                 TablePrinter::integer(
                     static_cast<long long>(base.droopCycles)),
                 "0"});
    mit2.addRow({"OPM-guided adaptive clocking",
                 TablePrinter::num(mitigated.minVoltage, 4),
                 TablePrinter::num(mitigated.maxOvershoot, 4),
                 TablePrinter::integer(
                     static_cast<long long>(mitigated.droopCycles)),
                 TablePrinter::integer(static_cast<long long>(
                     mitigated.throttledCycles))});
    mit2.render(std::cout);
    std::printf("(throttling engaged on %.2f%% of cycles; min-voltage "
                "margin recovered: %.1f mV)\n",
                100.0 * mitigated.throttledCycles / ctx.test.cycles(),
                1000.0 * (mitigated.minVoltage - base.minVoltage));
    return 0;
}
