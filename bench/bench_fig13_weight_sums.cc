/**
 * @file
 * Reproduces Fig. 13: the sum of the Q absolute weights of the MCP
 * model vs the Lasso model at equal Q. MCP leaves weights above the
 * gamma*lambda knee unpenalized (Eq. 7), so its weight mass stays near
 * the unpenalized (relaxed) level, while Lasso's shrinks — the root
 * cause of Lasso's biased, less accurate predictions.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

namespace {

double
sumAbs(const CdResult &fit)
{
    double acc = 0.0;
    for (float w : fit.w)
        acc += std::abs(w);
    return acc;
}

} // namespace

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 13", "sum of absolute weights: MCP vs Lasso at "
                           "equal Q", ctx);

    BitFeatureView view(ctx.train.X);
    const std::vector<size_t> qs =
        ctx.fast ? std::vector<size_t>{80} :
                   std::vector<size_t>{50, 159, 300};

    CdSolver mcp_solver(view, ctx.train.y);
    CdConfig mcp_cfg;
    mcp_cfg.penalty.kind = PenaltyKind::Mcp;
    mcp_cfg.penalty.gamma = 10.0;
    const auto mcp = solveForTargetsQ(mcp_solver, mcp_cfg, qs);

    CdSolver lasso_solver(view, ctx.train.y);
    CdConfig lasso_cfg;
    lasso_cfg.penalty.kind = PenaltyKind::Lasso;
    const auto lasso = solveForTargetsQ(lasso_solver, lasso_cfg, qs);

    TablePrinter table({"Q", "sum|w| MCP", "sum|w| Lasso",
                        "MCP/Lasso", "sum|w| unpenalized (relaxed)"});
    for (size_t k = 0; k < qs.size(); ++k) {
        // The unpenalized reference: ridge-relaxed refit on the MCP
        // proxies (lambda2 ~ 0).
        const auto relaxed = relaxProxySet(
            ctx.train, mcp[k].support(), ApolloTrainConfig{},
            ctx.netlist.name());
        table.addRow(
            {TablePrinter::integer(static_cast<long long>(qs[k])),
             TablePrinter::num(sumAbs(mcp[k]), 2),
             TablePrinter::num(sumAbs(lasso[k]), 2),
             TablePrinter::num(sumAbs(mcp[k]) /
                               std::max(1e-12, sumAbs(lasso[k])), 2),
             TablePrinter::num(relaxed.model.sumAbsWeights(), 2)});
    }
    table.render(std::cout);
    std::printf("\nexpected shape (paper): MCP's weight mass exceeds "
                "Lasso's at every Q and sits close to the unpenalized "
                "level.\n");
    return 0;
}
