/**
 * @file
 * Reproduces Fig. 10: per-cycle power accuracy (NRMSE / R^2) vs number
 * of proxies Q on the Neoverse N1-ish design, for APOLLO vs Lasso [53]
 * vs Simmani [40], with PRIMAL-CNN and PCA [79] reference lines.
 * Paper anchors: APOLLO reaches NRMSE < 10% and R^2 > 0.95 by Q ~ 150;
 * Lasso and Simmani stay above 12% NRMSE even at Q = 500.
 */

#include "accuracy_sweep.hh"
#include "common.hh"

using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 10",
                "per-cycle accuracy vs Q (APOLLO / Lasso / Simmani / "
                "PRIMAL / PCA)",
                ctx);
    const std::vector<size_t> qs =
        ctx.fast ? std::vector<size_t>{25, 80, 159}
                 : std::vector<size_t>{25, 50, 100, 159, 300, 500};
    runAccuracyVsQ(ctx, qs);
    return 0;
}
