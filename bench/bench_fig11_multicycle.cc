/**
 * @file
 * Reproduces Fig. 11: T-cycle window accuracy vs window size T in
 * {4, 8, 16, 32, 64} for
 *   - APOLLO (average of per-cycle predictions; tau = 1),
 *   - APOLLO_tau with tau = 8 (the paper's pick),
 *   - APOLLO_tau with tau = T ("averaged inputs" straw man),
 *   - Simmani [40] trained/validated per T with Q = 200.
 * APOLLO variants use Q = 70 (one third of Simmani's), matching the
 * paper's setup. Also prints the tau-selection sweep that motivates
 * tau = 8 (validation over the T values).
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 11",
                "multi-cycle accuracy vs window size T (Q=70 APOLLO, "
                "Q=200 Simmani)",
                ctx);

    const std::vector<uint32_t> windows = {4, 8, 16, 32, 64};
    const size_t q_apollo = 70;
    const size_t q_simmani = 200;

    ApolloTrainConfig cfg;
    cfg.selection.targetQ = q_apollo;

    // Train each tau model once; tau = T models trained on demand.
    std::map<uint32_t, MultiCycleModel> tau_models;
    tau_models.emplace(1, trainMultiCycle(ctx.train, 1, cfg,
                                          ctx.netlist.name()));
    tau_models.emplace(8, trainMultiCycle(ctx.train, 8, cfg,
                                          ctx.netlist.name()));
    for (uint32_t t : windows)
        if (!tau_models.count(t))
            tau_models.emplace(t, trainMultiCycle(ctx.train, t, cfg,
                                                  ctx.netlist.name()));

    TablePrinter table({"T", "APOLLO tau=1 (avg pred)",
                        "APOLLO_tau tau=8", "APOLLO_tau tau=T",
                        "Simmani (Q=200)"});
    for (uint32_t T : windows) {
        const auto labels =
            windowAverageLabels(ctx.test.y, T, ctx.test.segments)
                .value();

        auto nrmse_of = [&](const MultiCycleModel &m) {
            const auto pred =
                m.predictWindowsFull(ctx.test.X, T, ctx.test.segments)
                    .value();
            return nrmse(labels, pred);
        };
        const double e_tau1 = nrmse_of(tau_models.at(1));
        const double e_tau8 = nrmse_of(tau_models.at(8));
        const double e_tauT = nrmse_of(tau_models.at(T));

        SimmaniConfig sim_cfg;
        sim_cfg.clusters = q_simmani;
        const BaselineResult simmani =
            trainSimmaniWindowed(ctx.train, ctx.test, T, sim_cfg);
        const double e_sim = nrmse(labels, simmani.testPred);

        table.addRow({TablePrinter::integer(T),
                      TablePrinter::percent(e_tau1),
                      TablePrinter::percent(e_tau8),
                      TablePrinter::percent(e_tauT),
                      TablePrinter::percent(e_sim)});
    }
    table.render(std::cout);
    std::printf("\nexpected shape (paper): the per-cycle average "
                "(tau=1) already beats Simmani everywhere with ~1/3 of "
                "the proxies; tau=8 improves on both extremes as T "
                "grows, tau=T degrades at large T.\n");

    // tau selection sweep (validation): error averaged over the T set.
    TablePrinter tau_table({"tau", "mean NRMSE over T in {8..64}"});
    for (uint32_t tau : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        if (!tau_models.count(tau))
            tau_models.emplace(tau, trainMultiCycle(
                                        ctx.train, tau, cfg,
                                        ctx.netlist.name()));
        double acc = 0.0;
        int counted = 0;
        for (uint32_t T : windows) {
            if (T < tau)
                continue;
            const auto labels =
                windowAverageLabels(ctx.test.y, T, ctx.test.segments)
                    .value();
            const auto pred = tau_models.at(tau)
                                  .predictWindowsFull(ctx.test.X, T,
                                                      ctx.test.segments)
                                  .value();
            acc += nrmse(labels, pred);
            counted++;
        }
        tau_table.addRow({TablePrinter::integer(tau),
                          TablePrinter::percent(acc / counted)});
    }
    std::printf("\ntau hyper-parameter sweep (motivates tau=8):\n");
    tau_table.render(std::cout);
    return 0;
}
