/**
 * @file
 * Ablation: the APOLLO_tau interval size (§4.5). At a fixed large
 * window (T = 64) sweep tau over divisors of T; the paper's validation
 * picks tau = 8 as the best trade-off between per-cycle detail
 * (small tau) and cross-cycle correlation (large tau).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Ablation: tau", "interval size sweep at T=64, Q=70",
                ctx);

    const uint32_t T = 64;
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 70;

    const auto labels =
        windowAverageLabels(ctx.test.y, T, ctx.test.segments).value();

    TablePrinter table({"tau", "training rows", "NRMSE @ T=64", "R2"});
    for (uint32_t tau : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        const MultiCycleModel model =
            trainMultiCycle(ctx.train, tau, cfg, ctx.netlist.name());
        const auto pred =
            model.predictWindowsFull(ctx.test.X, T, ctx.test.segments)
                .value();
        const size_t rows =
            tau == 1 ? ctx.train.cycles()
                     : aggregateIntervals(ctx.train, tau).intervals();
        table.addRow({TablePrinter::integer(tau),
                      TablePrinter::integer(
                          static_cast<long long>(rows)),
                      TablePrinter::percent(nrmse(labels, pred)),
                      TablePrinter::num(r2Score(labels, pred), 4)});
    }
    table.render(std::cout);
    std::printf("\n(the paper selects tau=8 on validation data and "
                "uses it for all T in Fig. 11)\n");
    return 0;
}
