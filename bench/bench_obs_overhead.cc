/**
 * @file
 * Observability overhead gate: the disabled path of every APOLLO_COUNT /
 * APOLLO_OBSERVE / APOLLO_TRACE_SPAN site must be a branch on one
 * relaxed atomic load, so a run with the registry runtime-disabled and
 * a run with it enabled (but nobody reading the metrics) must be
 * indistinguishable — the gate allows < 2% slowdown plus a small
 * absolute epsilon for shared-machine timer noise.
 *
 * The workload deliberately hits the instrumented hot paths: streaming
 * quantized inference (per-run and per-chunk counters, sink timing) and
 * the batch OPM simulator (per-simulation counters + toggle-density
 * histogram).
 *
 * Usage: bench_obs_overhead [--smoke] [--reps=N] [--out=PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apollo.hh"
#include "common.hh"
#include "obs/metrics.hh"

using namespace apollo;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

BitColumnMatrix
makeMatrix(size_t n, size_t q, uint64_t seed)
{
    BitColumnMatrix X;
    X.reset(n, q);
    for (size_t c = 0; c < q; ++c) {
        // Column density ~25%: AND of two hash words.
        for (size_t i = 0; i < n; ++i) {
            const uint64_t a = mix64(seed ^ (c * 0x10001 + i));
            const uint64_t b = mix64(seed ^ 0xabcd ^ (c + i * 7));
            if ((a & b & 1ULL) != 0)
                X.setBit(i, c);
        }
    }
    return X;
}

ApolloModel
makeModel(size_t q)
{
    ApolloModel model;
    model.intercept = 0.42;
    for (size_t i = 0; i < q; ++i) {
        model.proxyIds.push_back(static_cast<uint32_t>(i));
        model.weights.push_back(
            static_cast<float>(0.05 + 0.002 * static_cast<double>(i)));
    }
    return model;
}

/** One pass over the instrumented hot paths. */
double
workload(const BitColumnMatrix &X, const StreamingInference &qengine,
         OpmSimulator &sim)
{
    MatrixChunkReader reader(X);
    VectorSink sink;
    StreamConfig config;
    config.chunkCycles = 4096; // several chunks per run
    StatusOr<StreamStats> stats = qengine.run(reader, sink, config);
    stats.status().orFatal();
    const std::vector<float> batch = sim.simulate(X);
    return static_cast<double>(stats->outputs) +
           static_cast<double>(batch.size());
}

/** Min-of-reps wall time of the workload in the current obs mode. */
double
measure(const BitColumnMatrix &X, const StreamingInference &qengine,
        OpmSimulator &sim, int reps)
{
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = nowSeconds();
        (void)workload(X, qengine, sim);
        best = std::min(best, nowSeconds() - t0);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int reps = 7;
    std::string out = "BENCH_obs_overhead.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }

    const size_t n = smoke ? 100000 : 400000;
    const size_t q = 48;
    const uint32_t T = 32;

    std::printf("bench_obs_overhead: n=%zu q=%zu T=%u reps=%d "
                "(APOLLO_OBS=%d)%s\n",
                n, q, T, reps, APOLLO_OBS, smoke ? " [smoke]" : "");

    const BitColumnMatrix X = makeMatrix(n, q, 0x0b5eed);
    const ApolloModel model = makeModel(q);
    const QuantizedModel qm = quantizeModel(model, 10);
    const StreamingInference qengine(qm, T);
    OpmSimulator sim(qm, T);

    obs::MetricRegistry &reg = obs::MetricRegistry::instance();
    const bool was_enabled = reg.enabled();

    // Warm up caches and the thread pool in both modes.
    reg.setEnabled(false);
    (void)workload(X, qengine, sim);
    reg.setEnabled(true);
    (void)workload(X, qengine, sim);

    reg.setEnabled(false);
    const double disabled = measure(X, qengine, sim, reps);
    reg.setEnabled(true);
    const double enabled = measure(X, qengine, sim, reps);
    reg.setEnabled(was_enabled);

    const double overhead = enabled / disabled - 1.0;
    std::printf("  disabled %.4fs  enabled %.4fs  overhead %+.2f%%\n",
                disabled, enabled, 100.0 * overhead);

    std::ofstream os(out);
    os << "{\n";
    os << "  \"bench\": \"obs_overhead\",\n";
    os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    os << "  \"apollo_obs\": " << APOLLO_OBS << ",\n";
    os << "  \"n\": " << n << ",\n  \"q\": " << q << ",\n  \"T\": " << T
       << ",\n";
    os << "  \"disabled_seconds\": " << disabled << ",\n";
    os << "  \"enabled_seconds\": " << enabled << ",\n";
    os << "  \"overhead\": " << overhead << "\n";
    os << "}\n";
    std::printf("wrote %s\n", out.c_str());

    // Gate: < 2% relative plus 5 ms absolute noise floor (min-of-reps
    // already rejects most scheduler interference).
    if (enabled > disabled * 1.02 + 0.005) {
        std::fprintf(stderr,
                     "FAIL: enabled-idle observability costs %.2f%% "
                     "(budget 2%%)\n",
                     100.0 * overhead);
        return 1;
    }
    return 0;
}
