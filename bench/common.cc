#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"


namespace apollo::bench {

namespace {

constexpr uint32_t cacheVersion = 6;

bool
envFlag(const char *name)
{
    const char *value = std::getenv(name);
    return value && value[0] == '1';
}

std::filesystem::path
cachePath(Design design, bool fast)
{
    const char *name = design == Design::N1ish ? "n1ish" : "a77ish";
    return std::filesystem::path("bench_cache") /
           (std::string(name) + (fast ? "-fast" : "") + ".bin");
}

Context
buildContext(Design design, bool fast)
{
    Context ctx{DesignBuilder::build(design == Design::N1ish
                                         ? DesignConfig::neoverseN1ish()
                                         : DesignConfig::cortexA77ish()),
                {}, {}, {}, fast};

    // --- GA training-data generation (§4.1), single-pass pipeline ---
    // Power-uniform training selection. N1: ~30k training cycles;
    // A77: ~5k (the paper's §7.1 budgets).
    const bool n1 = design == Design::N1ish;
    const TrainExportBudget budget = benchTrainBudget(design, fast);
    TrainingGenOptions opts;
    opts.ga = benchGaConfig(fast);
    opts.benchmarks = budget.benchmarks;
    opts.cyclesEach = budget.cyclesEach;
    StatusOr<TrainingGenReport> report =
        generateTrainingSet(ctx.netlist, opts);
    APOLLO_REQUIRE(report.ok(), report.status().toString());
    std::fprintf(stderr,
                 "[bench] GA: %llu evals, cache hit rate %.1f%%, "
                 "%llu cycles resimulated at export\n",
                 static_cast<unsigned long long>(
                     report->gaStats.evaluations),
                 100.0 * report->gaStats.hitRate(),
                 static_cast<unsigned long long>(
                     report->exportSimulatedCycles));
    ctx.train = std::move(report->dataset);

    // --- Designer test suite (Table 4) ---
    // N1: full Table-4 budgets (~15k cycles). A77: ~2k cycles (paper
    // §7.1), scaled per benchmark.
    DatasetBuilder test_builder(ctx.netlist);
    for (const TestBenchmark &bench : designerTestSuite()) {
        uint64_t budget = bench.cycles;
        if (fast)
            budget = std::max<uint64_t>(100, budget / 4);
        else if (!n1)
            budget = std::max<uint64_t>(100, budget * 2000 / 15330);
        test_builder.addProgram(bench.program, budget, bench.throttle);
    }
    ctx.test = test_builder.build();

    for (size_t c = 0; c < ctx.netlist.signalCount(); ++c)
        if (ctx.netlist.signal(c).kind == SignalKind::FlipFlop)
            ctx.flipflopIds.push_back(static_cast<uint32_t>(c));
    return ctx;
}

} // namespace

GaConfig
benchGaConfig(bool fast, uint32_t full_generations)
{
    GaConfig cfg;
    cfg.populationSize = fast ? 16 : 30;
    cfg.generations = fast ? 5 : full_generations;
    cfg.fitnessCycles = fast ? 300 : 600;
    cfg.fitnessSignalStride = 4;
    return cfg;
}

TrainExportBudget
benchTrainBudget(Design design, bool fast)
{
    const bool n1 = design == Design::N1ish;
    TrainExportBudget budget;
    budget.benchmarks = fast ? 20 : (n1 ? 60 : 16);
    budget.cyclesEach = fast ? 200 : (n1 ? 500 : 320);
    return budget;
}

bool
fastMode()
{
    return envFlag("APOLLO_BENCH_FAST");
}

Context
loadContext(Design design)
{
    const bool fast = fastMode();
    const auto path = cachePath(design, fast);

    if (std::filesystem::exists(path)) {
        std::ifstream is(path, std::ios::binary);
        uint32_t version = 0;
        is.read(reinterpret_cast<char *>(&version), sizeof(version));
        if (version == cacheVersion) {
            Context ctx{DesignBuilder::build(
                            design == Design::N1ish
                                ? DesignConfig::neoverseN1ish()
                                : DesignConfig::cortexA77ish()),
                        {}, {}, {}, fast};
            try {
                ctx.train = loadDataset(is);
                ctx.test = loadDataset(is);
                for (size_t c = 0; c < ctx.netlist.signalCount(); ++c)
                    if (ctx.netlist.signal(c).kind ==
                        SignalKind::FlipFlop)
                        ctx.flipflopIds.push_back(
                            static_cast<uint32_t>(c));
                std::fprintf(stderr,
                             "[bench] loaded cached context %s\n",
                             path.c_str());
                return ctx;
            } catch (const FatalError &) {
                std::fprintf(stderr, "[bench] cache unreadable, "
                                     "rebuilding\n");
            }
        }
    }

    std::fprintf(stderr,
                 "[bench] building context (design=%s, fast=%d)...\n",
                 design == Design::N1ish ? "n1ish" : "a77ish", fast);
    Context ctx = buildContext(design, fast);

    std::filesystem::create_directories(path.parent_path());
    std::ofstream os(path, std::ios::binary);
    os.write(reinterpret_cast<const char *>(&cacheVersion),
             sizeof(cacheVersion));
    saveDataset(os, ctx.train);
    saveDataset(os, ctx.test);
    return ctx;
}

void
printHeader(const std::string &experiment_id,
            const std::string &description, const Context &ctx)
{
    std::printf("================================================\n");
    std::printf("%s — %s\n", experiment_id.c_str(),
                description.c_str());
    std::printf("design: %s  M=%zu RTL signals  train=%zu cycles "
                "(%zu benchmarks)  test=%zu cycles (%zu benchmarks)%s\n",
                ctx.netlist.name().c_str(), ctx.netlist.signalCount(),
                ctx.train.cycles(), ctx.train.segments.size(),
                ctx.test.cycles(), ctx.test.segments.size(),
                ctx.fast ? "  [FAST MODE]" : "");
    std::printf("================================================\n");
}

ApolloTrainResult
trainApolloAtQ(const Context &ctx, size_t q)
{
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = q;
    return trainApollo(ctx.train, cfg, ctx.netlist.name());
}

std::map<std::string, uint64_t>
obsCounters()
{
    return obs::MetricRegistry::instance().counterValues();
}

std::string
obsDeltaJson(const std::map<std::string, uint64_t> &before)
{
    const std::map<std::string, uint64_t> now = obsCounters();
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[name, value] : now) {
        const auto it = before.find(name);
        const uint64_t prev = it == before.end() ? 0 : it->second;
        if (value == prev)
            continue;
        os << (first ? "" : ", ") << "\"" << name
           << "\": " << (value - prev);
        first = false;
    }
    os << "}";
    return os.str();
}

} // namespace apollo::bench
