/**
 * @file
 * Reproduces Fig. 15(a): the distribution of the Q=159 extracted power
 * proxies over functional units and signal kinds. Paper anchors on
 * Neoverse N1: 39/159 gated clocks (clock network is the dominant
 * dynamic-power contributor), with Issue (36), Load/Store (28) and
 * Vector Execution (19) leading the functional units.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 15(a)",
                "distribution of extracted power proxies (Q=159)", ctx);

    const ApolloTrainResult res = trainApolloAtQ(ctx, 159);

    size_t unit_counts[numUnits] = {};
    size_t kind_counts[5] = {};
    size_t gated_clocks = 0;
    for (uint32_t id : res.model.proxyIds) {
        const Signal &sig = ctx.netlist.signal(id);
        unit_counts[static_cast<size_t>(sig.unit)]++;
        kind_counts[static_cast<size_t>(sig.kind)]++;
        if (sig.kind == SignalKind::GatedClock ||
            sig.kind == SignalKind::ClockEnable)
            gated_clocks++;
    }

    TablePrinter units({"functional unit", "proxies", "share",
                        "unit share of design signals"});
    for (size_t u = 0; u < numUnits; ++u) {
        const auto unit = static_cast<UnitId>(u);
        const UnitRange &range = ctx.netlist.unitRange(unit);
        if (unit_counts[u] == 0 && range.count == 0)
            continue;
        units.addRow(
            {unitName(unit),
             TablePrinter::integer(
                 static_cast<long long>(unit_counts[u])),
             TablePrinter::percent(
                 static_cast<double>(unit_counts[u]) /
                 res.model.proxyCount()),
             TablePrinter::percent(static_cast<double>(range.count) /
                                   ctx.netlist.signalCount())});
    }
    units.render(std::cout);

    TablePrinter kinds({"signal kind", "proxies"});
    const char *kind_names[5] = {"FlipFlop", "CombWire", "GatedClock",
                                 "ClockEnable", "BusBit"};
    for (size_t k = 0; k < 5; ++k)
        kinds.addRow({kind_names[k],
                      TablePrinter::integer(
                          static_cast<long long>(kind_counts[k]))});
    std::printf("\n");
    kinds.render(std::cout);

    std::printf("\nclock-gating related proxies: %zu of %zu (paper: "
                "39 of 159 are gated clocks — APOLLO captures the "
                "clock network, the major dynamic-power contributor)\n",
                gated_clocks, res.model.proxyCount());

    // The heaviest-weighted proxies, as designer guidance (§7.4).
    std::printf("\ntop-10 proxies by weight (throttling/clock-gating "
                "guidance for designers):\n");
    std::vector<size_t> order(res.model.proxyCount());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return std::abs(res.model.weights[a]) >
               std::abs(res.model.weights[b]);
    });
    for (size_t k = 0; k < std::min<size_t>(10, order.size()); ++k) {
        const uint32_t id = res.model.proxyIds[order[k]];
        std::printf("  %8.4f  %s\n", res.model.weights[order[k]],
                    ctx.netlist.signalName(id).c_str());
    }
    return 0;
}
