/**
 * @file
 * Reproduces Fig. 16 and §8.1: emulator-assisted design-time power
 * introspection on a long, phase-rich workload.
 *
 *  - runs the three Fig. 7 flows on the same workload prefix and
 *    reports wall-clock per stage and trace storage,
 *  - runs the emulator-assisted flow over a million-cycle workload
 *    (the paper traces 17M cycles in 3 minutes / 1.1 GB at Q=150),
 *  - projects inference cost to one billion cycles for APOLLO vs the
 *    PRIMAL-class net, PCA, and Simmani at Q=1000 (§8.1: one minute vs
 *    months / a week / days).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 16 / §8.1",
                "emulator-assisted per-cycle tracing of long workloads",
                ctx);

    const size_t q = 150;
    const ApolloTrainResult res = trainApolloAtQ(ctx, q);
    DesignTimeFlows flows(ctx.netlist);

    // --- Fig. 7 flow comparison on a common prefix ---
    const uint64_t compare_cycles = ctx.fast ? 20000 : 60000;
    const Program prefix =
        makeLongWorkload("hmmer-like", compare_cycles * 2, 0x5bec);

    FlowReport commercial =
        flows.runCommercialFlow(prefix, compare_cycles);
    FlowReport apollo_flow =
        flows.runApolloFlow(prefix, compare_cycles, res.model);
    FlowReport emulator =
        flows.runEmulatorFlow(prefix, compare_cycles, res.model);

    TablePrinter table({"flow", "cycles", "sim s", "trace s",
                        "power s", "total s", "trace MB"});
    for (const FlowReport *rep :
         {&commercial, &apollo_flow, &emulator}) {
        table.addRow({rep->flowName,
                      TablePrinter::integer(
                          static_cast<long long>(rep->cycles)),
                      TablePrinter::num(rep->simSeconds, 2),
                      TablePrinter::num(rep->traceSeconds, 2),
                      TablePrinter::num(rep->powerSeconds, 2),
                      TablePrinter::num(rep->totalSeconds(), 2),
                      TablePrinter::num(rep->traceBytes / 1e6, 1)});
    }
    table.render(std::cout);
    std::printf("model fidelity on this workload: R2=%.4f vs the "
                "sign-off flow\n",
                r2Score(commercial.power, emulator.power));
    std::printf("trace-volume reduction: %.0fx (Q=%zu of M=%zu "
                "signals)\n\n",
                static_cast<double>(commercial.traceBytes) /
                    emulator.traceBytes,
                q, ctx.netlist.signalCount());

    // --- Million-cycle emulator-assisted run ---
    const uint64_t long_cycles = ctx.fast ? 100000 : 1000000;
    const Program workload =
        makeLongWorkload("spec-like", long_cycles * 2, 0x17f);
    FlowReport long_run =
        flows.runEmulatorFlow(workload, long_cycles, res.model);
    std::printf("emulator-assisted flow over %llu cycles: %.1fs total "
                "(%.2fs model inference), %.1f MB proxy trace\n",
                static_cast<unsigned long long>(long_run.cycles),
                long_run.totalSeconds(), long_run.powerSeconds,
                long_run.traceBytes / 1e6);
    const double bytes_17m =
        static_cast<double>(long_run.traceBytes) / long_run.cycles *
        17e6;
    std::printf("projected 17M-cycle trace at Q=%zu: %.2f GB raw "
                "packed bits (paper: 1.1 GB with its trace format; "
                "full-signal dumps exceed 200 GB)\n\n",
                q, bytes_17m / 1e9);

    // Phase summary of the long trace (the Fig. 16 waveform).
    {
        std::ofstream csv("fig16_trace.csv");
        csv << "window,power\n";
        const size_t window = 512;
        RunningStats stats;
        for (size_t w = 0; w + window <= long_run.power.size();
             w += window) {
            double acc = 0.0;
            for (size_t i = 0; i < window; ++i)
                acc += long_run.power[w + i];
            acc /= window;
            stats.add(acc);
            csv << w << "," << acc << "\n";
        }
        std::printf("windowed power over the long workload: min %.3f / "
                    "mean %.3f / max %.3f (distinct phases, written to "
                    "fig16_trace.csv)\n\n",
                    stats.min(), stats.mean(), stats.max());
    }

    // --- §8.1: billion-cycle inference projections ---
    // Measure APOLLO per-cycle inference cost on the long trace.
    const double apollo_s_per_cycle =
        long_run.powerSeconds / long_run.cycles;

    // PRIMAL-class net: time a prediction pass over the test set.
    PowerNet net;
    NeuralNetConfig net_cfg;
    net_cfg.epochs = 1; // inference cost is what we are measuring
    net.train(ctx.train.X, ctx.flipflopIds, ctx.train.y, net_cfg);
    auto t0 = Clock::now();
    const auto primal_pred = net.predict(ctx.test.X);
    (void)primal_pred;
    const double primal_s_per_cycle =
        secondsSince(t0) / ctx.test.cycles();

    // PCA: projection needs all M signals every cycle: cost ~ nnz * k.
    t0 = Clock::now();
    const BaselineResult pca = trainPcaBaseline(ctx.train, ctx.test,
                                                ctx.fast ? 24 : 48);
    (void)pca;
    const double pca_s_per_cycle =
        secondsSince(t0) / (ctx.train.cycles() + ctx.test.cycles());

    // Simmani at Q=1000: ~Q^2/2 polynomial terms per cycle.
    const double simmani_s_per_cycle =
        apollo_s_per_cycle * (1000.0 * 1000.0 / 2.0) / q;

    TablePrinter proj({"method", "inputs per cycle",
                       "projected time for 1e9 cycles"});
    auto fmt_time = [](double seconds) {
        char buf[64];
        if (seconds < 120)
            std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
        else if (seconds < 2 * 86400)
            std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600);
        else
            std::snprintf(buf, sizeof(buf), "%.1f days",
                          seconds / 86400);
        return std::string(buf);
    };
    proj.addRow({"APOLLO (Q=150)", "150 toggle bits",
                 fmt_time(apollo_s_per_cycle * 1e9)});
    proj.addRow({"Simmani (Q=1000, ~Q^2/2 poly terms)",
                 "1000 bits + 500k products",
                 fmt_time(simmani_s_per_cycle * 1e9)});
    proj.addRow({"PCA + linear (all M signals)",
                 std::to_string(ctx.netlist.signalCount()) + " bits",
                 fmt_time(pca_s_per_cycle * 1e9)});
    proj.addRow({"PRIMAL-class net (all flip-flops)",
                 std::to_string(ctx.flipflopIds.size()) + " bits",
                 fmt_time(primal_s_per_cycle * 1e9)});
    proj.render(std::cout);
    std::printf("\nexpected shape (§8.1, scaled to our M): APOLLO "
                "orders of magnitude below every baseline; the paper "
                "reports ~1 minute vs days (Simmani), ~a week (PCA), "
                "months (CNN) at its scale.\n");
    return 0;
}
