/**
 * @file
 * Extension bench (§2.2 / Table 1 context): the event-counter runtime
 * model vs APOLLO across temporal resolutions. Counter models are the
 * "free" incumbent (they reuse existing PMU events), and are fine for
 * OS-epoch DVFS — but their error explodes as the measurement window
 * shrinks, while the proxy-based APOLLO model stays accurate down to a
 * single cycle. This is the gap Table 1 summarizes and §1 motivates
 * (Ldi/dt transients develop in <10 cycles).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Extension (§2.2)",
                "event-counter model vs APOLLO across temporal "
                "resolutions",
                ctx);

    // Counter models need frames: regenerate train/test runs.
    DatasetBuilder train_builder(ctx.netlist);
    Xoshiro256StarStar rng(0xc073);
    const int n_progs = ctx.fast ? 14 : 40;
    for (int i = 0; i < n_progs; ++i)
        train_builder.addProgram(
            Program::makeLoop("t" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 26), 8000,
                              rng()),
            ctx.fast ? 200 : 500);
    const Dataset train = train_builder.build();

    DatasetBuilder test_builder(ctx.netlist);
    for (const TestBenchmark &bench : designerTestSuite()) {
        const uint64_t budget =
            ctx.fast ? std::max<uint64_t>(100, bench.cycles / 4)
                     : bench.cycles;
        test_builder.addProgram(bench.program, budget, bench.throttle);
    }
    const Dataset test = test_builder.build();

    // APOLLO reference model.
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = ctx.fast ? 80 : 159;
    const ApolloModel apollo =
        trainApollo(train, cfg, ctx.netlist.name()).model;

    TablePrinter table({"window (cycles)", "counter-model NRMSE",
                        "APOLLO NRMSE", "counter/APOLLO"});
    for (uint32_t window : {1u, 8u, 32u, 128u, 400u}) {
        // Counter model trained and evaluated at this epoch size.
        const CounterTrace train_trace =
            collectCounters(train_builder.frames(), train.y,
                            train.segments, window);
        const CounterPowerModel counter =
            trainCounterModel(train_trace);
        const CounterTrace test_trace =
            collectCounters(test_builder.frames(), test.y,
                            test.segments, window);
        const auto counter_pred = counter.predict(test_trace);
        const double counter_nrmse =
            nrmse(test_trace.epochPower, counter_pred);

        // APOLLO at the same window (Eq. 9 averaging).
        MultiCycleModel mc;
        mc.base = apollo;
        mc.tau = 1;
        const auto apollo_pred =
            mc.predictWindowsFull(test.X, window, test.segments)
                .value();
        const auto labels =
            windowAverageLabels(test.y, window, test.segments).value();
        const double apollo_nrmse = nrmse(labels, apollo_pred);

        table.addRow({TablePrinter::integer(window),
                      TablePrinter::percent(counter_nrmse),
                      TablePrinter::percent(apollo_nrmse),
                      TablePrinter::num(counter_nrmse / apollo_nrmse,
                                        2)});
    }
    table.render(std::cout);

    std::printf("\nexpected shape (§2.2): the counter model is usable "
                "at OS epochs (hundreds+ cycles) but its per-cycle "
                "error is several times APOLLO's — PMU events observe "
                "activity cycles after the causal switching and only "
                "at unit granularity.\n");
    std::printf("counter events used:");
    for (size_t k = 0; k < numCounterEvents; ++k)
        std::printf(" %s",
                    counterEventName(static_cast<CounterEvent>(k)));
    std::printf("\n");
    return 0;
}
