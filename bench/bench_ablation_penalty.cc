/**
 * @file
 * Ablation: where does APOLLO's accuracy come from? At fixed Q, compare
 *   - MCP selection + ridge relaxation (APOLLO),
 *   - MCP selection, no relaxation (the temporary model of §4.3),
 *   - Lasso selection + ridge relaxation,
 *   - Lasso selection, no relaxation (the [53] baseline),
 *   - random proxy set + relaxation,
 *   - top-|correlation| proxy set + relaxation.
 * Expected: relaxation recovers most of the penalty-induced bias for
 * both selectors; MCP's *selection* is still better than Lasso's at
 * equal Q; naive selections trail badly.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

namespace {

std::vector<float>
predictSparse(const CdResult &fit, const Dataset &test)
{
    std::vector<float> pred(test.cycles(),
                            static_cast<float>(fit.intercept));
    for (size_t j = 0; j < fit.w.size(); ++j)
        if (fit.w[j] != 0.0f)
            test.X.axpyColumn(j, fit.w[j], pred.data());
    return pred;
}

} // namespace

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Ablation: penalty & relaxation",
                "MCP vs Lasso selection, with and without relaxation",
                ctx);
    const size_t q = ctx.fast ? 80 : 159;

    BitFeatureView view(ctx.train.X);
    TablePrinter table({"variant", "NRMSE", "R2"});
    auto add = [&](const std::string &name,
                   const std::vector<float> &pred) {
        table.addRow({name,
                      TablePrinter::percent(nrmse(ctx.test.y, pred)),
                      TablePrinter::num(r2Score(ctx.test.y, pred), 4)});
    };

    // MCP raw + relaxed.
    CdSolver mcp_solver(view, ctx.train.y);
    CdConfig mcp_cfg;
    mcp_cfg.penalty.kind = PenaltyKind::Mcp;
    mcp_cfg.penalty.gamma = 10.0;
    const CdResult mcp = solveForTargetQ(mcp_solver, mcp_cfg, q);
    add("MCP selection, no relaxation", predictSparse(mcp, ctx.test));
    const auto mcp_relaxed = relaxProxySet(ctx.train, mcp.support(),
                                           ApolloTrainConfig{});
    add("MCP + ridge relaxation (APOLLO)",
        mcp_relaxed.model.predictFull(ctx.test.X));

    // Lasso raw + relaxed.
    CdSolver lasso_solver(view, ctx.train.y);
    CdConfig lasso_cfg;
    lasso_cfg.penalty.kind = PenaltyKind::Lasso;
    const CdResult lasso = solveForTargetQ(lasso_solver, lasso_cfg, q);
    add("Lasso selection, no relaxation ([53])",
        predictSparse(lasso, ctx.test));
    const auto lasso_relaxed = relaxProxySet(
        ctx.train, lasso.support(), ApolloTrainConfig{});
    add("Lasso + ridge relaxation",
        lasso_relaxed.model.predictFull(ctx.test.X));

    // Random proxy set.
    {
        Xoshiro256StarStar rng(0xab1a);
        std::vector<uint32_t> ids;
        while (ids.size() < q) {
            const auto c = static_cast<uint32_t>(
                rng.nextBounded(ctx.train.signals()));
            if (std::find(ids.begin(), ids.end(), c) == ids.end() &&
                ctx.train.X.colPopcount(c) > 0)
                ids.push_back(c);
        }
        std::sort(ids.begin(), ids.end());
        const auto random_relaxed =
            relaxProxySet(ctx.train, ids, ApolloTrainConfig{});
        add("random proxies + relaxation",
            random_relaxed.model.predictFull(ctx.test.X));
    }

    // Top-correlation proxy set (marginal screening).
    {
        std::vector<float> centered(ctx.train.y.begin(),
                                    ctx.train.y.end());
        const double mu = mean(centered);
        for (float &v : centered)
            v = static_cast<float>(v - mu);
        std::vector<std::pair<double, uint32_t>> scores;
        for (size_t c = 0; c < ctx.train.signals(); ++c) {
            const double nnz =
                static_cast<double>(ctx.train.X.colPopcount(c));
            if (nnz == 0)
                continue;
            scores.emplace_back(
                std::abs(ctx.train.X.dotColumn(c, centered.data())) /
                    std::sqrt(nnz),
                static_cast<uint32_t>(c));
        }
        std::partial_sort(scores.begin(),
                          scores.begin() + static_cast<long>(q),
                          scores.end(),
                          [](const auto &a, const auto &b) {
                              return a.first > b.first;
                          });
        std::vector<uint32_t> ids;
        for (size_t k = 0; k < q; ++k)
            ids.push_back(scores[k].second);
        std::sort(ids.begin(), ids.end());
        const auto corr_relaxed =
            relaxProxySet(ctx.train, ids, ApolloTrainConfig{});
        add("top-|corr| proxies + relaxation",
            corr_relaxed.model.predictFull(ctx.test.X));
    }

    table.render(std::cout);
    std::printf("\n(Q=%zu everywhere)\n", q);
    return 0;
}
