/**
 * @file
 * Reproduces Fig. 12: the Fig. 10 sweep on the second design
 * (Cortex-A77-ish, ~1.7x more RTL signals, vector/issue heavy),
 * verifying that the APOLLO flow generalizes across designs with no
 * manual work (§7.3). Paper anchors: APOLLO reaches NRMSE ~ 8% by
 * Q ~ 300 (<0.03% of its M > 1e6 signals); Lasso and Simmani stay
 * above 10% at Q = 500.
 */

#include "accuracy_sweep.hh"
#include "common.hh"

using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::A77ish);
    printHeader("Fig. 12",
                "per-cycle accuracy vs Q on the second design "
                "(Cortex-A77-ish)",
                ctx);
    const std::vector<size_t> qs =
        ctx.fast ? std::vector<size_t>{50, 159}
                 : std::vector<size_t>{50, 100, 159, 300, 500};
    runAccuracyVsQ(ctx, qs);
    return 0;
}
