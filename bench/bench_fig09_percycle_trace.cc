/**
 * @file
 * Reproduces Fig. 9 (Neoverse N1-ish, Q=159):
 *  (a) the per-cycle predicted-vs-ground-truth power trace over the 12
 *      designer benchmarks (summarized per benchmark; the full trace is
 *      written to fig09_trace.csv for plotting), and the §7.3 unbiased-
 *      ness check (average prediction within ~1% of average truth),
 *  (b) NRMSE and NMAE per designer benchmark (paper: NMAE < 10% for
 *      every benchmark).
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Fig. 9", "per-cycle accuracy at Q=159 on the designer "
                          "test suite", ctx);

    const size_t q = 159;
    const ApolloTrainResult res = trainApolloAtQ(ctx, q);
    const auto pred = res.model.predictFull(ctx.test.X);

    std::printf("model: Q=%zu (%.3f%% of RTL signals; the paper's "
                "Q=159 is <0.03%% of its M>5e5)\n",
                res.model.proxyCount(), 100.0 * ctx.qOverM(q));
    std::printf("selection %.1fs (lambda=%.5g), relaxation %.1fs\n\n",
                res.selectSeconds, res.selection.diagnostics.lambda,
                res.relaxSeconds);

    // (b) per-benchmark metrics.
    TablePrinter table({"benchmark", "cycles", "mean truth",
                        "mean pred", "NRMSE", "NMAE"});
    for (const SegmentInfo &seg : ctx.test.segments) {
        std::vector<float> y(ctx.test.y.begin() + seg.begin,
                             ctx.test.y.begin() + seg.end);
        std::vector<float> p(pred.begin() + seg.begin,
                             pred.begin() + seg.end);
        table.addRow({seg.name,
                      TablePrinter::integer(
                          static_cast<long long>(seg.cycles())),
                      TablePrinter::num(mean(y)),
                      TablePrinter::num(mean(p)),
                      TablePrinter::percent(nrmse(y, p)),
                      TablePrinter::percent(nmae(y, p))});
    }
    table.render(std::cout);

    // Whole-suite metrics + unbiasedness (§7.3: 0.6% gap on N1).
    const double mean_truth = mean(ctx.test.y);
    const double mean_pred = mean(pred);
    std::printf("\nwhole suite: R2=%.4f  NRMSE=%.2f%%  NMAE=%.2f%%  "
                "(paper: R2=0.95, NRMSE=9.4%% at Q=159)\n",
                r2Score(ctx.test.y, pred),
                100.0 * nrmse(ctx.test.y, pred),
                100.0 * nmae(ctx.test.y, pred));
    std::printf("average truth %.4f vs average prediction %.4f: "
                "%.2f%% gap (paper: 0.6%% — unbiased predictions)\n",
                mean_truth, mean_pred,
                100.0 * std::abs(mean_pred - mean_truth) / mean_truth);

    // (a) full trace for plotting.
    std::ofstream csv("fig09_trace.csv");
    csv << "cycle,benchmark,truth,pred\n";
    for (const SegmentInfo &seg : ctx.test.segments)
        for (size_t i = seg.begin; i < seg.end; ++i)
            csv << i << "," << seg.name << "," << ctx.test.y[i] << ","
                << pred[i] << "\n";
    std::printf("\nper-cycle trace written to fig09_trace.csv "
                "(%zu cycles)\n",
                ctx.test.cycles());
    return 0;
}
