/**
 * @file
 * Reproduces Table 4: the 12 designer-handcrafted testing
 * micro-benchmarks, with their Table-4 cycle budgets plus this
 * substrate's measured behaviour (IPC, cache misses, mispredicts,
 * average power) — evidence that each benchmark exercises its intended
 * corner (cache misses, SIMD, throttling schemes, ...).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Table 4", "designer-handcrafted testing benchmarks",
                ctx);

    TablePrinter table({"name", "cycles", "IPC", "L1D miss", "L1I miss",
                        "L2 miss", "mispredicts", "avg power",
                        "throttle"});

    const auto suite = designerTestSuite();
    for (const TestBenchmark &bench : suite) {
        CoreParams params;
        params.throttle = bench.throttle;
        TimingCore core(params);
        const CoreStats stats = core.run(bench.program, bench.cycles,
                                         [](const ActivityFrame &) {});

        // Average power from the shared test dataset segment.
        double avg_power = 0.0;
        for (const SegmentInfo &seg : ctx.test.segments) {
            if (seg.name == bench.program.name()) {
                for (size_t i = seg.begin; i < seg.end; ++i)
                    avg_power += ctx.test.y[i];
                avg_power /= seg.cycles();
                break;
            }
        }

        const char *throttle_name = "-";
        switch (bench.throttle) {
          case ThrottleMode::Scheme1: throttle_name = "scheme 1"; break;
          case ThrottleMode::Scheme2: throttle_name = "scheme 2"; break;
          case ThrottleMode::Scheme3: throttle_name = "scheme 3"; break;
          default: break;
        }

        table.addRow({bench.program.name(),
                      TablePrinter::integer(
                          static_cast<long long>(stats.cycles)),
                      TablePrinter::num(stats.ipc(), 2),
                      TablePrinter::integer(
                          static_cast<long long>(stats.l1dMisses)),
                      TablePrinter::integer(
                          static_cast<long long>(stats.l1iMisses)),
                      TablePrinter::integer(
                          static_cast<long long>(stats.l2Misses)),
                      TablePrinter::integer(
                          static_cast<long long>(stats.mispredicts)),
                      TablePrinter::num(avg_power, 3), throttle_name});
    }
    table.render(std::cout);
    std::printf("\ncycle budgets follow Table 4 exactly (dhrystone "
                "1222, maxpwr_cpu 600, ..., throttling_* 1100); the "
                "suite covers low- and high-power corners plus the "
                "three N1 TRM throttling schemes.\n");
    return 0;
}
