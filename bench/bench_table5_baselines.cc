/**
 * @file
 * Reproduces Table 5: the baseline-method matrix (selection /
 * pre-processing / model family), augmented with measured end-to-end
 * numbers on the shared N1-ish context: test accuracy, training time,
 * monitored signal count, and OPM suitability.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Table 5", "baseline methods, measured end-to-end",
                ctx);

    const size_t q = 159;

    struct Row
    {
        std::string name;
        std::string selection;
        std::string preprocessing;
        std::string model;
        size_t monitored = 0;
        double seconds = 0.0;
        std::vector<float> pred;
        const char *opm;
    };
    std::vector<Row> rows;

    {
        const ApolloTrainResult apollo = trainApolloAtQ(ctx, q);
        rows.push_back({"APOLLO", "MCP", "-", "ridge (relaxed linear)",
                        apollo.model.proxyCount(),
                        apollo.selectSeconds + apollo.relaxSeconds,
                        apollo.model.predictFull(ctx.test.X),
                        "yes (0 multipliers)"});
    }
    {
        const BaselineResult lasso =
            trainLassoBaseline(ctx.train, ctx.test, q);
        rows.push_back({"Lasso [53]", "Lasso", "-", "linear (shrunk)",
                        lasso.monitoredSignals, lasso.trainSeconds,
                        lasso.testPred, "yes (1 multiplier)"});
    }
    {
        SimmaniConfig cfg;
        cfg.clusters = q;
        const BaselineResult simmani =
            trainSimmaniBaseline(ctx.train, ctx.test, cfg);
        rows.push_back({"Simmani [40]", "K-means", "polynomial terms",
                        "elastic net", simmani.monitoredSignals,
                        simmani.trainSeconds, simmani.testPred,
                        "costly (~Q^2 multiplies)"});
    }
    {
        const BaselineResult pca = trainPcaBaseline(
            ctx.train, ctx.test, ctx.fast ? 24 : 48);
        rows.push_back({"PCA [79]", "none", "PCA projection", "linear",
                        pca.monitoredSignals, pca.trainSeconds,
                        pca.testPred, "no (needs all signals)"});
    }
    {
        const BaselineResult primal = trainPrimalNetBaseline(
            ctx.train, ctx.test, ctx.flipflopIds, ctx.fast ? 3 : 10);
        rows.push_back({"PRIMAL-CNN [79]", "none (all flip-flops)", "-",
                        "nonlinear net", primal.monitoredSignals,
                        primal.trainSeconds, primal.testPred,
                        "no (needs all flip-flops)"});
    }

    TablePrinter table({"method", "proxy selection", "pre-processing",
                        "ML model", "monitored signals", "train s",
                        "NRMSE", "R2", "usable as OPM"});
    for (const Row &row : rows) {
        table.addRow({row.name, row.selection, row.preprocessing,
                      row.model,
                      TablePrinter::integer(
                          static_cast<long long>(row.monitored)),
                      TablePrinter::num(row.seconds, 1),
                      TablePrinter::percent(nrmse(ctx.test.y, row.pred)),
                      TablePrinter::num(r2Score(ctx.test.y, row.pred),
                                        4),
                      row.opm});
    }
    table.render(std::cout);
    std::printf("\npaper's Table 5 lists the method matrix; the "
                "accuracy ordering is validated in Figs. 10/12. Total "
                "proxy selection + training for every method stayed "
                "within the paper's 'under three hours' budget by a "
                "wide margin at this scale.\n");
    return 0;
}
