/**
 * @file
 * Extension bench (§9 future work): the higher-abstraction power model
 * (linear over per-cycle micro-architectural state — what a C/C++
 * performance simulator exposes) vs the RTL-proxy APOLLO model.
 *
 * The abstraction trades accuracy for the ability to ride along with
 * performance simulation: no RTL, no toggle tracing, 3*numUnits
 * features total. The bench quantifies that trade on the designer test
 * suite and reports per-benchmark deltas plus inference cost.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Extension (§9)",
                "micro-architectural abstraction model vs RTL-proxy "
                "APOLLO",
                ctx);

    // The abstraction model trains on frames, which the cached context
    // does not retain — regenerate a training run (frames + labels).
    DatasetBuilder train_builder(ctx.netlist);
    Xoshiro256StarStar rng(0xab57);
    const int n_progs = ctx.fast ? 14 : 40;
    for (int i = 0; i < n_progs; ++i) {
        train_builder.addProgram(
            Program::makeLoop("t" + std::to_string(i),
                              GaGenerator::randomBody(rng, 6, 26), 8000,
                              rng()),
            ctx.fast ? 200 : 500);
    }
    const Dataset abstract_train = train_builder.build();
    const AbstractPowerModel abstract_model =
        trainAbstractModel(train_builder.frames(), abstract_train.y);

    // Test: designer suite with frames.
    DatasetBuilder test_builder(ctx.netlist);
    for (const TestBenchmark &bench : designerTestSuite()) {
        const uint64_t budget =
            ctx.fast ? std::max<uint64_t>(100, bench.cycles / 4)
                     : bench.cycles;
        test_builder.addProgram(bench.program, budget, bench.throttle);
    }
    const Dataset test = test_builder.build();
    const auto abstract_pred =
        abstract_model.predict(test_builder.frames());

    // RTL-proxy APOLLO reference at Q=159 on the same data.
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = ctx.fast ? 80 : 159;
    const ApolloModel rtl_model =
        trainApollo(abstract_train, cfg, ctx.netlist.name()).model;
    const auto rtl_pred = rtl_model.predictFull(test.X);

    TablePrinter table({"benchmark", "abstract NRMSE", "RTL NRMSE",
                        "gap"});
    for (const SegmentInfo &seg : test.segments) {
        std::vector<float> y(test.y.begin() + seg.begin,
                             test.y.begin() + seg.end);
        std::vector<float> pa(abstract_pred.begin() + seg.begin,
                              abstract_pred.begin() + seg.end);
        std::vector<float> pr(rtl_pred.begin() + seg.begin,
                              rtl_pred.begin() + seg.end);
        table.addRow({seg.name,
                      TablePrinter::percent(nrmse(y, pa)),
                      TablePrinter::percent(nrmse(y, pr)),
                      TablePrinter::percent(nrmse(y, pa) -
                                            nrmse(y, pr))});
    }
    table.render(std::cout);

    std::printf("\noverall: abstract R2=%.4f NRMSE=%.2f%%  |  "
                "RTL-proxy R2=%.4f NRMSE=%.2f%%\n",
                r2Score(test.y, abstract_pred),
                100.0 * nrmse(test.y, abstract_pred),
                r2Score(test.y, rtl_pred),
                100.0 * nrmse(test.y, rtl_pred));
    std::printf("abstract model: %zu features (vs %zu monitored RTL "
                "signals), zero RTL simulation at inference\n",
                AbstractPowerModel::featureCount,
                rtl_model.proxyCount());
    std::printf("caveat: on this synthetic substrate the unit-activity "
                "frames are the generative latent state of every "
                "toggle, so the abstraction is unrealistically "
                "competitive; on real RTL, toggles carry information "
                "coarse unit activity cannot (the paper leaves this "
                "direction as future work for that reason).\n");

    // The heaviest abstract-model weights: which architectural levers
    // carry power.
    std::vector<size_t> order(AbstractPowerModel::featureCount);
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return std::abs(abstract_model.weights[a]) >
               std::abs(abstract_model.weights[b]);
    });
    std::printf("\ntop architectural power levers:\n");
    for (size_t k = 0; k < 8; ++k)
        std::printf("  %8.4f  %s\n", abstract_model.weights[order[k]],
                    AbstractPowerModel::featureName(order[k]).c_str());
    return 0;
}
