/**
 * @file
 * Serving-layer bench: multi-session throughput of the session
 * manager (src/serve/) on a sessions x threads grid of N1ish-shaped
 * synthetic proxy traces, with the serving contract gated alongside
 * the numbers:
 *
 *  1. Bit identity: every session's streamed samples — at every pool
 *     size and session count — equal running that session's chunk
 *     sequence through StreamingInference alone.
 *  2. Record -> replay: a session recorded by the serve loop replays
 *     to byte-identical power events.
 *  3. Scaling: aggregate Mcycles/s of 8 sessions on a full-width pool
 *     against the 1-session/1-thread baseline. The paper-level target
 *     is >= 3x, which needs >= 8 hardware threads; the enforced floor
 *     adapts to the host (min(3, max(0.5, 0.45 * hw_threads))) and
 *     the JSON records "hardware_threads" so readers can judge the
 *     measured ratio.
 *
 * Results go to BENCH_serve.json.
 *
 * Usage: bench_serve [--smoke] [--reps=N] [--out=PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apollo.hh"
#include "common.hh"

using namespace apollo;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Per-column toggle density class, N1ish-shaped (see bench_perf_solver). */
int
densityAnds(uint64_t seed, size_t col)
{
    const uint64_t u = mix64(seed ^ (col * 0x51ed2701ULL)) % 100;
    if (u < 7)
        return 0;
    if (u < 27)
        return 1;
    if (u < 55)
        return 2;
    if (u < 80)
        return 3;
    if (u < 93)
        return 4;
    return 5;
}

/** Fill rows [first, first+n) of a chunk from the hash stream. */
void
fillChunkWords(BitColumnMatrix &bits, uint64_t first, size_t n,
               size_t q, uint64_t seed)
{
    bits.reset(n, q);
    const size_t wpc = bits.wordsPerCol();
    if (wpc == 0)
        return;
    const uint64_t tail_mask =
        (n & 63) ? ((1ULL << (n & 63)) - 1) : ~0ULL;
    for (size_t c = 0; c < q; ++c) {
        const int ands = densityAnds(seed, c);
        uint64_t *w = bits.colWordsMutable(c);
        // Chunks are fed at 64-aligned boundaries, so word k of this
        // chunk is global word first/64 + k — chunking cannot change
        // the generated bits.
        const uint64_t word0 = first >> 6;
        for (size_t k = 0; k < wpc; ++k) {
            uint64_t word =
                mix64(seed ^ ((word0 + k) * 0x2545f491ULL) ^
                      (c * 0x9e3779b9ULL));
            for (int t = 0; t < ands; ++t)
                word &= mix64(word + t + 1);
            w[k] = word;
        }
        w[wpc - 1] &= tail_mask;
    }
}

/** The same hash trace as an on-demand chunk source (reference runs). */
class HashChunkReader : public ProxyChunkReader
{
  public:
    HashChunkReader(uint64_t cycles, size_t q, uint64_t seed)
        : cycles_(cycles), q_(q), seed_(seed)
    {}

    size_t proxyCount() const override { return q_; }
    uint64_t totalCycles() const override { return cycles_; }

    StatusOr<size_t>
    next(size_t max_rows, ProxyChunk &chunk) override
    {
        const size_t aligned =
            std::max<size_t>(64, max_rows & ~size_t{63});
        const size_t n = static_cast<size_t>(
            std::min<uint64_t>(aligned, cycles_ - pos_));
        if (n == 0)
            return size_t{0};
        chunk.firstCycle = pos_;
        fillChunkWords(chunk.bits, pos_, n, q_, seed_);
        pos_ += n;
        return n;
    }

  private:
    uint64_t cycles_;
    size_t q_;
    uint64_t seed_;
    uint64_t pos_ = 0;
};

ApolloModel
makeModel(size_t q, uint64_t seed)
{
    ApolloModel model;
    model.intercept = 0.42;
    for (size_t i = 0; i < q; ++i) {
        model.proxyIds.push_back(static_cast<uint32_t>(i));
        const double u =
            static_cast<double>(mix64(seed ^ i) % 2000) / 1000.0 - 1.0;
        model.weights.push_back(static_cast<float>(0.05 + 0.5 * u * u));
    }
    return model;
}

uint64_t
sessionSeed(uint64_t seed, size_t s)
{
    return seed + 0x9e3779b97f4a7c15ULL * (s + 1);
}

/** One grid cell: S sessions fed round-robin over a T-thread pool. */
struct CellResult
{
    double seconds = 1e300;
    bool identical = true;
    uint64_t stalls = 0;
};

CellResult
runCell(const std::shared_ptr<const serve::ModelRegistry> &registry,
        size_t threads, size_t sessions, uint64_t cycles, size_t q,
        uint64_t seed, size_t chunk_rows, int reps,
        const std::vector<std::vector<float>> &refs)
{
    CellResult result;
    for (int rep = 0; rep < reps; ++rep) {
        serve::SessionManager manager(
            registry, serve::ServeConfig{}
                          .withThreads(threads)
                          .withMaxSessions(sessions));
        std::vector<VectorSink> sinks(sessions);
        std::vector<serve::SessionId> ids(sessions);
        for (size_t s = 0; s < sessions; ++s) {
            serve::SessionOptions options;
            options.model = "hash_q10";
            auto id = manager.createSession(options, &sinks[s]);
            id.status().orFatal();
            ids[s] = *id;
        }

        const uint64_t stalls0 = manager.stats().backpressureStalls;
        const double t0 = nowSeconds();
        BitColumnMatrix bits;
        for (uint64_t pos = 0; pos < cycles; pos += chunk_rows) {
            const size_t n = static_cast<size_t>(
                std::min<uint64_t>(chunk_rows, cycles - pos));
            for (size_t s = 0; s < sessions; ++s) {
                fillChunkWords(bits, pos, n, q, sessionSeed(seed, s));
                manager.submitChunk(ids[s], std::move(bits)).orFatal();
            }
        }
        for (size_t s = 0; s < sessions; ++s)
            manager.closeSession(ids[s]).status().orFatal();
        const double secs = nowSeconds() - t0;

        result.seconds = std::min(result.seconds, secs);
        result.stalls = std::max(
            result.stalls, manager.stats().backpressureStalls - stalls0);
        for (size_t s = 0; s < sessions; ++s)
            if (sinks[s].values() != refs[s])
                result.identical = false;
    }
    return result;
}

/** Power-event lines of @p session, in order (replay comparator). */
std::vector<std::string>
powerLines(const std::string &ndjson, const std::string &session)
{
    std::vector<std::string> lines;
    std::istringstream is(ndjson);
    std::string line;
    const std::string tag = "\"session\":\"" + session + "\"";
    while (std::getline(is, line))
        if (line.find(tag) != std::string::npos &&
            line.find("\"first_index\"") != std::string::npos)
            lines.push_back(line);
    return lines;
}

/** Serve a canned request stream; return the response text. */
std::string
serveText(const std::shared_ptr<const serve::ModelRegistry> &registry,
          const std::string &requests, const std::string &record_dir)
{
    std::istringstream in(requests);
    std::ostringstream out;
    serve::ServeLoopOptions options;
    options.config.threads = 2;
    options.recordDir = record_dir;
    auto report = serve::runServeLoop(registry, in, out, options);
    report.status().orFatal();
    APOLLO_REQUIRE(report->errors == 0,
                   "serve loop reported request errors");
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int reps = 1;
    std::string out = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }

    const uint64_t n = smoke ? (1 << 17) : (1 << 20); // per session
    const size_t q = smoke ? 48 : 150;
    const uint32_t T = 32;
    const uint32_t bits = 10;
    const size_t chunk_rows = 1 << 14;
    const uint64_t seed = 0x5e47eULL;
    const size_t hw = std::max<size_t>(
        1, std::thread::hardware_concurrency());

    std::printf("bench_serve: n=%llu/session q=%zu T=%u hw=%zu "
                "reps=%d%s\n",
                static_cast<unsigned long long>(n), q, T, hw, reps,
                smoke ? " [smoke]" : "");

    const auto obs_before = bench::obsCounters();

    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->addFloat("hash", makeModel(q, seed)).orFatal();
    registry->addQuantizedVariant("hash_q10", "hash", bits, T)
        .status()
        .orFatal();

    // ---- Sequential references: each session's trace through the
    //      one-stream engine alone. These are both the bit-identity
    //      oracle and the 1x1 baseline's expected output.
    const size_t max_sessions = 8;
    const StreamingInference qengine(
        *registry->find("hash_q10")->qmodel, T);
    std::vector<std::vector<float>> refs(max_sessions);
    for (size_t s = 0; s < max_sessions; ++s) {
        HashChunkReader reader(n, q, sessionSeed(seed, s));
        VectorSink sink;
        qengine.run(reader, sink,
                    StreamConfig{}.withChunkCycles(chunk_rows))
            .status()
            .orFatal();
        refs[s] = sink.takeValues();
        APOLLO_REQUIRE(!refs[s].empty(), "empty reference stream");
    }

    // ---- The sessions x threads grid.
    struct Cell
    {
        size_t threads = 0;
        size_t sessions = 0;
        CellResult result;
    };
    std::vector<Cell> grid;
    std::vector<size_t> thread_counts = {1};
    if (hw > 1)
        thread_counts.push_back(hw);
    for (const size_t threads : thread_counts)
        for (const size_t sessions : {size_t{1}, max_sessions}) {
            Cell cell;
            cell.threads = threads;
            cell.sessions = sessions;
            cell.result = runCell(registry, threads, sessions, n, q,
                                  seed, chunk_rows, reps, refs);
            const double mcyc = static_cast<double>(n) * sessions /
                                cell.result.seconds / 1e6;
            std::printf("  threads=%zu sessions=%zu  %.3fs  "
                        "%.1f Mcyc/s aggregate (%.1f per session)  "
                        "stalls=%llu  identical=%s\n",
                        threads, sessions, cell.result.seconds, mcyc,
                        mcyc / sessions,
                        static_cast<unsigned long long>(
                            cell.result.stalls),
                        cell.result.identical ? "yes" : "NO");
            grid.push_back(std::move(cell));
        }

    const auto cellAt = [&](size_t threads, size_t sessions) {
        for (const Cell &cell : grid)
            if (cell.threads == threads && cell.sessions == sessions)
                return cell.result;
        return CellResult{};
    };
    const CellResult base = cellAt(1, 1);
    const CellResult wide = cellAt(thread_counts.back(), max_sessions);
    const double base_mcyc =
        static_cast<double>(n) / base.seconds / 1e6;
    const double wide_mcyc = static_cast<double>(n) * max_sessions /
                             wide.seconds / 1e6;
    const double speedup = wide_mcyc / base_mcyc;

    bool all_identical = true;
    for (const Cell &cell : grid)
        all_identical = all_identical && cell.result.identical;

    // ---- Record -> replay on a small canned stream: serve it with
    //      recording on, then replay one record file and compare the
    //      session's power-event lines byte for byte.
    const size_t rr_chunks = 4;
    const size_t rr_rows = 512;
    std::string requests;
    {
        serve::WireRequest req;
        req.op = serve::RequestOp::CreateSession;
        req.session = "s0";
        req.model = "hash_q10";
        requests += serve::encodeRequest(req);
        BitColumnMatrix chunk;
        for (size_t c = 0; c < rr_chunks; ++c) {
            fillChunkWords(chunk, c * rr_rows, rr_rows, q,
                           sessionSeed(seed, 0));
            serve::WireRequest sub;
            sub.op = serve::RequestOp::SubmitChunk;
            sub.session = "s0";
            sub.bits = std::move(chunk);
            requests += serve::encodeRequest(sub);
        }
        serve::WireRequest close;
        close.op = serve::RequestOp::CloseSession;
        close.session = "s0";
        requests += serve::encodeRequest(close);
    }
    const std::string record_dir = "bench_serve_rec";
    const std::string live = serveText(registry, requests, record_dir);
    std::string recorded;
    {
        std::ifstream is(record_dir + "/s0.ndjson");
        APOLLO_REQUIRE(is.is_open(), "missing serve record file");
        std::ostringstream buf;
        buf << is.rdbuf();
        recorded = buf.str();
    }
    const std::string replay = serveText(registry, recorded, "");
    const std::vector<std::string> live_power = powerLines(live, "s0");
    const bool replay_identical =
        !live_power.empty() && live_power == powerLines(replay, "s0");
    std::printf("  record->replay: %zu power events, identical=%s\n",
                live_power.size(), replay_identical ? "yes" : "NO");

    // ---- JSON.
    std::ofstream os(out);
    os << "{\n";
    os << "  \"bench\": \"serve\",\n";
    os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    os << "  \"hardware_threads\": " << hw << ",\n";
    os << "  \"cycles_per_session\": " << n << ",\n";
    os << "  \"q\": " << q << ",\n  \"T\": " << T << ",\n";
    os << "  \"chunk_rows\": " << chunk_rows << ",\n";
    os << "  \"grid\": [\n";
    for (size_t i = 0; i < grid.size(); ++i) {
        const Cell &cell = grid[i];
        const double mcyc = static_cast<double>(n) * cell.sessions /
                            cell.result.seconds / 1e6;
        os << "    {\"threads\": " << cell.threads
           << ", \"sessions\": " << cell.sessions
           << ", \"seconds\": " << cell.result.seconds
           << ", \"aggregate_mcycles_per_sec\": " << mcyc
           << ", \"per_session_mcycles_per_sec\": "
           << mcyc / cell.sessions
           << ", \"backpressure_stalls\": " << cell.result.stalls
           << ", \"bit_identical\": "
           << (cell.result.identical ? "true" : "false") << "}"
           << (i + 1 < grid.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"speedup_8xN_vs_1x1\": " << speedup << ",\n";
    const double full_floor =
        std::min(3.0, std::max(0.5, 0.45 * static_cast<double>(hw)));
    const double floor = smoke ? std::min(0.4, full_floor) : full_floor;
    os << "  \"speedup_floor\": " << floor << ",\n";
    os << "  \"bit_identical\": "
       << (all_identical ? "true" : "false") << ",\n";
    os << "  \"record_replay_identical\": "
       << (replay_identical ? "true" : "false") << ",\n";
    os << "  \"obs\": " << bench::obsDeltaJson(obs_before) << "\n";
    os << "}\n";
    std::printf("wrote %s\n", out.c_str());

    // ---- Gates.
    bool ok = true;
    if (!all_identical) {
        std::fprintf(stderr, "FAIL: a served session's samples differ "
                             "from the one-stream engine\n");
        ok = false;
    }
    if (!replay_identical) {
        std::fprintf(stderr, "FAIL: replaying the recorded session "
                             "diverged from the live run\n");
        ok = false;
    }
    if (hw < 8)
        std::printf("note: the paper-level 3x aggregate-throughput "
                    "gate needs >= 8 hardware threads (host has %zu); "
                    "enforcing the adaptive %.2fx floor instead\n",
                    hw, floor);
    if (speedup < floor) {
        std::fprintf(stderr,
                     "FAIL: 8-session aggregate speedup %.2fx below "
                     "the %.2fx floor\n",
                     speedup, floor);
        ok = false;
    }
    return ok ? 0 : 1;
}
