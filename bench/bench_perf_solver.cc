/**
 * @file
 * Solver perf bench: times the design-time bottleneck — an MCP
 * target-Q path solve (`solveForTargetQ`, the per-point workhorse of
 * the Fig. 10/12/15(b) Q sweeps) — on N1ish-sized synthetic toggle
 * data, with the three optimization layers toggled individually:
 *
 *   baseline         per-bit scalar kernels, virtual dispatch, no
 *                    screening, serial column passes (the seed solver)
 *   +kernels         word-at-a-time packed-bit kernels + devirtualized
 *                    sweep loop
 *   +screen          strong-rule screening with KKT re-admission
 *   +parallel (all)  column passes fanned over the thread pool
 *
 * All configurations must select the identical proxy support. Results
 * (wall-clock, cumulative sweeps, KKT passes) are written to
 * BENCH_solver.json so future PRs can track the trajectory.
 *
 * Usage: bench_perf_solver [--smoke] [--reps=N] [--out=PATH]
 * (--smoke: tiny problem + relaxed timing gate; used by the `perf`
 * ctest label to catch kernel/screening regressions.)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apollo.hh"
#include "common.hh"

using namespace apollo;

namespace {

/**
 * N1ish-shaped toggle matrix: column densities spanning rare control
 * toggles (~2%) up to hot gated-clock nets (~75%), generated a word at
 * a time (AND-ing k random words gives rate 2^-k; OR-ing two gives
 * 3/4).
 */
BitColumnMatrix
makeToggleMatrix(size_t n, size_t m, uint64_t seed)
{
    BitColumnMatrix X(n, m);
    Xoshiro256StarStar rng(seed);
    const size_t wpc = X.wordsPerCol();
    const uint64_t tail_mask =
        (n & 63) ? ((1ULL << (n & 63)) - 1) : ~0ULL;
    for (size_t c = 0; c < m; ++c) {
        uint64_t *w = X.colWordsMutable(c);
        const double u = rng.nextDouble();
        int ands = 0; // rate 2^-(ands+1)
        bool dense = false;
        if (u < 0.02)
            dense = true; // ~0.75
        else if (u < 0.07)
            ands = 0; // 0.5
        else if (u < 0.27)
            ands = 1; // 0.25
        else if (u < 0.55)
            ands = 2; // 0.125
        else if (u < 0.80)
            ands = 3; // 0.0625
        else if (u < 0.93)
            ands = 4; // 0.031
        else
            ands = 5; // 0.016
        for (size_t k = 0; k < wpc; ++k) {
            uint64_t word = rng();
            if (dense)
                word |= rng();
            for (int t = 0; t < ands; ++t)
                word &= rng();
            w[k] = word;
        }
        w[wpc - 1] &= tail_mask;
    }
    return X;
}

/** Planted sparse power model over the toggles, with noise. */
std::vector<float>
makeLabels(const BitColumnMatrix &X, size_t planted, uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    std::vector<float> y(X.rows(), 2.0f);
    for (size_t p = 0; p < planted; ++p) {
        const auto j = static_cast<size_t>(p * X.cols() / planted);
        const auto wj =
            static_cast<float>(0.4 + 1.6 * rng.nextDouble());
        X.axpyColumn(j, wj, y.data());
    }
    for (float &v : y)
        v += static_cast<float>(0.05 * rng.nextGaussian());
    return y;
}

struct LayerConfig
{
    const char *name;
    bool fastKernels;
    bool screen;
    bool parallel;
};

struct RunStats
{
    std::string name;
    double seconds = 0.0;
    TargetQDiagnostics diag;
    std::vector<uint32_t> support;
    bool supportMatch = true;
};

RunStats
runConfig(const LayerConfig &layer, const BitColumnMatrix &X,
          const std::vector<float> &y, size_t q, int reps)
{
    RunStats stats;
    stats.name = layer.name;
    stats.seconds = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        BitFeatureView fast_view(X);
        ScalarBitFeatureView scalar_view(X);
        const FeatureView &view =
            layer.fastKernels
                ? static_cast<const FeatureView &>(fast_view)
                : static_cast<const FeatureView &>(scalar_view);

        CdConfig cd;
        cd.penalty.kind = PenaltyKind::Mcp;
        cd.penalty.gamma = 10.0;
        cd.maxSweeps = 250;
        cd.screen = layer.screen;

        const auto t0 = std::chrono::steady_clock::now();
        // Solver construction (column norms) and lambdaMax are part of
        // the per-selection cost and are included in the timing.
        CdSolver solver(view, y, {.parallel = layer.parallel});
        TargetQDiagnostics diag;
        const CdResult fit = solveForTargetQ(solver, cd, q, &diag);
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (secs < stats.seconds) {
            stats.seconds = secs;
            stats.diag = diag;
        }
        if (rep == 0)
            stats.support = fit.support();
    }
    return stats;
}

void
writeJson(const std::string &path, const char *mode, size_t n, size_t m,
          size_t q, const std::vector<RunStats> &runs, double speedup,
          const std::string &obs_json)
{
    std::ofstream os(path);
    os << "{\n";
    os << "  \"bench\": \"solver_path\",\n";
    os << "  \"mode\": \"" << mode << "\",\n";
    os << "  \"n\": " << n << ",\n  \"m\": " << m << ",\n  \"q\": " << q
       << ",\n";
    os << "  \"configs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const RunStats &r = runs[i];
        os << "    {\"name\": \"" << r.name << "\", \"seconds\": "
           << r.seconds << ", \"total_sweeps\": " << r.diag.totalSweeps
           << ", \"kkt_passes\": " << r.diag.totalKktPasses
           << ", \"kkt_dots\": " << r.diag.totalKktDots
           << ", \"path_points\": " << r.diag.pathPoints
           << ", \"bisections\": " << r.diag.bisections
           << ", \"nonzeros\": " << r.support.size()
           << ", \"support_matches_baseline\": "
           << (r.supportMatch ? "true" : "false") << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"obs\": " << obs_json << ",\n";
    os << "  \"speedup_all_vs_baseline\": " << speedup << "\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int reps = 1;
    std::string out = "BENCH_solver.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }

    // N1ish-sized: ~24k candidate signals, Q at the paper's Fig. 10
    // operating point. Smoke mode shrinks everything so the perf ctest
    // label stays fast.
    const size_t n = smoke ? 2500 : 12000;
    const size_t m = smoke ? 2000 : 24000;
    const size_t q = smoke ? 48 : 159;

    std::printf("bench_perf_solver: n=%zu m=%zu q=%zu reps=%d%s\n", n, m,
                q, reps, smoke ? " [smoke]" : "");
    const BitColumnMatrix X = makeToggleMatrix(n, m, 0xa9011c);
    const std::vector<float> y = makeLabels(X, m / 80 + 8, 0x5eed);
    const auto obs_before = bench::obsCounters();

    const LayerConfig layers[] = {
        {"baseline", false, false, false},
        {"kernels", true, false, false},
        {"kernels+screen", true, true, false},
        {"all", true, true, true},
    };

    std::vector<RunStats> runs;
    for (const LayerConfig &layer : layers) {
        RunStats stats = runConfig(layer, X, y, q, reps);
        if (!runs.empty())
            stats.supportMatch = stats.support == runs.front().support;
        std::printf("  %-16s %8.3fs  sweeps=%-6zu kkt=%-4zu dots=%-7zu "
                    "points=%zu+%zu  nnz=%zu%s\n",
                    stats.name.c_str(), stats.seconds,
                    stats.diag.totalSweeps, stats.diag.totalKktPasses,
                    stats.diag.totalKktDots, stats.diag.pathPoints,
                    stats.diag.bisections, stats.support.size(),
                    stats.supportMatch ? "" : "  SUPPORT MISMATCH");
        runs.push_back(std::move(stats));
    }

    const double speedup = runs.front().seconds / runs.back().seconds;
    std::printf("speedup (all vs baseline): %.2fx\n", speedup);
    writeJson(out, smoke ? "smoke" : "full", n, m, q, runs, speedup,
              bench::obsDeltaJson(obs_before));
    std::printf("wrote %s\n", out.c_str());

    bool ok = true;
    for (const RunStats &r : runs)
        ok = ok && r.supportMatch;
    if (!ok) {
        std::fprintf(stderr, "FAIL: optimized configurations changed "
                             "the selected support\n");
        return 1;
    }
    // Timing gate: generous in smoke mode (shared CI machines), the
    // paper-trajectory target in full mode.
    const double floor = smoke ? 1.0 : 3.0;
    if (speedup < floor) {
        std::fprintf(stderr, "FAIL: speedup %.2fx below %.1fx floor\n",
                     speedup, floor);
        return 1;
    }
    return 0;
}
