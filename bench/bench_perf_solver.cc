/**
 * @file
 * Solver perf bench: times the design-time bottleneck — an MCP
 * target-Q path solve (`solveForTargetQ`, the per-point workhorse of
 * the Fig. 10/12/15(b) Q sweeps) — on N1ish-sized synthetic toggle
 * data, with the three optimization layers toggled individually:
 *
 *   baseline         per-bit scalar kernels, virtual dispatch, no
 *                    screening, serial column passes (the seed solver)
 *   +kernels         word-at-a-time packed-bit kernels + devirtualized
 *                    sweep loop
 *   +screen          strong-rule screening with KKT re-admission
 *   +parallel (all)  column passes fanned over the thread pool
 *
 * All configurations must select the identical proxy support. Results
 * (wall-clock, cumulative sweeps, KKT passes) are written to
 * BENCH_solver.json so future PRs can track the trajectory.
 *
 * Usage: bench_perf_solver [--smoke] [--huge] [--reps=N] [--out=PATH]
 * (--smoke: tiny problem + relaxed timing gate; used by the `perf`
 * ctest label to catch kernel/screening regressions.)
 *
 * --huge adds the paper-scale out-of-core phase (docs/INTERNALS.md
 * §13): the counter-seeded synthetic matrix is streamed into APSH
 * shard files (M = 500k full / 100k smoke — never resident), then
 * selectProxiesSharded runs end to end against the mapped set. Gates:
 * peak RSS growth must stay well below the dense N x M footprint
 * (< 25% in full mode), and an M = 24k identity grid re-checks that
 * the sharded path selects the bit-identical support and weights at
 * every shard count x thread count vs the in-RAM solver. The huge
 * phase runs FIRST (ru_maxrss is monotonic, so the baseline snapshot
 * at main() entry only bounds it if nothing big ran before).
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apollo.hh"
#include "common.hh"
#include "gen/synthetic_toggles.hh"

using namespace apollo;

namespace {

/**
 * N1ish-shaped toggle matrix: column densities spanning rare control
 * toggles (~2%) up to hot gated-clock nets (~75%), generated a word at
 * a time (AND-ing k random words gives rate 2^-k; OR-ing two gives
 * 3/4).
 */
BitColumnMatrix
makeToggleMatrix(size_t n, size_t m, uint64_t seed)
{
    BitColumnMatrix X(n, m);
    Xoshiro256StarStar rng(seed);
    const size_t wpc = X.wordsPerCol();
    const uint64_t tail_mask =
        (n & 63) ? ((1ULL << (n & 63)) - 1) : ~0ULL;
    for (size_t c = 0; c < m; ++c) {
        uint64_t *w = X.colWordsMutable(c);
        const double u = rng.nextDouble();
        int ands = 0; // rate 2^-(ands+1)
        bool dense = false;
        if (u < 0.02)
            dense = true; // ~0.75
        else if (u < 0.07)
            ands = 0; // 0.5
        else if (u < 0.27)
            ands = 1; // 0.25
        else if (u < 0.55)
            ands = 2; // 0.125
        else if (u < 0.80)
            ands = 3; // 0.0625
        else if (u < 0.93)
            ands = 4; // 0.031
        else
            ands = 5; // 0.016
        for (size_t k = 0; k < wpc; ++k) {
            uint64_t word = rng();
            if (dense)
                word |= rng();
            for (int t = 0; t < ands; ++t)
                word &= rng();
            w[k] = word;
        }
        w[wpc - 1] &= tail_mask;
    }
    return X;
}

/** Planted sparse power model over the toggles, with noise. */
std::vector<float>
makeLabels(const BitColumnMatrix &X, size_t planted, uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    std::vector<float> y(X.rows(), 2.0f);
    for (size_t p = 0; p < planted; ++p) {
        const auto j = static_cast<size_t>(p * X.cols() / planted);
        const auto wj =
            static_cast<float>(0.4 + 1.6 * rng.nextDouble());
        X.axpyColumn(j, wj, y.data());
    }
    for (float &v : y)
        v += static_cast<float>(0.05 * rng.nextGaussian());
    return y;
}

struct LayerConfig
{
    const char *name;
    bool fastKernels;
    bool screen;
    bool parallel;
};

struct RunStats
{
    std::string name;
    double seconds = 0.0;
    TargetQDiagnostics diag;
    std::vector<uint32_t> support;
    bool supportMatch = true;
};

RunStats
runConfig(const LayerConfig &layer, const BitColumnMatrix &X,
          const std::vector<float> &y, size_t q, int reps)
{
    RunStats stats;
    stats.name = layer.name;
    stats.seconds = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        BitFeatureView fast_view(X);
        ScalarBitFeatureView scalar_view(X);
        const FeatureView &view =
            layer.fastKernels
                ? static_cast<const FeatureView &>(fast_view)
                : static_cast<const FeatureView &>(scalar_view);

        CdConfig cd;
        cd.penalty.kind = PenaltyKind::Mcp;
        cd.penalty.gamma = 10.0;
        cd.maxSweeps = 250;
        cd.screen = layer.screen;

        const auto t0 = std::chrono::steady_clock::now();
        // Solver construction (column norms) and lambdaMax are part of
        // the per-selection cost and are included in the timing.
        CdSolver solver(view, y, {.parallel = layer.parallel});
        TargetQDiagnostics diag;
        const CdResult fit = solveForTargetQ(solver, cd, q, &diag);
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (secs < stats.seconds) {
            stats.seconds = secs;
            stats.diag = diag;
        }
        if (rep == 0)
            stats.support = fit.support();
    }
    return stats;
}

/** Peak RSS of this process so far, in bytes (ru_maxrss is KiB on
 *  Linux and monotonic — deltas only bound phases that ran before the
 *  second snapshot). */
double
peakRssBytes()
{
    struct rusage ru
    {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) * 1024.0;
}

/** One cell of the M=24k sharded-vs-unsharded identity grid. */
struct IdentityRun
{
    uint32_t shards = 0;
    bool parallel = false;
    double seconds = 0.0;
    bool match = false;
};

/** Results of the out-of-core phase. */
struct HugeResult
{
    size_t n = 0;
    size_t m = 0;
    size_t q = 0;
    uint32_t shards = 0;
    double genSeconds = 0.0;
    double selectSeconds = 0.0;
    double rssDeltaBytes = 0.0;
    double denseBytes = 0.0;
    double rssLimitBytes = 0.0;
    size_t nonzeros = 0;
    ShardSelectionStats stats;
    bool rssOk = false;
    bool selectOk = false;
    std::vector<IdentityRun> identity;
    bool identityOk = false;
};

/**
 * Paper-scale out-of-core selection: stream the counter-seeded
 * synthetic matrix into APSH shards (one column block in RAM at a
 * time), then run selectProxiesSharded against the mapped set. The
 * matrix is never resident; the RSS gate checks that stays true end
 * to end.
 */
void
runHugePhase(bool smoke, double baseline_rss, HugeResult &h)
{
    namespace fs = std::filesystem;
    h.n = smoke ? 4096 : 12000;
    h.m = smoke ? 100000 : 500000;
    h.q = smoke ? 48 : 159;
    h.shards = smoke ? 16 : 32;
    const size_t wpc = (h.n + 63) / 64;
    h.denseBytes = static_cast<double>(wpc) * 8.0 *
                   static_cast<double>(h.m);
    // The ISSUE gate (< 25% of the dense footprint) applies at the
    // full M=500k scale; smoke shrinks the matrix until fixed costs
    // (thread stacks, allocator slack) are a visible fraction, so it
    // gets a relaxed factor while still proving sub-linear residency.
    h.rssLimitBytes = (smoke ? 0.5 : 0.25) * h.denseBytes;

    const fs::path dir = fs::temp_directory_path() / "apollo_bench_huge";
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::string base =
        (dir / (smoke ? "huge_smoke" : "huge")).string();

    std::printf("huge: n=%zu m=%zu q=%zu shards=%u (dense footprint "
                "%.0f MiB, never resident)\n",
                h.n, h.m, h.q, h.shards, h.denseBytes / (1 << 20));
    auto t0 = std::chrono::steady_clock::now();
    const Status gen =
        writeSyntheticShards(base, h.n, h.m, h.shards, 0xa9011c);
    h.genSeconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (!gen.ok()) {
        std::fprintf(stderr, "huge: shard generation failed: %s\n",
                     gen.message().c_str());
        return;
    }
    const std::vector<float> y =
        makeSyntheticLabels(h.n, h.m, h.m / 80 + 8, 0xa9011c, 0x5eed);

    t0 = std::chrono::steady_clock::now();
    StatusOr<MappedShardSet> set = MappedShardSet::open(base);
    if (!set.ok()) {
        std::fprintf(stderr, "huge: open failed: %s\n",
                     set.status().message().c_str());
        return;
    }
    ProxySelectorConfig cfg;
    cfg.targetQ = h.q;
    StatusOr<ProxySelection> sel =
        selectProxiesSharded(*set, y, cfg, &h.stats);
    h.selectSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!sel.ok()) {
        std::fprintf(stderr, "huge: selection failed: %s\n",
                     sel.status().message().c_str());
        return;
    }
    h.selectOk = true;
    h.nonzeros = sel->proxyIds.size();
    h.rssDeltaBytes = peakRssBytes() - baseline_rss;
    h.rssOk = h.rssDeltaBytes < h.rssLimitBytes;
    std::printf("  gen %.1fs  select %.1fs  nnz=%zu  admitted=%llu/%llu"
                "  peak_strong=%llu\n",
                h.genSeconds, h.selectSeconds, h.nonzeros,
                static_cast<unsigned long long>(h.stats.screenAdmitted),
                static_cast<unsigned long long>(h.stats.colsScanned),
                static_cast<unsigned long long>(h.stats.peakStrongSize));
    std::printf("  peak RSS delta %.0f MiB vs dense %.0f MiB "
                "(limit %.0f MiB) %s\n",
                h.rssDeltaBytes / (1 << 20), h.denseBytes / (1 << 20),
                h.rssLimitBytes / (1 << 20),
                h.rssOk ? "OK" : "FAIL");
    fs::remove_all(dir, ec);
}

/**
 * The determinism gate at the paper's N1ish scale: selectProxiesSharded
 * over K ∈ {1,4,16} shards, serial and pooled, must reproduce the
 * in-RAM selectProxies support, weights, and intercept bit-for-bit
 * (M = 24k full / 6k smoke of the same counter-seeded matrix).
 */
void
runIdentityGrid(bool smoke, HugeResult &h)
{
    namespace fs = std::filesystem;
    const size_t n = smoke ? 2500 : 12000;
    const size_t m = smoke ? 6000 : 24000;
    const size_t q = smoke ? 48 : 159;

    const BitColumnMatrix X = makeSyntheticToggleBlock(n, 0, m, 0xa9011c);
    const std::vector<float> y =
        makeSyntheticLabels(n, m, m / 80 + 8, 0xa9011c, 0x5eed);
    ProxySelectorConfig cfg;
    cfg.targetQ = q;
    const BitFeatureView view(X);
    const ProxySelection want = selectProxies(view, y, cfg);

    const fs::path dir =
        fs::temp_directory_path() / "apollo_bench_huge_identity";
    std::error_code ec;
    fs::create_directories(dir, ec);
    h.identityOk = true;
    for (uint32_t shards : {1u, 4u, 16u}) {
        const std::string base =
            (dir / ("id_" + std::to_string(shards))).string();
        const Status saved = saveShardedMatrix(base, X, shards);
        StatusOr<MappedShardSet> set =
            saved.ok() ? MappedShardSet::open(base)
                       : StatusOr<MappedShardSet>(saved);
        for (bool parallel : {false, true}) {
            IdentityRun run;
            run.shards = shards;
            run.parallel = parallel;
            if (set.ok()) {
                cfg.parallel = parallel;
                const auto t0 = std::chrono::steady_clock::now();
                StatusOr<ProxySelection> got =
                    selectProxiesSharded(*set, y, cfg);
                run.seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
                run.match =
                    got.ok() && got->proxyIds == want.proxyIds &&
                    got->sparseModel.w.size() == want.sparseModel.w.size() &&
                    std::memcmp(got->sparseModel.w.data(),
                                want.sparseModel.w.data(),
                                want.sparseModel.w.size() *
                                    sizeof(float)) == 0 &&
                    got->sparseModel.intercept ==
                        want.sparseModel.intercept;
            }
            std::printf("  identity m=%zu shards=%-2u %s %7.3fs  %s\n",
                        m, shards, parallel ? "pool  " : "serial",
                        run.seconds,
                        run.match ? "bit-identical" : "MISMATCH");
            h.identityOk = h.identityOk && run.match;
            h.identity.push_back(run);
        }
    }
    fs::remove_all(dir, ec);
}

/** The "huge" JSON section (inserted into BENCH_solver.json). */
std::string
hugeJson(const HugeResult &h)
{
    std::ostringstream os;
    os << "{\n";
    os << "    \"n\": " << h.n << ", \"m\": " << h.m << ", \"q\": "
       << h.q << ", \"shards\": " << h.shards << ",\n";
    os << "    \"gen_seconds\": " << h.genSeconds
       << ", \"select_seconds\": " << h.selectSeconds << ",\n";
    os << "    \"dense_bytes\": " << static_cast<uint64_t>(h.denseBytes)
       << ", \"peak_rss_delta_bytes\": "
       << static_cast<uint64_t>(h.rssDeltaBytes)
       << ", \"rss_limit_bytes\": "
       << static_cast<uint64_t>(h.rssLimitBytes)
       << ", \"rss_ok\": " << (h.rssOk ? "true" : "false") << ",\n";
    os << "    \"nonzeros\": " << h.nonzeros << ", \"q_over_m\": "
       << (h.m ? static_cast<double>(h.nonzeros) /
                     static_cast<double>(h.m)
               : 0.0)
       << ",\n";
    os << "    \"cols_scanned\": " << h.stats.colsScanned
       << ", \"screen_admitted\": " << h.stats.screenAdmitted
       << ", \"screen_dropped\": " << h.stats.screenDropped << ",\n";
    os << "    \"bytes_mapped\": " << h.stats.bytesMapped
       << ", \"kkt_rescreens\": " << h.stats.kktRescreens
       << ", \"kkt_dots\": " << h.stats.kktDots
       << ", \"peak_strong_size\": " << h.stats.peakStrongSize << ",\n";
    os << "    \"identity_grid\": [\n";
    for (size_t i = 0; i < h.identity.size(); ++i) {
        const IdentityRun &r = h.identity[i];
        os << "      {\"shards\": " << r.shards << ", \"parallel\": "
           << (r.parallel ? "true" : "false") << ", \"seconds\": "
           << r.seconds << ", \"bit_identical\": "
           << (r.match ? "true" : "false") << "}"
           << (i + 1 < h.identity.size() ? "," : "") << "\n";
    }
    os << "    ]\n";
    os << "  }";
    return os.str();
}

void
writeJson(const std::string &path, const char *mode, size_t n, size_t m,
          size_t q, const std::vector<RunStats> &runs, double speedup,
          const std::string &obs_json, const std::string &huge_json)
{
    std::ofstream os(path);
    os << "{\n";
    os << "  \"bench\": \"solver_path\",\n";
    os << "  \"mode\": \"" << mode << "\",\n";
    os << "  \"n\": " << n << ",\n  \"m\": " << m << ",\n  \"q\": " << q
       << ",\n";
    if (!huge_json.empty())
        os << "  \"huge\": " << huge_json << ",\n";
    os << "  \"configs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const RunStats &r = runs[i];
        os << "    {\"name\": \"" << r.name << "\", \"seconds\": "
           << r.seconds << ", \"total_sweeps\": " << r.diag.totalSweeps
           << ", \"kkt_passes\": " << r.diag.totalKktPasses
           << ", \"kkt_dots\": " << r.diag.totalKktDots
           << ", \"path_points\": " << r.diag.pathPoints
           << ", \"bisections\": " << r.diag.bisections
           << ", \"nonzeros\": " << r.support.size()
           << ", \"support_matches_baseline\": "
           << (r.supportMatch ? "true" : "false") << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"obs\": " << obs_json << ",\n";
    os << "  \"speedup_all_vs_baseline\": " << speedup << "\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Snapshot before any allocation: the huge phase's RSS gate is a
    // delta against this (and the huge phase runs before everything
    // else, since ru_maxrss never decreases).
    const double baseline_rss = peakRssBytes();

    bool smoke = false;
    bool huge = false;
    int reps = 1;
    std::string out = "BENCH_solver.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--huge") == 0)
            huge = true;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }

    const auto obs_before = bench::obsCounters();

    HugeResult hugeResult;
    std::string huge_json;
    bool huge_ok = true;
    if (huge) {
        std::printf("bench_perf_solver: out-of-core phase%s\n",
                    smoke ? " [smoke]" : "");
        runHugePhase(smoke, baseline_rss, hugeResult);
        runIdentityGrid(smoke, hugeResult);
        huge_json = hugeJson(hugeResult);
        huge_ok = hugeResult.selectOk && hugeResult.rssOk &&
                  hugeResult.identityOk;
    }
    if (huge && smoke) {
        // The layered smoke bench already runs as perf.solver_smoke;
        // the huge smoke ctest only guards the out-of-core path.
        writeJson(out, "huge_smoke", hugeResult.n, hugeResult.m,
                  hugeResult.q, {}, 0.0,
                  bench::obsDeltaJson(obs_before), huge_json);
        std::printf("wrote %s\n", out.c_str());
        if (!huge_ok) {
            std::fprintf(stderr,
                         "FAIL: out-of-core phase (select=%d rss=%d "
                         "identity=%d)\n",
                         hugeResult.selectOk, hugeResult.rssOk,
                         hugeResult.identityOk);
            return 1;
        }
        return 0;
    }

    // N1ish-sized: ~24k candidate signals, Q at the paper's Fig. 10
    // operating point. Smoke mode shrinks everything so the perf ctest
    // label stays fast.
    const size_t n = smoke ? 2500 : 12000;
    const size_t m = smoke ? 2000 : 24000;
    const size_t q = smoke ? 48 : 159;

    std::printf("bench_perf_solver: n=%zu m=%zu q=%zu reps=%d%s\n", n, m,
                q, reps, smoke ? " [smoke]" : "");
    const BitColumnMatrix X = makeToggleMatrix(n, m, 0xa9011c);
    const std::vector<float> y = makeLabels(X, m / 80 + 8, 0x5eed);

    const LayerConfig layers[] = {
        {"baseline", false, false, false},
        {"kernels", true, false, false},
        {"kernels+screen", true, true, false},
        {"all", true, true, true},
    };

    std::vector<RunStats> runs;
    for (const LayerConfig &layer : layers) {
        RunStats stats = runConfig(layer, X, y, q, reps);
        if (!runs.empty())
            stats.supportMatch = stats.support == runs.front().support;
        std::printf("  %-16s %8.3fs  sweeps=%-6zu kkt=%-4zu dots=%-7zu "
                    "points=%zu+%zu  nnz=%zu%s\n",
                    stats.name.c_str(), stats.seconds,
                    stats.diag.totalSweeps, stats.diag.totalKktPasses,
                    stats.diag.totalKktDots, stats.diag.pathPoints,
                    stats.diag.bisections, stats.support.size(),
                    stats.supportMatch ? "" : "  SUPPORT MISMATCH");
        runs.push_back(std::move(stats));
    }

    const double speedup = runs.front().seconds / runs.back().seconds;
    std::printf("speedup (all vs baseline): %.2fx\n", speedup);
    const char *mode =
        huge ? "full+huge" : (smoke ? "smoke" : "full");
    writeJson(out, mode, n, m, q, runs, speedup,
              bench::obsDeltaJson(obs_before), huge_json);
    std::printf("wrote %s\n", out.c_str());

    bool ok = true;
    for (const RunStats &r : runs)
        ok = ok && r.supportMatch;
    if (!ok) {
        std::fprintf(stderr, "FAIL: optimized configurations changed "
                             "the selected support\n");
        return 1;
    }
    if (!huge_ok) {
        std::fprintf(stderr,
                     "FAIL: out-of-core phase (select=%d rss=%d "
                     "identity=%d)\n",
                     hugeResult.selectOk, hugeResult.rssOk,
                     hugeResult.identityOk);
        return 1;
    }
    // Timing gate: generous in smoke mode (shared CI machines), the
    // paper-trajectory target in full mode.
    const double floor = smoke ? 1.0 : 3.0;
    if (speedup < floor) {
        std::fprintf(stderr, "FAIL: speedup %.2fx below %.1fx floor\n",
                     speedup, floor);
        return 1;
    }
    return 0;
}
