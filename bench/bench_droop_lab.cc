/**
 * @file
 * Quality/perf guard for the closed-loop droop-mitigation lab
 * (src/control, §7/§8.2). Runs the default {workload} x {tau} x {B} x
 * {policy} x {PDN} grid through the real OPM -> throttle loop on a
 * tiny trained design and records the Pareto summary plus obs counter
 * deltas to BENCH_control.json. Gates:
 *   - coverage: every grid cell produces a row,
 *   - dominance: some OPM-guided policy strictly reduces droop cycles
 *     at under 10% IPC loss,
 *   - determinism: the report is byte-identical when re-run on a
 *     different thread count.
 * Usage: bench_droop_lab [--smoke] [--cycles=N] [--out=PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;
using namespace apollo::control;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The lab's reference design: tiny netlist, deterministic training
 *  mix, Q=40 selection — small enough for tier-1, rich enough for the
 *  burst/phase workloads to droop. */
ApolloModel
trainTinyModel(const Netlist &netlist)
{
    DatasetBuilder tb(netlist);
    Xoshiro256StarStar rng(0xf10);
    for (int i = 0; i < 16; ++i) {
        auto body = GaGenerator::randomBody(rng, 6, 24);
        tb.addProgram(Program::makeLoop("t" + std::to_string(i), body,
                                        3000, rng()),
                      300);
    }
    ApolloTrainConfig cfg;
    cfg.selection.targetQ = 40;
    return trainApollo(tb.build(), cfg, "tiny").model;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    uint64_t cycles = 0;
    std::string out = "BENCH_control.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--cycles=", 9) == 0)
            cycles = std::strtoull(argv[i] + 9, nullptr, 10);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }
    if (cycles == 0)
        cycles = smoke ? 800 : 3000;

    std::printf("bench_droop_lab: cycles=%llu%s\n",
                static_cast<unsigned long long>(cycles),
                smoke ? " [smoke]" : "");

    const Netlist netlist = DesignBuilder::build(DesignConfig::tiny());
    const ApolloModel model = trainTinyModel(netlist);
    std::printf("  trained tiny model: Q=%zu\n", model.proxyIds.size());

    const auto before = obsCounters();
    const DroopLabConfig cfg = defaultDroopLabConfig(cycles);
    const double t0 = nowSeconds();
    StatusOr<DroopLabReport> report = runDroopLab(netlist, model, cfg);
    const double seconds = nowSeconds() - t0;
    if (!report.ok()) {
        std::fprintf(stderr, "FAIL: %s\n",
                     report.status().toString().c_str());
        return 1;
    }
    report->render(std::cout);
    std::printf("  lab wall-clock: %.3fs\n", seconds);

    const std::string report_json = report->toJson();
    std::ofstream os(out);
    os << "{\n";
    os << "  \"bench\": \"droop_lab\",\n";
    os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    os << "  \"cycles\": " << cycles << ",\n";
    os << "  \"seconds\": " << seconds << ",\n";
    os << "  \"obs\": " << obsDeltaJson(before) << ",\n";
    os << "  \"report\": " << report_json << "\n";
    os << "}\n";
    std::printf("wrote %s\n", out.c_str());

    // Gate 1: full grid coverage.
    const size_t want_rows = report->gridCells * cfg.pdns.size();
    if (report->rows.size() != want_rows) {
        std::fprintf(stderr, "FAIL: %zu rows for %zu grid cells\n",
                     report->rows.size(), want_rows);
        return 1;
    }
    // Gate 2: some OPM-guided policy dominates no-mitigation.
    if (!report->hasDominatingPolicy(0.10)) {
        std::fprintf(stderr,
                     "FAIL: no policy reduces droop cycles at < 10%% "
                     "IPC loss\n");
        return 1;
    }
    // Gate 3: byte-identical report on a different thread count.
    DroopLabConfig two = cfg;
    two.threads = 2;
    StatusOr<DroopLabReport> rerun = runDroopLab(netlist, model, two);
    if (!rerun.ok() || rerun->toJson() != report_json) {
        std::fprintf(stderr,
                     "FAIL: report not deterministic across thread "
                     "counts\n");
        return 1;
    }
    std::printf("gates passed: coverage, dominance, determinism\n");
    return 0;
}
