#include "accuracy_sweep.hh"

#include <chrono>
#include <cstdio>
#include <iostream>


namespace apollo::bench {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

void
runAccuracyVsQ(const Context &ctx, const std::vector<size_t> &q_values)
{
    BitFeatureView view(ctx.train.X);

    // --- APOLLO: one warm MCP path serving every Q ---
    auto t0 = Clock::now();
    CdSolver mcp_solver(view, ctx.train.y);
    CdConfig mcp_cfg;
    mcp_cfg.penalty.kind = PenaltyKind::Mcp;
    mcp_cfg.penalty.gamma = 10.0;
    const auto mcp_solutions =
        solveForTargetsQ(mcp_solver, mcp_cfg, q_values);
    std::fprintf(stderr, "[sweep] MCP path: %.1fs\n", secondsSince(t0));

    // --- Lasso [53]: same, Lasso penalty, model used as-is ---
    t0 = Clock::now();
    CdSolver lasso_solver(view, ctx.train.y);
    CdConfig lasso_cfg;
    lasso_cfg.penalty.kind = PenaltyKind::Lasso;
    const auto lasso_solutions =
        solveForTargetsQ(lasso_solver, lasso_cfg, q_values);
    std::fprintf(stderr, "[sweep] Lasso path: %.1fs\n",
                 secondsSince(t0));

    // --- Reference lines: PRIMAL-class net and PCA over all signals ---
    t0 = Clock::now();
    const BaselineResult primal = trainPrimalNetBaseline(
        ctx.train, ctx.test, ctx.flipflopIds, ctx.fast ? 3 : 10);
    std::fprintf(stderr, "[sweep] PRIMAL net: %.1fs\n",
                 secondsSince(t0));
    t0 = Clock::now();
    const BaselineResult pca =
        trainPcaBaseline(ctx.train, ctx.test, ctx.fast ? 24 : 48);
    std::fprintf(stderr, "[sweep] PCA: %.1fs\n", secondsSince(t0));

    TablePrinter table({"Q", "Q/M", "APOLLO NRMSE", "APOLLO R2",
                        "Lasso NRMSE", "Lasso R2", "Simmani NRMSE",
                        "Simmani R2"});

    for (size_t k = 0; k < q_values.size(); ++k) {
        const size_t q = q_values[k];

        // APOLLO: ridge relaxation on the selected proxies (§4.4).
        const auto apollo = relaxProxySet(
            ctx.train, mcp_solutions[k].support(), ApolloTrainConfig{},
            ctx.netlist.name());
        const auto apollo_pred = apollo.model.predictFull(ctx.test.X);

        // Lasso: final model is the (shrunk) Lasso fit itself.
        ApolloModel lasso_model;
        lasso_model.proxyIds = lasso_solutions[k].support();
        lasso_model.intercept = lasso_solutions[k].intercept;
        for (uint32_t j : lasso_model.proxyIds)
            lasso_model.weights.push_back(lasso_solutions[k].w[j]);
        const auto lasso_pred = lasso_model.predictFull(ctx.test.X);

        // Simmani: K-means with Q clusters + polynomial elastic net.
        SimmaniConfig sim_cfg;
        sim_cfg.clusters = q;
        t0 = Clock::now();
        const BaselineResult simmani =
            trainSimmaniBaseline(ctx.train, ctx.test, sim_cfg);
        std::fprintf(stderr, "[sweep] Simmani Q=%zu: %.1fs\n", q,
                     secondsSince(t0));

        table.addRow(
            {TablePrinter::integer(static_cast<long long>(q)),
             TablePrinter::percent(ctx.qOverM(q), 3),
             TablePrinter::percent(nrmse(ctx.test.y, apollo_pred)),
             TablePrinter::num(r2Score(ctx.test.y, apollo_pred), 4),
             TablePrinter::percent(nrmse(ctx.test.y, lasso_pred)),
             TablePrinter::num(r2Score(ctx.test.y, lasso_pred), 4),
             TablePrinter::percent(nrmse(ctx.test.y, simmani.testPred)),
             TablePrinter::num(r2Score(ctx.test.y, simmani.testPred),
                               4)});
    }
    table.render(std::cout);

    std::printf("\nQ-independent reference lines (inputs: ALL signals "
                "— unusable as an OPM):\n");
    std::printf("  PRIMAL-CNN-class net (%zu flip-flop inputs): "
                "NRMSE=%.2f%%  R2=%.4f\n",
                primal.monitoredSignals,
                100.0 * nrmse(ctx.test.y, primal.testPred),
                r2Score(ctx.test.y, primal.testPred));
    std::printf("  PCA + linear (%zu signal inputs): NRMSE=%.2f%%  "
                "R2=%.4f\n",
                pca.monitoredSignals,
                100.0 * nrmse(ctx.test.y, pca.testPred),
                r2Score(ctx.test.y, pca.testPred));
    std::printf("\nexpected shape (paper Fig. 10/12): APOLLO dominates "
                "Lasso and Simmani at every Q; APOLLO approaches the "
                "nonlinear reference by Q~500.\n");
}

} // namespace apollo::bench
