/**
 * @file
 * Reproduces Fig. 3(b): GA-based training-data generation. The scatter
 * of micro-benchmark average power per generation is summarized as
 * min/mean/max rows; the max envelope must rise toward the power virus
 * while the union of generations spans a >5x power range (§4.1).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    const bool fast = fastMode();
    const Netlist netlist =
        DesignBuilder::build(DesignConfig::neoverseN1ish());
    std::printf("=== Fig. 3(b): GA training-data generation "
                "(design=%s, M=%zu)%s ===\n",
                netlist.name().c_str(), netlist.signalCount(),
                fast ? " [FAST]" : "");

    DatasetBuilder builder(netlist);
    const GaConfig cfg = benchGaConfig(fast, /*full_generations=*/12);
    GaGenerator ga(builder, cfg);
    ga.run();

    TablePrinter table({"generation", "individuals", "min power",
                        "mean power", "max power"});
    for (uint32_t gen = 0; gen < cfg.generations; ++gen) {
        RunningStats stats;
        for (const GaIndividual &ind : ga.all())
            if (ind.generation == gen)
                stats.add(ind.avgPower);
        table.addRow({TablePrinter::integer(gen),
                      TablePrinter::integer(
                          static_cast<long long>(stats.count())),
                      TablePrinter::num(stats.min()),
                      TablePrinter::num(stats.mean()),
                      TablePrinter::num(stats.max())});
    }
    table.render(std::cout);

    std::printf("\ntotal micro-benchmarks generated: %zu\n",
                ga.all().size());
    const GaRunStats &stats = ga.stats();
    std::printf("fitness evaluations: %llu (%llu cache hits, %.1f%% "
                "hit rate, %llu cycles simulated)\n",
                static_cast<unsigned long long>(stats.evaluations +
                                                stats.cacheHits),
                static_cast<unsigned long long>(stats.cacheHits),
                100.0 * stats.hitRate(),
                static_cast<unsigned long long>(stats.simulatedCycles));
    std::printf("max/min power ratio across all generations: %.2fx "
                "(paper: >5x)\n",
                ga.powerRangeRatio());
    std::printf("power virus (best individual, generation %u, avg "
                "power %.3f):\n",
                ga.best().generation, ga.best().avgPower);
    const Program virus = GaGenerator::toProgram(ga.best(), "virus", 1);
    std::printf("%s\n", virus.toString().c_str());

    // Power-uniform training selection (§7.1): histogram of the
    // selected subset across 12 equal power bins.
    const auto selected = ga.selectTrainingSet(
        std::min<size_t>(60, ga.all().size()));
    double lo = selected[0].avgPower;
    double hi = selected[0].avgPower;
    for (const auto &ind : ga.all()) {
        lo = std::min(lo, ind.avgPower);
        hi = std::max(hi, ind.avgPower);
    }
    const int n_bins = 12;
    std::vector<int> hist(n_bins, 0);
    for (const auto &ind : selected) {
        int b = static_cast<int>((ind.avgPower - lo) / (hi - lo) *
                                 n_bins);
        hist[std::min(b, n_bins - 1)]++;
    }
    std::printf("training-set selection (%zu benchmarks) histogram "
                "over the power range:\n  ",
                selected.size());
    for (int b = 0; b < n_bins; ++b)
        std::printf("%d ", hist[b]);
    std::printf("\n(uniform-ish coverage expected; realistic workloads "
                "alone would cluster in few bins)\n");
    return 0;
}
