/**
 * @file
 * Ablation: the MCP concavity hyper-parameter gamma (the paper sets
 * the unpenalized-weight threshold at gamma = 10). gamma -> 1+ makes
 * MCP behave like hard thresholding (unstable selection); very large
 * gamma degenerates toward Lasso (uniform shrinking). A broad plateau
 * around gamma ~ 3..30 is expected.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Ablation: MCP gamma", "selection quality vs gamma at "
                                       "fixed Q", ctx);
    const size_t q = ctx.fast ? 80 : 159;

    BitFeatureView view(ctx.train.X);
    TablePrinter table({"gamma", "NRMSE", "R2", "sum|w| (raw MCP)"});
    for (double gamma : {1.5, 3.0, 10.0, 30.0, 100.0}) {
        CdSolver solver(view, ctx.train.y);
        CdConfig cfg;
        cfg.penalty.kind = PenaltyKind::Mcp;
        cfg.penalty.gamma = gamma;
        const CdResult fit = solveForTargetQ(solver, cfg, q);
        const auto relaxed = relaxProxySet(ctx.train, fit.support(),
                                           ApolloTrainConfig{});
        const auto pred = relaxed.model.predictFull(ctx.test.X);
        double sum_abs = 0.0;
        for (float w : fit.w)
            sum_abs += std::abs(w);
        table.addRow({TablePrinter::num(gamma, 1),
                      TablePrinter::percent(nrmse(ctx.test.y, pred)),
                      TablePrinter::num(r2Score(ctx.test.y, pred), 4),
                      TablePrinter::num(sum_abs, 2)});
    }
    table.render(std::cout);
    std::printf("\n(Q=%zu; the paper uses gamma=10)\n", q);
    return 0;
}
