/**
 * @file
 * Reproduces Table 1: the power-modeling landscape. Prior-art rows are
 * the paper's categorization (they summarize published systems we do
 * not re-implement); the APOLLO row is *measured* from this
 * repository's artifacts (per-cycle resolution by construction,
 * automatic selection, and the OPM overhead computed by the structural
 * hardware model).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Table 1", "comparison among power modeling approaches",
                ctx);

    TablePrinter table({"method", "model type", "temporal resolution",
                        "selection", "cost / overhead"});
    table.addRow({"analytical (Wattch/McPAT class)", "design-time",
                  ">1K cycles", "n/a", "low"});
    table.addRow({"PRIMAL [79] (CNN)", "design-time", "per-cycle",
                  "none (all registers)", "high"});
    table.addRow({"GRANNITE [78] (GNN)", "design-time",
                  "per-workload avg", "automatic", "high"});
    table.addRow({"power emulation [22]", "design-time FPGA",
                  "per-cycle", "automatic", "300% area"});
    table.addRow({"Yang [75] (SVD)", "design-time FPGA", "per-cycle",
                  "automatic", "16% area"});
    table.addRow({"Simmani [40]", "design-time FPGA", "~100s cycles",
                  "automatic (unsupervised)", "medium"});
    table.addRow({"PrEsto [66]", "design-time FPGA", "per-cycle",
                  "hybrid manual/auto", ">50% LUTs"});
    table.addRow({"event counters [16,33,36,68...]", "runtime",
                  ">1K cycles", "manual", "low"});
    table.addRow({"proxy OPMs [23,51,53]", "runtime", ">1K cycles",
                  "automatic", "1.5-20% area"});
    table.addRow({"proxy OPMs [80,81]", "runtime", "~100s cycles",
                  "automatic", "4-10% area"});

    // Measured APOLLO row.
    const ApolloTrainResult res = trainApolloAtQ(ctx, 159);
    const QuantizedModel qm = quantizeModel(res.model, 10);
    const BitColumnMatrix proxies =
        ctx.test.X.selectColumns(res.model.proxyIds);
    double toggle_rate = 0.0;
    for (size_t q = 0; q < proxies.cols(); ++q)
        toggle_rate += static_cast<double>(proxies.colPopcount(q)) /
                       proxies.rows();
    toggle_rate /= proxies.cols();
    const OpmHardwareReport rep =
        analyzeOpmHardware(ctx.netlist, qm, 32, toggle_rate);

    char overhead[64];
    std::snprintf(overhead, sizeof(overhead),
                  "%.2f%% area / %.2f%% power (measured)",
                  100.0 * rep.areaOverhead,
                  100.0 * rep.totalPowerOverhead);
    table.addRow({"APOLLO (this repo)", "design-time + runtime",
                  "per-cycle", "automatic (MCP)", overhead});
    table.render(std::cout);
    std::printf("\nAPOLLO is the only row combining per-cycle "
                "resolution, automatic selection, and sub-1%% "
                "overhead (paper's Table 1 takeaway).\n");
    return 0;
}
