/**
 * @file
 * Streaming pipeline bench: throughput and peak memory of the
 * chunked trace-to-power engine (flow/stream_engine.hh) against the
 * batch paths, on N1ish-shaped synthetic proxy traces.
 *
 * Three claims are measured and gated:
 *
 *  1. Flat memory: streaming a 10x longer trace leaves the engine's
 *     peak buffer bytes (and process RSS) unchanged — the trace is
 *     generated chunk by chunk and never resident. The memory-scaling
 *     runs execute FIRST, before any batch matrix is allocated, so
 *     ru_maxrss reflects the streaming pipeline alone.
 *  2. Quantized throughput: the streaming OPM path evaluates the
 *     AND-gated adder tree column-wise (O(set bits) integer axpy)
 *     instead of OpmSimulator::simulate()'s per-cycle row gather
 *     (O(cycles x Q) bit reads) — a single-thread algorithmic win
 *     gated at >= 4x in full mode.
 *  3. Bit identity: streamed samples equal the batch paths exactly
 *     (float per-cycle and quantized windows).
 *
 * Results go to BENCH_stream.json.
 *
 * Usage: bench_stream_infer [--smoke] [--reps=N] [--out=PATH]
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apollo.hh"
#include "common.hh"

#include "util/popcnt_kernels.hh"

using namespace apollo;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double
maxRssMb()
{
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0; // KB on Linux
}

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Per-column toggle density class, N1ish-shaped (see bench_perf_solver). */
int
densityAnds(uint64_t seed, size_t col)
{
    // 0 ands = 50% dense .. 5 ands = 1.6%; a few hot columns stay at 0.
    const uint64_t u = mix64(seed ^ (col * 0x51ed2701ULL)) % 100;
    if (u < 7)
        return 0;
    if (u < 27)
        return 1;
    if (u < 55)
        return 2;
    if (u < 80)
        return 3;
    if (u < 93)
        return 4;
    return 5;
}

/** Fill rows [first, first+n) of a chunk from the hash stream. */
void
fillChunkWords(BitColumnMatrix &bits, uint64_t first, size_t n,
               size_t q, uint64_t seed)
{
    bits.reset(n, q);
    const size_t wpc = bits.wordsPerCol();
    if (wpc == 0)
        return;
    const uint64_t tail_mask =
        (n & 63) ? ((1ULL << (n & 63)) - 1) : ~0ULL;
    for (size_t c = 0; c < q; ++c) {
        const int ands = densityAnds(seed, c);
        uint64_t *w = bits.colWordsMutable(c);
        // Chunks are served at 64-aligned boundaries, so word k of this
        // chunk is global word first/64 + k — chunk size cannot change
        // the generated bits.
        const uint64_t word0 = first >> 6;
        for (size_t k = 0; k < wpc; ++k) {
            uint64_t word =
                mix64(seed ^ ((word0 + k) * 0x2545f491ULL) ^
                      (c * 0x9e3779b9ULL));
            for (int t = 0; t < ands; ++t)
                word &= mix64(word + t + 1);
            w[k] = word;
        }
        w[wpc - 1] &= tail_mask;
    }
}

/**
 * Deterministic synthetic trace source generating chunks on demand —
 * memory-scaling runs use it so a 10x longer trace allocates nothing
 * extra.
 */
class HashChunkReader : public ProxyChunkReader
{
  public:
    HashChunkReader(uint64_t cycles, size_t q, uint64_t seed)
        : cycles_(cycles), q_(q), seed_(seed)
    {}

    size_t proxyCount() const override { return q_; }
    uint64_t totalCycles() const override { return cycles_; }

    StatusOr<size_t>
    next(size_t max_rows, ProxyChunk &chunk) override
    {
        // Keep chunk boundaries 64-aligned so the word-wise generator
        // is chunk-size invariant.
        const size_t aligned = std::max<size_t>(64, max_rows & ~size_t{63});
        const size_t n =
            static_cast<size_t>(std::min<uint64_t>(aligned,
                                                   cycles_ - pos_));
        if (n == 0)
            return size_t{0};
        chunk.firstCycle = pos_;
        fillChunkWords(chunk.bits, pos_, n, q_, seed_);
        pos_ += n;
        return n;
    }

  private:
    uint64_t cycles_;
    size_t q_;
    uint64_t seed_;
    uint64_t pos_ = 0;
};

/** Materialize the same hash trace as one batch matrix. */
BitColumnMatrix
materialize(uint64_t cycles, size_t q, uint64_t seed)
{
    BitColumnMatrix X;
    fillChunkWords(X, 0, static_cast<size_t>(cycles), q, seed);
    return X;
}

ApolloModel
makeModel(size_t q, uint64_t seed)
{
    ApolloModel model;
    model.intercept = 0.42;
    for (size_t i = 0; i < q; ++i) {
        model.proxyIds.push_back(static_cast<uint32_t>(i));
        const double u =
            static_cast<double>(mix64(seed ^ i) % 2000) / 1000.0 - 1.0;
        model.weights.push_back(static_cast<float>(0.05 + 0.5 * u * u));
    }
    return model;
}

struct Timed
{
    double seconds = 1e300;
    StreamStats stats;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int reps = 1;
    std::string out = "BENCH_stream.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }

    const uint64_t n = smoke ? 120000 : 2000000;
    const size_t q = smoke ? 48 : 150;
    const uint32_t T = 32;
    const uint64_t seed = 0x57a3a11ULL;

    std::printf("bench_stream_infer: n=%llu q=%zu T=%u reps=%d%s\n",
                static_cast<unsigned long long>(n), q, T, reps,
                smoke ? " [smoke]" : "");

    const auto obs_before = bench::obsCounters();
    const ApolloModel model = makeModel(q, seed);
    const QuantizedModel qm = quantizeModel(model, 10);
    const StreamingInference fengine(model);
    const StreamingInference qengine(qm, T);
    const StreamConfig config; // defaults: 16k chunk, auto in-flight

    // ---- 1. Memory scaling (must run before any batch allocation so
    //         ru_maxrss is untouched by trace-length-sized buffers).
    StreamStats mem1, mem10;
    double rss1 = 0.0, rss10 = 0.0;
    {
        HashChunkReader reader(n, q, seed);
        RingBufferSink sink(256);
        StatusOr<StreamStats> stats = qengine.run(reader, sink, config);
        stats.status().orFatal();
        mem1 = *stats;
        rss1 = maxRssMb();
    }
    {
        HashChunkReader reader(10 * n, q, seed);
        RingBufferSink sink(256);
        StatusOr<StreamStats> stats = qengine.run(reader, sink, config);
        stats.status().orFatal();
        mem10 = *stats;
        rss10 = maxRssMb();
    }
    std::printf("  memory: peak buffers %.2f MB @N, %.2f MB @10N; "
                "RSS %.1f MB -> %.1f MB\n",
                mem1.peakBufferBytes / 1e6, mem10.peakBufferBytes / 1e6,
                rss1, rss10);

    // ---- 2. Throughput + bit identity vs the batch paths.
    const BitColumnMatrix X = materialize(n, q, seed);

    // Quantized: batch row gather vs streaming column axpy.
    Timed qbatch, qstream;
    std::vector<float> qbatch_power, qstream_power;
    OpmSimulator sim(qm, T);
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = nowSeconds();
        qbatch_power = sim.simulate(X);
        qbatch.seconds = std::min(qbatch.seconds, nowSeconds() - t0);
    }
    for (int rep = 0; rep < reps; ++rep) {
        MatrixChunkReader reader(X);
        VectorSink sink;
        const double t0 = nowSeconds();
        StatusOr<StreamStats> stats = qengine.run(reader, sink, config);
        const double secs = nowSeconds() - t0;
        stats.status().orFatal();
        if (secs < qstream.seconds) {
            qstream.seconds = secs;
            qstream.stats = *stats;
        }
        qstream_power = sink.takeValues();
    }
    const bool q_identical = qstream_power == qbatch_power;
    const double q_speedup = qbatch.seconds / qstream.seconds;

    // Float per-cycle: batch predictProxies vs streaming.
    Timed fbatch, fstream;
    std::vector<float> fbatch_power, fstream_power;
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = nowSeconds();
        fbatch_power = model.predictProxies(X);
        fbatch.seconds = std::min(fbatch.seconds, nowSeconds() - t0);
    }
    for (int rep = 0; rep < reps; ++rep) {
        MatrixChunkReader reader(X);
        VectorSink sink;
        const double t0 = nowSeconds();
        StatusOr<StreamStats> stats = fengine.run(reader, sink, config);
        const double secs = nowSeconds() - t0;
        stats.status().orFatal();
        if (secs < fstream.seconds) {
            fstream.seconds = secs;
            fstream.stats = *stats;
        }
        fstream_power = sink.takeValues();
    }
    const bool f_identical = fstream_power == fbatch_power;
    const double f_speedup = fbatch.seconds / fstream.seconds;

    const double n_d = static_cast<double>(n);
    std::printf("  quantized: batch %.3fs (%.1f Mcyc/s)  stream %.3fs "
                "(%.1f Mcyc/s)  speedup %.2fx  identical=%s\n",
                qbatch.seconds, n_d / qbatch.seconds / 1e6,
                qstream.seconds, n_d / qstream.seconds / 1e6, q_speedup,
                q_identical ? "yes" : "NO");
    std::printf("  float:     batch %.3fs (%.1f Mcyc/s)  stream %.3fs "
                "(%.1f Mcyc/s)  speedup %.2fx  identical=%s\n",
                fbatch.seconds, n_d / fbatch.seconds / 1e6,
                fstream.seconds, n_d / fstream.seconds / 1e6, f_speedup,
                f_identical ? "yes" : "NO");

    // ---- 3. Kernel ablation: the legacy per-cycle integer path vs
    //         each popcount implementation the machine can run, all
    //         through APOLLO_POPCNT (read per engine run). Every
    //         variant must stay bit-identical to the batch simulator.
    struct KernelRow
    {
        std::string name;
        double seconds = 1e300;
        bool identical = false;
    };
    std::vector<KernelRow> kernel_rows;
    {
        std::vector<const char *> modes = {"off", "scalar"};
        if (popkernels::implAvailable(popkernels::Impl::Avx2))
            modes.push_back("avx2");
        if (popkernels::implAvailable(popkernels::Impl::Avx512))
            modes.push_back("avx512");
        for (const char *mode : modes) {
            setenv("APOLLO_POPCNT", mode, 1);
            KernelRow row;
            row.name = mode;
            std::vector<float> power;
            for (int rep = 0; rep < reps; ++rep) {
                MatrixChunkReader reader(X);
                VectorSink sink;
                const double t0 = nowSeconds();
                StatusOr<StreamStats> stats =
                    qengine.run(reader, sink, config);
                const double secs = nowSeconds() - t0;
                stats.status().orFatal();
                row.seconds = std::min(row.seconds, secs);
                power = sink.takeValues();
            }
            unsetenv("APOLLO_POPCNT");
            row.identical = power == qbatch_power;
            std::printf("  kernel[%s]: %.3fs (%.1f Mcyc/s)  "
                        "identical=%s\n",
                        row.name.c_str(), row.seconds,
                        n_d / row.seconds / 1e6,
                        row.identical ? "yes" : "NO");
            kernel_rows.push_back(std::move(row));
        }
    }

    const double batch_rss = maxRssMb();
    const double mem_ratio =
        static_cast<double>(mem10.peakBufferBytes) /
        static_cast<double>(mem1.peakBufferBytes);

    std::ofstream os(out);
    os << "{\n";
    os << "  \"bench\": \"stream_infer\",\n";
    os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    os << "  \"n\": " << n << ",\n  \"q\": " << q << ",\n  \"T\": " << T
       << ",\n";
    os << "  \"memory\": {\n";
    os << "    \"peak_buffer_bytes_at_n\": " << mem1.peakBufferBytes
       << ",\n";
    os << "    \"peak_buffer_bytes_at_10n\": " << mem10.peakBufferBytes
       << ",\n";
    os << "    \"peak_buffer_ratio_10n\": " << mem_ratio << ",\n";
    os << "    \"stream_rss_mb_at_n\": " << rss1 << ",\n";
    os << "    \"stream_rss_mb_at_10n\": " << rss10 << ",\n";
    os << "    \"rss_mb_after_batch\": " << batch_rss << "\n";
    os << "  },\n";
    os << "  \"quantized\": {\n";
    os << "    \"batch_seconds\": " << qbatch.seconds << ",\n";
    os << "    \"stream_seconds\": " << qstream.seconds << ",\n";
    os << "    \"batch_mcycles_per_sec\": "
       << n_d / qbatch.seconds / 1e6 << ",\n";
    os << "    \"stream_mcycles_per_sec\": "
       << n_d / qstream.seconds / 1e6 << ",\n";
    os << "    \"speedup_stream_vs_batch\": " << q_speedup << ",\n";
    os << "    \"bit_identical\": " << (q_identical ? "true" : "false")
       << "\n  },\n";
    os << "  \"float\": {\n";
    os << "    \"batch_seconds\": " << fbatch.seconds << ",\n";
    os << "    \"stream_seconds\": " << fstream.seconds << ",\n";
    os << "    \"batch_mcycles_per_sec\": "
       << n_d / fbatch.seconds / 1e6 << ",\n";
    os << "    \"stream_mcycles_per_sec\": "
       << n_d / fstream.seconds / 1e6 << ",\n";
    os << "    \"speedup_stream_vs_batch\": " << f_speedup << ",\n";
    os << "    \"bit_identical\": " << (f_identical ? "true" : "false")
       << "\n  },\n";
    os << "  \"kernels\": [\n";
    for (size_t i = 0; i < kernel_rows.size(); ++i) {
        const KernelRow &row = kernel_rows[i];
        os << "    {\"name\": \"" << row.name
           << "\", \"stream_seconds\": " << row.seconds
           << ", \"stream_mcycles_per_sec\": "
           << n_d / row.seconds / 1e6 << ", \"bit_identical\": "
           << (row.identical ? "true" : "false") << "}"
           << (i + 1 < kernel_rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"obs\": " << bench::obsDeltaJson(obs_before) << "\n";
    os << "}\n";
    std::printf("wrote %s\n", out.c_str());

    // ---- Gates.
    bool ok = true;
    if (!q_identical || !f_identical) {
        std::fprintf(stderr, "FAIL: streamed power differs from the "
                             "batch path\n");
        ok = false;
    }
    if (mem_ratio > 2.0) {
        std::fprintf(stderr,
                     "FAIL: peak buffers grew %.2fx at 10x trace "
                     "length (expected flat)\n",
                     mem_ratio);
        ok = false;
    }
    if (rss10 > rss1 * 1.5 + 64.0) {
        std::fprintf(stderr,
                     "FAIL: RSS grew from %.1f MB to %.1f MB at 10x "
                     "trace length\n",
                     rss1, rss10);
        ok = false;
    }
    const double q_floor = smoke ? 1.0 : 4.0;
    if (q_speedup < q_floor) {
        std::fprintf(stderr,
                     "FAIL: quantized streaming speedup %.2fx below "
                     "%.1fx floor\n",
                     q_speedup, q_floor);
        ok = false;
    }
    const double q_mcyc = n_d / qstream.seconds / 1e6;
    if (!smoke && q_mcyc < 100.0) {
        std::fprintf(stderr,
                     "FAIL: quantized streaming %.1f Mcyc/s below the "
                     "100 Mcyc/s bit-parallel floor\n",
                     q_mcyc);
        ok = false;
    }
    for (const KernelRow &row : kernel_rows)
        if (!row.identical) {
            std::fprintf(stderr,
                         "FAIL: kernel '%s' output differs from the "
                         "batch simulator\n",
                         row.name.c_str());
            ok = false;
        }
    return ok ? 0 : 1;
}
