/**
 * @file
 * Reproduces Table 3: arithmetic hardware required by runtime monitors
 * and design-time emulators at Q selected proxies — counters and
 * multipliers per architecture, plus an estimated arithmetic gate area.
 * APOLLO's per-cycle binary inputs need only AND gates feeding one
 * shared accumulator: 1 counter, 0 multipliers, for both the per-cycle
 * and multi-cycle models (Eq. 9).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace apollo;
using namespace apollo::bench;

int
main()
{
    Context ctx = loadContext(Design::N1ish);
    printHeader("Table 3", "hardware cost of runtime monitor "
                           "architectures", ctx);

    const size_t q = 159;
    const uint32_t bits = 10;
    const uint32_t window = 32;
    const auto rows =
        opmCostComparison(ctx.netlist.signalCount(), q, bits, window);

    TablePrinter table({"method", "#counters", "#multipliers",
                        "counter units", "multiplier units",
                        "arithmetic GE (est.)"});
    for (const OpmCostRow &row : rows) {
        table.addRow({row.method, row.counters, row.multipliers,
                      TablePrinter::integer(
                          static_cast<long long>(row.counterUnits)),
                      TablePrinter::integer(static_cast<long long>(
                          row.multiplierUnits)),
                      TablePrinter::num(row.arithmeticGE, 0)});
    }
    table.render(std::cout);
    std::printf("\n(Q=%zu, B=%u-bit weights, T=%u-cycle window, "
                "M=%zu signals)\n",
                q, bits, window, ctx.netlist.signalCount());
    std::printf("APOLLO replaces per-proxy counters+multipliers with "
                "AND-gated adds into one accumulator; per-cycle and "
                "multi-cycle models share the structure.\n");
    return 0;
}
