/**
 * @file
 * Shared Fig. 10 / Fig. 12 harness: per-cycle accuracy (NRMSE, R^2) vs
 * number of proxies Q for APOLLO, Lasso [53], and Simmani [40], with
 * PRIMAL-CNN-class and PCA [79] as Q-independent reference lines (both
 * consume all signals at inference).
 */

#ifndef APOLLO_BENCH_ACCURACY_SWEEP_HH
#define APOLLO_BENCH_ACCURACY_SWEEP_HH

#include <vector>

#include "common.hh"

namespace apollo::bench {

/** Run and print the full sweep. */
void runAccuracyVsQ(const Context &ctx,
                    const std::vector<size_t> &q_values);

} // namespace apollo::bench

#endif // APOLLO_BENCH_ACCURACY_SWEEP_HH
