/**
 * @file
 * The synthetic CPU core model.
 *
 * Execution is trace-driven in two phases that run lock-step:
 *
 *  - FunctionalExecutor runs the Program architecturally (real register
 *    and memory values), producing a stream of MicroOps annotated with
 *    addresses, branch outcomes, and data-toggle factors (hamming
 *    distances of produced values).
 *
 *  - TimingCore consumes that stream through a pipelined
 *    fetch/decode/issue/execute/retire model with I/D caches, a gshare
 *    branch predictor, a store buffer, per-unit structural hazards,
 *    scoreboard dependencies, per-unit clock gating, and optional issue
 *    throttling. It emits one ActivityFrame per cycle.
 *
 * The ActivityFrame stream is the single source of truth for RTL signal
 * toggling (activity engine) and hence ground-truth power (power oracle).
 */

#ifndef APOLLO_UARCH_CORE_HH
#define APOLLO_UARCH_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"
#include "uarch/activity_frame.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/throttle.hh"

namespace apollo {

/** A dynamic instruction with architectural results attached. */
struct MicroOp
{
    Instruction inst;
    uint32_t pc = 0;
    uint64_t seq = 0;
    uint64_t addr = 0;      ///< effective address (memory ops)
    bool taken = false;     ///< branch outcome
    float dataToggle = 0.f; ///< hamming-based data activity, [0, 1]
};

/**
 * Architectural executor: runs a Program and streams MicroOps.
 * Registers are seeded from the program's dataSeed; memory reads of
 * untouched locations return deterministic hash values ("pre-initialized
 * memory").
 */
class FunctionalExecutor
{
  public:
    explicit FunctionalExecutor(const Program &prog);

    /** Produce the next dynamic op; false once the program exits. */
    bool next(MicroOp &out);

    uint64_t executedOps() const { return seq_; }

  private:
    uint64_t readMem(uint64_t addr);
    void writeMem(uint64_t addr, uint64_t value);

    const Program &prog_;
    size_t pc_ = 0;
    uint64_t seq_ = 0;
    uint64_t x_[numScalarRegs] = {};
    uint64_t v_[numVectorRegs][vectorLanes] = {};
    std::unordered_map<uint64_t, uint64_t> mem_;
    uint64_t memSeed_ = 0;
    /** Last value produced per exec class, for hamming toggles. */
    uint64_t lastValue_[6] = {};
    uint64_t lastAddr_ = 0;
};

/** Core configuration. */
struct CoreParams
{
    uint32_t fetchWidth = 4;
    uint32_t decodeWidth = 4;
    uint32_t issueWidth = 4;
    uint32_t retireWidth = 4;
    uint32_t fetchQueueSize = 16;
    uint32_t issueWindow = 40;
    uint32_t robSize = 96;
    uint32_t storeBufferSize = 12;
    uint32_t numAlus = 3;
    uint32_t numVecPipes = 2;
    uint32_t numLsuPorts = 2;
    uint32_t aluLatency = 1;
    uint32_t mulLatency = 3;
    uint32_t divLatency = 12;
    uint32_t vaddLatency = 2;
    uint32_t vmulLatency = 3;
    uint32_t vfmaLatency = 4;
    uint32_t mispredictPenalty = 8;
    uint32_t gateAfterIdle = 2;
    /**
     * Cycles simulated before recording starts: cold caches, an
     * untrained predictor, and the initial ROB fill would otherwise
     * pollute every power measurement window (sign-off flows warm up
     * the same way). Frames are emitted and stats.cycles/retiredOps
     * counted only after warmup.
     */
    uint64_t warmupCycles = 256;
    CacheParams l1i{32 * 1024, 4, 64, 2, 2, 0};
    CacheParams l1d{32 * 1024, 4, 64, 3, 4, 0};
    CacheParams l2{512 * 1024, 8, 64, 12, 8, 80};
    ThrottleMode throttle = ThrottleMode::None;

    static CoreParams defaults() { return {}; }
};

/** Run statistics. */
struct CoreStats
{
    uint64_t cycles = 0;
    uint64_t retiredOps = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t l1iMisses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retiredOps) / cycles : 0.0;
    }
};

/** Per-cycle frame consumer. */
using FrameSink = std::function<void(const ActivityFrame &)>;

/**
 * Runtime control callback, invoked once per *recorded* cycle right
 * after the frame is sunk. @p cycle is the 0-based recorded cycle
 * index (matching the sink's frame stream). The hook may mutate the
 * core's Throttle (engage/release a pulsed scheme); the change takes
 * effect from the next cycle's issue stage — this is how a droop
 * controller (src/control) closes the OPM -> issue loop.
 */
using ControlHook = std::function<void(const ActivityFrame &,
                                       uint64_t cycle, Throttle &)>;

/** The timing model. One instance simulates one program end-to-end. */
class TimingCore
{
  public:
    explicit TimingCore(const CoreParams &params = CoreParams::defaults());

    /**
     * Simulate @p prog, invoking @p sink once per *recorded* cycle (at
     * most @p max_cycles of them, after params.warmupCycles of
     * unrecorded warmup). Returns run statistics over the recorded
     * window.
     */
    CoreStats run(const Program &prog, uint64_t max_cycles,
                  const FrameSink &sink);

    /** As above, with a per-recorded-cycle control hook that may pulse
     *  the issue throttle at runtime (empty hook = uncontrolled run). */
    CoreStats run(const Program &prog, uint64_t max_cycles,
                  const FrameSink &sink, const ControlHook &control);

    /** Convenience: simulate and collect all frames. */
    std::vector<ActivityFrame> collectFrames(const Program &prog,
                                             uint64_t max_cycles);

  private:
    CoreParams params_;
};

} // namespace apollo

#endif // APOLLO_UARCH_CORE_HH
