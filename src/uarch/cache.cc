#include "uarch/cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace apollo {

CacheModel::CacheModel(const CacheParams &params, CacheModel *next)
    : params_(params), next_(next)
{
    APOLLO_REQUIRE(params.lineBytes > 0 && params.ways > 0,
                   "bad cache geometry");
    numSets_ = params.sizeBytes / (params.lineBytes * params.ways);
    APOLLO_REQUIRE(numSets_ > 0, "cache too small for geometry");
    ways_.assign(static_cast<size_t>(numSets_) * params.ways, Way{});
}

void
CacheModel::reset()
{
    std::fill(ways_.begin(), ways_.end(), Way{});
    outstanding_.clear();
    accesses_ = 0;
    misses_ = 0;
    if (next_)
        next_->reset();
}

void
CacheModel::expireMshrs(uint64_t now)
{
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
        if (it->second <= now)
            it = outstanding_.erase(it);
        else
            ++it;
    }
}

bool
CacheModel::lineBusy(uint64_t addr, uint64_t now) const
{
    auto it = outstanding_.find(lineAddr(addr));
    return it != outstanding_.end() && it->second > now;
}

uint32_t
CacheModel::outstandingMisses(uint64_t now) const
{
    uint32_t n = 0;
    for (const auto &entry : outstanding_)
        if (entry.second > now)
            n++;
    return n;
}

CacheAccessResult
CacheModel::access(uint64_t addr, bool is_write, uint64_t now)
{
    accesses_++;
    expireMshrs(now);

    const uint64_t line = lineAddr(addr);
    const uint64_t set = line % numSets_;
    Way *set_ways = &ways_[set * params_.ways];

    // Tag hit? If the line is still being filled, this is a merge onto
    // the outstanding MSHR (hit-under-fill), not a true hit.
    for (uint32_t w = 0; w < params_.ways; ++w) {
        if (set_ways[w].valid && set_ways[w].tag == line) {
            set_ways[w].lastUse = now;
            CacheAccessResult res;
            if (auto it = outstanding_.find(line);
                it != outstanding_.end() && it->second > now) {
                misses_++;
                res.hit = false;
                res.readyCycle =
                    std::max(it->second, now + params_.latency);
            } else {
                res.hit = true;
                res.readyCycle = now + params_.latency;
            }
            return res;
        }
    }

    misses_++;

    // Merge with an outstanding fill whose line was since evicted.
    if (auto it = outstanding_.find(line); it != outstanding_.end()) {
        CacheAccessResult res;
        res.readyCycle = std::max(it->second, now + params_.latency);
        return res;
    }

    // Allocate an MSHR; wait for one if all are busy.
    uint64_t start = now;
    if (outstanding_.size() >= params_.mshrs) {
        uint64_t earliest = ~0ULL;
        for (const auto &entry : outstanding_)
            earliest = std::min(earliest, entry.second);
        start = std::max(start, earliest);
        // One slot frees at `start`; evict that entry.
        for (auto it = outstanding_.begin(); it != outstanding_.end();
             ++it) {
            if (it->second <= start) {
                outstanding_.erase(it);
                break;
            }
        }
    }

    // Fetch from the lower level (or memory) after the tag lookup.
    uint64_t fill_done;
    if (next_) {
        const CacheAccessResult lower =
            next_->access(addr, is_write, start + params_.latency);
        fill_done = lower.readyCycle;
    } else {
        fill_done = start + params_.latency + params_.fillLatency;
    }

    outstanding_.emplace(line, fill_done);

    // Victim selection (LRU) and fill.
    Way *victim = &set_ways[0];
    for (uint32_t w = 1; w < params_.ways; ++w) {
        if (!set_ways[w].valid) {
            victim = &set_ways[w];
            break;
        }
        if (set_ways[w].lastUse < victim->lastUse)
            victim = &set_ways[w];
    }
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = fill_done;

    CacheAccessResult res;
    res.startedMiss = true;
    res.readyCycle = fill_done;
    return res;
}

} // namespace apollo
