/**
 * @file
 * Issue-throttling schemes. The Neoverse N1 TRM describes maximum-power
 * mitigation via instruction throttling; the paper's "throttling_1/2/3"
 * test benchmarks exercise three such schemes. We model four:
 *   Scheme1      — hard cap on total issue width,
 *   Scheme2      — duty cycling (no issue 1 out of every 4 cycles),
 *   Scheme3      — vector-issue rate limited to 1 op per 2 cycles,
 *   Proportional — total issue capped at a runtime-chosen level.
 *
 * A Throttle carries two constraints: the *base* mode fixed at
 * construction (the static configuration the test benchmarks use) and
 * an optional *pulsed* mode engaged/released at runtime by a controller
 * (src/control). Each cycle the effective limit is the tighter of the
 * two, so a droop controller can pulse any scheme on top of whatever
 * static policy the core was configured with.
 */

#ifndef APOLLO_UARCH_THROTTLE_HH
#define APOLLO_UARCH_THROTTLE_HH

#include <algorithm>
#include <cstdint>

namespace apollo {

/** Supported throttling schemes. */
enum class ThrottleMode : uint8_t
{
    None,
    Scheme1,      ///< issue width capped at 2
    Scheme2,      ///< duty cycle: issue blocked every 4th cycle
    Scheme3,      ///< vector issue limited to 1 op per 2 cycles
    Proportional, ///< issue width capped at the engage level
};

/** Per-cycle throttling decisions. */
class Throttle
{
  public:
    explicit Throttle(ThrottleMode mode = ThrottleMode::None)
        : base_(mode)
    {}

    ThrottleMode mode() const { return base_; }

    /**
     * Pulse @p mode on top of the base constraint (runtime droop
     * mitigation). @p level only matters for Proportional: the issue
     * cap while engaged. Re-engaging replaces the pulsed constraint.
     */
    void
    engage(ThrottleMode mode, uint32_t level = 1)
    {
        pulsed_ = mode;
        level_ = level;
    }

    /** Drop the pulsed constraint; the base mode stays in force. */
    void release() { pulsed_ = ThrottleMode::None; }

    /** True while a pulsed constraint is engaged. */
    bool engaged() const { return pulsed_ != ThrottleMode::None; }

    ThrottleMode pulsedMode() const { return pulsed_; }
    uint32_t pulsedLevel() const { return level_; }

    /** Max total ops issueable in @p cycle given base @p issue_width. */
    uint32_t
    maxIssue(uint64_t cycle, uint32_t issue_width) const
    {
        return std::min(modeMaxIssue(base_, 1, cycle, issue_width),
                        modeMaxIssue(pulsed_, level_, cycle, issue_width));
    }

    /** Max vector ops issueable in @p cycle. */
    uint32_t
    maxVectorIssue(uint64_t cycle, uint32_t vec_width) const
    {
        return std::min(modeMaxVector(base_, cycle, vec_width),
                        modeMaxVector(pulsed_, cycle, vec_width));
    }

  private:
    static uint32_t
    modeMaxIssue(ThrottleMode mode, uint32_t level, uint64_t cycle,
                 uint32_t issue_width)
    {
        switch (mode) {
          case ThrottleMode::Scheme1:
            return std::min(issue_width, 2u);
          case ThrottleMode::Scheme2:
            return (cycle % 4 == 3) ? 0 : issue_width;
          case ThrottleMode::Proportional:
            return std::min(issue_width, level);
          default:
            return issue_width;
        }
    }

    static uint32_t
    modeMaxVector(ThrottleMode mode, uint64_t cycle, uint32_t vec_width)
    {
        if (mode == ThrottleMode::Scheme3)
            return std::min(vec_width, (cycle % 2 == 0) ? 1u : 0u);
        return vec_width;
    }

    ThrottleMode base_;
    ThrottleMode pulsed_ = ThrottleMode::None;
    uint32_t level_ = 1;
};

} // namespace apollo

#endif // APOLLO_UARCH_THROTTLE_HH
