/**
 * @file
 * Issue-throttling schemes. The Neoverse N1 TRM describes maximum-power
 * mitigation via instruction throttling; the paper's "throttling_1/2/3"
 * test benchmarks exercise three such schemes. We model three:
 *   Scheme1 — hard cap on total issue width,
 *   Scheme2 — duty cycling (no issue 1 out of every 4 cycles),
 *   Scheme3 — vector-issue rate limited to 1 op per 2 cycles.
 */

#ifndef APOLLO_UARCH_THROTTLE_HH
#define APOLLO_UARCH_THROTTLE_HH

#include <cstdint>

namespace apollo {

/** Supported throttling schemes. */
enum class ThrottleMode : uint8_t
{
    None,
    Scheme1, ///< issue width capped at 2
    Scheme2, ///< duty cycle: issue blocked every 4th cycle
    Scheme3, ///< vector issue limited to 1 op per 2 cycles
};

/** Per-cycle throttling decisions. */
class Throttle
{
  public:
    explicit Throttle(ThrottleMode mode = ThrottleMode::None)
        : mode_(mode)
    {}

    ThrottleMode mode() const { return mode_; }

    /** Max total ops issueable in @p cycle given base @p issue_width. */
    uint32_t
    maxIssue(uint64_t cycle, uint32_t issue_width) const
    {
        switch (mode_) {
          case ThrottleMode::Scheme1:
            return issue_width < 2 ? issue_width : 2;
          case ThrottleMode::Scheme2:
            return (cycle % 4 == 3) ? 0 : issue_width;
          default:
            return issue_width;
        }
    }

    /** Max vector ops issueable in @p cycle. */
    uint32_t
    maxVectorIssue(uint64_t cycle, uint32_t vec_width) const
    {
        if (mode_ == ThrottleMode::Scheme3)
            return (cycle % 2 == 0) ? 1 : 0;
        return vec_width;
    }

  private:
    ThrottleMode mode_;
};

} // namespace apollo

#endif // APOLLO_UARCH_THROTTLE_HH
