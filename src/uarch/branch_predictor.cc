#include "uarch/branch_predictor.hh"

#include "util/logging.hh"

namespace apollo {

BranchPredictor::BranchPredictor(uint32_t table_bits)
{
    APOLLO_REQUIRE(table_bits >= 4 && table_bits <= 20,
                   "unreasonable predictor size");
    counters_.assign(1ULL << table_bits, 1); // weakly not-taken
    mask_ = (1U << table_bits) - 1;
}

void
BranchPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 1);
    history_ = 0;
    lookups_ = 0;
    mispredicts_ = 0;
}

uint32_t
BranchPredictor::index(uint64_t pc) const
{
    return static_cast<uint32_t>((pc ^ history_) & mask_);
}

bool
BranchPredictor::predict(uint64_t pc) const
{
    lookups_++;
    return counters_[index(pc)] >= 2;
}

void
BranchPredictor::update(uint64_t pc, bool taken)
{
    uint8_t &ctr = counters_[index(pc)];
    const bool predicted = ctr >= 2;
    if (predicted != taken)
        mispredicts_++;
    if (taken && ctr < 3)
        ctr++;
    else if (!taken && ctr > 0)
        ctr--;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & 0xffff;
}

} // namespace apollo
