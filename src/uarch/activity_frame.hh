/**
 * @file
 * ActivityFrame: the per-cycle micro-architectural activity summary the
 * timing core emits and the activity engine consumes. One frame fully
 * determines (together with the netlist and design seed) the toggle bit
 * of every RTL signal in that cycle.
 */

#ifndef APOLLO_UARCH_ACTIVITY_FRAME_HH
#define APOLLO_UARCH_ACTIVITY_FRAME_HH

#include <array>
#include <cstdint>

#include "rtl/signal.hh"

namespace apollo {

/** Per-cycle, per-unit activity summary. */
struct ActivityFrame
{
    /** Utilization of each unit this cycle, [0, 1]. */
    std::array<float, numUnits> activity{};
    /** Whether each unit's clock is enabled this cycle. */
    std::array<bool, numUnits> clockEnabled{};
    /** Data-toggle factor of each unit this cycle, [0, 1]. */
    std::array<float, numUnits> dataToggle{};
    /** Cycle index (for stateless hashing). */
    uint64_t cycle = 0;

    float act(UnitId unit) const
    {
        return activity[static_cast<size_t>(unit)];
    }
    bool enabled(UnitId unit) const
    {
        return clockEnabled[static_cast<size_t>(unit)];
    }
    float data(UnitId unit) const
    {
        return dataToggle[static_cast<size_t>(unit)];
    }

    void
    set(UnitId unit, float activity_level, bool enabled_now,
        float data_level)
    {
        const auto u = static_cast<size_t>(unit);
        activity[u] = activity_level;
        clockEnabled[u] = enabled_now;
        dataToggle[u] = data_level;
    }
};

} // namespace apollo

#endif // APOLLO_UARCH_ACTIVITY_FRAME_HH
