/**
 * @file
 * A gshare-style branch direction predictor: global history XOR pc
 * indexing a table of 2-bit saturating counters.
 */

#ifndef APOLLO_UARCH_BRANCH_PREDICTOR_HH
#define APOLLO_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace apollo {

/** Gshare direction predictor. Targets come from the dynamic trace. */
class BranchPredictor
{
  public:
    /** @param table_bits log2 of the counter-table size. */
    explicit BranchPredictor(uint32_t table_bits = 10);

    /** Predict the direction of the branch at @p pc. */
    bool predict(uint64_t pc) const;

    /** Train on the actual outcome and update global history. */
    void update(uint64_t pc, bool taken);

    void reset();

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

  private:
    uint32_t index(uint64_t pc) const;

    std::vector<uint8_t> counters_;
    uint32_t mask_;
    uint64_t history_ = 0;
    mutable uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace apollo

#endif // APOLLO_UARCH_BRANCH_PREDICTOR_HH
