#include "uarch/core.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"
#include "util/rng.hh"

namespace apollo {

namespace {

/** Hamming distance between two 64-bit words, normalized to [0, 1]. */
float
hamming01(uint64_t a, uint64_t b)
{
    return static_cast<float>(std::popcount(a ^ b)) * (1.0f / 64.0f);
}

/** Register id space: scalar regs 0..31, vector regs 32..47. */
constexpr int vecRegBase = numScalarRegs;
constexpr int numRegIds = numScalarRegs + numVectorRegs;
constexpr uint64_t noSeq = ~0ULL;
constexpr uint64_t notDone = ~0ULL;

} // namespace

//
// FunctionalExecutor
//

FunctionalExecutor::FunctionalExecutor(const Program &prog) : prog_(prog)
{
    // Seed the architectural state deterministically from the program's
    // data seed so different micro-benchmarks see different data values.
    uint64_t sm = hashMix(prog.dataSeed() + 0x5eedULL);
    for (int i = 0; i < numScalarRegs; ++i)
        x_[i] = splitMix64(sm);
    for (int i = 0; i < numVectorRegs; ++i)
        for (int l = 0; l < vectorLanes; ++l)
            v_[i][l] = splitMix64(sm);
    // x30 is the conventional memory base pointer, x31 the loop counter.
    x_[30] = 1ULL << 20;
    x_[31] = 0;
    memSeed_ = hashMix(prog.dataSeed() ^ 0x77ULL);
}

uint64_t
FunctionalExecutor::readMem(uint64_t addr)
{
    auto it = mem_.find(addr);
    if (it != mem_.end())
        return it->second;
    return hashCombine(memSeed_, addr);
}

void
FunctionalExecutor::writeMem(uint64_t addr, uint64_t value)
{
    mem_[addr] = value;
}

bool
FunctionalExecutor::next(MicroOp &out)
{
    if (pc_ >= prog_.size())
        return false;

    const Instruction inst = prog_.at(pc_);
    out = MicroOp{};
    out.inst = inst;
    out.pc = static_cast<uint32_t>(pc_);
    out.seq = seq_++;

    size_t next_pc = pc_ + 1;
    uint64_t result = 0;
    const auto cls = static_cast<size_t>(inst.execClass());

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Add: result = x_[inst.rn] + x_[inst.rm]; break;
      case Opcode::Sub: result = x_[inst.rn] - x_[inst.rm]; break;
      case Opcode::And: result = x_[inst.rn] & x_[inst.rm]; break;
      case Opcode::Orr: result = x_[inst.rn] | x_[inst.rm]; break;
      case Opcode::Eor: result = x_[inst.rn] ^ x_[inst.rm]; break;
      case Opcode::Lsl:
        result = x_[inst.rn] << (x_[inst.rm] & 63);
        break;
      case Opcode::Lsr:
        result = x_[inst.rn] >> (x_[inst.rm] & 63);
        break;
      case Opcode::AddI:
        result = x_[inst.rn] + static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::SubI:
        result = x_[inst.rn] - static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::AndI:
        result = x_[inst.rn] & static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::OrrI:
        result = x_[inst.rn] | static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::EorI:
        result = x_[inst.rn] ^ static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::LslI:
        result = x_[inst.rn] << (inst.imm & 63);
        break;
      case Opcode::MovI:
        result = static_cast<uint64_t>(static_cast<int64_t>(inst.imm));
        break;
      case Opcode::Mul: result = x_[inst.rn] * x_[inst.rm]; break;
      case Opcode::Div:
        result = x_[inst.rm] ? x_[inst.rn] / x_[inst.rm] : ~0ULL;
        break;
      case Opcode::Ldr:
        out.addr = x_[inst.rn] + static_cast<uint64_t>(inst.imm);
        result = readMem(out.addr);
        break;
      case Opcode::Str:
        out.addr = x_[inst.rn] + static_cast<uint64_t>(inst.imm);
        result = x_[inst.rd];
        writeMem(out.addr, result);
        break;
      case Opcode::Prfm:
        out.addr = x_[inst.rn] + static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::VAdd:
      case Opcode::VMul:
      case Opcode::VFma:
      case Opcode::VAndNot: {
        float toggle_acc = 0.f;
        for (int l = 0; l < vectorLanes; ++l) {
            uint64_t lane;
            const uint64_t a = v_[inst.rn][l];
            const uint64_t b = v_[inst.rm][l];
            switch (inst.op) {
              case Opcode::VAdd: lane = a + b; break;
              case Opcode::VMul: lane = a * b; break;
              case Opcode::VFma: lane = v_[inst.rd][l] + a * b; break;
              default: lane = a & ~b; break;
            }
            toggle_acc += hamming01(lane, v_[inst.rd][l]);
            v_[inst.rd][l] = lane;
        }
        out.dataToggle = toggle_acc / vectorLanes;
        result = v_[inst.rd][0];
        lastValue_[cls] = result;
        pc_ = next_pc;
        return true;
      }
      case Opcode::VLdr: {
        out.addr = x_[inst.rn] + static_cast<uint64_t>(inst.imm);
        float toggle_acc = 0.f;
        for (int l = 0; l < vectorLanes; ++l) {
            const uint64_t lane = readMem(out.addr + 8ULL * l);
            toggle_acc += hamming01(lane, v_[inst.rd][l]);
            v_[inst.rd][l] = lane;
        }
        out.dataToggle =
            0.5f * toggle_acc / vectorLanes +
            0.5f * hamming01(out.addr, lastAddr_);
        lastAddr_ = out.addr;
        pc_ = next_pc;
        return true;
      }
      case Opcode::VStr: {
        out.addr = x_[inst.rn] + static_cast<uint64_t>(inst.imm);
        for (int l = 0; l < vectorLanes; ++l)
            writeMem(out.addr + 8ULL * l, v_[inst.rd][l]);
        out.dataToggle = 0.5f * hamming01(out.addr, lastAddr_) + 0.25f;
        lastAddr_ = out.addr;
        pc_ = next_pc;
        return true;
      }
      case Opcode::Bnez:
        out.taken = x_[inst.rn] != 0;
        if (out.taken)
            next_pc = static_cast<size_t>(
                static_cast<int64_t>(pc_) + inst.imm);
        out.dataToggle = 0.2f + (out.taken ? 0.2f : 0.0f);
        pc_ = next_pc;
        return true;
      case Opcode::B:
        out.taken = true;
        next_pc =
            static_cast<size_t>(static_cast<int64_t>(pc_) + inst.imm);
        out.dataToggle = 0.3f;
        pc_ = next_pc;
        return true;
      default:
        break;
    }

    // Scalar result path: data toggle vs the last value this exec class
    // produced (models operand/result bus switching).
    if (inst.isMemory()) {
        out.dataToggle = 0.5f * hamming01(result, lastValue_[cls]) +
                         0.5f * hamming01(out.addr, lastAddr_);
        lastAddr_ = out.addr;
    } else {
        out.dataToggle = hamming01(result, lastValue_[cls]);
    }
    lastValue_[cls] = result;

    if (inst.op != Opcode::Nop && inst.op != Opcode::Str &&
        inst.op != Opcode::Prfm && !inst.isBranch()) {
        x_[inst.rd] = result;
    }

    pc_ = next_pc;
    return true;
}

//
// TimingCore
//

namespace {

/** An op waiting in the fetch queue. */
struct FetchedOp
{
    MicroOp op;
    uint64_t readyCycle = 0;
};

/** An op waiting in (or issued from) the issue queue. */
struct IqEntry
{
    MicroOp op;
    uint64_t srcSeq[3] = {noSeq, noSeq, noSeq};
    int numSrcs = 0;
    bool issued = false;
};

/** Per-cycle event counters, reset every cycle. */
struct CycleEvents
{
    uint32_t fetched = 0;
    uint32_t decoded = 0;
    uint32_t issued = 0;
    uint32_t issuedAlu = 0;
    uint32_t issuedMem = 0;
    uint32_t issuedVec = 0;
    uint32_t branchesFetched = 0;
    uint32_t icacheLines = 0;
    bool icacheMiss = false;
    uint32_t dcacheAccesses = 0;
    bool dcacheMiss = false;
    uint32_t sbDrains = 0;
    uint32_t retired = 0;
    uint32_t regReads = 0;
    uint32_t regWrites = 0;
    uint32_t bypass = 0;
    bool mispredict = 0;
    float aluData = 0.f;
    float mulData = 0.f;
    float vecData = 0.f;
    float memData = 0.f;
    float fetchData = 0.f;
};

} // namespace

TimingCore::TimingCore(const CoreParams &params) : params_(params) {}

std::vector<ActivityFrame>
TimingCore::collectFrames(const Program &prog, uint64_t max_cycles)
{
    std::vector<ActivityFrame> frames;
    run(prog, max_cycles,
        [&](const ActivityFrame &f) { frames.push_back(f); });
    return frames;
}

CoreStats
TimingCore::run(const Program &prog, uint64_t max_cycles,
                const FrameSink &sink)
{
    return run(prog, max_cycles, sink, ControlHook{});
}

CoreStats
TimingCore::run(const Program &prog, uint64_t max_cycles,
                const FrameSink &sink, const ControlHook &control)
{
    const CoreParams &p = params_;
    FunctionalExecutor exec(prog);
    CacheModel l2(p.l2, nullptr);
    CacheModel l1i(p.l1i, &l2);
    CacheModel l1d(p.l1d, &l2);
    BranchPredictor bpred;
    Throttle throttle(p.throttle);
    CoreStats stats;

    std::deque<FetchedOp> fetch_queue;
    std::deque<IqEntry> iq;
    std::deque<uint64_t> rob; // seqs in program order
    std::unordered_map<uint64_t, uint64_t> done_cycle; // in-flight seqs
    std::deque<uint64_t> store_buffer;                 // store addresses

    // Scoreboard: last writer seq per register id (noSeq = initial value).
    uint64_t last_writer[numRegIds];
    std::fill(std::begin(last_writer), std::end(last_writer), noSeq);

    // Frontend state.
    MicroOp pending_op;
    bool have_pending = false;
    bool trace_done = false;
    uint64_t fetch_stall_until = 0;
    uint64_t unresolved_mispredict = noSeq;
    uint64_t last_fetch_line = ~0ULL;

    // Long-latency unit state.
    uint64_t div_busy_until = 0;
    uint64_t mul_last_issue = ~0ULL;
    std::deque<uint64_t> muldiv_inflight; // done cycles
    std::deque<uint64_t> vec_inflight;    // done cycles

    // Clock-gating state.
    uint32_t idle_cycles[numUnits] = {};
    bool enabled[numUnits];
    std::fill(std::begin(enabled), std::end(enabled), true);

    auto src_regs_of = [](const MicroOp &op, int regs[3]) -> int {
        const Instruction &inst = op.inst;
        int n = 0;
        switch (inst.execClass()) {
          case ExecClass::None:
            break;
          case ExecClass::Branch:
            if (inst.op == Opcode::Bnez)
                regs[n++] = inst.rn;
            break;
          case ExecClass::Mem:
            regs[n++] = inst.rn;
            if (inst.op == Opcode::Str)
                regs[n++] = inst.rd;
            if (inst.op == Opcode::VStr)
                regs[n++] = vecRegBase + inst.rd;
            break;
          case ExecClass::Vector:
            regs[n++] = vecRegBase + inst.rn;
            regs[n++] = vecRegBase + inst.rm;
            if (inst.op == Opcode::VFma)
                regs[n++] = vecRegBase + inst.rd;
            break;
          default: // Alu / MulDiv
            switch (inst.op) {
              case Opcode::MovI:
                break;
              case Opcode::AddI:
              case Opcode::SubI:
              case Opcode::AndI:
              case Opcode::OrrI:
              case Opcode::EorI:
              case Opcode::LslI:
                regs[n++] = inst.rn;
                break;
              default:
                regs[n++] = inst.rn;
                regs[n++] = inst.rm;
                break;
            }
            break;
        }
        return n;
    };

    auto dest_reg_of = [](const MicroOp &op) -> int {
        const Instruction &inst = op.inst;
        switch (inst.execClass()) {
          case ExecClass::None:
          case ExecClass::Branch:
            return -1;
          case ExecClass::Mem:
            if (inst.op == Opcode::Ldr)
                return inst.rd;
            if (inst.op == Opcode::VLdr)
                return vecRegBase + inst.rd;
            return -1;
          case ExecClass::Vector:
            return vecRegBase + inst.rd;
          default:
            return inst.rd;
        }
    };

    uint64_t now = 0;
    uint64_t recorded = 0;
    const uint64_t hard_cap = p.warmupCycles + max_cycles;
    for (; recorded < max_cycles && now < hard_cap; ++now) {
        const bool recording = now >= p.warmupCycles;
        CycleEvents ev;

        // ---- Retire ----
        while (!rob.empty() && ev.retired < p.retireWidth) {
            auto it = done_cycle.find(rob.front());
            APOLLO_ASSERT(it != done_cycle.end(), "rob entry lost");
            if (it->second == notDone || it->second > now)
                break;
            done_cycle.erase(it);
            rob.pop_front();
            ev.retired++;
            if (recording)
                stats.retiredOps++;
        }

        // ---- Store buffer drain (one per cycle) ----
        if (!store_buffer.empty()) {
            const uint64_t addr = store_buffer.front();
            store_buffer.pop_front();
            CacheAccessResult res = l1d.access(addr, true, now);
            ev.dcacheAccesses++;
            ev.dcacheMiss |= res.startedMiss;
            ev.sbDrains = 1;
        }

        // ---- Issue ----
        {
            uint32_t alu_used = 0;
            uint32_t vec_used = 0;
            uint32_t lsu_used = 0;
            bool mul_used = false;
            const uint32_t max_issue =
                throttle.maxIssue(now, p.issueWidth);
            const uint32_t max_vec =
                throttle.maxVectorIssue(now, p.numVecPipes);
            uint32_t scanned = 0;

            for (IqEntry &entry : iq) {
                if (ev.issued >= max_issue)
                    break;
                if (scanned++ >= p.issueWindow)
                    break;
                if (entry.issued)
                    continue;

                // Dependency check.
                bool ready = true;
                bool was_bypass = false;
                for (int s = 0; s < entry.numSrcs && ready; ++s) {
                    const uint64_t src = entry.srcSeq[s];
                    if (src == noSeq)
                        continue;
                    auto it = done_cycle.find(src);
                    if (it == done_cycle.end())
                        continue; // producer retired long ago
                    if (it->second == notDone || it->second > now)
                        ready = false;
                    else if (it->second == now)
                        was_bypass = true;
                }
                if (!ready)
                    continue;

                // Structural check + latency.
                const Instruction &inst = entry.op.inst;
                uint64_t done = now + 1;
                switch (inst.execClass()) {
                  case ExecClass::None:
                    break;
                  case ExecClass::Branch:
                  case ExecClass::Alu:
                    if (alu_used >= p.numAlus)
                        continue;
                    alu_used++;
                    done = now + p.aluLatency;
                    ev.issuedAlu++;
                    ev.aluData += entry.op.dataToggle;
                    break;
                  case ExecClass::MulDiv:
                    if (inst.op == Opcode::Div) {
                        if (div_busy_until > now)
                            continue;
                        div_busy_until = now + p.divLatency;
                        done = now + p.divLatency;
                    } else {
                        if (mul_used || mul_last_issue == now)
                            continue;
                        mul_used = true;
                        done = now + p.mulLatency;
                    }
                    muldiv_inflight.push_back(done);
                    ev.mulData += entry.op.dataToggle;
                    break;
                  case ExecClass::Vector: {
                    if (vec_used >= max_vec)
                        continue;
                    uint32_t lat = p.vaddLatency;
                    if (inst.op == Opcode::VMul)
                        lat = p.vmulLatency;
                    else if (inst.op == Opcode::VFma)
                        lat = p.vfmaLatency;
                    vec_used++;
                    done = now + lat;
                    vec_inflight.push_back(done);
                    ev.issuedVec++;
                    ev.vecData += entry.op.dataToggle;
                    break;
                  }
                  case ExecClass::Mem: {
                    if (lsu_used >= p.numLsuPorts)
                        continue;
                    if (inst.op == Opcode::Str ||
                        inst.op == Opcode::VStr) {
                        if (store_buffer.size() >= p.storeBufferSize)
                            continue;
                        lsu_used++;
                        store_buffer.push_back(entry.op.addr);
                        done = now + 1;
                    } else {
                        lsu_used++;
                        // Store-to-load forwarding.
                        bool forwarded = false;
                        for (uint64_t a : store_buffer) {
                            if (a == entry.op.addr) {
                                forwarded = true;
                                break;
                            }
                        }
                        if (forwarded) {
                            done = now + 2;
                        } else {
                            CacheAccessResult res =
                                l1d.access(entry.op.addr, false, now);
                            ev.dcacheMiss |= res.startedMiss;
                            done = res.readyCycle;
                        }
                        ev.dcacheAccesses++;
                        if (inst.op == Opcode::Prfm)
                            done = now + 1; // non-blocking
                    }
                    ev.issuedMem++;
                    ev.memData += entry.op.dataToggle;
                    break;
                  }
                }

                // Issue accepted.
                entry.issued = true;
                ev.issued++;
                ev.regReads += static_cast<uint32_t>(entry.numSrcs);
                if (was_bypass)
                    ev.bypass++;
                if (dest_reg_of(entry.op) >= 0)
                    ev.regWrites++;
                done_cycle[entry.op.seq] = done;

                // A resolving mispredicted branch unblocks the frontend.
                if (entry.op.seq == unresolved_mispredict) {
                    unresolved_mispredict = noSeq;
                    fetch_stall_until =
                        std::max(fetch_stall_until,
                                 done + p.mispredictPenalty);
                }
            }

            // Compact: drop issued entries from the IQ head region.
            while (!iq.empty() && iq.front().issued)
                iq.pop_front();
        }

        // ---- Decode / dispatch ----
        while (ev.decoded < p.decodeWidth && !fetch_queue.empty() &&
               fetch_queue.front().readyCycle <= now &&
               iq.size() < p.issueWindow && rob.size() < p.robSize) {
            const MicroOp op = fetch_queue.front().op;
            fetch_queue.pop_front();

            IqEntry entry;
            entry.op = op;
            int regs[3];
            entry.numSrcs = src_regs_of(op, regs);
            for (int s = 0; s < entry.numSrcs; ++s)
                entry.srcSeq[s] = last_writer[regs[s]];
            const int dest = dest_reg_of(op);
            if (dest >= 0)
                last_writer[dest] = op.seq;

            done_cycle[op.seq] = notDone;
            rob.push_back(op.seq);
            iq.push_back(entry);
            ev.decoded++;
        }

        // ---- Fetch ----
        if (now >= fetch_stall_until && unresolved_mispredict == noSeq) {
            while (ev.fetched < p.fetchWidth &&
                   fetch_queue.size() < p.fetchQueueSize) {
                if (!have_pending) {
                    if (trace_done)
                        break;
                    if (!exec.next(pending_op)) {
                        trace_done = true;
                        break;
                    }
                    have_pending = true;
                }

                // Instruction cache: 4-byte instructions, 64B lines.
                const uint64_t line =
                    (static_cast<uint64_t>(pending_op.pc) * 4) / 64;
                if (line != last_fetch_line) {
                    CacheAccessResult res =
                        l1i.access(static_cast<uint64_t>(pending_op.pc) *
                                   4, false, now);
                    ev.icacheLines++;
                    last_fetch_line = line;
                    if (!res.hit) {
                        ev.icacheMiss = true;
                        fetch_stall_until =
                            std::max(fetch_stall_until, res.readyCycle);
                        break;
                    }
                }

                const MicroOp op = pending_op;
                have_pending = false;
                FetchedOp fop;
                fop.op = op;
                fop.readyCycle = now + 1;
                fetch_queue.push_back(fop);
                ev.fetched++;
                ev.fetchData += 0.2f +
                    0.3f * hashToUnitFloat(hashMix(op.pc * 0x9e37ULL));

                if (op.inst.isBranch()) {
                    ev.branchesFetched++;
                    stats.branches++;
                    const bool predicted = bpred.predict(op.pc);
                    bpred.update(op.pc, op.taken);
                    if (predicted != op.taken) {
                        stats.mispredicts++;
                        ev.mispredict = true;
                        unresolved_mispredict = op.seq;
                        break; // no wrong-path fetch modeled
                    }
                    if (op.taken)
                        break; // taken-branch redirect bubble
                }
            }
        }

        // ---- Drain expired in-flight unit occupancy ----
        while (!muldiv_inflight.empty() && muldiv_inflight.front() <= now)
            muldiv_inflight.pop_front();
        while (!vec_inflight.empty() && vec_inflight.front() <= now)
            vec_inflight.pop_front();

        // ---- Build the activity frame ----
        ActivityFrame frame;
        frame.cycle = recorded;

        auto norm = [](float v) { return std::min(1.0f, v); };
        auto avg_data = [](float acc, uint32_t n) {
            return n ? acc / static_cast<float>(n) : 0.0f;
        };

        const float iq_occ =
            static_cast<float>(iq.size()) / p.issueWindow;
        const bool l2_busy = l2.outstandingMisses(now) > 0;
        const bool l1d_busy = l1d.outstandingMisses(now) > 0;

        float act[numUnits] = {};
        float data[numUnits] = {};
        auto uidx = [](UnitId u) { return static_cast<size_t>(u); };

        act[uidx(UnitId::Fetch)] =
            norm(static_cast<float>(ev.fetched) / p.fetchWidth);
        data[uidx(UnitId::Fetch)] = avg_data(ev.fetchData, ev.fetched);
        act[uidx(UnitId::BranchPred)] =
            norm(0.5f * ev.branchesFetched + (ev.mispredict ? 0.6f : 0.f));
        data[uidx(UnitId::BranchPred)] = ev.branchesFetched ? 0.4f : 0.f;
        act[uidx(UnitId::ICache)] =
            norm(0.5f * ev.icacheLines + (ev.icacheMiss ? 0.5f : 0.f));
        data[uidx(UnitId::ICache)] = ev.icacheLines ? 0.5f : 0.f;
        act[uidx(UnitId::Decode)] =
            norm(static_cast<float>(ev.decoded) / p.decodeWidth);
        data[uidx(UnitId::Decode)] = avg_data(ev.fetchData, ev.fetched);
        act[uidx(UnitId::Rename)] =
            norm(static_cast<float>(ev.decoded) / p.decodeWidth);
        data[uidx(UnitId::Rename)] = ev.decoded ? 0.35f : 0.f;
        act[uidx(UnitId::Issue)] =
            norm(0.70f * ev.issued / p.issueWidth + 0.28f * iq_occ);
        data[uidx(UnitId::Issue)] = ev.issued ? 0.4f : 0.f;
        act[uidx(UnitId::IntAlu)] =
            norm(static_cast<float>(ev.issuedAlu) / p.numAlus);
        data[uidx(UnitId::IntAlu)] = avg_data(ev.aluData, ev.issuedAlu);
        act[uidx(UnitId::IntMulDiv)] =
            norm(static_cast<float>(muldiv_inflight.size()) / 3.0f +
                 (div_busy_until > now ? 0.3f : 0.f));
        data[uidx(UnitId::IntMulDiv)] =
            muldiv_inflight.empty() ? 0.f : norm(ev.mulData + 0.3f);
        act[uidx(UnitId::VecExec)] =
            norm(static_cast<float>(vec_inflight.size()) /
                 (2.0f * p.numVecPipes));
        data[uidx(UnitId::VecExec)] = avg_data(ev.vecData, ev.issuedVec);
        act[uidx(UnitId::RegFile)] =
            norm(static_cast<float>(ev.regReads + 2 * ev.regWrites) /
                 12.0f);
        data[uidx(UnitId::RegFile)] =
            avg_data(ev.aluData + ev.vecData + ev.memData,
                     ev.issued ? ev.issued : 1);
        act[uidx(UnitId::Bypass)] =
            norm(static_cast<float>(ev.bypass) / p.issueWidth);
        data[uidx(UnitId::Bypass)] = avg_data(ev.aluData, ev.issuedAlu);
        act[uidx(UnitId::LoadStore)] =
            norm(static_cast<float>(ev.issuedMem + ev.sbDrains) /
                 (p.numLsuPorts + 1));
        data[uidx(UnitId::LoadStore)] =
            avg_data(ev.memData, ev.issuedMem);
        act[uidx(UnitId::DCache)] =
            norm(0.45f * ev.dcacheAccesses +
                 (ev.dcacheMiss ? 0.3f : 0.f) + (l1d_busy ? 0.2f : 0.f));
        data[uidx(UnitId::DCache)] = avg_data(ev.memData, ev.issuedMem);
        act[uidx(UnitId::L2Cache)] =
            norm((ev.dcacheMiss || ev.icacheMiss ? 0.5f : 0.f) +
                 (l2_busy ? 0.4f : 0.f));
        data[uidx(UnitId::L2Cache)] = l2_busy ? 0.5f : 0.f;
        act[uidx(UnitId::Retire)] =
            norm(static_cast<float>(ev.retired) / p.retireWidth +
                 0.15f * (rob.size() > 0));
        data[uidx(UnitId::Retire)] = ev.retired ? 0.3f : 0.f;
        act[uidx(UnitId::ClockTree)] = 1.0f;
        data[uidx(UnitId::ClockTree)] = 0.f;
        act[uidx(UnitId::Misc)] =
            norm(0.05f + 0.15f * (ev.issued > 0));
        data[uidx(UnitId::Misc)] = 0.1f;

        // Clock gating: a unit's clock gates off after gateAfterIdle
        // consecutive idle cycles and re-enables the cycle work returns.
        for (size_t u = 0; u < numUnits; ++u) {
            if (act[u] > 1e-6f) {
                idle_cycles[u] = 0;
                enabled[u] = true;
            } else {
                if (idle_cycles[u] < 1000000)
                    idle_cycles[u]++;
                if (idle_cycles[u] >= p.gateAfterIdle)
                    enabled[u] = false;
            }
            frame.activity[u] = act[u];
            frame.dataToggle[u] = data[u];
            frame.clockEnabled[u] = enabled[u];
        }
        // The root clock tree is never gated while the core runs.
        frame.clockEnabled[uidx(UnitId::ClockTree)] = true;

        if (recording) {
            sink(frame);
            if (control)
                control(frame, recorded, throttle);
            stats.cycles++;
            recorded++;
        }

        // ---- Termination ----
        if (trace_done && !have_pending && fetch_queue.empty() &&
            iq.empty() && rob.empty() && store_buffer.empty()) {
            break;
        }
    }

    stats.l1iMisses = l1i.misses();
    stats.l1dMisses = l1d.misses();
    stats.l2Misses = l2.misses();
    return stats;
}

} // namespace apollo
