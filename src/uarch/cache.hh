/**
 * @file
 * Set-associative cache timing model with LRU replacement, MSHR-limited
 * outstanding misses, and miss merging. Two levels (L1 -> L2 -> memory)
 * are composed by chaining CacheModel instances.
 */

#ifndef APOLLO_UARCH_CACHE_HH
#define APOLLO_UARCH_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace apollo {

/** Cache geometry and timing parameters. */
struct CacheParams
{
    uint32_t sizeBytes = 32 * 1024;
    uint32_t ways = 4;
    uint32_t lineBytes = 64;
    uint32_t latency = 3;      ///< hit latency in cycles
    uint32_t mshrs = 4;        ///< max concurrent outstanding misses
    uint32_t fillLatency = 80; ///< miss latency when there is no next level
};

/** Result of a cache access. */
struct CacheAccessResult
{
    uint64_t readyCycle = 0; ///< cycle the data is available
    bool hit = false;
    bool startedMiss = false; ///< a new fill was initiated at this level
};

/** One level of cache. */
class CacheModel
{
  public:
    /** @param next the lower level, or nullptr for main memory. */
    CacheModel(const CacheParams &params, CacheModel *next = nullptr);

    /**
     * Access @p addr at time @p now.
     *
     * On a hit, readyCycle = now + latency. On a miss, an MSHR is
     * allocated (possibly waiting for a free one), the lower level is
     * accessed, the line is filled, and readyCycle reflects the full
     * path. Concurrent misses to the same line merge onto the
     * outstanding fill.
     */
    CacheAccessResult access(uint64_t addr, bool is_write, uint64_t now);

    /** True if a fill for @p addr's line is outstanding at @p now. */
    bool lineBusy(uint64_t addr, uint64_t now) const;

    /** Number of fills still outstanding at @p now. */
    uint32_t outstandingMisses(uint64_t now) const;

    /** Invalidate all lines (used between benchmark runs). */
    void reset();

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    const CacheParams &params() const { return params_; }

  private:
    uint64_t lineAddr(uint64_t addr) const
    {
        return addr / params_.lineBytes;
    }

    void expireMshrs(uint64_t now);

    CacheParams params_;
    CacheModel *next_;
    uint32_t numSets_;

    struct Way
    {
        uint64_t tag = ~0ULL;
        uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<Way> ways_; // numSets_ * params_.ways

    /** Outstanding fills: line address -> completion cycle. */
    std::unordered_map<uint64_t, uint64_t> outstanding_;

    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace apollo

#endif // APOLLO_UARCH_CACHE_HH
