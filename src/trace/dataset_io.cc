#include "trace/dataset_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace apollo {

namespace {

constexpr char magic[4] = {'A', 'P', 'D', 'S'};
constexpr uint32_t version = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    APOLLO_REQUIRE(static_cast<bool>(is), "truncated dataset stream");
    return value;
}

} // namespace

void
saveDataset(std::ostream &os, const Dataset &dataset)
{
    os.write(magic, sizeof(magic));
    writePod(os, version);
    writePod<uint64_t>(os, dataset.X.rows());
    writePod<uint64_t>(os, dataset.X.cols());
    for (size_t c = 0; c < dataset.X.cols(); ++c)
        os.write(reinterpret_cast<const char *>(dataset.X.colWords(c)),
                 static_cast<std::streamsize>(dataset.X.wordsPerCol() *
                                              sizeof(uint64_t)));
    os.write(reinterpret_cast<const char *>(dataset.y.data()),
             static_cast<std::streamsize>(dataset.y.size() *
                                          sizeof(float)));
    writePod<uint64_t>(os, dataset.segments.size());
    for (const SegmentInfo &seg : dataset.segments) {
        writePod<uint64_t>(os, seg.name.size());
        os.write(seg.name.data(),
                 static_cast<std::streamsize>(seg.name.size()));
        writePod<uint64_t>(os, seg.begin);
        writePod<uint64_t>(os, seg.end);
    }
    APOLLO_REQUIRE(static_cast<bool>(os), "dataset write failed");
}

Dataset
loadDataset(std::istream &is)
{
    char header[4] = {};
    is.read(header, sizeof(header));
    APOLLO_REQUIRE(static_cast<bool>(is) &&
                       std::memcmp(header, magic, sizeof(magic)) == 0,
                   "not an apollo dataset stream");
    const auto file_version = readPod<uint32_t>(is);
    APOLLO_REQUIRE(file_version == version, "unsupported dataset "
                                            "version ", file_version);

    Dataset ds;
    const auto rows = readPod<uint64_t>(is);
    const auto cols = readPod<uint64_t>(is);
    APOLLO_REQUIRE(rows > 0 && cols > 0 && rows < (1ULL << 32) &&
                       cols < (1ULL << 32),
                   "implausible dataset dimensions");
    ds.X.reset(rows, cols);
    for (size_t c = 0; c < cols; ++c) {
        is.read(reinterpret_cast<char *>(ds.X.colWordsMutable(c)),
                static_cast<std::streamsize>(ds.X.wordsPerCol() *
                                             sizeof(uint64_t)));
    }
    ds.y.resize(rows);
    is.read(reinterpret_cast<char *>(ds.y.data()),
            static_cast<std::streamsize>(rows * sizeof(float)));
    APOLLO_REQUIRE(static_cast<bool>(is), "truncated dataset stream");

    const auto n_segments = readPod<uint64_t>(is);
    APOLLO_REQUIRE(n_segments <= rows, "implausible segment count");
    ds.segments.resize(n_segments);
    for (SegmentInfo &seg : ds.segments) {
        const auto name_len = readPod<uint64_t>(is);
        APOLLO_REQUIRE(name_len < 4096, "implausible segment name");
        seg.name.resize(name_len);
        is.read(seg.name.data(),
                static_cast<std::streamsize>(name_len));
        seg.begin = readPod<uint64_t>(is);
        seg.end = readPod<uint64_t>(is);
        APOLLO_REQUIRE(seg.begin <= seg.end && seg.end <= rows,
                       "segment out of range");
    }
    APOLLO_REQUIRE(static_cast<bool>(is), "truncated dataset stream");
    return ds;
}

void
saveDatasetFile(const std::string &path, const Dataset &dataset)
{
    std::ofstream os(path, std::ios::binary);
    APOLLO_REQUIRE(os.is_open(), "cannot open ", path, " for writing");
    saveDataset(os, dataset);
}

Dataset
loadDatasetFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    APOLLO_REQUIRE(is.is_open(), "cannot open ", path);
    return loadDataset(is);
}

} // namespace apollo
