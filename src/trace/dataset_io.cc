#include "trace/dataset_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace apollo {

namespace {

constexpr char magic[4] = {'A', 'P', 'D', 'S'};
constexpr uint32_t version = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

Status
trySaveDataset(std::ostream &os, const Dataset &dataset)
{
    os.write(magic, sizeof(magic));
    writePod(os, version);
    writePod<uint64_t>(os, dataset.X.rows());
    writePod<uint64_t>(os, dataset.X.cols());
    for (size_t c = 0; c < dataset.X.cols(); ++c)
        os.write(reinterpret_cast<const char *>(dataset.X.colWords(c)),
                 static_cast<std::streamsize>(dataset.X.wordsPerCol() *
                                              sizeof(uint64_t)));
    os.write(reinterpret_cast<const char *>(dataset.y.data()),
             static_cast<std::streamsize>(dataset.y.size() *
                                          sizeof(float)));
    writePod<uint64_t>(os, dataset.segments.size());
    for (const SegmentInfo &seg : dataset.segments) {
        writePod<uint64_t>(os, seg.name.size());
        os.write(seg.name.data(),
                 static_cast<std::streamsize>(seg.name.size()));
        writePod<uint64_t>(os, seg.begin);
        writePod<uint64_t>(os, seg.end);
    }
    if (!os)
        return Status::ioError("dataset write failed");
    return Status::okStatus();
}

StatusOr<Dataset>
tryLoadDataset(std::istream &is)
{
    char header[4] = {};
    is.read(header, sizeof(header));
    if (!is || std::memcmp(header, magic, sizeof(header)) != 0)
        return Status::parseError("not an apollo dataset stream");
    uint32_t file_version = 0;
    if (!readPod(is, file_version))
        return Status::ioError("truncated dataset stream");
    if (file_version != version)
        return Status::parseError("unsupported dataset version ",
                                  file_version);

    Dataset ds;
    uint64_t rows = 0;
    uint64_t cols = 0;
    if (!readPod(is, rows) || !readPod(is, cols))
        return Status::ioError("truncated dataset stream");
    // Each dimension AND the product are bounded before allocating:
    // rows and cols individually below 2^32 can still multiply to a
    // forged multi-gigabyte matrix.
    if (rows == 0 || cols == 0 || rows >= (1ULL << 28) ||
        cols >= (1ULL << 24) || rows * cols > (1ULL << 33))
        return Status::parseError("implausible dataset dimensions ",
                                  rows, " x ", cols);
    ds.X.reset(rows, cols);
    for (size_t c = 0; c < cols; ++c) {
        is.read(reinterpret_cast<char *>(ds.X.colWordsMutable(c)),
                static_cast<std::streamsize>(ds.X.wordsPerCol() *
                                             sizeof(uint64_t)));
    }
    ds.y.resize(rows);
    is.read(reinterpret_cast<char *>(ds.y.data()),
            static_cast<std::streamsize>(rows * sizeof(float)));
    if (!is)
        return Status::ioError("truncated dataset stream");

    uint64_t n_segments = 0;
    if (!readPod(is, n_segments))
        return Status::ioError("truncated dataset stream");
    if (n_segments > rows)
        return Status::parseError("implausible segment count ",
                                  n_segments);
    ds.segments.resize(n_segments);
    for (SegmentInfo &seg : ds.segments) {
        uint64_t name_len = 0;
        if (!readPod(is, name_len))
            return Status::ioError("truncated dataset stream");
        if (name_len >= 4096)
            return Status::parseError("implausible segment name length ",
                                      name_len);
        seg.name.resize(name_len);
        is.read(seg.name.data(),
                static_cast<std::streamsize>(name_len));
        if (!readPod(is, seg.begin) || !readPod(is, seg.end))
            return Status::ioError("truncated dataset stream");
        if (seg.begin > seg.end || seg.end > rows)
            return Status::parseError("segment [", seg.begin, ", ",
                                      seg.end, ") out of range");
    }
    if (!is)
        return Status::ioError("truncated dataset stream");
    return ds;
}

Status
trySaveDatasetFile(const std::string &path, const Dataset &dataset)
{
    std::ofstream os(path, std::ios::binary);
    if (!os.is_open())
        return Status::ioError("cannot open ", path, " for writing");
    return trySaveDataset(os, dataset);
}

StatusOr<Dataset>
tryLoadDatasetFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open())
        return Status::ioError("cannot open ", path);
    return tryLoadDataset(is);
}

void
saveDataset(std::ostream &os, const Dataset &dataset)
{
    trySaveDataset(os, dataset).orFatal();
}

Dataset
loadDataset(std::istream &is)
{
    StatusOr<Dataset> ds = tryLoadDataset(is);
    if (!ds.ok())
        fatal(ds.status().toString());
    return std::move(*ds);
}

void
saveDatasetFile(const std::string &path, const Dataset &dataset)
{
    trySaveDatasetFile(path, dataset).orFatal();
}

Dataset
loadDatasetFile(const std::string &path)
{
    StatusOr<Dataset> ds = tryLoadDatasetFile(path);
    if (!ds.ok())
        fatal(ds.status().toString());
    return std::move(*ds);
}

} // namespace apollo
