#include "trace/dataset_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace apollo {

namespace {

constexpr char magic[4] = {'A', 'P', 'D', 'S'};
constexpr uint32_t version = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

DatasetStreamWriter::DatasetStreamWriter(std::ostream &os, uint64_t rows,
                                         uint64_t cols)
    : os_(&os), rows_(rows), cols_(cols),
      wordsPerCol_(static_cast<size_t>((rows + 63) / 64))
{}

StatusOr<DatasetStreamWriter>
DatasetStreamWriter::open(std::ostream &os, uint64_t rows, uint64_t cols)
{
    // Mirror of the decode-side bounds: both dimensions AND the
    // product are checked before anything is emitted, so the writer
    // can never produce a header the loader rejects — and a huge
    // generation run fails fast instead of after streaming gigabytes.
    // (rows * cols cannot overflow: both factors are individually
    // bounded below 2^28 first.)
    if (rows == 0 || cols == 0 || rows >= (1ULL << 28) ||
        cols >= (1ULL << 24) || rows * cols > (1ULL << 33))
        return Status::invalidArgument("implausible dataset dimensions ",
                                       rows, " x ", cols);
    DatasetStreamWriter w(os, rows, cols);
    os.write(magic, sizeof(magic));
    writePod(os, version);
    writePod<uint64_t>(os, rows);
    writePod<uint64_t>(os, cols);
    if (!os)
        return Status::ioError("dataset write failed");
    return StatusOr<DatasetStreamWriter>(std::move(w));
}

Status
DatasetStreamWriter::appendColumnsRaw(const uint64_t *words,
                                      uint64_t n_cols)
{
    if (finished_ || labelsWritten_)
        return Status::invalidArgument(
            "dataset columns must precede labels");
    if (n_cols > cols_ - nextCol_)
        return Status::invalidArgument(
            "dataset append of ", n_cols, " columns past declared ",
            cols_, " (", nextCol_, " written)");
    os_->write(reinterpret_cast<const char *>(words),
               static_cast<std::streamsize>(n_cols * wordsPerCol_ *
                                            sizeof(uint64_t)));
    if (!*os_)
        return Status::ioError("dataset write failed");
    nextCol_ += n_cols;
    return Status::okStatus();
}

Status
DatasetStreamWriter::appendColumns(const BitColumnMatrix &block)
{
    if (block.rows() != rows_)
        return Status::invalidArgument("dataset block has ",
                                       block.rows(),
                                       " rows, writer expects ", rows_);
    if (block.cols() == 0)
        return Status::okStatus();
    return appendColumnsRaw(block.colWords(0), block.cols());
}

Status
DatasetStreamWriter::writeLabels(std::span<const float> y)
{
    if (finished_ || labelsWritten_)
        return Status::invalidArgument("dataset labels already written");
    if (nextCol_ != cols_)
        return Status::invalidArgument("dataset incomplete: ", nextCol_,
                                       " of ", cols_,
                                       " columns written");
    if (y.size() != rows_)
        return Status::invalidArgument("dataset labels have ", y.size(),
                                       " rows, writer expects ", rows_);
    os_->write(reinterpret_cast<const char *>(y.data()),
               static_cast<std::streamsize>(y.size() * sizeof(float)));
    if (!*os_)
        return Status::ioError("dataset write failed");
    labelsWritten_ = true;
    return Status::okStatus();
}

Status
DatasetStreamWriter::finish(std::span<const SegmentInfo> segments)
{
    if (finished_)
        return Status::invalidArgument("dataset already finished");
    if (!labelsWritten_)
        return Status::invalidArgument(
            "dataset labels must precede segments");
    if (segments.size() > rows_)
        return Status::invalidArgument("implausible segment count ",
                                       segments.size());
    writePod<uint64_t>(*os_, segments.size());
    for (const SegmentInfo &seg : segments) {
        if (seg.begin > seg.end || seg.end > rows_)
            return Status::invalidArgument("segment [", seg.begin, ", ",
                                           seg.end, ") out of range");
        writePod<uint64_t>(*os_, seg.name.size());
        os_->write(seg.name.data(),
                   static_cast<std::streamsize>(seg.name.size()));
        writePod<uint64_t>(*os_, seg.begin);
        writePod<uint64_t>(*os_, seg.end);
    }
    if (!*os_)
        return Status::ioError("dataset write failed");
    finished_ = true;
    return Status::okStatus();
}

Status
trySaveDataset(std::ostream &os, const Dataset &dataset)
{
    // One-shot wrapper over the streaming writer (identical bytes) —
    // except that pre-existing oversized in-memory datasets, which the
    // loader could never round-trip anyway, now fail fast at open().
    StatusOr<DatasetStreamWriter> w = DatasetStreamWriter::open(
        os, dataset.X.rows(), dataset.X.cols());
    if (!w.ok())
        return w.status();
    Status st = w->appendColumns(dataset.X);
    if (!st.ok())
        return st;
    st = w->writeLabels(dataset.y);
    if (!st.ok())
        return st;
    return w->finish(dataset.segments);
}

StatusOr<Dataset>
tryLoadDataset(std::istream &is)
{
    char header[4] = {};
    is.read(header, sizeof(header));
    if (!is || std::memcmp(header, magic, sizeof(header)) != 0)
        return Status::parseError("not an apollo dataset stream");
    uint32_t file_version = 0;
    if (!readPod(is, file_version))
        return Status::ioError("truncated dataset stream");
    if (file_version != version)
        return Status::parseError("unsupported dataset version ",
                                  file_version);

    Dataset ds;
    uint64_t rows = 0;
    uint64_t cols = 0;
    if (!readPod(is, rows) || !readPod(is, cols))
        return Status::ioError("truncated dataset stream");
    // Each dimension AND the product are bounded before allocating:
    // rows and cols individually below 2^32 can still multiply to a
    // forged multi-gigabyte matrix.
    if (rows == 0 || cols == 0 || rows >= (1ULL << 28) ||
        cols >= (1ULL << 24) || rows * cols > (1ULL << 33))
        return Status::parseError("implausible dataset dimensions ",
                                  rows, " x ", cols);
    ds.X.reset(rows, cols);
    for (size_t c = 0; c < cols; ++c) {
        is.read(reinterpret_cast<char *>(ds.X.colWordsMutable(c)),
                static_cast<std::streamsize>(ds.X.wordsPerCol() *
                                             sizeof(uint64_t)));
    }
    ds.y.resize(rows);
    is.read(reinterpret_cast<char *>(ds.y.data()),
            static_cast<std::streamsize>(rows * sizeof(float)));
    if (!is)
        return Status::ioError("truncated dataset stream");

    uint64_t n_segments = 0;
    if (!readPod(is, n_segments))
        return Status::ioError("truncated dataset stream");
    if (n_segments > rows)
        return Status::parseError("implausible segment count ",
                                  n_segments);
    ds.segments.resize(n_segments);
    for (SegmentInfo &seg : ds.segments) {
        uint64_t name_len = 0;
        if (!readPod(is, name_len))
            return Status::ioError("truncated dataset stream");
        if (name_len >= 4096)
            return Status::parseError("implausible segment name length ",
                                      name_len);
        seg.name.resize(name_len);
        is.read(seg.name.data(),
                static_cast<std::streamsize>(name_len));
        if (!readPod(is, seg.begin) || !readPod(is, seg.end))
            return Status::ioError("truncated dataset stream");
        if (seg.begin > seg.end || seg.end > rows)
            return Status::parseError("segment [", seg.begin, ", ",
                                      seg.end, ") out of range");
    }
    if (!is)
        return Status::ioError("truncated dataset stream");
    return ds;
}

Status
trySaveDatasetFile(const std::string &path, const Dataset &dataset)
{
    std::ofstream os(path, std::ios::binary);
    if (!os.is_open())
        return Status::ioError("cannot open ", path, " for writing");
    return trySaveDataset(os, dataset);
}

StatusOr<Dataset>
tryLoadDatasetFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open())
        return Status::ioError("cannot open ", path);
    return tryLoadDataset(is);
}

void
saveDataset(std::ostream &os, const Dataset &dataset)
{
    trySaveDataset(os, dataset).orFatal();
}

Dataset
loadDataset(std::istream &is)
{
    StatusOr<Dataset> ds = tryLoadDataset(is);
    if (!ds.ok())
        fatal(ds.status().toString());
    return std::move(*ds);
}

void
saveDatasetFile(const std::string &path, const Dataset &dataset)
{
    trySaveDatasetFile(path, dataset).orFatal();
}

Dataset
loadDatasetFile(const std::string &path)
{
    StatusOr<Dataset> ds = tryLoadDatasetFile(path);
    if (!ds.ok())
        fatal(ds.status().toString());
    return std::move(*ds);
}

} // namespace apollo
