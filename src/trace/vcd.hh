/**
 * @file
 * Minimal VCD (Value Change Dump) writer and reader for toggle traces.
 *
 * The design-time flow of Fig. 7(a) passes simulation traces between
 * tools as VCD/FSDB files; we provide the same interchange artifact for
 * a selected signal subset. Signals are dumped as 1-bit wires whose
 * value flips on every toggle, so toggles can be reconstructed exactly
 * by the reader.
 */

#ifndef APOLLO_TRACE_VCD_HH
#define APOLLO_TRACE_VCD_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rtl/netlist.hh"
#include "util/bitvec.hh"
#include "util/status.hh"

namespace apollo {

/** Streams a toggle trace as VCD. */
class VcdWriter
{
  public:
    /**
     * @param os        output stream (kept by reference)
     * @param netlist   used for hierarchical signal names
     * @param signals   ids of the signals to dump
     */
    VcdWriter(std::ostream &os, const Netlist &netlist,
              std::vector<uint32_t> signals);

    /** Emit the header ($scope/$var declarations, initial values). */
    void writeHeader();

    /**
     * Emit one cycle: @p toggled holds one bit per *dumped* signal
     * (indexed like the `signals` vector given at construction).
     */
    void writeCycle(const BitVector &toggled);

    /** Finish the file. */
    void finish();

    uint64_t cyclesWritten() const { return cycle_; }

  private:
    static std::string idCode(size_t index);

    std::ostream &os_;
    const Netlist &netlist_;
    std::vector<uint32_t> signals_;
    std::vector<uint8_t> value_;
    uint64_t cycle_ = 0;
    bool headerDone_ = false;
};

/**
 * Largest timestamp either VCD reader accepts. Timestamps come from
 * untrusted input and directly size the reconstructed trace (the batch
 * parser allocates max_cycle x signals toggle bits; the streaming
 * reader synthesizes one row per cycle), so an implausible declared
 * length is a ParseError, not an allocation attempt.
 */
inline constexpr uint64_t kMaxVcdCycles = uint64_t{1} << 30;

/** Parsed VCD contents: per-signal toggle columns. */
struct VcdTrace
{
    std::vector<std::string> names;
    /** cycles x signals toggle matrix reconstructed from value flips. */
    BitColumnMatrix toggles;
};

/**
 * Parse a VCD produced by VcdWriter (subset of the VCD grammar),
 * reporting malformed input as a Status value. For bounded-memory
 * ingestion of long dumps use trace/stream_reader.hh's VcdChunkReader.
 */
StatusOr<VcdTrace> tryParseVcd(std::istream &is);

/** Throwing wrapper of tryParseVcd (throws FatalError). */
VcdTrace parseVcd(std::istream &is);

} // namespace apollo

#endif // APOLLO_TRACE_VCD_HH
