/**
 * @file
 * Column-sharded, memory-mappable storage for huge packed toggle
 * matrices (docs/INTERNALS.md §13). The paper's substrate is
 * M > 5e5 RTL signals; an N x M bit matrix at that scale must never
 * fully materialize in RAM, so columns are partitioned into K
 * contiguous shards, each stored as one "APSH" file whose payload is
 * laid out exactly like BitColumnMatrix columns (ceil(N/64) packed
 * little-endian u64 words per column, zero-tail rule included).
 *
 * Producers stream column blocks through ShardSetWriter — a block is
 * appended to whichever shard files it overlaps, so a generator only
 * ever holds one block in RAM. Consumers open the files read-only via
 * MappedShardSet, which validates every header field with
 * overflow-checked arithmetic BEFORE mapping (a forged header must
 * not translate into a huge mapping or an out-of-bounds read — the
 * file size must match the declared dims exactly, so no access can
 * fault past the mapping) and then serves columns as raw word
 * pointers straight out of the page cache. Hot (active-set) columns
 * stay resident; cold shards are dropped with advise(DontNeed) after
 * each streaming pass so peak RSS tracks the working set, not M.
 *
 * File layout (little-endian):
 *   "APSH" | u32 version | u64 rows | u64 colsTotal
 *   | u32 shardIndex | u32 shardCount | u64 firstCol | u64 cols
 *   | cols * ceil(rows/64) u64 column words
 */

#ifndef APOLLO_TRACE_SHARD_STORE_HH
#define APOLLO_TRACE_SHARD_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bitvec.hh"
#include "util/status.hh"

namespace apollo {

/** Hard dimension ceilings shared by the write and read sides, so a
 *  file the writer accepts is always one the reader accepts. */
inline constexpr uint64_t kShardMaxRows = uint64_t{1} << 28;
inline constexpr uint64_t kShardMaxCols = uint64_t{1} << 24;
inline constexpr uint32_t kShardMaxShards = 4096;

/** Contiguous column partition: shard k of @p shards owns
 *  [shardFirstCol(k), shardFirstCol(k+1)) of @p cols columns, sizes
 *  differing by at most one (leading shards take the remainder). */
uint64_t shardFirstCol(uint64_t cols, uint32_t shards, uint32_t k);

/** Shard file path: "<base>.<k>.apsh". */
std::string shardPath(const std::string &base, uint32_t k);

/**
 * Streams a column-partitioned matrix into K shard files. Columns
 * must be appended in ascending order as BitColumnMatrix blocks of
 * consecutive columns (any block granularity — one column to one
 * shard's worth); the writer routes each block's columns to the shard
 * files they fall in. Dimensions are validated against the shared
 * ceilings at construction (overflow-checked), mirroring the decode
 * side, so a successful write() sequence always produces loadable
 * files.
 */
class ShardSetWriter
{
  public:
    static StatusOr<ShardSetWriter> open(const std::string &base,
                                         uint64_t rows, uint64_t cols,
                                         uint32_t shards);

    ~ShardSetWriter(); // out of line: Impl is incomplete here
    ShardSetWriter(ShardSetWriter &&) noexcept;
    ShardSetWriter &operator=(ShardSetWriter &&) noexcept;

    /** Append the next @p block.cols() columns (block.rows() must
     *  equal rows; columns past cols are an error). */
    Status append(const BitColumnMatrix &block);

    /** Zero-copy variant: append @p n_cols columns of packed words
     *  (n_cols * wordsPerCol consecutive u64, BitColumnMatrix column
     *  layout, zero-tail rule enforced). */
    Status appendRaw(const uint64_t *words, uint64_t n_cols);

    /** All columns must have been appended; flushes and closes. */
    Status finish();

    uint64_t columnsWritten() const { return nextCol_; }

  private:
    ShardSetWriter() = default;

    struct Impl;
    std::unique_ptr<Impl> impl_;
    uint64_t rows_ = 0;
    uint64_t cols_ = 0;
    uint32_t shards_ = 0;
    uint64_t nextCol_ = 0;
    size_t wordsPerCol_ = 0;
};

/**
 * Read-only memory-mapped view of a complete shard set. open()
 * validates each file's header and exact size, checks the shards are
 * mutually consistent and cover [0, cols) contiguously, and maps each
 * payload read-only. Column word pointers are valid for the lifetime
 * of the set; the mapping is never written.
 */
class MappedShardSet
{
  public:
    MappedShardSet() = default;
    ~MappedShardSet();

    MappedShardSet(MappedShardSet &&other) noexcept;
    MappedShardSet &operator=(MappedShardSet &&other) noexcept;
    MappedShardSet(const MappedShardSet &) = delete;
    MappedShardSet &operator=(const MappedShardSet &) = delete;

    /** Map the shard files of @p base (all of shardCount, discovered
     *  from shard 0's header). */
    static StatusOr<MappedShardSet> open(const std::string &base);

    /** Map an explicit file list (must form one complete set). */
    static StatusOr<MappedShardSet> openFiles(
        const std::vector<std::string> &paths);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t wordsPerCol() const { return wordsPerCol_; }
    uint32_t shardCount() const
    {
        return static_cast<uint32_t>(shards_.size());
    }

    /** Total bytes of payload mapped across all shards. */
    uint64_t bytesMapped() const { return bytesMapped_; }

    /** First global column of shard @p k. */
    uint64_t shardFirst(uint32_t k) const { return shards_[k].firstCol; }
    /** Columns held by shard @p k. */
    uint64_t shardCols(uint32_t k) const { return shards_[k].cols; }
    /** Shard owning global column @p col. */
    uint32_t shardOf(uint64_t col) const;

    /** Packed words of global column @p col (wordsPerCol() words). */
    const uint64_t *
    colWords(uint64_t col) const
    {
        const Shard &s = shards_[shardOf(col)];
        return s.words + (col - s.firstCol) * wordsPerCol_;
    }

    /** Single bit (slow path; tests and FeatureView::value). */
    bool
    get(size_t row, size_t col) const
    {
        return (colWords(col)[row >> 6] >> (row & 63)) & 1ULL;
    }

    /** Page-residency advice for one shard's payload. */
    enum class Advice
    {
        Normal,     ///< default kernel policy
        Sequential, ///< aggressive readahead for streaming passes
        Random,     ///< no readahead: faults bring exactly one page
        DontNeed,   ///< drop resident pages (refault on next touch)
    };
    void adviseShard(uint32_t k, Advice advice) const;
    /** Advice for the pages backing columns [first, first+n) of shard
     *  @p k (rounded out to page boundaries). */
    void adviseColumns(uint32_t k, uint64_t first, uint64_t n,
                       Advice advice) const;

    /**
     * Verify the packed zero-tail rule for every column (bits past
     * rows() in a column's last word must be zero — the word-at-a-time
     * kernels rely on it). Streams the whole payload; the sharded
     * screen pass performs the same check incrementally instead.
     */
    Status validateTails() const;

    /** Tail-rule check for one column (used by the screen pass). */
    bool
    columnTailClean(uint64_t col) const
    {
        if ((rows_ & 63) == 0)
            return true;
        const uint64_t mask = ~uint64_t{0} << (rows_ & 63);
        return (colWords(col)[wordsPerCol_ - 1] & mask) == 0;
    }

  private:
    struct Shard
    {
        uint64_t firstCol = 0;
        uint64_t cols = 0;
        const uint64_t *words = nullptr; ///< payload (into mapBase)
        void *mapBase = nullptr;
        size_t mapLen = 0;
    };

    void releaseAll();

    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t wordsPerCol_ = 0;
    uint64_t bytesMapped_ = 0;
    std::vector<Shard> shards_;
};

/** Convenience: shard an in-memory matrix (tests, the M=24k identity
 *  gates) into "<base>.<k>.apsh" files, streaming @p block_cols
 *  columns at a time. */
Status saveShardedMatrix(const std::string &base,
                         const BitColumnMatrix &X, uint32_t shards,
                         size_t block_cols = 4096);

} // namespace apollo

#endif // APOLLO_TRACE_SHARD_STORE_HH
