/**
 * @file
 * Binary serialization for datasets and toggle matrices. Used by the
 * bench cache and the CLI tool so expensive trace generation runs once
 * and downstream stages (training, OPM generation, analysis) operate
 * on saved artifacts — mirroring how sign-off traces are passed
 * between tools in the paper's flows.
 *
 * Format: little-endian, magic "APDS", version, then packed column
 * words, labels, and segment metadata.
 */

#ifndef APOLLO_TRACE_DATASET_IO_HH
#define APOLLO_TRACE_DATASET_IO_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "trace/dataset.hh"
#include "util/status.hh"

namespace apollo {

/**
 * Status-returning core API: malformed or truncated input is an
 * expected condition when ingesting third-party artifacts, so these
 * report it as a value instead of unwinding.
 */
Status trySaveDataset(std::ostream &os, const Dataset &dataset);
StatusOr<Dataset> tryLoadDataset(std::istream &is);
Status trySaveDatasetFile(const std::string &path,
                          const Dataset &dataset);
StatusOr<Dataset> tryLoadDatasetFile(const std::string &path);

/** Serialize @p dataset to a binary stream (throws FatalError). */
void saveDataset(std::ostream &os, const Dataset &dataset);

/** Parse a dataset; throws FatalError on malformed input. */
Dataset loadDataset(std::istream &is);

/** File-path conveniences (throwing wrappers of the try* forms). */
void saveDatasetFile(const std::string &path, const Dataset &dataset);
Dataset loadDatasetFile(const std::string &path);

/**
 * Incremental APDS writer for datasets too large to buffer whole:
 * generated column blocks stream straight to the output in the order
 * the format demands (header, packed columns, labels, segments), so
 * peak RAM is one block, not N x M. The declared dimensions are
 * validated with overflow-checked arithmetic at open() — the exact
 * bounds tryLoadDataset enforces on decode — so a writer that opens
 * successfully can only produce files the loader accepts, and a
 * generator cannot be tricked into emitting a stream whose header the
 * decode side would reject as forged.
 *
 * trySaveDataset is a one-shot wrapper over this class; the produced
 * bytes are identical.
 */
class DatasetStreamWriter
{
  public:
    /** Validate dims, write the header. The stream must outlive the
     *  writer. */
    static StatusOr<DatasetStreamWriter> open(std::ostream &os,
                                              uint64_t rows,
                                              uint64_t cols);

    /** Append the next block.cols() packed columns (block.rows() must
     *  equal the declared rows). */
    Status appendColumns(const BitColumnMatrix &block);

    /** Zero-copy variant: @p n_cols columns of packed words
     *  (BitColumnMatrix layout, (rows+63)/64 words per column). */
    Status appendColumnsRaw(const uint64_t *words, uint64_t n_cols);

    /** All columns must be appended first; labels need rows entries. */
    Status writeLabels(std::span<const float> y);

    /** Labels must be written first; finalizes the stream. */
    Status finish(std::span<const SegmentInfo> segments = {});

    uint64_t columnsWritten() const { return nextCol_; }

  private:
    DatasetStreamWriter(std::ostream &os, uint64_t rows, uint64_t cols);

    std::ostream *os_;
    uint64_t rows_;
    uint64_t cols_;
    uint64_t nextCol_ = 0;
    size_t wordsPerCol_;
    bool labelsWritten_ = false;
    bool finished_ = false;
};

} // namespace apollo

#endif // APOLLO_TRACE_DATASET_IO_HH
