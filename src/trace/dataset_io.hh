/**
 * @file
 * Binary serialization for datasets and toggle matrices. Used by the
 * bench cache and the CLI tool so expensive trace generation runs once
 * and downstream stages (training, OPM generation, analysis) operate
 * on saved artifacts — mirroring how sign-off traces are passed
 * between tools in the paper's flows.
 *
 * Format: little-endian, magic "APDS", version, then packed column
 * words, labels, and segment metadata.
 */

#ifndef APOLLO_TRACE_DATASET_IO_HH
#define APOLLO_TRACE_DATASET_IO_HH

#include <iosfwd>
#include <string>

#include "trace/dataset.hh"

namespace apollo {

/** Serialize @p dataset to a binary stream. */
void saveDataset(std::ostream &os, const Dataset &dataset);

/** Parse a dataset; throws FatalError on malformed input. */
Dataset loadDataset(std::istream &is);

/** File-path conveniences. */
void saveDatasetFile(const std::string &path, const Dataset &dataset);
Dataset loadDatasetFile(const std::string &path);

} // namespace apollo

#endif // APOLLO_TRACE_DATASET_IO_HH
