/**
 * @file
 * Binary serialization for datasets and toggle matrices. Used by the
 * bench cache and the CLI tool so expensive trace generation runs once
 * and downstream stages (training, OPM generation, analysis) operate
 * on saved artifacts — mirroring how sign-off traces are passed
 * between tools in the paper's flows.
 *
 * Format: little-endian, magic "APDS", version, then packed column
 * words, labels, and segment metadata.
 */

#ifndef APOLLO_TRACE_DATASET_IO_HH
#define APOLLO_TRACE_DATASET_IO_HH

#include <iosfwd>
#include <string>

#include "trace/dataset.hh"
#include "util/status.hh"

namespace apollo {

/**
 * Status-returning core API: malformed or truncated input is an
 * expected condition when ingesting third-party artifacts, so these
 * report it as a value instead of unwinding.
 */
Status trySaveDataset(std::ostream &os, const Dataset &dataset);
StatusOr<Dataset> tryLoadDataset(std::istream &is);
Status trySaveDatasetFile(const std::string &path,
                          const Dataset &dataset);
StatusOr<Dataset> tryLoadDatasetFile(const std::string &path);

/** Serialize @p dataset to a binary stream (throws FatalError). */
void saveDataset(std::ostream &os, const Dataset &dataset);

/** Parse a dataset; throws FatalError on malformed input. */
Dataset loadDataset(std::istream &is);

/** File-path conveniences (throwing wrappers of the try* forms). */
void saveDatasetFile(const std::string &path, const Dataset &dataset);
Dataset loadDatasetFile(const std::string &path);

} // namespace apollo

#endif // APOLLO_TRACE_DATASET_IO_HH
