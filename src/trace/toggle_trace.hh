/**
 * @file
 * DatasetBuilder: runs programs on the timing core, keeps the per-cycle
 * ActivityFrame stream, and materializes toggle features plus
 * ground-truth power labels (the "commercial flow" of Fig. 7(a)).
 *
 * Also provides proxy-only tracing (traceProxies) — the emulator-
 * assisted flow of Fig. 7(c): only the Q proxy columns are generated, at
 * cost proportional to Q rather than M, and the produced bits are
 * guaranteed identical to the corresponding columns of a full trace
 * (see ActivityEngine's statelessness contract).
 */

#ifndef APOLLO_TRACE_TOGGLE_TRACE_HH
#define APOLLO_TRACE_TOGGLE_TRACE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "activity/activity_engine.hh"
#include "power/power_oracle.hh"
#include "trace/dataset.hh"
#include "uarch/core.hh"

namespace apollo {

/** Builds per-cycle datasets from program runs. */
class DatasetBuilder
{
  public:
    DatasetBuilder(const Netlist &netlist,
                   const CoreParams &core_params = CoreParams::defaults(),
                   const PowerParams &power_params = PowerParams{});

    /** Simulate @p prog (capped at @p max_cycles) and append frames. */
    CoreStats addProgram(const Program &prog, uint64_t max_cycles);

    /** Same, but override the core's throttle mode for this program. */
    CoreStats addProgram(const Program &prog, uint64_t max_cycles,
                         ThrottleMode throttle);

    /**
     * Append already-simulated frames as a new segment named @p name —
     * the single-pass export path: frames captured during GA fitness
     * simulation are reused here instead of re-simulating the program
     * (bit-identical, since the timing core is deterministic).
     */
    void addFrames(const std::string &name,
                   std::span<const ActivityFrame> frames);

    /** Frames collected so far. */
    const std::vector<ActivityFrame> &frames() const { return frames_; }
    const std::vector<SegmentInfo> &segments() const { return segments_; }

    /**
     * Materialize features for all M signals plus power labels.
     * Column-parallel; the builder can keep accepting programs and
     * build() can be called repeatedly.
     */
    Dataset build() const;

    /**
     * Average oracle power over a program without materializing
     * features; used as the GA fitness function. @p signal_stride > 1
     * estimates power from every stride-th signal (scaled back up) —
     * fitness only needs relative ordering, and sampling cuts cost
     * proportionally. Runs the gen/fitness_eval.hh pipeline (batched
     * toggle columns + bit-kernel accumulation; INTERNALS.md §9).
     */
    double averagePower(const Program &prog, uint64_t max_cycles,
                        uint32_t signal_stride = 1) const;

    const Netlist &netlist() const { return netlist_; }
    const CoreParams &coreParams() const { return coreParams_; }
    const ActivityEngine &engine() const { return engine_; }
    const PowerOracle &oracle() const { return oracle_; }

    /**
     * Emulator-assisted proxy-only trace: toggle bits of just
     * @p proxy_ids over @p frames (cost O(cycles * Q)).
     * @p segment_begin_of maps cycle -> its segment's first cycle.
     */
    static BitColumnMatrix traceProxies(
        const ActivityEngine &engine,
        std::span<const ActivityFrame> frames,
        std::span<const uint32_t> proxy_ids,
        std::span<const uint32_t> segment_begin_of);

    /** Per-cycle segment-begin table for the frames collected so far. */
    std::vector<uint32_t> segmentBeginTable() const;

  private:
    const Netlist &netlist_;
    CoreParams coreParams_;
    ActivityEngine engine_;
    PowerOracle oracle_;
    std::vector<ActivityFrame> frames_;
    std::vector<SegmentInfo> segments_;
};

} // namespace apollo

#endif // APOLLO_TRACE_TOGGLE_TRACE_HH
