#include "trace/dataset.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace apollo {

double
Dataset::meanLabel() const
{
    if (y.empty())
        return 0.0;
    return std::accumulate(y.begin(), y.end(), 0.0) /
           static_cast<double>(y.size());
}

Dataset
Dataset::selectRows(const std::vector<uint32_t> &rows) const
{
    Dataset out;
    out.X.reset(rows.size(), X.cols());
    out.y.resize(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
        APOLLO_REQUIRE(rows[r] < cycles(), "row out of range");
        out.y[r] = y[rows[r]];
    }
    parallelFor(X.cols(), [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c)
            for (size_t r = 0; r < rows.size(); ++r)
                if (X.get(rows[r], c))
                    out.X.setBit(r, c);
    });
    out.segments.push_back({"subset", 0, rows.size()});
    return out;
}

void
Dataset::splitBySegments(double val_fraction, Dataset &train,
                         Dataset &val) const
{
    APOLLO_REQUIRE(val_fraction > 0.0 && val_fraction < 1.0,
                   "val_fraction must be in (0, 1)");
    APOLLO_REQUIRE(!segments.empty(), "dataset has no segment metadata");
    const size_t stride = std::max<size_t>(
        2, static_cast<size_t>(std::lround(1.0 / val_fraction)));

    std::vector<uint32_t> train_rows;
    std::vector<uint32_t> val_rows;
    std::vector<SegmentInfo> train_segs;
    std::vector<SegmentInfo> val_segs;

    for (size_t s = 0; s < segments.size(); ++s) {
        const SegmentInfo &seg = segments[s];
        const bool to_val = (s % stride) == stride - 1;
        auto &rows = to_val ? val_rows : train_rows;
        auto &segs = to_val ? val_segs : train_segs;
        SegmentInfo out_seg;
        out_seg.name = seg.name;
        out_seg.begin = rows.size();
        for (size_t i = seg.begin; i < seg.end; ++i)
            rows.push_back(static_cast<uint32_t>(i));
        out_seg.end = rows.size();
        segs.push_back(out_seg);
    }
    APOLLO_REQUIRE(!val_rows.empty(),
                   "too few segments for the requested split");

    train = selectRows(train_rows);
    train.segments = std::move(train_segs);
    val = selectRows(val_rows);
    val.segments = std::move(val_segs);
}

CountDataset
aggregateIntervals(const Dataset &dataset, uint32_t tau)
{
    APOLLO_REQUIRE(tau >= 1 && tau <= 255, "tau must be in [1, 255]");
    APOLLO_REQUIRE(!dataset.segments.empty(),
                   "dataset has no segment metadata");

    // Lay out intervals per segment.
    struct IntervalSpan
    {
        size_t cycleBegin;
        size_t firstInterval;
        size_t count;
    };
    std::vector<IntervalSpan> spans;
    CountDataset out;
    out.tau = tau;
    size_t n_intervals = 0;
    for (const SegmentInfo &seg : dataset.segments) {
        const size_t k = seg.cycles() / tau;
        if (k == 0)
            continue;
        spans.push_back({seg.begin, n_intervals, k});
        SegmentInfo out_seg;
        out_seg.name = seg.name;
        out_seg.begin = n_intervals;
        out_seg.end = n_intervals + k;
        out.segments.push_back(out_seg);
        n_intervals += k;
    }
    APOLLO_REQUIRE(n_intervals > 0, "no full intervals at this tau");

    out.X = CountColumnMatrix(n_intervals, dataset.signals());
    out.y.assign(n_intervals, 0.f);

    // Labels: interval-average power.
    for (const IntervalSpan &span : spans) {
        for (size_t k = 0; k < span.count; ++k) {
            double acc = 0.0;
            for (uint32_t t = 0; t < tau; ++t)
                acc += dataset.y[span.cycleBegin + k * tau + t];
            out.y[span.firstInterval + k] =
                static_cast<float>(acc / tau);
        }
    }

    // Features: toggle counts per interval, column-parallel.
    parallelFor(dataset.signals(), [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
            for (const IntervalSpan &span : spans) {
                for (size_t k = 0; k < span.count; ++k) {
                    uint8_t count = 0;
                    for (uint32_t t = 0; t < tau; ++t)
                        count += dataset.X.get(
                            span.cycleBegin + k * tau + t, c);
                    out.X.set(span.firstInterval + k, c, count);
                }
            }
        }
    });

    return out;
}

} // namespace apollo
