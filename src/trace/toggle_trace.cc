#include "trace/toggle_trace.hh"

#include <map>
#include <mutex>

#include "activity/toggle_columns.hh"
#include "gen/fitness_eval.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace apollo {

DatasetBuilder::DatasetBuilder(const Netlist &netlist,
                               const CoreParams &core_params,
                               const PowerParams &power_params)
    : netlist_(netlist), coreParams_(core_params), engine_(netlist),
      oracle_(netlist, power_params)
{}

CoreStats
DatasetBuilder::addProgram(const Program &prog, uint64_t max_cycles)
{
    return addProgram(prog, max_cycles, coreParams_.throttle);
}

CoreStats
DatasetBuilder::addProgram(const Program &prog, uint64_t max_cycles,
                           ThrottleMode throttle)
{
    CoreParams params = coreParams_;
    params.throttle = throttle;
    TimingCore core(params);

    SegmentInfo seg;
    seg.name = prog.name();
    seg.begin = frames_.size();
    CoreStats stats = core.run(prog, max_cycles,
        [&](const ActivityFrame &f) { frames_.push_back(f); });
    seg.end = frames_.size();
    segments_.push_back(seg);
    APOLLO_COUNT("apollo.activity.programs", 1);
    APOLLO_COUNT("apollo.activity.cycles", seg.end - seg.begin);
    return stats;
}

void
DatasetBuilder::addFrames(const std::string &name,
                          std::span<const ActivityFrame> frames)
{
    APOLLO_REQUIRE(!frames.empty(), "no frames to add");
    SegmentInfo seg;
    seg.name = name;
    seg.begin = frames_.size();
    frames_.insert(frames_.end(), frames.begin(), frames.end());
    seg.end = frames_.size();
    segments_.push_back(seg);
    APOLLO_COUNT("apollo.activity.frames", frames.size());
}

std::vector<uint32_t>
DatasetBuilder::segmentBeginTable() const
{
    std::vector<uint32_t> begin_of(frames_.size(), 0);
    for (const SegmentInfo &seg : segments_)
        for (size_t i = seg.begin; i < seg.end; ++i)
            begin_of[i] = static_cast<uint32_t>(seg.begin);
    return begin_of;
}

Dataset
DatasetBuilder::build() const
{
    APOLLO_TRACE_SPAN("trace.build");
    const size_t n = frames_.size();
    const size_t m = netlist_.signalCount();
    APOLLO_REQUIRE(n > 0, "no programs added");

    Dataset ds;
    ds.X.reset(n, m);
    ds.segments = segments_;

    const std::vector<uint32_t> begin_of = segmentBeginTable();
    std::span<const ActivityFrame> frames(frames_);

    // Column-parallel fill. Per-chunk partial label sums are collected
    // keyed by their first column and reduced in column order, so the
    // floating-point summation order is independent of thread
    // scheduling (bit-reproducible labels).
    std::map<size_t, std::vector<double>> partials;
    std::mutex reduce_mutex;

    parallelFor(m, [&](size_t c0, size_t c1) {
        std::vector<double> local_y(n, 0.0);
        for (size_t c = c0; c < c1; ++c) {
            const auto sig_id = static_cast<uint32_t>(c);
            for (size_t i = 0; i < n; ++i) {
                if (engine_.toggles(sig_id, frames, i, begin_of[i])) {
                    ds.X.setBit(i, c);
                    local_y[i] +=
                        oracle_.signalContribution(sig_id, frames[i]);
                }
            }
        }
        std::lock_guard<std::mutex> lock(reduce_mutex);
        partials.emplace(c0, std::move(local_y));
    });

    std::vector<double> raw_y(n, 0.0);
    for (const auto &[first_col, local_y] : partials) {
        (void)first_col;
        for (size_t i = 0; i < n; ++i)
            raw_y[i] += local_y[i];
    }

    ds.y.resize(n);
    for (size_t i = 0; i < n; ++i)
        ds.y[i] = static_cast<float>(oracle_.finalize(raw_y[i], i));
    APOLLO_COUNT("apollo.activity.datasets_built", 1);
    if (APOLLO_OBS_ON() && m > 0) {
        uint64_t ones = 0;
        for (size_t c = 0; c < m; ++c)
            ones += ds.X.colPopcount(c);
        APOLLO_OBSERVE("apollo.activity.toggle_density",
                       static_cast<double>(ones) /
                           (static_cast<double>(n) *
                            static_cast<double>(m)),
                       ::apollo::obs::ratioBounds());
    }
    return ds;
}

double
DatasetBuilder::averagePower(const Program &prog, uint64_t max_cycles,
                             uint32_t signal_stride) const
{
    APOLLO_REQUIRE(signal_stride >= 1, "stride must be positive");
    // Fitness evaluation: simulate, then compute power on the fly from
    // frames without storing features.
    TimingCore core(coreParams_);
    std::vector<ActivityFrame> frames;
    core.run(prog, max_cycles,
             [&](const ActivityFrame &f) { frames.push_back(f); });
    FitnessOptions options;
    options.signalStride = signal_stride;
    FitnessEvaluator eval(netlist_, engine_, oracle_, options);
    return eval.averagePower(frames);
}

BitColumnMatrix
DatasetBuilder::traceProxies(const ActivityEngine &engine,
                             std::span<const ActivityFrame> frames,
                             std::span<const uint32_t> proxy_ids,
                             std::span<const uint32_t> segment_begin_of)
{
    const size_t n = frames.size();
    BitColumnMatrix bits(n, proxy_ids.size());
    if (n == 0 || proxy_ids.empty())
        return bits;
    if (segment_begin_of.empty()) {
        // Single-segment traces take the batched column generator —
        // bit-identical to the per-cycle path by construction (pinned
        // by the activity toggle-column oracle) and it packs each
        // column's 64-cycle words directly, which is the layout the
        // bit-parallel streaming kernels consume. One worker-local
        // generator per column chunk: fillColumn shares draw scratch,
        // so a generator must not be called concurrently.
        parallelFor(proxy_ids.size(), [&](size_t q0, size_t q1) {
            ToggleColumnGenerator gen(engine);
            gen.bind(frames);
            for (size_t q = q0; q < q1; ++q)
                gen.fillColumn(proxy_ids[q], bits.colWordsMutable(q));
        });
        return bits;
    }
    parallelFor(proxy_ids.size(), [&](size_t q0, size_t q1) {
        for (size_t q = q0; q < q1; ++q) {
            const uint32_t sig_id = proxy_ids[q];
            for (size_t i = 0; i < n; ++i) {
                const uint32_t seg = segment_begin_of[i];
                if (engine.toggles(sig_id, frames, i, seg))
                    bits.setBit(i, q);
            }
        }
    });
    return bits;
}

} // namespace apollo
