/**
 * @file
 * Dataset containers: per-cycle toggle features (packed bits) with
 * ground-truth power labels, benchmark segment metadata, train/val
 * splitting, and tau-cycle interval aggregation for the multi-cycle
 * APOLLO_tau model (§4.5).
 */

#ifndef APOLLO_TRACE_DATASET_HH
#define APOLLO_TRACE_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.hh"

namespace apollo {

/** One benchmark's cycle range [begin, end) within a dataset. */
struct SegmentInfo
{
    std::string name;
    size_t begin = 0;
    size_t end = 0;

    size_t cycles() const { return end - begin; }
};

/** Per-cycle dataset: X is cycles x signals toggle bits, y is power. */
struct Dataset
{
    BitColumnMatrix X;
    std::vector<float> y;
    std::vector<SegmentInfo> segments;

    size_t cycles() const { return X.rows(); }
    size_t signals() const { return X.cols(); }

    /** Mean label. */
    double meanLabel() const;

    /**
     * Split whole benchmark segments into train/val: every
     * round(1/val_fraction)-th segment goes to validation. Keeps
     * segment metadata on both sides.
     */
    void splitBySegments(double val_fraction, Dataset &train,
                         Dataset &val) const;

    /** Row-subset copy (used by splits); segment metadata rebuilt. */
    Dataset selectRows(const std::vector<uint32_t> &rows) const;
};

/**
 * tau-cycle aggregated dataset: X entries are toggle *counts* within
 * each tau-cycle interval (0..tau), y is the interval-average power.
 * Intervals never straddle segment boundaries (partial tails dropped).
 */
struct CountDataset
{
    CountColumnMatrix X;
    std::vector<float> y;
    uint32_t tau = 1;
    std::vector<SegmentInfo> segments; ///< in interval units

    size_t intervals() const { return X.rows(); }
    size_t signals() const { return X.cols(); }
};

/** Aggregate a per-cycle dataset into tau-cycle intervals. */
CountDataset aggregateIntervals(const Dataset &dataset, uint32_t tau);

} // namespace apollo

#endif // APOLLO_TRACE_DATASET_HH
