#include "trace/shard_store.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

namespace apollo {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'S', 'H'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 48;

struct ShardHeader
{
    uint32_t version = 0;
    uint64_t rows = 0;
    uint64_t colsTotal = 0;
    uint32_t shardIndex = 0;
    uint32_t shardCount = 0;
    uint64_t firstCol = 0;
    uint64_t cols = 0;
};

void
writeHeader(std::ostream &os, const ShardHeader &h)
{
    os.write(kMagic, sizeof(kMagic));
    os.write(reinterpret_cast<const char *>(&h.version), 4);
    os.write(reinterpret_cast<const char *>(&h.rows), 8);
    os.write(reinterpret_cast<const char *>(&h.colsTotal), 8);
    os.write(reinterpret_cast<const char *>(&h.shardIndex), 4);
    os.write(reinterpret_cast<const char *>(&h.shardCount), 4);
    os.write(reinterpret_cast<const char *>(&h.firstCol), 8);
    os.write(reinterpret_cast<const char *>(&h.cols), 8);
}

/** Parse and bound-check one header from a raw 48-byte buffer. The
 *  dims come from an untrusted file, so every derived quantity below
 *  is computed only after its inputs are bounded (mirrors the APDS
 *  decode fix: individually-plausible dims must not multiply into a
 *  forged huge allocation or mapping). */
Status
parseHeader(const unsigned char *buf, const std::string &path,
            ShardHeader &h)
{
    if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0)
        return Status::parseError(path, ": not an apollo shard file");
    std::memcpy(&h.version, buf + 4, 4);
    std::memcpy(&h.rows, buf + 8, 8);
    std::memcpy(&h.colsTotal, buf + 16, 8);
    std::memcpy(&h.shardIndex, buf + 24, 4);
    std::memcpy(&h.shardCount, buf + 28, 4);
    std::memcpy(&h.firstCol, buf + 32, 8);
    std::memcpy(&h.cols, buf + 40, 8);
    if (h.version != kVersion)
        return Status::parseError(path, ": unsupported shard version ",
                                  h.version);
    if (h.rows == 0 || h.rows >= kShardMaxRows || h.colsTotal == 0 ||
        h.colsTotal >= kShardMaxCols)
        return Status::parseError(path, ": implausible shard dims ",
                                  h.rows, " x ", h.colsTotal);
    if (h.shardCount == 0 || h.shardCount > kShardMaxShards ||
        h.shardIndex >= h.shardCount || h.shardCount > h.colsTotal)
        return Status::parseError(path, ": implausible shard index ",
                                  h.shardIndex, " of ", h.shardCount);
    // cols <= colsTotal first, so firstCol's bound cannot underflow.
    if (h.cols == 0 || h.cols > h.colsTotal ||
        h.firstCol > h.colsTotal - h.cols)
        return Status::parseError(path, ": shard column range [",
                                  h.firstCol, ", +", h.cols,
                                  ") outside 0..", h.colsTotal);
    return Status::okStatus();
}

Status
validateDims(uint64_t rows, uint64_t cols, uint32_t shards)
{
    if (rows == 0 || rows >= kShardMaxRows)
        return Status::invalidArgument("shard set rows ", rows,
                                       " out of range");
    if (cols == 0 || cols >= kShardMaxCols)
        return Status::invalidArgument("shard set cols ", cols,
                                       " out of range");
    if (shards == 0 || shards > kShardMaxShards ||
        uint64_t{shards} > cols)
        return Status::invalidArgument("shard count ", shards,
                                       " invalid for ", cols,
                                       " columns");
    return Status::okStatus();
}

int
adviceFlag(MappedShardSet::Advice advice)
{
    switch (advice) {
    case MappedShardSet::Advice::Sequential:
        return MADV_SEQUENTIAL;
    case MappedShardSet::Advice::Random:
        return MADV_RANDOM;
    case MappedShardSet::Advice::DontNeed:
        return MADV_DONTNEED;
    case MappedShardSet::Advice::Normal:
    default:
        return MADV_NORMAL;
    }
}

} // namespace

uint64_t
shardFirstCol(uint64_t cols, uint32_t shards, uint32_t k)
{
    const uint64_t base = cols / shards;
    const uint64_t rem = cols % shards;
    return uint64_t{k} * base + std::min<uint64_t>(k, rem);
}

std::string
shardPath(const std::string &base, uint32_t k)
{
    return base + "." + std::to_string(k) + ".apsh";
}

// ---------------------------------------------------------------------------
// ShardSetWriter

struct ShardSetWriter::Impl
{
    std::string base;
    std::ofstream os;
    uint32_t openShard = UINT32_MAX;
};

ShardSetWriter::~ShardSetWriter() = default;
ShardSetWriter::ShardSetWriter(ShardSetWriter &&) noexcept = default;
ShardSetWriter &
ShardSetWriter::operator=(ShardSetWriter &&) noexcept = default;

StatusOr<ShardSetWriter>
ShardSetWriter::open(const std::string &base, uint64_t rows,
                     uint64_t cols, uint32_t shards)
{
    Status dims = validateDims(rows, cols, shards);
    if (!dims.ok())
        return dims;
    ShardSetWriter w;
    w.impl_ = std::make_unique<Impl>();
    w.impl_->base = base;
    w.rows_ = rows;
    w.cols_ = cols;
    w.shards_ = shards;
    w.wordsPerCol_ = static_cast<size_t>((rows + 63) / 64);
    return StatusOr<ShardSetWriter>(std::move(w));
}

Status
ShardSetWriter::appendRaw(const uint64_t *words, uint64_t n_cols)
{
    if (!impl_)
        return Status::invalidArgument("shard writer is closed");
    if (n_cols == 0)
        return Status::okStatus();
    if (n_cols > cols_ - nextCol_)
        return Status::invalidArgument(
            "shard append of ", n_cols, " columns past declared ",
            cols_, " (", nextCol_, " written)");
    // Enforce the packed zero-tail rule at ingest so every file the
    // writer produces satisfies the word-at-a-time kernel contract.
    if ((rows_ & 63) != 0) {
        const uint64_t tail_mask = ~uint64_t{0} << (rows_ & 63);
        for (uint64_t c = 0; c < n_cols; ++c) {
            if ((words[(c + 1) * wordsPerCol_ - 1] & tail_mask) != 0)
                return Status::invalidArgument(
                    "appended column ", nextCol_ + c,
                    " has nonzero bits past row ", rows_);
        }
    }
    uint64_t done = 0;
    while (done < n_cols) {
        // Only one shard file is ever open: columns arrive in
        // ascending order and shards hold contiguous ranges.
        const uint64_t base_cols = cols_ / shards_;
        const uint64_t rem = cols_ % shards_;
        const uint64_t col = nextCol_ + done;
        uint32_t k;
        if (col < rem * (base_cols + 1))
            k = static_cast<uint32_t>(col / (base_cols + 1));
        else
            k = static_cast<uint32_t>(
                rem + (col - rem * (base_cols + 1)) / base_cols);
        if (k != impl_->openShard) {
            if (impl_->os.is_open()) {
                impl_->os.close();
                if (!impl_->os)
                    return Status::ioError("shard write failed for ",
                                           shardPath(impl_->base,
                                                     impl_->openShard));
                impl_->os.clear();
            }
            const std::string path = shardPath(impl_->base, k);
            impl_->os.open(path, std::ios::binary | std::ios::trunc);
            if (!impl_->os.is_open())
                return Status::ioError("cannot open ", path,
                                       " for writing");
            ShardHeader h;
            h.version = kVersion;
            h.rows = rows_;
            h.colsTotal = cols_;
            h.shardIndex = k;
            h.shardCount = shards_;
            h.firstCol = shardFirstCol(cols_, shards_, k);
            h.cols = shardFirstCol(cols_, shards_, k + 1) - h.firstCol;
            writeHeader(impl_->os, h);
            impl_->openShard = k;
        }
        const uint64_t shard_end = shardFirstCol(cols_, shards_, k + 1);
        const uint64_t run = std::min(n_cols - done, shard_end - col);
        impl_->os.write(
            reinterpret_cast<const char *>(words + done * wordsPerCol_),
            static_cast<std::streamsize>(run * wordsPerCol_ *
                                         sizeof(uint64_t)));
        if (!impl_->os)
            return Status::ioError("shard write failed for ",
                                   shardPath(impl_->base, k));
        done += run;
    }
    nextCol_ += n_cols;
    return Status::okStatus();
}

Status
ShardSetWriter::append(const BitColumnMatrix &block)
{
    if (!impl_)
        return Status::invalidArgument("shard writer is closed");
    if (block.rows() != rows_)
        return Status::invalidArgument("shard block has ", block.rows(),
                                       " rows, writer expects ", rows_);
    return appendRaw(block.colWords(0), block.cols());
}

Status
ShardSetWriter::finish()
{
    if (!impl_)
        return Status::invalidArgument("shard writer is closed");
    if (nextCol_ != cols_)
        return Status::invalidArgument("shard set incomplete: ",
                                       nextCol_, " of ", cols_,
                                       " columns written");
    if (impl_->os.is_open()) {
        impl_->os.close();
        if (!impl_->os)
            return Status::ioError("shard write failed for ",
                                   shardPath(impl_->base,
                                             impl_->openShard));
    }
    impl_.reset();
    return Status::okStatus();
}

// ---------------------------------------------------------------------------
// MappedShardSet

MappedShardSet::~MappedShardSet() { releaseAll(); }

MappedShardSet::MappedShardSet(MappedShardSet &&other) noexcept
    : rows_(other.rows_), cols_(other.cols_),
      wordsPerCol_(other.wordsPerCol_), bytesMapped_(other.bytesMapped_),
      shards_(std::move(other.shards_))
{
    other.shards_.clear();
    other.rows_ = other.cols_ = other.wordsPerCol_ = 0;
    other.bytesMapped_ = 0;
}

MappedShardSet &
MappedShardSet::operator=(MappedShardSet &&other) noexcept
{
    if (this != &other) {
        releaseAll();
        rows_ = other.rows_;
        cols_ = other.cols_;
        wordsPerCol_ = other.wordsPerCol_;
        bytesMapped_ = other.bytesMapped_;
        shards_ = std::move(other.shards_);
        other.shards_.clear();
        other.rows_ = other.cols_ = other.wordsPerCol_ = 0;
        other.bytesMapped_ = 0;
    }
    return *this;
}

void
MappedShardSet::releaseAll()
{
    for (Shard &s : shards_) {
        if (s.mapBase != nullptr)
            ::munmap(s.mapBase, s.mapLen);
    }
    shards_.clear();
    bytesMapped_ = 0;
}

uint32_t
MappedShardSet::shardOf(uint64_t col) const
{
    // Shards hold contiguous ranges in ascending order; binary search
    // the last shard whose firstCol <= col.
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(shards_.size()) - 1;
    while (lo < hi) {
        const uint32_t mid = (lo + hi + 1) / 2;
        if (shards_[mid].firstCol <= col)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

StatusOr<MappedShardSet>
MappedShardSet::open(const std::string &base)
{
    // Peek shard 0's header to learn the shard count, then map the set.
    const std::string first = shardPath(base, 0);
    std::ifstream is(first, std::ios::binary);
    if (!is.is_open())
        return Status::ioError("cannot open ", first);
    unsigned char buf[kHeaderBytes];
    is.read(reinterpret_cast<char *>(buf), kHeaderBytes);
    if (!is)
        return Status::ioError("truncated shard header in ", first);
    ShardHeader h;
    Status st = parseHeader(buf, first, h);
    if (!st.ok())
        return st;
    is.close();
    std::vector<std::string> paths;
    paths.reserve(h.shardCount);
    for (uint32_t k = 0; k < h.shardCount; ++k)
        paths.push_back(shardPath(base, k));
    return openFiles(paths);
}

StatusOr<MappedShardSet>
MappedShardSet::openFiles(const std::vector<std::string> &paths)
{
    if (paths.empty())
        return Status::invalidArgument("no shard files given");
    MappedShardSet set;
    uint64_t rows = 0;
    uint64_t cols_total = 0;
    uint32_t shard_count = 0;
    std::vector<bool> seen;
    for (const std::string &path : paths) {
        const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0)
            return Status::ioError("cannot open ", path);
        struct stat sb;
        if (::fstat(fd, &sb) != 0) {
            ::close(fd);
            return Status::ioError("cannot stat ", path);
        }
        unsigned char buf[kHeaderBytes];
        const ssize_t got = ::pread(fd, buf, kHeaderBytes, 0);
        if (got != static_cast<ssize_t>(kHeaderBytes)) {
            ::close(fd);
            return Status::ioError("truncated shard header in ", path);
        }
        ShardHeader h;
        Status st = parseHeader(buf, path, h);
        if (!st.ok()) {
            ::close(fd);
            return st;
        }
        if (set.shards_.empty()) {
            rows = h.rows;
            cols_total = h.colsTotal;
            shard_count = h.shardCount;
            if (paths.size() != shard_count) {
                ::close(fd);
                return Status::invalidArgument(
                    "shard set expects ", shard_count, " files, got ",
                    paths.size());
            }
            set.rows_ = static_cast<size_t>(rows);
            set.cols_ = static_cast<size_t>(cols_total);
            set.wordsPerCol_ = static_cast<size_t>((rows + 63) / 64);
            seen.assign(shard_count, false);
        } else if (h.rows != rows || h.colsTotal != cols_total ||
                   h.shardCount != shard_count) {
            ::close(fd);
            return Status::parseError(path,
                                      ": inconsistent shard set dims");
        }
        if (seen[h.shardIndex]) {
            ::close(fd);
            return Status::parseError(path, ": duplicate shard index ",
                                      h.shardIndex);
        }
        seen[h.shardIndex] = true;
        // Both factors are already bounded (cols < 2^24, wordsPerCol
        // <= 2^22), so this product cannot overflow u64; the mapping
        // is refused unless the file is EXACTLY the implied size, so
        // no in-bounds column access can touch past the mapping.
        const uint64_t payload =
            h.cols * static_cast<uint64_t>(set.wordsPerCol_) * 8;
        const uint64_t expect = kHeaderBytes + payload;
        if (static_cast<uint64_t>(sb.st_size) != expect) {
            ::close(fd);
            return Status::parseError(
                path, ": size ", static_cast<uint64_t>(sb.st_size),
                " does not match header-implied ", expect);
        }
        void *map = ::mmap(nullptr, static_cast<size_t>(expect),
                           PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd); // mapping keeps the file alive
        if (map == MAP_FAILED)
            return Status::ioError("mmap failed for ", path);
        Shard s;
        s.firstCol = h.firstCol;
        s.cols = h.cols;
        s.mapBase = map;
        s.mapLen = static_cast<size_t>(expect);
        // Header is 48 bytes, 8-byte aligned, so the payload pointer
        // is a valid uint64_t*.
        s.words = reinterpret_cast<const uint64_t *>(
            static_cast<const unsigned char *>(map) + kHeaderBytes);
        set.bytesMapped_ += expect;
        set.shards_.push_back(s);
    }
    std::sort(set.shards_.begin(), set.shards_.end(),
              [](const Shard &a, const Shard &b) {
                  return a.firstCol < b.firstCol;
              });
    uint64_t next = 0;
    for (const Shard &s : set.shards_) {
        if (s.firstCol != next)
            return Status::parseError(
                "shard set has a gap: expected first column ", next,
                ", got ", s.firstCol);
        next = s.firstCol + s.cols;
    }
    if (next != cols_total)
        return Status::parseError("shard set covers ", next, " of ",
                                  cols_total, " columns");
    return StatusOr<MappedShardSet>(std::move(set));
}

void
MappedShardSet::adviseShard(uint32_t k, Advice advice) const
{
    const Shard &s = shards_[k];
    ::madvise(s.mapBase, s.mapLen, adviceFlag(advice));
}

void
MappedShardSet::adviseColumns(uint32_t k, uint64_t first, uint64_t n,
                              Advice advice) const
{
    if (n == 0)
        return;
    const Shard &s = shards_[k];
    const long page_l = ::sysconf(_SC_PAGESIZE);
    const uintptr_t page = page_l > 0 ? static_cast<uintptr_t>(page_l)
                                      : uintptr_t{4096};
    const uintptr_t lo_raw = reinterpret_cast<uintptr_t>(
        s.words + first * wordsPerCol_);
    const uintptr_t hi_raw = reinterpret_cast<uintptr_t>(
        s.words + (first + n) * wordsPerCol_);
    // Round out to page boundaries, clamped to this shard's mapping.
    const uintptr_t base = reinterpret_cast<uintptr_t>(s.mapBase);
    uintptr_t lo = lo_raw & ~(page - 1);
    uintptr_t hi = (hi_raw + page - 1) & ~(page - 1);
    if (lo < base)
        lo = base;
    if (hi > base + s.mapLen)
        hi = base + s.mapLen;
    if (hi > lo)
        ::madvise(reinterpret_cast<void *>(lo), hi - lo,
                  adviceFlag(advice));
}

Status
MappedShardSet::validateTails() const
{
    if ((rows_ & 63) == 0)
        return Status::okStatus();
    for (uint64_t c = 0; c < cols_; ++c) {
        if (!columnTailClean(c))
            return Status::parseError(
                "shard column ", c, " has nonzero bits past row ",
                rows_);
    }
    return Status::okStatus();
}

// ---------------------------------------------------------------------------

Status
saveShardedMatrix(const std::string &base, const BitColumnMatrix &X,
                  uint32_t shards, size_t block_cols)
{
    StatusOr<ShardSetWriter> w =
        ShardSetWriter::open(base, X.rows(), X.cols(), shards);
    if (!w.ok())
        return w.status();
    if (block_cols == 0)
        block_cols = 1;
    for (size_t c0 = 0; c0 < X.cols(); c0 += block_cols) {
        const size_t run = std::min(block_cols, X.cols() - c0);
        Status st = w->appendRaw(X.colWords(c0), run);
        if (!st.ok())
            return st;
    }
    return w->finish();
}

} // namespace apollo
