#include "trace/stream_reader.hh"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "trace/vcd.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

constexpr char kTraceMagic[4] = {'A', 'P', 'T', 'R'};
constexpr uint32_t kTraceVersion = 1;

template <typename T>
bool
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
    return static_cast<bool>(os);
}

template <typename T>
bool
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

// --- MatrixChunkReader ---

StatusOr<size_t>
MatrixChunkReader::next(size_t max_rows, ProxyChunk &chunk)
{
    if (max_rows == 0)
        return Status::invalidArgument("chunk size must be positive");
    const size_t n = std::min(max_rows, Xq_.rows() - pos_);
    chunk.firstCycle = pos_;
    Xq_.sliceRowsInto(pos_, n, chunk.bits);
    pos_ += n;
    return n;
}

// --- FrameProxyChunkReader ---

FrameProxyChunkReader::FrameProxyChunkReader(
    const ActivityEngine &engine, std::span<const ActivityFrame> frames,
    std::vector<uint32_t> proxy_ids,
    std::vector<uint32_t> segment_begin_of)
    : engine_(engine), frames_(frames), proxyIds_(std::move(proxy_ids)),
      segmentBeginOf_(std::move(segment_begin_of))
{}

StatusOr<size_t>
FrameProxyChunkReader::next(size_t max_rows, ProxyChunk &chunk)
{
    if (max_rows == 0)
        return Status::invalidArgument("chunk size must be positive");
    const size_t n = std::min(max_rows, frames_.size() - pos_);
    chunk.firstCycle = pos_;
    chunk.bits.reset(n, proxyIds_.size());
    if (n == 0)
        return n;
    const size_t first = pos_;
    // Column-parallel like DatasetBuilder::traceProxies; the engine is
    // a pure function of (signal, cycle), so any split is exact.
    parallelFor(proxyIds_.size(), [&](size_t q0, size_t q1) {
        for (size_t q = q0; q < q1; ++q) {
            const uint32_t sig_id = proxyIds_[q];
            for (size_t i = 0; i < n; ++i) {
                const size_t global = first + i;
                const uint32_t seg = segmentBeginOf_.empty()
                                         ? 0
                                         : segmentBeginOf_[global];
                if (engine_.toggles(sig_id, frames_, global, seg))
                    chunk.bits.setBit(i, q);
            }
        }
    });
    pos_ += n;
    return n;
}

// --- ProxyTraceWriter ---

ProxyTraceWriter::ProxyTraceWriter(std::ostream &os, size_t q)
    : os_(os), q_(q)
{
    APOLLO_REQUIRE(q > 0, "proxy trace needs at least one column");
}

Status
ProxyTraceWriter::writeHeader()
{
    os_.write(kTraceMagic, sizeof(kTraceMagic));
    writePod(os_, kTraceVersion);
    writePod(os_, static_cast<uint32_t>(q_));
    cyclesPos_ = os_.tellp();
    if (!writePod(os_, ProxyChunkReader::kUnknownCycles))
        return Status::ioError("proxy trace header write failed");
    headerDone_ = true;
    return Status::okStatus();
}

Status
ProxyTraceWriter::append(const BitColumnMatrix &chunk)
{
    if (finished_)
        return Status::invalidArgument("append after finish()");
    if (chunk.cols() != q_)
        return Status::invalidArgument("chunk has ", chunk.cols(),
                                       " columns, trace has ", q_);
    if (!headerDone_) {
        if (Status s = writeHeader(); !s.ok())
            return s;
    }
    if (chunk.rows() == 0)
        return Status::okStatus();
    if (chunk.rows() >= ~uint32_t{0})
        return Status::outOfRange("block too large");
    writePod(os_, static_cast<uint32_t>(chunk.rows()));
    for (size_t c = 0; c < q_; ++c)
        os_.write(reinterpret_cast<const char *>(chunk.colWords(c)),
                  static_cast<std::streamsize>(chunk.wordsPerCol() *
                                               sizeof(uint64_t)));
    if (!os_)
        return Status::ioError("proxy trace block write failed");
    cycles_ += chunk.rows();
    return Status::okStatus();
}

Status
ProxyTraceWriter::finish()
{
    if (finished_)
        return Status::okStatus();
    if (!headerDone_) {
        if (Status s = writeHeader(); !s.ok())
            return s;
    }
    if (!writePod(os_, uint32_t{0}))
        return Status::ioError("proxy trace terminator write failed");
    // Patch the cycle count when the sink is seekable (plain files);
    // pipe-like sinks keep kUnknownCycles and rely on the terminator.
    const std::ostream::pos_type end = os_.tellp();
    if (end != std::ostream::pos_type(-1)) {
        os_.seekp(cyclesPos_);
        writePod(os_, cycles_);
        os_.seekp(end);
    }
    os_.flush();
    if (!os_)
        return Status::ioError("proxy trace finish failed");
    finished_ = true;
    return Status::okStatus();
}

Status
saveProxyTraceFile(const std::string &path, const BitColumnMatrix &Xq,
                   size_t block_cycles)
{
    if (block_cycles == 0)
        return Status::invalidArgument("block_cycles must be positive");
    std::ofstream os(path, std::ios::binary);
    if (!os.is_open())
        return Status::ioError("cannot open ", path, " for writing");
    ProxyTraceWriter writer(os, Xq.cols());
    BitColumnMatrix block;
    for (size_t first = 0; first < Xq.rows(); first += block_cycles) {
        const size_t n = std::min(block_cycles, Xq.rows() - first);
        Xq.sliceRowsInto(first, n, block);
        if (Status s = writer.append(block); !s.ok())
            return s;
    }
    return writer.finish();
}

// --- ProxyTraceReader ---

Status
ProxyTraceReader::readHeader()
{
    char header[4] = {};
    is_.read(header, sizeof(header));
    if (!is_ || std::memcmp(header, kTraceMagic, sizeof(header)) != 0)
        return Status::parseError("not an apollo proxy trace (bad "
                                  "magic)");
    uint32_t version = 0;
    uint32_t q = 0;
    if (!readPod(is_, version) || !readPod(is_, q) ||
        !readPod(is_, totalCycles_))
        return Status::ioError("truncated proxy trace header");
    if (version != kTraceVersion)
        return Status::parseError("unsupported proxy trace version ",
                                  version);
    if (q == 0 || q > (1u << 24))
        return Status::parseError("implausible proxy count ", q);
    q_ = q;
    headerDone_ = true;
    return Status::okStatus();
}

Status
ProxyTraceReader::readBlock()
{
    uint32_t rows = 0;
    if (!readPod(is_, rows))
        return Status::ioError("truncated proxy trace (missing "
                               "terminator)");
    if (rows == 0) {
        atEnd_ = true;
        if (totalCycles_ != kUnknownCycles && pos_ != totalCycles_)
            return Status::parseError("proxy trace cycle count "
                                      "mismatch: header says ",
                                      totalCycles_, ", blocks held ",
                                      pos_);
        return Status::okStatus();
    }
    // Validate the declared block size BEFORE allocating for it: both
    // rows and q come from untrusted input, and a forged header must
    // not translate into a multi-gigabyte reset().
    if (totalCycles_ != kUnknownCycles && pos_ + rows > totalCycles_)
        return Status::parseError("proxy trace block overruns declared "
                                  "cycle count: block of ", rows,
                                  " rows at cycle ", pos_,
                                  " exceeds header total ",
                                  totalCycles_);
    if (static_cast<uint64_t>(rows) * q_ > (uint64_t{1} << 30))
        return Status::parseError("implausible proxy trace block: ",
                                  rows, " rows x ", q_, " proxies");
    block_.reset(rows, q_);
    for (size_t c = 0; c < q_; ++c) {
        is_.read(reinterpret_cast<char *>(block_.colWordsMutable(c)),
                 static_cast<std::streamsize>(block_.wordsPerCol() *
                                              sizeof(uint64_t)));
    }
    if (!is_)
        return Status::ioError("truncated proxy trace block at cycle ",
                               pos_);
    // Enforce the packed zero-tail contract on untrusted input: the
    // whole-block fast path in next() hands this matrix to consumers
    // without re-slicing, and the word-at-a-time kernels (popcount
    // windows, axpyColumnI64) trust that bits past `rows` in each
    // column's last word are zero — a forged tail word would count
    // phantom cycles or index past per-row accumulators.
    if (rows & 63) {
        const uint64_t tail_mask =
            ~uint64_t{0} << (rows & 63);
        const size_t last = block_.wordsPerCol() - 1;
        for (size_t c = 0; c < q_; ++c) {
            if (block_.colWords(c)[last] & tail_mask)
                return Status::parseError(
                    "proxy trace block declares ", rows,
                    " rows but sets bits past the last row in "
                    "column ", c);
        }
    }
    blockPos_ = 0;
    return Status::okStatus();
}

StatusOr<size_t>
ProxyTraceReader::next(size_t max_rows, ProxyChunk &chunk)
{
    if (max_rows == 0)
        return Status::invalidArgument("chunk size must be positive");
    if (!headerDone_) {
        if (Status s = readHeader(); !s.ok())
            return s;
    }
    if (!atEnd_ && blockPos_ >= block_.rows()) {
        if (Status s = readBlock(); !s.ok())
            return s;
    }
    if (atEnd_) {
        chunk.firstCycle = pos_;
        chunk.bits.reset(0, q_);
        return size_t{0};
    }
    const size_t n = std::min(max_rows, block_.rows() - blockPos_);
    chunk.firstCycle = pos_;
    if (n == block_.rows() && blockPos_ == 0) {
        // Whole-block fast path: hand the block over without copying.
        std::swap(chunk.bits, block_);
        block_.reset(0, q_);
        blockPos_ = 0;
    } else {
        block_.sliceRowsInto(blockPos_, n, chunk.bits);
        blockPos_ += n;
    }
    pos_ += n;
    return n;
}

StatusOr<size_t>
ProxyTraceFileReader::next(size_t max_rows, ProxyChunk &chunk)
{
    if (!is_.is_open())
        return Status::ioError("cannot open ", path_);
    return reader_.next(max_rows, chunk);
}

// --- VcdChunkReader ---

Status
VcdChunkReader::readHeader()
{
    std::string token;
    while (is_ >> token) {
        if (token == "$var") {
            std::string type, width, id, name;
            if (!(is_ >> type >> width >> id >> name))
                return Status::ioError("truncated VCD $var");
            if (idToIndex_.count(id))
                return Status::parseError("duplicate VCD id ", id);
            idToIndex_[id] = names_.size();
            names_.push_back(name);
            while (is_ >> token && token != "$end") {}
        } else if (token == "$enddefinitions") {
            while (is_ >> token && token != "$end") {}
            break;
        }
    }
    if (names_.empty())
        return Status::parseError("VCD has no $var declarations");
    value_.assign(names_.size(), 0);
    headerDone_ = true;
    return Status::okStatus();
}

StatusOr<size_t>
VcdChunkReader::next(size_t max_rows, ProxyChunk &chunk)
{
    if (max_rows == 0)
        return Status::invalidArgument("chunk size must be positive");
    if (!headerDone_) {
        if (Status s = readHeader(); !s.ok())
            return s;
    }

    // (chunk-row, column) pairs accumulated for this chunk.
    std::vector<std::pair<uint32_t, uint32_t>> rows_set;
    const uint64_t first = nextRow_;
    size_t produced = 0;

    // Emit finalized cycles up to @p boundary (exclusive) or until the
    // chunk is full.
    const auto emit_until = [&](uint64_t boundary) {
        while (nextRow_ < boundary && produced < max_rows) {
            if (completedValid_ && nextRow_ == completedTs_) {
                for (uint32_t col : completedFlips_)
                    rows_set.emplace_back(
                        static_cast<uint32_t>(produced), col);
                completedFlips_.clear();
                completedValid_ = false;
            }
            nextRow_++;
            produced++;
        }
    };

    std::string token;
    while (produced < max_rows) {
        if (atEof_) {
            emit_until(curTs_);
            break;
        }
        if (!(is_ >> token)) {
            // End of stream: the trace length is the last timestamp
            // seen; flips at that timestamp are dropped (parseVcd
            // semantics — VcdWriter::finish() emits a final "#N").
            atEof_ = true;
            pendingFlips_.clear();
            continue;
        }
        if (token == "$dumpvars") {
            inDumpvars_ = true;
        } else if (token == "$end") {
            inDumpvars_ = false;
        } else if (token[0] == '#') {
            uint64_t ts = 0;
            try {
                ts = std::stoull(token.substr(1));
            } catch (...) {
                return Status::parseError("bad VCD timestamp ", token);
            }
            if (ts < curTs_)
                return Status::parseError(
                    "non-monotonic VCD timestamp ", ts, " after ",
                    curTs_, " (streaming reader requires ordered "
                            "timestamps)");
            if (ts > kMaxVcdCycles)
                return Status::parseError("implausible VCD timestamp ",
                                          ts, " (limit ",
                                          kMaxVcdCycles, ")");
            if (ts > curTs_) {
                if (!pendingFlips_.empty()) {
                    completedTs_ = curTs_;
                    completedFlips_.swap(pendingFlips_);
                    completedValid_ = true;
                }
                curTs_ = ts;
                emit_until(curTs_);
            }
        } else if (token[0] == '0' || token[0] == '1') {
            const std::string id = token.substr(1);
            const auto it = idToIndex_.find(id);
            if (it == idToIndex_.end())
                return Status::parseError("unknown VCD id ", id);
            const uint8_t v = token[0] == '1' ? 1 : 0;
            if (!inDumpvars_ && v != value_[it->second])
                pendingFlips_.push_back(
                    static_cast<uint32_t>(it->second));
            value_[it->second] = v;
        }
        // Other tokens (comments, unknown directives) are skipped.
    }

    chunk.firstCycle = first;
    chunk.bits.reset(produced, names_.size());
    for (const auto &[row, col] : rows_set)
        chunk.bits.setBit(row, col);
    return produced;
}

} // namespace apollo
