#include "trace/vcd.hh"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace apollo {

VcdWriter::VcdWriter(std::ostream &os, const Netlist &netlist,
                     std::vector<uint32_t> signals)
    : os_(os), netlist_(netlist), signals_(std::move(signals)),
      value_(signals_.size(), 0)
{
    APOLLO_REQUIRE(!signals_.empty(), "no signals to dump");
}

std::string
VcdWriter::idCode(size_t index)
{
    // Printable identifier characters '!' (33) .. '~' (126), base 94.
    std::string id;
    do {
        id.push_back(static_cast<char>(33 + index % 94));
        index /= 94;
    } while (index);
    return id;
}

void
VcdWriter::writeHeader()
{
    os_ << "$date apollo $end\n";
    os_ << "$version apollo-vcd 1.0 $end\n";
    os_ << "$timescale 1ns $end\n";

    // One scope per functional unit, in signal order.
    UnitId current = UnitId::NumUnits;
    bool scope_open = false;
    for (size_t k = 0; k < signals_.size(); ++k) {
        const Signal &sig = netlist_.signal(signals_[k]);
        if (sig.unit != current) {
            if (scope_open)
                os_ << "$upscope $end\n";
            os_ << "$scope module u_" << unitName(sig.unit) << " $end\n";
            current = sig.unit;
            scope_open = true;
        }
        os_ << "$var wire 1 " << idCode(k) << " "
            << netlist_.signalName(signals_[k]) << " $end\n";
    }
    if (scope_open)
        os_ << "$upscope $end\n";
    os_ << "$enddefinitions $end\n";
    os_ << "$dumpvars\n";
    for (size_t k = 0; k < signals_.size(); ++k)
        os_ << "0" << idCode(k) << "\n";
    os_ << "$end\n";
    headerDone_ = true;
}

void
VcdWriter::writeCycle(const BitVector &toggled)
{
    APOLLO_REQUIRE(headerDone_, "writeHeader() must be called first");
    APOLLO_REQUIRE(toggled.size() == signals_.size(),
                   "toggle vector arity mismatch");
    os_ << "#" << cycle_ << "\n";
    for (size_t k = 0; k < signals_.size(); ++k) {
        if (toggled.get(k)) {
            value_[k] ^= 1;
            os_ << static_cast<int>(value_[k]) << idCode(k) << "\n";
        }
    }
    cycle_++;
}

void
VcdWriter::finish()
{
    os_ << "#" << cycle_ << "\n";
    os_.flush();
}

StatusOr<VcdTrace>
tryParseVcd(std::istream &is)
{
    std::vector<std::string> names;
    std::map<std::string, size_t> id_to_index;
    std::string token;

    // Header.
    while (is >> token) {
        if (token == "$var") {
            std::string type, width, id, name;
            if (!(is >> type >> width >> id >> name))
                return Status::ioError("truncated VCD $var");
            id_to_index[id] = names.size();
            names.push_back(name);
            // consume "$end"
            while (is >> token && token != "$end") {}
        } else if (token == "$enddefinitions") {
            while (is >> token && token != "$end") {}
            break;
        }
    }
    if (names.empty())
        return Status::parseError("VCD has no $var declarations");

    // Value changes. First pass into a sparse (cycle, index) list.
    std::vector<std::pair<uint64_t, size_t>> flips;
    std::vector<uint8_t> value(names.size(), 0);
    uint64_t cycle = 0;
    uint64_t max_cycle = 0;
    bool in_dumpvars = false;

    while (is >> token) {
        if (token == "$dumpvars") {
            in_dumpvars = true;
            continue;
        }
        if (token == "$end") {
            in_dumpvars = false;
            continue;
        }
        if (token[0] == '#') {
            try {
                cycle = std::stoull(token.substr(1));
            } catch (...) {
                return Status::parseError("bad VCD timestamp ", token);
            }
            if (cycle > kMaxVcdCycles)
                return Status::parseError("implausible VCD timestamp ",
                                          cycle, " (limit ",
                                          kMaxVcdCycles, ")");
            max_cycle = std::max(max_cycle, cycle);
            continue;
        }
        if (token[0] == '0' || token[0] == '1') {
            const std::string id = token.substr(1);
            auto it = id_to_index.find(id);
            if (it == id_to_index.end())
                return Status::parseError("unknown VCD id ", id);
            const uint8_t v = token[0] == '1' ? 1 : 0;
            if (!in_dumpvars && v != value[it->second])
                flips.emplace_back(cycle, it->second);
            value[it->second] = v;
        }
    }

    VcdTrace trace;
    trace.names = std::move(names);
    // Bound the full-matrix allocation: the streaming reader is the
    // supported path for dumps beyond in-memory size.
    if (max_cycle * trace.names.size() > (uint64_t{1} << 32))
        return Status::parseError(
            "VCD too large for in-memory parse (", max_cycle,
            " cycles x ", trace.names.size(),
            " signals); use VcdChunkReader");
    trace.toggles.reset(max_cycle, trace.names.size());
    for (const auto &[flip_cycle, index] : flips) {
        if (flip_cycle < max_cycle)
            trace.toggles.setBit(flip_cycle, index);
    }
    return trace;
}

VcdTrace
parseVcd(std::istream &is)
{
    StatusOr<VcdTrace> trace = tryParseVcd(is);
    if (!trace.ok())
        fatal(trace.status().toString());
    return std::move(*trace);
}

} // namespace apollo
