/**
 * @file
 * Chunked proxy-trace ingestion for the streaming inference pipeline.
 *
 * A ProxyChunkReader produces consecutive row blocks ("chunks") of a
 * cycles x Q proxy-toggle matrix, so multi-million-cycle traces are
 * never resident in full. Four sources are provided:
 *
 *  - MatrixChunkReader      slices an in-memory proxy matrix (tests,
 *                           short traces, re-chunking),
 *  - FrameProxyChunkReader  generates proxy bits on demand from
 *                           simulated ActivityFrames via the
 *                           ActivityEngine — the emulator-assisted flow
 *                           of Fig. 7(c) without materializing the
 *                           trace,
 *  - ProxyTraceReader       incremental reader of the blocked binary
 *                           trace format written by ProxyTraceWriter
 *                           (magic "APTR"),
 *  - VcdChunkReader         incremental reader of VcdWriter-style VCD
 *                           dumps (cycle-at-a-time, bounded memory).
 *
 * All readers report data problems as Status values (util/status.hh)
 * rather than throwing: a malformed trace is an expected condition for
 * a service ingesting third-party artifacts.
 *
 * Chunking is value-preserving: whatever chunk sizes a reader serves,
 * the concatenated rows equal the underlying trace bit for bit (see
 * BitColumnMatrix::sliceRowsInto), which is what lets the streaming
 * engine guarantee bit-identical results to the batch path.
 */

#ifndef APOLLO_TRACE_STREAM_READER_HH
#define APOLLO_TRACE_STREAM_READER_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "activity/activity_engine.hh"
#include "uarch/activity_frame.hh"
#include "util/bitvec.hh"
#include "util/status.hh"

namespace apollo {

/** One row block of a proxy-toggle trace. */
struct ProxyChunk
{
    /** Global cycle index of row 0 of this chunk. */
    uint64_t firstCycle = 0;
    /**
     * rows() x Q toggle bits; column q follows the proxy order of the
     * producing model/trace. Trailing bits past rows() are zero.
     */
    BitColumnMatrix bits;

    size_t rows() const { return bits.rows(); }
    size_t proxies() const { return bits.cols(); }
};

/** Pull-based source of consecutive proxy-trace chunks. */
class ProxyChunkReader
{
  public:
    virtual ~ProxyChunkReader() = default;

    /** Number of proxy columns every chunk will have. */
    virtual size_t proxyCount() const = 0;

    /** Total trace length, or kUnknownCycles for open-ended streams. */
    virtual uint64_t totalCycles() const { return kUnknownCycles; }

    /**
     * Produce the next chunk with 1..max_rows rows, or 0 rows at end
     * of trace. Chunks are consecutive: the next chunk's firstCycle is
     * this chunk's firstCycle + rows().
     */
    virtual StatusOr<size_t> next(size_t max_rows, ProxyChunk &chunk) = 0;

    static constexpr uint64_t kUnknownCycles = ~0ULL;
};

/** Serves row slices of an in-memory proxy-layout matrix. */
class MatrixChunkReader : public ProxyChunkReader
{
  public:
    /** @p Xq is kept by reference and must outlive the reader. */
    explicit MatrixChunkReader(const BitColumnMatrix &Xq) : Xq_(Xq) {}

    size_t proxyCount() const override { return Xq_.cols(); }
    uint64_t totalCycles() const override { return Xq_.rows(); }
    StatusOr<size_t> next(size_t max_rows, ProxyChunk &chunk) override;

  private:
    const BitColumnMatrix &Xq_;
    size_t pos_ = 0;
};

/**
 * Generates proxy toggle bits chunk by chunk from simulated frames —
 * the streaming backbone of the emulator-assisted flow. Produces bits
 * identical to DatasetBuilder::traceProxies over the same frames
 * (the ActivityEngine is stateless per (signal, cycle)).
 */
class FrameProxyChunkReader : public ProxyChunkReader
{
  public:
    /** @p engine and @p frames must outlive the reader. */
    FrameProxyChunkReader(const ActivityEngine &engine,
                          std::span<const ActivityFrame> frames,
                          std::vector<uint32_t> proxy_ids,
                          std::vector<uint32_t> segment_begin_of);

    size_t proxyCount() const override { return proxyIds_.size(); }
    uint64_t totalCycles() const override { return frames_.size(); }
    StatusOr<size_t> next(size_t max_rows, ProxyChunk &chunk) override;

  private:
    const ActivityEngine &engine_;
    std::span<const ActivityFrame> frames_;
    std::vector<uint32_t> proxyIds_;
    std::vector<uint32_t> segmentBeginOf_;
    size_t pos_ = 0;
};

/**
 * Incremental writer of the blocked binary proxy-trace format:
 *
 *   "APTR" | u32 version | u32 q | u64 cycles | blocks... | u32 0
 *
 * where each block is `u32 rows` followed by q packed columns of
 * ceil(rows/64) u64 words (little-endian, same layout as
 * BitColumnMatrix columns). The cycles field is patched on finish()
 * when the stream is seekable, and kUnknownCycles otherwise — readers
 * rely on the rows=0 terminator either way. Blocks are written as
 * appended, so a producer can emit whatever chunk granularity it has.
 */
class ProxyTraceWriter
{
  public:
    /** @p os is kept by reference; binary mode expected. */
    ProxyTraceWriter(std::ostream &os, size_t q);

    /** Append one chunk (bits.cols() must equal q). */
    Status append(const BitColumnMatrix &chunk);

    /** Write the terminator and patch the cycle count. */
    Status finish();

    uint64_t cyclesWritten() const { return cycles_; }

  private:
    std::ostream &os_;
    size_t q_;
    uint64_t cycles_ = 0;
    std::ostream::pos_type cyclesPos_;
    bool headerDone_ = false;
    bool finished_ = false;

    Status writeHeader();
};

/** Convenience: stream an entire proxy matrix to @p path. */
Status saveProxyTraceFile(const std::string &path,
                          const BitColumnMatrix &Xq,
                          size_t block_cycles = 1 << 14);

/**
 * Incremental reader of the "APTR" format. Holds at most one file
 * block plus the chunk being served; re-slices blocks to honor the
 * engine's requested chunk size.
 */
class ProxyTraceReader : public ProxyChunkReader
{
  public:
    /** @p is is kept by reference; binary mode expected. */
    explicit ProxyTraceReader(std::istream &is) : is_(is) {}

    size_t proxyCount() const override { return q_; }
    uint64_t totalCycles() const override { return totalCycles_; }
    StatusOr<size_t> next(size_t max_rows, ProxyChunk &chunk) override;

  private:
    std::istream &is_;
    size_t q_ = 0;
    uint64_t totalCycles_ = kUnknownCycles;
    uint64_t pos_ = 0;
    bool headerDone_ = false;
    bool atEnd_ = false;
    BitColumnMatrix block_;
    size_t blockPos_ = 0;

    Status readHeader();
    Status readBlock();
};

/** File-owning variant of ProxyTraceReader. */
class ProxyTraceFileReader : public ProxyChunkReader
{
  public:
    explicit ProxyTraceFileReader(const std::string &path)
        : is_(path, std::ios::binary), path_(path), reader_(is_)
    {}

    size_t proxyCount() const override { return reader_.proxyCount(); }
    uint64_t totalCycles() const override
    {
        return reader_.totalCycles();
    }
    StatusOr<size_t> next(size_t max_rows, ProxyChunk &chunk) override;

  private:
    std::ifstream is_;
    std::string path_;
    ProxyTraceReader reader_;
};

/**
 * Incremental VCD ingestion (the VcdWriter subset of the grammar:
 * 1-bit wires, monotonic timestamps). A toggle is recorded at cycle c
 * when a signal's value flips at timestamp c outside $dumpvars;
 * matching parseVcd(), the trace length is the last timestamp seen, so
 * flips at the final timestamp are dropped. Memory is bounded by one
 * chunk regardless of trace length.
 */
class VcdChunkReader : public ProxyChunkReader
{
  public:
    /** @p is is kept by reference. */
    explicit VcdChunkReader(std::istream &is) : is_(is) {}

    /** Valid after the first next() call. */
    size_t proxyCount() const override { return names_.size(); }
    /** Signal names in column order (valid after the first next()). */
    const std::vector<std::string> &names() const { return names_; }

    StatusOr<size_t> next(size_t max_rows, ProxyChunk &chunk) override;

  private:
    std::istream &is_;
    std::vector<std::string> names_;
    std::map<std::string, size_t> idToIndex_;
    std::vector<uint8_t> value_;
    std::vector<uint32_t> pendingFlips_; ///< flips at cycle curTs_
    std::vector<uint32_t> completedFlips_; ///< flips of a finished cycle
    uint64_t completedTs_ = 0;
    bool completedValid_ = false;
    uint64_t curTs_ = 0;    ///< timestamp whose flips are being read
    uint64_t nextRow_ = 0;  ///< next cycle index to emit
    bool headerDone_ = false;
    bool inDumpvars_ = false;
    bool atEof_ = false;

    Status readHeader();
};

} // namespace apollo

#endif // APOLLO_TRACE_STREAM_READER_HH
