/**
 * @file
 * A small shared thread pool with a blocking parallelFor. Used by the
 * activity engine (per-signal toggle generation), K-means, PCA, and the
 * neural-net trainer. The pool is created lazily and shared process-wide;
 * all parallelFor invocations are deterministic with respect to results
 * (workers write disjoint output ranges).
 */

#ifndef APOLLO_UTIL_THREAD_POOL_HH
#define APOLLO_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apollo {

/** Fixed-size worker pool executing [begin, end) range chunks. */
class ThreadPool
{
  public:
    /** @param n_threads 0 means hardware_concurrency(). */
    explicit ThreadPool(size_t n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t threadCount() const { return workers_.size(); }

    /**
     * Run @p body(begin, end) over chunks of [0, n), blocking until all
     * chunks complete. Exceptions inside chunks propagate to the caller
     * (first one wins).
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t)> &body);

    /** Process-wide shared pool (lazily constructed). */
    static ThreadPool &global();

  private:
    struct Task
    {
        const std::function<void(size_t, size_t)> *body = nullptr;
        size_t n = 0;
        size_t chunk = 1;
        size_t next = 0;
        size_t remainingChunks = 0;
        std::exception_ptr error;
    };

    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    Task *task_ = nullptr;
    uint64_t generation_ = 0;
    bool shutdown_ = false;
};

/** Convenience wrapper over ThreadPool::global().parallelFor. */
void parallelFor(size_t n, const std::function<void(size_t, size_t)> &body);

} // namespace apollo

#endif // APOLLO_UTIL_THREAD_POOL_HH
