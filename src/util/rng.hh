/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Two flavours are provided:
 *  - Xoshiro256StarStar: a fast sequential generator for GA mutation,
 *    K-means initialization, neural-net weight init, etc.
 *  - stateless hash-based draws (hashMix / hashToUnitFloat): used by the
 *    activity engine so that the toggle bit of signal j at cycle i is a
 *    pure function of (design seed, j, i, activity). This is what makes
 *    toggle traces bit-reproducible regardless of the order or subset of
 *    signals evaluated — the property the emulator-assisted flow relies
 *    on (tracing only Q proxies yields exactly the same bits as a full
 *    M-signal trace).
 */

#ifndef APOLLO_UTIL_RNG_HH
#define APOLLO_UTIL_RNG_HH

#include <cmath>
#include <cstdint>

namespace apollo {

/** SplitMix64 step; also used to seed other generators. */
constexpr uint64_t
splitMix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Mix an arbitrary 64-bit value into a well-distributed hash. */
constexpr uint64_t
hashMix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Combine two hash words (order-sensitive). */
constexpr uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return hashMix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/** Map a hash word to a float uniform in [0, 1). */
constexpr float
hashToUnitFloat(uint64_t h)
{
    // Use the top 24 bits for a dense mantissa.
    return static_cast<float>(h >> 40) * (1.0f / 16777216.0f);
}

/**
 * xoshiro256** by Blackman & Vigna: small, fast, high-quality sequential
 * PRNG. Satisfies UniformRandomBitGenerator.
 */
class Xoshiro256StarStar
{
  public:
    using result_type = uint64_t;

    explicit Xoshiro256StarStar(uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [0, 1). */
    float nextFloat() { return static_cast<float>(nextDouble()); }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for our non-cryptographic use.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>((*this)()) * bound) >> 64);
    }

    /** Uniform double in [lo, hi). */
    double
    nextRange(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Standard normal draw (Box-Muller, one value per call). */
    double
    nextGaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = nextDouble();
        const double u2 = nextDouble();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        constexpr double twoPi = 6.283185307179586;
        spare_ = mag * std::sin(twoPi * u2);
        haveSpare_ = true;
        return mag * std::cos(twoPi * u2);
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace apollo

#endif // APOLLO_UTIL_RNG_HH
