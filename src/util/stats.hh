/**
 * @file
 * Small streaming statistics helpers (Welford mean/variance, min/max).
 */

#ifndef APOLLO_UTIL_STATS_HH
#define APOLLO_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace apollo {

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    void
    add(double x)
    {
        n_++;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace apollo

#endif // APOLLO_UTIL_STATS_HH
