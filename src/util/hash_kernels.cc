#include "util/hash_kernels.hh"

#include <cstdlib>

#include "util/rng.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#define APOLLO_HAVE_AVX512_HASH 1
#include <immintrin.h>
#endif

namespace apollo::hashkernels {

void
unitDrawsPortable(uint64_t seed, uint64_t cycle0, size_t n, float *out)
{
    for (size_t k = 0; k < n; ++k)
        out[k] = hashToUnitFloat(hashCombine(seed, cycle0 + k));
}

void
unitDrawsAt(uint64_t seed, const uint64_t *cycles, size_t n, float *out)
{
    for (size_t k = 0; k < n; ++k)
        out[k] = hashToUnitFloat(hashCombine(seed, cycles[k]));
}

#ifdef APOLLO_HAVE_AVX512_HASH

namespace {

__attribute__((target("avx512f,avx512dq"))) void
unitDrawsAvx512(uint64_t seed, uint64_t cycle0, size_t n, float *out)
{
    // hashCombine(seed, c) = hashMix(seed ^ (c + K)) with the
    // seed-derived constant K folded once; hashMix is three xor-shift /
    // 64-bit-multiply rounds, identical lane-wise to the scalar code.
    const uint64_t add_k = 0x9e3779b97f4a7c15ULL + (seed << 6) +
                           (seed >> 2);
    const __m512i vseed = _mm512_set1_epi64(static_cast<long long>(seed));
    const __m512i vaddk =
        _mm512_set1_epi64(static_cast<long long>(add_k));
    const __m512i m1 =
        _mm512_set1_epi64(static_cast<long long>(0xff51afd7ed558ccdULL));
    const __m512i m2 =
        _mm512_set1_epi64(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
    const __m512i step = _mm512_set1_epi64(8);
    const __m256 scale = _mm256_set1_ps(1.0f / 16777216.0f);

    __m512i c = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(cycle0)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));

    size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i x =
            _mm512_xor_si512(vseed, _mm512_add_epi64(c, vaddk));
        x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
        x = _mm512_mullo_epi64(x, m1);
        x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
        x = _mm512_mullo_epi64(x, m2);
        x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
        // Top 24 bits -> exact float in [0, 1): values < 2^24 convert
        // exactly and the scale is a power of two.
        const __m256 f = _mm256_mul_ps(
            _mm512_cvtepu64_ps(_mm512_srli_epi64(x, 40)), scale);
        _mm256_storeu_ps(out + k, f);
        c = _mm512_add_epi64(c, step);
    }
    if (k < n)
        unitDrawsPortable(seed, cycle0 + k, n - k, out + k);
}

} // namespace

#endif // APOLLO_HAVE_AVX512_HASH

namespace {

bool
detectAvx512()
{
#ifdef APOLLO_HAVE_AVX512_HASH
    const char *off = std::getenv("APOLLO_NO_AVX512");
    if (off && off[0] == '1')
        return false;
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
#else
    return false;
#endif
}

const bool kUseAvx512 = detectAvx512();

} // namespace

bool
avx512Enabled()
{
    return kUseAvx512;
}

#ifdef APOLLO_HAVE_AVX512_HASH
const UnitDrawFn unitDraws = kUseAvx512 ? unitDrawsAvx512
                                        : unitDrawsPortable;
#else
const UnitDrawFn unitDraws = unitDrawsPortable;
#endif

} // namespace apollo::hashkernels
