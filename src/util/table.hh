/**
 * @file
 * Plain-text table rendering and CSV export for benchmark harnesses.
 * Every bench binary prints paper-style rows through TablePrinter so the
 * reproduced tables/figures are easy to diff against the paper.
 */

#ifndef APOLLO_UTIL_TABLE_HH
#define APOLLO_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace apollo {

/** Accumulates rows of string cells and renders an aligned table. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Format helpers for numeric cells. */
    static std::string num(double v, int precision = 3);
    static std::string percent(double fraction, int precision = 2);
    static std::string integer(long long v);

    /** Render the aligned table to @p os. */
    void render(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void renderCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace apollo

#endif // APOLLO_UTIL_TABLE_HH
