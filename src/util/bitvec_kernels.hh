/**
 * @file
 * Packed-bit column kernels behind BitColumnMatrix::dotColumn /
 * axpyColumn, with runtime CPU dispatch.
 *
 * Two implementations exist:
 *  - portable: word-at-a-time scalar code (all-ones fast path +
 *    countr_zero walk) that runs on any x86-64 / aarch64;
 *  - avx512: AVX-512 masked loads/stores — a 64-bit toggle word is
 *    exactly four __mmask16 lane masks, so a column dot becomes four
 *    masked vector loads per word with no per-bit work at all. Sparse
 *    words (few set bits) still take the countr_zero walk, chosen per
 *    word by popcount.
 *
 * The dispatch pointers resolve once at static initialization from
 * __builtin_cpu_supports (overridable with APOLLO_NO_AVX512=1 for
 * debugging/regression runs). Both implementations are exported so
 * tests can compare them on any machine.
 *
 * Contract shared by all kernels: bits at positions >= nrows in the
 * last word are zero (BitColumnMatrix maintains this), so the vector
 * paths may process the trailing word with masked lanes instead of a
 * scalar tail loop. dot accumulates in double; axpy performs exactly
 * one float add per set bit, so every implementation produces
 * bit-identical axpy results.
 */

#ifndef APOLLO_UTIL_BITVEC_KERNELS_HH
#define APOLLO_UTIL_BITVEC_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace apollo::bitkernels {

/** dot: sum of dense[row] over set bits; accumulates in double. */
using DotFn = double (*)(const uint64_t *words, size_t nwords,
                         size_t nrows, const float *dense);
/** axpy: dense[row] += delta over set bits. */
using AxpyFn = void (*)(const uint64_t *words, size_t nwords, size_t nrows,
                        float delta, float *dense);

double dotWordsPortable(const uint64_t *words, size_t nwords, size_t nrows,
                        const float *dense);
void axpyWordsPortable(const uint64_t *words, size_t nwords, size_t nrows,
                       float delta, float *dense);

/** True when the AVX-512 kernels are compiled in and the CPU + the
 *  APOLLO_NO_AVX512 override allow them. */
bool avx512Enabled();

/** Best available implementations, resolved once at load time. */
extern const DotFn dotWords;
extern const AxpyFn axpyWords;

/**
 * Approximate dot for bounded-error passes: accumulates dense words in
 * float (about 2x faster than dotWords on AVX-512 — no widening), with
 * absolute error at most kDotFastRelErr * ||x_col|| * ||dense||. Sparse
 * words still accumulate in double. Resolves to dotWords (exact) when
 * the AVX-512 kernels are unavailable, so the error bound always
 * holds. Callers that make exact decisions must recompute with
 * dotWords when the result lies within the error band of their
 * threshold.
 */
extern const DotFn dotWordsFast;

/**
 * Guaranteed relative error coefficient of dotWordsFast: the float
 * accumulation chains are at most a few thousand adds, giving a true
 * worst case near 1e-5 of sum_i |x_i * dense_i| <= ||x|| * ||dense||
 * (Cauchy-Schwarz); 1e-4 leaves an order of magnitude of slack.
 */
inline constexpr double kDotFastRelErr = 1e-4;

} // namespace apollo::bitkernels

#endif // APOLLO_UTIL_BITVEC_KERNELS_HH
