#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace apollo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    APOLLO_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    APOLLO_REQUIRE(cells.size() == headers_.size(),
                   "row arity ", cells.size(), " != header arity ",
                   headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
TablePrinter::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

void
TablePrinter::render(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        os << "| ";
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
            os << (c + 1 < row.size() ? " | " : " |\n");
        }
    };

    emit_row(headers_);
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-')
           << (c + 1 < widths.size() ? "|" : "|\n");
    for (const auto &row : rows_)
        emit_row(row);
}

void
TablePrinter::renderCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 < row.size() ? "," : "\n");
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace apollo
