/**
 * @file
 * Status / StatusOr<T>: recoverable-error returns for the data-ingestion
 * and streaming layers.
 *
 * The library keeps two error regimes:
 *  - programming errors and invalid configuration use
 *    APOLLO_REQUIRE/fatal() (throwing FatalError), as before;
 *  - *data* errors — malformed trace files, truncated streams, I/O
 *    failures — are expected at production scale and are returned as
 *    values, so a server ingesting thousands of traces can reject one
 *    bad artifact without unwinding. The streaming pipeline
 *    (trace/stream_reader.hh, flow/stream_engine.hh) and the try*
 *    variants of the dataset/VCD loaders use these types uniformly.
 */

#ifndef APOLLO_UTIL_STATUS_HH
#define APOLLO_UTIL_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace apollo {

/** Machine-inspectable error category. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    /** Caller passed an argument the callee cannot serve. */
    InvalidArgument,
    /** Input data is malformed (bad magic, corrupt structure). */
    ParseError,
    /** The underlying stream/file failed or ended prematurely. */
    IoError,
    /** A bound (index, size, width) was exceeded. */
    OutOfRange,
    /** A sink or callback asked the pipeline to stop. */
    Cancelled,
};

/** Human-readable name of a status code. */
const char *statusCodeName(StatusCode code);

/** A success-or-error value; default-constructed Status is OK. */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    static Status okStatus() { return Status(); }

    template <typename... Args>
    static Status
    invalidArgument(const Args &...args)
    {
        return Status(StatusCode::InvalidArgument,
                      detail::formatMessage(args...));
    }

    template <typename... Args>
    static Status
    parseError(const Args &...args)
    {
        return Status(StatusCode::ParseError,
                      detail::formatMessage(args...));
    }

    template <typename... Args>
    static Status
    ioError(const Args &...args)
    {
        return Status(StatusCode::IoError,
                      detail::formatMessage(args...));
    }

    template <typename... Args>
    static Status
    outOfRange(const Args &...args)
    {
        return Status(StatusCode::OutOfRange,
                      detail::formatMessage(args...));
    }

    template <typename... Args>
    static Status
    cancelled(const Args &...args)
    {
        return Status(StatusCode::Cancelled,
                      detail::formatMessage(args...));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "<code>: <message>". */
    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

    /** Throw FatalError if not OK (bridge into the throwing regime). */
    void
    orFatal() const
    {
        if (!ok())
            fatal(toString());
    }

  private:
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::InvalidArgument: return "invalid argument";
      case StatusCode::ParseError: return "parse error";
      case StatusCode::IoError: return "io error";
      case StatusCode::OutOfRange: return "out of range";
      case StatusCode::Cancelled: return "cancelled";
    }
    return "unknown";
}

/**
 * Either a value or a non-OK Status (expected-style). Access the value
 * only after checking ok(); value() on an error is a programming error
 * and throws FatalError.
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    /** Implicit from an error Status (must not be OK). */
    StatusOr(Status status) : status_(std::move(status))
    {
        APOLLO_REQUIRE(!status_.ok(),
                       "OK status used to construct StatusOr without a "
                       "value");
    }

    /** Implicit from a value. */
    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    T &
    value()
    {
        APOLLO_REQUIRE(ok(), "StatusOr has no value: ",
                       status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        APOLLO_REQUIRE(ok(), "StatusOr has no value: ",
                       status_.toString());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace apollo

#endif // APOLLO_UTIL_STATUS_HH
