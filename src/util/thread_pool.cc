#include "util/thread_pool.hh"

#include <algorithm>
#include <cstdint>

namespace apollo {

ThreadPool::ThreadPool(size_t n_threads)
{
    size_t n = n_threads ? n_threads : std::thread::hardware_concurrency();
    n = std::max<size_t>(1, n);
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_generation = 0;
    for (;;) {
        Task *task = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                return shutdown_ || (task_ && generation_ != seen_generation);
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            task = task_;
        }
        // Pull chunks until the task is drained.
        for (;;) {
            size_t begin;
            size_t end;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!task_ || task != task_ || task->next >= task->n)
                    break;
                begin = task->next;
                end = std::min(task->n, begin + task->chunk);
                task->next = end;
            }
            std::exception_ptr error;
            try {
                (*task->body)(begin, end);
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (error && !task->error)
                    task->error = error;
                task->remainingChunks--;
                if (task->remainingChunks == 0)
                    doneCv_.notify_all();
            }
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    const size_t n_workers = workers_.size();
    if (n_workers <= 1 || n < 2) {
        body(0, n);
        return;
    }

    Task task;
    task.body = &body;
    task.n = n;
    // ~4 chunks per worker for load balance, at least 1 element each.
    task.chunk = std::max<size_t>(1, n / (n_workers * 4));
    task.remainingChunks = (n + task.chunk - 1) / task.chunk;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = &task;
        generation_++;
    }
    workCv_.notify_all();

    {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&] { return task.remainingChunks == 0; });
        task_ = nullptr;
    }
    if (task.error)
        std::rethrow_exception(task.error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
parallelFor(size_t n, const std::function<void(size_t, size_t)> &body)
{
    ThreadPool::global().parallelFor(n, body);
}

} // namespace apollo
