#include "util/bitvec.hh"

namespace apollo {

void
BitColumnMatrix::dotColumns(std::span<const uint32_t> cols,
                            const float *dense, double *out) const
{
    for (size_t i = 0; i < cols.size(); ++i)
        out[i] = dotColumn(cols[i], dense);
}

BitColumnMatrix
BitColumnMatrix::selectColumns(std::span<const uint32_t> selected) const
{
    BitColumnMatrix out(rows_, selected.size());
    for (size_t j = 0; j < selected.size(); ++j) {
        APOLLO_REQUIRE(selected[j] < cols_,
                       "selected column ", selected[j], " out of range ",
                       cols_);
        const uint64_t *src = colWords(selected[j]);
        uint64_t *dst = out.colWordsMutable(j);
        for (size_t k = 0; k < wordsPerCol_; ++k)
            dst[k] = src[k];
    }
    return out;
}

void
BitColumnMatrix::sliceRowsInto(size_t first, size_t n,
                               BitColumnMatrix &out) const
{
    APOLLO_REQUIRE(first <= rows_ && n <= rows_ - first,
                   "row slice [", first, ", ", first + n,
                   ") out of range ", rows_);
    out.reset(n, cols_);
    if (n == 0)
        return;
    const size_t shift = first & 63;
    const size_t w0 = first >> 6;
    const size_t out_wpc = out.wordsPerCol_;
    const size_t src_words = wordsPerCol_ - w0;
    const size_t tail = n & 63;
    const uint64_t tail_mask = tail ? (1ULL << tail) - 1 : ~0ULL;
    for (size_t c = 0; c < cols_; ++c) {
        const uint64_t *src = colWords(c) + w0;
        uint64_t *dst = out.colWordsMutable(c);
        if (shift == 0) {
            for (size_t k = 0; k < out_wpc; ++k)
                dst[k] = src[k];
        } else {
            for (size_t k = 0; k < out_wpc; ++k) {
                uint64_t w = src[k] >> shift;
                if (k + 1 < src_words)
                    w |= src[k + 1] << (64 - shift);
                dst[k] = w;
            }
        }
        dst[out_wpc - 1] &= tail_mask;
    }
}

} // namespace apollo
