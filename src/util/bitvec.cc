#include "util/bitvec.hh"

namespace apollo {

void
BitColumnMatrix::dotColumns(std::span<const uint32_t> cols,
                            const float *dense, double *out) const
{
    for (size_t i = 0; i < cols.size(); ++i)
        out[i] = dotColumn(cols[i], dense);
}

BitColumnMatrix
BitColumnMatrix::selectColumns(const std::vector<uint32_t> &selected) const
{
    BitColumnMatrix out(rows_, selected.size());
    for (size_t j = 0; j < selected.size(); ++j) {
        APOLLO_REQUIRE(selected[j] < cols_,
                       "selected column ", selected[j], " out of range ",
                       cols_);
        const uint64_t *src = colWords(selected[j]);
        uint64_t *dst = out.colWordsMutable(j);
        for (size_t k = 0; k < wordsPerCol_; ++k)
            dst[k] = src[k];
    }
    return out;
}

} // namespace apollo
