#include "util/bitvec_kernels.hh"

#include <bit>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#define APOLLO_HAVE_AVX512_KERNELS 1
#include <immintrin.h>
#endif

namespace apollo::bitkernels {

namespace {

/**
 * Per-word density threshold for the vector paths: below ~8 set bits a
 * countr_zero walk (one add per set bit) beats the fixed-cost masked
 * vector sequence; above it the vector path wins by up to 8x.
 */
constexpr int kVectorMinBits = 8;

} // namespace

double
dotWordsPortable(const uint64_t *words, size_t nwords, size_t nrows,
                 const float *dense)
{
    const size_t full = nrows >> 6;
    double acc = 0.0;
    for (size_t k = 0; k < full; ++k) {
        uint64_t bits = words[k];
        if (!bits)
            continue;
        const float *v = dense + (k << 6);
        if (bits == ~0ULL) {
            // Double partial sums: keeps the portable kernel in the
            // same precision class as the AVX-512 kernel, so solver
            // decisions (certification slack, KKT checks) are equally
            // trustworthy on every dispatch path.
            double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
            for (int i = 0; i < 64; i += 4) {
                s0 += v[i + 0];
                s1 += v[i + 1];
                s2 += v[i + 2];
                s3 += v[i + 3];
            }
            acc += (s0 + s1) + (s2 + s3);
        } else {
            double s = 0.0;
            while (bits) {
                s += v[std::countr_zero(bits)];
                bits &= bits - 1;
            }
            acc += s;
        }
    }
    if (nrows & 63) {
        uint64_t bits = words[full];
        const float *v = dense + (full << 6);
        while (bits) {
            acc += v[std::countr_zero(bits)];
            bits &= bits - 1;
        }
    }
    (void)nwords;
    return acc;
}

void
axpyWordsPortable(const uint64_t *words, size_t nwords, size_t nrows,
                  float delta, float *dense)
{
    const size_t full = nrows >> 6;
    for (size_t k = 0; k < full; ++k) {
        uint64_t bits = words[k];
        if (!bits)
            continue;
        float *v = dense + (k << 6);
        if (bits == ~0ULL) {
            for (int i = 0; i < 64; ++i)
                v[i] += delta;
        } else {
            while (bits) {
                v[std::countr_zero(bits)] += delta;
                bits &= bits - 1;
            }
        }
    }
    if (nrows & 63) {
        uint64_t bits = words[full];
        float *v = dense + (full << 6);
        while (bits) {
            v[std::countr_zero(bits)] += delta;
            bits &= bits - 1;
        }
    }
    (void)nwords;
}

#ifdef APOLLO_HAVE_AVX512_KERNELS

/**
 * AVX-512 dot: each 16-bit slice of the word masks one zero-filling
 * vector load (inactive lanes never fault, so the trailing partial
 * word needs no special case given the trailing-zero contract). The
 * masked floats are widened to double before accumulating, keeping
 * the same precision class as the portable kernel so solver decisions
 * (support entry, KKT checks) stay numerically stable.
 */
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) double
dotWordsAvx512(const uint64_t *words, size_t nwords, size_t nrows,
               const float *dense)
{
    __m512d a0 = _mm512_setzero_pd();
    __m512d a1 = _mm512_setzero_pd();
    __m512d a2 = _mm512_setzero_pd();
    __m512d a3 = _mm512_setzero_pd();
    double sparse = 0.0;
    for (size_t k = 0; k < nwords; ++k) {
        uint64_t bits = words[k];
        if (!bits)
            continue;
        const float *v = dense + (k << 6);
        if (std::popcount(bits) >= kVectorMinBits) {
            const __m512 f0 =
                _mm512_maskz_loadu_ps(static_cast<__mmask16>(bits), v);
            const __m512 f1 = _mm512_maskz_loadu_ps(
                static_cast<__mmask16>(bits >> 16), v + 16);
            const __m512 f2 = _mm512_maskz_loadu_ps(
                static_cast<__mmask16>(bits >> 32), v + 32);
            const __m512 f3 = _mm512_maskz_loadu_ps(
                static_cast<__mmask16>(bits >> 48), v + 48);
            a0 = _mm512_add_pd(
                a0, _mm512_cvtps_pd(_mm512_castps512_ps256(f0)));
            a1 = _mm512_add_pd(
                a1, _mm512_cvtps_pd(_mm512_extractf32x8_ps(f0, 1)));
            a2 = _mm512_add_pd(
                a2, _mm512_cvtps_pd(_mm512_castps512_ps256(f1)));
            a3 = _mm512_add_pd(
                a3, _mm512_cvtps_pd(_mm512_extractf32x8_ps(f1, 1)));
            a0 = _mm512_add_pd(
                a0, _mm512_cvtps_pd(_mm512_castps512_ps256(f2)));
            a1 = _mm512_add_pd(
                a1, _mm512_cvtps_pd(_mm512_extractf32x8_ps(f2, 1)));
            a2 = _mm512_add_pd(
                a2, _mm512_cvtps_pd(_mm512_castps512_ps256(f3)));
            a3 = _mm512_add_pd(
                a3, _mm512_cvtps_pd(_mm512_extractf32x8_ps(f3, 1)));
        } else {
            double s = 0.0;
            while (bits) {
                s += v[std::countr_zero(bits)];
                bits &= bits - 1;
            }
            sparse += s;
        }
    }
    (void)nrows;
    return sparse + _mm512_reduce_add_pd(_mm512_add_pd(
                        _mm512_add_pd(a0, a1), _mm512_add_pd(a2, a3)));
}

/**
 * AVX-512 dot with float accumulation: same masked-load structure as
 * dotWordsAvx512 but no widening to double, which roughly doubles
 * throughput. Error stays within kDotFastRelErr (each of the 64 float
 * lanes sums ~nwords values; the worst-case relative error of that
 * chain is orders of magnitude below 1e-4).
 */
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) double
dotWordsAvx512Fast(const uint64_t *words, size_t nwords, size_t nrows,
                   const float *dense)
{
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    double sparse = 0.0;
    for (size_t k = 0; k < nwords; ++k) {
        uint64_t bits = words[k];
        if (!bits)
            continue;
        const float *v = dense + (k << 6);
        if (std::popcount(bits) >= kVectorMinBits) {
            a0 = _mm512_add_ps(
                a0,
                _mm512_maskz_loadu_ps(static_cast<__mmask16>(bits), v));
            a1 = _mm512_add_ps(
                a1, _mm512_maskz_loadu_ps(
                        static_cast<__mmask16>(bits >> 16), v + 16));
            a2 = _mm512_add_ps(
                a2, _mm512_maskz_loadu_ps(
                        static_cast<__mmask16>(bits >> 32), v + 32));
            a3 = _mm512_add_ps(
                a3, _mm512_maskz_loadu_ps(
                        static_cast<__mmask16>(bits >> 48), v + 48));
        } else {
            double s = 0.0;
            while (bits) {
                s += v[std::countr_zero(bits)];
                bits &= bits - 1;
            }
            sparse += s;
        }
    }
    (void)nrows;
    return sparse +
           static_cast<double>(_mm512_reduce_add_ps(_mm512_add_ps(
               _mm512_add_ps(a0, a1), _mm512_add_ps(a2, a3))));
}

/**
 * AVX-512 axpy: read-modify-masked-write per 16-lane slice. Every set
 * bit receives exactly one float add, identical to the scalar kernel,
 * so results are bit-for-bit the same on every path.
 */
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) void
axpyWordsAvx512(const uint64_t *words, size_t nwords, size_t nrows,
                float delta, float *dense)
{
    const __m512 d = _mm512_set1_ps(delta);
    for (size_t k = 0; k < nwords; ++k) {
        uint64_t bits = words[k];
        if (!bits)
            continue;
        float *v = dense + (k << 6);
        if (std::popcount(bits) >= kVectorMinBits) {
            // Loads are masked as well as stores: the tail word of an
            // unpadded dense buffer must not be read past its end.
            const auto m0 = static_cast<__mmask16>(bits);
            const auto m1 = static_cast<__mmask16>(bits >> 16);
            const auto m2 = static_cast<__mmask16>(bits >> 32);
            const auto m3 = static_cast<__mmask16>(bits >> 48);
            _mm512_mask_storeu_ps(
                v, m0, _mm512_add_ps(_mm512_maskz_loadu_ps(m0, v), d));
            _mm512_mask_storeu_ps(
                v + 16, m1,
                _mm512_add_ps(_mm512_maskz_loadu_ps(m1, v + 16), d));
            _mm512_mask_storeu_ps(
                v + 32, m2,
                _mm512_add_ps(_mm512_maskz_loadu_ps(m2, v + 32), d));
            _mm512_mask_storeu_ps(
                v + 48, m3,
                _mm512_add_ps(_mm512_maskz_loadu_ps(m3, v + 48), d));
        } else {
            while (bits) {
                v[std::countr_zero(bits)] += delta;
                bits &= bits - 1;
            }
        }
    }
    (void)nrows;
}

#endif // APOLLO_HAVE_AVX512_KERNELS

namespace {

bool
detectAvx512()
{
#ifdef APOLLO_HAVE_AVX512_KERNELS
    if (const char *env = std::getenv("APOLLO_NO_AVX512"))
        if (env[0] != '\0' && env[0] != '0')
            return false;
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl");
#else
    return false;
#endif
}

const bool kUseAvx512 = detectAvx512();

} // namespace

bool
avx512Enabled()
{
    return kUseAvx512;
}

#ifdef APOLLO_HAVE_AVX512_KERNELS
const DotFn dotWords = kUseAvx512 ? dotWordsAvx512 : dotWordsPortable;
const AxpyFn axpyWords = kUseAvx512 ? axpyWordsAvx512 : axpyWordsPortable;
const DotFn dotWordsFast =
    kUseAvx512 ? dotWordsAvx512Fast : dotWordsPortable;
#else
const DotFn dotWords = dotWordsPortable;
const AxpyFn axpyWords = axpyWordsPortable;
const DotFn dotWordsFast = dotWordsPortable;
#endif

} // namespace apollo::bitkernels
