/**
 * @file
 * Packed bit containers used for toggle traces and training features.
 *
 * BitVector       — a resizable vector of bits packed into 64-bit words.
 * BitColumnMatrix — an N-row, M-column binary matrix stored column-major
 *                   (each column contiguous in packed words). This is the
 *                   layout coordinate-descent solvers want: all cycles of
 *                   one signal are adjacent, and dot products against a
 *                   dense residual iterate only set bits.
 */

#ifndef APOLLO_UTIL_BITVEC_HH
#define APOLLO_UTIL_BITVEC_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/bitvec_kernels.hh"
#include "util/logging.hh"

namespace apollo {

/**
 * The packed zero-tail rule, stated once: a packed bit span of n
 * valid bits keeps every bit at position >= n in its last word zero.
 * All word-at-a-time kernels (bitvec_kernels, popcnt_kernels) rely on
 * it, producers (set()/setBit(), sliceRowsInto, the toggle-column
 * generator) maintain it, and the trace decoder rejects input that
 * violates it. This helper clears the tail of a word array holding
 * @p nbits valid bits.
 */
inline void
maskTailWords(uint64_t *words, size_t nwords, size_t nbits)
{
    if (nwords && (nbits & 63))
        words[nwords - 1] &= (uint64_t{1} << (nbits & 63)) - 1;
}

/** A resizable packed bit vector. */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with @p n bits, all cleared. */
    explicit BitVector(size_t n) { resize(n); }

    /** Number of bits. */
    size_t size() const { return size_; }

    /** Resize to @p n bits; new bits are cleared. */
    void
    resize(size_t n)
    {
        size_ = n;
        words_.assign((n + 63) / 64, 0);
    }

    /** Read bit @p i. */
    bool
    get(size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1ULL;
    }

    /** Set bit @p i to @p v. */
    void
    set(size_t i, bool v)
    {
        const uint64_t mask = 1ULL << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /** Set bit @p i to 1 (fast path used by trace writers). */
    void setBit(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }

    /** Count of set bits. */
    size_t
    popcount() const
    {
        size_t total = 0;
        for (uint64_t w : words_)
            total += static_cast<size_t>(std::popcount(w));
        return total;
    }

    /** Raw packed words (little-endian bit order within a word). */
    const std::vector<uint64_t> &words() const { return words_; }
    std::vector<uint64_t> &words() { return words_; }

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Column-major packed binary matrix.
 *
 * Rows are cycles, columns are signals. Each column occupies
 * wordsPerCol() consecutive 64-bit words.
 */
class BitColumnMatrix
{
  public:
    BitColumnMatrix() = default;

    /** Construct an @p n_rows x @p n_cols matrix of zeros. */
    BitColumnMatrix(size_t n_rows, size_t n_cols) { reset(n_rows, n_cols); }

    /** Reinitialize to an all-zero @p n_rows x @p n_cols matrix. */
    void
    reset(size_t n_rows, size_t n_cols)
    {
        rows_ = n_rows;
        cols_ = n_cols;
        wordsPerCol_ = (n_rows + 63) / 64;
        words_.assign(wordsPerCol_ * n_cols, 0);
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t wordsPerCol() const { return wordsPerCol_; }

    /** Approximate memory footprint in bytes. */
    size_t byteSize() const { return words_.size() * sizeof(uint64_t); }

    bool
    get(size_t row, size_t col) const
    {
        const uint64_t w = words_[col * wordsPerCol_ + (row >> 6)];
        return (w >> (row & 63)) & 1ULL;
    }

    void
    set(size_t row, size_t col, bool v)
    {
        uint64_t &w = words_[col * wordsPerCol_ + (row >> 6)];
        const uint64_t mask = 1ULL << (row & 63);
        if (v)
            w |= mask;
        else
            w &= ~mask;
    }

    void
    setBit(size_t row, size_t col)
    {
        words_[col * wordsPerCol_ + (row >> 6)] |= 1ULL << (row & 63);
    }

    /** Pointer to the first packed word of column @p col. */
    const uint64_t *
    colWords(size_t col) const
    {
        return words_.data() + col * wordsPerCol_;
    }

    uint64_t *
    colWordsMutable(size_t col)
    {
        return words_.data() + col * wordsPerCol_;
    }

    /** Number of set bits in column @p col. */
    size_t
    colPopcount(size_t col) const
    {
        const uint64_t *w = colWords(col);
        size_t total = 0;
        for (size_t k = 0; k < wordsPerCol_; ++k)
            total += static_cast<size_t>(std::popcount(w[k]));
        return total;
    }

    /**
     * Invoke @p fn(row) for every set bit in column @p col, in
     * increasing row order.
     */
    template <typename Fn>
    void
    forEachSetBit(size_t col, Fn &&fn) const
    {
        const uint64_t *w = colWords(col);
        for (size_t k = 0; k < wordsPerCol_; ++k) {
            uint64_t bits = w[k];
            while (bits) {
                const int b = std::countr_zero(bits);
                fn(k * 64 + static_cast<size_t>(b));
                bits &= bits - 1;
            }
        }
    }

    /**
     * Dot product of column @p col against a dense float vector,
     * through the word-at-a-time kernels in util/bitvec_kernels.hh
     * (AVX-512 masked loads where the CPU has them, an all-ones fast
     * path + countr_zero walk otherwise). Accumulates in double.
     * Trailing bits past rows() must be zero (set()/setBit() never
     * touch them); the kernels rely on that contract.
     */
    double
    dotColumn(size_t col, const float *dense) const
    {
        return bitkernels::dotWords(colWords(col), wordsPerCol_, rows_,
                                    dense);
    }

    /**
     * Reference per-bit dot product (ascending-row double
     * accumulation). Kept for equivalence tests and as the
     * all-optimizations-off baseline in bench_perf_solver; also the
     * accumulation order contract for dotColumns().
     */
    double
    dotColumnScalar(size_t col, const float *dense) const
    {
        double acc = 0.0;
        forEachSetBit(col, [&](size_t row) { acc += dense[row]; });
        return acc;
    }

    /**
     * Batched dot products: out[k] = <column cols[k], dense>. One
     * entry point for a whole gradient pass, so callers dispatch (and
     * parallel chunks virtualize) once per block instead of once per
     * column. Each output depends only on its own column — computed by
     * dotColumn() — so results do not depend on how a caller chunks
     * @p cols (the parallel gradient passes rely on this). A shared
     * union walk over column blocks was measured and rejected: on
     * sparse toggle data the OR of several columns has nearly disjoint
     * bits, so batching multiplies per-bit work without amortizing
     * residual loads.
     */
    void dotColumns(std::span<const uint32_t> cols, const float *dense,
                    double *out) const;

    /**
     * Batched approximate dots through bitkernels::dotWordsFast (float
     * accumulation, error within bitkernels::kDotFastRelErr *
     * ||x_col|| * ||dense||). For screening/KKT passes that re-check
     * borderline results exactly.
     */
    void
    dotColumnsFast(std::span<const uint32_t> cols, const float *dense,
                   double *out) const
    {
        for (size_t k = 0; k < cols.size(); ++k)
            out[k] = bitkernels::dotWordsFast(colWords(cols[k]),
                                              wordsPerCol_, rows_, dense);
    }

    /**
     * dense[row] += delta for every set bit in column @p col (axpy with
     * a binary column). Used for residual updates in coordinate
     * descent. Every kernel implementation performs exactly one float
     * add per set bit, so results are bit-identical across CPUs.
     */
    void
    axpyColumn(size_t col, float delta, float *dense) const
    {
        bitkernels::axpyWords(colWords(col), wordsPerCol_, rows_, delta,
                              dense);
    }

    /** Reference per-bit axpy (baseline counterpart of axpyColumn). */
    void
    axpyColumnScalar(size_t col, float delta, float *dense) const
    {
        forEachSetBit(col, [&](size_t row) { dense[row] += delta; });
    }

    /**
     * Integer axpy: acc[row] += delta for every set bit in column
     * @p col. The quantized streaming engine evaluates the OPM adder
     * tree column-wise with this — O(set bits) total instead of the
     * O(rows x cols) row gather of OpmSimulator::simulate() — and
     * integer addition is exact, so the per-cycle sums match
     * OpmSimulator::cycleSum() bit for bit in any order.
     */
    void
    axpyColumnI64(size_t col, int64_t delta, int64_t *acc) const
    {
        const uint64_t *w = colWords(col);
        for (size_t k = 0; k < wordsPerCol_; ++k) {
            uint64_t bits = w[k];
            while (bits) {
                const int b = std::countr_zero(bits);
                acc[k * 64 + static_cast<size_t>(b)] += delta;
                bits &= bits - 1;
            }
        }
    }

    /**
     * Build the sub-matrix containing only @p selected columns (in the
     * given order).
     */
    BitColumnMatrix selectColumns(std::span<const uint32_t> selected)
        const;
    BitColumnMatrix
    selectColumns(std::initializer_list<uint32_t> selected) const
    {
        return selectColumns(
            std::span<const uint32_t>(selected.begin(), selected.size()));
    }

    /**
     * Copy rows [first, first+n) of every column into @p out (resized
     * to n x cols()). Word-aligned when first is a multiple of 64, a
     * funnel-shift copy otherwise; trailing bits past n are cleared, so
     * the output honors the packed-kernel zero-tail contract. This is
     * the chunking primitive of the streaming readers
     * (trace/stream_reader.hh): re-slicing never changes bit values, so
     * chunked inference stays bit-identical to the batch path.
     */
    void sliceRowsInto(size_t first, size_t n, BitColumnMatrix &out)
        const;

    /** Convenience wrapper returning a fresh matrix. */
    BitColumnMatrix
    sliceRows(size_t first, size_t n) const
    {
        BitColumnMatrix out;
        sliceRowsInto(first, n, out);
        return out;
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t wordsPerCol_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Column-major dense matrix of small non-negative integer counts
 * (u8). Used for tau-cycle interval-aggregated features, where each entry
 * is the number of toggles of a signal within a tau-cycle interval
 * (0..tau, tau <= 255).
 */
class CountColumnMatrix
{
  public:
    CountColumnMatrix() = default;

    CountColumnMatrix(size_t n_rows, size_t n_cols)
        : rows_(n_rows), cols_(n_cols), data_(n_rows * n_cols, 0)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t byteSize() const { return data_.size(); }

    uint8_t get(size_t row, size_t col) const
    {
        return data_[col * rows_ + row];
    }

    void set(size_t row, size_t col, uint8_t v)
    {
        data_[col * rows_ + row] = v;
    }

    const uint8_t *colData(size_t col) const
    {
        return data_.data() + col * rows_;
    }

    /** Dot product of column @p col against a dense float vector. */
    double
    dotColumn(size_t col, const float *dense) const
    {
        const uint8_t *c = colData(col);
        double acc = 0.0;
        for (size_t row = 0; row < rows_; ++row) {
            if (c[row])
                acc += static_cast<double>(c[row]) * dense[row];
        }
        return acc;
    }

    /** dense[row] += delta * col[row] for all rows. */
    void
    axpyColumn(size_t col, float delta, float *dense) const
    {
        const uint8_t *c = colData(col);
        for (size_t row = 0; row < rows_; ++row) {
            if (c[row])
                dense[row] += delta * static_cast<float>(c[row]);
        }
    }

    /** Sum of squares of column @p col. */
    double
    colSumSquares(size_t col) const
    {
        const uint8_t *c = colData(col);
        double acc = 0.0;
        for (size_t row = 0; row < rows_; ++row)
            acc += static_cast<double>(c[row]) * c[row];
        return acc;
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint8_t> data_;
};

} // namespace apollo

#endif // APOLLO_UTIL_BITVEC_HH
