/**
 * @file
 * Runtime-dispatched popcount kernels for the bit-parallel streaming
 * inference path (the counterpart of util/bitvec_kernels.hh for the
 * quantized engine): count set bits over packed 64-cycle words and
 * accumulate weighted per-window counts without ever materializing
 * per-cycle rows.
 *
 * Three implementations share one contract and produce identical
 * results (popcounts are exact integers, so unlike the float kernels
 * there is no accumulation-order caveat):
 *
 *  - Scalar: portable std::popcount loops, no ISA assumptions.
 *  - Avx2:   hardware POPCNT for word/edge counts plus the Mula
 *            PSHUFB nibble-LUT + SAD reduction for long word runs.
 *  - Avx512: VPOPCNTQ / VPOPCNTD (AVX-512 VPOPCNTDQ) vector
 *            popcounts, including a 16-windows-at-a-time path for the
 *            hot T=32 window size.
 *
 * All kernels assume the packed zero-tail contract of
 * BitColumnMatrix: bits at positions >= nbits in the last word are
 * zero. countRange() masks its own edges and is safe regardless.
 *
 * Dispatch: kernels() returns the best table the CPU supports,
 * detected once per process. APOLLO_NO_AVX512 (nonzero) hides the
 * AVX-512 table, APOLLO_NO_AVX2 hides AVX2 as well — same convention
 * as util/bitvec_kernels.hh. Per-implementation tables stay reachable
 * through implKernels() for the bench ablation and equivalence tests.
 */

#ifndef APOLLO_UTIL_POPCNT_KERNELS_HH
#define APOLLO_UTIL_POPCNT_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace apollo::popkernels {

/** Implementation tiers, in increasing ISA requirement order. */
enum class Impl : int { Scalar = 0, Avx2 = 1, Avx512 = 2 };

inline constexpr int kImplCount = 3;

/** One implementation's entry points (function-pointer table). */
struct Kernels
{
    /** Total popcount of words[0, nwords). */
    uint64_t (*countWords)(const uint64_t *words, size_t nwords);

    /**
     * Popcount of bit positions [bit_begin, bit_end) of a packed
     * word array. Edge words are masked internally; bits outside the
     * range are never read as set, so this does not require the
     * zero-tail contract.
     */
    uint64_t (*countRange)(const uint64_t *words, size_t bit_begin,
                           size_t bit_end);

    /**
     * The bit-parallel OPM inner loop: split bits [0, nbits) into
     * T-cycle window segments — the first segment holds
     * min(nbits, T - phase0) bits (a window already phase0 cycles
     * deep), each following segment holds up to T — and add
     * weight * popcount(segment) to seg_sums[s] for each segment s.
     * Requires phase0 < T and the zero-tail contract on @p words;
     * seg_sums must hold windowSegments(nbits, T, phase0) entries.
     */
    void (*accumWindowSums)(const uint64_t *words, size_t nbits,
                            uint32_t T, uint32_t phase0, int64_t weight,
                            int64_t *seg_sums);
};

/** Number of window segments accumWindowSums() touches. */
inline size_t
windowSegments(size_t nbits, uint32_t T, uint32_t phase0)
{
    if (nbits == 0)
        return 0;
    const size_t first = nbits < T - phase0 ? nbits : T - phase0;
    return 1 + (nbits - first + T - 1) / T;
}

/** True when the CPU (and build) can run @p impl. */
bool implAvailable(Impl impl);

/** Stable lowercase name ("scalar", "avx2", "avx512"). */
const char *implName(Impl impl);

/** Entry points of @p impl; requires implAvailable(impl). */
const Kernels &implKernels(Impl impl);

/** Best available implementation after env overrides (cached). */
Impl bestImpl();

/** Entry points of bestImpl(). */
const Kernels &kernels();

} // namespace apollo::popkernels

#endif // APOLLO_UTIL_POPCNT_KERNELS_HH
