/**
 * @file
 * Batched stateless-hash draw kernels with runtime CPU dispatch.
 *
 * The activity engine consumes one hashCombine(seed, cycle) draw per
 * (signal, cycle) pair — the dominant arithmetic of toggle generation.
 * For a fixed seed the draw over a contiguous cycle range is a pure
 * elementwise function of the cycle index, so it vectorizes: the
 * AVX-512 path evaluates eight 64-bit hash lanes per iteration
 * (avx512dq supplies the 64-bit multiply), then narrows the top 24
 * bits to the unit-interval float exactly as hashToUnitFloat does.
 *
 * Contract: every implementation returns floats bit-identical to the
 * scalar hashToUnitFloat(hashCombine(seed, cycle)) — integer hashing is
 * exact on every path, the u64 -> float conversion of a value < 2^24 is
 * exact, and the final scale is a power of two. Dispatch mirrors
 * util/bitvec_kernels: resolved once at static initialization from
 * __builtin_cpu_supports, overridable with APOLLO_NO_AVX512=1.
 */

#ifndef APOLLO_UTIL_HASH_KERNELS_HH
#define APOLLO_UTIL_HASH_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace apollo::hashkernels {

/**
 * out[k] = hashToUnitFloat(hashCombine(seed, cycle0 + k)), k in [0, n).
 */
using UnitDrawFn = void (*)(uint64_t seed, uint64_t cycle0, size_t n,
                            float *out);

void unitDrawsPortable(uint64_t seed, uint64_t cycle0, size_t n,
                       float *out);

/** Same draw at arbitrary (non-contiguous) cycle keys. */
void unitDrawsAt(uint64_t seed, const uint64_t *cycles, size_t n,
                 float *out);

/** True when the AVX-512 kernel is compiled in and allowed to run. */
bool avx512Enabled();

/** Best available implementation, resolved once at load time. */
extern const UnitDrawFn unitDraws;

} // namespace apollo::hashkernels

#endif // APOLLO_UTIL_HASH_KERNELS_HH
