#include "util/popcnt_kernels.hh"

#include <bit>
#include <cstdlib>

#include "util/logging.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#define APOLLO_HAVE_X86_POPCNT_KERNELS 1
#include <immintrin.h>
#endif

namespace apollo::popkernels {

namespace {

/** Mask keeping bits [0, bit_end mod 64); all-ones when aligned. */
inline uint64_t
highEdgeMask(size_t bit_end)
{
    return (bit_end & 63) ? ((uint64_t{1} << (bit_end & 63)) - 1)
                          : ~uint64_t{0};
}

// --- Scalar (portable) --------------------------------------------------

uint64_t
countWordsScalar(const uint64_t *words, size_t nwords)
{
    uint64_t total = 0;
    for (size_t k = 0; k < nwords; ++k)
        total += static_cast<uint64_t>(std::popcount(words[k]));
    return total;
}

uint64_t
countRangeScalar(const uint64_t *words, size_t bit_begin, size_t bit_end)
{
    if (bit_begin >= bit_end)
        return 0;
    const size_t fw = bit_begin >> 6;
    const size_t lw = (bit_end - 1) >> 6;
    const uint64_t first_mask = ~uint64_t{0} << (bit_begin & 63);
    const uint64_t last_mask = highEdgeMask(bit_end);
    if (fw == lw)
        return static_cast<uint64_t>(
            std::popcount(words[fw] & first_mask & last_mask));
    uint64_t total =
        static_cast<uint64_t>(std::popcount(words[fw] & first_mask)) +
        static_cast<uint64_t>(std::popcount(words[lw] & last_mask));
    for (size_t k = fw + 1; k < lw; ++k)
        total += static_cast<uint64_t>(std::popcount(words[k]));
    return total;
}

void
accumWindowSumsScalar(const uint64_t *words, size_t nbits, uint32_t T,
                      uint32_t phase0, int64_t weight, int64_t *seg_sums)
{
    if (phase0 == 0 && T == 64) {
        // One window per word; the tail word's partial window counts
        // correctly because bits past nbits are zero.
        const size_t nwords = (nbits + 63) / 64;
        for (size_t k = 0; k < nwords; ++k)
            seg_sums[k] +=
                weight * static_cast<int64_t>(std::popcount(words[k]));
        return;
    }
    if (phase0 == 0 && T == 32) {
        const size_t nseg = (nbits + 31) / 32;
        const size_t nwords = (nbits + 63) / 64;
        for (size_t k = 0; k < nwords; ++k) {
            const uint64_t v = words[k];
            seg_sums[2 * k] += weight *
                static_cast<int64_t>(std::popcount(v & 0xffffffffULL));
            if (2 * k + 1 < nseg)
                seg_sums[2 * k + 1] +=
                    weight * static_cast<int64_t>(std::popcount(v >> 32));
        }
        return;
    }
    size_t a = 0;
    size_t s = 0;
    size_t b = nbits < T - phase0 ? nbits : T - phase0;
    while (a < nbits) {
        seg_sums[s++] +=
            weight * static_cast<int64_t>(countRangeScalar(words, a, b));
        a = b;
        b = nbits < a + T ? nbits : a + T;
    }
}

constexpr Kernels kScalarKernels = {countWordsScalar, countRangeScalar,
                                    accumWindowSumsScalar};

#if APOLLO_HAVE_X86_POPCNT_KERNELS

// --- AVX2 + hardware POPCNT --------------------------------------------

__attribute__((target("avx2,popcnt"))) uint64_t
countWordsAvx2(const uint64_t *words, size_t nwords)
{
    // Mula nibble-LUT popcount: per-byte counts via two PSHUFB table
    // lookups, reduced with SAD against zero.
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    size_t k = 0;
    for (; k + 4 <= nwords; k += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + k));
        const __m256i lo = _mm256_and_si256(v, low);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
        const __m256i cnt =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                            _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
    }
    uint64_t total =
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 0)) +
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 1)) +
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 2)) +
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 3));
    for (; k < nwords; ++k)
        total += static_cast<uint64_t>(__builtin_popcountll(words[k]));
    return total;
}

__attribute__((target("avx2,popcnt"))) uint64_t
countRangeAvx2(const uint64_t *words, size_t bit_begin, size_t bit_end)
{
    if (bit_begin >= bit_end)
        return 0;
    const size_t fw = bit_begin >> 6;
    const size_t lw = (bit_end - 1) >> 6;
    const uint64_t first_mask = ~uint64_t{0} << (bit_begin & 63);
    const uint64_t last_mask = highEdgeMask(bit_end);
    if (fw == lw)
        return static_cast<uint64_t>(
            __builtin_popcountll(words[fw] & first_mask & last_mask));
    uint64_t total =
        static_cast<uint64_t>(
            __builtin_popcountll(words[fw] & first_mask)) +
        static_cast<uint64_t>(
            __builtin_popcountll(words[lw] & last_mask));
    if (lw - fw > 1)
        total += countWordsAvx2(words + fw + 1, lw - fw - 1);
    return total;
}

__attribute__((target("avx2,popcnt"))) void
accumWindowSumsAvx2(const uint64_t *words, size_t nbits, uint32_t T,
                    uint32_t phase0, int64_t weight, int64_t *seg_sums)
{
    if (phase0 == 0 && T == 64) {
        const size_t nwords = (nbits + 63) / 64;
        for (size_t k = 0; k < nwords; ++k)
            seg_sums[k] += weight *
                static_cast<int64_t>(__builtin_popcountll(words[k]));
        return;
    }
    if (phase0 == 0 && T == 32) {
        const size_t nseg = (nbits + 31) / 32;
        const size_t nwords = (nbits + 63) / 64;
        for (size_t k = 0; k < nwords; ++k) {
            const uint64_t v = words[k];
            seg_sums[2 * k] += weight *
                static_cast<int64_t>(
                    __builtin_popcountll(v & 0xffffffffULL));
            if (2 * k + 1 < nseg)
                seg_sums[2 * k + 1] += weight *
                    static_cast<int64_t>(__builtin_popcountll(v >> 32));
        }
        return;
    }
    if (phase0 == 0 && (T & 63) == 0) {
        const size_t wpw = T / 64;
        const size_t nwords = (nbits + 63) / 64;
        size_t k = 0;
        size_t s = 0;
        while (k < nwords) {
            const size_t take = nwords - k < wpw ? nwords - k : wpw;
            seg_sums[s++] += weight *
                static_cast<int64_t>(countWordsAvx2(words + k, take));
            k += take;
        }
        return;
    }
    size_t a = 0;
    size_t s = 0;
    size_t b = nbits < T - phase0 ? nbits : T - phase0;
    while (a < nbits) {
        seg_sums[s++] +=
            weight * static_cast<int64_t>(countRangeAvx2(words, a, b));
        a = b;
        b = nbits < a + T ? nbits : a + T;
    }
}

constexpr Kernels kAvx2Kernels = {countWordsAvx2, countRangeAvx2,
                                  accumWindowSumsAvx2};

// --- AVX-512 VPOPCNTDQ --------------------------------------------------

#define APOLLO_POPCNT_AVX512_TARGET                                     \
    "avx512f,avx512bw,avx512dq,avx512vl,avx512vpopcntdq,popcnt"

__attribute__((target(APOLLO_POPCNT_AVX512_TARGET))) uint64_t
countWordsAvx512(const uint64_t *words, size_t nwords)
{
    __m512i acc = _mm512_setzero_si512();
    size_t k = 0;
    for (; k + 8 <= nwords; k += 8)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_loadu_si512(words + k)));
    if (k < nwords) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (nwords - k)) - 1);
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(
                     _mm512_maskz_loadu_epi64(m, words + k)));
    }
    return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

__attribute__((target(APOLLO_POPCNT_AVX512_TARGET))) uint64_t
countRangeAvx512(const uint64_t *words, size_t bit_begin, size_t bit_end)
{
    if (bit_begin >= bit_end)
        return 0;
    const size_t fw = bit_begin >> 6;
    const size_t lw = (bit_end - 1) >> 6;
    const uint64_t first_mask = ~uint64_t{0} << (bit_begin & 63);
    const uint64_t last_mask = highEdgeMask(bit_end);
    if (fw == lw)
        return static_cast<uint64_t>(
            __builtin_popcountll(words[fw] & first_mask & last_mask));
    uint64_t total =
        static_cast<uint64_t>(
            __builtin_popcountll(words[fw] & first_mask)) +
        static_cast<uint64_t>(
            __builtin_popcountll(words[lw] & last_mask));
    if (lw - fw > 1)
        total += countWordsAvx512(words + fw + 1, lw - fw - 1);
    return total;
}

__attribute__((target(APOLLO_POPCNT_AVX512_TARGET))) void
accumWindowSumsAvx512(const uint64_t *words, size_t nbits, uint32_t T,
                      uint32_t phase0, int64_t weight, int64_t *seg_sums)
{
    // The vectorized window paths multiply 32-bit lane counts by the
    // weight in 32-bit lanes; bail to the masked-range path for
    // weights that could overflow there (quantized weights are far
    // smaller — |qw| < 2^23 for B <= 24 — so this never triggers in
    // the OPM engine).
    const bool narrow_weight =
        weight > -(int64_t{1} << 25) && weight < (int64_t{1} << 25);
    if (phase0 == 0 && T == 64) {
        const size_t nwin = (nbits + 63) / 64;
        const __m512i vw = _mm512_set1_epi64(weight);
        size_t k = 0;
        for (; k + 8 <= nwin; k += 8) {
            const __m512i cnt = _mm512_popcnt_epi64(
                _mm512_loadu_si512(words + k));
            const __m512i acc = _mm512_loadu_si512(seg_sums + k);
            _mm512_storeu_si512(
                seg_sums + k,
                _mm512_add_epi64(acc, _mm512_mullo_epi64(cnt, vw)));
        }
        for (; k < nwin; ++k)
            seg_sums[k] += weight *
                static_cast<int64_t>(__builtin_popcountll(words[k]));
        return;
    }
    if (phase0 == 0 && T == 32 && narrow_weight) {
        // 16 windows per iteration: VPOPCNTD counts each 32-bit lane
        // (= one window), the products widen to two int64 vectors.
        const size_t nseg = (nbits + 31) / 32;
        const __m512i vw =
            _mm512_set1_epi32(static_cast<int32_t>(weight));
        size_t k = 0;
        while (2 * k + 16 <= nseg) {
            const __m512i cnt = _mm512_popcnt_epi32(
                _mm512_loadu_si512(words + k));
            const __m512i prod = _mm512_mullo_epi32(cnt, vw);
            const __m512i lo64 = _mm512_cvtepi32_epi64(
                _mm512_castsi512_si256(prod));
            const __m512i hi64 = _mm512_cvtepi32_epi64(
                _mm512_extracti32x8_epi32(prod, 1));
            const __m512i a0 = _mm512_loadu_si512(seg_sums + 2 * k);
            const __m512i a1 = _mm512_loadu_si512(seg_sums + 2 * k + 8);
            _mm512_storeu_si512(seg_sums + 2 * k,
                                _mm512_add_epi64(a0, lo64));
            _mm512_storeu_si512(seg_sums + 2 * k + 8,
                                _mm512_add_epi64(a1, hi64));
            k += 8;
        }
        const size_t nwords = (nbits + 63) / 64;
        for (; k < nwords; ++k) {
            const uint64_t v = words[k];
            seg_sums[2 * k] += weight *
                static_cast<int64_t>(
                    __builtin_popcountll(v & 0xffffffffULL));
            if (2 * k + 1 < nseg)
                seg_sums[2 * k + 1] += weight *
                    static_cast<int64_t>(__builtin_popcountll(v >> 32));
        }
        return;
    }
    if (phase0 == 0 && (T & 63) == 0) {
        const size_t wpw = T / 64;
        const size_t nwords = (nbits + 63) / 64;
        size_t k = 0;
        size_t s = 0;
        while (k < nwords) {
            const size_t take = nwords - k < wpw ? nwords - k : wpw;
            seg_sums[s++] += weight *
                static_cast<int64_t>(countWordsAvx512(words + k, take));
            k += take;
        }
        return;
    }
    size_t a = 0;
    size_t s = 0;
    size_t b = nbits < T - phase0 ? nbits : T - phase0;
    while (a < nbits) {
        seg_sums[s++] += weight *
            static_cast<int64_t>(countRangeAvx512(words, a, b));
        a = b;
        b = nbits < a + T ? nbits : a + T;
    }
}

constexpr Kernels kAvx512Kernels = {countWordsAvx512, countRangeAvx512,
                                    accumWindowSumsAvx512};

bool
cpuHasAvx2Popcnt()
{
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("popcnt");
}

bool
cpuHasAvx512Vpopcntdq()
{
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl") &&
           __builtin_cpu_supports("avx512vpopcntdq") &&
           __builtin_cpu_supports("popcnt");
}

#endif // APOLLO_HAVE_X86_POPCNT_KERNELS

bool
envDisabled(const char *name)
{
    const char *v = std::getenv(name);
    return v && v[0] != '\0' && v[0] != '0';
}

Impl
detectBestImpl()
{
#if APOLLO_HAVE_X86_POPCNT_KERNELS
    if (!envDisabled("APOLLO_NO_AVX512") && cpuHasAvx512Vpopcntdq())
        return Impl::Avx512;
    if (!envDisabled("APOLLO_NO_AVX2") && cpuHasAvx2Popcnt())
        return Impl::Avx2;
#endif
    return Impl::Scalar;
}

} // namespace

bool
implAvailable(Impl impl)
{
    switch (impl) {
      case Impl::Scalar:
        return true;
#if APOLLO_HAVE_X86_POPCNT_KERNELS
      case Impl::Avx2:
        return cpuHasAvx2Popcnt();
      case Impl::Avx512:
        return cpuHasAvx512Vpopcntdq();
#endif
      default:
        return false;
    }
}

const char *
implName(Impl impl)
{
    switch (impl) {
      case Impl::Scalar:
        return "scalar";
      case Impl::Avx2:
        return "avx2";
      case Impl::Avx512:
        return "avx512";
      default:
        return "unknown";
    }
}

const Kernels &
implKernels(Impl impl)
{
    APOLLO_REQUIRE(implAvailable(impl),
                   "popcount implementation not available on this CPU");
#if APOLLO_HAVE_X86_POPCNT_KERNELS
    if (impl == Impl::Avx2)
        return kAvx2Kernels;
    if (impl == Impl::Avx512)
        return kAvx512Kernels;
#endif
    return kScalarKernels;
}

Impl
bestImpl()
{
    static const Impl best = detectBestImpl();
    return best;
}

const Kernels &
kernels()
{
    return implKernels(bestImpl());
}

} // namespace apollo::popkernels
