/**
 * @file
 * Error reporting and status-message helpers, in the spirit of gem5's
 * logging.hh: fatal() for user-caused conditions, panic() for internal
 * invariant violations, warn()/inform() for status.
 */

#ifndef APOLLO_UTIL_LOGGING_HH
#define APOLLO_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace apollo {

/** Exception thrown by fatal(): the caller supplied an invalid request. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an unrecoverable condition caused by the caller (bad
 * configuration, invalid arguments). Throws FatalError so library users
 * and tests can catch it.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::formatMessage(args...));
}

/**
 * Report an internal invariant violation (a bug in this library).
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::formatMessage(args...));
}

/** Print a warning to stderr; never stops execution. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::formatMessage(args...).c_str());
}

/** Print an informational message to stderr; never stops execution. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stderr, "info: %s\n",
                 detail::formatMessage(args...).c_str());
}

/** Check a caller-facing precondition; fatal() on failure. */
#define APOLLO_REQUIRE(cond, ...)                                           \
    do {                                                                    \
        if (!(cond))                                                        \
            ::apollo::fatal("requirement failed: " #cond " — ",             \
                            ##__VA_ARGS__);                                 \
    } while (0)

/** Check an internal invariant; panic() on failure. */
#define APOLLO_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond))                                                        \
            ::apollo::panic("assertion failed: " #cond " — ",               \
                            ##__VA_ARGS__);                                 \
    } while (0)

} // namespace apollo

#endif // APOLLO_UTIL_LOGGING_HH
