/**
 * @file
 * The line-delimited serving front end: reads wire requests
 * (serve/wire.hh) from an input stream, drives a SessionManager, and
 * writes wire responses to an output stream. This is what
 * `apollo_cli serve` runs over stdin/stdout or files, and what the
 * record/replay machinery is built on:
 *
 *  - with a record directory set, every request of session S is
 *    appended verbatim (canonically re-encoded) to <dir>/<S>.ndjson,
 *    and an EOF-time auto-close is recorded too, so each record file
 *    is a standalone request stream;
 *  - replaying a record file through runServeLoop() again reproduces
 *    the session's power samples bit-identically (samples are printed
 *    with "%.9g", which round-trips IEEE-754 floats).
 *
 * Response ordering: each session's responses form a deterministic
 * subsequence (session_created, power events in index order, then
 * session_closed); the interleaving BETWEEN concurrent sessions is
 * scheduling-dependent. Consumers — and the replay comparator — must
 * group by the "session" field.
 *
 * Request-level failures (unknown model, bad payload, stale session)
 * become "error" response lines and the loop keeps serving; only
 * infrastructure failures (unwritable record file, broken output
 * stream) abort the loop with a non-ok Status.
 */

#ifndef APOLLO_SERVE_SERVE_LOOP_HH
#define APOLLO_SERVE_SERVE_LOOP_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "serve/model_registry.hh"
#include "serve/session_manager.hh"
#include "util/status.hh"

namespace apollo::serve {

/** Knobs for one serve-loop run. */
struct ServeLoopOptions
{
    ServeConfig config;
    /**
     * When non-empty, record every session's request stream to
     * <recordDir>/<session>.ndjson (directory is created; session
     * names are wire-validated, so the paths are safe).
     */
    std::string recordDir;
};

/** Accounting for one serve-loop run. */
struct ServeLoopReport
{
    uint64_t requests = 0;
    uint64_t sessionsCreated = 0;
    uint64_t chunks = 0;
    uint64_t errors = 0;
    /** Sessions still open at EOF that the loop auto-closed. */
    uint64_t autoClosed = 0;
};

/**
 * Pump @p in to exhaustion. Responses (including per-chunk power
 * events, which arrive from worker threads) are serialized onto
 * @p out. Sessions still open at EOF are closed as if a
 * close_session request had arrived, in creation order.
 */
StatusOr<ServeLoopReport>
runServeLoop(std::shared_ptr<const ModelRegistry> registry,
             std::istream &in, std::ostream &out,
             const ServeLoopOptions &options = {});

} // namespace apollo::serve

#endif // APOLLO_SERVE_SERVE_LOOP_HH
