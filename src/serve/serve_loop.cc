#include "serve/serve_loop.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

#include "flow/stream_engine.hh"
#include "serve/wire.hh"

namespace apollo::serve {

namespace {

/** One live wire session: manager handle + sink + optional record. */
struct LiveSession
{
    SessionId id;
    std::unique_ptr<PowerSink> sink;
    std::unique_ptr<std::ofstream> record;
    uint64_t order = 0; ///< creation order (EOF auto-close order)
};

} // namespace

StatusOr<ServeLoopReport>
runServeLoop(std::shared_ptr<const ModelRegistry> registry,
             std::istream &in, std::ostream &out,
             const ServeLoopOptions &options)
{
    if (Status st = options.config.validate(); !st.ok())
        return st;
    if (!options.recordDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.recordDir, ec);
        if (ec)
            return Status::ioError("cannot create record directory '",
                                   options.recordDir,
                                   "': ", ec.message());
    }

    ServeLoopReport report;

    // Power events land from worker threads; every write to the shared
    // output stream goes through this mutex.
    std::mutex out_mu;
    auto respond = [&](const std::string &line) {
        std::lock_guard<std::mutex> lock(out_mu);
        out << line;
    };
    auto respondError = [&](const std::string &session,
                            const Status &status) {
        report.errors++;
        respond(encodeError(session, status));
    };

    std::map<std::string, LiveSession> live;
    uint64_t created = 0;

    // Declared after out_mu/live so it is destroyed FIRST: its worker
    // threads call into the CallbackSinks owned by `live` and take
    // out_mu, so on every exit path the manager must be torn down
    // while both are still alive.
    SessionManager manager(registry, options.config);
    Status fatal = Status::okStatus();

    // Shared close path for explicit close_session and EOF auto-close.
    auto closeLive = [&](const std::string &name, LiveSession &session) {
        StatusOr<SessionSummary> summary =
            manager.closeSession(session.id);
        if (!summary.ok())
            respondError(name, summary.status());
        else
            respond(encodeSessionClosed(name, *summary));
    };

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        report.requests++;
        StatusOr<WireRequest> parsed = parseRequestLine(line);
        if (!parsed.ok()) {
            respondError("", parsed.status());
            continue;
        }
        WireRequest &request = *parsed;

        if (request.op == RequestOp::ListModels) {
            std::vector<ModelInfo> models = manager.listModels();
            respond(encodeModels(models));
            continue;
        }

        auto it = live.find(request.session);
        if (request.op == RequestOp::CreateSession) {
            if (it != live.end()) {
                respondError(request.session,
                             Status::invalidArgument(
                                 "session '", request.session,
                                 "' already exists"));
                continue;
            }
            LiveSession session;
            session.order = created;
            // The sink runs on worker threads; it captures the shared
            // output lock and the wire session name.
            const std::string name = request.session;
            session.sink = std::make_unique<CallbackSink>(
                [&, name](uint64_t first_index,
                          std::span<const float> values) {
                    respond(encodePowerEvent(name, first_index, values));
                    return Status::okStatus();
                });
            StatusOr<SessionId> id = manager.createSession(
                SessionOptions{request.model, request.windowT},
                session.sink.get());
            if (!id.ok()) {
                respondError(request.session, id.status());
                continue;
            }
            session.id = *id;
            if (!options.recordDir.empty()) {
                const std::filesystem::path path =
                    std::filesystem::path(options.recordDir) /
                    (request.session + ".ndjson");
                session.record =
                    std::make_unique<std::ofstream>(path);
                if (!*session.record) {
                    // Infrastructure failure: a requested recording
                    // that cannot happen must not pass silently. Stop
                    // reading requests, but fall through the shared
                    // EOF drain below so every other live session is
                    // still closed (the manager must not be torn down
                    // with sessions mid-flight).
                    (void)manager.closeSession(session.id);
                    fatal = Status::ioError(
                        "cannot open record file ", path.string());
                    break;
                }
                *session.record << encodeRequest(request);
            }
            created++;
            report.sessionsCreated++;
            respond(encodeSessionCreated(request.session, request.model));
            live.emplace(request.session, std::move(session));
            continue;
        }

        if (it == live.end()) {
            respondError(request.session,
                         Status::invalidArgument("unknown session '",
                                                 request.session, "'"));
            continue;
        }
        LiveSession &session = it->second;
        if (session.record)
            *session.record << encodeRequest(request);

        switch (request.op) {
        case RequestOp::SubmitChunk: {
            report.chunks++;
            Status st = manager.submitChunk(session.id,
                                            std::move(request.bits));
            if (!st.ok())
                respondError(request.session, st);
            break;
        }
        case RequestOp::CancelSession: {
            Status st = manager.cancelSession(session.id);
            if (!st.ok())
                respondError(request.session, st);
            else
                respond(encodeSessionCancelled(request.session));
            break;
        }
        case RequestOp::CloseSession: {
            closeLive(request.session, session);
            live.erase(it);
            break;
        }
        default:
            break; // handled above
        }
    }

    // EOF (or a fatal request-loop error): close whatever is still
    // open, in creation order, and record the implied close so record
    // files replay standalone.
    std::vector<std::pair<uint64_t, std::string>> open;
    open.reserve(live.size());
    for (const auto &[name, session] : live)
        open.emplace_back(session.order, name);
    std::sort(open.begin(), open.end());
    for (const auto &[order, name] : open) {
        (void)order;
        LiveSession &session = live.at(name);
        if (session.record) {
            WireRequest close;
            close.op = RequestOp::CloseSession;
            close.session = name;
            *session.record << encodeRequest(close);
        }
        closeLive(name, session);
        report.autoClosed++;
    }
    live.clear();

    out.flush();
    if (!fatal.ok())
        return fatal;
    if (!out)
        return Status::ioError("serve output stream failed");
    return report;
}

} // namespace apollo::serve
