/**
 * @file
 * The multi-session power-introspection server core: N concurrent
 * trace-to-power sessions multiplexed over one shared worker pool.
 *
 * Each session is an independent stream with the same contract as the
 * one-stream engine (flow/stream_engine.hh): chunks of packed proxy
 * toggle bits go in, power samples come out of a caller-owned
 * PowerSink, and StatusCode::Cancelled from the sink stops the
 * session gracefully. What the manager adds is the multiplexing:
 *
 *  - async ingestion: submitChunk() enqueues and returns; compute and
 *    sink delivery happen on the shared workers;
 *  - per-session state: the window/OPM accumulator state
 *    (StreamPipeline) is per session and carried across chunks, so a
 *    session's output is bit-identical to running its chunk sequence
 *    through StreamingInference alone — at ANY worker count
 *    (tests/test_serve.cc pins this);
 *  - strand execution: a session is processed by at most one worker
 *    at a time, in submission order, with a per-dispatch chunk budget
 *    so no session starves the others;
 *  - backpressure: each session's input queue is bounded
 *    (ServeConfig::maxQueuedChunks); submitChunk() blocks until the
 *    workers drain the queue, and every blocked entry counts into
 *    apollo.serve.backpressure_stalls;
 *  - shared models: sessions resolve a ModelRegistry entry at
 *    creation and share its immutable weights;
 *  - slot reuse: session ids carry a generation, so a stale id to a
 *    reused slot is InvalidArgument, never silent cross-talk, and a
 *    freed slot's pipeline state is destroyed (a cancelled session's
 *    partial window can never leak into the next session).
 *
 * Obs surface (`apollo.serve.*`): active_sessions and queue_depth
 * gauges, sessions/chunks/cycles/outputs/backpressure_stalls
 * counters, chunks_per_sec gauge refreshed as sessions close.
 */

#ifndef APOLLO_SERVE_SESSION_MANAGER_HH
#define APOLLO_SERVE_SESSION_MANAGER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "flow/stream_engine.hh"
#include "serve/model_registry.hh"
#include "util/status.hh"

namespace apollo::serve {

/** Serving-layer tuning knobs. Setters validate via validate(). */
struct ServeConfig
{
    /** Worker threads; 0 = hardware_concurrency (at least 1). */
    size_t threads = 0;
    /** Session slot table size (concurrent session bound). */
    size_t maxSessions = 64;
    /** Per-session input queue bound — the backpressure depth. */
    size_t maxQueuedChunks = 4;

    ServeConfig &
    withThreads(size_t n)
    {
        threads = n;
        return *this;
    }

    ServeConfig &
    withMaxSessions(size_t n)
    {
        maxSessions = n;
        return *this;
    }

    ServeConfig &
    withMaxQueuedChunks(size_t n)
    {
        maxQueuedChunks = n;
        return *this;
    }

    /** Ok, or InvalidArgument naming the offending field. */
    Status validate() const;
};

/** Per-session creation options. */
struct SessionOptions
{
    /** Registry name of the model to serve. */
    std::string model;
    /**
     * Float-engine Eq. (9) window (power of two; 0 = per-cycle).
     * Quantized entries always run at their registered window T; a
     * non-zero value here must match it.
     */
    uint32_t windowT = 0;
};

/**
 * Opaque session handle: slot index + generation. A closed session's
 * id never aliases the slot's next tenant.
 */
struct SessionId
{
    uint64_t value = 0;

    bool valid() const { return value != 0; }
    bool operator==(const SessionId &) const = default;
};

/** Final accounting returned by closeSession(). */
struct SessionSummary
{
    std::string model;
    uint64_t cycles = 0;
    uint64_t chunks = 0;
    uint64_t outputs = 0;
    /** The sink (or cancelSession) stopped the stream early. */
    bool cancelled = false;
};

/** Manager-wide counters (a consistent snapshot of the atomics). */
struct ServeStats
{
    uint64_t sessionsCreated = 0;
    uint64_t sessionsClosed = 0;
    uint64_t sessionsCancelled = 0;
    uint64_t chunks = 0;
    uint64_t cycles = 0;
    uint64_t outputs = 0;
    uint64_t backpressureStalls = 0;
    size_t activeSessions = 0;
    size_t queuedChunks = 0;
};

/**
 * The session manager. Construct once per service, create/feed/close
 * sessions from any thread. Sinks are caller-owned, must outlive
 * their session until closeSession() returns, and are invoked from
 * worker threads (one at a time per session, in cycle order).
 *
 * Destroying the manager with sessions still open abandons them:
 * queued chunks are dropped and PowerSink::finish() is not called —
 * close sessions first for a clean shutdown.
 */
class SessionManager
{
  public:
    explicit SessionManager(std::shared_ptr<const ModelRegistry> registry,
                            ServeConfig config = {});
    ~SessionManager();

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * Open a session against a registered model. InvalidArgument for
     * unknown models or bad window options, OutOfRange when all
     * maxSessions slots are occupied.
     */
    StatusOr<SessionId> createSession(const SessionOptions &options,
                                      PowerSink *sink);

    /**
     * Enqueue one chunk of packed proxy toggle bits (columns in the
     * model's proxy order). Blocks while the session's queue is full.
     * Returns Cancelled once the session has been cancelled, or the
     * first non-Cancelled sink error.
     */
    Status submitChunk(SessionId id, BitColumnMatrix bits);

    /**
     * Stop a session early: queued chunks are dropped, in-flight work
     * finishes, later submits return Cancelled. closeSession() still
     * runs the normal drain/finish path.
     */
    Status cancelSession(SessionId id);

    /**
     * Drain the session, call the sink's finish(), free the slot, and
     * return the final accounting. The first non-Cancelled sink error
     * (from consume or finish) is returned instead — the slot is
     * freed either way.
     */
    StatusOr<SessionSummary> closeSession(SessionId id);

    /** Registry metadata passthrough (the ListModels call). */
    std::vector<ModelInfo> listModels() const;

    ServeStats stats() const;
    size_t threadCount() const { return workers_.size(); }
    const ServeConfig &config() const { return config_; }

  private:
    struct PendingChunk
    {
        BitColumnMatrix bits;
        uint64_t firstCycle = 0;
    };

    struct Session
    {
        std::mutex mu;
        std::condition_variable cv;
        uint32_t generation = 1;
        bool open = false;
        bool closing = false;
        bool cancelled = false;
        /** A worker owns this session (strand token). */
        bool scheduled = false;
        std::deque<PendingChunk> queue;
        std::shared_ptr<const ModelEntry> entry;
        std::optional<StreamPipeline> pipe;
        ChunkSums sums; ///< per-session compute scratch
        PowerSink *sink = nullptr;
        Status sinkError;
        uint64_t acceptedCycles = 0;
        uint64_t chunksIn = 0;
        std::chrono::steady_clock::time_point createdAt;
    };

    void workerLoop();
    void processSession(size_t slot);
    void scheduleLocked(Session &session, size_t slot);
    /** nullptr + status when the id is stale/invalid. */
    Session *resolve(SessionId id, Status *error);

    std::shared_ptr<const ModelRegistry> registry_;
    ServeConfig config_;

    std::vector<std::unique_ptr<Session>> slots_;

    std::mutex mu_; ///< guards runQueue_, freeSlots_, shutdown_
    std::condition_variable workCv_;
    std::deque<size_t> runQueue_;
    std::vector<size_t> freeSlots_;
    bool shutdown_ = false;

    std::vector<std::thread> workers_;

    std::atomic<uint64_t> sessionsCreated_{0};
    std::atomic<uint64_t> sessionsClosed_{0};
    std::atomic<uint64_t> sessionsCancelled_{0};
    std::atomic<uint64_t> chunksIn_{0};
    std::atomic<uint64_t> cyclesIn_{0};
    std::atomic<uint64_t> outputs_{0};
    std::atomic<uint64_t> backpressureStalls_{0};
    std::atomic<size_t> activeSessions_{0};
    std::atomic<size_t> queuedChunks_{0};
};

} // namespace apollo::serve

#endif // APOLLO_SERVE_SESSION_MANAGER_HH
