#include "serve/session_manager.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace apollo::serve {

namespace {

/**
 * Chunks one worker dispatch may drain from a session before handing
 * the session back to the tail of the run queue. Keeps one firehose
 * session from starving the others without giving up batching.
 */
constexpr size_t kDrainBudget = 4;

uint64_t
encodeId(size_t slot, uint32_t generation)
{
    // generation starts at 1, so encoded ids are never 0 (invalid).
    return (static_cast<uint64_t>(generation) << 32) |
           static_cast<uint64_t>(slot);
}

} // namespace

Status
ServeConfig::validate() const
{
    if (maxSessions == 0)
        return Status::invalidArgument("maxSessions must be positive");
    if (maxQueuedChunks == 0)
        return Status::invalidArgument(
            "maxQueuedChunks must be positive");
    return Status::okStatus();
}

SessionManager::SessionManager(
    std::shared_ptr<const ModelRegistry> registry, ServeConfig config)
    : registry_(std::move(registry)), config_(config)
{
    APOLLO_REQUIRE(registry_ != nullptr,
                   "SessionManager needs a model registry");
    if (Status st = config_.validate(); !st.ok())
        fatal(st.message());

    slots_.reserve(config_.maxSessions);
    freeSlots_.reserve(config_.maxSessions);
    for (size_t i = 0; i < config_.maxSessions; ++i)
        slots_.push_back(std::make_unique<Session>());
    // Hand out low slot indices first (stable, debuggable ids).
    for (size_t i = config_.maxSessions; i-- > 0;)
        freeSlots_.push_back(i);

    size_t threads = config_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SessionManager::~SessionManager()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

StatusOr<SessionId>
SessionManager::createSession(const SessionOptions &options,
                              PowerSink *sink)
{
    if (sink == nullptr)
        return Status::invalidArgument("session needs a power sink");
    std::shared_ptr<const ModelEntry> entry =
        registry_->find(options.model);
    if (!entry)
        return Status::invalidArgument("unknown model '", options.model,
                                       "'");
    if (entry->quantized()) {
        if (options.windowT != 0 && options.windowT != entry->windowT)
            return Status::invalidArgument(
                "quantized model '", options.model,
                "' runs at its registered window T=", entry->windowT,
                ", session requested ", options.windowT);
    } else if (options.windowT != 0 &&
               !std::has_single_bit(options.windowT)) {
        return Status::invalidArgument(
            "windowT must be a power of two, got ", options.windowT);
    }

    size_t slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (freeSlots_.empty())
            return Status::outOfRange("all ", config_.maxSessions,
                                      " session slots are in use");
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    }

    Session &session = *slots_[slot];
    std::lock_guard<std::mutex> lock(session.mu);
    session.open = true;
    session.closing = false;
    session.cancelled = false;
    session.scheduled = false;
    session.queue.clear();
    session.entry = entry;
    if (entry->quantized())
        session.pipe.emplace(*entry->qmodel, entry->windowT);
    else
        session.pipe.emplace(*entry->model, options.windowT);
    session.sink = sink;
    session.sinkError = Status::okStatus();
    session.acceptedCycles = 0;
    session.chunksIn = 0;
    session.createdAt = std::chrono::steady_clock::now();

    sessionsCreated_.fetch_add(1, std::memory_order_relaxed);
    const size_t active =
        activeSessions_.fetch_add(1, std::memory_order_relaxed) + 1;
    APOLLO_COUNT("apollo.serve.sessions", 1);
    APOLLO_GAUGE_SET("apollo.serve.active_sessions",
                     static_cast<double>(active));
    return SessionId{encodeId(slot, session.generation)};
}

SessionManager::Session *
SessionManager::resolve(SessionId id, Status *error)
{
    const size_t slot = static_cast<uint32_t>(id.value);
    if (!id.valid() || slot >= slots_.size()) {
        *error = Status::invalidArgument("invalid session id");
        return nullptr;
    }
    return slots_[slot].get();
}

Status
SessionManager::submitChunk(SessionId id, BitColumnMatrix bits)
{
    Status bad = Status::okStatus();
    Session *session = resolve(id, &bad);
    if (!session)
        return bad;
    const uint32_t generation = static_cast<uint32_t>(id.value >> 32);
    const size_t slot = static_cast<uint32_t>(id.value);

    std::unique_lock<std::mutex> lock(session->mu);
    if (!session->open || session->generation != generation)
        return Status::invalidArgument("stale session id");
    if (bits.cols() != session->entry->proxyCount())
        return Status::invalidArgument(
            "chunk carries ", bits.cols(), " proxies, model '",
            session->entry->name, "' expects ",
            session->entry->proxyCount());
    bool stalled = false;
    for (;;) {
        // Re-checked after EVERY wake: a producer parked on
        // backpressure can sleep across cancel+close (and even the
        // slot's re-tenanting); it must never enqueue into a freed
        // slot or the next tenant.
        if (!session->open || session->generation != generation)
            return Status::invalidArgument("stale session id");
        if (session->cancelled)
            return Status::cancelled("session cancelled");
        if (!session->sinkError.ok())
            return session->sinkError;
        if (session->closing)
            return Status::invalidArgument(
                "session is closing; no further chunks");
        if (session->queue.size() < config_.maxQueuedChunks)
            break;
        // Backpressure: the sink side is behind; block the producer
        // until a worker drains the queue.
        if (!stalled) {
            stalled = true;
            backpressureStalls_.fetch_add(1,
                                          std::memory_order_relaxed);
            APOLLO_COUNT("apollo.serve.backpressure_stalls", 1);
        }
        session->cv.wait(lock);
    }

    const size_t rows = bits.rows();
    if (rows == 0)
        return Status::okStatus();

    PendingChunk chunk;
    chunk.firstCycle = session->acceptedCycles;
    chunk.bits = std::move(bits);
    session->acceptedCycles += rows;
    session->chunksIn++;
    session->queue.push_back(std::move(chunk));
    scheduleLocked(*session, slot);

    chunksIn_.fetch_add(1, std::memory_order_relaxed);
    cyclesIn_.fetch_add(rows, std::memory_order_relaxed);
    const size_t depth =
        queuedChunks_.fetch_add(1, std::memory_order_relaxed) + 1;
    APOLLO_COUNT("apollo.serve.chunks", 1);
    APOLLO_COUNT("apollo.serve.cycles", rows);
    APOLLO_GAUGE_SET("apollo.serve.queue_depth",
                     static_cast<double>(depth));
    return Status::okStatus();
}

Status
SessionManager::cancelSession(SessionId id)
{
    Status bad = Status::okStatus();
    Session *session = resolve(id, &bad);
    if (!session)
        return bad;
    const uint32_t generation = static_cast<uint32_t>(id.value >> 32);

    std::lock_guard<std::mutex> lock(session->mu);
    if (!session->open || session->generation != generation)
        return Status::invalidArgument("stale session id");
    if (!session->cancelled) {
        session->cancelled = true;
        sessionsCancelled_.fetch_add(1, std::memory_order_relaxed);
        APOLLO_COUNT("apollo.serve.cancelled", 1);
    }
    // Drop queued work; the chunk a worker already popped finishes.
    queuedChunks_.fetch_sub(session->queue.size(),
                            std::memory_order_relaxed);
    session->queue.clear();
    session->cv.notify_all();
    return Status::okStatus();
}

StatusOr<SessionSummary>
SessionManager::closeSession(SessionId id)
{
    Status bad = Status::okStatus();
    Session *session = resolve(id, &bad);
    if (!session)
        return bad;
    const uint32_t generation = static_cast<uint32_t>(id.value >> 32);
    const size_t slot = static_cast<uint32_t>(id.value);

    std::unique_lock<std::mutex> lock(session->mu);
    if (!session->open || session->generation != generation)
        return Status::invalidArgument("stale session id");
    if (session->closing)
        return Status::invalidArgument("session already closing");
    session->closing = true;
    session->cv.notify_all();
    // Drain: queued chunks flow through the workers (unless cancelled,
    // which already emptied the queue), then the strand token drops.
    session->cv.wait(lock, [&] {
        return session->queue.empty() && !session->scheduled;
    });

    SessionSummary summary;
    summary.model = session->entry->name;
    summary.cycles = session->pipe->cycles();
    summary.chunks = session->chunksIn;
    summary.outputs = session->pipe->outputs();
    summary.cancelled = session->cancelled;
    Status sink_error = session->sinkError;

    // No worker can touch the session now (queue empty, not scheduled,
    // closing blocks new submits), so finish() is race-free here.
    Status fin = session->sink->finish(summary.outputs);

    if (APOLLO_OBS_ON()) {
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - session->createdAt)
                .count();
        if (seconds > 0.0 && summary.chunks > 0)
            APOLLO_GAUGE_SET("apollo.serve.chunks_per_sec",
                             static_cast<double>(summary.chunks) /
                                 seconds);
    }

    // Free the slot: bump the generation so the old id goes stale, and
    // destroy the pipeline so no window/OPM state survives into the
    // slot's next tenant. closing/cancelled stay sticky until
    // createSession re-tenants the slot, so a late backpressure waker
    // always sees closed-or-closing state, never a fresh-looking slot.
    session->open = false;
    session->generation++;
    session->pipe.reset();
    session->entry.reset();
    session->sink = nullptr;
    session->sinkError = Status::okStatus();
    session->sums = ChunkSums{};
    session->acceptedCycles = 0;
    session->chunksIn = 0;

    sessionsClosed_.fetch_add(1, std::memory_order_relaxed);
    const size_t active =
        activeSessions_.fetch_sub(1, std::memory_order_relaxed) - 1;
    APOLLO_COUNT("apollo.serve.sessions_closed", 1);
    APOLLO_GAUGE_SET("apollo.serve.active_sessions",
                     static_cast<double>(active));
    {
        std::lock_guard<std::mutex> qlock(mu_);
        freeSlots_.push_back(slot);
    }

    if (!sink_error.ok())
        return sink_error;
    if (!fin.ok() && fin.code() != StatusCode::Cancelled)
        return fin;
    return summary;
}

std::vector<ModelInfo>
SessionManager::listModels() const
{
    return registry_->list();
}

ServeStats
SessionManager::stats() const
{
    ServeStats out;
    out.sessionsCreated =
        sessionsCreated_.load(std::memory_order_relaxed);
    out.sessionsClosed = sessionsClosed_.load(std::memory_order_relaxed);
    out.sessionsCancelled =
        sessionsCancelled_.load(std::memory_order_relaxed);
    out.chunks = chunksIn_.load(std::memory_order_relaxed);
    out.cycles = cyclesIn_.load(std::memory_order_relaxed);
    out.outputs = outputs_.load(std::memory_order_relaxed);
    out.backpressureStalls =
        backpressureStalls_.load(std::memory_order_relaxed);
    out.activeSessions = activeSessions_.load(std::memory_order_relaxed);
    out.queuedChunks = queuedChunks_.load(std::memory_order_relaxed);
    return out;
}

void
SessionManager::scheduleLocked(Session &session, size_t slot)
{
    if (session.scheduled)
        return;
    session.scheduled = true;
    {
        std::lock_guard<std::mutex> lock(mu_);
        runQueue_.push_back(slot);
    }
    workCv_.notify_one();
}

void
SessionManager::workerLoop()
{
    for (;;) {
        size_t slot;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [&] {
                return shutdown_ || !runQueue_.empty();
            });
            if (shutdown_)
                return;
            slot = runQueue_.front();
            runQueue_.pop_front();
        }
        processSession(slot);
    }
}

void
SessionManager::processSession(size_t slot)
{
    Session &session = *slots_[slot];
    size_t budget = kDrainBudget;
    for (;;) {
        PendingChunk chunk;
        {
            std::unique_lock<std::mutex> lock(session.mu);
            if (session.queue.empty()) {
                // Strand token drops; submitChunk re-schedules.
                session.scheduled = false;
                session.cv.notify_all();
                return;
            }
            if (budget == 0) {
                // Fairness: hand the session back to the tail of the
                // run queue, keeping the strand token so no second
                // worker can enter meanwhile.
                std::lock_guard<std::mutex> qlock(mu_);
                runQueue_.push_back(slot);
                workCv_.notify_one();
                return;
            }
            chunk = std::move(session.queue.front());
            session.queue.pop_front();
            const size_t depth =
                queuedChunks_.fetch_sub(1, std::memory_order_relaxed) -
                1;
            APOLLO_GAUGE_SET("apollo.serve.queue_depth",
                             static_cast<double>(depth));
            // A producer blocked on backpressure can refill the slot.
            session.cv.notify_all();
        }
        budget--;

        // Compute + ordered emission outside the lock: the strand
        // token guarantees exclusive access to pipe/sums/sink, and
        // submitChunk never touches them.
        const uint64_t before = session.pipe->outputs();
        session.sums.firstCycle = chunk.firstCycle;
        // The bit-parallel compute stage needs the stream's window
        // phase at the chunk's first row; chunks are accepted and
        // processed in order from cycle 0, so firstCycle is it.
        const uint32_t window_T = session.pipe->windowT();
        session.sums.windowPhase0 =
            window_T ? static_cast<uint32_t>(chunk.firstCycle % window_T)
                     : 0;
        session.pipe->computeSums(chunk.bits, chunk.bits.rows(),
                                  session.sums);
        Status sunk = session.pipe->emit(session.sums, *session.sink);
        const uint64_t emitted = session.pipe->outputs() - before;
        if (emitted > 0) {
            outputs_.fetch_add(emitted, std::memory_order_relaxed);
            APOLLO_COUNT("apollo.serve.outputs", emitted);
        }

        if (!sunk.ok()) {
            std::lock_guard<std::mutex> lock(session.mu);
            if (sunk.code() == StatusCode::Cancelled) {
                if (!session.cancelled) {
                    session.cancelled = true;
                    sessionsCancelled_.fetch_add(
                        1, std::memory_order_relaxed);
                    APOLLO_COUNT("apollo.serve.cancelled", 1);
                }
            } else if (session.sinkError.ok()) {
                session.sinkError = sunk;
            }
            queuedChunks_.fetch_sub(session.queue.size(),
                                    std::memory_order_relaxed);
            session.queue.clear();
            session.cv.notify_all();
        }
    }
}

} // namespace apollo::serve
