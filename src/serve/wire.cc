#include "serve/wire.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace apollo::serve {

namespace {

// Protocol bounds: a request must be parseable without trusting the
// peer. The hex-length check below then pins the exact payload size.
constexpr uint64_t kMaxChunkCycles = uint64_t{1} << 32;
constexpr uint64_t kMaxChunkProxies = uint64_t{1} << 20;
constexpr size_t kMaxSessionName = 64;

/** One scanned "key": value pair of a flat request object. */
struct Field
{
    std::string key;
    enum Kind
    {
        Str,
        UInt,
        Bool
    } kind = Str;
    std::string str;
    uint64_t num = 0;
    bool flag = false;
};

void
skipSpace(std::string_view s, size_t &i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                            s[i] == '\r' || s[i] == '\n'))
        i++;
}

Status
scanString(std::string_view s, size_t &i, std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return Status::parseError("expected '\"' at offset ", i);
    i++;
    out.clear();
    while (i < s.size() && s[i] != '"') {
        char c = s[i++];
        if (c == '\\') {
            if (i >= s.size())
                return Status::parseError("dangling escape");
            char e = s[i++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            default:
                return Status::parseError("unsupported escape '\\", e,
                                          "'");
            }
        } else {
            out += c;
        }
    }
    if (i >= s.size())
        return Status::parseError("unterminated string");
    i++; // closing quote
    return Status::okStatus();
}

Status
scanValue(std::string_view s, size_t &i, Field &field)
{
    skipSpace(s, i);
    if (i >= s.size())
        return Status::parseError("missing value");
    const char c = s[i];
    if (c == '"') {
        field.kind = Field::Str;
        return scanString(s, i, field.str);
    }
    if (c >= '0' && c <= '9') {
        field.kind = Field::UInt;
        uint64_t value = 0;
        size_t digits = 0;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            const uint64_t d = static_cast<uint64_t>(s[i] - '0');
            if (value > (UINT64_MAX - d) / 10)
                return Status::parseError("integer overflow");
            value = value * 10 + d;
            i++;
            digits++;
        }
        if (digits == 0)
            return Status::parseError("empty number");
        field.num = value;
        return Status::okStatus();
    }
    if (s.compare(i, 4, "true") == 0) {
        field.kind = Field::Bool;
        field.flag = true;
        i += 4;
        return Status::okStatus();
    }
    if (s.compare(i, 5, "false") == 0) {
        field.kind = Field::Bool;
        field.flag = false;
        i += 5;
        return Status::okStatus();
    }
    return Status::parseError("unsupported value at offset ", i,
                              " (requests are flat objects of "
                              "strings, unsigned integers, booleans)");
}

/** Scan one flat JSON object into its fields; strict, no nesting. */
Status
scanObject(std::string_view line, std::vector<Field> &fields)
{
    fields.clear();
    size_t i = 0;
    skipSpace(line, i);
    if (i >= line.size() || line[i] != '{')
        return Status::parseError("request line must be a JSON object");
    i++;
    skipSpace(line, i);
    if (i < line.size() && line[i] == '}') {
        i++;
    } else {
        for (;;) {
            Field field;
            skipSpace(line, i);
            if (Status st = scanString(line, i, field.key); !st.ok())
                return st;
            skipSpace(line, i);
            if (i >= line.size() || line[i] != ':')
                return Status::parseError("expected ':' after key '",
                                          field.key, "'");
            i++;
            if (Status st = scanValue(line, i, field); !st.ok())
                return st;
            for (const Field &seen : fields)
                if (seen.key == field.key)
                    return Status::parseError("duplicate key '",
                                              field.key, "'");
            fields.push_back(std::move(field));
            skipSpace(line, i);
            if (i < line.size() && line[i] == ',') {
                i++;
                continue;
            }
            if (i < line.size() && line[i] == '}') {
                i++;
                break;
            }
            return Status::parseError("expected ',' or '}' at offset ",
                                      i);
        }
    }
    skipSpace(line, i);
    if (i != line.size())
        return Status::parseError("trailing bytes after request object");
    return Status::okStatus();
}

const Field *
findField(const std::vector<Field> &fields, std::string_view key)
{
    for (const Field &f : fields)
        if (f.key == key)
            return &f;
    return nullptr;
}

StatusOr<uint64_t>
uintField(const std::vector<Field> &fields, std::string_view key)
{
    const Field *f = findField(fields, key);
    if (!f)
        return Status::invalidArgument("missing field '", key, "'");
    if (f->kind != Field::UInt)
        return Status::invalidArgument("field '", key,
                                       "' must be an unsigned integer");
    return f->num;
}

StatusOr<std::string>
strField(const std::vector<Field> &fields, std::string_view key)
{
    const Field *f = findField(fields, key);
    if (!f)
        return Status::invalidArgument("missing field '", key, "'");
    if (f->kind != Field::Str)
        return Status::invalidArgument("field '", key,
                                       "' must be a string");
    return f->str;
}

/** JSON string escaping for the few names that can need it. */
std::string
quoted(std::string_view s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string
floatToken(float v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
    return buf;
}

std::string
responseHead(std::string_view event)
{
    std::string out = "{\"schema_version\":";
    out += std::to_string(kSchemaVersion);
    out += ",\"event\":\"";
    out += event;
    out += '"';
    return out;
}

constexpr char kHexDigits[] = "0123456789abcdef";

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

bool
validSessionName(std::string_view name)
{
    if (name.empty() || name.size() > kMaxSessionName)
        return false;
    for (char c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-')
            return false;
    return true;
}

const char *
statusCodeWireName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidArgument: return "invalid_argument";
    case StatusCode::ParseError: return "parse_error";
    case StatusCode::IoError: return "io_error";
    case StatusCode::OutOfRange: return "out_of_range";
    case StatusCode::Cancelled: return "cancelled";
    }
    return "unknown";
}

std::string
encodeBitsHex(const BitColumnMatrix &bits)
{
    std::string out;
    const size_t wpc = bits.wordsPerCol();
    out.reserve(bits.cols() * wpc * 16);
    for (size_t c = 0; c < bits.cols(); ++c) {
        const uint64_t *words = bits.colWords(c);
        for (size_t w = 0; w < wpc; ++w)
            for (int shift = 60; shift >= 0; shift -= 4)
                out += kHexDigits[(words[w] >> shift) & 0xF];
    }
    return out;
}

StatusOr<BitColumnMatrix>
decodeBitsHex(std::string_view hex, size_t rows, size_t cols)
{
    // Validate the declared size BEFORE allocating: rows/cols come
    // from the untrusted peer, and BitColumnMatrix(rows, cols)
    // eagerly reserves wordsPerCol*cols words — within the protocol
    // bounds alone that is still a multi-terabyte request. Only a
    // payload whose length matches (so the allocation is bounded by
    // bytes actually on the wire) may drive the allocation.
    const uint64_t wpc =
        static_cast<uint64_t>(rows) / 64 + (rows % 64 != 0 ? 1 : 0);
    uint64_t words = 0;
    if ((cols != 0 && wpc > UINT64_MAX / cols) ||
        (words = wpc * cols) > UINT64_MAX / 16)
        return Status::parseError("bits payload size for ", rows, "x",
                                  cols, " overflows");
    const uint64_t expected = words * 16;
    if (hex.size() != expected)
        return Status::parseError("bits payload is ", hex.size(),
                                  " hex digits, ", rows, "x", cols,
                                  " needs ", expected);
    BitColumnMatrix bits(rows, cols);
    // Bits past rows-1 in each column's last word must be zero — the
    // compute kernels' zero-tail contract.
    const uint64_t tail_mask =
        (rows % 64 == 0) ? ~uint64_t{0}
                         : ((uint64_t{1} << (rows % 64)) - 1);
    size_t i = 0;
    for (size_t c = 0; c < cols; ++c) {
        uint64_t *out = bits.colWordsMutable(c);
        for (size_t w = 0; w < wpc; ++w) {
            uint64_t value = 0;
            for (int k = 0; k < 16; ++k) {
                const int nibble = hexNibble(hex[i++]);
                if (nibble < 0)
                    return Status::parseError(
                        "non-hex digit in bits payload");
                value = (value << 4) | static_cast<uint64_t>(nibble);
            }
            if (w + 1 == wpc && (value & ~tail_mask) != 0)
                return Status::parseError(
                    "bits payload has set bits past row ", rows,
                    " in column ", c);
            out[w] = value;
        }
    }
    return bits;
}

StatusOr<WireRequest>
parseRequestLine(std::string_view line)
{
    std::vector<Field> fields;
    if (Status st = scanObject(line, fields); !st.ok())
        return st;

    StatusOr<uint64_t> version = uintField(fields, "schema_version");
    if (!version.ok())
        return version.status();
    if (*version != kSchemaVersion)
        return Status::invalidArgument("unsupported schema_version ",
                                       *version, ", this build speaks ",
                                       kSchemaVersion);
    StatusOr<std::string> op = strField(fields, "op");
    if (!op.ok())
        return op.status();

    WireRequest request;
    std::vector<std::string_view> allowed = {"schema_version", "op"};
    if (*op == "create_session") {
        request.op = RequestOp::CreateSession;
        allowed.insert(allowed.end(),
                       {"session", "model", "window_t"});
    } else if (*op == "submit_chunk") {
        request.op = RequestOp::SubmitChunk;
        allowed.insert(allowed.end(),
                       {"session", "cycles", "proxies", "bits"});
    } else if (*op == "close_session") {
        request.op = RequestOp::CloseSession;
        allowed.push_back("session");
    } else if (*op == "cancel_session") {
        request.op = RequestOp::CancelSession;
        allowed.push_back("session");
    } else if (*op == "list_models") {
        request.op = RequestOp::ListModels;
    } else {
        return Status::invalidArgument("unknown op '", *op, "'");
    }
    for (const Field &f : fields) {
        bool known = false;
        for (std::string_view key : allowed)
            known = known || f.key == key;
        if (!known)
            return Status::invalidArgument("unexpected field '", f.key,
                                           "' for op '", *op, "'");
    }

    if (request.op != RequestOp::ListModels) {
        StatusOr<std::string> session = strField(fields, "session");
        if (!session.ok())
            return session.status();
        if (!validSessionName(*session))
            return Status::invalidArgument(
                "session names are 1-64 chars of [A-Za-z0-9_-]");
        request.session = std::move(*session);
    }

    if (request.op == RequestOp::CreateSession) {
        StatusOr<std::string> model = strField(fields, "model");
        if (!model.ok())
            return model.status();
        if (model->empty())
            return Status::invalidArgument("model must be non-empty");
        request.model = std::move(*model);
        if (findField(fields, "window_t")) {
            StatusOr<uint64_t> window = uintField(fields, "window_t");
            if (!window.ok())
                return window.status();
            if (*window > UINT32_MAX)
                return Status::invalidArgument("window_t out of range");
            request.windowT = static_cast<uint32_t>(*window);
        }
    }

    if (request.op == RequestOp::SubmitChunk) {
        StatusOr<uint64_t> cycles = uintField(fields, "cycles");
        StatusOr<uint64_t> proxies = uintField(fields, "proxies");
        StatusOr<std::string> payload = strField(fields, "bits");
        if (!cycles.ok())
            return cycles.status();
        if (!proxies.ok())
            return proxies.status();
        if (!payload.ok())
            return payload.status();
        if (*cycles == 0 || *cycles > kMaxChunkCycles)
            return Status::invalidArgument("cycles must be in [1, ",
                                           kMaxChunkCycles, "]");
        if (*proxies == 0 || *proxies > kMaxChunkProxies)
            return Status::invalidArgument("proxies must be in [1, ",
                                           kMaxChunkProxies, "]");
        StatusOr<BitColumnMatrix> bits =
            decodeBitsHex(*payload, static_cast<size_t>(*cycles),
                          static_cast<size_t>(*proxies));
        if (!bits.ok())
            return bits.status();
        request.bits = std::move(*bits);
    }
    return request;
}

std::string
encodeRequest(const WireRequest &request)
{
    std::string out = "{\"schema_version\":";
    out += std::to_string(kSchemaVersion);
    switch (request.op) {
    case RequestOp::CreateSession:
        out += ",\"op\":\"create_session\",\"session\":";
        out += quoted(request.session);
        out += ",\"model\":";
        out += quoted(request.model);
        if (request.windowT != 0) {
            out += ",\"window_t\":";
            out += std::to_string(request.windowT);
        }
        break;
    case RequestOp::SubmitChunk:
        out += ",\"op\":\"submit_chunk\",\"session\":";
        out += quoted(request.session);
        out += ",\"cycles\":";
        out += std::to_string(request.bits.rows());
        out += ",\"proxies\":";
        out += std::to_string(request.bits.cols());
        out += ",\"bits\":\"";
        out += encodeBitsHex(request.bits);
        out += '"';
        break;
    case RequestOp::CloseSession:
        out += ",\"op\":\"close_session\",\"session\":";
        out += quoted(request.session);
        break;
    case RequestOp::CancelSession:
        out += ",\"op\":\"cancel_session\",\"session\":";
        out += quoted(request.session);
        break;
    case RequestOp::ListModels:
        out += ",\"op\":\"list_models\"";
        break;
    }
    out += "}\n";
    return out;
}

std::string
encodeSessionCreated(const std::string &session,
                     const std::string &model)
{
    std::string out = responseHead("session_created");
    out += ",\"session\":";
    out += quoted(session);
    out += ",\"model\":";
    out += quoted(model);
    out += "}\n";
    return out;
}

std::string
encodePowerEvent(const std::string &session, uint64_t first_index,
                 std::span<const float> values)
{
    std::string out = responseHead("power");
    out += ",\"session\":";
    out += quoted(session);
    out += ",\"first_index\":";
    out += std::to_string(first_index);
    out += ",\"values\":[";
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ',';
        out += floatToken(values[i]);
    }
    out += "]}\n";
    return out;
}

std::string
encodeSessionClosed(const std::string &session,
                    const SessionSummary &summary)
{
    std::string out = responseHead("session_closed");
    out += ",\"session\":";
    out += quoted(session);
    out += ",\"model\":";
    out += quoted(summary.model);
    out += ",\"cycles\":";
    out += std::to_string(summary.cycles);
    out += ",\"chunks\":";
    out += std::to_string(summary.chunks);
    out += ",\"outputs\":";
    out += std::to_string(summary.outputs);
    out += ",\"cancelled\":";
    out += summary.cancelled ? "true" : "false";
    out += "}\n";
    return out;
}

std::string
encodeSessionCancelled(const std::string &session)
{
    std::string out = responseHead("session_cancelled");
    out += ",\"session\":";
    out += quoted(session);
    out += "}\n";
    return out;
}

std::string
encodeModels(std::span<const ModelInfo> models)
{
    std::string out = responseHead("models");
    out += ",\"models\":[";
    for (size_t i = 0; i < models.size(); ++i) {
        if (i)
            out += ',';
        out += "{\"name\":";
        out += quoted(models[i].name);
        out += ",\"quantized\":";
        out += models[i].quantized ? "true" : "false";
        out += ",\"proxies\":";
        out += std::to_string(models[i].proxyCount);
        out += ",\"bits\":";
        out += std::to_string(models[i].bits);
        out += ",\"window_t\":";
        out += std::to_string(models[i].windowT);
        out += '}';
    }
    out += "]}\n";
    return out;
}

std::string
encodeError(const std::string &session, const Status &status)
{
    std::string out = responseHead("error");
    if (!session.empty()) {
        out += ",\"session\":";
        out += quoted(session);
    }
    out += ",\"code\":\"";
    out += statusCodeWireName(status.code());
    out += "\",\"message\":";
    out += quoted(status.message());
    out += "}\n";
    return out;
}

} // namespace apollo::serve
