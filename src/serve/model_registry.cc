#include "serve/model_registry.hh"

#include <bit>

namespace apollo::serve {

ModelInfo
describeEntry(const ModelEntry &entry)
{
    ModelInfo info;
    info.name = entry.name;
    info.quantized = entry.quantized();
    info.proxyCount = entry.proxyCount();
    if (entry.qmodel) {
        info.bits = entry.qmodel->bits;
        info.windowT = entry.windowT;
    }
    return info;
}

Status
ModelRegistry::addFloat(const std::string &name, ApolloModel model)
{
    if (model.proxyIds.empty())
        return Status::invalidArgument("model '", name,
                                       "' has no proxies");
    if (model.weights.size() != model.proxyIds.size())
        return Status::invalidArgument(
            "model '", name, "' weight/proxy arity mismatch");
    auto entry = std::make_shared<ModelEntry>();
    entry->name = name;
    entry->model =
        std::make_shared<const ApolloModel>(std::move(model));
    return insert(std::move(entry));
}

Status
ModelRegistry::addQuantized(const std::string &name,
                            QuantizedModel model, uint32_t window_T)
{
    if (model.proxyIds.empty())
        return Status::invalidArgument("model '", name,
                                       "' has no proxies");
    if (window_T == 0 || !std::has_single_bit(window_T))
        return Status::invalidArgument(
            "OPM window T must be a power of two, got ", window_T);
    auto entry = std::make_shared<ModelEntry>();
    entry->name = name;
    entry->qmodel =
        std::make_shared<const QuantizedModel>(std::move(model));
    entry->model = std::make_shared<const ApolloModel>(
        entry->qmodel->toFloatModel());
    entry->windowT = window_T;
    return insert(std::move(entry));
}

StatusOr<ModelInfo>
ModelRegistry::addQuantizedVariant(const std::string &name,
                                   const std::string &base,
                                   uint32_t bits, uint32_t window_T)
{
    std::shared_ptr<const ModelEntry> base_entry = find(base);
    if (!base_entry)
        return Status::invalidArgument("unknown base model '", base,
                                       "'");
    if (base_entry->quantized())
        return Status::invalidArgument(
            "base model '", base,
            "' is already quantized; derive variants from the float "
            "entry");
    if (window_T == 0 || !std::has_single_bit(window_T))
        return Status::invalidArgument(
            "OPM window T must be a power of two, got ", window_T);
    StatusOr<QuantizedModel> qm =
        tryQuantizeModel(*base_entry->model, bits);
    if (!qm.ok())
        return qm.status();
    auto entry = std::make_shared<ModelEntry>();
    entry->name = name;
    // Share the base float weights; only the fixed-point vector is new.
    entry->model = base_entry->model;
    entry->qmodel =
        std::make_shared<const QuantizedModel>(std::move(*qm));
    entry->windowT = window_T;
    ModelInfo info = describeEntry(*entry);
    if (Status st = insert(std::move(entry)); !st.ok())
        return st;
    return info;
}

std::shared_ptr<const ModelEntry>
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second;
}

std::vector<ModelInfo>
ModelRegistry::list() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ModelInfo> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(describeEntry(*entry));
    return out;
}

size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

Status
ModelRegistry::insert(std::shared_ptr<const ModelEntry> entry)
{
    if (entry->name.empty())
        return Status::invalidArgument("model name must be non-empty");
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.emplace(entry->name, entry);
    (void)it;
    if (!inserted)
        return Status::invalidArgument("model '", entry->name,
                                       "' is already registered");
    return Status::okStatus();
}

} // namespace apollo::serve
