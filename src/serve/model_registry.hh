/**
 * @file
 * The serving-layer model registry: named, immutable, shareable model
 * entries. A long-running power-introspection service loads several
 * trained models (float design-time estimators plus quantized OPM
 * variants at various bit widths) once, and every session created
 * against a name shares the entry through a shared_ptr — weights are
 * never copied per session, and an entry stays alive for as long as
 * any session still streams against it even if it is replaced in the
 * registry.
 */

#ifndef APOLLO_SERVE_MODEL_REGISTRY_HH
#define APOLLO_SERVE_MODEL_REGISTRY_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/apollo_model.hh"
#include "opm/quantize.hh"
#include "util/status.hh"

namespace apollo::serve {

/** One immutable registry entry (float, or float + quantized). */
struct ModelEntry
{
    std::string name;
    /** Always set; the float weights (shared, never copied). */
    std::shared_ptr<const ApolloModel> model;
    /** Set for quantized entries. */
    std::shared_ptr<const QuantizedModel> qmodel;
    /** OPM measurement window; meaningful when qmodel is set. */
    uint32_t windowT = 0;

    bool quantized() const { return qmodel != nullptr; }
    size_t proxyCount() const { return model->proxyCount(); }
};

/** Wire/ListModels metadata for one entry. */
struct ModelInfo
{
    std::string name;
    bool quantized = false;
    size_t proxyCount = 0;
    /** Weight bit width (0 for float entries). */
    uint32_t bits = 0;
    /** OPM window T (0 for float entries). */
    uint32_t windowT = 0;
};

/**
 * Thread-safe name -> entry map. Registration returns InvalidArgument
 * for duplicate names or malformed models; lookups hand out shared
 * const entries.
 */
class ModelRegistry
{
  public:
    /** Register a float design-time estimator under @p name. */
    Status addFloat(const std::string &name, ApolloModel model);

    /**
     * Register a quantized OPM variant under @p name. @p window_T must
     * be a power of two (the OPM's shift-divide contract).
     */
    Status addQuantized(const std::string &name, QuantizedModel model,
                        uint32_t window_T);

    /**
     * Derive a @p bits-bit quantized variant from the float entry
     * @p base and register it under @p name. The variant shares the
     * base entry's float model (no weight copy); only the small
     * fixed-point weight vector is new.
     */
    StatusOr<ModelInfo> addQuantizedVariant(const std::string &name,
                                            const std::string &base,
                                            uint32_t bits,
                                            uint32_t window_T);

    /** The entry for @p name, or nullptr when absent. */
    std::shared_ptr<const ModelEntry> find(const std::string &name) const;

    /** Metadata for every entry, sorted by name. */
    std::vector<ModelInfo> list() const;

    size_t size() const;

  private:
    Status insert(std::shared_ptr<const ModelEntry> entry);

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<const ModelEntry>> entries_;
};

/** The ListModels metadata of one entry. */
ModelInfo describeEntry(const ModelEntry &entry);

} // namespace apollo::serve

#endif // APOLLO_SERVE_MODEL_REGISTRY_HH
