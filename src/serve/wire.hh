/**
 * @file
 * The versioned line-delimited JSON wire form of the serving API
 * (docs/SERVE_SCHEMA.md is the normative spec). One request or
 * response per line, every line a flat JSON object carrying
 * "schema_version". Chunk payloads travel as hex-encoded packed
 * column-major words — exactly the BitColumnMatrix memory layout — so
 * encode/decode round-trips are bit-exact, and a recorded request
 * stream replays to bit-identical power samples.
 *
 * The parser is deliberately strict (single flat object, known keys,
 * exact types, zero-tail payload words): data errors come back as
 * ParseError/InvalidArgument Status values per the repo's two-regime
 * error model, never exceptions or aborts.
 */

#ifndef APOLLO_SERVE_WIRE_HH
#define APOLLO_SERVE_WIRE_HH

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "serve/model_registry.hh"
#include "serve/session_manager.hh"
#include "util/bitvec.hh"
#include "util/status.hh"

namespace apollo::serve {

/** Wire protocol version; bump on any incompatible schema change. */
constexpr uint32_t kSchemaVersion = 1;

/** The five request verbs of serving API v1. */
enum class RequestOp
{
    CreateSession,
    SubmitChunk,
    CloseSession,
    CancelSession,
    ListModels,
};

/** One parsed request line. */
struct WireRequest
{
    RequestOp op = RequestOp::ListModels;
    /** Client-chosen session name ([A-Za-z0-9_-], at most 64 chars). */
    std::string session;
    /** create_session: registry model name. */
    std::string model;
    /** create_session: optional float-engine window T. */
    uint32_t windowT = 0;
    /** submit_chunk: decoded chunk payload. */
    BitColumnMatrix bits;
};

/**
 * Parse one request line. ParseError for malformed JSON or payload
 * encoding; InvalidArgument for schema violations (wrong
 * schema_version, unknown op, bad session name, missing fields).
 */
StatusOr<WireRequest> parseRequestLine(std::string_view line);

/** Encode a request as one newline-terminated wire line. */
std::string encodeRequest(const WireRequest &request);

/** @name Response encoders (each returns one "...\n" line). */
///@{
std::string encodeSessionCreated(const std::string &session,
                                 const std::string &model);
std::string encodePowerEvent(const std::string &session,
                             uint64_t first_index,
                             std::span<const float> values);
std::string encodeSessionClosed(const std::string &session,
                                const SessionSummary &summary);
std::string encodeSessionCancelled(const std::string &session);
std::string encodeModels(std::span<const ModelInfo> models);
std::string encodeError(const std::string &session,
                        const Status &status);
///@}

/** Stable wire name of a status code ("invalid_argument", ...). */
const char *statusCodeWireName(StatusCode code);

/** True iff @p name is a valid wire session name. */
bool validSessionName(std::string_view name);

/** Hex encoding of the packed column-major words of @p bits. */
std::string encodeBitsHex(const BitColumnMatrix &bits);

/**
 * Decode an encodeBitsHex() payload back into a @p rows x @p cols
 * matrix. ParseError for non-hex input, a length not equal to
 * cols * wordsPerCol words, or set bits past @p rows in a column's
 * tail word (the zero-tail contract the compute kernels rely on).
 */
StatusOr<BitColumnMatrix> decodeBitsHex(std::string_view hex,
                                        size_t rows, size_t cols);

} // namespace apollo::serve

#endif // APOLLO_SERVE_WIRE_HH
