#include "control/droop_controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace apollo::control {

Status
DroopControllerConfig::validate() const
{
    if (vdd <= 0.0)
        return Status::invalidArgument("controller vdd must be positive, got ",
                                       vdd);
    if (policy == ThrottleMode::None)
        return Status::okStatus();
    if (triggerDelta <= 0.0)
        return Status::invalidArgument(
            "controller trigger delta must be positive, got ", triggerDelta);
    if (engageCycles == 0)
        return Status::invalidArgument(
            "controller engage window must be at least 1 cycle");
    if (policy == ThrottleMode::Proportional && proportionalLevel == 0)
        return Status::invalidArgument(
            "proportional policy needs an issue cap of at least 1");
    return Status::okStatus();
}

DroopController::DroopController(const DroopControllerConfig &config)
    : cfg_(config)
{
    const Status st = cfg_.validate();
    APOLLO_REQUIRE(st.ok(), "invalid controller config: ", st.message());
}

void
DroopController::observe(uint64_t cycle, double est_power)
{
    const double current = est_power / cfg_.vdd;
    const bool trigger =
        havePrev_ && (current - prevCurrent_) > cfg_.triggerDelta;
    prevCurrent_ = current;
    havePrev_ = true;
    if (!trigger || cfg_.policy == ThrottleMode::None)
        return;

    triggers_++;
    const uint64_t start = cycle + 1 + cfg_.triggerLatency;
    const uint64_t end = start + cfg_.engageCycles - 1;
    if (state_ == TriggerState::Idle) {
        engageAt_ = start;
        releaseAfter_ = end;
        state_ = TriggerState::Armed;
    } else {
        releaseAfter_ = std::max(releaseAfter_, end);
    }
}

void
DroopController::apply(uint64_t cycle, Throttle &throttle)
{
    const uint64_t next = cycle + 1;
    if (state_ == TriggerState::Armed && next >= engageAt_) {
        state_ = TriggerState::Engaged;
        throttle.engage(cfg_.policy, cfg_.proportionalLevel);
    }
    if (state_ == TriggerState::Engaged) {
        if (next > releaseAfter_) {
            throttle.release();
            state_ = TriggerState::Idle;
        } else {
            engagedCycles_++;
        }
    }
}

} // namespace apollo::control
