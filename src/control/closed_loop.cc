#include "control/closed_loop.hh"

#include <algorithm>
#include <bit>

#include "gen/fitness_eval.hh"
#include "obs/metrics.hh"
#include "opm/opm_simulator.hh"

namespace apollo::control {

ClosedLoopRunner::ClosedLoopRunner(const Netlist &netlist,
                                   const QuantizedModel &model,
                                   const CoreParams &core_params,
                                   const PowerParams &power_params)
    : netlist_(netlist), model_(model), coreParams_(core_params),
      powerParams_(power_params), engine_(netlist), oracle_(netlist,
                                                           power_params)
{}

void
ClosedLoopRunner::packProxyBits(std::span<const ActivityFrame> frames,
                                size_t i,
                                std::vector<uint64_t> &words) const
{
    std::fill(words.begin(), words.end(), 0);
    for (size_t q = 0; q < model_.proxyIds.size(); ++q) {
        if (engine_.toggles(model_.proxyIds[q], frames, i))
            words[q >> 6] |= 1ULL << (q & 63);
    }
}

StatusOr<ClosedLoopResult>
ClosedLoopRunner::run(const Program &prog, const ClosedLoopConfig &config)
{
    if (config.opmWindow == 0 || !std::has_single_bit(config.opmWindow))
        return Status::invalidArgument(
            "OPM window must be a power of two, got ", config.opmWindow);
    if (config.maxCycles == 0)
        return Status::invalidArgument("closed loop needs maxCycles >= 1");
    if (Status st = config.controller.validate(); !st.ok())
        return st;

    OpmSimulator opm(model_, config.opmWindow);
    const bool controlled =
        config.controller.policy != ThrottleMode::None;
    DroopController controller(config.controller);

    ClosedLoopResult result;
    std::vector<ActivityFrame> &frames = result.frames;
    frames.reserve(config.maxCycles);
    result.estPower.reserve(config.maxCycles);
    std::vector<uint64_t> words((model_.proxyIds.size() + 63) / 64);
    double held = 0.0;

    TimingCore core(coreParams_);
    result.stats = core.run(
        prog, config.maxCycles,
        [&](const ActivityFrame &f) { frames.push_back(f); },
        [&](const ActivityFrame &, uint64_t cycle, Throttle &throttle) {
            packProxyBits(frames, frames.size() - 1, words);
            const OpmSimulator::Output out = opm.step(words.data());
            if (out.valid) {
                held = out.power;
                controller.observe(cycle, out.power);
            }
            result.estPower.push_back(static_cast<float>(held));
            if (controlled)
                controller.apply(cycle, throttle);
        });

    result.truthPower = truthPower(frames);
    result.triggers = controller.triggers();
    result.engagedCycles = controller.engagedCycles();
    APOLLO_COUNT("apollo.control.closed_loop_runs", 1);
    APOLLO_COUNT("apollo.control.triggers", result.triggers);
    APOLLO_COUNT("apollo.control.engaged_cycles", result.engagedCycles);
    return result;
}

std::vector<float>
ClosedLoopRunner::replayEstimate(std::span<const ActivityFrame> frames,
                                 uint32_t opm_window)
{
    OpmSimulator opm(model_, opm_window);
    std::vector<uint64_t> words((model_.proxyIds.size() + 63) / 64);
    std::vector<float> est;
    est.reserve(frames.size());
    double held = 0.0;
    for (size_t i = 0; i < frames.size(); ++i) {
        packProxyBits(frames, i, words);
        const OpmSimulator::Output out = opm.step(words.data());
        if (out.valid)
            held = out.power;
        est.push_back(static_cast<float>(held));
    }
    return est;
}

std::vector<float>
ClosedLoopRunner::truthPower(std::span<const ActivityFrame> frames)
{
    FitnessEvaluator eval(netlist_, engine_, oracle_);
    std::vector<double> powers;
    eval.cyclePowers(frames, powers);
    std::vector<float> out(powers.size());
    for (size_t i = 0; i < powers.size(); ++i)
        out[i] = static_cast<float>(powers[i]);
    return out;
}

} // namespace apollo::control
