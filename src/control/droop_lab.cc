#include "control/droop_lab.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <memory>
#include <ostream>

#include "droop/droop.hh"
#include "flow/flows.hh"
#include "gen/test_suite.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace apollo::control {

namespace {

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * A droop-rich workload: tight max-power bursts separated by near-idle
 * stretches, so current ramps hard at every phase edge (the Ldi/dt
 * worst case §8.2 throttles against).
 */
Program
makeBurstIdleWorkload(const std::string &name, uint64_t approx_cycles,
                      uint64_t seed)
{
    using namespace asm_helpers;

    const std::vector<std::vector<Instruction>> phases = {
        maxPowerBody(),
        {nop(), nop(), nop(), nop(), nop(), nop(), addi(0, 0, 1)},
    };

    const uint64_t rounds = 6;
    const uint64_t per_phase_cycles = std::max<uint64_t>(
        120, approx_cycles / (rounds * phases.size()));

    std::vector<Instruction> instrs;
    for (uint64_t r = 0; r < rounds; ++r) {
        for (const auto &body : phases) {
            const auto iters = static_cast<int32_t>(std::max<uint64_t>(
                4, (2 * per_phase_cycles) / (3 * body.size())));
            instrs.push_back(movi(27, iters));
            const auto body_begin = instrs.size();
            instrs.insert(instrs.end(), body.begin(), body.end());
            instrs.push_back(subi(27, 27, 1));
            instrs.push_back(bnez(
                27, -static_cast<int32_t>(instrs.size() - body_begin)));
        }
    }

    Program prog(name, std::move(instrs));
    prog.setDataSeed(seed);
    return prog;
}

ThreadPool &
selectPool(uint32_t threads, std::unique_ptr<ThreadPool> &local)
{
    if (threads == 0)
        return ThreadPool::global();
    local = std::make_unique<ThreadPool>(threads);
    return *local;
}

Status
firstError(const std::vector<Status> &statuses)
{
    for (const Status &st : statuses)
        if (!st.ok())
            return st;
    return Status::okStatus();
}

} // namespace

const char *
throttleModeName(ThrottleMode mode)
{
    switch (mode) {
      case ThrottleMode::None:
        return "none";
      case ThrottleMode::Scheme1:
        return "scheme1";
      case ThrottleMode::Scheme2:
        return "scheme2";
      case ThrottleMode::Scheme3:
        return "scheme3";
      case ThrottleMode::Proportional:
        return "proportional";
    }
    return "unknown";
}

Status
DroopLabConfig::validate() const
{
    if (workloads.empty() || windows.empty() || bits.empty() ||
        policies.empty() || pdns.empty())
        return Status::invalidArgument(
            "droop lab needs at least one workload, window, bits "
            "setting, policy, and PDN variant");
    if (vdd <= 0.0)
        return Status::invalidArgument("vdd must be positive, got ", vdd);
    if (triggerPercentile <= 0.0 || triggerPercentile >= 1.0)
        return Status::invalidArgument(
            "trigger percentile must be in (0, 1), got ",
            triggerPercentile);
    if (engageCycles == 0)
        return Status::invalidArgument(
            "engage window must be at least 1 cycle");
    if (proportionalLevel == 0)
        return Status::invalidArgument(
            "proportional level must be at least 1");
    for (uint32_t w : windows)
        if (w == 0 || !std::has_single_bit(w))
            return Status::invalidArgument(
                "OPM window must be a power of two, got ", w);
    for (ThrottleMode p : policies)
        if (p == ThrottleMode::None)
            return Status::invalidArgument(
                "policy None is the implicit baseline; sweep only "
                "active policies");
    for (const DroopLabWorkload &w : workloads)
        if (w.cycles < 4)
            return Status::invalidArgument(
                "workload '", w.name, "' needs at least 4 cycles");
    for (const PdnScenario &p : pdns) {
        if (p.thresholdFrac <= 0.0 || p.thresholdFrac >= 1.0)
            return Status::invalidArgument(
                "PDN '", p.name, "': threshold fraction must be in "
                "(0, 1), got ", p.thresholdFrac);
        if (p.rStaticVolts < 0.0 || p.dynamicGainVolts < 0.0)
            return Status::invalidArgument(
                "PDN '", p.name, "': gains must be non-negative");
    }
    return Status::okStatus();
}

DroopLabConfig
defaultDroopLabConfig(uint64_t cycles)
{
    DroopLabConfig cfg;
    cfg.workloads.push_back(
        {"burst_idle", makeBurstIdleWorkload("burst_idle", cycles, 0xd1),
         cycles});
    cfg.workloads.push_back(
        {"phase_mix", makeLongWorkload("phase_mix", cycles, 0xd2),
         cycles});
    for (const TestBenchmark &tb : designerTestSuite()) {
        if (tb.program.name() == "maxpwr_cpu") {
            cfg.workloads.push_back({"maxpwr_cpu", tb.program, cycles});
            break;
        }
    }
    return cfg;
}

bool
DroopLabReport::hasDominatingPolicy(double max_ipc_loss) const
{
    for (const DroopLabRow &row : rows)
        if (row.droopCyclesAvoided > 0 && row.ipcLossFrac < max_ipc_loss)
            return true;
    return false;
}

void
DroopLabReport::render(std::ostream &os) const
{
    TablePrinter table({"workload", "tau", "B", "policy", "pdn",
                        "pearson dI", "droop base", "droop", "avoided",
                        "ipc loss", "engaged", "pareto"});
    for (const DroopLabRow &row : rows) {
        table.addRow(
            {row.workload, TablePrinter::integer(row.window),
             TablePrinter::integer(row.bits),
             throttleModeName(row.policy), row.pdn,
             TablePrinter::num(row.pearsonDeltaI, 3),
             TablePrinter::integer(
                 static_cast<long long>(row.baseDroopCycles)),
             TablePrinter::integer(
                 static_cast<long long>(row.droopCycles)),
             TablePrinter::integer(row.droopCyclesAvoided),
             TablePrinter::percent(row.ipcLossFrac),
             TablePrinter::integer(
                 static_cast<long long>(row.engagedCycles)),
             row.pareto ? "*" : ""});
    }
    table.render(os);
}

std::string
DroopLabReport::toJson() const
{
    std::string json = "{\n  \"schema\": \"apollo.droop_lab.v1\",\n";
    json += "  \"grid_cells\": " + std::to_string(gridCells) + ",\n";
    json += "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const DroopLabRow &r = rows[i];
        json += "    {\"workload\": \"" + r.workload + "\"";
        json += ", \"tau\": " + std::to_string(r.window);
        json += ", \"bits\": " + std::to_string(r.bits);
        json += std::string(", \"policy\": \"") +
                throttleModeName(r.policy) + "\"";
        json += ", \"pdn\": \"" + r.pdn + "\"";
        json += ", \"trigger_delta\": " + fmtDouble(r.triggerDelta);
        json += ", \"pearson_delta_i\": " + fmtDouble(r.pearsonDeltaI);
        json += ", \"base_droop_cycles\": " +
                std::to_string(r.baseDroopCycles);
        json += ", \"droop_cycles\": " + std::to_string(r.droopCycles);
        json += ", \"droop_cycles_avoided\": " +
                std::to_string(r.droopCyclesAvoided);
        json += ", \"base_min_voltage\": " + fmtDouble(r.baseMinVoltage);
        json += ", \"min_voltage\": " + fmtDouble(r.minVoltage);
        json += ", \"base_ipc\": " + fmtDouble(r.baseIpc);
        json += ", \"ipc\": " + fmtDouble(r.ipc);
        json += ", \"ipc_loss_frac\": " + fmtDouble(r.ipcLossFrac);
        json += ", \"triggers\": " + std::to_string(r.triggers);
        json += ", \"engaged_cycles\": " +
                std::to_string(r.engagedCycles);
        json += std::string(", \"pareto\": ") +
                (r.pareto ? "true" : "false");
        json += i + 1 < rows.size() ? "},\n" : "}\n";
    }
    json += "  ],\n";
    json += std::string("  \"dominating_policy\": ") +
            (hasDominatingPolicy() ? "true" : "false") + "\n";
    json += "}\n";
    return json;
}

StatusOr<DroopLabReport>
runDroopLab(const Netlist &netlist, const ApolloModel &model,
            const DroopLabConfig &config)
{
    if (Status st = config.validate(); !st.ok())
        return st;
    APOLLO_TRACE_SPAN("flow.droop_lab");
    APOLLO_SCOPED_TIMER("apollo.flow.droop_lab_seconds");

    // Quantize once per bits setting; every cell shares the result.
    std::vector<QuantizedModel> qmodels;
    qmodels.reserve(config.bits.size());
    for (uint32_t b : config.bits) {
        StatusOr<QuantizedModel> qm = tryQuantizeModel(model, b);
        if (!qm.ok())
            return qm.status();
        qmodels.push_back(std::move(*qm));
    }

    const size_t n_w = config.workloads.size();
    const size_t n_t = config.windows.size();
    const size_t n_b = config.bits.size();
    const size_t n_p = config.policies.size();

    std::unique_ptr<ThreadPool> local;
    ThreadPool &pool = selectPool(config.threads, local);

    // Stage A: one unthrottled baseline per workload — the frames,
    // truth power, and IPC every other stage is scored against.
    struct Baseline
    {
        ClosedLoopResult res;
        double meanCurrent = 0.0;
    };
    std::vector<Baseline> baselines(n_w);
    std::vector<Status> errors(n_w, Status::okStatus());
    pool.parallelFor(n_w, [&](size_t i0, size_t i1) {
        for (size_t w = i0; w < i1; ++w) {
            const DroopLabWorkload &wl = config.workloads[w];
            ClosedLoopRunner runner(netlist, qmodels[0],
                                    config.coreParams,
                                    config.powerParams);
            ClosedLoopConfig c;
            c.opmWindow = config.windows[0];
            c.maxCycles = wl.cycles;
            c.controller.vdd = config.vdd;
            c.controller.policy = ThrottleMode::None;
            StatusOr<ClosedLoopResult> res = runner.run(wl.program, c);
            if (!res.ok()) {
                errors[w] = res.status();
                continue;
            }
            if (res->truthPower.size() < 4) {
                errors[w] = Status::invalidArgument(
                    "workload '", wl.name, "' produced only ",
                    res->truthPower.size(),
                    " recorded cycles; the lab needs at least 4");
                continue;
            }
            Baseline &b = baselines[w];
            b.res = std::move(*res);
            double sum = 0.0;
            for (float p : b.res.truthPower)
                sum += p;
            b.meanCurrent = sum /
                (static_cast<double>(b.res.truthPower.size()) *
                 config.vdd);
        }
    });
    if (Status st = firstError(errors); !st.ok())
        return st;

    // Stage B: per (workload, tau, B) — replay the OPM over the
    // baseline frames and calibrate the trigger as the configured
    // percentile of estimated |Delta-I| (the §8.2 precursor cut).
    struct Calibration
    {
        double trigger = 0.0;
    };
    const size_t n_wtb = n_w * n_t * n_b;
    std::vector<Calibration> calib(n_wtb);
    pool.parallelFor(n_wtb, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            const size_t w = i / (n_t * n_b);
            const size_t t = (i / n_b) % n_t;
            const size_t b = i % n_b;
            ClosedLoopRunner runner(netlist, qmodels[b],
                                    config.coreParams,
                                    config.powerParams);
            const std::vector<float> est = runner.replayEstimate(
                baselines[w].res.frames, config.windows[t]);
            const std::vector<double> di =
                deltaI(currentFromPower(est, config.vdd));
            std::vector<double> mags;
            mags.reserve(di.size() - 1);
            for (size_t k = 1; k < di.size(); ++k)
                mags.push_back(std::abs(di[k]));
            double trigger =
                percentileCut(mags, config.triggerPercentile);
            // A flat estimate (coarse quantization) can cut at 0;
            // keep the controller config valid — with no estimated
            // rises above epsilon it still never fires.
            if (trigger <= 0.0)
                trigger = 1e-12;
            calib[i].trigger = trigger;
        }
    });

    // Stage C: the closed-loop cells (workload, tau, B, policy).
    struct Cell
    {
        ClosedLoopResult res;
        double pearson = 0.0;
    };
    const size_t n_cells = n_wtb * n_p;
    std::vector<Cell> cells(n_cells);
    std::vector<Status> cellErrors(n_cells, Status::okStatus());
    pool.parallelFor(n_cells, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            const size_t w = i / (n_t * n_b * n_p);
            const size_t t = (i / (n_b * n_p)) % n_t;
            const size_t b = (i / n_p) % n_b;
            const size_t p = i % n_p;
            const DroopLabWorkload &wl = config.workloads[w];
            ClosedLoopRunner runner(netlist, qmodels[b],
                                    config.coreParams,
                                    config.powerParams);
            ClosedLoopConfig c;
            c.opmWindow = config.windows[t];
            c.maxCycles = wl.cycles;
            c.controller.vdd = config.vdd;
            c.controller.triggerDelta =
                calib[(w * n_t + t) * n_b + b].trigger;
            c.controller.triggerLatency = config.triggerLatency;
            c.controller.engageCycles = config.engageCycles;
            c.controller.policy = config.policies[p];
            c.controller.proportionalLevel = config.proportionalLevel;
            StatusOr<ClosedLoopResult> res = runner.run(wl.program, c);
            if (!res.ok()) {
                cellErrors[i] = res.status();
                continue;
            }
            cells[i].res = std::move(*res);
            cells[i].res.frames.clear();
            cells[i].res.frames.shrink_to_fit();
            if (cells[i].res.truthPower.size() >= 4)
                cells[i].pearson =
                    analyzeDidt(cells[i].res.truthPower,
                                cells[i].res.estPower, config.vdd)
                        .pearsonDeltaI;
        }
    });
    if (Status st = firstError(cellErrors); !st.ok())
        return st;

    // Stage D: cross with the PDN variants (post-hoc RLC simulation on
    // both truth traces) and assemble rows in deterministic grid order.
    DroopLabReport report;
    report.gridCells = n_cells;
    report.rows.reserve(n_cells * config.pdns.size());
    for (size_t w = 0; w < n_w; ++w) {
        for (size_t pd = 0; pd < config.pdns.size(); ++pd) {
            const PdnScenario &scen = config.pdns[pd];
            PdnParams pdn;
            pdn.vdd = config.vdd;
            pdn.resonancePeriodCycles = scen.resonancePeriodCycles;
            pdn.damping = scen.damping;
            pdn.rStatic = scen.rStaticVolts / baselines[w].meanCurrent;
            pdn.dynamicGain =
                scen.dynamicGainVolts / baselines[w].meanCurrent;
            const double threshold = config.vdd * scen.thresholdFrac;
            const DroopSimResult base = simulateDroop(
                baselines[w].res.truthPower, pdn, threshold);
            const double base_ipc = baselines[w].res.stats.ipc();

            for (size_t t = 0; t < n_t; ++t) {
                for (size_t b = 0; b < n_b; ++b) {
                    for (size_t p = 0; p < n_p; ++p) {
                        const size_t ci =
                            ((w * n_t + t) * n_b + b) * n_p + p;
                        const Cell &cell = cells[ci];
                        const DroopSimResult mit = simulateDroop(
                            cell.res.truthPower, pdn, threshold);
                        DroopLabRow row;
                        row.workload = config.workloads[w].name;
                        row.window = config.windows[t];
                        row.bits = config.bits[b];
                        row.policy = config.policies[p];
                        row.pdn = scen.name;
                        row.triggerDelta =
                            calib[(w * n_t + t) * n_b + b].trigger;
                        row.pearsonDeltaI = cell.pearson;
                        row.baseDroopCycles = base.droopCycles;
                        row.droopCycles = mit.droopCycles;
                        row.droopCyclesAvoided =
                            static_cast<int64_t>(base.droopCycles) -
                            static_cast<int64_t>(mit.droopCycles);
                        row.baseMinVoltage = base.minVoltage;
                        row.minVoltage = mit.minVoltage;
                        row.baseIpc = base_ipc;
                        row.ipc = cell.res.stats.ipc();
                        row.ipcLossFrac =
                            base_ipc > 0.0
                                ? (base_ipc - row.ipc) / base_ipc
                                : 0.0;
                        row.triggers = cell.res.triggers;
                        row.engagedCycles = cell.res.engagedCycles;
                        report.rows.push_back(std::move(row));
                    }
                }
            }
        }
    }

    // Pareto fronts per (workload, pdn): maximize droop cycles
    // avoided, minimize IPC loss.
    const size_t group = n_t * n_b * n_p;
    for (size_t g = 0; g + group <= report.rows.size(); g += group) {
        for (size_t i = g; i < g + group; ++i) {
            DroopLabRow &row = report.rows[i];
            bool dominated = false;
            for (size_t j = g; j < g + group && !dominated; ++j) {
                if (j == i)
                    continue;
                const DroopLabRow &other = report.rows[j];
                const bool no_worse =
                    other.droopCyclesAvoided >= row.droopCyclesAvoided &&
                    other.ipcLossFrac <= row.ipcLossFrac;
                const bool better =
                    other.droopCyclesAvoided > row.droopCyclesAvoided ||
                    other.ipcLossFrac < row.ipcLossFrac;
                dominated = no_worse && better;
            }
            row.pareto = !dominated;
        }
    }

    APOLLO_COUNT("apollo.control.lab_runs", 1);
    APOLLO_COUNT("apollo.control.scenarios", report.rows.size());
    return report;
}

} // namespace apollo::control
