/**
 * @file
 * The closed OPM -> throttle loop. One run simulates a program on the
 * timing core while, per recorded cycle, the just-emitted ActivityFrame
 * is turned into the Q proxy toggle bits, pushed through the bit-true
 * OpmSimulator, and fed to a DroopController that pulses the core's
 * issue Throttle. Throttling changes the next cycles' activity, which
 * changes the power the RLC PDN sees — unlike the analytic
 * simulateWithMitigation current cap, the loop is genuinely closed.
 *
 * Ground-truth per-cycle power is computed after the run from the
 * collected (throttled) frames with the finalized oracle
 * (FitnessEvaluator at stride 1), so the truth trace reflects exactly
 * the activity the controller caused. Everything is deterministic:
 * same netlist + model + program + config => bit-identical result.
 */

#ifndef APOLLO_CONTROL_CLOSED_LOOP_HH
#define APOLLO_CONTROL_CLOSED_LOOP_HH

#include <cstdint>
#include <vector>

#include "activity/activity_engine.hh"
#include "control/droop_controller.hh"
#include "isa/program.hh"
#include "opm/quantize.hh"
#include "power/power_oracle.hh"
#include "rtl/netlist.hh"
#include "uarch/core.hh"
#include "util/status.hh"

namespace apollo::control {

/** One closed-loop run's configuration. */
struct ClosedLoopConfig
{
    /** OPM measurement window T in cycles (power of two). */
    uint32_t opmWindow = 1;
    /** Controller parameters; policy None runs the loop open
     *  (OPM still sampled, throttle never pulsed). */
    DroopControllerConfig controller;
    /** Recorded-cycle budget. */
    uint64_t maxCycles = 3000;
};

/** Outcome of one closed-loop run. */
struct ClosedLoopResult
{
    CoreStats stats;
    /** The (possibly throttled) activity trace the run produced. */
    std::vector<ActivityFrame> frames;
    /** Finalized-oracle power per recorded cycle of the (possibly
     *  throttled) run. */
    std::vector<float> truthPower;
    /** OPM output per recorded cycle (window output held between
     *  valid samples; 0 until the first window completes). */
    std::vector<float> estPower;
    uint64_t triggers = 0;
    uint64_t engagedCycles = 0;
};

/** Reusable runner: one design + one quantized model, many runs. */
class ClosedLoopRunner
{
  public:
    ClosedLoopRunner(const Netlist &netlist, const QuantizedModel &model,
                     const CoreParams &core_params = CoreParams::defaults(),
                     const PowerParams &power_params = PowerParams{});

    /** Simulate @p prog under @p config. Not thread-safe; use one
     *  runner per worker. */
    StatusOr<ClosedLoopResult> run(const Program &prog,
                                   const ClosedLoopConfig &config);

    /**
     * OPM replay over an existing frame trace (no core, no controller):
     * the per-cycle estimate the closed loop would have seen had it not
     * intervened. Used to calibrate trigger deltas from a baseline run.
     */
    std::vector<float> replayEstimate(std::span<const ActivityFrame> frames,
                                      uint32_t opm_window);

    /** Finalized-oracle per-cycle power of an arbitrary frame trace. */
    std::vector<float> truthPower(std::span<const ActivityFrame> frames);

  private:
    void packProxyBits(std::span<const ActivityFrame> frames, size_t i,
                       std::vector<uint64_t> &words) const;

    const Netlist &netlist_;
    QuantizedModel model_;
    CoreParams coreParams_;
    PowerParams powerParams_;
    ActivityEngine engine_;
    PowerOracle oracle_;
};

} // namespace apollo::control

#endif // APOLLO_CONTROL_CLOSED_LOOP_HH
