/**
 * @file
 * The runtime droop controller (§7/§8.2): watches the quantized OPM's
 * dequantized output stream, differences it into estimated Delta-I, and
 * pulses an issue-throttle scheme through the core's ControlHook when
 * the estimate exceeds a trigger — proactive Ldi/dt mitigation driven
 * by the power meter itself, not by a voltage sensor.
 *
 * Contract (INTERNALS.md §14; src/ref/reference_control.cc is the
 * naive transcription the differential oracle checks against):
 *
 *  - observe(c, p) feeds the OPM sample emitted at recorded cycle c.
 *    Estimated current is p / vdd; a *trigger* fires when the delta
 *    versus the previous observation exceeds triggerDelta.
 *  - A trigger at cycle c schedules the throttle for cycles
 *    [c + 1 + triggerLatency, c + triggerLatency + engageCycles]: the
 *    +1 models that a decision made in cycle c can constrain issue no
 *    earlier than the next cycle, and triggerLatency adds the OPM
 *    pipeline + reaction delay on top.
 *  - Re-triggering while armed or engaged extends the single pending
 *    window's release point; the controller never tracks more than one
 *    window (a retrigger stretches the pulse, as a hardware one-shot
 *    would).
 *  - apply(c, throttle) is called once per cycle after observe and
 *    engages/releases the pulsed throttle constraint for cycle c + 1.
 */

#ifndef APOLLO_CONTROL_DROOP_CONTROLLER_HH
#define APOLLO_CONTROL_DROOP_CONTROLLER_HH

#include <cstdint>

#include "uarch/throttle.hh"
#include "util/status.hh"

namespace apollo::control {

/** Controller configuration. */
struct DroopControllerConfig
{
    /** Nominal voltage used to turn OPM power into current. */
    double vdd = 0.75;
    /** Estimated Delta-I (amps) above which a trigger fires. */
    double triggerDelta = 0.0;
    /** Cycles between a trigger and the throttle taking effect, on
     *  top of the unavoidable 1-cycle decision delay. Defaults to the
     *  OPM pipeline depth. */
    uint32_t triggerLatency = 2;
    /** Cycles the pulsed throttle stays engaged per trigger. */
    uint32_t engageCycles = 6;
    /** Scheme pulsed while engaged; None disables the controller. */
    ThrottleMode policy = ThrottleMode::Scheme1;
    /** Issue cap while engaged (Proportional policy only). */
    uint32_t proportionalLevel = 1;

    Status validate() const;
};

/** Trigger/engage state. */
enum class TriggerState : uint8_t
{
    Idle,    ///< no pending window
    Armed,   ///< triggered, waiting out the latency
    Engaged, ///< pulsed throttle in force
};

/** The OPM-driven throttle controller. One instance per core run. */
class DroopController
{
  public:
    /** @p config must validate (APOLLO_REQUIREd). */
    explicit DroopController(const DroopControllerConfig &config);

    /** Feed the OPM output sample emitted at recorded cycle @p cycle. */
    void observe(uint64_t cycle, double est_power);

    /** Drive @p throttle for cycle @p cycle + 1. Call once per cycle,
     *  after observe() for the same cycle (if any). */
    void apply(uint64_t cycle, Throttle &throttle);

    TriggerState state() const { return state_; }
    /** Trigger events seen (including retriggers while engaged). */
    uint64_t triggers() const { return triggers_; }
    /** Cycles the pulsed constraint was in force. */
    uint64_t engagedCycles() const { return engagedCycles_; }

  private:
    DroopControllerConfig cfg_;
    bool havePrev_ = false;
    double prevCurrent_ = 0.0;
    TriggerState state_ = TriggerState::Idle;
    uint64_t engageAt_ = 0;
    uint64_t releaseAfter_ = 0;
    uint64_t triggers_ = 0;
    uint64_t engagedCycles_ = 0;
};

} // namespace apollo::control

#endif // APOLLO_CONTROL_DROOP_CONTROLLER_HH
