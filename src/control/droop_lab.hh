/**
 * @file
 * The droop-mitigation scenario lab: grids {workload} x {OPM window
 * tau} x {OPM bits B} x {throttle policy} x {PDN variant}, runs every
 * cell through the real closed OPM -> throttle loop, and reports
 * droop-cycles-avoided vs IPC-lost as a Pareto table with per-scenario
 * Pearson of estimated vs ground-truth Delta-I (the Fig. 17 statistic,
 * now scored by what the control loop does with it).
 *
 * Per workload the lab runs one *baseline* (policy None) simulation;
 * trigger deltas are calibrated per (workload, tau, bits) as a
 * percentile of the baseline estimated |Delta-I| (the §8.2 idiom), so
 * every mitigated cell reacts to the same precursor definition its
 * OPM configuration would have seen. PDN gains are normalized per
 * workload by the baseline mean current, making the volt-scale
 * scenarios comparable across workloads.
 *
 * Determinism: every stage is a pure function of (netlist, model,
 * config); scenario cells are fanned over a thread pool with each cell
 * writing its own result slot, so reports are bit-identical across
 * reruns and thread counts.
 */

#ifndef APOLLO_CONTROL_DROOP_LAB_HH
#define APOLLO_CONTROL_DROOP_LAB_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "control/closed_loop.hh"
#include "core/apollo_model.hh"
#include "opm/opm_simulator.hh"

namespace apollo::control {

/** One PDN variant. Gains are in volts at the workload's baseline mean
 *  current (the lab divides by mean current per workload). */
struct PdnScenario
{
    std::string name = "default";
    double rStaticVolts = 0.01;
    double dynamicGainVolts = 0.05;
    double resonancePeriodCycles = 24.0;
    double damping = 0.25;
    /** Droop threshold as a fraction of vdd. */
    double thresholdFrac = 0.955;
};

/** One workload in the sweep. */
struct DroopLabWorkload
{
    std::string name;
    Program program;
    uint64_t cycles = 3000;
};

/** Sweep configuration. */
struct DroopLabConfig
{
    std::vector<DroopLabWorkload> workloads;
    /** OPM measurement windows tau (powers of two). */
    std::vector<uint32_t> windows{1, 4};
    /** OPM quantization widths B. */
    std::vector<uint32_t> bits{10, 6};
    /** Pulsed policies to sweep (None cells are implicit baselines). */
    std::vector<ThrottleMode> policies{ThrottleMode::Scheme1,
                                       ThrottleMode::Scheme2,
                                       ThrottleMode::Proportional};
    std::vector<PdnScenario> pdns{PdnScenario{}};

    double vdd = 0.75;
    /** Trigger = this percentile of baseline estimated |Delta-I|. */
    double triggerPercentile = 0.97;
    uint32_t triggerLatency = OpmSimulator::latencyCycles;
    uint32_t engageCycles = 6;
    uint32_t proportionalLevel = 1;
    /** Worker threads: 0 = shared global pool. */
    uint32_t threads = 0;
    CoreParams coreParams = CoreParams::defaults();
    PowerParams powerParams{};

    Status validate() const;
};

/** The default 3 x 2 x 2 x 3 x 1 grid on lab-built workloads. */
DroopLabConfig defaultDroopLabConfig(uint64_t cycles = 3000);

/** One scenario row (a grid cell crossed with one PDN variant). */
struct DroopLabRow
{
    std::string workload;
    uint32_t window = 1;
    uint32_t bits = 10;
    ThrottleMode policy = ThrottleMode::None;
    std::string pdn;

    /** Calibrated trigger (amps of estimated Delta-I). */
    double triggerDelta = 0.0;
    /** Pearson of estimated vs ground-truth Delta-I on the mitigated
     *  run (the per-scenario Fig. 17 correlation). */
    double pearsonDeltaI = 0.0;

    uint64_t baseDroopCycles = 0;
    uint64_t droopCycles = 0;
    int64_t droopCyclesAvoided = 0;
    double baseMinVoltage = 0.0;
    double minVoltage = 0.0;

    double baseIpc = 0.0;
    double ipc = 0.0;
    /** (baseIpc - ipc) / baseIpc. */
    double ipcLossFrac = 0.0;

    uint64_t triggers = 0;
    uint64_t engagedCycles = 0;
    /** On the (workload, pdn) Pareto front of avoided-vs-loss. */
    bool pareto = false;
};

/** Sweep outcome. */
struct DroopLabReport
{
    std::vector<DroopLabRow> rows;
    uint64_t gridCells = 0;

    /** True if some row beats no-mitigation: droop cycles strictly
     *  reduced at under @p max_ipc_loss fractional IPC loss. */
    bool hasDominatingPolicy(double max_ipc_loss = 0.10) const;

    /** Pareto table + per-scenario stats, human-readable. */
    void render(std::ostream &os) const;

    /** The JSON document tools/run_benches.sh records. */
    std::string toJson() const;
};

/** Human-readable policy name ("none", "scheme1", ...). */
const char *throttleModeName(ThrottleMode mode);

/** Run the sweep. @p model is the trained float model; the lab
 *  quantizes it per bits setting. */
StatusOr<DroopLabReport> runDroopLab(const Netlist &netlist,
                                     const ApolloModel &model,
                                     const DroopLabConfig &config);

} // namespace apollo::control

#endif // APOLLO_CONTROL_DROOP_LAB_HH
