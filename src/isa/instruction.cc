#include "isa/instruction.hh"

#include <cstdio>

namespace apollo {

ExecClass
Instruction::execClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return ExecClass::None;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Orr:
      case Opcode::Eor:
      case Opcode::Lsl:
      case Opcode::Lsr:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrrI:
      case Opcode::EorI:
      case Opcode::LslI:
      case Opcode::MovI:
        return ExecClass::Alu;
      case Opcode::Mul:
      case Opcode::Div:
        return ExecClass::MulDiv;
      case Opcode::Ldr:
      case Opcode::Str:
      case Opcode::Prfm:
      case Opcode::VLdr:
      case Opcode::VStr:
        return ExecClass::Mem;
      case Opcode::VAdd:
      case Opcode::VMul:
      case Opcode::VFma:
      case Opcode::VAndNot:
        return ExecClass::Vector;
      case Opcode::Bnez:
      case Opcode::B:
        return ExecClass::Branch;
      default:
        return ExecClass::None;
    }
}

bool
Instruction::isVector() const
{
    switch (op) {
      case Opcode::VAdd:
      case Opcode::VMul:
      case Opcode::VFma:
      case Opcode::VAndNot:
      case Opcode::VLdr:
      case Opcode::VStr:
        return true;
      default:
        return false;
    }
}

const char *
Instruction::mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Orr: return "orr";
      case Opcode::Eor: return "eor";
      case Opcode::Lsl: return "lsl";
      case Opcode::Lsr: return "lsr";
      case Opcode::AddI: return "addi";
      case Opcode::SubI: return "subi";
      case Opcode::AndI: return "andi";
      case Opcode::OrrI: return "orri";
      case Opcode::EorI: return "eori";
      case Opcode::LslI: return "lsli";
      case Opcode::MovI: return "movi";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Ldr: return "ldr";
      case Opcode::Str: return "str";
      case Opcode::Prfm: return "prfm";
      case Opcode::VAdd: return "vadd";
      case Opcode::VMul: return "vmul";
      case Opcode::VFma: return "vfma";
      case Opcode::VAndNot: return "vandn";
      case Opcode::VLdr: return "vldr";
      case Opcode::VStr: return "vstr";
      case Opcode::Bnez: return "bnez";
      case Opcode::B: return "b";
      default: return "?";
    }
}

std::string
Instruction::toString() const
{
    char buf[96];
    const char *m = mnemonic(op);
    const char reg = isVector() ? 'v' : 'x';
    switch (execClassOf(op)) {
      case ExecClass::None:
        std::snprintf(buf, sizeof(buf), "%s", m);
        break;
      case ExecClass::Branch:
        if (op == Opcode::B)
            std::snprintf(buf, sizeof(buf), "b %+d", imm);
        else
            std::snprintf(buf, sizeof(buf), "bnez x%d, %+d", rn, imm);
        break;
      case ExecClass::Mem:
        if (op == Opcode::Prfm)
            std::snprintf(buf, sizeof(buf), "prfm [x%d, #%d]", rn, imm);
        else
            std::snprintf(buf, sizeof(buf), "%s %c%d, [x%d, #%d]", m, reg,
                          rd, rn, imm);
        break;
      default:
        switch (op) {
          case Opcode::MovI:
            std::snprintf(buf, sizeof(buf), "movi x%d, #%d", rd, imm);
            break;
          case Opcode::AddI:
          case Opcode::SubI:
          case Opcode::AndI:
          case Opcode::OrrI:
          case Opcode::EorI:
          case Opcode::LslI:
            std::snprintf(buf, sizeof(buf), "%s x%d, x%d, #%d", m, rd, rn,
                          imm);
            break;
          default:
            std::snprintf(buf, sizeof(buf), "%s %c%d, %c%d, %c%d", m, reg,
                          rd, reg, rn, reg, rm);
            break;
        }
        break;
    }
    return buf;
}

namespace asm_helpers {

namespace {

Instruction
make(Opcode op, int rd, int rn, int rm, int32_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = static_cast<uint8_t>(rd);
    inst.rn = static_cast<uint8_t>(rn);
    inst.rm = static_cast<uint8_t>(rm);
    inst.imm = imm;
    return inst;
}

} // namespace

Instruction add(int rd, int rn, int rm)
{ return make(Opcode::Add, rd, rn, rm, 0); }
Instruction sub(int rd, int rn, int rm)
{ return make(Opcode::Sub, rd, rn, rm, 0); }
Instruction and_(int rd, int rn, int rm)
{ return make(Opcode::And, rd, rn, rm, 0); }
Instruction orr(int rd, int rn, int rm)
{ return make(Opcode::Orr, rd, rn, rm, 0); }
Instruction eor(int rd, int rn, int rm)
{ return make(Opcode::Eor, rd, rn, rm, 0); }
Instruction lsl(int rd, int rn, int rm)
{ return make(Opcode::Lsl, rd, rn, rm, 0); }
Instruction addi(int rd, int rn, int32_t imm)
{ return make(Opcode::AddI, rd, rn, 0, imm); }
Instruction subi(int rd, int rn, int32_t imm)
{ return make(Opcode::SubI, rd, rn, 0, imm); }
Instruction movi(int rd, int32_t imm)
{ return make(Opcode::MovI, rd, 0, 0, imm); }
Instruction mul(int rd, int rn, int rm)
{ return make(Opcode::Mul, rd, rn, rm, 0); }
Instruction div(int rd, int rn, int rm)
{ return make(Opcode::Div, rd, rn, rm, 0); }
Instruction ldr(int rd, int rn, int32_t offset)
{ return make(Opcode::Ldr, rd, rn, 0, offset); }
Instruction str(int rd, int rn, int32_t offset)
{ return make(Opcode::Str, rd, rn, 0, offset); }
Instruction prfm(int rn, int32_t offset)
{ return make(Opcode::Prfm, 0, rn, 0, offset); }
Instruction vadd(int vd, int vn, int vm)
{ return make(Opcode::VAdd, vd, vn, vm, 0); }
Instruction vmul(int vd, int vn, int vm)
{ return make(Opcode::VMul, vd, vn, vm, 0); }
Instruction vfma(int vd, int vn, int vm)
{ return make(Opcode::VFma, vd, vn, vm, 0); }
Instruction vldr(int vd, int rn, int32_t offset)
{ return make(Opcode::VLdr, vd, rn, 0, offset); }
Instruction vstr(int vd, int rn, int32_t offset)
{ return make(Opcode::VStr, vd, rn, 0, offset); }
Instruction bnez(int rn, int32_t disp)
{ return make(Opcode::Bnez, 0, rn, 0, disp); }
Instruction b(int32_t disp)
{ return make(Opcode::B, 0, 0, 0, disp); }
Instruction nop()
{ return make(Opcode::Nop, 0, 0, 0, 0); }

} // namespace asm_helpers

} // namespace apollo
