/**
 * @file
 * A small load/store RISC ISA used by the synthetic CPU substrate.
 *
 * The ISA is deliberately Arm-flavoured (scalar ALU ops, MUL/DIV, SIMD
 * vector ops over 4x64-bit lanes, loads/stores with base+offset
 * addressing, compare-and-branch) so that GA-generated micro-benchmarks
 * and the handcrafted Table-4 suite exercise the same kinds of functional
 * units the paper's proxies concentrate in (Issue, Vector Execution,
 * Load/Store, clock gates).
 */

#ifndef APOLLO_ISA_INSTRUCTION_HH
#define APOLLO_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace apollo {

/** Number of scalar architectural registers (x0..x31). */
constexpr int numScalarRegs = 32;
/** Number of vector architectural registers (v0..v15). */
constexpr int numVectorRegs = 16;
/** 64-bit lanes per vector register. */
constexpr int vectorLanes = 4;

/** Operation kinds. */
enum class Opcode : uint8_t
{
    Nop,
    // Scalar ALU, register-register.
    Add, Sub, And, Orr, Eor, Lsl, Lsr,
    // Scalar ALU, register-immediate.
    AddI, SubI, AndI, OrrI, EorI, LslI, MovI,
    // Long-latency integer.
    Mul, Div,
    // Memory.
    Ldr, Str, Prfm,
    // Vector (SIMD) over 4x64-bit lanes.
    VAdd, VMul, VFma, VAndNot, VLdr, VStr,
    // Control flow: branch backwards/forwards by imm if x[rn] != 0 (Bnez)
    // or unconditionally (B).
    Bnez, B,
    NumOpcodes,
};

/** Functional-unit class an opcode executes in (timing domain). */
enum class ExecClass : uint8_t
{
    Alu,       ///< single-cycle integer
    MulDiv,    ///< long-latency integer
    Vector,    ///< SIMD pipes
    Mem,       ///< loads/stores/prefetch (incl. vector ld/st)
    Branch,    ///< control flow (resolved on an ALU port)
    None,      ///< Nop
};

/**
 * One machine instruction. rd/rn/rm index the scalar or vector register
 * file depending on the opcode; imm is an immediate operand (shift
 * amount, address offset, branch displacement in instructions, or move
 * immediate).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;
    uint8_t rn = 0;
    uint8_t rm = 0;
    int32_t imm = 0;

    /** Execution class of this opcode. */
    ExecClass execClass() const { return execClassOf(op); }

    /** True for Ldr/Str/VLdr/VStr/Prfm. */
    bool isMemory() const { return execClassOf(op) == ExecClass::Mem; }

    /** True for Bnez/B. */
    bool isBranch() const { return execClassOf(op) == ExecClass::Branch; }

    /** True when operands index the vector register file. */
    bool isVector() const;

    /** Static opcode → class mapping. */
    static ExecClass execClassOf(Opcode op);

    /** Mnemonic for an opcode. */
    static const char *mnemonic(Opcode op);

    /** Human-readable disassembly, e.g. "add x3, x1, x2". */
    std::string toString() const;
};

/** Convenience constructors (assembler-style helpers). */
namespace asm_helpers {

Instruction add(int rd, int rn, int rm);
Instruction sub(int rd, int rn, int rm);
Instruction and_(int rd, int rn, int rm);
Instruction orr(int rd, int rn, int rm);
Instruction eor(int rd, int rn, int rm);
Instruction lsl(int rd, int rn, int rm);
Instruction addi(int rd, int rn, int32_t imm);
Instruction subi(int rd, int rn, int32_t imm);
Instruction movi(int rd, int32_t imm);
Instruction mul(int rd, int rn, int rm);
Instruction div(int rd, int rn, int rm);
Instruction ldr(int rd, int rn, int32_t offset);
Instruction str(int rd, int rn, int32_t offset);
Instruction prfm(int rn, int32_t offset);
Instruction vadd(int vd, int vn, int vm);
Instruction vmul(int vd, int vn, int vm);
Instruction vfma(int vd, int vn, int vm);
Instruction vldr(int vd, int rn, int32_t offset);
Instruction vstr(int vd, int rn, int32_t offset);
Instruction bnez(int rn, int32_t disp);
Instruction b(int32_t disp);
Instruction nop();

} // namespace asm_helpers

} // namespace apollo

#endif // APOLLO_ISA_INSTRUCTION_HH
