#include "isa/program.hh"

#include <sstream>

#include "util/logging.hh"

namespace apollo {

std::string
Program::toString() const
{
    std::ostringstream os;
    os << name_ << ":\n";
    for (size_t pc = 0; pc < instrs_.size(); ++pc)
        os << "  " << pc << ": " << instrs_[pc].toString() << "\n";
    return os.str();
}

Program
Program::makeLoop(const std::string &name,
                  const std::vector<Instruction> &body, int iterations,
                  uint64_t data_seed)
{
    APOLLO_REQUIRE(iterations >= 1, "loop needs >= 1 iteration");
    using namespace asm_helpers;

    std::vector<Instruction> instrs;
    instrs.reserve(body.size() + 3);
    // x31 is the loop counter by convention; the functional executor
    // seeds all other registers from data_seed (see FunctionalExecutor).
    instrs.push_back(movi(31, iterations));
    instrs.insert(instrs.end(), body.begin(), body.end());
    instrs.push_back(subi(31, 31, 1));
    // Branch back to the first body instruction (pc 1). The displacement
    // is relative to the branch's own pc.
    const auto disp = -static_cast<int32_t>(body.size() + 1);
    instrs.push_back(bnez(31, disp));

    Program prog(name, std::move(instrs));
    prog.dataSeed_ = data_seed;
    return prog;
}

} // namespace apollo
