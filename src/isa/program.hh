/**
 * @file
 * Program container: a named linear sequence of instructions plus helpers
 * to build the counted-loop micro-benchmarks used by the GA generator and
 * the handcrafted Table-4 suite.
 */

#ifndef APOLLO_ISA_PROGRAM_HH
#define APOLLO_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace apollo {

/** A named instruction sequence. PC is an index into instrs(). */
class Program
{
  public:
    Program() = default;
    Program(std::string name, std::vector<Instruction> instrs)
        : name_(std::move(name)), instrs_(std::move(instrs))
    {}

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &instrs() const { return instrs_; }
    size_t size() const { return instrs_.size(); }
    const Instruction &at(size_t pc) const { return instrs_[pc]; }

    void append(const Instruction &inst) { instrs_.push_back(inst); }

    void
    append(const std::vector<Instruction> &block)
    {
        instrs_.insert(instrs_.end(), block.begin(), block.end());
    }

    /** Multi-line disassembly. */
    std::string toString() const;

    /**
     * Seed used by the functional executor to initialize the register
     * files before the first instruction, giving each micro-benchmark
     * distinct data values (and hence data-dependent power).
     */
    uint64_t dataSeed() const { return dataSeed_; }
    void setDataSeed(uint64_t seed) { dataSeed_ = seed; }

    /**
     * Build a counted loop program:
     *   - a short prologue initializing registers with data seeds and the
     *     loop counter (register x31) to @p iterations,
     *   - the @p body,
     *   - counter decrement and backward branch.
     *
     * Register x30 is initialized to a memory base address. The prologue
     * initializes every scalar/vector register the body reads so the
     * functional executor never consumes uninitialized values.
     *
     * @param name        program name
     * @param body        loop body instructions
     * @param iterations  trip count (>= 1)
     * @param data_seed   varies the register seed values (data-dependent
     *                    power), and the memory base
     */
    static Program makeLoop(const std::string &name,
                            const std::vector<Instruction> &body,
                            int iterations, uint64_t data_seed = 1);

  private:
    std::string name_;
    std::vector<Instruction> instrs_;
    uint64_t dataSeed_ = 1;
};

} // namespace apollo

#endif // APOLLO_ISA_PROGRAM_HH
