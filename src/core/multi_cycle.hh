/**
 * @file
 * Multi-cycle power modeling (§4.5). APOLLO_tau is trained on tau-cycle
 * averaged toggles/labels; at inference, Eq. (9) rearranges the T-cycle
 * window average so only per-cycle binary accumulate + a final divide
 * by T (a shift, since T is a power of two) is needed:
 *
 *   p_T = b + (1/T) * sum over the T cycles of sum_j w_j x_j[i]
 *
 * The same machinery expresses the two straw-man baselines of Fig. 11:
 * tau = 1 is "average of per-cycle predictions" and tau = T is
 * "averaged inputs".
 */

#ifndef APOLLO_CORE_MULTI_CYCLE_HH
#define APOLLO_CORE_MULTI_CYCLE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/apollo_model.hh"
#include "core/apollo_trainer.hh"
#include "trace/dataset.hh"
#include "util/status.hh"

namespace apollo {

/** APOLLO_tau: a linear model trained at interval size tau. */
struct MultiCycleModel
{
    ApolloModel base;
    uint32_t tau = 1;

    /**
     * Eq. (9) inference: window-average predictions over consecutive
     * T-cycle windows of a *full* per-cycle feature matrix; windows
     * never straddle the @p segments boundaries.
     *
     * Data errors return a Status instead of aborting: InvalidArgument
     * when T is zero or no segment holds a full T-cycle window,
     * OutOfRange when a segment exceeds the matrix rows.
     */
    StatusOr<std::vector<float>> predictWindowsFull(
        const BitColumnMatrix &X, uint32_t T,
        std::span<const SegmentInfo> segments) const;

    /** Same over a proxy-only matrix (columns follow base.proxyIds). */
    StatusOr<std::vector<float>> predictWindowsProxies(
        const BitColumnMatrix &Xq, uint32_t T,
        std::span<const SegmentInfo> segments) const;
};

/** Train APOLLO_tau from a per-cycle dataset. */
MultiCycleModel trainMultiCycle(const Dataset &train, uint32_t tau,
                                const ApolloTrainConfig &config,
                                const std::string &design_name = "");

/**
 * Ground-truth labels for Fig. 11: window-average power over
 * consecutive T-cycle windows (per segment, full windows only).
 * Same error contract as predictWindowsFull; segments are
 * bounds-checked against y.size().
 */
StatusOr<std::vector<float>> windowAverageLabels(
    std::span<const float> y, uint32_t T,
    std::span<const SegmentInfo> segments);

} // namespace apollo

#endif // APOLLO_CORE_MULTI_CYCLE_HH
