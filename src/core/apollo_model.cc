#include "core/apollo_model.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>

#include "util/logging.hh"

namespace apollo {

double
ApolloModel::sumAbsWeights() const
{
    double acc = 0.0;
    for (float w : weights)
        acc += std::abs(w);
    return acc;
}

std::vector<float>
ApolloModel::predictFull(const BitColumnMatrix &X) const
{
    APOLLO_REQUIRE(proxyIds.size() == weights.size(),
                   "model arity mismatch");
    std::vector<float> out(X.rows(), static_cast<float>(intercept));
    for (size_t q = 0; q < proxyIds.size(); ++q) {
        APOLLO_REQUIRE(proxyIds[q] < X.cols(), "proxy id out of range");
        if (weights[q] != 0.0f)
            X.axpyColumn(proxyIds[q], weights[q], out.data());
    }
    return out;
}

std::vector<float>
ApolloModel::predictProxies(const BitColumnMatrix &Xq) const
{
    std::vector<float> out(Xq.rows());
    predictProxiesInto(Xq, out);
    return out;
}

void
ApolloModel::predictProxiesInto(const BitColumnMatrix &Xq,
                                std::span<float> out) const
{
    APOLLO_REQUIRE(Xq.cols() == proxyIds.size(),
                   "proxy matrix arity mismatch");
    APOLLO_REQUIRE(out.size() >= Xq.rows(), "output buffer too small");
    std::fill(out.begin(), out.begin() + Xq.rows(),
              static_cast<float>(intercept));
    for (size_t q = 0; q < proxyIds.size(); ++q)
        if (weights[q] != 0.0f)
            Xq.axpyColumn(q, weights[q], out.data());
}

void
ApolloModel::save(std::ostream &os) const
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "apollo-model 1\n";
    os << designName << "\n";
    os << proxyIds.size() << " " << intercept << "\n";
    for (size_t q = 0; q < proxyIds.size(); ++q)
        os << proxyIds[q] << " " << weights[q] << "\n";
}

ApolloModel
ApolloModel::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    APOLLO_REQUIRE(magic == "apollo-model" && version == 1,
                   "not an apollo model file");
    ApolloModel model;
    is >> model.designName;
    size_t q = 0;
    is >> q >> model.intercept;
    model.proxyIds.resize(q);
    model.weights.resize(q);
    for (size_t i = 0; i < q; ++i)
        is >> model.proxyIds[i] >> model.weights[i];
    APOLLO_REQUIRE(static_cast<bool>(is), "truncated model file");
    return model;
}

Calibration
fitCalibration(std::span<const float> truth,
               std::span<const float> prediction)
{
    APOLLO_REQUIRE(truth.size() == prediction.size() &&
                       truth.size() > 2,
                   "calibration arity mismatch");
    const auto n = static_cast<double>(truth.size());
    double sum_p = 0.0;
    double sum_t = 0.0;
    double sum_pp = 0.0;
    double sum_pt = 0.0;
    for (size_t i = 0; i < truth.size(); ++i) {
        sum_p += prediction[i];
        sum_t += truth[i];
        sum_pp += static_cast<double>(prediction[i]) * prediction[i];
        sum_pt += static_cast<double>(prediction[i]) * truth[i];
    }
    const double denom = n * sum_pp - sum_p * sum_p;
    Calibration cal;
    if (std::abs(denom) > 1e-12) {
        cal.scale = (n * sum_pt - sum_p * sum_t) / denom;
        cal.offset = (sum_t - cal.scale * sum_p) / n;
    } else {
        cal.scale = 1.0;
        cal.offset = (sum_t - sum_p) / n;
    }
    return cal;
}

ApolloModel
applyCalibration(const ApolloModel &model,
                 const Calibration &calibration)
{
    ApolloModel out = model;
    for (float &w : out.weights)
        w = static_cast<float>(w * calibration.scale);
    out.intercept =
        model.intercept * calibration.scale + calibration.offset;
    return out;
}

} // namespace apollo
