#include "core/baselines.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ml/kmeans.hh"
#include "ml/neural_net.hh"
#include "ml/pca.hh"
#include "util/logging.hh"

namespace apollo {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** |<x_j, y - mean(y)>| / sqrt(<x_j,x_j>) — correlation-style score. */
double
corrScore(const BitColumnMatrix &X, size_t col,
          const std::vector<float> &y_centered)
{
    const double nnz = static_cast<double>(X.colPopcount(col));
    if (nnz == 0.0)
        return 0.0;
    return std::abs(X.dotColumn(col, y_centered.data())) /
           std::sqrt(nnz);
}

std::vector<float>
centered(std::span<const float> y)
{
    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= static_cast<double>(y.size());
    std::vector<float> out(y.size());
    for (size_t i = 0; i < y.size(); ++i)
        out[i] = static_cast<float>(y[i] - mu);
    return out;
}

/** AND of two packed binary columns into an output column. */
void
andColumns(const BitColumnMatrix &X, uint32_t a, uint32_t b,
           BitColumnMatrix &out, size_t out_col)
{
    const uint64_t *wa = X.colWords(a);
    const uint64_t *wb = X.colWords(b);
    uint64_t *wo = out.colWordsMutable(out_col);
    for (size_t k = 0; k < X.wordsPerCol(); ++k)
        wo[k] = wa[k] & wb[k];
}

/** Ranked polynomial pairs among the representatives. */
std::vector<std::pair<uint32_t, uint32_t>>
choosePolyPairs(const BitColumnMatrix &X,
                const std::vector<uint32_t> &reps,
                const std::vector<float> &y_centered, size_t max_terms)
{
    // Rank representatives by individual correlation, pair the top ones.
    std::vector<std::pair<double, uint32_t>> ranked;
    ranked.reserve(reps.size());
    for (uint32_t r : reps)
        ranked.emplace_back(corrScore(X, r, y_centered), r);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    const size_t top = std::min<size_t>(
        ranked.size(),
        static_cast<size_t>(std::ceil(std::sqrt(2.0 * max_terms))) + 2);

    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    for (size_t i = 0; i < top && pairs.size() < max_terms; ++i)
        for (size_t j = i + 1; j < top && pairs.size() < max_terms; ++j)
            pairs.emplace_back(ranked[i].second, ranked[j].second);
    return pairs;
}

/** Elastic-net fit with lambda1 given as a fraction of lambdaMax. */
CdResult
elasticNetFit(const FeatureView &view, std::span<const float> y,
              double lambda1_frac, double lambda2)
{
    CdSolver solver(view, y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Lasso;
    cfg.penalty.lambda = solver.lambdaMax() * lambda1_frac;
    cfg.penalty.lambda2 = lambda2;
    cfg.maxSweeps = 300;
    cfg.tol = 1e-5;
    return solver.fit(cfg);
}

} // namespace

BaselineResult
trainLassoBaseline(const Dataset &train, const Dataset &test,
                   size_t target_q)
{
    auto t0 = std::chrono::steady_clock::now();

    BitFeatureView view(train.X);
    CdSolver solver(view, train.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Lasso;
    cfg.maxSweeps = 250;
    cfg.tol = 1e-4;
    TargetQDiagnostics diag;
    const CdResult fit = solveForTargetQ(solver, cfg, target_q, &diag);

    BaselineResult res;
    res.name = "Lasso";
    res.trainSeconds = secondsSince(t0);
    res.proxyIds = fit.support();
    res.monitoredSignals = res.proxyIds.size();

    // No relaxation: the (over-shrunk) Lasso model IS the final model.
    ApolloModel model;
    model.proxyIds = res.proxyIds;
    model.intercept = fit.intercept;
    for (uint32_t j : res.proxyIds)
        model.weights.push_back(fit.w[j]);
    res.sumAbsWeights = model.sumAbsWeights();
    res.testPred = model.predictFull(test.X);
    return res;
}

BaselineResult
trainSimmaniBaseline(const Dataset &train, const Dataset &test,
                     const SimmaniConfig &config)
{
    auto t0 = std::chrono::steady_clock::now();

    KmeansConfig km;
    km.k = static_cast<uint32_t>(config.clusters);
    km.seed = config.seed;
    const KmeansResult clusters = kmeansSignals(train.X, km);
    std::vector<uint32_t> reps = clusters.representatives;
    std::sort(reps.begin(), reps.end());
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());

    const std::vector<float> yc = centered(train.y);
    const auto pairs =
        choosePolyPairs(train.X, reps, yc, config.maxPolyTerms);

    // Feature matrix: representatives then AND-product terms.
    auto build_features = [&](const BitColumnMatrix &source) {
        BitColumnMatrix feats(source.rows(), reps.size() + pairs.size());
        for (size_t q = 0; q < reps.size(); ++q) {
            const uint64_t *src = source.colWords(reps[q]);
            uint64_t *dst = feats.colWordsMutable(q);
            std::copy_n(src, source.wordsPerCol(), dst);
        }
        for (size_t p = 0; p < pairs.size(); ++p)
            andColumns(source, pairs[p].first, pairs[p].second, feats,
                       reps.size() + p);
        return feats;
    };

    const BitColumnMatrix train_feats = build_features(train.X);
    BitFeatureView view(train_feats);
    const CdResult fit =
        elasticNetFit(view, train.y, config.lambda1, config.lambda2);

    BaselineResult res;
    res.name = "Simmani";
    res.trainSeconds = secondsSince(t0);
    res.proxyIds = reps;
    res.monitoredSignals = reps.size();

    const BitColumnMatrix test_feats = build_features(test.X);
    res.testPred.assign(test_feats.rows(),
                        static_cast<float>(fit.intercept));
    for (size_t j = 0; j < fit.w.size(); ++j)
        if (fit.w[j] != 0.0f)
            test_feats.axpyColumn(j, fit.w[j], res.testPred.data());
    return res;
}

BaselineResult
trainSimmaniWindowed(const Dataset &train, const Dataset &test,
                     uint32_t T, const SimmaniConfig &config)
{
    APOLLO_REQUIRE(T >= 2 && T <= 255, "window size out of range");
    auto t0 = std::chrono::steady_clock::now();

    KmeansConfig km;
    km.k = static_cast<uint32_t>(config.clusters);
    km.seed = config.seed;
    const KmeansResult clusters = kmeansSignals(train.X, km);
    std::vector<uint32_t> reps = clusters.representatives;
    std::sort(reps.begin(), reps.end());
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());

    const std::vector<float> yc = centered(train.y);
    const auto pairs =
        choosePolyPairs(train.X, reps, yc, config.maxPolyTerms);

    const float inv_t = 1.0f / static_cast<float>(T);
    auto build_features = [&](const Dataset &ds,
                              std::vector<float> &labels) {
        const CountDataset agg = aggregateIntervals(ds, T);
        labels = agg.y;
        DenseColumnMatrix feats(agg.intervals(),
                                reps.size() + pairs.size());
        std::vector<size_t> rep_index(train.X.cols(), SIZE_MAX);
        for (size_t q = 0; q < reps.size(); ++q) {
            rep_index[reps[q]] = q;
            const uint8_t *src = agg.X.colData(reps[q]);
            float *dst = feats.colData(q);
            for (size_t i = 0; i < agg.intervals(); ++i)
                dst[i] = inv_t * static_cast<float>(src[i]);
        }
        for (size_t p = 0; p < pairs.size(); ++p) {
            const float *a = feats.colData(rep_index[pairs[p].first]);
            const float *b = feats.colData(rep_index[pairs[p].second]);
            float *dst = feats.colData(reps.size() + p);
            for (size_t i = 0; i < agg.intervals(); ++i)
                dst[i] = a[i] * b[i];
        }
        return feats;
    };

    std::vector<float> train_labels;
    const DenseColumnMatrix train_feats =
        build_features(train, train_labels);
    DenseFeatureView view(train_feats);
    const CdResult fit = elasticNetFit(view, train_labels,
                                       config.lambda1, config.lambda2);

    BaselineResult res;
    res.name = "Simmani";
    res.trainSeconds = secondsSince(t0);
    res.proxyIds = reps;
    res.monitoredSignals = reps.size();

    std::vector<float> test_labels;
    const DenseColumnMatrix test_feats = build_features(test, test_labels);
    DenseFeatureView test_view(test_feats);
    res.testPred.resize(test_feats.rows());
    test_view.predict(fit.w, fit.intercept, res.testPred.data());
    return res;
}

BaselineResult
trainPcaBaseline(const Dataset &train, const Dataset &test,
                 size_t components)
{
    auto t0 = std::chrono::steady_clock::now();

    const PcaModel pca = fitPca(train.X, components);
    const std::vector<float> z_train = pca.projectAll(train.X);

    // Repack row-major projections into a column-major dense matrix.
    auto repack = [&](const std::vector<float> &z, size_t rows) {
        DenseColumnMatrix out(rows, components);
        for (size_t i = 0; i < rows; ++i)
            for (size_t k = 0; k < components; ++k)
                out.set(i, k, z[i * components + k]);
        return out;
    };
    const DenseColumnMatrix feats = repack(z_train, train.cycles());
    DenseFeatureView view(feats);
    CdSolver solver(view, train.y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Ridge;
    cfg.penalty.lambda2 = 1e-4;
    cfg.maxSweeps = 400;
    cfg.tol = 1e-6;
    const CdResult fit = solver.fit(cfg);

    BaselineResult res;
    res.name = "PCA";
    res.trainSeconds = secondsSince(t0);
    res.monitoredSignals = train.signals(); // needs every signal

    const std::vector<float> z_test = pca.projectAll(test.X);
    const DenseColumnMatrix test_feats = repack(z_test, test.cycles());
    DenseFeatureView test_view(test_feats);
    res.testPred.resize(test.cycles());
    test_view.predict(fit.w, fit.intercept, res.testPred.data());
    return res;
}

BaselineResult
trainPrimalNetBaseline(const Dataset &train, const Dataset &test,
                       const std::vector<uint32_t> &flipflop_ids,
                       uint32_t epochs)
{
    auto t0 = std::chrono::steady_clock::now();

    NeuralNetConfig cfg;
    cfg.epochs = epochs;
    PowerNet net;
    net.train(train.X, flipflop_ids, train.y, cfg);

    BaselineResult res;
    res.name = "PRIMAL-CNN";
    res.trainSeconds = secondsSince(t0);
    res.monitoredSignals = flipflop_ids.size();
    res.testPred = net.predict(test.X);
    return res;
}

} // namespace apollo
