#include "core/counter_model.hh"

#include "ml/coordinate_descent.hh"
#include "util/logging.hh"

namespace apollo {

const char *
counterEventName(CounterEvent event)
{
    switch (event) {
      case CounterEvent::RetiredOps: return "retired_ops";
      case CounterEvent::IntIssue: return "int_issue";
      case CounterEvent::VecIssue: return "vec_issue";
      case CounterEvent::MemIssue: return "mem_issue";
      case CounterEvent::L1DActivity: return "l1d_activity";
      case CounterEvent::L2Activity: return "l2_activity";
      case CounterEvent::FrontendOps: return "frontend_ops";
      default: return "?";
    }
}

namespace {

/** One cycle's increments, as a hardware event counter would see them.
 *  Events are observed *post hoc* (retire/cache levels), i.e. later
 *  than the switching they correspond to — the latency that degrades
 *  fine-grained counter models. */
void
eventIncrements(const ActivityFrame &frame, float out[numCounterEvents])
{
    out[static_cast<size_t>(CounterEvent::RetiredOps)] =
        frame.act(UnitId::Retire);
    out[static_cast<size_t>(CounterEvent::IntIssue)] =
        frame.act(UnitId::IntAlu);
    out[static_cast<size_t>(CounterEvent::VecIssue)] =
        frame.act(UnitId::VecExec);
    out[static_cast<size_t>(CounterEvent::MemIssue)] =
        frame.act(UnitId::LoadStore);
    out[static_cast<size_t>(CounterEvent::L1DActivity)] =
        frame.act(UnitId::DCache);
    out[static_cast<size_t>(CounterEvent::L2Activity)] =
        frame.act(UnitId::L2Cache);
    out[static_cast<size_t>(CounterEvent::FrontendOps)] =
        frame.act(UnitId::Fetch);
}

} // namespace

CounterTrace
collectCounters(std::span<const ActivityFrame> frames,
                std::span<const float> power,
                const std::vector<SegmentInfo> &segments,
                uint32_t epoch_cycles)
{
    APOLLO_REQUIRE(epoch_cycles >= 1, "epoch must be positive");
    APOLLO_REQUIRE(frames.size() == power.size(),
                   "frames/labels mismatch");

    CounterTrace trace;
    trace.epochCycles = epoch_cycles;
    float inc[numCounterEvents];

    for (const SegmentInfo &seg : segments) {
        const size_t epochs = seg.cycles() / epoch_cycles;
        for (size_t e = 0; e < epochs; ++e) {
            float acc[numCounterEvents] = {};
            double label = 0.0;
            for (uint32_t t = 0; t < epoch_cycles; ++t) {
                const size_t i = seg.begin + e * epoch_cycles + t;
                eventIncrements(frames[i], inc);
                for (size_t k = 0; k < numCounterEvents; ++k)
                    acc[k] += inc[k];
                label += power[i];
            }
            for (size_t k = 0; k < numCounterEvents; ++k)
                trace.counts.push_back(acc[k] / epoch_cycles);
            trace.epochPower.push_back(
                static_cast<float>(label / epoch_cycles));
            trace.epochs++;
        }
    }
    APOLLO_REQUIRE(trace.epochs > 0, "no full epochs at this size");
    return trace;
}

std::vector<float>
CounterPowerModel::predict(const CounterTrace &trace) const
{
    APOLLO_REQUIRE(weights.size() == numCounterEvents,
                   "untrained counter model");
    std::vector<float> out;
    out.reserve(trace.epochs);
    for (size_t e = 0; e < trace.epochs; ++e) {
        double acc = intercept;
        for (size_t k = 0; k < numCounterEvents; ++k)
            acc += static_cast<double>(weights[k]) *
                   trace.counts[e * numCounterEvents + k];
        out.push_back(static_cast<float>(acc));
    }
    return out;
}

CounterPowerModel
trainCounterModel(const CounterTrace &trace, double ridge)
{
    APOLLO_REQUIRE(trace.epochs > numCounterEvents,
                   "too few epochs to fit");
    DenseColumnMatrix features(trace.epochs, numCounterEvents);
    for (size_t e = 0; e < trace.epochs; ++e)
        for (size_t k = 0; k < numCounterEvents; ++k)
            features.set(e, k,
                         trace.counts[e * numCounterEvents + k]);

    DenseFeatureView view(features);
    CdSolver solver(view, trace.epochPower);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Ridge;
    cfg.penalty.lambda2 = ridge;
    cfg.maxSweeps = 600;
    cfg.tol = 1e-7;
    const CdResult fit = solver.fit(cfg);

    CounterPowerModel model;
    model.trainedEpochCycles = trace.epochCycles;
    model.intercept = fit.intercept;
    model.weights.assign(numCounterEvents, 0.0f);
    for (size_t k = 0; k < fit.w.size(); ++k)
        model.weights[k] = fit.w[k];
    return model;
}

} // namespace apollo
