/**
 * @file
 * ApolloModel: the per-cycle linear power model of Eq. (1) —
 *   p[i] = intercept + sum_j w_j * x_j[i]
 * over Q selected proxy signals. The same structure serves the
 * design-time estimator (float inference over toggle traces) and, after
 * quantization, the runtime OPM (src/opm).
 */

#ifndef APOLLO_CORE_APOLLO_MODEL_HH
#define APOLLO_CORE_APOLLO_MODEL_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "util/bitvec.hh"

namespace apollo {

/** The fitted per-cycle (or per-tau-interval) linear power model. */
struct ApolloModel
{
    /** Signal ids of the Q selected power proxies (dataset columns). */
    std::vector<uint32_t> proxyIds;
    /** One weight per proxy. */
    std::vector<float> weights;
    double intercept = 0.0;
    /** Name of the design this model was trained for. */
    std::string designName;

    size_t proxyCount() const { return proxyIds.size(); }

    /** sum_j |w_j| (Fig. 13 diagnostic). */
    double sumAbsWeights() const;

    /**
     * Predict per-cycle power over a *full* feature matrix (columns are
     * all M signals; only proxy columns are read).
     */
    std::vector<float> predictFull(const BitColumnMatrix &X) const;

    /**
     * Predict per-cycle power over a proxy-only matrix whose column q
     * corresponds to proxyIds[q] (the emulator-assisted layout).
     */
    std::vector<float> predictProxies(const BitColumnMatrix &Xq) const;

    /**
     * Proxy-layout prediction into a caller-owned buffer (out.size()
     * >= Xq.rows(); entries past Xq.rows() are untouched). This is the
     * single inference kernel both predictProxies() and the streaming
     * engine's chunk workers call, so chunked results are bit-identical
     * to the batch path by construction: per output element the float
     * additions are intercept, then w_q for each set proxy bit in
     * ascending q — independent of how rows are chunked.
     */
    void predictProxiesInto(const BitColumnMatrix &Xq,
                            std::span<float> out) const;

    /** Serialize / parse a small text format. */
    void save(std::ostream &os) const;
    static ApolloModel load(std::istream &is);
};

/**
 * Affine re-calibration (§6: the OPM accommodates "potential model
 * re-training using sign-off or hardware measurement power values"):
 * least-squares fit of truth ~ scale * prediction + offset, folded
 * back into the model's weights and intercept. Used to align a
 * deployed OPM with silicon measurements without re-selecting proxies.
 */
struct Calibration
{
    double scale = 1.0;
    double offset = 0.0;
};

/** Fit the affine correction from paired (truth, prediction) samples. */
Calibration fitCalibration(std::span<const float> truth,
                           std::span<const float> prediction);

/** Fold a calibration into a model (weights *= scale, intercept
 *  affine-adjusted). */
ApolloModel applyCalibration(const ApolloModel &model,
                             const Calibration &calibration);

} // namespace apollo

#endif // APOLLO_CORE_APOLLO_MODEL_HH
