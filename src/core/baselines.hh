/**
 * @file
 * The baseline power-modeling methods of Table 5:
 *  - Lasso [53] (Pagliari et al.): Lasso proxy selection, and the Lasso
 *    model itself is the final model (no relaxation).
 *  - Simmani [40]: unsupervised K-means signal clustering picks one
 *    representative per cluster; features are the Q representatives
 *    plus 2nd-order polynomial (AND) terms; model is an elastic net.
 *  - PRIMAL-PCA [79]: PCA over all signals + linear model on the
 *    components (no proxy selection; needs all M signals at inference).
 *  - PRIMAL-CNN-class [79]: nonlinear net over all flip-flop signals
 *    (see ml/neural_net.hh for the documented substitution).
 */

#ifndef APOLLO_CORE_BASELINES_HH
#define APOLLO_CORE_BASELINES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/apollo_model.hh"
#include "core/multi_cycle.hh"
#include "trace/dataset.hh"

namespace apollo {

/** A trained baseline, evaluated on a test set. */
struct BaselineResult
{
    std::string name;
    std::vector<float> testPred;
    /** Number of monitored signals (Q; M for PCA/CNN). */
    size_t monitoredSignals = 0;
    double trainSeconds = 0.0;
    double sumAbsWeights = 0.0; ///< linear models only (Fig. 13)
    std::vector<uint32_t> proxyIds;
};

/** Lasso selection + Lasso model (no relaxation), per [53]. */
BaselineResult trainLassoBaseline(const Dataset &train,
                                  const Dataset &test, size_t target_q);

/** Simmani configuration. */
struct SimmaniConfig
{
    size_t clusters = 200;
    /** Polynomial terms kept (strongest pairs among representatives). */
    size_t maxPolyTerms = 400;
    /** Elastic-net strengths. */
    double lambda1 = 1e-4;
    double lambda2 = 1e-3;
    uint64_t seed = 0x51aaULL;
};

/** Simmani per-cycle variant (used in Fig. 10/12). */
BaselineResult trainSimmaniBaseline(const Dataset &train,
                                    const Dataset &test,
                                    const SimmaniConfig &config);

/**
 * Simmani multi-cycle variant (Fig. 11): features averaged over
 * T-cycle windows, polynomial terms computed on the averages.
 * Predictions are per T-window (aligned with windowAverageLabels).
 */
BaselineResult trainSimmaniWindowed(const Dataset &train,
                                    const Dataset &test, uint32_t T,
                                    const SimmaniConfig &config);

/** PCA + linear model on k components. */
BaselineResult trainPcaBaseline(const Dataset &train, const Dataset &test,
                                size_t components);

/** Nonlinear net over the given flip-flop signal ids. */
BaselineResult trainPrimalNetBaseline(
    const Dataset &train, const Dataset &test,
    const std::vector<uint32_t> &flipflop_ids, uint32_t epochs = 8);

} // namespace apollo

#endif // APOLLO_CORE_BASELINES_HH
