#include "core/abstract_model.hh"

#include <string>

#include "ml/coordinate_descent.hh"
#include "util/logging.hh"

namespace apollo {

void
AbstractPowerModel::featuresOf(const ActivityFrame &frame, float *out)
{
    for (size_t u = 0; u < numUnits; ++u) {
        out[u * featuresPerUnit + 0] = frame.activity[u];
        out[u * featuresPerUnit + 1] =
            frame.clockEnabled[u] ? 1.0f : 0.0f;
        out[u * featuresPerUnit + 2] = frame.dataToggle[u];
    }
}

std::string
AbstractPowerModel::featureName(size_t index)
{
    APOLLO_REQUIRE(index < featureCount, "feature index out of range");
    const auto unit = static_cast<UnitId>(index / featuresPerUnit);
    const char *kind[featuresPerUnit] = {"activity", "clk_en",
                                         "data_toggle"};
    return std::string(unitName(unit)) + "." +
           kind[index % featuresPerUnit];
}

float
AbstractPowerModel::predictFrame(const ActivityFrame &frame) const
{
    float features[featureCount];
    featuresOf(frame, features);
    double acc = intercept;
    for (size_t f = 0; f < featureCount; ++f)
        acc += static_cast<double>(weights[f]) * features[f];
    return static_cast<float>(acc);
}

std::vector<float>
AbstractPowerModel::predict(std::span<const ActivityFrame> frames) const
{
    std::vector<float> out;
    out.reserve(frames.size());
    for (const ActivityFrame &frame : frames)
        out.push_back(predictFrame(frame));
    return out;
}

AbstractPowerModel
trainAbstractModel(std::span<const ActivityFrame> frames,
                   std::span<const float> y, double ridge)
{
    APOLLO_REQUIRE(frames.size() == y.size() && frames.size() > 10,
                   "frames/labels mismatch");

    DenseColumnMatrix features(frames.size(),
                               AbstractPowerModel::featureCount);
    float row[AbstractPowerModel::featureCount];
    for (size_t i = 0; i < frames.size(); ++i) {
        AbstractPowerModel::featuresOf(frames[i], row);
        for (size_t f = 0; f < AbstractPowerModel::featureCount; ++f)
            features.set(i, f, row[f]);
    }

    DenseFeatureView view(features);
    CdSolver solver(view, y);
    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Ridge;
    cfg.penalty.lambda2 = ridge;
    cfg.maxSweeps = 600;
    cfg.tol = 1e-7;
    const CdResult fit = solver.fit(cfg);

    AbstractPowerModel model;
    model.intercept = fit.intercept;
    model.weights.assign(AbstractPowerModel::featureCount, 0.0f);
    for (size_t f = 0; f < fit.w.size(); ++f)
        model.weights[f] = fit.w[f];
    return model;
}

} // namespace apollo
