/**
 * @file
 * Higher-abstraction power model — the paper's §9 future-work
 * direction ("translating the APOLLO design-time model into higher
 * abstraction models (C/C++ instead of RTL), thereby integrating
 * performance simulation with power-tracing").
 *
 * Instead of RTL toggle bits, the features are the per-cycle
 * micro-architectural state a performance simulator already computes:
 * for every functional unit its activity level, clock-enable bit, and
 * data-toggle factor (3 * numUnits features). A ridge-regressed linear
 * model on these features predicts per-cycle power with *no RTL
 * simulation at all* — power-tracing rides along with performance
 * simulation for free.
 *
 * The bench (bench_ext_abstraction) quantifies the accuracy gap vs the
 * RTL-proxy APOLLO model; tests pin the training/inference invariants.
 */

#ifndef APOLLO_CORE_ABSTRACT_MODEL_HH
#define APOLLO_CORE_ABSTRACT_MODEL_HH

#include <span>
#include <string>
#include <vector>

#include "uarch/activity_frame.hh"

namespace apollo {

/** Per-cycle linear model over micro-architectural state. */
struct AbstractPowerModel
{
    /** 3 features per unit: activity, clock-enable, data toggle. */
    static constexpr size_t featuresPerUnit = 3;
    static constexpr size_t featureCount = featuresPerUnit * numUnits;

    std::vector<float> weights; ///< featureCount entries
    double intercept = 0.0;

    /** Fill @p out (featureCount floats) with one frame's features. */
    static void featuresOf(const ActivityFrame &frame, float *out);

    /** Human-readable name of feature @p index. */
    static std::string featureName(size_t index);

    /** Predict power of one frame. */
    float predictFrame(const ActivityFrame &frame) const;

    /** Predict power of a frame sequence. */
    std::vector<float> predict(
        std::span<const ActivityFrame> frames) const;
};

/**
 * Fit the abstract model by ridge regression on (frames, power).
 * @p ridge is the L2 strength (features are O(1)-scaled).
 */
AbstractPowerModel trainAbstractModel(
    std::span<const ActivityFrame> frames, std::span<const float> y,
    double ridge = 1e-4);

} // namespace apollo

#endif // APOLLO_CORE_ABSTRACT_MODEL_HH
