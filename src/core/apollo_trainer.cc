#include "core/apollo_trainer.hh"

#include <chrono>

#include "util/logging.hh"

namespace apollo {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Subsample rows with an even stride for the selection stage. */
BitColumnMatrix
strideRows(const BitColumnMatrix &X, std::vector<float> &y_io,
           size_t cap)
{
    const size_t n = X.rows();
    const size_t stride = (n + cap - 1) / cap;
    std::vector<uint32_t> rows;
    rows.reserve(n / stride + 1);
    for (size_t i = 0; i < n; i += stride)
        rows.push_back(static_cast<uint32_t>(i));

    std::vector<float> y_sub;
    y_sub.reserve(rows.size());
    for (uint32_t r : rows)
        y_sub.push_back(y_io[r]);

    BitColumnMatrix out(rows.size(), X.cols());
    for (size_t c = 0; c < X.cols(); ++c)
        for (size_t r = 0; r < rows.size(); ++r)
            if (X.get(rows[r], c))
                out.setBit(r, c);
    y_io = std::move(y_sub);
    return out;
}

/** Relaxation: ridge refit on the selected columns only. */
CdResult
relaxOnColumns(const FeatureView &X_sel, std::span<const float> y,
               const ApolloTrainConfig &config)
{
    CdConfig cd;
    cd.penalty.kind = PenaltyKind::Ridge;
    cd.penalty.lambda2 = config.relaxRidge;
    cd.penalty.nonneg = config.relaxNonneg;
    cd.maxSweeps = config.relaxMaxSweeps;
    cd.tol = config.relaxTol;
    CdSolver solver(X_sel, y,
                    {.parallel = config.selection.parallel});
    return solver.fit(cd);
}

ApolloTrainResult
assembleResult(const CdResult &relaxed, ProxySelection selection,
               const std::string &design_name)
{
    ApolloTrainResult result;
    result.selection = std::move(selection);
    result.relaxed = relaxed;
    result.model.designName = design_name;
    result.model.proxyIds = result.selection.proxyIds;
    result.model.intercept = relaxed.intercept;
    result.model.weights.resize(result.model.proxyIds.size());
    for (size_t q = 0; q < result.model.proxyIds.size(); ++q)
        result.model.weights[q] = relaxed.w[q];
    return result;
}

} // namespace

ApolloTrainResult
trainApollo(const Dataset &train, const ApolloTrainConfig &config,
            const std::string &design_name)
{
    auto t0 = std::chrono::steady_clock::now();

    // Stage 1: MCP pruning over all M signals (optionally on a cycle
    // subsample — selection needs far fewer samples than the refit).
    ProxySelection selection;
    if (config.selectionCycleCap &&
        train.cycles() > config.selectionCycleCap) {
        std::vector<float> y_sub(train.y.begin(), train.y.end());
        const BitColumnMatrix X_sub =
            strideRows(train.X, y_sub, config.selectionCycleCap);
        BitFeatureView view(X_sub);
        selection = selectProxies(view, y_sub, config.selection);
    } else {
        BitFeatureView view(train.X);
        selection = selectProxies(view, train.y, config.selection);
    }
    const double select_seconds = secondsSince(t0);

    // Stage 2: relaxation on the full data, proxies only.
    auto t1 = std::chrono::steady_clock::now();
    const BitColumnMatrix X_sel =
        train.X.selectColumns(selection.proxyIds);
    BitFeatureView sel_view(X_sel);
    const CdResult relaxed = relaxOnColumns(sel_view, train.y, config);

    ApolloTrainResult result =
        assembleResult(relaxed, std::move(selection), design_name);
    result.selectSeconds = select_seconds;
    result.relaxSeconds = secondsSince(t1);
    return result;
}

ApolloTrainResult
trainApolloOnCounts(const CountDataset &train,
                    const ApolloTrainConfig &config,
                    const std::string &design_name)
{
    auto t0 = std::chrono::steady_clock::now();
    const float scale = 1.0f / static_cast<float>(train.tau);
    CountFeatureView view(train.X, scale);
    ProxySelection selection =
        selectProxies(view, train.y, config.selection);
    const double select_seconds = secondsSince(t0);

    auto t1 = std::chrono::steady_clock::now();
    // Gather the selected count columns into a dense matrix for the
    // relaxation (Q columns only, cheap).
    DenseColumnMatrix X_sel(train.X.rows(), selection.proxyIds.size());
    for (size_t q = 0; q < selection.proxyIds.size(); ++q) {
        const uint8_t *src = train.X.colData(selection.proxyIds[q]);
        float *dst = X_sel.colData(q);
        for (size_t i = 0; i < train.X.rows(); ++i)
            dst[i] = scale * static_cast<float>(src[i]);
    }
    DenseFeatureView sel_view(X_sel);
    const CdResult relaxed = relaxOnColumns(sel_view, train.y, config);

    ApolloTrainResult result =
        assembleResult(relaxed, std::move(selection), design_name);
    result.selectSeconds = select_seconds;
    result.relaxSeconds = secondsSince(t1);
    return result;
}

ApolloTrainResult
relaxProxySet(const Dataset &train,
              std::span<const uint32_t> proxy_ids,
              const ApolloTrainConfig &config,
              const std::string &design_name)
{
    auto t0 = std::chrono::steady_clock::now();
    const BitColumnMatrix X_sel = train.X.selectColumns(proxy_ids);
    BitFeatureView sel_view(X_sel);
    const CdResult relaxed = relaxOnColumns(sel_view, train.y, config);
    ProxySelection selection;
    selection.proxyIds.assign(proxy_ids.begin(), proxy_ids.end());
    ApolloTrainResult result =
        assembleResult(relaxed, std::move(selection), design_name);
    result.relaxSeconds = secondsSince(t0);
    return result;
}

} // namespace apollo
