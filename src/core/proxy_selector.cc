#include "core/proxy_selector.hh"

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace apollo {

namespace {

CdConfig
selectionCdConfig(const ProxySelectorConfig &config)
{
    CdConfig cd;
    cd.penalty.kind = config.kind;
    cd.penalty.gamma = config.gamma;
    cd.penalty.lambda2 = config.lambda2;
    cd.penalty.nonneg = config.nonneg;
    cd.maxSweeps = config.maxSweeps;
    cd.tol = config.tol;
    cd.screen = config.screen;
    return cd;
}

} // namespace

ProxySelection
selectProxies(const FeatureView &X, std::span<const float> y,
              const ProxySelectorConfig &config)
{
    APOLLO_REQUIRE(config.kind == PenaltyKind::Mcp ||
                       config.kind == PenaltyKind::Lasso,
                   "selection needs a sparsity-inducing penalty");

    const CdConfig cd = selectionCdConfig(config);
    CdSolver solver(X, y, {.parallel = config.parallel});

    ProxySelection selection;
    selection.sparseModel =
        solveForTargetQ(solver, cd, config.targetQ,
                        &selection.diagnostics);
    selection.proxyIds = selection.sparseModel.support();
    return selection;
}

StatusOr<ProxySelection>
selectProxiesSharded(const MappedShardSet &shards,
                     std::span<const float> y,
                     const ProxySelectorConfig &config,
                     ShardSelectionStats *stats)
{
    if (config.kind != PenaltyKind::Mcp &&
        config.kind != PenaltyKind::Lasso)
        return Status::invalidArgument(
            "selection needs a sparsity-inducing penalty");
    if (y.size() != shards.rows())
        return Status::invalidArgument("labels have ", y.size(),
                                       " rows, shard set has ",
                                       shards.rows());

    ShardedFeatureView view(shards, {.parallel = config.parallel});
    Status screened = view.screen(y);
    if (!screened.ok())
        return screened;

    // Seed the solver with the stats the screen pass already streamed
    // (its own lambdaMax / gradient-bootstrap passes would fault every
    // cold column back in from disk).
    SolverSeed seed;
    seed.gradY = view.stats().gradY;
    seed.lambdaMax = view.stats().lambdaMax;
    CdSolver solver(view, y, {.parallel = config.parallel},
                    std::move(seed));

    ProxySelection selection;
    selection.sparseModel = solveForTargetQ(
        solver, selectionCdConfig(config), config.targetQ,
        &selection.diagnostics);
    selection.proxyIds = selection.sparseModel.support();

    // Per-shard accounting. Admission counts reflect the first path
    // point (the screen that decides which columns ever become hot).
    const std::vector<uint64_t> admitted =
        view.stats().admittedAtFirstPoint(PathConfig{}.lambdaFactor);
    ShardSelectionStats acc;
    acc.shardCount = shards.shardCount();
    acc.bytesMapped = shards.bytesMapped();
    acc.kktRescreens = selection.diagnostics.totalKktPasses;
    acc.kktDots = selection.diagnostics.totalKktDots;
    acc.peakStrongSize = selection.diagnostics.peakStrongSize;
    for (uint32_t k = 0; k < shards.shardCount(); ++k) {
        const uint64_t scanned = view.stats().colsScanned[k];
        acc.colsScanned += scanned;
        acc.screenAdmitted += admitted[k];
        acc.screenDropped += scanned - admitted[k];
        if (APOLLO_OBS_ON() && scanned > 0)
            APOLLO_OBSERVE("apollo.solver.shard.admit_rate",
                           static_cast<double>(admitted[k]) /
                               static_cast<double>(scanned),
                           ::apollo::obs::ratioBounds());
    }
    APOLLO_COUNT("apollo.solver.shard.selections", 1);
    APOLLO_COUNT("apollo.solver.shard.count", acc.shardCount);
    APOLLO_COUNT("apollo.solver.shard.cols_scanned", acc.colsScanned);
    APOLLO_COUNT("apollo.solver.shard.screen_admitted",
                 acc.screenAdmitted);
    APOLLO_COUNT("apollo.solver.shard.screen_dropped",
                 acc.screenDropped);
    APOLLO_COUNT("apollo.solver.shard.bytes_mapped", acc.bytesMapped);
    APOLLO_COUNT("apollo.solver.shard.kkt_rescreens", acc.kktRescreens);
    APOLLO_COUNT("apollo.solver.shard.kkt_dots", acc.kktDots);
    if (stats)
        *stats = acc;
    return StatusOr<ProxySelection>(std::move(selection));
}

} // namespace apollo
