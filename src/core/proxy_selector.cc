#include "core/proxy_selector.hh"

#include "util/logging.hh"

namespace apollo {

ProxySelection
selectProxies(const FeatureView &X, std::span<const float> y,
              const ProxySelectorConfig &config)
{
    APOLLO_REQUIRE(config.kind == PenaltyKind::Mcp ||
                       config.kind == PenaltyKind::Lasso,
                   "selection needs a sparsity-inducing penalty");

    CdConfig cd;
    cd.penalty.kind = config.kind;
    cd.penalty.gamma = config.gamma;
    cd.penalty.lambda2 = config.lambda2;
    cd.penalty.nonneg = config.nonneg;
    cd.maxSweeps = config.maxSweeps;
    cd.tol = config.tol;
    cd.screen = config.screen;

    CdSolver solver(X, y, {.parallel = config.parallel});

    ProxySelection selection;
    selection.sparseModel =
        solveForTargetQ(solver, cd, config.targetQ,
                        &selection.diagnostics);
    selection.proxyIds = selection.sparseModel.support();
    return selection;
}

} // namespace apollo
