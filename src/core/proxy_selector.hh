/**
 * @file
 * ProxySelector: the MCP-based power-proxy selection of §4.3. A sparse
 * linear model over all M candidate signals is fit with the MCP penalty
 * (coordinate descent + warm-started lambda path); the signals with
 * nonzero weights become the Q power proxies. The penalty strength is
 * searched to hit the requested Q.
 */

#ifndef APOLLO_CORE_PROXY_SELECTOR_HH
#define APOLLO_CORE_PROXY_SELECTOR_HH

#include <cstdint>
#include <vector>

#include "ml/coordinate_descent.hh"
#include "ml/solver_path.hh"

namespace apollo {

/** Selection configuration. */
struct ProxySelectorConfig
{
    size_t targetQ = 159;
    /** Penalty family: Mcp for APOLLO, Lasso for the [53] baseline. */
    PenaltyKind kind = PenaltyKind::Mcp;
    /** MCP concavity (threshold gamma*lambda); the paper uses 10. */
    double gamma = 10.0;
    /** Optional small L2 stabilizer during selection. */
    double lambda2 = 0.0;
    /** Constrain selection weights to be non-negative. */
    bool nonneg = false;
    uint32_t maxSweeps = 250;
    double tol = 1e-4;
    /**
     * Strong-rule screening in the CD solver (exact — rejected columns
     * are KKT-verified and re-admitted on violation). Disable to force
     * the reference full-sweep path.
     */
    bool screen = true;
    /** Fan per-column gradient/norm passes over the shared pool. */
    bool parallel = true;
};

/** Selection output: the proxies and the temporary (pruned) model. */
struct ProxySelection
{
    std::vector<uint32_t> proxyIds;
    /** The sparse temporary model p' (weights over all M columns). */
    CdResult sparseModel;
    TargetQDiagnostics diagnostics;
};

/** Run proxy selection over a feature view. */
ProxySelection selectProxies(const FeatureView &X,
                             std::span<const float> y,
                             const ProxySelectorConfig &config);

} // namespace apollo

#endif // APOLLO_CORE_PROXY_SELECTOR_HH
