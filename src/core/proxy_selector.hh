/**
 * @file
 * ProxySelector: the MCP-based power-proxy selection of §4.3. A sparse
 * linear model over all M candidate signals is fit with the MCP penalty
 * (coordinate descent + warm-started lambda path); the signals with
 * nonzero weights become the Q power proxies. The penalty strength is
 * searched to hit the requested Q.
 */

#ifndef APOLLO_CORE_PROXY_SELECTOR_HH
#define APOLLO_CORE_PROXY_SELECTOR_HH

#include <cstdint>
#include <vector>

#include "ml/coordinate_descent.hh"
#include "ml/sharded_view.hh"
#include "ml/solver_path.hh"

namespace apollo {

/** Selection configuration. */
struct ProxySelectorConfig
{
    size_t targetQ = 159;
    /** Penalty family: Mcp for APOLLO, Lasso for the [53] baseline. */
    PenaltyKind kind = PenaltyKind::Mcp;
    /** MCP concavity (threshold gamma*lambda); the paper uses 10. */
    double gamma = 10.0;
    /** Optional small L2 stabilizer during selection. */
    double lambda2 = 0.0;
    /** Constrain selection weights to be non-negative. */
    bool nonneg = false;
    uint32_t maxSweeps = 250;
    double tol = 1e-4;
    /**
     * Strong-rule screening in the CD solver (exact — rejected columns
     * are KKT-verified and re-admitted on violation). Disable to force
     * the reference full-sweep path.
     */
    bool screen = true;
    /** Fan per-column gradient/norm passes over the shared pool. */
    bool parallel = true;
};

/** Selection output: the proxies and the temporary (pruned) model. */
struct ProxySelection
{
    std::vector<uint32_t> proxyIds;
    /** The sparse temporary model p' (weights over all M columns). */
    CdResult sparseModel;
    TargetQDiagnostics diagnostics;
};

/** Run proxy selection over a feature view. */
ProxySelection selectProxies(const FeatureView &X,
                             std::span<const float> y,
                             const ProxySelectorConfig &config);

/** Per-shard accounting of one sharded selection run (mirrors the
 *  apollo.solver.shard.* counters). */
struct ShardSelectionStats
{
    uint32_t shardCount = 0;
    uint64_t colsScanned = 0;
    /** Columns the first-path-point strong rule admits/drops (summed
     *  over shards; the per-shard split feeds the admit-rate
     *  histogram). */
    uint64_t screenAdmitted = 0;
    uint64_t screenDropped = 0;
    uint64_t bytesMapped = 0;
    /** KKT verification passes that re-screened rejected columns. */
    uint64_t kktRescreens = 0;
    uint64_t kktDots = 0;
    /** Peak columns held hot in RAM (largest strong set of the
     *  search). */
    uint64_t peakStrongSize = 0;
};

/**
 * Out-of-core proxy selection over a memory-mapped shard set
 * (docs/INTERNALS.md §13): one fused streaming screen pass per shard
 * (deterministic shard-order merge of the per-column stats), then the
 * standard warm-started MCP path on a seeded CdSolver whose sweeps
 * touch only the strong set. The selected support and weights are
 * bit-identical to selectProxies() on the same matrix held in RAM,
 * at any shard count and thread count.
 */
StatusOr<ProxySelection>
selectProxiesSharded(const MappedShardSet &shards,
                     std::span<const float> y,
                     const ProxySelectorConfig &config,
                     ShardSelectionStats *stats = nullptr);

} // namespace apollo

#endif // APOLLO_CORE_PROXY_SELECTOR_HH
