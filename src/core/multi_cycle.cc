#include "core/multi_cycle.hh"

#include "util/logging.hh"

namespace apollo {

namespace {

/** Segment sanity shared by inference and labels: monotone bounds that
 *  stay inside the @p rows cycles actually available. */
Status
checkSegments(std::span<const SegmentInfo> segments, size_t rows)
{
    for (const SegmentInfo &seg : segments) {
        if (seg.end < seg.begin)
            return Status::invalidArgument("segment '", seg.name,
                                           "' has end ", seg.end,
                                           " before begin ", seg.begin);
        if (seg.end > rows)
            return Status::outOfRange("segment '", seg.name, "' [",
                                      seg.begin, ", ", seg.end,
                                      ") exceeds the ", rows,
                                      " cycles available");
    }
    return Status::okStatus();
}

/**
 * Shared Eq. (9) kernel: per-cycle linear sums, averaged per T-window.
 * @p column_of maps model proxy index q to the matrix column to read.
 */
StatusOr<std::vector<float>>
predictWindowsImpl(const ApolloModel &model, const BitColumnMatrix &X,
                   uint32_t T, std::span<const SegmentInfo> segments,
                   bool proxy_layout)
{
    if (T < 1)
        return Status::invalidArgument("window size must be positive");
    if (Status st = checkSegments(segments, X.rows()); !st.ok())
        return st;
    // Per-cycle weighted sums (binary AND-accumulate).
    std::vector<float> per_cycle(X.rows(), 0.0f);
    for (size_t q = 0; q < model.proxyIds.size(); ++q) {
        const size_t col = proxy_layout ? q : model.proxyIds[q];
        APOLLO_REQUIRE(col < X.cols(), "column out of range");
        if (model.weights[q] != 0.0f)
            X.axpyColumn(col, model.weights[q], per_cycle.data());
    }

    std::vector<float> out;
    for (const SegmentInfo &seg : segments) {
        const size_t windows = seg.cycles() / T;
        for (size_t w = 0; w < windows; ++w) {
            double acc = 0.0;
            for (uint32_t t = 0; t < T; ++t)
                acc += per_cycle[seg.begin + w * T + t];
            out.push_back(static_cast<float>(
                model.intercept + acc / static_cast<double>(T)));
        }
    }
    if (out.empty())
        return Status::invalidArgument(
            "no full windows at T=", T,
            " (every segment is shorter than the window)");
    return out;
}

} // namespace

StatusOr<std::vector<float>>
MultiCycleModel::predictWindowsFull(
    const BitColumnMatrix &X, uint32_t T,
    std::span<const SegmentInfo> segments) const
{
    return predictWindowsImpl(base, X, T, segments, false);
}

StatusOr<std::vector<float>>
MultiCycleModel::predictWindowsProxies(
    const BitColumnMatrix &Xq, uint32_t T,
    std::span<const SegmentInfo> segments) const
{
    return predictWindowsImpl(base, Xq, T, segments, true);
}

MultiCycleModel
trainMultiCycle(const Dataset &train, uint32_t tau,
                const ApolloTrainConfig &config,
                const std::string &design_name)
{
    MultiCycleModel model;
    model.tau = tau;
    if (tau == 1) {
        model.base = trainApollo(train, config, design_name).model;
        return model;
    }
    const CountDataset agg = aggregateIntervals(train, tau);
    model.base =
        trainApolloOnCounts(agg, config, design_name).model;
    return model;
}

StatusOr<std::vector<float>>
windowAverageLabels(std::span<const float> y, uint32_t T,
                    std::span<const SegmentInfo> segments)
{
    if (T < 1)
        return Status::invalidArgument("window size must be positive");
    if (Status st = checkSegments(segments, y.size()); !st.ok())
        return st;
    std::vector<float> out;
    for (const SegmentInfo &seg : segments) {
        const size_t windows = seg.cycles() / T;
        for (size_t w = 0; w < windows; ++w) {
            double acc = 0.0;
            for (uint32_t t = 0; t < T; ++t)
                acc += y[seg.begin + w * T + t];
            out.push_back(
                static_cast<float>(acc / static_cast<double>(T)));
        }
    }
    if (out.empty())
        return Status::invalidArgument(
            "no full windows at T=", T,
            " (every segment is shorter than the window)");
    return out;
}

} // namespace apollo
